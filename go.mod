module optrule

go 1.24
