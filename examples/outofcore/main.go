// Out-of-core example: the scenario that motivates the paper's
// randomized bucketing. The data set is streamed to disk tuple by tuple
// (never fully materialized in memory), then mined directly from the
// file: every pass over the data is a sequential scan, the only thing
// ever sorted is the 40·M-tuple sample, and memory stays O(M + S)
// regardless of the relation's size.
//
// The file is written in the v2 column-major format: tuples are packed
// into 64Ki-row block groups with each column contiguous inside its
// group, so the targeted Mine query below reads only the Amount and
// Premium columns (~8 of the ~16 bytes each tuple occupies; the Items
// column and the Returned bitmap are never fetched), and the
// scan overlaps disk reads of the next block group with decoding and
// counting of the current one. Legacy row-major files written with
// optrule.NewDiskWriter stay readable — OpenDisk negotiates the
// version — and can be migrated either way with optrule.ConvertDisk or
// `optdata convert -in old.opr -out new.opr`.
//
// The v3 format (optrule.NewDiskWriterV3, or `optdata convert ...
// -format v3`) keeps the same block-group layout but compresses each
// column block — whole-unit amounts delta-bit-pack to a few bits per
// row instead of eight bytes — and records per-block min/max zone
// maps, so predicated scans skip block groups that provably contain no
// matching row. This example converts the relation to v3 and re-mines
// it: same rules, smaller file, fewer bytes read.
//
// Zone maps only refute what the row order lets them prove, so the
// example then re-clusters the v3 file by Amount
// (optrule.ConvertDiskClustered, or `optdata convert -format v3
// -cluster Amount` by index) and runs a conditioned query filtered on
// the band-correlated Audited flag: on the clustered file the flag is
// constant outside the band's block groups, the zone maps refute the
// filter wholesale, and the counting pass reads a small fraction of
// the bytes the unclustered file needs. (Conditioned rules from the
// two layouts are statistically equivalent, not bit-identical —
// sampling consumes rows in storage order; see the "Clustering &
// prunable layouts" section of the package docs.)
//
// # Sharding
//
// When one file is no longer enough, the same logical relation can
// span many shard files behind a small manifest (optrule.OpenSharded /
// NewShardedWriter / ConvertToSharded, or `optdata -shards N`): global
// row order is the concatenation of the shards, so mining results are
// rule-for-rule identical to the single file — this example asserts
// that below. Shard when the relation outgrows one device, when shards
// can sit on independent disks so SetConcurrentScans(n) multiplies
// sequential bandwidth (each shard sub-scan runs its own double-
// buffered prefetcher, results still arrive in row order), or when
// data arrives in natural batches that should stay individually
// replaceable. Choosing the split: keep every shard many block groups
// large (tens of MB or more) so per-shard pipeline startup stays
// negligible, and pick the shard count from the hardware — one shard
// (or a few) per independent disk. Shard count is NOT a parallelism
// knob for CPUs; Config.PEs and Config.Workers cover that, and the
// parallel counting engines already split work at shard and
// block-group boundaries on any layout.
//
//	go run ./examples/outofcore
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"path/filepath"

	"optrule"
)

func main() {
	dir, err := os.MkdirTemp("", "optrule-outofcore")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "transactions.opr")

	// Stream 2 million tuples to disk without holding them in memory.
	// (Transaction amount drives a planted "premium customer" flag.)
	const n = 2_000_000
	if err := writeTransactions(path, n); err != nil {
		log.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d tuples (%.1f MB) to %s\n", n, float64(st.Size())/1e6, path)

	// Open the relation; only the header and block directory are read
	// here.
	rel, err := optrule.OpenDisk(path)
	if err != nil {
		log.Fatal(err)
	}

	// Mine straight off the file: one sampling scan + one counting scan,
	// each touching only the columns the query needs.
	cfg := optrule.Config{
		MinSupport:    0.05,
		MinConfidence: 0.60,
		Buckets:       1000,
		Seed:          1,
	}
	sup, conf, err := optrule.Mine(rel, "Amount", "Premium", true, nil, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\noptimized rules mined from disk:")
	if sup != nil {
		fmt.Println("  ", sup)
	}
	if conf != nil {
		fmt.Println("  ", conf)
	}

	// Convert to the compressed v3 format and mine again: the rules must
	// be identical, while the file and the counted scan bytes shrink —
	// the whole-unit Amount column delta-bit-packs to a fraction of its
	// raw eight bytes per row.
	v3Path := filepath.Join(dir, "transactions_v3.opr")
	if err := optrule.ConvertDisk(path, v3Path, optrule.DiskFormatV3); err != nil {
		log.Fatal(err)
	}
	relV3, err := optrule.OpenDisk(v3Path)
	if err != nil {
		log.Fatal(err)
	}
	stV3, err := os.Stat(v3Path)
	if err != nil {
		log.Fatal(err)
	}
	sup3, conf3, err := optrule.Mine(relV3, "Amount", "Premium", true, nil, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsame rules mined from the compressed v3 file (%.1f MB vs %.1f MB; %.1f MB read vs %.1f MB):\n",
		float64(stV3.Size())/1e6, float64(st.Size())/1e6,
		float64(relV3.BytesRead())/1e6, float64(rel.BytesRead())/1e6)
	if sup3 != nil {
		fmt.Println("  ", sup3)
	}
	if conf3 != nil {
		fmt.Println("  ", conf3)
	}
	if (sup == nil) != (sup3 == nil) || (conf == nil) != (conf3 == nil) ||
		(sup != nil && *sup != *sup3) || (conf != nil && *conf != *conf3) {
		log.Fatal("v3 relation mined different rules than the v2 file")
	}

	// Re-cluster the v3 file by Amount and run the same conditioned
	// query on both layouts: the Audited filter only survives in the
	// band's block groups, which on the clustered file are the only
	// groups whose bytes ever leave the disk.
	clPath := filepath.Join(dir, "transactions_v3_clustered.opr")
	if err := optrule.ConvertDiskClustered(v3Path, clPath, optrule.DiskFormatV3, 0); err != nil {
		log.Fatal(err)
	}
	relCl, err := optrule.OpenDisk(clPath)
	if err != nil {
		log.Fatal(err)
	}
	defer relCl.Close()
	cond := []optrule.Condition{{Attr: "Audited", Value: true}}
	relV3.ResetBytesRead()
	supF, confF, err := optrule.Mine(relV3, "Amount", "Premium", true, cond, cfg)
	if err != nil {
		log.Fatal(err)
	}
	bytesUnclustered := relV3.BytesRead()
	supFC, confFC, err := optrule.Mine(relCl, "Amount", "Premium", true, cond, cfg)
	if err != nil {
		log.Fatal(err)
	}
	bytesClustered := relCl.BytesRead()
	fmt.Printf("\nconditioned query (Audited=true) after clustering by Amount: %.2f MB read vs %.2f MB unclustered (%.0fx fewer)\n",
		float64(bytesClustered)/1e6, float64(bytesUnclustered)/1e6,
		float64(bytesUnclustered)/float64(bytesClustered))
	for _, r := range []*optrule.Rule{supFC, confFC} {
		if r != nil {
			fmt.Println("  ", r)
		}
	}
	if supF == nil != (supFC == nil) || confF == nil != (confFC == nil) {
		log.Fatal("clustered layout found different conditioned rule kinds than unclustered")
	}
	if 2*bytesClustered > bytesUnclustered {
		log.Fatal("clustering did not cut the conditioned query's bytes at least in half")
	}

	// Shard the same relation four ways (in production each shard would
	// sit on its own disk) and mine again with concurrent sub-scans:
	// same logical relation, same global row order, identical rules.
	manifest := filepath.Join(dir, "transactions.oprs")
	if err := optrule.ConvertToSharded(rel, manifest, 4, 0); err != nil {
		log.Fatal(err)
	}
	sharded, err := optrule.OpenSharded(manifest)
	if err != nil {
		log.Fatal(err)
	}
	defer sharded.Close()
	sharded.SetConcurrentScans(4)
	sup2, conf2, err := optrule.Mine(sharded, "Amount", "Premium", true, nil, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsame rules mined from %d shards (concurrent sub-scans, %.1f MB read):\n",
		sharded.NumShards(), float64(sharded.BytesRead())/1e6)
	if sup2 != nil {
		fmt.Println("  ", sup2)
	}
	if conf2 != nil {
		fmt.Println("  ", conf2)
	}
	if (sup == nil) != (sup2 == nil) || (conf == nil) != (conf2 == nil) ||
		(sup != nil && *sup != *sup2) || (conf != nil && *conf != *conf2) {
		log.Fatal("sharded relation mined different rules than the single file")
	}
}

// writeTransactions streams synthetic transactions to path in the v2
// column-major format: Amount is lognormal, rounded to whole currency
// units (which is also what makes it compressible in v3); transactions
// with Amount in [150, 600] are premium with probability 0.8, others
// with 0.1. Audited is set exactly for that band — the deterministic
// function of Amount that clustering turns into a prunable filter.
func writeTransactions(path string, n int) error {
	w, err := optrule.NewDiskWriterV2(path, optrule.Schema{
		{Name: "Amount", Kind: optrule.Numeric},
		{Name: "Items", Kind: optrule.Numeric},
		{Name: "Premium", Kind: optrule.Boolean},
		{Name: "Returned", Kind: optrule.Boolean},
		{Name: "Audited", Kind: optrule.Boolean},
	}, 0)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < n; i++ {
		amount := math.Round(20 * rng.ExpFloat64() * (1 + 9*rng.Float64()))
		items := float64(1 + rng.Intn(12))
		inBand := amount >= 150 && amount <= 600
		p := 0.1
		if inBand {
			p = 0.8
		}
		err := w.Append(
			[]float64{amount, items},
			[]bool{rng.Float64() < p, rng.Float64() < 0.03, inBand},
		)
		if err != nil {
			w.Close()
			return err
		}
	}
	return w.Close()
}
