// Retail example: basket data in the spirit of the paper's
// introduction ((Pizza=yes) ∧ (Coke=yes) ⇒ (Potato=yes)), extended with
// the numeric Amount attribute so ranges matter: which spending range
// predicts premium (Wine) purchases, overall and within the
// pizza-buyers segment?
//
//	go run ./examples/retail
package main

import (
	"fmt"
	"log"

	"optrule"
)

func main() {
	rel, err := optrule.SampleRetailData(150000, 11)
	if err != nil {
		log.Fatal(err)
	}
	cfg := optrule.Config{
		MinSupport:    0.05,
		MinConfidence: 0.40,
		Buckets:       800,
		Seed:          11,
	}

	fmt.Println("== (Amount in I) => (Wine=yes) ==")
	sup, conf, err := optrule.Mine(rel, "Amount", "Wine", true, nil, cfg)
	if err != nil {
		log.Fatal(err)
	}
	print2(sup, conf)

	fmt.Println("\n== generalized: (Amount in I) and (Pizza=yes) => (Coke=yes) ==")
	supG, confG, err := optrule.Mine(rel, "Amount", "Coke", true,
		[]optrule.Condition{{Attr: "Pizza", Value: true}},
		optrule.Config{MinSupport: 0.05, MinConfidence: 0.60, Buckets: 800, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	print2(supG, confG)

	fmt.Println("\n== conjunctive objective (§4.3 general form): (Amount in I) => (Coke=yes and Potato=yes) ==")
	supCJ, confCJ, err := optrule.MineConjunctive(rel, "Amount",
		[]optrule.Condition{{Attr: "Coke", Value: true}, {Attr: "Potato", Value: true}},
		nil,
		optrule.Config{MinSupport: 0.05, MinConfidence: 0.20, Buckets: 800, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	print2(supCJ, confCJ)

	fmt.Println("\n== full sweep: every (numeric, item) combination, top 8 by lift ==")
	res, err := optrule.MineAll(rel, cfg)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range res.Rules {
		if i == 8 {
			break
		}
		fmt.Printf("%d. %s\n", i+1, r)
	}
}

func print2(sup, conf *optrule.Rule) {
	if sup != nil {
		fmt.Println("  optimized support:    ", sup)
	} else {
		fmt.Println("  optimized support:     none meets thresholds")
	}
	if conf != nil {
		fmt.Println("  optimized confidence: ", conf)
	} else {
		fmt.Println("  optimized confidence:  none meets thresholds")
	}
}
