// Quickstart: generate a small synthetic bank-customer data set, mine
// every optimized rule, and print the most interesting ones.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"optrule"
)

func main() {
	// 100k synthetic bank customers; the generator plants the paper's
	// headline association (Balance ∈ [3000, 20000]) ⇒ (CardLoan=yes).
	rel, err := optrule.SampleBankData(100000, 42)
	if err != nil {
		log.Fatal(err)
	}

	// Mine optimized-support and optimized-confidence rules for every
	// (numeric, Boolean) attribute combination.
	res, err := optrule.MineAll(rel, optrule.Config{
		MinSupport:    0.10, // confidence rules must cover >= 10% of customers
		MinConfidence: 0.55, // support rules must be >= 55% confident
		Buckets:       1000,
		Seed:          42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mined %d rules from %d tuples; top 5 by lift:\n\n", len(res.Rules), res.Tuples)
	for i, rule := range res.Rules {
		if i == 5 {
			break
		}
		fmt.Printf("%d. %s\n", i+1, rule)
	}
}
