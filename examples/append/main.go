// Incremental append: growing a relation under a live session.
//
// A mining service's table is rarely static — rows arrive every day.
// The paper's bucketed counts are per-bucket tallies, so an append of
// Δ rows does not stale them, it EXTENDS them: the session counts
// just the appended tail and folds the partial statistics into its
// cache with integer-exact merges. Ingest costs O(Δ) instead of the
// O(n) of dropping the cache and rebuilding. This example walks the
// cycle:
//
//  1. a sharded relation is built and a session warms its cache with
//     a mixed batch (two fused scans);
//
//  2. a day of new rows lands via AppendToSharded — new shard files,
//     manifest swapped atomically — and RefreshFromStorage folds them
//     in with a tail-only counting scan, no boundary re-sampling;
//
//  3. the warmed batch re-runs on the grown relation with ZERO
//     relation reads, and the delta telemetry shows what the refresh
//     did;
//
//  4. a bulk append blows the §3.4 bucket-error budget, and the
//     refresh re-samples boundaries instead of folding — the
//     correctness backstop.
//
//     go run ./examples/append
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"optrule"
)

func main() {
	dir, err := os.MkdirTemp("", "optrule-append")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// The base relation: 200k customers across 2 shard files. Appends
	// need the sharded backend — its manifest is what new shard files
	// commit through.
	manifest := filepath.Join(dir, "customers.oprs")
	rng := rand.New(rand.NewSource(11))
	if err := writeShards(manifest, rng, 200000); err != nil {
		log.Fatal(err)
	}
	rel, err := optrule.OpenSharded(manifest)
	if err != nil {
		log.Fatal(err)
	}
	defer rel.Close()

	session, err := optrule.NewSession(rel, optrule.Config{
		MinSupport:    0.05,
		MinConfidence: 0.55,
		Seed:          7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Moment 1: warm the cache. The mixed batch pays one sampling scan
	// plus one counting scan.
	batch := []optrule.Query{
		{Op: optrule.OpRules},
		{Op: optrule.OpRules, Numeric: "Balance", Objective: "CardLoan",
			ObjectiveValue: true,
			Conditions:     []optrule.Condition{{Attr: "AutoWithdraw", Value: true}}},
		{Op: optrule.OpRules2D, Numeric: "Age", NumericB: "Balance",
			Objective: "CardLoan", ObjectiveValue: true, GridSide: 32,
			Regions: []optrule.RegionClass{optrule.XMonotoneClass}},
		{Op: optrule.OpTopK, Numeric: "Balance", Objective: "CardLoan",
			ObjectiveValue: true, K: 3},
	}
	rel.ResetBytesRead()
	answers, err := session.ExecuteBatch(batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm batch over %d tuples: %d queries, %.1f MB read (two scans)\n",
		rel.NumTuples(), len(answers), float64(rel.BytesRead())/(1<<20))
	printFirstRule(answers)

	// Moment 2: a day of rows arrives. AppendToSharded writes them to
	// a fresh shard file and swaps the manifest atomically; the open
	// handle keeps its snapshot until the session refreshes.
	day, err := sampleDay(rng, 2000)
	if err != nil {
		log.Fatal(err)
	}
	added, err := optrule.AppendToSharded(manifest, day, optrule.AppendOptions{})
	if err != nil {
		log.Fatal(err)
	}
	rel.ResetBytesRead()
	stats, err := session.RefreshFromStorage()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nappended %d rows; refresh scanned %d tail rows, folded %d cached entries, "+
		"re-sampled %d boundary sets (%.2f MB read)\n",
		added, stats.RowsScanned, stats.EntriesFolded, stats.Resamples,
		float64(rel.BytesRead())/(1<<20))

	// Moment 3: the same batch on the GROWN relation — every statistic
	// was folded in place, so nothing is read at all.
	rel.ResetBytesRead()
	answers, err = session.ExecuteBatch(batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-query over %d tuples: %d bytes read (served from the folded cache)\n",
		rel.NumTuples(), rel.BytesRead())
	printFirstRule(answers)

	st := session.CacheStats()
	fmt.Printf("\ntelemetry: %d tail scans over %d rows, %d entries folded, %d re-samples\n",
		st.DeltaTailScans, st.DeltaRowsScanned, st.DeltaEntriesFolded, st.DeltaResamples)

	// Moment 4: a bulk load. 20% growth exceeds the bucket-error
	// budget (≈0.5/√SampleFactor ≈ 7.9% at the default sample factor):
	// reusing the old boundaries could push bucket sizes outside the
	// paper's error guarantee, so the refresh re-samples them over the
	// full relation — exactly what a cold session would compute — and
	// drops the affected counts to recount on next demand.
	bulk, err := sampleDay(rng, 40000)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := optrule.AppendToSharded(manifest, bulk, optrule.AppendOptions{}); err != nil {
		log.Fatal(err)
	}
	stats, err = session.RefreshFromStorage()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbulk append of 40000 rows: %d boundary sets re-sampled, %d entries dropped "+
		"(growth left the bucket-error budget)\n", stats.Resamples, stats.EntriesDropped)
	if _, err := session.ExecuteBatch(batch); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("next batch recounted against fresh boundaries over %d tuples\n", rel.NumTuples())
}

// bankSchema is the example's customer schema.
func bankSchema() optrule.Schema {
	return optrule.Schema{
		{Name: "Balance", Kind: optrule.Numeric},
		{Name: "Age", Kind: optrule.Numeric},
		{Name: "CardLoan", Kind: optrule.Boolean},
		{Name: "AutoWithdraw", Kind: optrule.Boolean},
	}
}

// sampleRow draws one customer: middle-aged customers with mid-range
// balances are planted as the card-loan hot segment.
func sampleRow(rng *rand.Rand) ([]float64, []bool) {
	balance := 3000 * rng.ExpFloat64()
	age := 18 + 60*rng.Float64()
	auto := rng.Float64() < 0.4
	p := 0.15
	if balance >= 2000 && balance <= 8000 && age >= 30 && age < 45 {
		p = 0.75
	}
	if auto {
		p += 0.05
	}
	return []float64{balance, age}, []bool{rng.Float64() < p, auto}
}

// writeShards streams n customers into a 2-shard relation.
func writeShards(manifest string, rng *rand.Rand, n int) error {
	w, err := optrule.NewShardedWriter(manifest, bankSchema(), optrule.ShardedWriterOptions{
		Shards: 2, TotalRows: n,
	})
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		nums, bools := sampleRow(rng)
		if err := w.Append(nums, bools); err != nil {
			return err
		}
	}
	return w.Close()
}

// sampleDay builds an in-memory batch of n new customers — the shape
// AppendToSharded ingests.
func sampleDay(rng *rand.Rand, n int) (*optrule.MemoryRelation, error) {
	day, err := optrule.NewMemoryRelation(bankSchema())
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		nums, bools := sampleRow(rng)
		if err := day.Append(nums, bools); err != nil {
			return nil, err
		}
	}
	return day, nil
}

// printFirstRule shows each answer's best result.
func printFirstRule(answers []optrule.Answer) {
	for i, a := range answers {
		if a.Err != nil {
			fmt.Printf("  q%d error: %v\n", i, a.Err)
			continue
		}
		switch {
		case len(a.Rules) > 0:
			fmt.Printf("  q%d (%s, %d rules): %s\n", i, a.Query.Op, len(a.Rules), a.Rules[0])
		case len(a.Regions) > 0:
			fmt.Printf("  q%d (%s): %s\n", i, a.Query.Op, a.Regions[0].String())
		case len(a.Rules2D) > 0:
			fmt.Printf("  q%d (%s): %s\n", i, a.Query.Op, a.Rules2D[0].String())
		default:
			fmt.Printf("  q%d (%s): no rule meets the thresholds\n", i, a.Query.Op)
		}
	}
}
