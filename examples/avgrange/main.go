// Average-operator example (paper §5): instead of guessing ranges and
// issuing queries like
//
//	select avg(SavingAccount) from BankCustomers
//	where 1000 < CheckingAccount and CheckingAccount < 3000
//
// compute directly (a) the checking-account range that MAXIMIZES the
// average savings balance among ranges holding >= 10% of customers, and
// (b) the LARGEST range whose average savings balance clears a
// threshold.
//
//	go run ./examples/avgrange
package main

import (
	"fmt"
	"log"
	"math/rand"

	"optrule"
)

func main() {
	rel, err := buildBankCustomers(250000)
	if err != nil {
		log.Fatal(err)
	}
	cfg := optrule.Config{Buckets: 1000, Seed: 3}

	fmt.Println("== maximum-average range (Definition 5.2) ==")
	avg, err := optrule.MaxAverageRange(rel, "CheckingAccount", "SavingAccount", 0.10, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  ", avg)

	fmt.Println("\n== maximum-support range with avg(SavingAccount) >= 10000 (Definition 5.3) ==")
	msr, err := optrule.MaxSupportRange(rel, "CheckingAccount", "SavingAccount", 10000, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  ", msr)
}

// buildBankCustomers plants the §5 scenario: customers with moderate
// checking balances (1000–3000) hold much larger savings accounts.
func buildBankCustomers(n int) (*optrule.MemoryRelation, error) {
	rel, err := optrule.NewMemoryRelation(optrule.Schema{
		{Name: "CheckingAccount", Kind: optrule.Numeric},
		{Name: "SavingAccount", Kind: optrule.Numeric},
	})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(99))
	rel.Grow(n)
	for i := 0; i < n; i++ {
		checking := rng.Float64() * 10000
		saving := 4000 + rng.NormFloat64()*1500
		if checking >= 1000 && checking <= 3000 {
			saving = 18000 + rng.NormFloat64()*6000
		}
		if saving < 0 {
			saving = 0
		}
		if err := rel.Append([]float64{checking, saving}, nil); err != nil {
			return nil, err
		}
	}
	return rel, nil
}
