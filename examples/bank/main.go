// Bank example: the paper's running scenario. A bank wants to know
// which balance range predicts credit-card-loan usage, in two flavors:
//
//   - optimized-support rule: the LARGEST cluster of customers that is
//     still >= 55% likely to take a card loan — the audience for a broad
//     campaign;
//   - optimized-confidence rule: the >= 10%-of-customers cluster with
//     the HIGHEST card-loan probability — the target for a fixed-budget
//     direct-mail campaign (the paper's §1.2 motivation).
//
// It also demonstrates a generalized rule (§4.3) with a presumptive
// condition: the same question restricted to automatic-withdrawal
// customers.
//
//	go run ./examples/bank
package main

import (
	"fmt"
	"log"

	"optrule"
)

func main() {
	rel, err := optrule.SampleBankData(200000, 7)
	if err != nil {
		log.Fatal(err)
	}
	cfg := optrule.Config{
		MinSupport:    0.10,
		MinConfidence: 0.55,
		Buckets:       1000,
		Seed:          7,
	}

	fmt.Println("== (Balance in I) => (CardLoan=yes) ==")
	sup, conf, err := optrule.Mine(rel, "Balance", "CardLoan", true, nil, cfg)
	if err != nil {
		log.Fatal(err)
	}
	report("broad campaign (optimized support)", sup)
	report("direct mail (optimized confidence)", conf)

	fmt.Println("\n== restricted to AutoWithdraw=yes customers (generalized rule, §4.3) ==")
	supC, confC, err := optrule.Mine(rel, "Balance", "CardLoan", true,
		[]optrule.Condition{{Attr: "AutoWithdraw", Value: true}}, cfg)
	if err != nil {
		log.Fatal(err)
	}
	report("broad campaign", supC)
	report("direct mail", confC)

	fmt.Println("\n== (Age in I) => (Mortgage=yes) ==")
	_, confAge, err := optrule.Mine(rel, "Age", "Mortgage", true, nil, cfg)
	if err != nil {
		log.Fatal(err)
	}
	report("direct mail", confAge)
}

func report(label string, r *optrule.Rule) {
	if r == nil {
		fmt.Printf("%-40s  no range meets the thresholds\n", label)
		return
	}
	fmt.Printf("%-40s  %s\n", label, r)
}
