// Fault-tolerant mining: the scatter-gather walkthrough.
//
// The counting scan is where a mining batch spends its I/O, so it is
// the pass that scatters: with Config.Scatter.Workers > 0 the fused
// counting schedule is split at shard boundaries, dispatched one task
// per shard across a worker pool, and the partial tallies are merged
// EXACTLY — integer counts only — so the mined rules are bit-identical
// at every worker count. This example walks the recovery ladder with
// faults injected by the deterministic harness (optrule.FaultRelation):
//
//  1. a healthy baseline, serial vs scattered — identical rules;
//
//  2. a pool whose workers' scans keep dying mid-task — retries and
//     re-routing absorb every failure, rules still identical;
//
//  3. a pool that is broken outright — the coordinator direct-scans
//     each task itself, rules still identical;
//
//  4. storage so broken even the direct scans fail — the batch still
//     returns, with the fault's identity in each query's Answer.Err;
//
//  5. Close racing a scan — a defined ErrBusy, never a torn mapping.
//
// The bit-identity this example demonstrates is also enforced at the
// source level: the optlint suite (`go run ./cmd/optlint ./...`; see
// "Enforced invariants" in the package docs) mechanically rejects
// map-iteration-order leaks, wall-clock and globally seeded randomness
// in kernel paths, and order-dependent float accumulation in merges.
//
//	go run ./examples/faults
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"reflect"
	"time"

	"optrule"
)

func main() {
	dir, err := os.MkdirTemp("", "optrule-faults")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A sharded relation: 200k bank tuples in 8 shards. Shard
	// boundaries are the scatter-gather task boundaries.
	const tuples, shards = 200000, 8
	src, err := optrule.SampleBankData(tuples, 42)
	if err != nil {
		log.Fatal(err)
	}
	manifest := filepath.Join(dir, "bank.oprs")
	if err := optrule.ConvertToSharded(src, manifest, shards, optrule.DiskFormatV2); err != nil {
		log.Fatal(err)
	}
	rel, err := optrule.OpenSharded(manifest)
	if err != nil {
		log.Fatal(err)
	}
	defer rel.Close()

	cfg := optrule.Config{MinSupport: 0.05, MinConfidence: 0.55, Buckets: 500, Seed: 7}

	// 1. Healthy baseline: serial, then scattered over four workers.
	baseline, err := optrule.MineAll(rel, cfg)
	if err != nil {
		log.Fatal(err)
	}
	scattered := cfg
	scattered.Scatter = optrule.ScatterConfig{Workers: 4}
	got, err := optrule.MineAll(rel, scattered)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("healthy:   %d rules serial, %d rules over 4 workers, identical=%v\n",
		len(baseline.Rules), len(got.Rules), reflect.DeepEqual(baseline.Rules, got.Rules))

	// 2. Flaky pool: every worker reads through the fault harness — a
	// third of its scans die 10k rows into a task. The coordinator
	// retries failed tasks (re-routed off the failing worker) and the
	// merge stays exact, so the rules cannot drift.
	var stats optrule.ScatterStats
	flaky := cfg
	flaky.Scatter = optrule.ScatterConfig{
		Workers: 4,
		NewWorker: func(i int, rel optrule.Relation) optrule.Worker {
			return optrule.NewLocalWorker(optrule.NewFaultRelation(rel, optrule.FaultConfig{
				Seed: int64(i), FailProb: 0.33, FailAfterRows: 10000,
			}), false)
		},
		Backoff: time.Millisecond,
		Stats:   &stats,
	}
	got, err = optrule.MineAll(rel, flaky)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flaky:     %d tasks, %d retries, %d fallbacks — identical=%v\n",
		stats.Tasks.Load(), stats.Retries.Load(), stats.Fallbacks.Load(),
		reflect.DeepEqual(baseline.Rules, got.Rules))

	// 3. Broken pool: every worker fails every scan before the first
	// batch. Attempts exhaust, and the coordinator falls back to
	// direct scans of the (healthy) relation — the batch completes
	// because the files are readable.
	stats = optrule.ScatterStats{}
	broken := cfg
	broken.Scatter = optrule.ScatterConfig{
		Workers: 2,
		NewWorker: func(i int, rel optrule.Relation) optrule.Worker {
			return optrule.NewLocalWorker(optrule.NewFaultRelation(rel, optrule.FaultConfig{
				FailEvery: 1, // every scan, forever
			}), false)
		},
		MaxAttempts: 2,
		Backoff:     time.Millisecond,
		Stats:       &stats,
	}
	got, err = optrule.MineAll(rel, broken)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("broken:    all %d tasks direct-scanned by the coordinator (%d fallbacks) — identical=%v\n",
		stats.Tasks.Load(), stats.Fallbacks.Load(), reflect.DeepEqual(baseline.Rules, got.Rules))

	// 4. Broken storage: the relation ITSELF fails every scan after
	// the sampling pass, so workers and the direct fallback all fail.
	// The batch still returns cleanly: each resolved query carries the
	// storage error in its Answer.Err, and errors.Is reaches the
	// injected sentinel through every layer.
	fail := make([]int, 64)
	for i := range fail {
		fail[i] = i + 2 // ordinal 1 is the sampling scan; everything after fails
	}
	frel := optrule.NewFaultRelation(rel, optrule.FaultConfig{FailScans: fail, FailAfterRows: 5000})
	session, err := optrule.NewSession(frel, optrule.Config{
		Buckets: 500, Seed: 7,
		Scatter: optrule.ScatterConfig{Workers: 2, MaxAttempts: 2, Backoff: time.Millisecond},
	})
	if err != nil {
		log.Fatal(err)
	}
	answers, err := session.ExecuteBatch([]optrule.Query{
		{Op: optrule.OpRules, Objective: "CardLoan", ObjectiveValue: true},
		{Op: optrule.OpRules, Numeric: "Balance", Objective: "Mortgage", ObjectiveValue: true},
	})
	if err != nil {
		log.Fatal(err) // only cancellation fails the batch itself
	}
	for i, a := range answers {
		fmt.Printf("exhausted: query %d: injected=%v (%v)\n", i, errors.Is(a.Err, optrule.ErrInjected), a.Err)
	}

	// 5. Close vs Scan: closing mid-scan is a defined error, not a
	// race. The scan finishes unharmed; Close succeeds once quiescent.
	inScan := make(chan struct{})
	unblock := make(chan struct{})
	scanDone := make(chan error, 1)
	go func() {
		first := true
		scanDone <- rel.Scan(optrule.ColumnSet{Numeric: []int{0}}, func(b *optrule.Batch) error {
			if first {
				first = false
				close(inScan)
				<-unblock
			}
			return nil
		})
	}()
	<-inScan
	err = rel.Close()
	fmt.Printf("close:     during scan -> ErrBusy=%v", errors.Is(err, optrule.ErrBusy))
	close(unblock)
	if err := <-scanDone; err != nil {
		log.Fatal(err)
	}
	fmt.Printf("; after scan -> err=%v\n", rel.Close())
}
