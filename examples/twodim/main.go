// Two-dimensional rules (paper §1.4): find the rectangle X in the
// (Age, Balance) plane such that
//
//	(Age, Balance) ∈ X  ⇒  (CardLoan = yes)
//
// is an optimized rule — the exact example the paper uses to motivate
// its two-attribute extension. Customers in their thirties with
// mid-range balances are planted as the hot segment; the miner must
// recover that rectangle in all three optimization flavors, plus the
// two non-rectangular region classes, and then sweep EVERY numeric
// attribute pair with the fused all-pairs engine.
//
//	go run ./examples/twodim
package main

import (
	"fmt"
	"log"
	"math/rand"

	"optrule"
)

func main() {
	rel, err := buildCustomers(200000)
	if err != nil {
		log.Fatal(err)
	}
	cfg := optrule.Config{
		MinSupport:    0.02,
		MinConfidence: 0.50,
		Seed:          13,
	}

	// Single-pair mining, one call per kind. Grid-side guidance: the
	// rectangle sweep is O(side³) and the region DPs O(side³·log²side),
	// so the side is a quality/cost dial — 32–64 is plenty to display a
	// rule (each bucket holds ~n/side² tuples); up to 256 is practical
	// for a targeted pair on a multicore machine thanks to the parallel
	// kernels; keep it at 64 or below when sweeping many pairs.
	for _, kind := range []optrule.RuleKind{
		optrule.OptimizedConfidence,
		optrule.OptimizedSupport,
		optrule.OptimizedGain,
	} {
		rule, err := optrule.Mine2D(rel, "Age", "Balance", "CardLoan", true, kind, 48, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if rule == nil {
			fmt.Printf("%-22v no rectangle meets the threshold\n", kind)
			continue
		}
		fmt.Println(rule)
	}

	// The two non-rectangular region classes of §1.4: rectilinear-convex
	// regions bulge like 2-D clusters; x-monotone regions can follow
	// arbitrary column-wise trends. On this rectangular planted signal
	// all three classes converge to the same block; on diagonal or round
	// signals (see the test suite) the more general classes strictly win.
	rc, err := optrule.MineRectilinearConvex(rel, "Age", "Balance", "CardLoan", true, 48, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if rc != nil {
		fmt.Println(rc)
	}
	xm, err := optrule.MineXMonotone(rel, "Age", "Balance", "CardLoan", true, 48, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if xm != nil {
		fmt.Println(xm)
	}

	// The all-pairs engine: every unordered pair of numeric attributes
	// (here (Age, Balance), (Age, Tenure), (Balance, Tenure)), both
	// paper-standard rectangle kinds plus an x-monotone region per
	// pair — in exactly TWO scans of the relation, no matter how many
	// pairs there are. Rules come back sorted by lift, so the planted
	// (Age, Balance) rectangle surfaces first.
	fmt.Println("\nAll pairs (fused engine, two scans):")
	res, err := optrule.MineAll2D(rel, optrule.Options2D{
		Objective:      "CardLoan",
		ObjectiveValue: true,
		Regions:        []optrule.RegionClass{optrule.XMonotoneClass},
		GridSide:       32, // all-pairs sweeps pay the kernel cost per pair: stay modest
	}, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d pairs, %d rectangle rules, %d region rules\n",
		res.Pairs, len(res.Rules), len(res.Regions))
	for _, r := range res.Rules {
		fmt.Println(" ", r)
	}
	for _, r := range res.Regions {
		fmt.Println(" ", r)
	}
}

// buildCustomers plants the hot rectangle Age ∈ [30, 42] ×
// Balance ∈ [5000, 20000] at 75% card-loan rate over a 10% background;
// Tenure is an uninformative third numeric attribute so the all-pairs
// sweep has uninteresting pairs to rank below the planted one.
func buildCustomers(n int) (*optrule.MemoryRelation, error) {
	rel, err := optrule.NewMemoryRelation(optrule.Schema{
		{Name: "Age", Kind: optrule.Numeric},
		{Name: "Balance", Kind: optrule.Numeric},
		{Name: "Tenure", Kind: optrule.Numeric},
		{Name: "CardLoan", Kind: optrule.Boolean},
	})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(99))
	rel.Grow(n)
	for i := 0; i < n; i++ {
		age := float64(18 + rng.Intn(73))
		balance := 100 * rng.ExpFloat64() * (1 + 99*rng.Float64())
		tenure := rng.Float64() * 40
		p := 0.10
		if age >= 30 && age <= 42 && balance >= 5000 && balance <= 20000 {
			p = 0.75
		}
		if err := rel.Append([]float64{age, balance, tenure}, []bool{rng.Float64() < p}); err != nil {
			return nil, err
		}
	}
	return rel, nil
}
