// Two-dimensional rules (paper §1.4): find the rectangle X in the
// (Age, Balance) plane such that
//
//	(Age, Balance) ∈ X  ⇒  (CardLoan = yes)
//
// is an optimized rule — the exact example the paper uses to motivate
// its two-attribute extension. Customers in their thirties with
// mid-range balances are planted as the hot segment; the miner must
// recover that rectangle in all three optimization flavors.
//
//	go run ./examples/twodim
package main

import (
	"fmt"
	"log"
	"math/rand"

	"optrule"
)

func main() {
	rel, err := buildCustomers(200000)
	if err != nil {
		log.Fatal(err)
	}
	cfg := optrule.Config{
		MinSupport:    0.02,
		MinConfidence: 0.50,
		Seed:          13,
	}

	for _, kind := range []optrule.RuleKind{
		optrule.OptimizedConfidence,
		optrule.OptimizedSupport,
		optrule.OptimizedGain,
	} {
		rule, err := optrule.Mine2D(rel, "Age", "Balance", "CardLoan", true, kind, 48, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if rule == nil {
			fmt.Printf("%-22v no rectangle meets the threshold\n", kind)
			continue
		}
		fmt.Println(rule)
	}

	// The two non-rectangular region classes of §1.4: rectilinear-convex
	// regions bulge like 2-D clusters; x-monotone regions can follow
	// arbitrary column-wise trends. On this rectangular planted signal
	// all three classes converge to the same block; on diagonal or round
	// signals (see the test suite) the more general classes strictly win.
	rc, err := optrule.MineRectilinearConvex(rel, "Age", "Balance", "CardLoan", true, 48, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if rc != nil {
		fmt.Println(rc)
	}
	xm, err := optrule.MineXMonotone(rel, "Age", "Balance", "CardLoan", true, 48, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if xm != nil {
		fmt.Println(xm)
	}
}

// buildCustomers plants the hot rectangle Age ∈ [30, 42] ×
// Balance ∈ [5000, 20000] at 75% card-loan rate over a 10% background.
func buildCustomers(n int) (*optrule.MemoryRelation, error) {
	rel, err := optrule.NewMemoryRelation(optrule.Schema{
		{Name: "Age", Kind: optrule.Numeric},
		{Name: "Balance", Kind: optrule.Numeric},
		{Name: "CardLoan", Kind: optrule.Boolean},
	})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(99))
	rel.Grow(n)
	for i := 0; i < n; i++ {
		age := float64(18 + rng.Intn(73))
		balance := 100 * rng.ExpFloat64() * (1 + 99*rng.Float64())
		p := 0.10
		if age >= 30 && age <= 42 && balance >= 5000 && balance <= 20000 {
			p = 0.75
		}
		if err := rel.Append([]float64{age, balance}, []bool{rng.Float64() < p}); err != nil {
			return nil, err
		}
	}
	return rel, nil
}
