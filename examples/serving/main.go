// Serving mining traffic from a session: the plan/execute walkthrough.
//
// A mining service answers many queries over one relation. The paper's
// bucketed counts are sufficient statistics — any threshold, rule
// kind, or region class derives from the count grids alone — so a
// long-lived optrule.Session splits the work into a data plane (two
// fused scans filling a statistics cache) and a query plane (pure-CPU
// rule extraction). This example walks the three serving moments:
//
//  1. a cold HETEROGENEOUS batch (1-D rules, a 2-D region, ranked
//     ranges, an average query) answered in exactly two relation
//     scans;
//
//  2. an analyst turning the threshold knobs — the re-query batch is
//     answered from cache with ZERO relation reads;
//
//  3. cache telemetry (hits, bytes, evictions) a serving layer would
//     export.
//
//     go run ./examples/serving
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"optrule"
)

func main() {
	// A disk-backed relation stands in for the production table; the
	// counted-bytes model (BytesRead) makes every scan visible.
	rel, cleanup, err := buildRelation(500000)
	if err != nil {
		log.Fatal(err)
	}
	defer cleanup()

	// One session outlives every request. Safe for concurrent callers:
	// a real service would share this handle across its request
	// handlers.
	session, err := optrule.NewSession(rel, optrule.Config{
		MinSupport:    0.05,
		MinConfidence: 0.55,
		Seed:          7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Moment 1: the cold mixed batch. Five queries, four operation
	// types, 1-D and 2-D — the planner dedupes their statistics and
	// the executor pays ONE sampling scan plus ONE counting scan for
	// the union.
	batch := []optrule.Query{
		{Op: optrule.OpRules}, // every (numeric, Boolean) combination
		{Op: optrule.OpRules, Numeric: "Balance", Objective: "CardLoan",
			ObjectiveValue: true,
			Conditions:     []optrule.Condition{{Attr: "AutoWithdraw", Value: true}}},
		{Op: optrule.OpRules2D, Numeric: "Age", NumericB: "Balance",
			Objective: "CardLoan", ObjectiveValue: true, GridSide: 32,
			Regions: []optrule.RegionClass{optrule.XMonotoneClass}},
		{Op: optrule.OpTopK, Numeric: "Balance", Objective: "CardLoan",
			ObjectiveValue: true, K: 3},
		{Op: optrule.OpAverage, Numeric: "Age", Target: "Balance", MinSupport: 0.10},
	}
	rel.ResetBytesRead()
	answers, err := session.ExecuteBatch(batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold batch: %d queries, %.1f MB read (two scans total)\n",
		len(answers), float64(rel.BytesRead())/(1<<20))
	printHighlights(answers)

	// Moment 2: threshold re-query. Different support/confidence
	// floors, a different region class, a deeper top-k — the knobs an
	// analyst turns. All statistics are cached, so the relation is not
	// touched at all.
	requery := []optrule.Query{
		{Op: optrule.OpRules, MinSupport: 0.15, MinConfidence: 0.70},
		{Op: optrule.OpRules2D, Numeric: "Age", NumericB: "Balance",
			Objective: "CardLoan", ObjectiveValue: true, GridSide: 32,
			Regions: []optrule.RegionClass{optrule.RectilinearConvexClass}},
		{Op: optrule.OpTopK, Numeric: "Balance", Objective: "CardLoan",
			ObjectiveValue: true, K: 5, MinSupport: 0.02},
	}
	rel.ResetBytesRead()
	answers, err = session.ExecuteBatch(requery)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nthreshold re-query: %d queries, %d bytes read (served from cache)\n",
		len(answers), rel.BytesRead())
	printHighlights(answers)

	// Moment 3: telemetry. A serving layer exports these counters; the
	// hit rate is the fraction of statistics lookups the two scans'
	// worth of cached state absorbed. SetCacheLimit rebounds the
	// budget; InvalidateCache drops everything after the relation is
	// rewritten.
	st := session.CacheStats()
	fmt.Printf("\ncache: %d statistics, %.1f MB of %.0f MB budget, %d hits / %d misses, %d evictions\n",
		st.Entries, float64(st.Bytes)/(1<<20), float64(st.MaxBytes)/(1<<20),
		st.Hits, st.Misses, st.Evictions)

	// The session-bound convenience methods share the same cache: this
	// Mine call re-uses the Balance statistics the batch built.
	sup, conf, err := session.Mine("Balance", "CardLoan", true, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsession-bound Mine (cache-warm):")
	for _, r := range []*optrule.Rule{sup, conf} {
		if r != nil {
			fmt.Println(" ", r)
		}
	}
}

// buildRelation streams n bank-style customers to a v2 (columnar) disk
// file: middle-aged customers with mid-range balances are planted as
// the card-loan hot segment, and auto-withdraw users skew positive.
func buildRelation(n int) (*optrule.DiskRelation, func(), error) {
	dir, err := os.MkdirTemp("", "optrule-serving")
	if err != nil {
		return nil, nil, err
	}
	path := filepath.Join(dir, "customers.opr")
	w, err := optrule.NewDiskWriterV2(path, optrule.Schema{
		{Name: "Balance", Kind: optrule.Numeric},
		{Name: "Age", Kind: optrule.Numeric},
		{Name: "CardLoan", Kind: optrule.Boolean},
		{Name: "AutoWithdraw", Kind: optrule.Boolean},
	}, 0)
	if err != nil {
		os.RemoveAll(dir)
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < n; i++ {
		balance := 3000 * rng.ExpFloat64()
		age := 18 + 60*rng.Float64()
		auto := rng.Float64() < 0.4
		p := 0.15
		if balance >= 2000 && balance <= 8000 && age >= 30 && age < 45 {
			p = 0.75
		}
		if auto {
			p += 0.05
		}
		err := w.Append([]float64{balance, age}, []bool{rng.Float64() < p, auto})
		if err != nil {
			w.Close()
			os.RemoveAll(dir)
			return nil, nil, err
		}
	}
	if err := w.Close(); err != nil {
		os.RemoveAll(dir)
		return nil, nil, err
	}
	rel, err := optrule.OpenDisk(path)
	if err != nil {
		os.RemoveAll(dir)
		return nil, nil, err
	}
	return rel, func() { rel.Close(); os.RemoveAll(dir) }, nil
}

// printHighlights shows the first result of each answer.
func printHighlights(answers []optrule.Answer) {
	for i, a := range answers {
		if a.Err != nil {
			fmt.Printf("  q%d error: %v\n", i, a.Err)
			continue
		}
		switch {
		case len(a.Rules) > 0:
			fmt.Printf("  q%d (%s, %d rules): %s\n", i, a.Query.Op, len(a.Rules), a.Rules[0])
		case len(a.Regions) > 0:
			fmt.Printf("  q%d (%s): %s\n", i, a.Query.Op, a.Regions[0].String())
		case len(a.Rules2D) > 0:
			fmt.Printf("  q%d (%s): %s\n", i, a.Query.Op, a.Rules2D[0].String())
		case a.Range != nil:
			fmt.Printf("  q%d (%s): %s\n", i, a.Query.Op, a.Range)
		default:
			fmt.Printf("  q%d (%s): no rule meets the thresholds\n", i, a.Query.Op)
		}
	}
}
