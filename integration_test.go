package optrule_test

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"optrule"
)

// TestFullSystemIntegration walks the entire public surface on one data
// set: generate → persist to disk → describe-equivalent scans → mine all
// kinds (1-D, conditional, top-K, 2-D, average) → render a profile →
// verify every mined rule exactly.
func TestFullSystemIntegration(t *testing.T) {
	rel, err := optrule.SampleBankData(60000, 99)
	if err != nil {
		t.Fatal(err)
	}

	// Persist and reopen from disk; mine from the disk copy throughout
	// to exercise the out-of-core path end to end.
	path := filepath.Join(t.TempDir(), "it.opr")
	dw, err := optrule.NewDiskWriter(path, rel.Schema())
	if err != nil {
		t.Fatal(err)
	}
	bal, _ := rel.NumericColumn(0)
	age, _ := rel.NumericColumn(1)
	yrs, _ := rel.NumericColumn(2)
	loan, _ := rel.BoolColumn(3)
	mort, _ := rel.BoolColumn(4)
	auto, _ := rel.BoolColumn(5)
	for i := 0; i < rel.NumTuples(); i++ {
		if err := dw.Append([]float64{bal[i], age[i], yrs[i]}, []bool{loan[i], mort[i], auto[i]}); err != nil {
			t.Fatal(err)
		}
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	disk, err := optrule.OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}

	cfg := optrule.Config{
		MinSupport:    0.05,
		MinConfidence: 0.55,
		Buckets:       400,
		Seed:          99,
		MineGain:      true,
		PEs:           4,
	}

	// 1. Full sweep with all three kinds.
	res, err := optrule.MineAll(disk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[optrule.RuleKind]int{}
	for _, r := range res.Rules {
		kinds[r.Kind]++
	}
	if kinds[optrule.OptimizedSupport] == 0 || kinds[optrule.OptimizedConfidence] == 0 || kinds[optrule.OptimizedGain] == 0 {
		t.Fatalf("missing rule kinds in full sweep: %v", kinds)
	}

	// 2. Every mined rule verifies exactly against a rescan.
	for _, r := range res.Rules {
		v, err := optrule.Verify(disk, r, nil)
		if err != nil {
			t.Fatal(err)
		}
		if v.Count != r.Count || math.Abs(v.Confidence-r.Confidence) > 1e-12 {
			t.Errorf("verification mismatch for %s: got count=%d conf=%g", r, v.Count, v.Confidence)
		}
	}

	// 3. Conditional (generalized) rule.
	supC, _, err := optrule.Mine(disk, "Balance", "CardLoan", true,
		[]optrule.Condition{{Attr: "AutoWithdraw", Value: true}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if supC == nil {
		t.Fatal("no conditional rule")
	}
	vc, err := optrule.Verify(disk, *supC, []optrule.Condition{{Attr: "AutoWithdraw", Value: true}})
	if err != nil {
		t.Fatal(err)
	}
	if vc.Count != supC.Count {
		t.Errorf("conditional verification mismatch: %d vs %d", vc.Count, supC.Count)
	}

	// 4. Top-K disjoint ranges: disjoint, ordered, first == optimum.
	topk, err := optrule.MineTopK(disk, "Balance", "CardLoan", true, optrule.OptimizedConfidence, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(topk) < 2 {
		t.Fatalf("expected multiple disjoint ranges, got %d", len(topk))
	}
	for i := 1; i < len(topk); i++ {
		if topk[i].Confidence > topk[i-1].Confidence+1e-12 {
			t.Errorf("top-K not ordered by confidence")
		}
		for j := 0; j < i; j++ {
			if topk[i].Low <= topk[j].High && topk[j].Low <= topk[i].High {
				t.Errorf("top-K ranges %d and %d overlap", i, j)
			}
		}
	}

	// 5. 2-D rectangle rule.
	r2, err := optrule.Mine2D(disk, "Age", "Balance", "CardLoan", true, optrule.OptimizedConfidence, 24, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r2 == nil {
		t.Fatal("no 2-D rule")
	}
	if r2.Support < cfg.MinSupport-1e-9 {
		t.Errorf("2-D rule below support floor: %+v", r2)
	}

	// 6. Average-operator ranges.
	avg, err := optrule.MaxAverageRange(disk, "Age", "Balance", 0.10, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if avg.Average < avg.OverallAverage {
		t.Errorf("max-average range below overall: %+v", avg)
	}

	// 7. Profile renders and highlights.
	prof, err := optrule.BuildProfile(disk, "Balance", "CardLoan", true, 15, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	optrule.RenderProfile(&buf, prof, &res.Rules[0])
	if buf.Len() == 0 {
		t.Error("empty profile rendering")
	}

	// 8. Significance: the planted top rule is overwhelmingly unlikely
	// under the null.
	if p := res.Rules[0].PValue(); p > 1e-6 {
		t.Errorf("top rule p-value %g, want tiny", p)
	}
}
