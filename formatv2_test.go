package optrule

import (
	"path/filepath"
	"testing"

	"optrule/internal/datagen"
	"optrule/internal/relation"
)

// writeBothFormats writes the same n tuples of src (same seed, hence
// bit-identical data) in both disk formats and opens them.
func writeBothFormats(t *testing.T, src datagen.RowSource, n int, seed int64) (v1, v2 *DiskRelation) {
	t.Helper()
	dir := t.TempDir()
	v1Path := filepath.Join(dir, "rel_v1.opr")
	v2Path := filepath.Join(dir, "rel_v2.opr")
	if err := datagen.WriteDiskFormat(v1Path, src, n, seed, relation.DiskFormatV1); err != nil {
		t.Fatal(err)
	}
	if err := datagen.WriteDiskFormat(v2Path, src, n, seed, relation.DiskFormatV2); err != nil {
		t.Fatal(err)
	}
	var err error
	if v1, err = OpenDisk(v1Path); err != nil {
		t.Fatal(err)
	}
	if v2, err = OpenDisk(v2Path); err != nil {
		t.Fatal(err)
	}
	return v1, v2
}

// TestMineAllV2MatchesV1 is the differential acceptance test of the
// columnar format: the same data mined from a v1 row-major file and a
// v2 column-major file must yield rule-for-rule identical MineAll
// output — same rules, same order, same statistics to the last bit —
// on both the bank and the retail workload.
func TestMineAllV2MatchesV1(t *testing.T) {
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	retail, err := datagen.NewRetail(datagen.DefaultRetailConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		src  datagen.RowSource
	}{{"bank", bank}, {"retail", retail}} {
		t.Run(tc.name, func(t *testing.T) {
			v1, v2 := writeBothFormats(t, tc.src, 40000, 1)
			cfg := Config{Buckets: 300, Seed: 7}
			res1, err := MineAll(v1, cfg)
			if err != nil {
				t.Fatal(err)
			}
			res2, err := MineAll(v2, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(res1.Rules) == 0 {
				t.Fatalf("v1 mined no rules; differential test is vacuous")
			}
			if len(res1.Rules) != len(res2.Rules) {
				t.Fatalf("v1 mined %d rules, v2 mined %d", len(res1.Rules), len(res2.Rules))
			}
			for i := range res1.Rules {
				if res1.Rules[i] != res2.Rules[i] {
					t.Errorf("rule %d differs between formats:\n  v1: %v\n  v2: %v", i, res1.Rules[i], res2.Rules[i])
				}
			}
		})
	}
}

// TestMineAllV2TwoScanInvariant pins that the fused two-scan pipeline
// of PR 1 survives the storage swap: MineAll over a v2 relation issues
// exactly one sampling scan plus one counting scan.
func TestMineAllV2TwoScanInvariant(t *testing.T) {
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	_, v2 := writeBothFormats(t, bank, 20000, 2)
	counting := &relation.CountingRelation{R: v2}
	res, err := MineAll(counting, Config{Buckets: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rules) == 0 {
		t.Fatalf("mined no rules")
	}
	if counting.Scans != 2 {
		t.Errorf("MineAll over v2 issued %d scans, want exactly 2 (sampling + counting)", counting.Scans)
	}
}

// TestMineV2TargetedQueriesMatchV1 extends the differential check to
// the targeted per-attribute path (Mine with a conjunctive condition),
// which exercises filtered counting over the v2 format.
func TestMineV2TargetedQueriesMatchV1(t *testing.T) {
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	v1, v2 := writeBothFormats(t, bank, 30000, 4)
	cfg := Config{Buckets: 200, Seed: 11, MinSupport: 0.05, MinConfidence: 0.55}
	conds := []Condition{{Attr: "AutoWithdraw", Value: true}}
	sup1, conf1, err := Mine(v1, "Balance", "CardLoan", true, conds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sup2, conf2, err := Mine(v2, "Balance", "CardLoan", true, conds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, a, b *Rule) {
		if (a == nil) != (b == nil) {
			t.Fatalf("%s rule: v1=%v v2=%v", name, a, b)
		}
		if a != nil && *a != *b {
			t.Errorf("%s rule differs between formats:\n  v1: %v\n  v2: %v", name, *a, *b)
		}
	}
	check("support", sup1, sup2)
	check("confidence", conf1, conf2)
}
