package optrule

import (
	"os"
	"testing"
	"time"
)

// TestBenchGuardrails is the CI wall-clock regression gate, enabled
// with OPTRULE_BENCH_GUARD=1 (it stays silent in ordinary test runs so
// local suites are not hostage to machine speed). Each guarded
// benchmark must finish an operation under a ceiling set several times
// above its healthy time on a 2-core CI runner — loose enough to
// absorb runner noise, tight enough to catch a gross regression such
// as the default format accidentally changing or a counting kernel
// falling off its fast path.
func TestBenchGuardrails(t *testing.T) {
	if os.Getenv("OPTRULE_BENCH_GUARD") == "" {
		t.Skip("set OPTRULE_BENCH_GUARD=1 to run the wall-clock guardrails")
	}
	guards := []struct {
		name  string
		bench func(*testing.B)
		max   time.Duration
	}{
		// ~95ms healthy: 1M-tuple disk MineAll on the default v2 format.
		{"MineAllDisk", BenchmarkMineAllDisk, 500 * time.Millisecond},
		// ~40ms healthy: single-pair 2-D miner on the 1M-tuple disk bank.
		{"Mine2D", BenchmarkMine2D, 250 * time.Millisecond},
	}
	for _, g := range guards {
		g := g
		t.Run(g.name, func(t *testing.T) {
			res := testing.Benchmark(g.bench)
			got := time.Duration(res.NsPerOp())
			t.Logf("%s: %v/op (ceiling %v)", g.name, got, g.max)
			if got > g.max {
				t.Errorf("%s took %v per op, ceiling %v — a perf regression, not noise",
					g.name, got, g.max)
			}
		})
	}
}
