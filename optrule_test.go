package optrule

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPublicEndToEndCSV(t *testing.T) {
	// Generate, write to CSV, read back, mine.
	rel, err := SampleBankData(20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rel); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSVAuto(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTuples() != rel.NumTuples() {
		t.Fatalf("round trip lost tuples: %d vs %d", back.NumTuples(), rel.NumTuples())
	}
	res, err := MineAll(back, Config{Buckets: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rules) == 0 {
		t.Fatal("no rules mined")
	}
	found := false
	for _, r := range res.Rules {
		if r.Numeric == "Balance" && r.Objective == "CardLoan" && r.Lift() > 1.5 {
			found = true
		}
	}
	if !found {
		t.Errorf("planted Balance→CardLoan rule not recovered")
	}
}

func TestPublicEndToEndDisk(t *testing.T) {
	rel, err := SampleBankData(15000, 2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bank.opr")
	dw, err := NewDiskWriter(path, rel.Schema())
	if err != nil {
		t.Fatal(err)
	}
	cols := rel.Schema()
	_ = cols
	// Copy memory relation to disk through the public scan interface.
	bal, _ := rel.NumericColumn(0)
	age, _ := rel.NumericColumn(1)
	yrs, _ := rel.NumericColumn(2)
	loan, _ := rel.BoolColumn(3)
	mort, _ := rel.BoolColumn(4)
	auto, _ := rel.BoolColumn(5)
	for i := 0; i < rel.NumTuples(); i++ {
		if err := dw.Append([]float64{bal[i], age[i], yrs[i]}, []bool{loan[i], mort[i], auto[i]}); err != nil {
			t.Fatal(err)
		}
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	dr, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	// Mining from disk must give the same rules as mining from memory
	// (same seed, same data).
	memRes, err := MineAll(rel, Config{Buckets: 150, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	diskRes, err := MineAll(dr, Config{Buckets: 150, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(memRes.Rules) != len(diskRes.Rules) {
		t.Fatalf("memory mined %d rules, disk %d", len(memRes.Rules), len(diskRes.Rules))
	}
	for i := range memRes.Rules {
		if memRes.Rules[i] != diskRes.Rules[i] {
			t.Errorf("rule %d differs:\nmem:  %v\ndisk: %v", i, memRes.Rules[i], diskRes.Rules[i])
		}
	}
}

func TestPublicTargetedMine(t *testing.T) {
	rel, err := SampleRetailData(30000, 3)
	if err != nil {
		t.Fatal(err)
	}
	sup, conf, err := Mine(rel, "Amount", "Wine", true, nil, Config{Buckets: 300, MinConfidence: 0.3, MinSupport: 0.05, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sup == nil || conf == nil {
		t.Fatalf("expected both rules, got sup=%v conf=%v", sup, conf)
	}
	// The planted premium range is [60, 250]; the confidence rule
	// should overlap it.
	if conf.High < 60 || conf.Low > 250 {
		t.Errorf("confidence rule [%g, %g] misses the planted premium range", conf.Low, conf.High)
	}
	if !strings.Contains(conf.String(), "Wine=yes") {
		t.Errorf("rule renders wrong: %s", conf)
	}
}

func TestPublicAverageRanges(t *testing.T) {
	rel, err := SampleBankData(20000, 5)
	if err != nil {
		t.Fatal(err)
	}
	avg, err := MaxAverageRange(rel, "Age", "Balance", 0.2, Config{Buckets: 100, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if avg.Support < 0.2-1e-9 {
		t.Errorf("support %g below floor", avg.Support)
	}
	if avg.Average < avg.OverallAverage {
		t.Errorf("selected average %g below overall %g", avg.Average, avg.OverallAverage)
	}
	msr, err := MaxSupportRange(rel, "Age", "Balance", avg.OverallAverage*1.05, Config{Buckets: 100, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if msr.Average < avg.OverallAverage*1.05-1e-6 {
		t.Errorf("average %g below threshold", msr.Average)
	}
}

func TestPublicBoundsHelpers(t *testing.T) {
	if b := SupportErrorBound(1000, 0.3); b <= 0 || b > 0.01 {
		t.Errorf("SupportErrorBound(1000, 0.3) = %g", b)
	}
	if b := ConfidenceErrorBound(1000, 0.3); b <= 0 || b > 0.01 {
		t.Errorf("ConfidenceErrorBound(1000, 0.3) = %g", b)
	}
	if m := MinBucketsForError(0.3, 0.01); m != 667 {
		t.Errorf("MinBucketsForError = %d", m)
	}
	if s := RecommendedSampleSize(1000); s != 40000 {
		t.Errorf("RecommendedSampleSize = %d", s)
	}
	if p := BucketDeviationProbability(40000, 1000, 0.5); p > 0.003 {
		t.Errorf("deviation probability at the operating point = %g", p)
	}
}

func TestPublicReadCSVFileAndSchemaRead(t *testing.T) {
	rel, err := SampleBankData(500, 4)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bank.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(f, rel); err != nil {
		t.Fatal(err)
	}
	f.Close()
	back, err := ReadCSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTuples() != 500 {
		t.Errorf("NumTuples = %d", back.NumTuples())
	}
	if _, err := ReadCSVFile(filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Errorf("missing file accepted")
	}
	// Explicit-schema read through the public wrapper.
	f2, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	got, err := ReadCSV(f2, rel.Schema())
	if err != nil || got.NumTuples() != 500 {
		t.Errorf("ReadCSV with schema failed: %v", err)
	}
}

func TestPublicMineConjunctive(t *testing.T) {
	rel, err := SampleBankData(20000, 6)
	if err != nil {
		t.Fatal(err)
	}
	sup, _, err := MineConjunctive(rel, "Balance",
		[]Condition{{Attr: "CardLoan", Value: true}, {Attr: "AutoWithdraw", Value: true}},
		nil, Config{MinConfidence: 0.2, Buckets: 150, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if sup == nil {
		t.Fatal("no conjunctive rule")
	}
	if !strings.Contains(sup.String(), "AutoWithdraw=yes") {
		t.Errorf("conjunction missing from rendering: %s", sup)
	}
}

func TestPublicRegionRules(t *testing.T) {
	rel, err := SampleBankData(30000, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{MinConfidence: 0.5, Seed: 7}
	xm, err := MineXMonotone(rel, "Age", "Balance", "CardLoan", true, 16, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := MineRectilinearConvex(rel, "Age", "Balance", "CardLoan", true, 16, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if xm == nil || rc == nil {
		t.Fatal("region rules missing on planted data")
	}
	if xm.Gain < rc.Gain-1e-9 {
		t.Errorf("class hierarchy violated: xmonotone %g < rectconvex %g", xm.Gain, rc.Gain)
	}
}

func TestPublicSchemaBuilding(t *testing.T) {
	rel, err := NewMemoryRelation(Schema{
		{Name: "X", Kind: Numeric},
		{Name: "B", Kind: Boolean},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		rel.MustAppend([]float64{float64(i)}, []bool{i >= 100})
	}
	sup, _, err := Mine(rel, "X", "B", true, nil, Config{Buckets: 20, MinConfidence: 0.9, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if sup == nil {
		t.Fatal("no rule on a perfectly separable attribute")
	}
	if sup.Low < 90 {
		t.Errorf("rule range [%g, %g] should start near 100", sup.Low, sup.High)
	}
}
