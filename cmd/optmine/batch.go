package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"optrule/internal/miner"
	"optrule/internal/relation"
)

// Batch mode: `optmine -batch queries.json` reads a JSON array of
// session queries and answers the WHOLE batch in one plan/execute
// session — a heterogeneous 1-D + 2-D mix costs exactly two relation
// scans, however many queries the file holds.
//
// A queries file looks like:
//
//	[
//	  {"op": "rules", "minConfidence": 0.6},
//	  {"op": "rules", "numeric": "Balance", "objective": "CardLoan",
//	   "conditions": [{"attr": "AutoWithdraw", "value": true}]},
//	  {"op": "rules2d", "numeric": "Balance", "numericB": "Age",
//	   "objective": "CardLoan", "gridSide": 32,
//	   "regions": ["x-monotone"]},
//	  {"op": "topk", "numeric": "Balance", "objective": "CardLoan", "k": 3},
//	  {"op": "average", "numeric": "Balance", "target": "Age",
//	   "minSupport": 0.1}
//	]
//
// Ops: rules, conjunctive, topk, average, support-range, rules2d.
// Kinds: optimized-support, optimized-confidence, optimized-gain.
// Region classes: x-monotone, rectilinear-convex. Omitted thresholds
// and resolutions inherit the command-line flags; `objectiveValue`
// defaults to yes.

// ParseBatch parses and validates a queries JSON document. It is
// strict: unknown fields, unknown op/kind/region names, out-of-range
// thresholds, and malformed shapes are errors — a corrupt batch file
// must fail loudly, not silently mine the wrong thing.
func ParseBatch(data []byte) ([]miner.Query, error) {
	var raws []json.RawMessage
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&raws); err != nil {
		return nil, fmt.Errorf("batch: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("batch: trailing data after the query array")
	}
	if len(raws) == 0 {
		return nil, fmt.Errorf("batch: no queries")
	}
	queries := make([]miner.Query, len(raws))
	for i, raw := range raws {
		q, err := parseQuery(raw)
		if err != nil {
			return nil, fmt.Errorf("batch: query %d: %w", i, err)
		}
		queries[i] = q
	}
	return queries, nil
}

// parseQuery decodes one query object strictly and applies the CLI
// default of objectiveValue=yes when the field is absent.
func parseQuery(raw json.RawMessage) (miner.Query, error) {
	var q miner.Query
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&q); err != nil {
		return q, err
	}
	// Probe for the objectiveValue key: JSON cannot distinguish a
	// deliberate false from an absent field, and the CLI convention
	// (like -value) is that an omitted value means yes.
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(raw, &probe); err != nil {
		return q, err
	}
	if _, ok := probe["objectiveValue"]; !ok {
		q.ObjectiveValue = true
	}
	return q, validateQuery(q)
}

// validateQuery rejects shapes that are wrong independent of any
// schema; attribute existence and kinds are checked again (against the
// relation) when the session resolves the query.
func validateQuery(q miner.Query) error {
	if q.MinSupport < 0 || q.MinSupport > 1 {
		return fmt.Errorf("minSupport %g out of [0,1]", q.MinSupport)
	}
	if q.MinConfidence < 0 || q.MinConfidence > 1 {
		return fmt.Errorf("minConfidence %g out of [0,1]", q.MinConfidence)
	}
	if q.Buckets < 0 {
		return fmt.Errorf("negative bucket count %d", q.Buckets)
	}
	if q.GridSide < 0 {
		return fmt.Errorf("negative grid side %d", q.GridSide)
	}
	if q.K < 0 {
		return fmt.Errorf("negative k %d", q.K)
	}
	seen := map[string]bool{}
	for _, name := range q.Numerics {
		if name == "" {
			return fmt.Errorf("empty attribute name in numerics")
		}
		if seen[name] {
			return fmt.Errorf("duplicate attribute %q in numerics", name)
		}
		seen[name] = true
	}
	if q.Numeric != "" && q.Numeric == q.NumericB {
		return fmt.Errorf("numeric and numericB are both %q", q.Numeric)
	}
	return nil
}

// jsonAnswer is one query's machine-readable result.
type jsonAnswer struct {
	Query      miner.Query  `json:"query"`
	Error      string       `json:"error,omitempty"`
	Rules      []jsonRule   `json:"rules,omitempty"`
	Rectangles []jsonRule2D `json:"rectangles,omitempty"`
	Regions    []jsonRegion `json:"regions,omitempty"`
	Range      *jsonAvg     `json:"range,omitempty"`
}

// jsonAvg is AvgRange with stable field names.
type jsonAvg struct {
	Driver, Target string
	Low, High      jsonF
	Support        float64
	Count          int
	Average        float64
	OverallAverage float64
}

// runBatch executes a queries file against the relation in one
// session. Per-query failures are reported (and fail the command)
// without suppressing the other answers. With cacheStats set, the
// session cache's occupancy and delta-merge telemetry follow the
// answers (on stderr under -json, keeping stdout a clean document).
func runBatch(rel relation.Relation, path string, cfg miner.Config, jsonOut, cacheStats bool, w *os.File) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	queries, err := ParseBatch(data)
	if err != nil {
		return err
	}
	session, err := miner.NewSession(rel, cfg)
	if err != nil {
		return err
	}
	answers, err := session.ExecuteBatch(queries)
	if err != nil {
		return err
	}
	failed := 0
	if jsonOut {
		out := make([]jsonAnswer, len(answers))
		for i, a := range answers {
			ja := jsonAnswer{Query: a.Query}
			if a.Err != nil {
				failed++
				ja.Error = a.Err.Error()
				out[i] = ja
				continue
			}
			for _, r := range a.Rules {
				ja.Rules = append(ja.Rules, toJSONRule(r))
			}
			for _, r := range a.Rules2D {
				ja.Rectangles = append(ja.Rectangles, toJSONRule2D(r))
			}
			for _, r := range a.Regions {
				ja.Regions = append(ja.Regions, toJSONRegion(r))
			}
			if a.Range != nil {
				ja.Range = &jsonAvg{
					Driver: a.Range.Driver, Target: a.Range.Target,
					Low: jsonF(a.Range.Low), High: jsonF(a.Range.High),
					Support: a.Range.Support, Count: a.Range.Count,
					Average: a.Range.Average, OverallAverage: a.Range.OverallAverage,
				}
			}
			out[i] = ja
		}
		if err := json.NewEncoder(w).Encode(out); err != nil {
			return err
		}
	} else {
		for i, a := range answers {
			fmt.Fprintf(w, "query %d (%s):\n", i, a.Query.Op)
			if a.Err != nil {
				failed++
				fmt.Fprintf(w, "  error: %v\n", a.Err)
				continue
			}
			for _, r := range a.Rules {
				fmt.Fprintln(w, " ", r)
			}
			for _, r := range a.Rules2D {
				fmt.Fprintln(w, " ", r)
			}
			for _, r := range a.Regions {
				fmt.Fprint(w, r.Describe())
			}
			if a.Range != nil {
				fmt.Fprintln(w, " ", a.Range)
			}
			if len(a.Rules) == 0 && len(a.Rules2D) == 0 && len(a.Regions) == 0 && a.Range == nil {
				fmt.Fprintln(w, "  no rule meets the thresholds")
			}
		}
	}
	if cacheStats {
		sw := w
		if jsonOut {
			sw = os.Stderr
		}
		printCacheStats(sw, session.CacheStats())
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d queries failed", failed, len(answers))
	}
	return nil
}

// printCacheStats renders the session cache summary: occupancy,
// hit/miss traffic, and the delta-merge counters that tell whether
// appends since the session opened were absorbed by O(Δ) tail folds
// or forced boundary re-sampling.
func printCacheStats(w *os.File, st miner.CacheStats) {
	fmt.Fprintf(w, "cache: %d entries, %d/%d bytes, %d hits, %d misses, %d evictions\n",
		st.Entries, st.Bytes, st.MaxBytes, st.Hits, st.Misses, st.Evictions)
	fmt.Fprintf(w, "delta: %d tail scans over %d rows, %d entries folded, %d boundary re-samples\n",
		st.DeltaTailScans, st.DeltaRowsScanned, st.DeltaEntriesFolded, st.DeltaResamples)
}
