package main

import (
	"os"
	"path/filepath"
	"testing"

	"optrule/internal/datagen"
	"optrule/internal/relation"
)

func writeBankCSV(t *testing.T, n int) string {
	t.Helper()
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rel := datagen.MustMaterialize(bank, n, 1)
	path := filepath.Join(t.TempDir(), "bank.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := relation.WriteCSV(f, rel); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseConds(t *testing.T) {
	conds, err := parseConds("Pizza=yes, Beer=no,Wine=true")
	if err != nil {
		t.Fatal(err)
	}
	if len(conds) != 3 {
		t.Fatalf("got %d conditions", len(conds))
	}
	if conds[0].Attr != "Pizza" || !conds[0].Value {
		t.Errorf("conds[0] = %+v", conds[0])
	}
	if conds[1].Attr != "Beer" || conds[1].Value {
		t.Errorf("conds[1] = %+v", conds[1])
	}
	if conds, err := parseConds(""); err != nil || conds != nil {
		t.Errorf("empty string should give no conditions")
	}
	if _, err := parseConds("Pizza"); err == nil {
		t.Errorf("missing = accepted")
	}
	if _, err := parseConds("Pizza=maybe"); err == nil {
		t.Errorf("bad value accepted")
	}
}

func TestRunMineAllMode(t *testing.T) {
	path := writeBankCSV(t, 3000)
	if err := run([]string{"-in", path, "-buckets", "50", "-top", "5"}, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestRunTargetedMode(t *testing.T) {
	path := writeBankCSV(t, 3000)
	err := run([]string{"-in", path, "-numeric", "Balance", "-objective", "CardLoan",
		"-minconf", "0.55", "-buckets", "50", "-cond", "AutoWithdraw=yes"}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunTargetedWithProfileAndTopK(t *testing.T) {
	path := writeBankCSV(t, 3000)
	err := run([]string{"-in", path, "-numeric", "Balance", "-objective", "CardLoan",
		"-minconf", "0.55", "-buckets", "50", "-profile", "-k", "3"}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunJSONModes(t *testing.T) {
	path := writeBankCSV(t, 2000)
	for _, args := range [][]string{
		{"-in", path, "-buckets", "50", "-top", "3", "-json"},
		{"-in", path, "-numeric", "Balance", "-objective", "CardLoan", "-buckets", "50", "-json"},
		{"-in", path, "-numeric", "Age", "-numeric2", "Balance", "-objective", "CardLoan", "-grid", "12", "-json"},
	} {
		if err := run(args, os.Stdout); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}
}

func TestRun2DMode(t *testing.T) {
	path := writeBankCSV(t, 3000)
	if err := run([]string{"-in", path, "-numeric", "Balance", "-numeric2", "Age",
		"-objective", "CardLoan", "-grid", "16", "-minconf", "0.5"}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	// 2-D without the second attribute's partner flags.
	if err := run([]string{"-in", path, "-numeric2", "Age"}, os.Stdout); err == nil {
		t.Errorf("incomplete 2-D flags accepted")
	}
	// Region classes.
	for _, rc := range []string{"xmonotone", "rectconvex"} {
		if err := run([]string{"-in", path, "-numeric", "Balance", "-numeric2", "Age",
			"-objective", "CardLoan", "-grid", "10", "-region", rc}, os.Stdout); err != nil {
			t.Fatalf("region %s: %v", rc, err)
		}
	}
	if err := run([]string{"-in", path, "-numeric", "Balance", "-numeric2", "Age",
		"-objective", "CardLoan", "-region", "blob"}, os.Stdout); err == nil {
		t.Errorf("unknown region class accepted")
	}
}

func TestRunAll2DMode(t *testing.T) {
	path := writeBankCSV(t, 3000)
	// Every pair of the bank's three numeric attributes.
	if err := run([]string{"-in", path, "-all2d", "-objective", "CardLoan",
		"-grid", "12", "-top", "4"}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	// Restricted attribute list plus a region class, JSON output.
	if err := run([]string{"-in", path, "-all2d", "-objective", "CardLoan",
		"-numerics", "Age, Balance", "-grid", "10", "-region", "xmonotone", "-json"}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	// Missing objective and bad region class must error.
	if err := run([]string{"-in", path, "-all2d"}, os.Stdout); err == nil {
		t.Errorf("all2d without -objective accepted")
	}
	if err := run([]string{"-in", path, "-all2d", "-objective", "CardLoan",
		"-region", "blob"}, os.Stdout); err == nil {
		t.Errorf("unknown region class accepted")
	}
	if err := run([]string{"-in", path, "-all2d", "-objective", "CardLoan",
		"-numerics", "Age, Nope"}, os.Stdout); err == nil {
		t.Errorf("unknown numeric attribute accepted")
	}
}

func TestRunDescribeMode(t *testing.T) {
	path := writeBankCSV(t, 500)
	if err := run([]string{"-in", path, "-describe"}, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestRunAvgMode(t *testing.T) {
	path := writeBankCSV(t, 3000)
	err := run([]string{"-in", path, "-avg", "-numeric", "Age", "-target", "Balance",
		"-minsup", "0.2", "-buckets", "50", "-minavg", "1"}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	path := writeBankCSV(t, 100)
	cases := [][]string{
		{},                                   // missing -in
		{"-in", "nope.txt"},                  // bad extension
		{"-in", "missing.csv"},               // missing file
		{"-in", path, "-numeric", "Balance"}, // numeric without objective
		{"-in", path, "-avg"},                // avg without attrs
		{"-in", path, "-numeric", "X", "-objective", "CardLoan"}, // unknown attr
	}
	for i, args := range cases {
		if err := run(args, os.Stdout); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}

func TestOpenRelationOpr(t *testing.T) {
	bank, _ := datagen.NewBank(datagen.BankConfig{})
	path := filepath.Join(t.TempDir(), "bank.opr")
	if err := datagen.WriteDisk(path, bank, 500, 2); err != nil {
		t.Fatal(err)
	}
	rel, err := openRelation(path)
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumTuples() != 500 {
		t.Errorf("NumTuples = %d", rel.NumTuples())
	}
}
