// Command optmine mines optimized association rules from a CSV file or
// a binary .opr relation.
//
// Mine everything (all numeric × Boolean attribute combinations):
//
//	optmine -in customers.csv -minsup 0.1 -minconf 0.6 -top 20
//
// Mine one targeted rule, optionally with a presumptive condition:
//
//	optmine -in customers.csv -numeric Balance -objective CardLoan \
//	        -cond AutoWithdraw=yes -minconf 0.55
//
// Section 5 average-operator queries:
//
//	optmine -in customers.csv -avg -numeric CheckingAccount \
//	        -target SavingAccount -minsup 0.10
//
// All-pairs 2-D mining (§1.4, fused engine — two relation scans for
// every attribute pair; see -grid for the per-axis bucket count):
//
//	optmine -in customers.csv -all2d -objective CardLoan -grid 32 \
//	        -region xmonotone -top 10
//
// Batch mode: answer a whole JSON file of heterogeneous queries from
// ONE plan/execute session — the entire batch costs exactly two
// relation scans (see batch.go for the query format):
//
//	optmine -in customers.csv -batch queries.json -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"optrule/internal/miner"
	"optrule/internal/relation"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "optmine:", err)
		os.Exit(1)
	}
}

func run(args []string, w *os.File) error {
	fs := flag.NewFlagSet("optmine", flag.ContinueOnError)
	in := fs.String("in", "", "input .csv file, .opr file, or .oprs shard manifest (required)")
	minSup := fs.Float64("minsup", 0.05, "minimum support threshold (fraction)")
	minConf := fs.Float64("minconf", 0.5, "minimum confidence threshold (fraction)")
	buckets := fs.Int("buckets", 1000, "number of equi-depth buckets M")
	seed := fs.Int64("seed", 1, "random seed for bucket sampling")
	top := fs.Int("top", 0, "print only the top-K rules by lift (0 = all)")
	numeric := fs.String("numeric", "", "targeted mining: numeric attribute A")
	objective := fs.String("objective", "", "targeted mining: Boolean objective attribute C")
	objValue := fs.Bool("value", true, "targeted mining: required objective value")
	conds := fs.String("cond", "", "comma-separated presumptive conditions, e.g. Pizza=yes,Beer=no")
	negations := fs.Bool("negations", false, "also mine (C=no) objectives in MineAll mode")
	profile := fs.Bool("profile", false, "targeted mining: also render the per-bucket confidence profile")
	topK := fs.Int("k", 0, "targeted mining: return up to K disjoint optimized-confidence ranges")
	describe := fs.Bool("describe", false, "print a per-attribute summary of the input and exit")
	jsonOut := fs.Bool("json", false, "emit rules as JSON instead of text")
	numeric2 := fs.String("numeric2", "", "2-D mining: second numeric attribute (rectangle rules, with -numeric and -objective)")
	gridSide := fs.Int("grid", 0, "2-D mining: buckets per axis (0 = default)")
	regionClass := fs.String("region", "", "2-D mining: also mine a gain-optimal region of this class: xmonotone or rectconvex")
	all2D := fs.Bool("all2d", false, "2-D mining: mine every numeric attribute pair against -objective in two relation scans (fused engine); -numerics restricts the attributes")
	numerics := fs.String("numerics", "", "all-pairs 2-D mining: comma-separated numeric attributes to pair up (default: all)")
	batch := fs.String("batch", "", "batch mode: path to a queries JSON file, answered by one session in two relation scans (see cmd/optmine/batch.go for the format)")
	cacheStats := fs.Bool("cachestats", false, "batch mode: print the session cache's occupancy and delta-merge telemetry after the batch (to stderr under -json)")
	avg := fs.Bool("avg", false, "average-operator mode (Section 5); requires -numeric and -target")
	target := fs.String("target", "", "average mode: target numeric attribute B")
	minAvg := fs.Float64("minavg", 0, "average mode: minimum average for the max-support range (0 = skip)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	rel, err := openRelation(*in)
	if err != nil {
		return err
	}
	cfg := miner.Config{
		MinSupport:    *minSup,
		MinConfidence: *minConf,
		Buckets:       *buckets,
		Seed:          *seed,
		MineNegations: *negations,
	}

	if *describe {
		sum, err := miner.Describe(rel)
		if err != nil {
			return err
		}
		sum.Print(w)
		return nil
	}

	if *batch != "" {
		return runBatch(rel, *batch, cfg, *jsonOut, *cacheStats, w)
	}

	if *avg {
		if *numeric == "" || *target == "" {
			return fmt.Errorf("average mode requires -numeric and -target")
		}
		got, err := miner.MaxAverageRange(rel, *numeric, *target, *minSup, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "maximum-average range:", got)
		if *minAvg > 0 {
			msr, err := miner.MaxSupportRange(rel, *numeric, *target, *minAvg, cfg)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, "maximum-support range:", msr)
		}
		return nil
	}

	if *all2D {
		if *objective == "" {
			return fmt.Errorf("all-pairs 2-D mining requires -objective")
		}
		opt := miner.Options2D{
			Objective:      *objective,
			ObjectiveValue: *objValue,
			GridSide:       *gridSide,
		}
		if *numerics != "" {
			for _, name := range strings.Split(*numerics, ",") {
				opt.Numerics = append(opt.Numerics, strings.TrimSpace(name))
			}
		}
		switch *regionClass {
		case "":
		case "xmonotone":
			opt.Regions = []miner.RegionClass{miner.XMonotoneClass}
		case "rectconvex":
			opt.Regions = []miner.RegionClass{miner.RectilinearConvexClass}
		default:
			return fmt.Errorf("unknown region class %q (want xmonotone or rectconvex)", *regionClass)
		}
		res, err := miner.MineAll2D(rel, opt, cfg)
		if err != nil {
			return err
		}
		rules := res.Rules
		if *top > 0 && len(rules) > *top {
			rules = rules[:*top]
		}
		if *jsonOut {
			rects := make([]jsonRule2D, len(rules))
			for i, r := range rules {
				rects[i] = toJSONRule2D(r)
			}
			regions := make([]jsonRegion, len(res.Regions))
			for i, r := range res.Regions {
				regions[i] = toJSONRegion(r)
			}
			out := struct {
				Pairs      int
				Rectangles []jsonRule2D
				Regions    []jsonRegion `json:",omitempty"`
			}{Pairs: res.Pairs, Rectangles: rects, Regions: regions}
			return json.NewEncoder(w).Encode(out)
		}
		fmt.Fprintf(w, "%d tuples, %d attribute pairs, %d rectangle rules (showing %d):\n",
			res.Tuples, res.Pairs, len(res.Rules), len(rules))
		for _, r := range rules {
			fmt.Fprintln(w, " ", r)
		}
		for _, r := range res.Regions {
			fmt.Fprint(w, r.Describe())
		}
		return nil
	}

	if *numeric2 != "" {
		if *numeric == "" || *objective == "" {
			return fmt.Errorf("2-D mining requires -numeric, -numeric2, and -objective")
		}
		var rules []*miner.Rule2D
		for _, kind := range []miner.RuleKind{miner.OptimizedSupport, miner.OptimizedConfidence} {
			r, err := miner.Mine2D(rel, *numeric, *numeric2, *objective, *objValue, kind, *gridSide, cfg)
			if err != nil {
				return err
			}
			if r != nil {
				rules = append(rules, r)
			}
		}
		var regionRule *miner.RegionRule
		switch *regionClass {
		case "":
		case "xmonotone":
			regionRule, err = miner.MineXMonotone(rel, *numeric, *numeric2, *objective, *objValue, *gridSide, cfg)
		case "rectconvex":
			regionRule, err = miner.MineRectilinearConvex(rel, *numeric, *numeric2, *objective, *objValue, *gridSide, cfg)
		default:
			return fmt.Errorf("unknown region class %q (want xmonotone or rectconvex)", *regionClass)
		}
		if err != nil {
			return err
		}
		if *jsonOut {
			rects := make([]jsonRule2D, len(rules))
			for i, r := range rules {
				rects[i] = toJSONRule2D(*r)
			}
			out := struct {
				Rectangles []jsonRule2D
				Region     *jsonRegion `json:",omitempty"`
			}{Rectangles: rects}
			if regionRule != nil {
				jr := toJSONRegion(*regionRule)
				out.Region = &jr
			}
			return json.NewEncoder(w).Encode(out)
		}
		if len(rules) == 0 {
			fmt.Fprintln(w, "no rectangle meets the thresholds")
		}
		for _, r := range rules {
			fmt.Fprintln(w, r)
		}
		if regionRule != nil {
			fmt.Fprint(w, regionRule.Describe())
		} else if *regionClass != "" {
			fmt.Fprintf(w, "no %s region achieves positive gain\n", *regionClass)
		}
		return nil
	}

	if *numeric != "" || *objective != "" {
		if *numeric == "" || *objective == "" {
			return fmt.Errorf("targeted mining requires both -numeric and -objective")
		}
		conditions, err := parseConds(*conds)
		if err != nil {
			return err
		}
		sup, conf, err := miner.Mine(rel, *numeric, *objective, *objValue, conditions, cfg)
		if err != nil {
			return err
		}
		if *jsonOut {
			var rules []jsonRule
			for _, r := range []*miner.Rule{sup, conf} {
				if r != nil {
					rules = append(rules, toJSONRule(*r))
				}
			}
			return json.NewEncoder(w).Encode(rules)
		}
		if sup == nil && conf == nil {
			fmt.Fprintln(w, "no rule meets the thresholds")
		}
		if sup != nil {
			fmt.Fprintln(w, sup)
		}
		if conf != nil {
			fmt.Fprintln(w, conf)
		}
		if *topK > 1 {
			rules, err := miner.MineTopK(rel, *numeric, *objective, *objValue, miner.OptimizedConfidence, *topK, cfg)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "top %d disjoint optimized-confidence ranges:\n", len(rules))
			for i, r := range rules {
				fmt.Fprintf(w, "  %d. %s\n", i+1, r.String())
			}
		}
		if *profile {
			prof, err := miner.BuildProfile(rel, *numeric, *objective, *objValue, 25, cfg)
			if err != nil {
				return err
			}
			lo, hi := 0.0, 0.0
			mark := false
			if conf != nil {
				lo, hi, mark = conf.Low, conf.High, true
			}
			prof.Render(w, lo, hi, mark)
		}
		return nil
	}

	res, err := miner.MineAll(rel, cfg)
	if err != nil {
		return err
	}
	rules := res.Rules
	if *top > 0 && len(rules) > *top {
		rules = rules[:*top]
	}
	if *jsonOut {
		out := make([]jsonRule, len(rules))
		for i, r := range rules {
			out[i] = toJSONRule(r)
		}
		return json.NewEncoder(w).Encode(out)
	}
	fmt.Fprintf(w, "%d tuples, %d rules (showing %d):\n", res.Tuples, len(res.Rules), len(rules))
	for _, r := range rules {
		fmt.Fprintln(w, " ", r)
	}
	return nil
}

// jsonF is a float64 that encodes non-finite values as null: region
// bands covering outermost buckets have ±Inf value bounds
// (Boundaries.BucketRange), and bands over empty buckets have no
// observed extremes — JSON cannot encode either.
type jsonF float64

// MarshalJSON implements json.Marshaler.
func (f jsonF) MarshalJSON() ([]byte, error) {
	if math.IsInf(float64(f), 0) || math.IsNaN(float64(f)) {
		return []byte("null"), nil
	}
	return json.Marshal(float64(f))
}

// jsonBand is RegionBand with null-safe bounds.
type jsonBand struct {
	BLo, BHi jsonF
	ALo, AHi jsonF
}

// jsonRule2D is Rule2D with null-safe value ranges: columns holding
// ±Inf values yield rectangles whose observed extremes are infinite.
type jsonRule2D struct {
	Kind           miner.RuleKind
	NumericA       string
	NumericB       string
	LowA, HighA    jsonF
	LowB, HighB    jsonF
	Objective      string
	ObjectiveValue bool
	Support        float64
	Count          int
	Confidence     float64
	Baseline       float64
	Gain           float64
	GridRows       int
	GridCols       int
}

func toJSONRule2D(r miner.Rule2D) jsonRule2D {
	return jsonRule2D{
		Kind:     r.Kind,
		NumericA: r.NumericA, NumericB: r.NumericB,
		LowA: jsonF(r.LowA), HighA: jsonF(r.HighA),
		LowB: jsonF(r.LowB), HighB: jsonF(r.HighB),
		Objective: r.Objective, ObjectiveValue: r.ObjectiveValue,
		Support: r.Support, Count: r.Count,
		Confidence: r.Confidence, Baseline: r.Baseline, Gain: r.Gain,
		GridRows: r.GridRows, GridCols: r.GridCols,
	}
}

// jsonRegion is RegionRule in JSON-safe form.
type jsonRegion struct {
	Class          string
	NumericA       string
	NumericB       string
	Objective      string
	ObjectiveValue bool
	Bands          []jsonBand
	Support        float64
	Count          int
	Confidence     float64
	Baseline       float64
	Gain           float64
}

func toJSONRegion(r miner.RegionRule) jsonRegion {
	out := jsonRegion{
		Class:          r.Class.String(),
		NumericA:       r.NumericA,
		NumericB:       r.NumericB,
		Objective:      r.Objective,
		ObjectiveValue: r.ObjectiveValue,
		Support:        r.Support,
		Count:          r.Count,
		Confidence:     r.Confidence,
		Baseline:       r.Baseline,
		Gain:           r.Gain,
	}
	for _, b := range r.Bands {
		out.Bands = append(out.Bands, jsonBand{
			BLo: jsonF(b.BLo), BHi: jsonF(b.BHi), ALo: jsonF(b.ALo), AHi: jsonF(b.AHi),
		})
	}
	return out
}

// jsonRule augments a mined rule with its derived statistics for
// machine-readable output. Lift is omitted when infinite (JSON cannot
// encode +Inf).
type jsonRule struct {
	miner.Rule
	Lift   float64 `json:"lift,omitempty"`
	PValue float64 `json:"pValue"`
}

func toJSONRule(r miner.Rule) jsonRule {
	out := jsonRule{Rule: r, PValue: r.PValue()}
	if l := r.Lift(); !math.IsInf(l, 0) {
		out.Lift = l
	}
	return out
}

// openRelation loads a relation from .csv, .opr, or a .oprs shard
// manifest (OpenData sniffs which binary backend the path holds).
func openRelation(path string) (relation.Relation, error) {
	switch {
	case strings.HasSuffix(path, ".opr"), strings.HasSuffix(path, ".oprs"):
		return relation.OpenData(path)
	case strings.HasSuffix(path, ".csv"):
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return relation.ReadCSVAutoSchema(f)
	default:
		return nil, fmt.Errorf("input must be .csv, .opr, or .oprs, got %q", path)
	}
}

// parseConds parses "A=yes,B=no" into miner conditions.
func parseConds(s string) ([]miner.Condition, error) {
	if s == "" {
		return nil, nil
	}
	var out []miner.Condition
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("condition %q must look like Attr=yes or Attr=no", part)
		}
		switch strings.ToLower(kv[1]) {
		case "yes", "true", "1":
			out = append(out, miner.Condition{Attr: kv[0], Value: true})
		case "no", "false", "0":
			out = append(out, miner.Condition{Attr: kv[0], Value: false})
		default:
			return nil, fmt.Errorf("condition value %q must be yes or no", kv[1])
		}
	}
	return out, nil
}
