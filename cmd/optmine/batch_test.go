package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// validBatch is a well-formed heterogeneous queries file used by the
// parser and end-to-end tests.
const validBatch = `[
  {"op": "rules", "minConfidence": 0.6},
  {"op": "rules", "numeric": "Balance", "objective": "CardLoan",
   "conditions": [{"attr": "AutoWithdraw", "value": true}]},
  {"op": "rules2d", "numeric": "Balance", "numericB": "Age",
   "objective": "CardLoan", "gridSide": 16, "regions": ["x-monotone"]},
  {"op": "topk", "numeric": "Balance", "objective": "CardLoan", "k": 3},
  {"op": "average", "numeric": "Balance", "target": "Age", "minSupport": 0.1},
  {"op": "conjunctive", "numeric": "Age",
   "objectives": [{"attr": "CardLoan", "value": true}],
   "conditions": [{"attr": "Mortgage", "value": true}]}
]`

func TestParseBatchValid(t *testing.T) {
	queries, err := ParseBatch([]byte(validBatch))
	if err != nil {
		t.Fatal(err)
	}
	if len(queries) != 6 {
		t.Fatalf("parsed %d queries, want 6", len(queries))
	}
	// The CLI convention: omitted objectiveValue means yes.
	if !queries[1].ObjectiveValue {
		t.Errorf("omitted objectiveValue did not default to yes")
	}
	if queries[3].K != 3 {
		t.Errorf("k not parsed: %+v", queries[3])
	}
}

// TestParseBatchCorruption is the table of malformed batch files every
// one of which must be rejected with an error (never a panic, never a
// silently wrong query).
func TestParseBatchCorruption(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"empty input", ``},
		{"not an array", `{"op": "rules"}`},
		{"empty array", `[]`},
		{"trailing data", `[{"op": "rules"}] [{"op": "rules"}]`},
		{"truncated", `[{"op": "rules"`},
		{"unknown op", `[{"op": "mine-everything"}]`},
		{"numeric op", `[{"op": 3}]`},
		{"unknown field", `[{"op": "rules", "turbo": true}]`},
		{"unknown kind", `[{"op": "rules", "kinds": ["optimized-banana"]}]`},
		{"numeric kind", `[{"op": "rules", "kinds": [1]}]`},
		{"rectangle as region", `[{"op": "rules2d", "objective": "C", "regions": ["rectangle"]}]`},
		{"unknown region", `[{"op": "rules2d", "objective": "C", "regions": ["blob"]}]`},
		{"negative minSupport", `[{"op": "rules", "minSupport": -0.5}]`},
		{"minSupport above one", `[{"op": "rules", "minSupport": 1.5}]`},
		{"minConfidence above one", `[{"op": "rules", "minConfidence": 2}]`},
		{"negative buckets", `[{"op": "rules", "buckets": -10}]`},
		{"negative grid side", `[{"op": "rules2d", "objective": "C", "gridSide": -4}]`},
		{"negative k", `[{"op": "topk", "numeric": "X", "objective": "C", "k": -1}]`},
		{"duplicate pair attribute", `[{"op": "rules2d", "numeric": "X", "numericB": "X", "objective": "C"}]`},
		{"duplicate in numerics", `[{"op": "rules2d", "numerics": ["X", "Y", "X"], "objective": "C"}]`},
		{"empty name in numerics", `[{"op": "rules2d", "numerics": ["X", ""], "objective": "C"}]`},
		{"malformed condition", `[{"op": "rules", "conditions": [{"attr": 5}]}]`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseBatch([]byte(tc.data)); err == nil {
				t.Errorf("corrupt batch accepted: %s", tc.data)
			}
		})
	}
}

// TestBatchEndToEnd runs the full -batch mode against a real CSV:
// the valid file answers every query; schema-level corruption (unknown
// or duplicate attributes that only the relation can reveal) fails the
// command while still reporting the healthy answers.
func TestBatchEndToEnd(t *testing.T) {
	csv := writeBankCSV(t, 2000)
	dir := t.TempDir()

	good := filepath.Join(dir, "good.json")
	if err := os.WriteFile(good, []byte(validBatch), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out.json")
	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", csv, "-batch", good, "-json"}, f); err != nil {
		t.Fatalf("valid batch failed: %v", err)
	}
	f.Close()
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var answers []map[string]any
	if err := json.Unmarshal(data, &answers); err != nil {
		t.Fatalf("batch output is not JSON: %v", err)
	}
	if len(answers) != 6 {
		t.Fatalf("got %d answers, want 6", len(answers))
	}
	for i, a := range answers {
		if e, ok := a["error"]; ok {
			t.Errorf("answer %d unexpectedly failed: %v", i, e)
		}
	}

	// Unknown attribute: parses fine, fails at resolution, and the
	// command reports the failure.
	bad := filepath.Join(dir, "bad.json")
	badBatch := `[
	  {"op": "rules", "numeric": "Balance", "objective": "CardLoan"},
	  {"op": "rules", "numeric": "NoSuchColumn", "objective": "CardLoan"}
	]`
	if err := os.WriteFile(bad, []byte(badBatch), 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-in", csv, "-batch", bad}, os.NewFile(0, os.DevNull))
	if err == nil || !strings.Contains(err.Error(), "1 of 2 queries failed") {
		t.Errorf("unknown attribute not reported: %v", err)
	}
}

// TestBatchCacheStats pins the -cachestats summary: after a batch the
// text output ends with the cache occupancy line and the delta-merge
// telemetry line (all zero here — a fresh session saw no appends).
func TestBatchCacheStats(t *testing.T) {
	csv := writeBankCSV(t, 2000)
	dir := t.TempDir()
	queries := filepath.Join(dir, "q.json")
	if err := os.WriteFile(queries, []byte(validBatch), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out.txt")
	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", csv, "-batch", queries, "-cachestats"}, f); err != nil {
		t.Fatalf("batch with -cachestats failed: %v", err)
	}
	f.Close()
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	if !strings.Contains(text, "cache: ") {
		t.Errorf("missing cache occupancy line:\n%s", text)
	}
	if !strings.Contains(text, "delta: 0 tail scans over 0 rows, 0 entries folded, 0 boundary re-samples") {
		t.Errorf("missing delta telemetry line:\n%s", text)
	}
}

// FuzzParseBatch fuzzes the query-JSON parser: any input must either
// parse into a validated query list or return an error — no panics,
// and every parsed query must survive its own validation.
func FuzzParseBatch(f *testing.F) {
	f.Add([]byte(validBatch))
	f.Add([]byte(`[]`))
	f.Add([]byte(`[{"op": "rules"}]`))
	f.Add([]byte(`[{"op": "topk", "numeric": "X", "objective": "C", "k": 3}]`))
	f.Add([]byte(`[{"op": "rules", "kinds": ["optimized-gain"], "minSupport": 0.5}]`))
	f.Add([]byte(`[{"op": "rules2d", "numerics": ["A", "B", "C"], "objective": "D"}]`))
	f.Add([]byte(`[{"op": "average", "numeric": "X", "target": "Y", "minSupport": 1}]`))
	f.Add([]byte(`{"op": "rules"}`))
	f.Add([]byte(`[{"op": "rules", "minSupport": -1}]`))
	f.Add([]byte(`[{"op": "rules", "turbo": true}]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		queries, err := ParseBatch(data)
		if err != nil {
			return
		}
		if len(queries) == 0 {
			t.Fatalf("ParseBatch accepted %q but returned no queries", data)
		}
		for i, q := range queries {
			if err := validateQuery(q); err != nil {
				t.Fatalf("accepted query %d fails its own validation: %v", i, err)
			}
		}
	})
}
