// Command optbench regenerates every table and figure of the paper's
// evaluation and prints them in the paper's format.
//
//	optbench -exp all          # everything at scaled-down sizes
//	optbench -exp fig9 -full   # Figure 9 at paper scale (5·10⁵…5·10⁶ tuples)
//	optbench -exp fig10        # optimized-confidence rule timings
//
// Experiments: fig1 (sample-size analysis), table1 (approximation error
// bounds and measurements), fig9 (bucketing performance), fig10
// (optimized-confidence rules vs naive), fig11 (optimized-support rules
// vs naive), par (parallel bucketing, Section 3.3), fused (one-scan
// multi-attribute counting engine vs per-attribute passes).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "optbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("optbench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment: fig1, table1, fig9, fig9disk, fig10, fig11, par, ablate, regions, fused, or all")
	full := fs.Bool("full", false, "paper-scale sizes (slow; needs several GB of RAM for fig9)")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	ran := false

	if all || want["fig1"] {
		ran = true
		if err := runFig1(); err != nil {
			return err
		}
	}
	if all || want["table1"] {
		ran = true
		if err := runTable1(); err != nil {
			return err
		}
	}
	if all || want["fig9"] {
		ran = true
		if err := runFig9(*full, *seed); err != nil {
			return err
		}
	}
	if all || want["fig9disk"] {
		ran = true
		if err := runFig9Disk(*full, *seed); err != nil {
			return err
		}
	}
	if all || want["fig10"] {
		ran = true
		if err := runFig10(*full, *seed); err != nil {
			return err
		}
	}
	if all || want["fig11"] {
		ran = true
		if err := runFig11(*full, *seed); err != nil {
			return err
		}
	}
	if all || want["par"] {
		ran = true
		if err := runParallel(*full, *seed); err != nil {
			return err
		}
	}
	if all || want["ablate"] {
		ran = true
		if err := runAblations(*full, *seed); err != nil {
			return err
		}
	}
	if all || want["regions"] {
		ran = true
		if err := runRegions(*full, *seed); err != nil {
			return err
		}
	}
	if all || want["fused"] {
		ran = true
		if err := runFused(*full, *seed); err != nil {
			return err
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return nil
}
