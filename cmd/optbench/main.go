// Command optbench regenerates every table and figure of the paper's
// evaluation and prints them in the paper's format.
//
//	optbench -exp all          # everything at scaled-down sizes
//	optbench -exp fig9 -full   # Figure 9 at paper scale (5·10⁵…5·10⁶ tuples)
//	optbench -exp fig10        # optimized-confidence rule timings
//	optbench -exp colscan -json BENCH_colscan.json
//
// Experiments: fig1 (sample-size analysis), table1 (approximation error
// bounds and measurements), fig9 (bucketing performance), fig10
// (optimized-confidence rules vs naive), fig11 (optimized-support rules
// vs naive), par (parallel bucketing, Section 3.3), fused (one-scan
// multi-attribute counting engine vs per-attribute passes), colscan
// (column-major v2 disk format vs row-major v1, counted bytes), v3scan
// (compressed v3 format vs v2: file size, unfiltered scan cost, and
// zone-map pruning on a clustered filter, rule-deviation hard-fail),
// cluster (prunable layouts end to end: clustered-vs-shuffled filtered
// read bytes, plus static-vs-work-stealing predicated parallel scan
// wall-clock per PE count, rule-deviation hard-fail),
// kernel (general counting kernel: batch-vectorized vs reference
// per-tuple vs the homogeneous MultiCount fast path, ns/row), twodim
// (fused all-pairs 2-D engine vs legacy per-pair pipeline: wall-clock
// and bytes vs pair count and grid side, plus a single-pair all-kinds
// deep-grid sweep), shards (sharded backend: single-file vs 2/4/8-shard
// MineAll, serial and concurrent sub-scans, counted bytes), batch
// (plan/execute session: a mixed B-query workload per-query vs batched
// vs session-cached re-query, wall-clock and counted bytes), append
// (incremental ingest: a warm session absorbing 0.1%/1%/10% appends by
// delta statistics merge vs a cold two-scan cache rebuild, wall-clock
// and counted bytes, answer-deviation and byte-ratio hard-fail).
//
// -json FILE additionally writes every experiment's structured result
// to FILE as a single JSON document, so the perf trajectory can be
// tracked across commits by archiving BENCH_*.json files.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "optbench:", err)
		os.Exit(1)
	}
}

// report is the -json document: experiment name -> structured result.
type report struct {
	Seed    int64          `json:"seed"`
	Full    bool           `json:"full"`
	Results map[string]any `json:"results"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("optbench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment: fig1, table1, fig9, fig9disk, fig10, fig11, par, ablate, regions, fused, colscan, v3scan, cluster, kernel, twodim, shards, batch, append, scatter, or all")
	full := fs.Bool("full", false, "paper-scale sizes (slow; needs several GB of RAM for fig9)")
	seed := fs.Int64("seed", 1, "random seed")
	jsonPath := fs.String("json", "", "also write structured results as JSON to this file (e.g. BENCH_optbench.json)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		if name := strings.TrimSpace(e); name != "" {
			want[name] = true
		}
	}
	if len(want) == 0 {
		return fmt.Errorf("no experiment selected")
	}
	all := want["all"]
	rep := report{Seed: *seed, Full: *full, Results: map[string]any{}}

	runners := []struct {
		name string
		run  func(full bool, seed int64) (any, error)
	}{
		{"fig1", runFig1},
		{"table1", runTable1},
		{"fig9", runFig9},
		{"fig9disk", runFig9Disk},
		{"fig10", runFig10},
		{"fig11", runFig11},
		{"par", runParallel},
		{"ablate", runAblations},
		{"regions", runRegions},
		{"fused", runFused},
		{"colscan", runColScan},
		{"v3scan", runV3Scan},
		{"cluster", runCluster},
		{"kernel", runKernel},
		{"twodim", runTwoDim},
		{"shards", runShards},
		{"batch", runBatch},
		{"append", runAppend},
		{"scatter", runScatter},
	}
	known := map[string]bool{"all": true}
	for _, r := range runners {
		known[r.name] = true
	}
	for name := range want {
		if !known[name] {
			return fmt.Errorf("unknown experiment %q", name)
		}
	}
	var runErr error
	for _, r := range runners {
		if !all && !want[r.name] {
			continue
		}
		res, err := r.run(*full, *seed)
		if err != nil {
			runErr = fmt.Errorf("%s: %w", r.name, err)
			break
		}
		rep.Results[r.name] = res
	}
	// Write whatever completed even when a runner failed: hours of
	// paper-scale results should not vanish because the last experiment
	// hit a transient error.
	if *jsonPath != "" && len(rep.Results) > 0 {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			data = append(data, '\n')
			err = writeFileAtomic(*jsonPath, data)
		}
		if err != nil {
			if runErr == nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "optbench: writing %s: %v\n", *jsonPath, err)
		} else {
			fmt.Printf("wrote %d experiment results to %s\n", len(rep.Results), *jsonPath)
		}
	}
	return runErr
}

// writeFileAtomic writes data through a temp file renamed over path,
// so a failed run cannot truncate the results file of a previous one —
// hours of paper-scale numbers may be sitting there.
func writeFileAtomic(path string, data []byte) error {
	tf, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := tf.Name()
	if _, err := tf.Write(data); err != nil {
		tf.Close()
		os.Remove(tmp)
		return err
	}
	if err := tf.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Chmod(tmp, 0o644); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
