package main

// Each runner prints its experiment in the paper's format and returns
// the structured result for the -json report.

import (
	"fmt"
	"os"

	"optrule/internal/experiments"
)

func runFig1(bool, int64) (any, error) {
	res := experiments.Fig1(100)
	res.Print(os.Stdout)
	fmt.Println()
	return res, nil
}

func runTable1(bool, int64) (any, error) {
	res := experiments.Table1(100000)
	res.Print(os.Stdout)
	fmt.Println()
	return res, nil
}

func runFig9(full bool, seed int64) (any, error) {
	sizes := []int{50000, 100000, 200000, 400000, 800000}
	if full {
		sizes = []int{500000, 1000000, 2000000, 5000000}
	}
	res, err := experiments.Fig9(sizes, seed)
	if err != nil {
		return nil, err
	}
	res.Print(os.Stdout)
	fmt.Println()
	return res, nil
}

func runFig9Disk(full bool, seed int64) (any, error) {
	sizes := []int{100000, 200000, 400000, 800000}
	if full {
		sizes = []int{500000, 1000000, 2000000, 5000000}
	}
	res, err := experiments.Fig9Disk(sizes, 1<<16, seed)
	if err != nil {
		return nil, err
	}
	res.Print(os.Stdout)
	fmt.Println()
	return res, nil
}

func runFig10(full bool, seed int64) (any, error) {
	ms := []int{100, 500, 1000, 5000, 10000, 100000, 1000000}
	naiveCap := 20000
	if full {
		naiveCap = 1000000
	}
	res := experiments.Fig10(ms, naiveCap, seed)
	res.Print(os.Stdout)
	fmt.Println()
	return res, nil
}

func runFig11(full bool, seed int64) (any, error) {
	ms := []int{100, 500, 1000, 5000, 10000, 100000, 1000000}
	naiveCap := 20000
	if full {
		naiveCap = 1000000
	}
	res := experiments.Fig11(ms, naiveCap, seed)
	res.Print(os.Stdout)
	fmt.Println()
	return res, nil
}

func runAblations(full bool, seed int64) (any, error) {
	out := map[string]any{}
	n := 500000
	if full {
		n = 5000000
	}
	sf, err := experiments.AblateSampleFactor(n, 1000, nil, seed)
	if err != nil {
		return nil, err
	}
	sf.Print(os.Stdout)
	fmt.Println()
	out["sampleFactor"] = sf

	ms := []int{100, 1000, 10000, 50000}
	if full {
		ms = append(ms, 200000)
	}
	ht, err := experiments.AblateHullTree(ms, seed)
	if err != nil {
		return nil, err
	}
	ht.Print(os.Stdout)
	fmt.Println()
	out["hullTree"] = ht

	bc, err := experiments.AblateBucketCount(n/2, nil, seed)
	if err != nil {
		return nil, err
	}
	bc.Print(os.Stdout)
	fmt.Println()
	out["bucketCount"] = bc

	sc, err := experiments.AblateBucketingScheme(n/2, nil, seed)
	if err != nil {
		return nil, err
	}
	sc.Print(os.Stdout)
	fmt.Println()
	out["bucketingScheme"] = sc
	return out, nil
}

func runRegions(full bool, seed int64) (any, error) {
	side := 32
	if full {
		side = 64
	}
	res, err := experiments.Regions(side, 50, seed)
	if err != nil {
		return nil, err
	}
	res.Print(os.Stdout)
	fmt.Println()
	return res, nil
}

func runFused(full bool, seed int64) (any, error) {
	n := 200000
	if full {
		n = 2000000
	}
	res, err := experiments.Fused(n, []int{1, 2, 4, 8}, seed)
	if err != nil {
		return nil, err
	}
	res.Print(os.Stdout)
	fmt.Println()
	return res, nil
}

func runColScan(full bool, seed int64) (any, error) {
	n := 300000
	if full {
		n = 3000000
	}
	res, err := experiments.ColScan(n, 8, []int{1, 2, 4, 8}, seed)
	if err != nil {
		return nil, err
	}
	res.Print(os.Stdout)
	fmt.Println()
	return res, nil
}

func runCluster(full bool, seed int64) (any, error) {
	n, groupRows := 2000000, 1<<9
	if full {
		n, groupRows = 8000000, 1<<10
	}
	res, err := experiments.Cluster(n, groupRows, []int{1, 2, 4, 8}, seed)
	if err != nil {
		return nil, err
	}
	res.Print(os.Stdout)
	fmt.Println()
	return res, nil
}

func runV3Scan(full bool, seed int64) (any, error) {
	n, groupRows := 300000, 1<<14
	if full {
		n, groupRows = 3000000, 1<<16
	}
	res, err := experiments.V3Scan(n, groupRows, seed)
	if err != nil {
		return nil, err
	}
	res.Print(os.Stdout)
	fmt.Println()
	return res, nil
}

func runKernel(full bool, seed int64) (any, error) {
	n := 300000
	if full {
		n = 2000000
	}
	res, err := experiments.Kernel(n, seed)
	if err != nil {
		return nil, err
	}
	res.Print(os.Stdout)
	fmt.Println()
	return res, nil
}

func runShards(full bool, seed int64) (any, error) {
	n := 400000
	if full {
		n = 4000000
	}
	res, err := experiments.Shards(n, []int{2, 4, 8}, seed)
	if err != nil {
		return nil, err
	}
	res.Print(os.Stdout)
	fmt.Println()
	return res, nil
}

func runScatter(full bool, seed int64) (any, error) {
	n, shards := 400000, 8
	if full {
		n = 4000000
	}
	res, err := experiments.Scatter(n, shards, []int{0, 1, 2, 4, 8}, seed)
	if err != nil {
		return nil, err
	}
	res.Print(os.Stdout)
	fmt.Println()
	return res, nil
}

func runBatch(full bool, seed int64) (any, error) {
	n := 500000
	if full {
		n = 4000000
	}
	res, err := experiments.Batch(n, seed)
	if err != nil {
		return nil, err
	}
	res.Print(os.Stdout)
	fmt.Println()
	return res, nil
}

func runAppend(full bool, seed int64) (any, error) {
	n := 500000
	if full {
		n = 4000000
	}
	// 0.1% and 1% stay inside the §3.4 bucket-error budget and must
	// fold; the cumulative ~11% of the last step must re-sample.
	res, err := experiments.Append(n, []float64{0.001, 0.01, 0.10}, seed)
	if err != nil {
		return nil, err
	}
	res.Print(os.Stdout)
	fmt.Println()
	return res, nil
}

func runTwoDim(full bool, seed int64) (any, error) {
	n := 200000
	attrCounts := []int{2, 4, 6}
	sides := []int{16, 32, 64}
	targeted := []int{64, 128, 256}
	if full {
		n = 1000000
		attrCounts = []int{2, 4, 8}
	}
	res, err := experiments.TwoDim(n, attrCounts, sides, targeted, seed)
	if err != nil {
		return nil, err
	}
	res.Print(os.Stdout)
	fmt.Println()
	return res, nil
}

func runParallel(full bool, seed int64) (any, error) {
	n := 1000000
	if full {
		n = 10000000
	}
	res, err := experiments.Parallel(n, 16, seed)
	if err != nil {
		return nil, err
	}
	res.Print(os.Stdout)
	fmt.Println()
	return res, nil
}
