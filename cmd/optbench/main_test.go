package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunSelectsExperiments(t *testing.T) {
	// fig1 and table1 are cheap and deterministic; run them for real.
	if err := run([]string{"-exp", "fig1"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-exp", "table1"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-exp", "fig1,table1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunJSONReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := run([]string{"-exp", "fig1,table1", "-json", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(rep.Results) != 2 {
		t.Errorf("report holds %d results, want 2", len(rep.Results))
	}
	for _, name := range []string{"fig1", "table1"} {
		if _, ok := rep.Results[name]; !ok {
			t.Errorf("report missing %q", name)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fig99"}); err == nil {
		t.Errorf("unknown experiment accepted")
	}
	// A typo must be rejected even when other requested names are valid,
	// not silently skipped.
	if err := run([]string{"-exp", "fig1,colsan"}); err == nil {
		t.Errorf("unknown experiment amid valid ones accepted")
	}
	// A trailing comma is harmless; an all-empty selector is an error.
	if err := run([]string{"-exp", "fig1,"}); err != nil {
		t.Errorf("trailing comma rejected: %v", err)
	}
	if err := run([]string{"-exp", ","}); err == nil {
		t.Errorf("empty selector accepted")
	}
}
