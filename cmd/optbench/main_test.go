package main

import "testing"

func TestRunSelectsExperiments(t *testing.T) {
	// fig1 and table1 are cheap and deterministic; run them for real.
	if err := run([]string{"-exp", "fig1"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-exp", "table1"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-exp", "fig1,table1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fig99"}); err == nil {
		t.Errorf("unknown experiment accepted")
	}
}
