package main

import (
	"os/exec"
	"path/filepath"
	"testing"
)

// buildTool compiles the optlint binary into the test's temp dir. The
// go build cache makes repeat builds cheap.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "optlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building optlint: %v\n%s", err, out)
	}
	return bin
}

// TestStandaloneCleanRun runs the standalone driver over the whole
// module, the way CI's lint job does, and requires a silent exit 0:
// no findings, no driver errors.
func TestStandaloneCleanRun(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and typechecks the whole module")
	}
	bin := buildTool(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = "../.."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("optlint ./... failed: %v\n%s", err, out)
	}
	if len(out) != 0 {
		t.Errorf("optlint ./... produced output on a clean tree:\n%s", out)
	}
}

// TestVetToolProtocol drives the binary through `go vet -vettool`,
// exercising the unitchecker protocol: -V=full version handshake,
// -flags, and per-unit *.cfg invocations.
func TestVetToolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and runs go vet over two packages")
	}
	bin := buildTool(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./internal/relation/", "./internal/plan/")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool failed: %v\n%s", err, out)
	}
}
