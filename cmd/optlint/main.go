// Command optlint runs the engine's invariant analyzer suite
// (internal/analysis/optlint): determinism of rule output, integer
// exactness of parallel merges, BytesRead accounting, and crash-safe
// writes.
//
// Two modes, selected automatically:
//
//	optlint ./...                     standalone: load packages, report
//	go vet -vettool=$(which optlint)  vet driver: speaks the unitchecker
//	                                  protocol (-V=full, -flags, *.cfg)
//
// Exit status: 0 clean, 1 findings, 2 driver error. Intended
// exceptions are waived in source with
//
//	//optlint:ignore <analyzer>[,<analyzer>...] <reason>
//
// on the flagged line or the line above; undocumented or unused
// waivers are themselves findings.
package main

import (
	"optrule/internal/analysis"
	"optrule/internal/analysis/optlint"
)

func main() {
	analysis.Main(optlint.Suite())
}
