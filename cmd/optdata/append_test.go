package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"optrule/internal/relation"
)

// collectRows reads every numeric and Boolean column of a relation
// into flat row-major slices for exact comparison.
func collectRows(t *testing.T, rel relation.Relation) ([][]float64, [][]bool) {
	t.Helper()
	cols := relation.ColumnSet{
		Numeric: rel.Schema().NumericIndices(),
		Bool:    rel.Schema().BooleanIndices(),
	}
	var nums [][]float64
	var bools [][]bool
	err := rel.Scan(cols, func(b *relation.Batch) error {
		for r := 0; r < b.Len; r++ {
			nrow := make([]float64, len(cols.Numeric))
			for i := range cols.Numeric {
				nrow[i] = b.Numeric[i][r]
			}
			brow := make([]bool, len(cols.Bool))
			for i := range cols.Bool {
				brow[i] = b.Bool[i][r]
			}
			nums = append(nums, nrow)
			bools = append(bools, brow)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return nums, bools
}

// TestRunAppendGenerated pins the prefix-property contract: a sharded
// relation built from the first 600 rows of a seed's stream, grown by
// `append -skip 600 -n 400`, is tuple-identical to regenerating all
// 1000 rows from scratch.
func TestRunAppendGenerated(t *testing.T) {
	dir := t.TempDir()
	manifest := filepath.Join(dir, "bank.oprs")
	if err := run([]string{"-kind", "bank", "-n", "600", "-seed", "3", "-shards", "2", "-out", manifest}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"append", "-to", manifest, "-kind", "bank", "-seed", "3", "-skip", "600", "-n", "400", "-format", "v3", "-rows-per-shard", "150"}); err != nil {
		t.Fatal(err)
	}
	full := filepath.Join(dir, "full.opr")
	if err := run([]string{"-kind", "bank", "-n", "1000", "-seed", "3", "-out", full}); err != nil {
		t.Fatal(err)
	}

	grown, err := relation.OpenSharded(manifest)
	if err != nil {
		t.Fatal(err)
	}
	defer grown.Close()
	// 600 rows in 2 seed shards + 400 appended at 150/shard = 3 more.
	if grown.NumTuples() != 1000 || grown.NumShards() != 5 {
		t.Fatalf("grown relation: %d tuples in %d shards, want 1000 in 5", grown.NumTuples(), grown.NumShards())
	}
	scratch, err := relation.OpenDisk(full)
	if err != nil {
		t.Fatal(err)
	}
	gn, gb := collectRows(t, grown)
	sn, sb := collectRows(t, scratch)
	if len(gn) != len(sn) {
		t.Fatalf("grown holds %d rows, scratch %d", len(gn), len(sn))
	}
	for r := range gn {
		for c := range gn[r] {
			// Bit-identical, NaNs included.
			if gn[r][c] != sn[r][c] && (gn[r][c] == gn[r][c] || sn[r][c] == sn[r][c]) {
				t.Fatalf("row %d numeric col %d: %v vs %v", r, c, gn[r][c], sn[r][c])
			}
		}
		for c := range gb[r] {
			if gb[r][c] != sb[r][c] {
				t.Fatalf("row %d bool col %d: %v vs %v", r, c, gb[r][c], sb[r][c])
			}
		}
	}
}

// TestRunAppendCSV appends rows from a CSV export and checks they
// land verbatim behind the existing rows.
func TestRunAppendCSV(t *testing.T) {
	dir := t.TempDir()
	manifest := filepath.Join(dir, "bank.oprs")
	if err := run([]string{"-kind", "bank", "-n", "200", "-seed", "5", "-shards", "2", "-out", manifest}); err != nil {
		t.Fatal(err)
	}
	// Export a different slice of the stream as CSV, then append it.
	csvPath := filepath.Join(dir, "tail.csv")
	if err := run([]string{"-kind", "bank", "-n", "50", "-seed", "77", "-out", csvPath}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"append", "-to", manifest, "-in", csvPath}); err != nil {
		t.Fatal(err)
	}
	sr, err := relation.OpenSharded(manifest)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	if sr.NumTuples() != 250 {
		t.Fatalf("after CSV append: %d tuples, want 250", sr.NumTuples())
	}
	// The appended block equals the CSV parsed against the same schema.
	f, err := os.Open(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	want, err := relation.ReadCSV(f, sr.Schema())
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	gn, _ := collectRows(t, sr)
	wn, _ := collectRows(t, want)
	for r := 0; r < 50; r++ {
		for c := range wn[r] {
			if gn[200+r][c] != wn[r][c] {
				t.Fatalf("appended row %d col %d: %v vs CSV %v", r, c, gn[200+r][c], wn[r][c])
			}
		}
	}
}

// TestRunAppendErrors covers the refusal paths: missing flags, schema
// mismatches (manifest must stay byte-identical), and non-sharded
// targets.
func TestRunAppendErrors(t *testing.T) {
	dir := t.TempDir()
	manifest := filepath.Join(dir, "bank.oprs")
	if err := run([]string{"-kind", "bank", "-n", "100", "-shards", "2", "-out", manifest}); err != nil {
		t.Fatal(err)
	}
	single := filepath.Join(dir, "single.opr")
	if err := run([]string{"-kind", "bank", "-n", "100", "-out", single}); err != nil {
		t.Fatal(err)
	}
	badCSV := filepath.Join(dir, "bad.csv")
	if err := os.WriteFile(badCSV, []byte("Wrong,Columns\n1,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	cases := [][]string{
		{"append", "-kind", "bank", "-n", "10"},                                 // missing -to
		{"append", "-to", manifest},                                             // no rows
		{"append", "-to", manifest, "-in", badCSV},                              // schema mismatch
		{"append", "-to", manifest, "-in", badCSV, "-n", "10"},                  // -in with -n
		{"append", "-to", manifest, "-kind", "retail", "-n", "10"},              // wrong generator schema
		{"append", "-to", manifest, "-kind", "bank", "-n", "-5"},                // negative n
		{"append", "-to", manifest, "-kind", "bank", "-n", "10", "-skip", "-1"}, // negative skip
		{"append", "-to", manifest, "-kind", "bank", "-n", "10", "-format", "v9"},
		{"append", "-to", single, "-kind", "bank", "-n", "10"}, // not a sharded relation
		{"append", "-to", filepath.Join(dir, "missing.oprs"), "-kind", "bank", "-n", "10"},
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d (%v): expected error", i, strings.Join(args, " "))
		}
	}
	after, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Errorf("manifest changed by refused appends")
	}
}
