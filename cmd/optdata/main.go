// Command optdata generates the synthetic data sets used by the
// examples and experiments, as CSV (for interchange) or the binary
// .opr format (for out-of-core mining).
//
// Usage:
//
//	optdata -kind bank   -n 1000000 -seed 1 -out bank.csv
//	optdata -kind retail -n 500000  -out baskets.opr
//	optdata -kind perf   -n 5000000 -numeric 8 -bool 8 -out perf.opr
//
// The bank data plants the paper's headline association
// (Balance ∈ [3000, 20000]) ⇒ (CardLoan=yes); retail plants item
// correlations and a premium-amount association; perf reproduces the
// 8-numeric + 8-Boolean random shape of the paper's Section 6.1
// performance evaluation.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"optrule/internal/datagen"
	"optrule/internal/relation"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "optdata:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("optdata", flag.ContinueOnError)
	kind := fs.String("kind", "bank", "data set kind: bank, retail, or perf")
	n := fs.Int("n", 100000, "number of tuples")
	seed := fs.Int64("seed", 1, "random seed (deterministic output)")
	out := fs.String("out", "", "output path; .csv or .opr decides the format (required)")
	numNumeric := fs.Int("numeric", 8, "perf only: numeric attribute count")
	numBool := fs.Int("bool", 8, "perf only: Boolean attribute count")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}
	var src datagen.RowSource
	switch *kind {
	case "bank":
		bank, err := datagen.NewBank(datagen.BankConfig{})
		if err != nil {
			return err
		}
		src = bank
	case "retail":
		ret, err := datagen.NewRetail(datagen.DefaultRetailConfig())
		if err != nil {
			return err
		}
		src = ret
	case "perf":
		ps, err := datagen.NewPerfShape(*numNumeric, *numBool, nil)
		if err != nil {
			return err
		}
		src = ps
	default:
		return fmt.Errorf("unknown kind %q (want bank, retail, or perf)", *kind)
	}

	switch {
	case strings.HasSuffix(*out, ".opr"):
		if err := datagen.WriteDisk(*out, src, *n, *seed); err != nil {
			return err
		}
	case strings.HasSuffix(*out, ".csv"):
		rel, err := datagen.Materialize(src, *n, *seed)
		if err != nil {
			return err
		}
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := relation.WriteCSV(f, rel); err != nil {
			return err
		}
	default:
		return fmt.Errorf("output path must end in .csv or .opr")
	}
	fmt.Printf("wrote %d %s tuples to %s\n", *n, *kind, *out)
	return nil
}
