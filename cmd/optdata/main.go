// Command optdata generates the synthetic data sets used by the
// examples and experiments, as CSV (for interchange) or the binary
// .opr format (for out-of-core mining), and converts relations
// between format versions and shard layouts.
//
// Usage:
//
//	optdata -kind bank   -n 1000000 -seed 1 -out bank.csv
//	optdata -kind retail -n 500000  -out baskets.opr
//	optdata -kind perf   -n 5000000 -numeric 8 -bool 8 -out perf.opr
//	optdata -kind bank   -n 1000000 -format v1 -out legacy.opr
//	optdata -kind bank   -n 4000000 -shards 4 -out bank.oprs
//	optdata convert -in legacy.opr -out columnar.opr
//	optdata convert -in columnar.opr -out legacy.opr -format v1
//	optdata convert -in bank.opr -out bank.oprs -shards 4
//	optdata convert -in bank.oprs -out bank.opr
//	optdata convert -in bank.opr -out clustered.opr -format v3 -cluster Balance
//	optdata inspect -in clustered.opr
//	optdata append -to bank.oprs -kind bank -n 10000 -seed 1 -skip 4000000
//	optdata append -to bank.oprs -in newrows.csv
//
// The bank data plants the paper's headline association
// (Balance ∈ [3000, 20000]) ⇒ (CardLoan=yes); retail plants item
// correlations and a premium-amount association; perf reproduces the
// 8-numeric + 8-Boolean random shape of the paper's Section 6.1
// performance evaluation.
//
// .opr files default to the v2 column-major block-group format, whose
// selective column scans read only the attributes a query touches;
// -format v3 adds per-block compression (delta, dictionary, bitmap)
// and min/max zone maps that let predicated scans skip whole block
// groups; -format v1 writes the legacy row-major format. With -shards N (N >
// 1) the output is a SHARDED relation: -out names the manifest
// (conventionally *.oprs) and N shard files are written next to it —
// the layout whose sub-scans can run on independent disks in parallel.
// The convert subcommand migrates between any of these: it sniffs
// whether -in is a single file or a manifest, and -shards picks the
// output layout (0 or 1 = single file). Conversion is only needed to
// change a relation's scan cost profile, not to keep it readable —
// the readers accept every combination. convert -cluster <attr>
// reorders the destination's rows by that column (an in-memory sort;
// see relation.ClusterBy) so v3 zone maps partition the value space
// and selective scans prune whole block groups. The inspect subcommand
// reads a v3 file's (or sharded v3 manifest's) block directory and
// reports each column's encoding mix, compression ratio, and zone-map
// tightness — the numbers that predict whether clustering paid off.
//
// The append subcommand grows an existing SHARDED relation in place:
// new rows land in fresh shard files and the manifest is swapped by
// temp+rename, so readers always see either the old relation or the
// whole grown one. Rows come from a CSV file (-in, parsed against the
// relation's own schema) or from a generator: with the prefix
// property of the deterministic generators, -kind/-seed/-skip/-n
// appends rows [skip, skip+n) of the seed's stream — so a relation
// originally built with `-kind bank -n 4000000 -seed 1` grows into a
// bit-identical twin of a from-scratch 4010000-row generation via
// `append -skip 4000000 -n 10000`. A schema mismatch is refused
// before any file is touched. Appending is what makes incremental
// mining (miner.Session.RefreshFromStorage, optbench -exp append)
// O(Δ) instead of O(n): open sessions fold statistics for just the
// appended tail into their caches.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"optrule/internal/datagen"
	"optrule/internal/relation"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "optdata:", err)
		os.Exit(1)
	}
}

// parseFormat maps a -format flag value to a relation disk version.
func parseFormat(s string) (int, error) {
	switch s {
	case "v1", "1":
		return relation.DiskFormatV1, nil
	case "v2", "2":
		return relation.DiskFormatV2, nil
	case "v3", "3":
		return relation.DiskFormatV3, nil
	default:
		return 0, fmt.Errorf("unknown format %q (want v1, v2, or v3)", s)
	}
}

// isOprPath reports whether the path names a binary relation output
// (single-file .opr or sharded-manifest .oprs).
func isOprPath(path string) bool {
	return strings.HasSuffix(path, ".opr") || strings.HasSuffix(path, ".oprs")
}

// newSource builds the row generator for a data set kind. The shape
// flags apply to perf only.
func newSource(kind string, numNumeric, numBool int) (datagen.RowSource, error) {
	switch kind {
	case "bank":
		bank, err := datagen.NewBank(datagen.BankConfig{})
		if err != nil {
			return nil, err
		}
		return bank, nil
	case "retail":
		ret, err := datagen.NewRetail(datagen.DefaultRetailConfig())
		if err != nil {
			return nil, err
		}
		return ret, nil
	case "perf":
		ps, err := datagen.NewPerfShape(numNumeric, numBool, nil)
		if err != nil {
			return nil, err
		}
		return ps, nil
	default:
		return nil, fmt.Errorf("unknown kind %q (want bank, retail, or perf)", kind)
	}
}

func run(args []string) error {
	if len(args) > 0 && args[0] == "convert" {
		return runConvert(args[1:])
	}
	if len(args) > 0 && args[0] == "inspect" {
		return runInspect(args[1:])
	}
	if len(args) > 0 && args[0] == "append" {
		return runAppend(args[1:])
	}
	fs := flag.NewFlagSet("optdata", flag.ContinueOnError)
	kind := fs.String("kind", "bank", "data set kind: bank, retail, or perf")
	n := fs.Int("n", 100000, "number of tuples")
	seed := fs.Int64("seed", 1, "random seed (deterministic output)")
	out := fs.String("out", "", "output path; .csv, .opr, or .oprs decides the format (required)")
	format := fs.String("format", "v2", ".opr format version: v2 (column-major block groups), v3 (compressed blocks with zone maps), or v1 (row-major)")
	shards := fs.Int("shards", 0, "split the binary output into this many shard files behind a manifest (0 = single file)")
	numNumeric := fs.Int("numeric", 8, "perf only: numeric attribute count")
	numBool := fs.Int("bool", 8, "perf only: Boolean attribute count")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}
	if *shards < 0 {
		return fmt.Errorf("-shards must be non-negative")
	}
	version, err := parseFormat(*format)
	if err != nil {
		return err
	}
	src, err := newSource(*kind, *numNumeric, *numBool)
	if err != nil {
		return err
	}

	switch {
	case isOprPath(*out):
		if *shards > 1 {
			if err := datagen.WriteSharded(*out, src, *n, *seed, *shards, version); err != nil {
				return err
			}
			fmt.Printf("wrote %d %s tuples to %s (%d shards)\n", *n, *kind, *out, *shards)
			return nil
		}
		if err := datagen.WriteDiskFormat(*out, src, *n, *seed, version); err != nil {
			return err
		}
	case strings.HasSuffix(*out, ".csv"):
		if *shards > 1 {
			return fmt.Errorf("-shards applies to binary output, not CSV")
		}
		rel, err := datagen.Materialize(src, *n, *seed)
		if err != nil {
			return err
		}
		err = writeFileStaged(*out, func(w io.Writer) error {
			return relation.WriteCSV(w, rel)
		})
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("output path must end in .csv, .opr, or .oprs")
	}
	fmt.Printf("wrote %d %s tuples to %s\n", *n, *kind, *out)
	return nil
}

// describeData renders a relation's layout for the convert report.
func describeData(rel relation.DataRelation) string {
	switch r := rel.(type) {
	case *relation.DiskRelation:
		return fmt.Sprintf("v%d", r.Version())
	case *relation.ShardedRelation:
		return fmt.Sprintf("%d shards", r.NumShards())
	default:
		return "unknown"
	}
}

// runConvert migrates a relation between format versions and shard
// layouts: single file to single file, single file to sharded, sharded
// to single file, or resharding.
func runConvert(args []string) error {
	fs := flag.NewFlagSet("optdata convert", flag.ContinueOnError)
	in := fs.String("in", "", "source path: .opr file or shard manifest (required)")
	out := fs.String("out", "", "destination path (required)")
	format := fs.String("format", "v2", "target format version: v2, v3, or v1")
	shards := fs.Int("shards", 0, "shard the destination into this many files behind a manifest (0 = single file)")
	cluster := fs.String("cluster", "", "reorder the destination's rows by this column (attribute name) so zone maps partition the value space; buffers the relation in memory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("convert needs -in and -out")
	}
	if *shards < 0 {
		return fmt.Errorf("-shards must be non-negative")
	}
	version, err := parseFormat(*format)
	if err != nil {
		return err
	}
	src, err := relation.OpenData(*in)
	if err != nil {
		return err
	}
	defer src.Close()
	clusterAttr := -1
	if *cluster != "" {
		if *shards > 1 {
			return fmt.Errorf("-cluster with -shards is not supported in one step: cluster to a single file first, then convert that file to shards (order is preserved)")
		}
		for i, attr := range src.Schema() {
			if attr.Name == *cluster {
				clusterAttr = i
				break
			}
		}
		if clusterAttr < 0 {
			return fmt.Errorf("cluster column %q not in schema %v", *cluster, attrNames(src.Schema()))
		}
	}
	if *shards > 1 {
		if err := relation.ConvertToSharded(src, *out, *shards, version); err != nil {
			return err
		}
		fmt.Printf("converted %s (%s, %d tuples) to %s (%s, %d shards)\n",
			*in, describeData(src), src.NumTuples(), *out, *format, *shards)
		return nil
	}
	if clusterAttr >= 0 {
		if err := relation.ConvertFileClustered(src, *out, version, clusterAttr); err != nil {
			return err
		}
		fmt.Printf("converted %s (%s, %d tuples) to %s (%s, clustered by %s)\n",
			*in, describeData(src), src.NumTuples(), *out, *format, *cluster)
		return nil
	}
	if err := relation.ConvertFile(src, *out, version); err != nil {
		return err
	}
	fmt.Printf("converted %s (%s, %d tuples) to %s (%s)\n", *in, describeData(src), src.NumTuples(), *out, *format)
	return nil
}

// runAppend grows an existing sharded relation: new rows are written
// to fresh shard files and committed by swapping the manifest
// (temp+rename), leaving the original shards untouched. Rows come
// either from a CSV file parsed against the relation's own schema, or
// from a generator offset into the seed's deterministic stream with
// -skip (the prefix property: rows [skip, skip+n) of the stream are
// exactly what a relation built from the first skip rows is missing).
func runAppend(args []string) error {
	fs := flag.NewFlagSet("optdata append", flag.ContinueOnError)
	to := fs.String("to", "", "shard manifest of the relation to grow (required; append needs a sharded relation — use convert to shard a single file first)")
	in := fs.String("in", "", "CSV file holding the rows to append; mutually exclusive with generated rows")
	kind := fs.String("kind", "bank", "generated rows: data set kind (bank, retail, or perf)")
	n := fs.Int("n", 0, "generated rows: number of tuples to append")
	seed := fs.Int64("seed", 1, "generated rows: seed of the stream to continue (match the original generation)")
	skip := fs.Int("skip", 0, "generated rows: stream offset — skip this many rows before taking n (match the relation's current tuple count to continue its stream)")
	format := fs.String("format", "v2", "format version for the new shard files: v2, v3, or v1 (existing shards keep theirs)")
	rowsPerShard := fs.Int("rows-per-shard", 0, "split appended rows into shards of this many rows (0 = one shard for the whole batch)")
	numNumeric := fs.Int("numeric", 8, "perf only: numeric attribute count")
	numBool := fs.Int("bool", 8, "perf only: Boolean attribute count")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *to == "" {
		return fmt.Errorf("append needs -to")
	}
	if *rowsPerShard < 0 {
		return fmt.Errorf("-rows-per-shard must be non-negative")
	}
	version, err := parseFormat(*format)
	if err != nil {
		return err
	}

	var tail *relation.MemoryRelation
	switch {
	case *in != "":
		if *n != 0 || *skip != 0 {
			return fmt.Errorf("-in reads rows from CSV; -n/-skip apply to generated rows only")
		}
		// Parse the CSV against the relation's own schema so column
		// names and kinds are checked up front with a line-level error,
		// not just refused wholesale by the appender.
		target, err := relation.OpenSharded(*to)
		if err != nil {
			return err
		}
		schema := target.Schema()
		target.Close()
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		tail, err = relation.ReadCSV(f, schema)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", *in, err)
		}
	case *n > 0:
		src, err := newSource(*kind, *numNumeric, *numBool)
		if err != nil {
			return err
		}
		tail, err = datagen.MaterializeRange(src, *seed, *skip, *n)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("append needs rows: -in <csv> or -n > 0")
	}

	rows, err := relation.AppendToSharded(*to, tail, relation.AppendOptions{
		Format: version, RowsPerShard: *rowsPerShard,
	})
	if err != nil {
		return err
	}
	sr, err := relation.OpenSharded(*to)
	if err != nil {
		return fmt.Errorf("reopening after append: %w", err)
	}
	defer sr.Close()
	fmt.Printf("appended %d rows to %s (now %d tuples in %d shards)\n",
		rows, *to, sr.NumTuples(), sr.NumShards())
	return nil
}

// attrNames lists a schema's attribute names for error messages.
func attrNames(schema relation.Schema) []string {
	names := make([]string, len(schema))
	for i, attr := range schema {
		names[i] = attr.Name
	}
	return names
}

// runInspect prints the physical-layout report for a v3 file or a
// sharded manifest whose shards are v3: per-column encoding mix,
// compression ratio, and zone-map tightness/prunability.
func runInspect(args []string) error {
	fs := flag.NewFlagSet("optdata inspect", flag.ContinueOnError)
	in := fs.String("in", "", "path to inspect: v3 .opr file or shard manifest (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("inspect needs -in")
	}
	src, err := relation.OpenData(*in)
	if err != nil {
		return err
	}
	defer src.Close()
	switch r := src.(type) {
	case *relation.DiskRelation:
		insp, err := r.InspectLayout()
		if err != nil {
			return err
		}
		printInspection(insp)
	case *relation.ShardedRelation:
		paths := r.StoragePaths()[1:] // drop the manifest itself
		for i, p := range paths {
			dr, err := relation.OpenDisk(p)
			if err != nil {
				return fmt.Errorf("shard %d: %w", i, err)
			}
			insp, err := dr.InspectLayout()
			dr.Close()
			if err != nil {
				return fmt.Errorf("shard %d: %w", i, err)
			}
			if i > 0 {
				fmt.Println()
			}
			fmt.Printf("shard %d/%d:\n", i+1, len(paths))
			printInspection(insp)
		}
	default:
		return fmt.Errorf("cannot inspect %T", src)
	}
	return nil
}

// printInspection renders one file's LayoutInspection as a table.
func printInspection(insp *relation.LayoutInspection) {
	fmt.Printf("%s: v3, %d rows, %d block groups of %d rows\n",
		insp.Path, insp.Rows, insp.Groups, insp.GroupRows)
	fmt.Printf("  %-16s %-8s %-28s %12s %8s %10s %12s\n",
		"column", "kind", "encodings", "bytes", "vs raw", "tightness", "prunability")
	for _, col := range insp.Columns {
		kind := "numeric"
		if col.Kind == relation.Boolean {
			kind = "bool"
		}
		ratio := 1.0
		if col.RawBytes > 0 {
			ratio = float64(col.EncodedBytes) / float64(col.RawBytes)
		}
		fmt.Printf("  %-16s %-8s %-28s %12d %7.2fx %10.3f %12.3f\n",
			col.Name, kind, encodingMix(col.Encodings), col.EncodedBytes, ratio,
			col.ZoneTightness, col.Prunability)
	}
}

// encodingMix renders an encoding histogram as "delta:12 rle:4",
// sorted by count descending then name.
func encodingMix(counts map[string]int) string {
	type kv struct {
		name  string
		count int
	}
	mix := make([]kv, 0, len(counts))
	for name, count := range counts {
		mix = append(mix, kv{name, count})
	}
	sort.Slice(mix, func(i, j int) bool {
		if mix[i].count != mix[j].count {
			return mix[i].count > mix[j].count
		}
		return mix[i].name < mix[j].name
	})
	parts := make([]string, len(mix))
	for i, m := range mix {
		parts[i] = fmt.Sprintf("%s:%d", m.name, m.count)
	}
	return strings.Join(parts, " ")
}

// writeFileStaged streams the output into a temp file beside path and
// renames it over path only after a successful close, so an
// interrupted run never leaves a truncated file where a previous valid
// output may have been.
func writeFileStaged(path string, write func(w io.Writer) error) error {
	tf, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := tf.Name()
	if err := write(tf); err != nil {
		tf.Close()
		os.Remove(tmp)
		return err
	}
	if err := tf.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	// CreateTemp's 0600 → the 0644 a plain create would give a CLI
	// output (modulo umask, which can only ever be stricter).
	if err := os.Chmod(tmp, 0o644); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
