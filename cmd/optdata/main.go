// Command optdata generates the synthetic data sets used by the
// examples and experiments, as CSV (for interchange) or the binary
// .opr format (for out-of-core mining), and converts .opr files
// between format versions.
//
// Usage:
//
//	optdata -kind bank   -n 1000000 -seed 1 -out bank.csv
//	optdata -kind retail -n 500000  -out baskets.opr
//	optdata -kind perf   -n 5000000 -numeric 8 -bool 8 -out perf.opr
//	optdata -kind bank   -n 1000000 -format v1 -out legacy.opr
//	optdata convert -in legacy.opr -out columnar.opr
//	optdata convert -in columnar.opr -out legacy.opr -format v1
//
// The bank data plants the paper's headline association
// (Balance ∈ [3000, 20000]) ⇒ (CardLoan=yes); retail plants item
// correlations and a premium-amount association; perf reproduces the
// 8-numeric + 8-Boolean random shape of the paper's Section 6.1
// performance evaluation.
//
// .opr files default to the v2 column-major block-group format, whose
// selective column scans read only the attributes a query touches;
// -format v1 writes the legacy row-major format. The convert
// subcommand migrates existing files either way (the reader accepts
// both versions, so conversion is only needed to change a file's scan
// cost profile, not to keep it readable).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"optrule/internal/datagen"
	"optrule/internal/relation"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "optdata:", err)
		os.Exit(1)
	}
}

// parseFormat maps a -format flag value to a relation disk version.
func parseFormat(s string) (int, error) {
	switch s {
	case "v1", "1":
		return relation.DiskFormatV1, nil
	case "v2", "2":
		return relation.DiskFormatV2, nil
	default:
		return 0, fmt.Errorf("unknown format %q (want v1 or v2)", s)
	}
}

func run(args []string) error {
	if len(args) > 0 && args[0] == "convert" {
		return runConvert(args[1:])
	}
	fs := flag.NewFlagSet("optdata", flag.ContinueOnError)
	kind := fs.String("kind", "bank", "data set kind: bank, retail, or perf")
	n := fs.Int("n", 100000, "number of tuples")
	seed := fs.Int64("seed", 1, "random seed (deterministic output)")
	out := fs.String("out", "", "output path; .csv or .opr decides the format (required)")
	format := fs.String("format", "v2", ".opr format version: v2 (column-major block groups) or v1 (row-major)")
	numNumeric := fs.Int("numeric", 8, "perf only: numeric attribute count")
	numBool := fs.Int("bool", 8, "perf only: Boolean attribute count")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}
	version, err := parseFormat(*format)
	if err != nil {
		return err
	}
	var src datagen.RowSource
	switch *kind {
	case "bank":
		bank, err := datagen.NewBank(datagen.BankConfig{})
		if err != nil {
			return err
		}
		src = bank
	case "retail":
		ret, err := datagen.NewRetail(datagen.DefaultRetailConfig())
		if err != nil {
			return err
		}
		src = ret
	case "perf":
		ps, err := datagen.NewPerfShape(*numNumeric, *numBool, nil)
		if err != nil {
			return err
		}
		src = ps
	default:
		return fmt.Errorf("unknown kind %q (want bank, retail, or perf)", *kind)
	}

	switch {
	case strings.HasSuffix(*out, ".opr"):
		if err := datagen.WriteDiskFormat(*out, src, *n, *seed, version); err != nil {
			return err
		}
	case strings.HasSuffix(*out, ".csv"):
		rel, err := datagen.Materialize(src, *n, *seed)
		if err != nil {
			return err
		}
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := relation.WriteCSV(f, rel); err != nil {
			return err
		}
	default:
		return fmt.Errorf("output path must end in .csv or .opr")
	}
	fmt.Printf("wrote %d %s tuples to %s\n", *n, *kind, *out)
	return nil
}

// runConvert migrates a .opr file between format versions.
func runConvert(args []string) error {
	fs := flag.NewFlagSet("optdata convert", flag.ContinueOnError)
	in := fs.String("in", "", "source .opr path (required)")
	out := fs.String("out", "", "destination .opr path (required)")
	format := fs.String("format", "v2", "target format version: v2 or v1")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("convert needs -in and -out")
	}
	version, err := parseFormat(*format)
	if err != nil {
		return err
	}
	src, err := relation.OpenDisk(*in)
	if err != nil {
		return err
	}
	if err := relation.ConvertDiskFrom(src, *out, version); err != nil {
		return err
	}
	fmt.Printf("converted %s (v%d, %d tuples) to %s (%s)\n", *in, src.Version(), src.NumTuples(), *out, *format)
	return nil
}
