package main

import (
	"os"
	"path/filepath"
	"testing"

	"optrule/internal/relation"
)

func TestRunCSVAndOpr(t *testing.T) {
	dir := t.TempDir()
	for _, kind := range []string{"bank", "retail", "perf"} {
		csvPath := filepath.Join(dir, kind+".csv")
		if err := run([]string{"-kind", kind, "-n", "200", "-out", csvPath}); err != nil {
			t.Fatalf("%s csv: %v", kind, err)
		}
		oprPath := filepath.Join(dir, kind+".opr")
		if err := run([]string{"-kind", kind, "-n", "200", "-out", oprPath}); err != nil {
			t.Fatalf("%s opr: %v", kind, err)
		}
		dr, err := relation.OpenDisk(oprPath)
		if err != nil {
			t.Fatalf("%s: reopening opr: %v", kind, err)
		}
		if dr.NumTuples() != 200 {
			t.Errorf("%s: NumTuples = %d, want 200", kind, dr.NumTuples())
		}
	}
}

func TestRunPerfShapeFlags(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.opr")
	if err := run([]string{"-kind", "perf", "-n", "100", "-numeric", "3", "-bool", "2", "-out", path}); err != nil {
		t.Fatal(err)
	}
	dr, err := relation.OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	s := dr.Schema()
	if len(s.NumericIndices()) != 3 || len(s.BooleanIndices()) != 2 {
		t.Errorf("schema = %v", s)
	}
}

func TestRunFormatFlag(t *testing.T) {
	dir := t.TempDir()
	v1 := filepath.Join(dir, "v1.opr")
	v2 := filepath.Join(dir, "v2.opr")
	if err := run([]string{"-kind", "bank", "-n", "300", "-format", "v1", "-out", v1}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-kind", "bank", "-n", "300", "-out", v2}); err != nil {
		t.Fatal(err)
	}
	d1, err := relation.OpenDisk(v1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := relation.OpenDisk(v2)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Version() != relation.DiskFormatV1 {
		t.Errorf("-format v1 wrote version %d", d1.Version())
	}
	if d2.Version() != relation.DiskFormatV2 {
		t.Errorf("default format wrote version %d, want v2", d2.Version())
	}
	// Same kind, n, and seed must yield the same tuples in both formats.
	var b1, b2 []float64
	for _, pair := range []struct {
		dr  *relation.DiskRelation
		dst *[]float64
	}{{d1, &b1}, {d2, &b2}} {
		p := pair
		err := p.dr.Scan(relation.ColumnSet{Numeric: []int{0}}, func(b *relation.Batch) error {
			*p.dst = append(*p.dst, b.Numeric[0][:b.Len]...)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(b1) != len(b2) {
		t.Fatalf("formats hold %d vs %d rows", len(b1), len(b2))
	}
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatalf("row %d differs between formats", i)
		}
	}
}

func TestRunConvert(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.opr")
	if err := run([]string{"-kind", "retail", "-n", "400", "-format", "v1", "-out", src}); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(dir, "dst.opr")
	if err := run([]string{"convert", "-in", src, "-out", dst}); err != nil {
		t.Fatal(err)
	}
	dr, err := relation.OpenDisk(dst)
	if err != nil {
		t.Fatal(err)
	}
	if dr.Version() != relation.DiskFormatV2 || dr.NumTuples() != 400 {
		t.Errorf("converted file: version %d, %d tuples; want v2, 400", dr.Version(), dr.NumTuples())
	}
	back := filepath.Join(dir, "back.opr")
	if err := run([]string{"convert", "-in", dst, "-out", back, "-format", "v1"}); err != nil {
		t.Fatal(err)
	}
	db, err := relation.OpenDisk(back)
	if err != nil {
		t.Fatal(err)
	}
	if db.Version() != relation.DiskFormatV1 || db.NumTuples() != 400 {
		t.Errorf("round-trip file: version %d, %d tuples; want v1, 400", db.Version(), db.NumTuples())
	}
	// Error cases: missing flags, bad format, missing input.
	for i, args := range [][]string{
		{"convert", "-in", src},
		{"convert", "-out", dst},
		{"convert", "-in", src, "-out", dst, "-format", "v9"},
		{"convert", "-in", filepath.Join(dir, "missing.opr"), "-out", dst},
	} {
		if err := run(args); err == nil {
			t.Errorf("convert case %d (%v): expected error", i, args)
		}
	}
}

func TestRunSharded(t *testing.T) {
	dir := t.TempDir()
	manifest := filepath.Join(dir, "bank.oprs")
	if err := run([]string{"-kind", "bank", "-n", "1000", "-shards", "4", "-out", manifest}); err != nil {
		t.Fatal(err)
	}
	sr, err := relation.OpenSharded(manifest)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	if sr.NumShards() != 4 || sr.NumTuples() != 1000 {
		t.Fatalf("sharded output: %d shards, %d tuples; want 4, 1000", sr.NumShards(), sr.NumTuples())
	}
	// Sharded and single-file outputs of the same (kind, n, seed) hold
	// identical tuples in identical global order.
	single := filepath.Join(dir, "bank.opr")
	if err := run([]string{"-kind", "bank", "-n", "1000", "-out", single}); err != nil {
		t.Fatal(err)
	}
	dr, err := relation.OpenDisk(single)
	if err != nil {
		t.Fatal(err)
	}
	var a, b []float64
	collect := func(rel relation.Relation, dst *[]float64) {
		t.Helper()
		err := rel.Scan(relation.ColumnSet{Numeric: []int{0}}, func(batch *relation.Batch) error {
			*dst = append(*dst, batch.Numeric[0][:batch.Len]...)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	collect(sr, &a)
	collect(dr, &b)
	if len(a) != len(b) {
		t.Fatalf("sharded holds %d rows, single file %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs between sharded and single-file output", i)
		}
	}
	// -shards on CSV output is rejected.
	if err := run([]string{"-kind", "bank", "-n", "10", "-shards", "2", "-out", filepath.Join(dir, "x.csv")}); err == nil {
		t.Error("-shards with CSV output accepted")
	}
}

func TestRunConvertSharded(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.opr")
	if err := run([]string{"-kind", "retail", "-n", "600", "-out", src}); err != nil {
		t.Fatal(err)
	}
	// Single file -> sharded.
	manifest := filepath.Join(dir, "sharded.oprs")
	if err := run([]string{"convert", "-in", src, "-out", manifest, "-shards", "3"}); err != nil {
		t.Fatal(err)
	}
	sr, err := relation.OpenSharded(manifest)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	if sr.NumShards() != 3 || sr.NumTuples() != 600 {
		t.Fatalf("sharded: %d shards, %d tuples", sr.NumShards(), sr.NumTuples())
	}
	// Sharded -> single v1 file (convert sniffs the manifest).
	back := filepath.Join(dir, "back.opr")
	if err := run([]string{"convert", "-in", manifest, "-out", back, "-format", "v1"}); err != nil {
		t.Fatal(err)
	}
	db, err := relation.OpenDisk(back)
	if err != nil {
		t.Fatal(err)
	}
	if db.Version() != relation.DiskFormatV1 || db.NumTuples() != 600 {
		t.Errorf("round-trip file: version %d, %d tuples; want v1, 600", db.Version(), db.NumTuples())
	}
	// Resharding.
	reshard := filepath.Join(dir, "reshard.oprs")
	if err := run([]string{"convert", "-in", manifest, "-out", reshard, "-shards", "2"}); err != nil {
		t.Fatal(err)
	}
	sr2, err := relation.OpenSharded(reshard)
	if err != nil {
		t.Fatal(err)
	}
	defer sr2.Close()
	if sr2.NumShards() != 2 || sr2.NumTuples() != 600 {
		t.Errorf("resharded: %d shards, %d tuples", sr2.NumShards(), sr2.NumTuples())
	}
}

func TestRunConvertClustered(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.opr")
	if err := run([]string{"-kind", "bank", "-n", "3000", "-out", src}); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(dir, "clustered.opr")
	if err := run([]string{"convert", "-in", src, "-out", dst, "-format", "v3", "-cluster", "Balance"}); err != nil {
		t.Fatal(err)
	}
	dr, err := relation.OpenDisk(dst)
	if err != nil {
		t.Fatal(err)
	}
	if dr.Version() != relation.DiskFormatV3 || dr.NumTuples() != 3000 {
		t.Fatalf("clustered file: version %d, %d tuples", dr.Version(), dr.NumTuples())
	}
	balance := -1
	for i, attr := range dr.Schema() {
		if attr.Name == "Balance" {
			balance = i
		}
	}
	prev := -1.0
	err = dr.Scan(relation.ColumnSet{Numeric: []int{balance}}, func(b *relation.Batch) error {
		for r := 0; r < b.Len; r++ {
			if v := b.Numeric[0][r]; v < prev {
				t.Fatalf("Balance not sorted: %g after %g", v, prev)
			} else {
				prev = v
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Error cases: unknown column, -cluster combined with -shards.
	if err := run([]string{"convert", "-in", src, "-out", dst, "-cluster", "NoSuchColumn"}); err == nil {
		t.Error("unknown cluster column accepted")
	}
	if err := run([]string{"convert", "-in", src, "-out", filepath.Join(dir, "x.oprs"), "-shards", "2", "-cluster", "Balance"}); err == nil {
		t.Error("-cluster with -shards accepted")
	}
}

func TestRunInspect(t *testing.T) {
	dir := t.TempDir()
	v3 := filepath.Join(dir, "v3.opr")
	if err := run([]string{"-kind", "bank", "-n", "2000", "-format", "v3", "-out", v3}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"inspect", "-in", v3}); err != nil {
		t.Fatal(err)
	}
	// Sharded v3 manifests inspect shard by shard.
	manifest := filepath.Join(dir, "v3.oprs")
	if err := run([]string{"convert", "-in", v3, "-out", manifest, "-shards", "2", "-format", "v3"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"inspect", "-in", manifest}); err != nil {
		t.Fatal(err)
	}
	// v2 files carry no block directory to inspect.
	v2 := filepath.Join(dir, "v2.opr")
	if err := run([]string{"-kind", "bank", "-n", "100", "-out", v2}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"inspect", "-in", v2}); err == nil {
		t.Error("inspect accepted a v2 file")
	}
	if err := run([]string{"inspect"}); err == nil {
		t.Error("inspect without -in accepted")
	}
}

func TestEncodingMixStable(t *testing.T) {
	// encodingMix ranges over a map; the sort after the loop is what
	// keeps inspect output independent of Go's randomized map iteration
	// order (and is the pattern the maporder lint exempts). Guard the
	// full ordering contract: count descending, name ascending on ties,
	// identical rendering on every run.
	const want = "rle:12 delta:4 raw:4 zigzag:1"
	for i := 0; i < 100; i++ {
		counts := map[string]int{"delta": 4, "raw": 4, "rle": 12, "zigzag": 1}
		if got := encodingMix(counts); got != want {
			t.Fatalf("iteration %d: encodingMix = %q, want %q", i, got, want)
		}
	}
	if got := encodingMix(nil); got != "" {
		t.Errorf("encodingMix(nil) = %q, want empty", got)
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	cases := [][]string{
		{"-kind", "bank"}, // missing -out
		{"-kind", "nope", "-out", filepath.Join(dir, "x.csv")},                  // bad kind
		{"-kind", "bank", "-out", filepath.Join(dir, "x.txt")},                  // bad extension
		{"-kind", "perf", "-numeric", "0", "-out", filepath.Join(dir, "x.csv")}, // invalid shape
		{"-kind", "bank", "-format", "v9", "-out", filepath.Join(dir, "x.opr")}, // bad format
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}

func TestRunFormatV3(t *testing.T) {
	dir := t.TempDir()
	v2 := filepath.Join(dir, "v2.opr")
	v3 := filepath.Join(dir, "v3.opr")
	if err := run([]string{"-kind", "bank", "-n", "5000", "-out", v2}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-kind", "bank", "-n", "5000", "-format", "v3", "-out", v3}); err != nil {
		t.Fatal(err)
	}
	d3, err := relation.OpenDisk(v3)
	if err != nil {
		t.Fatal(err)
	}
	if d3.Version() != relation.DiskFormatV3 || d3.NumTuples() != 5000 {
		t.Fatalf("-format v3 wrote version %d, %d tuples", d3.Version(), d3.NumTuples())
	}
	// The bank set carries Boolean columns and low-cardinality numerics:
	// compression must make the v3 file strictly smaller on disk.
	s2, err := os.Stat(v2)
	if err != nil {
		t.Fatal(err)
	}
	s3, err := os.Stat(v3)
	if err != nil {
		t.Fatal(err)
	}
	if s3.Size() >= s2.Size() {
		t.Errorf("v3 file is %d bytes, v2 is %d; compression saved nothing", s3.Size(), s2.Size())
	}
	// OpenData sniffs a v3 file like any other single-file relation.
	od, err := relation.OpenData(v3)
	if err != nil {
		t.Fatal(err)
	}
	defer od.Close()
	if od.NumTuples() != 5000 {
		t.Errorf("OpenData on v3: %d tuples, want 5000", od.NumTuples())
	}
	// Full conversion cycle: v3 -> sharded v3 -> single v2 -> v3.
	manifest := filepath.Join(dir, "sharded.oprs")
	if err := run([]string{"convert", "-in", v3, "-out", manifest, "-shards", "3", "-format", "v3"}); err != nil {
		t.Fatal(err)
	}
	sr, err := relation.OpenSharded(manifest)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	if sr.NumShards() != 3 || sr.NumTuples() != 5000 {
		t.Fatalf("sharded v3: %d shards, %d tuples", sr.NumShards(), sr.NumTuples())
	}
	single := filepath.Join(dir, "single.opr")
	if err := run([]string{"convert", "-in", manifest, "-out", single, "-format", "v2"}); err != nil {
		t.Fatal(err)
	}
	back := filepath.Join(dir, "back.opr")
	if err := run([]string{"convert", "-in", single, "-out", back, "-format", "v3"}); err != nil {
		t.Fatal(err)
	}
	db, err := relation.OpenDisk(back)
	if err != nil {
		t.Fatal(err)
	}
	if db.Version() != relation.DiskFormatV3 || db.NumTuples() != 5000 {
		t.Errorf("round-trip file: version %d, %d tuples; want v3, 5000", db.Version(), db.NumTuples())
	}
}
