package main

import (
	"path/filepath"
	"testing"

	"optrule/internal/relation"
)

func TestRunCSVAndOpr(t *testing.T) {
	dir := t.TempDir()
	for _, kind := range []string{"bank", "retail", "perf"} {
		csvPath := filepath.Join(dir, kind+".csv")
		if err := run([]string{"-kind", kind, "-n", "200", "-out", csvPath}); err != nil {
			t.Fatalf("%s csv: %v", kind, err)
		}
		oprPath := filepath.Join(dir, kind+".opr")
		if err := run([]string{"-kind", kind, "-n", "200", "-out", oprPath}); err != nil {
			t.Fatalf("%s opr: %v", kind, err)
		}
		dr, err := relation.OpenDisk(oprPath)
		if err != nil {
			t.Fatalf("%s: reopening opr: %v", kind, err)
		}
		if dr.NumTuples() != 200 {
			t.Errorf("%s: NumTuples = %d, want 200", kind, dr.NumTuples())
		}
	}
}

func TestRunPerfShapeFlags(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.opr")
	if err := run([]string{"-kind", "perf", "-n", "100", "-numeric", "3", "-bool", "2", "-out", path}); err != nil {
		t.Fatal(err)
	}
	dr, err := relation.OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	s := dr.Schema()
	if len(s.NumericIndices()) != 3 || len(s.BooleanIndices()) != 2 {
		t.Errorf("schema = %v", s)
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	cases := [][]string{
		{"-kind", "bank"}, // missing -out
		{"-kind", "nope", "-out", filepath.Join(dir, "x.csv")},                  // bad kind
		{"-kind", "bank", "-out", filepath.Join(dir, "x.txt")},                  // bad extension
		{"-kind", "perf", "-numeric", "0", "-out", filepath.Join(dir, "x.csv")}, // invalid shape
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}
