package optrule

// One benchmark per table/figure of the paper's evaluation. Each bench
// wraps the corresponding experiment at a fixed size so that
// `go test -bench=.` regenerates every result; cmd/optbench prints the
// same experiments as full paper-style sweeps (use `optbench -full`
// for paper-scale sizes).

import (
	"math/rand"
	"path/filepath"
	"testing"

	"optrule/internal/bucketing"
	"optrule/internal/core"
	"optrule/internal/datagen"
	"optrule/internal/experiments"
	"optrule/internal/miner"
	"optrule/internal/relation"
	"optrule/internal/stats"
)

// BenchmarkFig1BinomialTail measures the Figure 1 analysis: the
// binomial-tail deviation probability at the paper's operating point
// (S = 40·M, δ = 0.5, M = 10⁴).
func BenchmarkFig1BinomialTail(b *testing.B) {
	for i := 0; i < b.N; i++ {
		stats.BucketDeviationProbability(400000, 10000, 0.5)
	}
}

// BenchmarkTable1ApproxError regenerates Table I: analytic error bounds
// plus the measured approximation on the planted 100k-tuple data set.
func BenchmarkTable1ApproxError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table1(100000)
	}
}

// BenchmarkFig9Algorithm31 measures the randomized bucketing pipeline
// (Algorithm 3.1, all 8 numeric attributes, M = 1000) on 100k tuples of
// the paper's 8-numeric + 8-Boolean random shape.
func BenchmarkFig9Algorithm31(b *testing.B) {
	rel := datagen.MustMaterialize(datagen.PaperPerfShape(), 100000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bucketing.Algorithm31All(rel, 1000, 40, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9NaiveSort measures the full-tuple Quick Sort baseline of
// Figure 9 on the same workload.
func BenchmarkFig9NaiveSort(b *testing.B) {
	rel := datagen.MustMaterialize(datagen.PaperPerfShape(), 100000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bucketing.NaiveSortAll(rel, 1000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9VerticalSplitSort measures the (tupleID, value)
// temporary-table baseline of Figure 9.
func BenchmarkFig9VerticalSplitSort(b *testing.B) {
	rel := datagen.MustMaterialize(datagen.PaperPerfShape(), 100000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bucketing.VerticalSplitSortAll(rel, 1000); err != nil {
			b.Fatal(err)
		}
	}
}

// ruleBenchBuckets builds M almost-equi-depth buckets (~100 tuples
// each) with random hit counts, the Figures 10/11 input shape.
func ruleBenchBuckets(m int) (u []int, v []float64) {
	rng := rand.New(rand.NewSource(7))
	u = make([]int, m)
	v = make([]float64, m)
	for i := range u {
		u[i] = 90 + rng.Intn(21)
		v[i] = float64(rng.Intn(u[i] + 1))
	}
	return u, v
}

// BenchmarkFig10ConfidenceHull measures the O(M) optimized-confidence
// algorithm (Algorithms 4.1 + 4.2) at M = 10⁴ with the paper's 5%
// minimum support.
func BenchmarkFig10ConfidenceHull(b *testing.B) {
	u, v := ruleBenchBuckets(10000)
	total := 0
	for _, x := range u {
		total += x
	}
	minSup := 0.05 * float64(total)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.OptimalSlopePair(u, v, minSup); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10ConfidenceNaive measures the quadratic baseline of
// Figure 10 at the same size.
func BenchmarkFig10ConfidenceNaive(b *testing.B) {
	u, v := ruleBenchBuckets(10000)
	total := 0
	for _, x := range u {
		total += x
	}
	minSup := 0.05 * float64(total)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.NaiveOptimalSlopePair(u, v, minSup); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11SupportLinear measures the O(M) optimized-support
// algorithm (Algorithms 4.3 + 4.4) at M = 10⁴ with the paper's 50%
// minimum confidence.
func BenchmarkFig11SupportLinear(b *testing.B) {
	u, v := ruleBenchBuckets(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.OptimalSupportPair(u, v, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11SupportNaive measures the quadratic baseline of
// Figure 11 at the same size.
func BenchmarkFig11SupportNaive(b *testing.B) {
	u, v := ruleBenchBuckets(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.NaiveOptimalSupportPair(u, v, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelBucketing measures the Section 3.3 parallel counting
// scan (Algorithm 3.2) with 8 processing elements over 1M tuples.
func BenchmarkParallelBucketing(b *testing.B) {
	shape, err := datagen.NewPerfShape(1, 4, nil)
	if err != nil {
		b.Fatal(err)
	}
	rel := datagen.MustMaterialize(shape, 1000000, 1)
	rng := rand.New(rand.NewSource(2))
	bounds, err := bucketing.SampledBoundaries(rel, 0, 1000, 40, rng)
	if err != nil {
		b.Fatal(err)
	}
	var opts bucketing.Options
	for _, bi := range rel.Schema().BooleanIndices() {
		opts.Bools = append(opts.Bools, bucketing.BoolCond{Attr: bi, Want: true})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bucketing.ParallelCount(rel, 0, bounds, opts, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionRect2D measures the §1.4 rectangle extension: the
// O(M³) rectangle sweep on a 48×48 grid of 100k tuples, end to end
// (bucketing, grid counting, optimization).
func BenchmarkExtensionRect2D(b *testing.B) {
	rel, err := SampleBankData(100000, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Mine2D(rel, "Age", "Balance", "CardLoan", true,
			OptimizedConfidence, 48, Config{MinSupport: 0.05, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionXMonotone measures the x-monotone gain DP end to
// end at the same grid size.
func BenchmarkExtensionXMonotone(b *testing.B) {
	rel, err := SampleBankData(100000, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MineXMonotone(rel, "Age", "Balance", "CardLoan", true,
			48, Config{MinConfidence: 0.5, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionRectConvex measures the rectilinear-convex
// four-phase DP end to end at the same grid size.
func BenchmarkExtensionRectConvex(b *testing.B) {
	rel, err := SampleBankData(100000, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MineRectilinearConvex(rel, "Age", "Balance", "CardLoan", true,
			48, Config{MinConfidence: 0.5, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// bankDisk1M writes the 1M-tuple bank data set to disk (v2 columnar
// format, the default) and opens it — the shared fixture of the 2-D
// disk benchmarks.
func bankDisk1M(b *testing.B) *relation.DiskRelation {
	b.Helper()
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "bank.opr")
	if err := datagen.WriteDisk(path, bank, 1000000, 1); err != nil {
		b.Fatal(err)
	}
	rel, err := OpenDisk(path)
	if err != nil {
		b.Fatal(err)
	}
	return rel
}

// BenchmarkMine2D measures the rebuilt single-pair 2-D miner on the
// 1M-tuple disk bank at grid side 64: one fused sampling scan for both
// axes, one counting scan, parallel rectangle sweep. Compare against
// BenchmarkMine2DPerPair, the pre-PR three-scan serial path.
func BenchmarkMine2D(b *testing.B) {
	rel := bankDisk1M(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Mine2D(rel, "Age", "Balance", "CardLoan", true,
			OptimizedConfidence, 64, Config{MinSupport: 0.05, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(rel.BytesRead())/float64(b.N), "diskB/op")
}

// BenchmarkMine2DPerPair is the legacy per-pair pipeline (two sampling
// scans, one counting scan, serial kernels) on the same workload — the
// pre-PR baseline for BenchmarkMine2D.
func BenchmarkMine2DPerPair(b *testing.B) {
	rel := bankDisk1M(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := miner.Mine2DPerPair(rel, "Age", "Balance", "CardLoan", true,
			OptimizedConfidence, 64, Config{MinSupport: 0.05, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(rel.BytesRead())/float64(b.N), "diskB/op")
}

// BenchmarkMineAll2DBank measures the fused all-pairs engine end to
// end on the disk bank: all three attribute pairs, both paper-standard
// rectangle kinds, in exactly two relation scans.
func BenchmarkMineAll2DBank(b *testing.B) {
	rel := bankDisk1M(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MineAll2D(rel, Options2D{Objective: "CardLoan", ObjectiveValue: true, GridSide: 64},
			Config{MinSupport: 0.05, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(rel.BytesRead())/float64(b.N), "diskB/op")
}

// BenchmarkMineAllBank measures the end-to-end system: the complete set
// of optimized rules for all combinations (3 numeric × 3 Boolean) on
// 100k bank tuples — the headline workload of the paper's introduction.
// The fused engine runs this in exactly two scans of the relation.
func BenchmarkMineAllBank(b *testing.B) {
	rel, err := SampleBankData(100000, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MineAll(rel, Config{Buckets: 1000, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchMineAllDisk measures the end-to-end MineAll workload over a
// 1M-tuple DISK-resident relation in the given format — the paper's
// actual regime, where sequential passes dominate cost.
func benchMineAllDisk(b *testing.B, version int) {
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "bank.opr")
	if err := datagen.WriteDiskFormat(path, bank, 1000000, 1, version); err != nil {
		b.Fatal(err)
	}
	rel, err := OpenDisk(path)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MineAll(rel, Config{Buckets: 1000, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(rel.BytesRead())/float64(b.N), "diskB/op")
}

// BenchmarkMineAllDisk runs the disk workload on the current default
// format (v2 column-major block groups): the counting scan decodes
// contiguous column blocks while the prefetcher reads ahead, and the
// sampling scan touches only the numeric columns up to the last
// sampled index.
func BenchmarkMineAllDisk(b *testing.B) { benchMineAllDisk(b, DiskFormatV2) }

// BenchmarkMineAllDiskV1 is the same workload on the legacy row-major
// format, kept as the baseline for the v2 storage win.
func BenchmarkMineAllDiskV1(b *testing.B) { benchMineAllDisk(b, DiskFormatV1) }

// BenchmarkMineAllDiskV3 is the same workload on the compressed v3
// format: the integer-valued bank columns delta-bit-pack, so the scan
// reads (and the diskB/op metric counts) fewer physical bytes than v2
// at the cost of per-block decoding.
func BenchmarkMineAllDiskV3(b *testing.B) { benchMineAllDisk(b, DiskFormatV3) }

// benchMineAllDiskSharded is the 1M-tuple MineAll workload over the
// SAME data split across 4 v2 shard files — the sharded backend's
// overhead/benefit relative to BenchmarkMineAllDisk. concurrent > 1
// scans that many shards at once, each with its own prefetcher.
func benchMineAllDiskSharded(b *testing.B, concurrent int) {
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		b.Fatal(err)
	}
	manifest := filepath.Join(b.TempDir(), "bank.oprs")
	if err := datagen.WriteSharded(manifest, bank, 1000000, 1, 4, relation.DiskFormatV2); err != nil {
		b.Fatal(err)
	}
	rel, err := OpenSharded(manifest)
	if err != nil {
		b.Fatal(err)
	}
	defer rel.Close()
	rel.SetConcurrentScans(concurrent)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MineAll(rel, Config{Buckets: 1000, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(rel.BytesRead())/float64(b.N), "diskB/op")
}

// BenchmarkMineAllDiskSharded scans the 4 shards serially — the
// layout-overhead measurement against BenchmarkMineAllDisk.
func BenchmarkMineAllDiskSharded(b *testing.B) { benchMineAllDiskSharded(b, 0) }

// BenchmarkMineAllDiskShardedConcurrent runs all 4 shard sub-scans
// concurrently (in-order delivery); on multi-core, multi-disk hardware
// this is where sharding beats the single file.
func BenchmarkMineAllDiskShardedConcurrent(b *testing.B) { benchMineAllDiskSharded(b, 4) }

// benchScanDisk2of8 measures a selective scan — 2 columns of a d=8
// numeric relation, the shape of a targeted Mine query on a wide
// relation — in the given format, reporting counted disk bytes. On v1
// the scan pays all 8 columns; on v2 it reads only the 2 selected
// column blocks (4x fewer bytes).
func benchScanDisk2of8(b *testing.B, version int) {
	shape, err := datagen.NewPerfShape(8, 2, nil)
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "wide.opr")
	const n = 1000000
	if err := datagen.WriteDiskFormat(path, shape, n, 1, version); err != nil {
		b.Fatal(err)
	}
	rel, err := OpenDisk(path)
	if err != nil {
		b.Fatal(err)
	}
	cols := relation.ColumnSet{Numeric: []int{2, 5}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := 0.0
		err := rel.ScanRange(0, n, cols, func(batch *relation.Batch) error {
			for _, v := range batch.Numeric[0][:batch.Len] {
				sum += v
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(rel.BytesRead())/float64(b.N), "diskB/op")
}

// BenchmarkScanDisk2of8 is the selective scan on the v2 columnar
// format.
func BenchmarkScanDisk2of8(b *testing.B) { benchScanDisk2of8(b, DiskFormatV2) }

// BenchmarkScanDisk2of8V1 is the selective scan on the v1 row format.
func BenchmarkScanDisk2of8V1(b *testing.B) { benchScanDisk2of8(b, DiskFormatV1) }

// benchMineDiskTargeted8 measures a targeted Mine query — one numeric
// driver, one Boolean objective — on a 1M-tuple disk relation with
// d=8 numeric attributes. The query touches 2 of the 10 columns, so
// the v2 columnar format reads ~8x fewer bytes than v1's full rows;
// this is the end-to-end miner counterpart of the raw selective-scan
// benchmark above.
func benchMineDiskTargeted8(b *testing.B, version int) {
	shape, err := datagen.NewPerfShape(8, 2, nil)
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "wide.opr")
	if err := datagen.WriteDiskFormat(path, shape, 1000000, 1, version); err != nil {
		b.Fatal(err)
	}
	rel, err := OpenDisk(path)
	if err != nil {
		b.Fatal(err)
	}
	s := rel.Schema()
	numeric := s[s.NumericIndices()[3]].Name
	objective := s[s.BooleanIndices()[0]].Name
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Mine(rel, numeric, objective, true, nil, Config{Buckets: 1000, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(rel.BytesRead())/float64(b.N), "diskB/op")
}

// BenchmarkMineDiskTargeted8 is the targeted query on the v2 columnar
// format.
func BenchmarkMineDiskTargeted8(b *testing.B) { benchMineDiskTargeted8(b, DiskFormatV2) }

// BenchmarkMineDiskTargeted8V1 is the targeted query on the v1 row
// format.
func BenchmarkMineDiskTargeted8V1(b *testing.B) { benchMineDiskTargeted8(b, DiskFormatV1) }
