package optrule_test

import (
	"fmt"
	"log"

	"optrule"
)

// ExampleMineValues mines rules straight from slices: ten ages with the
// objective true only for the middle band.
func ExampleMineValues() {
	var ages []float64
	var hits []bool
	for age := 20; age < 30; age++ {
		for i := 0; i < 10; i++ {
			ages = append(ages, float64(age))
			hits = append(hits, age >= 24 && age <= 26)
		}
	}
	sup, _, err := optrule.MineValues(ages, hits, 0.1, 0.9, "Age", "Hit")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("range [%g, %g], support %.0f%%, confidence %.0f%%\n",
		sup.Low, sup.High, 100*sup.Support, 100*sup.Confidence)
	// Output: range [24, 26], support 30%, confidence 100%
}

// ExampleMine mines both optimized rules for one attribute pair on the
// bundled synthetic bank data.
func ExampleMine() {
	rel, err := optrule.SampleBankData(50000, 42)
	if err != nil {
		log.Fatal(err)
	}
	sup, conf, err := optrule.Mine(rel, "Balance", "CardLoan", true, nil, optrule.Config{
		MinSupport:    0.10,
		MinConfidence: 0.55,
		Buckets:       500,
		Seed:          42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("support rule confident:", sup.Confidence >= 0.55)
	fmt.Println("confidence rule ample:", conf.Support >= 0.10)
	// Output:
	// support rule confident: true
	// confidence rule ample: true
}

// ExampleMineTopK lists disjoint high-confidence clusters in order.
func ExampleMineTopK() {
	rel, err := optrule.SampleBankData(40000, 5)
	if err != nil {
		log.Fatal(err)
	}
	rules, err := optrule.MineTopK(rel, "Balance", "CardLoan", true,
		optrule.OptimizedConfidence, 2, optrule.Config{
			MinSupport: 0.05, Buckets: 300, Seed: 5,
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("clusters found:", len(rules))
	fmt.Println("ordered by confidence:", rules[0].Confidence >= rules[1].Confidence)
	disjoint := rules[0].High < rules[1].Low || rules[1].High < rules[0].Low
	fmt.Println("disjoint:", disjoint)
	// Output:
	// clusters found: 2
	// ordered by confidence: true
	// disjoint: true
}

// ExampleMine2D mines a rectangle rule over two numeric attributes.
func ExampleMine2D() {
	rel, err := optrule.SampleBankData(50000, 8)
	if err != nil {
		log.Fatal(err)
	}
	rule, err := optrule.Mine2D(rel, "Age", "Balance", "CardLoan", true,
		optrule.OptimizedConfidence, 24, optrule.Config{MinSupport: 0.05, Seed: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("found:", rule != nil)
	fmt.Println("ample:", rule.Support >= 0.05)
	// Output:
	// found: true
	// ample: true
}

// ExampleMaxAverageRange answers the §5 decision-support query.
func ExampleMaxAverageRange() {
	rel, err := optrule.SampleBankData(30000, 2)
	if err != nil {
		log.Fatal(err)
	}
	got, err := optrule.MaxAverageRange(rel, "Age", "Balance", 0.20,
		optrule.Config{Buckets: 100, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("beats the overall average:", got.Average > got.OverallAverage)
	fmt.Println("meets the support floor:", got.Support >= 0.20)
	// Output:
	// beats the overall average: true
	// meets the support floor: true
}

// ExampleBuildProfile inspects the confidence landscape behind a rule.
func ExampleBuildProfile() {
	rel, err := optrule.SampleBankData(30000, 3)
	if err != nil {
		log.Fatal(err)
	}
	prof, err := optrule.BuildProfile(rel, "Balance", "CardLoan", true, 12,
		optrule.Config{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	// The planted association peaks in the mid-balance buckets.
	peak := 0.0
	for _, b := range prof.Buckets {
		if b.Conf > peak {
			peak = b.Conf
		}
	}
	fmt.Println("buckets:", len(prof.Buckets))
	fmt.Println("peak well above baseline:", peak > 1.5*prof.Overall)
	// Output:
	// buckets: 12
	// peak well above baseline: true
}

// ExampleVerify audits a mined rule with an exact rescan.
func ExampleVerify() {
	rel, err := optrule.SampleBankData(20000, 7)
	if err != nil {
		log.Fatal(err)
	}
	sup, _, err := optrule.Mine(rel, "Balance", "CardLoan", true, nil, optrule.Config{
		MinConfidence: 0.55, Buckets: 200, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	v, err := optrule.Verify(rel, *sup, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified count matches:", v.Count == sup.Count)
	// Output: verified count matches: true
}
