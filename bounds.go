package optrule

import (
	"optrule/internal/core"
	"optrule/internal/stats"
)

// Approximation-quality helpers from the paper's Sections 3.2 and 3.4,
// exposed so users can size their bucket counts.

// SupportErrorBound returns the worst-case relative support error
// 2/(M·supportOpt) of approximating an optimal range (of fractional
// support supportOpt) with M equi-depth buckets.
func SupportErrorBound(m int, supportOpt float64) float64 {
	return core.SupportErrorBound(m, supportOpt)
}

// ConfidenceErrorBound returns the worst-case relative confidence error
// 2/(M·supportOpt − 2); +Inf when M·supportOpt <= 2.
func ConfidenceErrorBound(m int, supportOpt float64) float64 {
	return core.ConfidenceErrorBound(m, supportOpt)
}

// MinBucketsForError returns the smallest bucket count whose relative
// support error bound is at most maxRelErr for ranges of the given
// support.
func MinBucketsForError(supportOpt, maxRelErr float64) int {
	return core.MinBucketsForNegligibleError(supportOpt, maxRelErr)
}

// RecommendedSampleSize returns the sample size S the randomized
// bucketing draws for m buckets (the paper's S = 40·M, chosen from the
// binomial-tail analysis of Figure 1).
func RecommendedSampleSize(m int) int {
	return stats.RecommendedSampleSize(m)
}

// BucketDeviationProbability returns the probability that a bucket
// built from a size-S sample deviates from equi-depth by a factor of at
// least delta — the curve of the paper's Figure 1.
func BucketDeviationProbability(sampleSize, buckets int, delta float64) float64 {
	return stats.BucketDeviationProbability(sampleSize, buckets, delta)
}
