package region

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomGrid builds a rows×cols grid with cell counts in [0, maxU]
// (zeros allowed — the sweep must handle empty columns).
func randomGrid(rng *rand.Rand, rows, cols, maxU int) *Grid {
	g, err := NewGrid(rows, cols)
	if err != nil {
		panic(err)
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.U[r][c] = rng.Intn(maxU + 1)
			g.V[r][c] = float64(rng.Intn(g.U[r][c] + 1))
		}
	}
	return g
}

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(0, 5); err == nil {
		t.Errorf("zero rows accepted")
	}
	if _, err := NewGrid(5, 0); err == nil {
		t.Errorf("zero cols accepted")
	}
	g, err := NewGrid(3, 4)
	if err != nil || g.Rows() != 3 || g.Cols() != 4 || g.Total() != 0 {
		t.Errorf("grid shape wrong: %v %v", g, err)
	}
}

func TestOptimalRectConfidenceSmallPlanted(t *testing.T) {
	// 4x4 grid: a hot 2x2 block at rows 1-2, cols 1-2 with conf 0.9;
	// background conf 0.1; each cell has 10 tuples.
	g, _ := NewGrid(4, 4)
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			g.U[r][c] = 10
			if r >= 1 && r <= 2 && c >= 1 && c <= 2 {
				g.V[r][c] = 9
			} else {
				g.V[r][c] = 1
			}
		}
	}
	rect, ok, err := OptimalRectConfidence(g, 40)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if rect.R1 != 1 || rect.R2 != 2 || rect.C1 != 1 || rect.C2 != 2 {
		t.Errorf("rect = %+v, want the hot 2x2 block", rect)
	}
	if rect.Conf != 0.9 || rect.Count != 40 {
		t.Errorf("rect stats wrong: %+v", rect)
	}
}

func TestOptimalRectSupportExpandsWhileConfident(t *testing.T) {
	g, _ := NewGrid(3, 3)
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			g.U[r][c] = 10
			g.V[r][c] = 2
		}
	}
	// Center row fully hot.
	for c := 0; c < 3; c++ {
		g.V[1][c] = 10
	}
	// θ=0.5: center row alone gives 30 tuples at conf 1.0; adding any
	// other full row drops to (30+6)/60 = 0.6 >= 0.5; all three rows:
	// 42/90 ≈ 0.47 < 0.5. Optimal: two rows, 60 tuples.
	rect, ok, err := OptimalRectSupport(g, 0.5)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if rect.Count != 60 {
		t.Errorf("rect = %+v, want 60 tuples (two full rows)", rect)
	}
	if rect.Conf < 0.5 {
		t.Errorf("rect not confident: %+v", rect)
	}
}

func TestRectMatchesNaiveProperty(t *testing.T) {
	f := func(seed int64, rRaw, cRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := int(rRaw%6) + 1
		cols := int(cRaw%6) + 1
		g := randomGrid(rng, rows, cols, 5)
		if g.Total() == 0 {
			return true
		}
		minSup := float64(rng.Intn(g.Total() + 1))
		fast, okF, err1 := OptimalRectConfidence(g, minSup)
		naive, okN, err2 := NaiveOptimalRectConfidence(g, minSup)
		if err1 != nil || err2 != nil || okF != okN {
			return false
		}
		if okF && (fast.Conf != naive.Conf || fast.Count != naive.Count) {
			return false
		}
		theta := float64(rng.Intn(101)) / 100
		fastS, okFS, err3 := OptimalRectSupport(g, theta)
		naiveS, okNS, err4 := NaiveOptimalRectSupport(g, theta)
		if err3 != nil || err4 != nil || okFS != okNS {
			return false
		}
		if okFS && fastS.Count != naiveS.Count {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

func TestRectSweepSeededTrials(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		rows := 1 + rng.Intn(5)
		cols := 1 + rng.Intn(5)
		g := randomGrid(rng, rows, cols, 4)
		if g.Total() == 0 {
			continue
		}
		minSup := float64(rng.Intn(g.Total()))
		fast, okF, err := OptimalRectConfidence(g, minSup)
		if err != nil {
			t.Fatal(err)
		}
		naive, okN, err := NaiveOptimalRectConfidence(g, minSup)
		if err != nil {
			t.Fatal(err)
		}
		if okF != okN {
			t.Fatalf("trial %d: ok mismatch (U=%v V=%v minSup=%g)", trial, g.U, g.V, minSup)
		}
		if okF && (fast.Conf != naive.Conf || fast.Count != naive.Count) {
			t.Fatalf("trial %d: fast=%+v naive=%+v (U=%v V=%v)", trial, fast, naive, g.U, g.V)
		}
	}
}

func TestMaxGainRectMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 300; trial++ {
		rows := 1 + rng.Intn(5)
		cols := 1 + rng.Intn(5)
		g := randomGrid(rng, rows, cols, 4)
		theta := float64(rng.Intn(101)) / 100
		fast, ok, err := MaxGainRect(g, theta)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("gain rect should always exist on a non-empty grid")
		}
		// Brute force gain over all rectangles.
		bestGain := 0.0
		first := true
		for r1 := 0; r1 < rows; r1++ {
			for r2 := r1; r2 < rows; r2++ {
				for c1 := 0; c1 < cols; c1++ {
					for c2 := c1; c2 < cols; c2++ {
						gain := 0.0
						for r := r1; r <= r2; r++ {
							for c := c1; c <= c2; c++ {
								gain += g.V[r][c] - theta*float64(g.U[r][c])
							}
						}
						if first || gain > bestGain {
							bestGain = gain
							first = false
						}
					}
				}
			}
		}
		if diff := fast.Gain - bestGain; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("trial %d: kadane gain %g, brute force %g (U=%v V=%v θ=%g)",
				trial, fast.Gain, bestGain, g.U, g.V, theta)
		}
	}
}

func TestRectValidation(t *testing.T) {
	if _, _, err := OptimalRectConfidence(nil, 1); err == nil {
		t.Errorf("nil grid accepted")
	}
	g, _ := NewGrid(2, 2)
	g.U[1] = g.U[1][:1] // ragged
	if _, _, err := OptimalRectSupport(g, 0.5); err == nil {
		t.Errorf("ragged grid accepted")
	}
	g2, _ := NewGrid(2, 2)
	g2.U[0][0] = -1
	if _, _, err := MaxGainRect(g2, 0.5); err == nil {
		t.Errorf("negative count accepted")
	}
	// Entirely empty grid: no ample rectangle.
	g3, _ := NewGrid(2, 2)
	if _, ok, err := OptimalRectConfidence(g3, 1); err != nil || ok {
		t.Errorf("empty grid should return ok=false: %v %v", ok, err)
	}
}
