package region

import (
	"math"
	"math/rand"
	"testing"
)

// bruteForceRectConvexGain enumerates every rectilinear-convex region
// of a tiny grid: chains of overlapping intervals with valley-unimodal
// lower and hill-unimodal upper endpoints.
func bruteForceRectConvexGain(g *Grid, theta float64) float64 {
	rows, cols := g.Rows(), g.Cols()
	gain := func(c, a, b int) float64 {
		s := 0.0
		for r := a; r <= b; r++ {
			s += g.V[r][c] - theta*float64(g.U[r][c])
		}
		return s
	}
	best := math.Inf(-1)
	// aSwitched: lower endpoint has started rising; bSwitched: upper
	// endpoint has started falling.
	var extend func(c, a, b int, aSwitched, bSwitched bool, acc float64)
	extend = func(c, a, b int, aSwitched, bSwitched bool, acc float64) {
		if acc > best {
			best = acc
		}
		if c+1 >= cols {
			return
		}
		for a2 := 0; a2 < rows; a2++ {
			for b2 := a2; b2 < rows; b2++ {
				if a2 > b || a > b2 {
					continue // not overlapping
				}
				as, bs := aSwitched, bSwitched
				if a2 > a {
					as = true
				} else if a2 < a && aSwitched {
					continue // lower endpoint fell after rising
				}
				if b2 < b {
					bs = true
				} else if b2 > b && bSwitched {
					continue // upper endpoint rose after falling
				}
				extend(c+1, a2, b2, as, bs, acc+gain(c+1, a2, b2))
			}
		}
	}
	for c := 0; c < cols; c++ {
		for a := 0; a < rows; a++ {
			for b := a; b < rows; b++ {
				extend(c, a, b, false, false, gain(c, a, b))
			}
		}
	}
	return best
}

func TestRectConvexMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 150; trial++ {
		rows := 1 + rng.Intn(4)
		cols := 1 + rng.Intn(4)
		g := randomGrid(rng, rows, cols, 4)
		theta := float64(rng.Intn(101)) / 100
		fast, ok, err := MaxGainRectilinearConvex(g, theta)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("trial %d: no region on a valid grid", trial)
		}
		want := bruteForceRectConvexGain(g, theta)
		if math.Abs(fast.Gain-want) > 1e-9 {
			t.Fatalf("trial %d: DP gain %g, brute force %g (U=%v V=%v θ=%g)",
				trial, fast.Gain, want, g.U, g.V, theta)
		}
		// Structural checks: x-monotone invariants + unimodal endpoints
		// + the recomputed gain matches.
		if err := fast.Validate(rows, cols); err != nil {
			t.Fatalf("trial %d: invalid region: %v (%+v)", trial, err, fast)
		}
		if !fast.IsRectilinearConvex() {
			t.Fatalf("trial %d: region not rectilinear-convex: %+v", trial, fast.Columns)
		}
		recomputed := 0.0
		for _, ci := range fast.Columns {
			for r := ci.Lo; r <= ci.Hi; r++ {
				recomputed += g.V[r][ci.Col] - theta*float64(g.U[r][ci.Col])
			}
		}
		if math.Abs(recomputed-fast.Gain) > 1e-9 {
			t.Fatalf("trial %d: region gain %g != reported %g", trial, recomputed, fast.Gain)
		}
	}
}

func TestRegionClassHierarchy(t *testing.T) {
	// Rectangles ⊆ rectilinear-convex ⊆ x-monotone, so the optimal
	// gains must be ordered the same way on every grid.
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 80; trial++ {
		rows := 2 + rng.Intn(5)
		cols := 2 + rng.Intn(5)
		g := randomGrid(rng, rows, cols, 5)
		theta := 0.5
		rect, _, err := MaxGainRect(g, theta)
		if err != nil {
			t.Fatal(err)
		}
		rc, _, err := MaxGainRectilinearConvex(g, theta)
		if err != nil {
			t.Fatal(err)
		}
		xm, _, err := MaxGainXMonotone(g, theta)
		if err != nil {
			t.Fatal(err)
		}
		if rc.Gain < rect.Gain-1e-9 {
			t.Fatalf("trial %d: rectilinear-convex gain %g below rectangle %g", trial, rc.Gain, rect.Gain)
		}
		if xm.Gain < rc.Gain-1e-9 {
			t.Fatalf("trial %d: x-monotone gain %g below rectilinear-convex %g", trial, xm.Gain, rc.Gain)
		}
	}
}

func TestRectConvexDiamond(t *testing.T) {
	// A diamond (bulging then shrinking) is rectilinear-convex but not
	// a rectangle: columns with intervals [2,2], [1,3], [0,4], [1,3],
	// [2,2] hot in a 5x5 grid.
	n := 5
	g, _ := NewGrid(n, n)
	widths := [][2]int{{2, 2}, {1, 3}, {0, 4}, {1, 3}, {2, 2}}
	for c := 0; c < n; c++ {
		for r := 0; r < n; r++ {
			g.U[r][c] = 10
			if r >= widths[c][0] && r <= widths[c][1] {
				g.V[r][c] = 10
			}
		}
	}
	rc, ok, err := MaxGainRectilinearConvex(g, 0.5)
	if err != nil || !ok {
		t.Fatal(err)
	}
	// The diamond has 13 hot cells, gain 13·5 = 65; it should be found
	// exactly.
	if rc.Gain != 65 {
		t.Errorf("diamond gain = %g, want 65 (%+v)", rc.Gain, rc.Columns)
	}
	if rc.Conf != 1 {
		t.Errorf("diamond confidence = %g, want 1", rc.Conf)
	}
	if !rc.IsRectilinearConvex() {
		t.Errorf("diamond region not marked rectilinear-convex")
	}
	// A rectangle can capture at most the middle 3 columns × rows 1-3
	// (9 cells, 8 hot... actually [1,3]x[1,3]: hot cells 3+3+3 minus
	// corners of diamond... compute: best rectangle gain must be lower.
	rect, _, err := MaxGainRect(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if rect.Gain >= rc.Gain {
		t.Errorf("rectangle gain %g should be below the diamond's %g", rect.Gain, rc.Gain)
	}
}

func TestIsRectilinearConvexNegativeCases(t *testing.T) {
	// a falls after rising: valley violated.
	r := XMonotoneRegion{Columns: []ColumnInterval{
		{Col: 0, Lo: 2, Hi: 3}, {Col: 1, Lo: 3, Hi: 3}, {Col: 2, Lo: 2, Hi: 3},
	}}
	if r.IsRectilinearConvex() {
		t.Errorf("a-endpoint valley violation not detected")
	}
	// b rises after falling: hill violated.
	r = XMonotoneRegion{Columns: []ColumnInterval{
		{Col: 0, Lo: 0, Hi: 3}, {Col: 1, Lo: 0, Hi: 2}, {Col: 2, Lo: 0, Hi: 3},
	}}
	if r.IsRectilinearConvex() {
		t.Errorf("b-endpoint hill violation not detected")
	}
}
