package region

import (
	"sync"
	"sync/atomic"
)

// Parallel kernel plumbing. All three region classes fan their work
// over a pool of goroutines in ways chosen to keep results EXACTLY
// identical to the serial kernels:
//
//   - the rectangle sweeps hand out r1 values dynamically (the work
//     per r1 shrinks as r1 grows, so static splits would be lopsided),
//     record each r1's locally-best candidate, and fold the per-r1
//     bests back in r1 order with the same strict comparison the
//     serial fold uses — a left fold over the same candidate sequence;
//   - the DPs partition each column's interval table across workers;
//     every cell is a pure function of the previous column's state, so
//     any partition computes the same values and backtracking args,
//     and the best-cell scan again folds per-partition results in
//     index order.
//
// Candidate comparisons are exact (integer-valued counts, float
// equality on identical arithmetic), so the folds are associative over
// contiguous regrouping and the parallel kernels are deterministic.

// parallelFor runs fn over [0, n) split into one contiguous chunk per
// worker. fn must be safe to run concurrently on disjoint ranges.
func parallelFor(workers, n int, fn func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// optimalRectParallel distributes the rectangle sweep's r1 values over
// workers goroutines, each with its own pooled scratch, and folds the
// per-r1 bests in r1 order. uf/vf are the grid's flat cells.
func optimalRectParallel(uf []int, vf []float64, rows, cols int,
	solve rectSolve, better func(a, b Rect) bool, prune rectPrune, workers int) (Rect, bool, error) {
	type rowBest struct {
		rect  Rect
		found bool
		err   error
	}
	bests := make([]rowBest, rows)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := newSweepScratch(cols)
			for {
				r1 := int(next.Add(1)) - 1
				if r1 >= rows {
					return
				}
				rect, found, err := sweepRowRange(uf, vf, rows, cols, r1, r1+1, solve, better, prune, sc)
				bests[r1] = rowBest{rect: rect, found: found, err: err}
			}
		}()
	}
	wg.Wait()
	var best Rect
	found := false
	for r1 := 0; r1 < rows; r1++ {
		b := bests[r1]
		if b.err != nil {
			return Rect{}, false, b.err
		}
		if !b.found {
			continue
		}
		if !found || better(b.rect, best) {
			best = b.rect
			found = true
		}
	}
	return best, found, nil
}

// gainSweepParallel is optimalRectParallel's Kadane counterpart.
func gainSweepParallel(uf []int, vf []float64, rows, cols int, theta float64, workers int) (Rect, bool) {
	type rowBest struct {
		rect  Rect
		found bool
	}
	bests := make([]rowBest, rows)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			u := make([]int, cols)
			v := make([]float64, cols)
			f := make([]float64, cols+1)
			for {
				r1 := int(next.Add(1)) - 1
				if r1 >= rows {
					return
				}
				rect, found := gainSweepRange(uf, vf, rows, cols, r1, r1+1, theta, u, v, f)
				bests[r1] = rowBest{rect: rect, found: found}
			}
		}()
	}
	wg.Wait()
	var best Rect
	found := false
	for r1 := 0; r1 < rows; r1++ {
		b := bests[r1]
		if !b.found {
			continue
		}
		if !found || b.rect.Gain > best.Gain {
			best = b.rect
			found = true
		}
	}
	return best, found
}
