package region

// Rectilinear-convex regions — the third region class named in the
// paper's §1.4 (developed in the KDD'97 companion [20]): connected
// regions whose intersection with EVERY row and EVERY column is a
// single interval. Equivalently: per-column intervals [a_c, b_c] of
// consecutive overlapping columns where the lower endpoints a_c are
// valley-unimodal (non-increasing, then non-decreasing) and the upper
// endpoints b_c are hill-unimodal (non-decreasing, then non-increasing).
// Such regions bulge outward and back in — the shape of a 2-D cluster —
// without the axis-parallel rigidity of a rectangle or the free-form
// drift of an x-monotone region.
//
// MaxGainRectilinearConvex finds the gain-optimal such region by
// dynamic programming over columns with four phase layers
// (a still-descending / a ascending) × (b still-ascending / b
// descending). Predecessor maxima are 2-D box queries answered by
// per-layer sparse tables, giving O(cols · rows² · log² rows) time —
// heavier than the companion paper's specialized algorithm but exact,
// and fast at mining grid sizes. The parallel variant builds the four
// phase tables concurrently (partitioning each doubling step across
// workers) and partitions every layer's DP-cell fill; each cell is a
// pure function of the previous column's tables, so parallel results
// are exactly the serial ones.

// layer indices: pa=0 a-descending stage, pa=1 a-ascending stage;
// pb=0 b-ascending stage, pb=1 b-descending stage.
const numPhases = 2

// sparse2D answers max queries over rectangles of a rows×rows value
// grid, tracking the argmax. Values at invalid cells are negInfF.
type sparse2D struct {
	rows int
	logs []int
	// t[ka][kb] is the (rows × rows) table of maxima over blocks of
	// size 2^ka × 2^kb; flattened.
	val [][]float64
	arg [][]int32
}

func newSparse2D(rows int) *sparse2D {
	s := &sparse2D{rows: rows, logs: make([]int, rows+1)}
	for i := 2; i <= rows; i++ {
		s.logs[i] = s.logs[i/2] + 1
	}
	k := s.logs[rows] + 1
	s.val = make([][]float64, k*k)
	s.arg = make([][]int32, k*k)
	for i := range s.val {
		s.val[i] = make([]float64, rows*rows)
		s.arg[i] = make([]int32, rows*rows)
	}
	return s
}

// build loads the base layer from f (flattened rows×rows; caller marks
// invalid cells with negInfF) and fills the doubling tables. Each
// doubling step's cells depend only on the previous step, so steps are
// partitioned across workers; cell values and argmaxes are identical
// for any worker count.
func (s *sparse2D) build(f []float64, workers int) {
	rows := s.rows
	k := s.logs[rows] + 1
	base := s.val[0]
	copy(base, f)
	arg0 := s.arg[0]
	for i := range f {
		arg0[i] = int32(i)
	}
	// Double along the first (a) dimension.
	for ka := 1; ka < k; ka++ {
		src := s.val[(ka-1)*k]
		srcA := s.arg[(ka-1)*k]
		dst := s.val[ka*k]
		dstA := s.arg[ka*k]
		half := 1 << (ka - 1)
		span := rows - (1 << ka) + 1
		parallelFor(workers, span, func(lo, hi int) {
			for a := lo; a < hi; a++ {
				for b := 0; b < rows; b++ {
					i1 := a*rows + b
					i2 := (a+half)*rows + b
					if src[i1] >= src[i2] {
						dst[a*rows+b] = src[i1]
						dstA[a*rows+b] = srcA[i1]
					} else {
						dst[a*rows+b] = src[i2]
						dstA[a*rows+b] = srcA[i2]
					}
				}
			}
		})
	}
	// Double along the second (b) dimension for every ka.
	for ka := 0; ka < k; ka++ {
		aSpan := rows
		if ka > 0 {
			aSpan = rows - (1 << ka) + 1
		}
		for kb := 1; kb < k; kb++ {
			src := s.val[ka*k+kb-1]
			srcA := s.arg[ka*k+kb-1]
			dst := s.val[ka*k+kb]
			dstA := s.arg[ka*k+kb]
			half := 1 << (kb - 1)
			parallelFor(workers, aSpan, func(lo, hi int) {
				for a := lo; a < hi; a++ {
					for b := 0; b+(1<<kb) <= rows; b++ {
						i1 := a*rows + b
						i2 := a*rows + b + half
						if src[i1] >= src[i2] {
							dst[i1] = src[i1]
							dstA[i1] = srcA[i1]
						} else {
							dst[i1] = src[i2]
							dstA[i1] = srcA[i2]
						}
					}
				}
			})
		}
	}
}

// query returns the max and argmax over a' ∈ [a1, a2], b' ∈ [b1, b2]
// (inclusive). Empty ranges return negInfF.
func (s *sparse2D) query(a1, a2, b1, b2 int) (float64, int32) {
	if a1 < 0 {
		a1 = 0
	}
	if b1 < 0 {
		b1 = 0
	}
	if a2 >= s.rows {
		a2 = s.rows - 1
	}
	if b2 >= s.rows {
		b2 = s.rows - 1
	}
	if a1 > a2 || b1 > b2 {
		return negInfF, -1
	}
	k := s.logs[s.rows] + 1
	ka := s.logs[a2-a1+1]
	kb := s.logs[b2-b1+1]
	t := s.val[ka*k+kb]
	ta := s.arg[ka*k+kb]
	rows := s.rows
	a3 := a2 - (1 << ka) + 1
	b3 := b2 - (1 << kb) + 1
	best, arg := t[a1*rows+b1], ta[a1*rows+b1]
	if v := t[a1*rows+b3]; v > best {
		best, arg = v, ta[a1*rows+b3]
	}
	if v := t[a3*rows+b1]; v > best {
		best, arg = v, ta[a3*rows+b1]
	}
	if v := t[a3*rows+b3]; v > best {
		best, arg = v, ta[a3*rows+b3]
	}
	return best, arg
}

// rcBack is one column×layer slab of backtracking state: the
// predecessor's flattened interval index (−1 when the region starts
// here) and its phase layer, in parallel arrays to avoid struct
// padding — at grid side 256 the backtracking state is the DP's
// dominant memory cost.
type rcBack struct {
	idx []int32
	lay []int8
}

// MaxGainRectilinearConvex returns the rectilinear-convex region
// maximizing the gain Σ(v − θ·u). The result is reported in the same
// per-column interval form as x-monotone regions (rectilinear-convex
// regions are a subclass); Validate plus the unimodality of the
// endpoints is checked by the tests.
func MaxGainRectilinearConvex(g *Grid, theta float64) (XMonotoneRegion, bool, error) {
	return MaxGainRectilinearConvexParallel(g, theta, 1)
}

// MaxGainRectilinearConvexParallel is MaxGainRectilinearConvex with the
// phase-table builds and DP-cell fills partitioned across workers
// goroutines. Results — including the backtracked column intervals —
// are identical to the serial kernel for any worker count.
func MaxGainRectilinearConvexParallel(g *Grid, theta float64, workers int) (XMonotoneRegion, bool, error) {
	if err := g.validate(); err != nil {
		return XMonotoneRegion{}, false, err
	}
	rows, cols := g.Rows(), g.Cols()
	uf, vf := g.flat()
	gainT := transposedGain(uf, vf, rows, cols, theta)

	w := make([]float64, rows*rows)
	// fPrev/fCur[layer][idx]; layer = pa*2+pb.
	fPrev := make([][]float64, 4)
	fCur := make([][]float64, 4)
	for l := 0; l < 4; l++ {
		fPrev[l] = make([]float64, rows*rows)
		fCur[l] = make([]float64, rows*rows)
	}
	tables := make([]*sparse2D, 4)
	for l := range tables {
		tables[l] = newSparse2D(rows)
	}
	back := make([][4]rcBack, cols)

	bestGain := negInfF
	bestCol, bestIdx, bestLayer := -1, -1, 0
	bestPerLA := make([][]cellBest, 4)
	for l := range bestPerLA {
		bestPerLA[l] = make([]cellBest, rows)
	}

	// The four layers' fills are independent given the tables, so they
	// run concurrently — but never with more goroutines than the
	// caller's worker budget: layerPar layers run at once, each with
	// layerWorkers of the pool. workers=1 stays fully serial.
	layerPar := workers
	if layerPar > 4 {
		layerPar = 4
	}
	layerWorkers := workers / layerPar
	if layerWorkers < 1 {
		layerWorkers = 1
	}

	for c := 0; c < cols; c++ {
		colGain := gainT[c*rows : (c+1)*rows]
		parallelFor(workers, rows, func(lo, hi int) {
			for a := lo; a < hi; a++ {
				run := 0.0
				for b := a; b < rows; b++ {
					run += colGain[b]
					w[a*rows+b] = run
				}
			}
		})
		for l := 0; l < 4; l++ {
			back[c][l] = rcBack{idx: make([]int32, rows*rows), lay: make([]int8, rows*rows)}
		}
		if c > 0 {
			// The four phase tables are independent; build them
			// concurrently, each partitioning its doubling steps.
			parallelFor(layerPar, 4, func(lo, hi int) {
				for l := lo; l < hi; l++ {
					tables[l].build(fPrev[l], layerWorkers)
				}
			})
		}
		parallelFor(layerPar, 4, func(llo, lhi int) {
			for l := llo; l < lhi; l++ {
				pa, pb := l/2, l%2
				cur := fCur[l]
				bk := back[c][l]
				perA := bestPerLA[l]
				parallelFor(layerWorkers, rows, func(lo, hi int) {
					for a := lo; a < hi; a++ {
						ab := cellBest{gain: negInfF}
						for b := a; b < rows; b++ {
							idx := a*rows + b
							// Starting fresh at this column is always allowed
							// for layer (0, 0) semantics; a region of one column
							// is in every phase, so seed all layers identically.
							bestPrev := negInfF
							var bestArg int32 = -1
							var bestL int8 = -1
							if c > 0 {
								// Predecessor interval ranges by phase:
								// a' ∈ [a, b] when pa=0 (a non-increasing stage:
								// a <= a', plus overlap a' <= b);
								// a' ∈ [0, a] when pa=1 (a >= a').
								a1, a2 := a, b
								if pa == 1 {
									a1, a2 = 0, a
								}
								// b' ∈ [a, b] when pb=0 (b >= b', overlap b' >= a);
								// b' ∈ [b, rows) when pb=1 (b <= b').
								b1, b2 := a, b
								if pb == 1 {
									b1, b2 = b, rows-1
								}
								// Allowed predecessor layers: pa'=0 always; pa'=1
								// only if pa=1. Same for pb.
								for _, pl := range predLayers(pa, pb) {
									if v, arg := tables[pl].query(a1, a2, b1, b2); v > bestPrev {
										bestPrev = v
										bestArg = arg
										bestL = int8(pl)
									}
								}
							}
							if bestPrev > 0 {
								cur[idx] = w[idx] + bestPrev
								bk.idx[idx], bk.lay[idx] = bestArg, bestL
							} else {
								cur[idx] = w[idx]
								bk.idx[idx], bk.lay[idx] = -1, -1
							}
							if !ab.found || cur[idx] > ab.gain {
								ab = cellBest{gain: cur[idx], idx: idx, found: true}
							}
						}
						perA[a] = ab
						// Invalid (a > b) cells must never win queries.
						for b := 0; b < a; b++ {
							cur[a*rows+b] = negInfF
						}
					}
				})
			}
		})
		// Merge per-layer, per-a bests in (layer, a) order — the fold
		// order of the serial layer-by-layer, (a, b)-ascending scan.
		for l := 0; l < 4; l++ {
			for a := 0; a < rows; a++ {
				if ab := bestPerLA[l][a]; ab.found && ab.gain > bestGain {
					bestGain = ab.gain
					bestCol, bestIdx, bestLayer = c, ab.idx, l
				}
			}
		}
		fPrev, fCur = fCur, fPrev
	}
	if bestCol < 0 {
		return XMonotoneRegion{}, false, nil
	}

	var rev []ColumnInterval
	c, idx, l := bestCol, bestIdx, bestLayer
	for {
		rev = append(rev, ColumnInterval{Col: c, Lo: idx / rows, Hi: idx % rows})
		bk := back[c][l]
		if bk.idx[idx] < 0 {
			break
		}
		idx, l = int(bk.idx[idx]), int(bk.lay[idx])
		c--
	}
	region := XMonotoneRegion{Gain: bestGain}
	region.Columns = make([]ColumnInterval, len(rev))
	for i := range rev {
		region.Columns[len(rev)-1-i] = rev[i]
	}
	for _, ci := range region.Columns {
		for r := ci.Lo; r <= ci.Hi; r++ {
			region.Count += uf[r*cols+ci.Col]
			region.SumV += vf[r*cols+ci.Col]
		}
	}
	if region.Count > 0 {
		region.Conf = region.SumV / float64(region.Count)
	}
	return region, true, nil
}

// predLayersTab backs predLayers; a package-level table keeps the hot
// per-cell loop allocation-free.
var predLayersTab = [numPhases * numPhases][]int{
	{0},          // (pa=0, pb=0)
	{0, 1},       // (pa=0, pb=1)
	{0, 2},       // (pa=1, pb=0)
	{0, 1, 2, 3}, // (pa=1, pb=1)
}

// predLayers lists the predecessor phase layers a target (pa, pb) may
// extend: a phase can only move forward (0 → 1), never back.
func predLayers(pa, pb int) []int {
	return predLayersTab[pa*2+pb]
}

// IsRectilinearConvex reports whether a region's endpoints satisfy the
// valley/hill unimodality that characterizes rectilinear convexity (on
// top of the x-monotone structural invariants).
func (r XMonotoneRegion) IsRectilinearConvex() bool {
	aSwitched := false // a has entered its non-decreasing stage
	bSwitched := false // b has entered its non-increasing stage
	for i := 1; i < len(r.Columns); i++ {
		prev, cur := r.Columns[i-1], r.Columns[i]
		switch {
		case cur.Lo < prev.Lo:
			if aSwitched {
				return false
			}
		case cur.Lo > prev.Lo:
			aSwitched = true
		}
		switch {
		case cur.Hi > prev.Hi:
			if bSwitched {
				return false
			}
		case cur.Hi < prev.Hi:
			bSwitched = true
		}
	}
	return true
}
