package region

import (
	"math"
	"math/rand"
	"testing"
)

// bruteForceXMonotoneGain enumerates every x-monotone region of a tiny
// grid recursively: choose a starting column and interval, then extend
// rightward with overlapping intervals or stop.
func bruteForceXMonotoneGain(g *Grid, theta float64) float64 {
	rows, cols := g.Rows(), g.Cols()
	gain := func(c, a, b int) float64 {
		s := 0.0
		for r := a; r <= b; r++ {
			s += g.V[r][c] - theta*float64(g.U[r][c])
		}
		return s
	}
	best := math.Inf(-1)
	var extend func(c, a, b int, acc float64)
	extend = func(c, a, b int, acc float64) {
		if acc > best {
			best = acc
		}
		if c+1 >= cols {
			return
		}
		for a2 := 0; a2 < rows; a2++ {
			for b2 := a2; b2 < rows; b2++ {
				if a2 <= b && a <= b2 { // overlap
					extend(c+1, a2, b2, acc+gain(c+1, a2, b2))
				}
			}
		}
	}
	for c := 0; c < cols; c++ {
		for a := 0; a < rows; a++ {
			for b := a; b < rows; b++ {
				extend(c, a, b, gain(c, a, b))
			}
		}
	}
	return best
}

func TestXMonotoneMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		rows := 1 + rng.Intn(4)
		cols := 1 + rng.Intn(4)
		g := randomGrid(rng, rows, cols, 4)
		theta := float64(rng.Intn(101)) / 100
		fast, ok, err := MaxGainXMonotone(g, theta)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("trial %d: no region on a valid grid", trial)
		}
		want := bruteForceXMonotoneGain(g, theta)
		if math.Abs(fast.Gain-want) > 1e-9 {
			t.Fatalf("trial %d: DP gain %g, brute force %g (U=%v V=%v θ=%g)",
				trial, fast.Gain, want, g.U, g.V, theta)
		}
		// The reported region must be structurally x-monotone and its
		// recomputed gain must equal the reported gain.
		if err := fast.Validate(rows, cols); err != nil {
			t.Fatalf("trial %d: invalid region: %v (%+v)", trial, err, fast)
		}
		recomputed := 0.0
		for _, ci := range fast.Columns {
			for r := ci.Lo; r <= ci.Hi; r++ {
				recomputed += g.V[r][ci.Col] - theta*float64(g.U[r][ci.Col])
			}
		}
		if math.Abs(recomputed-fast.Gain) > 1e-9 {
			t.Fatalf("trial %d: region gain %g != reported %g", trial, recomputed, fast.Gain)
		}
	}
}

func TestXMonotoneBeatsRectangle(t *testing.T) {
	// X-monotone regions generalize rectangles, so the x-monotone gain
	// can never be lower; on a diagonal hot band it must be strictly
	// higher.
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 100; trial++ {
		rows := 2 + rng.Intn(5)
		cols := 2 + rng.Intn(5)
		g := randomGrid(rng, rows, cols, 5)
		theta := 0.5
		xm, okX, err := MaxGainXMonotone(g, theta)
		if err != nil || !okX {
			t.Fatal(err)
		}
		rect, okR, err := MaxGainRect(g, theta)
		if err != nil || !okR {
			t.Fatal(err)
		}
		if xm.Gain < rect.Gain-1e-9 {
			t.Fatalf("trial %d: x-monotone gain %g below rectangle gain %g", trial, xm.Gain, rect.Gain)
		}
	}

	// Thick diagonal hot band: cells with |r − c| <= 1 are hot. Column
	// intervals [c−1, c+1] overlap their neighbours, so the x-monotone
	// optimum follows the whole band, while any rectangle must either
	// stay small or swallow cold off-band cells.
	n := 6
	g, _ := NewGrid(n, n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			g.U[r][c] = 10
			if r-c <= 1 && c-r <= 1 {
				g.V[r][c] = 10
			}
		}
	}
	xm, _, err := MaxGainXMonotone(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rect, _, err := MaxGainRect(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if xm.Gain <= rect.Gain {
		t.Errorf("diagonal band: x-monotone gain %g should strictly beat rectangle %g", xm.Gain, rect.Gain)
	}
	// The region should follow the band across every column, each
	// interval containing the diagonal cell (c, c).
	if len(xm.Columns) != n {
		t.Errorf("band region should span all %d columns, got %d (%+v)", n, len(xm.Columns), xm.Columns)
	}
	for _, ci := range xm.Columns {
		if ci.Lo > ci.Col || ci.Hi < ci.Col {
			t.Errorf("column %d interval [%d, %d] misses the diagonal cell", ci.Col, ci.Lo, ci.Hi)
		}
	}
	// The band is pure: confidence 1.
	if xm.Conf != 1 {
		t.Errorf("band region confidence %g, want 1 (%+v)", xm.Conf, xm.Columns)
	}
}

func TestXMonotoneSingleColumnAndCell(t *testing.T) {
	g, _ := NewGrid(3, 1)
	g.U[0][0], g.U[1][0], g.U[2][0] = 2, 2, 2
	g.V[0][0], g.V[1][0], g.V[2][0] = 0, 2, 0
	xm, ok, err := MaxGainXMonotone(g, 0.5)
	if err != nil || !ok {
		t.Fatal(err)
	}
	// Best: just the middle cell, gain 2 − 1 = 1.
	if xm.Gain != 1 || len(xm.Columns) != 1 || xm.Columns[0].Lo != 1 || xm.Columns[0].Hi != 1 {
		t.Errorf("region = %+v, want the middle cell with gain 1", xm)
	}
	if xm.Count != 2 || xm.Conf != 1 {
		t.Errorf("region stats wrong: %+v", xm)
	}
}

func TestXMonotoneValidation(t *testing.T) {
	if _, _, err := MaxGainXMonotone(nil, 0.5); err == nil {
		t.Errorf("nil grid accepted")
	}
	r := XMonotoneRegion{}
	if err := r.Validate(3, 3); err == nil {
		t.Errorf("empty region validated")
	}
	r = XMonotoneRegion{Columns: []ColumnInterval{{Col: 0, Lo: 0, Hi: 1}, {Col: 2, Lo: 0, Hi: 1}}}
	if err := r.Validate(3, 3); err == nil {
		t.Errorf("non-consecutive columns validated")
	}
	r = XMonotoneRegion{Columns: []ColumnInterval{{Col: 0, Lo: 0, Hi: 0}, {Col: 1, Lo: 2, Hi: 2}}}
	if err := r.Validate(3, 3); err == nil {
		t.Errorf("non-overlapping intervals validated")
	}
}
