package region

import (
	"math/rand"
	"reflect"
	"testing"
)

// The parallel kernels must be rule-for-rule identical to the serial
// kernels — not merely close: the miner's differential tests pin the
// fused 2-D engine (which uses the parallel kernels) against the
// legacy per-pair path (which used the serial ones), so any divergence
// here would surface as a mining difference. Grids are random with
// zero cells allowed, shapes deliberately non-square, and worker
// counts sweep past the row count to exercise the clamping.

func equalRects(a, b Rect) bool { return a == b }

func TestParallelRectKernelsMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		rows := 1 + rng.Intn(24)
		cols := 1 + rng.Intn(24)
		g := randomGrid(rng, rows, cols, 6)
		minSup := float64(rng.Intn(g.Total() + 1))
		theta := float64(rng.Intn(101)) / 100
		for _, workers := range []int{2, 3, 8, 33} {
			sc, okS, err := OptimalRectConfidence(g, minSup)
			if err != nil {
				t.Fatal(err)
			}
			pc, okP, err := OptimalRectConfidenceParallel(g, minSup, workers)
			if err != nil {
				t.Fatal(err)
			}
			if okS != okP || (okS && !equalRects(sc, pc)) {
				t.Fatalf("trial %d workers %d: confidence serial=%+v/%v parallel=%+v/%v",
					trial, workers, sc, okS, pc, okP)
			}

			ss, okS, err := OptimalRectSupport(g, theta)
			if err != nil {
				t.Fatal(err)
			}
			ps, okP, err := OptimalRectSupportParallel(g, theta, workers)
			if err != nil {
				t.Fatal(err)
			}
			if okS != okP || (okS && !equalRects(ss, ps)) {
				t.Fatalf("trial %d workers %d: support serial=%+v/%v parallel=%+v/%v",
					trial, workers, ss, okS, ps, okP)
			}

			sg, okS, err := MaxGainRect(g, theta)
			if err != nil {
				t.Fatal(err)
			}
			pg, okP, err := MaxGainRectParallel(g, theta, workers)
			if err != nil {
				t.Fatal(err)
			}
			if okS != okP || (okS && !equalRects(sg, pg)) {
				t.Fatalf("trial %d workers %d: gain serial=%+v/%v parallel=%+v/%v",
					trial, workers, sg, okS, pg, okP)
			}
		}
	}
}

// TestParallelRectMatchesNaiveOracle closes the loop to the O(M⁴)
// oracle: parallel sweep == serial sweep == naive enumeration.
func TestParallelRectMatchesNaiveOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 100; trial++ {
		rows := 1 + rng.Intn(6)
		cols := 1 + rng.Intn(6)
		g := randomGrid(rng, rows, cols, 5)
		if g.Total() == 0 {
			continue
		}
		minSup := float64(rng.Intn(g.Total() + 1))
		par, okP, err := OptimalRectConfidenceParallel(g, minSup, 4)
		if err != nil {
			t.Fatal(err)
		}
		naive, okN, err := NaiveOptimalRectConfidence(g, minSup)
		if err != nil {
			t.Fatal(err)
		}
		if okP != okN || (okP && (par.Conf != naive.Conf || par.Count != naive.Count)) {
			t.Fatalf("trial %d: parallel=%+v/%v naive=%+v/%v (U=%v V=%v minSup=%g)",
				trial, par, okP, naive, okN, g.U, g.V, minSup)
		}
		theta := float64(rng.Intn(101)) / 100
		parS, okP, err := OptimalRectSupportParallel(g, theta, 4)
		if err != nil {
			t.Fatal(err)
		}
		naiveS, okN, err := NaiveOptimalRectSupport(g, theta)
		if err != nil {
			t.Fatal(err)
		}
		if okP != okN || (okP && parS.Count != naiveS.Count) {
			t.Fatalf("trial %d: parallel=%+v/%v naive=%+v/%v", trial, parS, okP, naiveS, okN)
		}
	}
}

func TestParallelDPsMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		rows := 1 + rng.Intn(20)
		cols := 1 + rng.Intn(20)
		g := randomGrid(rng, rows, cols, 6)
		theta := float64(rng.Intn(101)) / 100
		for _, workers := range []int{2, 5, 16} {
			sx, okS, err := MaxGainXMonotone(g, theta)
			if err != nil {
				t.Fatal(err)
			}
			px, okP, err := MaxGainXMonotoneParallel(g, theta, workers)
			if err != nil {
				t.Fatal(err)
			}
			if okS != okP || !reflect.DeepEqual(sx, px) {
				t.Fatalf("trial %d workers %d: xmonotone serial=%+v parallel=%+v",
					trial, workers, sx, px)
			}

			sr, okS, err := MaxGainRectilinearConvex(g, theta)
			if err != nil {
				t.Fatal(err)
			}
			prc, okP, err := MaxGainRectilinearConvexParallel(g, theta, workers)
			if err != nil {
				t.Fatal(err)
			}
			if okS != okP || !reflect.DeepEqual(sr, prc) {
				t.Fatalf("trial %d workers %d: rectconvex serial=%+v parallel=%+v",
					trial, workers, sr, prc)
			}
		}
	}
}

// TestGridFlatFallback pins the kernels' behavior on grids whose rows
// do not alias a contiguous backing: struct-literal grids and grids
// with rebound rows must yield the same results as packed ones.
func TestGridFlatFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	g := randomGrid(rng, 5, 7, 5)
	// A literal grid with copied rows (no backing at all).
	lit := &Grid{U: make([][]int, 5), V: make([][]float64, 5)}
	for r := 0; r < 5; r++ {
		lit.U[r] = append([]int(nil), g.U[r]...)
		lit.V[r] = append([]float64(nil), g.V[r]...)
	}
	minSup := float64(g.Total() / 4)
	want, okW, err := OptimalRectConfidence(g, minSup)
	if err != nil {
		t.Fatal(err)
	}
	got, okG, err := OptimalRectConfidence(lit, minSup)
	if err != nil {
		t.Fatal(err)
	}
	if okW != okG || want != got {
		t.Fatalf("literal grid: %+v/%v, want %+v/%v", got, okG, want, okW)
	}
	// A NewGrid grid with one row rebound to a foreign slice.
	reb := randomGrid(rng, 5, 7, 5)
	for r := 0; r < 5; r++ {
		copy(reb.U[r], g.U[r])
		copy(reb.V[r], g.V[r])
	}
	reb.U[2] = append([]int(nil), g.U[2]...)
	got2, okG2, err := OptimalRectConfidence(reb, minSup)
	if err != nil {
		t.Fatal(err)
	}
	if okW != okG2 || want != got2 {
		t.Fatalf("rebound grid: %+v/%v, want %+v/%v", got2, okG2, want, okW)
	}
}

func TestGridTotalCachedAndMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	a := randomGrid(rng, 4, 6, 5)
	b := randomGrid(rng, 4, 6, 5)
	wantTotal := a.Total() + b.Total()
	wantSumV := a.SumV() + b.SumV()
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Total() != wantTotal {
		t.Errorf("merged Total = %d, want %d", a.Total(), wantTotal)
	}
	if a.SumV() != wantSumV {
		t.Errorf("merged SumV = %g, want %g", a.SumV(), wantSumV)
	}
	// Repeated calls stay consistent (cached path).
	if a.Total() != wantTotal {
		t.Errorf("cached Total = %d, want %d", a.Total(), wantTotal)
	}
	// Shape mismatch must error.
	c := randomGrid(rng, 3, 6, 5)
	if err := a.Merge(c); err == nil {
		t.Error("merging mismatched shapes should error")
	}
}
