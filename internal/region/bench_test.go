package region

import (
	"math/rand"
	"runtime"
	"testing"
)

func benchGrid(side int) *Grid {
	rng := rand.New(rand.NewSource(1))
	return randomGrid(rng, side, side, 50)
}

func BenchmarkRectSweep64(b *testing.B) {
	g := benchGrid(64)
	minSup := float64(g.Total()) * 0.02
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := OptimalRectConfidence(g, minSup); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRectSupportSweep64(b *testing.B) {
	g := benchGrid(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := OptimalRectSupport(g, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaxGainRect64(b *testing.B) {
	g := benchGrid(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := MaxGainRect(g, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkXMonotoneDP64(b *testing.B) {
	g := benchGrid(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := MaxGainXMonotone(g, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRectConvexDP64(b *testing.B) {
	g := benchGrid(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := MaxGainRectilinearConvex(g, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNaiveRectSweep16(b *testing.B) {
	g := benchGrid(16)
	minSup := float64(g.Total()) * 0.02
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := NaiveOptimalRectConfidence(g, minSup); err != nil {
			b.Fatal(err)
		}
	}
}

// Parallel-kernel benchmarks at the practical grid ceiling the
// parallel sweep raises (side 256): compare against the serial
// kernels above at side 64 — the sweep is O(side³), so side 256 is
// 64x the work of side 64, absorbed by the worker pool on multicore
// hardware.

func benchWorkers() int { return runtime.GOMAXPROCS(0) }

func BenchmarkRectSweepParallel256(b *testing.B) {
	g := benchGrid(256)
	minSup := float64(g.Total()) * 0.02
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := OptimalRectConfidenceParallel(g, minSup, benchWorkers()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaxGainRectParallel256(b *testing.B) {
	g := benchGrid(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := MaxGainRectParallel(g, 0.5, benchWorkers()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkXMonotoneDPParallel256(b *testing.B) {
	g := benchGrid(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := MaxGainXMonotoneParallel(g, 0.5, benchWorkers()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRectConvexDPParallel256(b *testing.B) {
	g := benchGrid(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := MaxGainRectilinearConvexParallel(g, 0.5, benchWorkers()); err != nil {
			b.Fatal(err)
		}
	}
}
