package region

import (
	"math/rand"
	"testing"
)

func benchGrid(side int) *Grid {
	rng := rand.New(rand.NewSource(1))
	return randomGrid(rng, side, side, 50)
}

func BenchmarkRectSweep64(b *testing.B) {
	g := benchGrid(64)
	minSup := float64(g.Total()) * 0.02
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := OptimalRectConfidence(g, minSup); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRectSupportSweep64(b *testing.B) {
	g := benchGrid(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := OptimalRectSupport(g, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaxGainRect64(b *testing.B) {
	g := benchGrid(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := MaxGainRect(g, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkXMonotoneDP64(b *testing.B) {
	g := benchGrid(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := MaxGainXMonotone(g, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRectConvexDP64(b *testing.B) {
	g := benchGrid(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := MaxGainRectilinearConvex(g, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNaiveRectSweep16(b *testing.B) {
	g := benchGrid(16)
	minSup := float64(g.Total()) * 0.02
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := NaiveOptimalRectConfidence(g, minSup); err != nil {
			b.Fatal(err)
		}
	}
}
