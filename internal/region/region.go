// Package region implements the two-dimensional extension sketched in
// the paper's Section 1.4: rules of the form
//
//	(A1, A2) ∈ X  ⇒  C
//
// where X is an axis-parallel RECTANGLE in the plane of two numeric
// attributes (the paper's example: (Age, Balance) ∈ X ⇒ CardLoan=yes).
// The paper notes that arbitrary connected regions are NP-hard and
// defers region classes to follow-up work [7, 20]; the rectangle case
// reduces cleanly to the 1-D machinery of Section 4: for every pair of
// row ranges, collapse the grid rows into one bucket sequence over the
// columns (an incremental prefix-sum collapse: extending the range by
// one row adds one row of cells) and run the 1-D optimizer. With an
// M×M grid this costs O(M³) — practical for the display-sized grids
// 2-D rules make sense at — versus O(M⁴) for naive rectangle
// enumeration, which is also implemented as the property-test oracle.
//
// # Grids and kernels
//
// A Grid stores its cells in ONE contiguous row-major backing array
// (U and V are row views into it), so the kernels stream cache lines
// instead of chasing row pointers, and a grid costs two allocations
// regardless of side. The optimization kernels come in two flavors:
//
//   - the serial functions (OptimalRectConfidence, MaxGainXMonotone,
//     …) are the reference implementations, also used as oracles;
//   - the *Parallel variants split their work across a worker pool —
//     the rectangle sweep partitions row-pair ranges, the x-monotone
//     and rectilinear-convex DPs partition each column's interval
//     table — and are pinned rule-for-rule identical to the serial
//     kernels by differential tests, so callers may pick purely by
//     hardware. The parallelism is what raises the practical grid
//     side from 64 to 256.
//
// The miner's fused 2-D engine (miner.MineAll2D) fills many Grids —
// one per attribute pair — from a single relation scan and runs these
// kernels on the in-memory grids.
package region

import (
	"fmt"
	"sync/atomic"

	"optrule/internal/core"
)

// Grid holds per-cell statistics over an M1×M2 bucketing of two
// numeric attributes: U[r][c] tuples fall in row-bucket r of the first
// attribute and column-bucket c of the second; V[r][c] of those meet
// the objective condition.
//
// Grids built by NewGrid store all cells in one contiguous row-major
// backing array; U and V are views into it, so element writes through
// U/V are fine, but rows must not be rebound to other slices (the
// kernels detect rebinding and fall back to a packed copy of the
// views, so results stay correct at a copying cost).
type Grid struct {
	U [][]int
	V [][]float64

	// Contiguous backing of U and V for NewGrid-built grids; nil for
	// grids assembled from struct literals.
	u []int
	v []float64

	// Cached Total: the full-grid tuple count is needed once per mined
	// rule (support thresholds, baselines) and costs O(M²) to compute,
	// so it is memoized. The atomics make concurrent Total calls on a
	// shared (no longer mutated) grid safe: racing first calls compute
	// the same value and the flag is published after it. Callers
	// writing cells directly through U should finish filling before
	// the first Total call.
	total      atomic.Int64
	totalValid atomic.Bool
}

// NewGrid allocates a zeroed rows×cols grid backed by one contiguous
// row-major array per statistic.
func NewGrid(rows, cols int) (*Grid, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("region: grid shape %dx%d must be positive", rows, cols)
	}
	g := &Grid{
		U: make([][]int, rows),
		V: make([][]float64, rows),
		u: make([]int, rows*cols),
		v: make([]float64, rows*cols),
	}
	for r := 0; r < rows; r++ {
		g.U[r] = g.u[r*cols : (r+1)*cols : (r+1)*cols]
		g.V[r] = g.v[r*cols : (r+1)*cols : (r+1)*cols]
	}
	return g, nil
}

// Rows returns the number of row buckets.
func (g *Grid) Rows() int { return len(g.U) }

// Cols returns the number of column buckets.
func (g *Grid) Cols() int { return len(g.U[0]) }

// Total returns the total tuple count. The first call computes it in
// O(M²) and caches it; Merge keeps the cache coherent. Callers filling
// cells directly through U should do so before the first Total call.
func (g *Grid) Total() int {
	if g.totalValid.Load() {
		return int(g.total.Load())
	}
	n := 0
	for _, row := range g.U {
		for _, u := range row {
			n += u
		}
	}
	g.total.Store(int64(n))
	g.totalValid.Store(true)
	return n
}

// SumV returns the total objective count Σ V over all cells — the
// numerator of the whole-grid baseline confidence.
func (g *Grid) SumV() float64 {
	s := 0.0
	for _, row := range g.V {
		for _, v := range row {
			s += v
		}
	}
	return s
}

// Flat returns the grid's contiguous row-major backing arrays —
// U[r][c] is Flat's u[r*Cols()+c] — for NewGrid-built grids; ok is
// false for grids assembled from struct literals or with rebound rows.
// Writing through the returned slices writes the grid (the counting
// kernels fill cells this way to avoid the row-header indirection);
// callers doing so must finish filling before the first Total call,
// as with writes through U.
func (g *Grid) Flat() (u []int, v []float64, ok bool) {
	rows, cols := g.Rows(), g.Cols()
	if g.u == nil || len(g.u) != rows*cols || len(g.v) != rows*cols {
		return nil, nil, false
	}
	for r := 0; r < rows; r++ {
		if &g.U[r][0] != &g.u[r*cols] || &g.V[r][0] != &g.v[r*cols] {
			return nil, nil, false
		}
	}
	return g.u, g.v, true
}

// Merge adds other's cells into g. Shapes must match. The fused 2-D
// counting scan fills one grid per worker and merges them afterwards;
// since all cell values are integer counts, merging is exact and the
// merged grid is identical regardless of how rows were segmented.
func (g *Grid) Merge(other *Grid) error {
	if err := g.validate(); err != nil {
		return err
	}
	if err := other.validate(); err != nil {
		return err
	}
	if g.Rows() != other.Rows() || g.Cols() != other.Cols() {
		return fmt.Errorf("region: merging %dx%d grid into %dx%d",
			other.Rows(), other.Cols(), g.Rows(), g.Cols())
	}
	for r := range g.U {
		gu, gv := g.U[r], g.V[r]
		ou, ov := other.U[r], other.V[r]
		for c := range gu {
			gu[c] += ou[c]
			//optlint:ignore floatmerge grid cells are exact small integer counts stored in float64; integer-valued addition is exact, so merge order cannot change the result
			gv[c] += ov[c]
		}
	}
	if g.totalValid.Load() {
		g.total.Add(int64(other.Total()))
	}
	return nil
}

// validate checks the grid's shape invariants.
func (g *Grid) validate() error {
	if g == nil || len(g.U) == 0 || len(g.U[0]) == 0 {
		return fmt.Errorf("region: empty grid")
	}
	cols := len(g.U[0])
	if len(g.V) != len(g.U) {
		return fmt.Errorf("region: U has %d rows, V has %d", len(g.U), len(g.V))
	}
	for r := range g.U {
		if len(g.U[r]) != cols || len(g.V[r]) != cols {
			return fmt.Errorf("region: ragged grid at row %d", r)
		}
		for c := range g.U[r] {
			if g.U[r][c] < 0 {
				return fmt.Errorf("region: negative count at (%d,%d)", r, c)
			}
		}
	}
	return nil
}

// flat returns the contiguous row-major cell arrays the kernels
// operate on. For NewGrid-built grids whose rows still alias the
// backing (the normal case) this is free; otherwise — struct-literal
// grids, rebound rows — it packs a fresh copy of the U/V views, so the
// kernels always see exactly what the caller sees. Call after validate.
func (g *Grid) flat() (u []int, v []float64) {
	if fu, fv, ok := g.Flat(); ok {
		return fu, fv
	}
	rows, cols := g.Rows(), g.Cols()
	u = make([]int, rows*cols)
	v = make([]float64, rows*cols)
	for r := 0; r < rows; r++ {
		copy(u[r*cols:(r+1)*cols], g.U[r])
		copy(v[r*cols:(r+1)*cols], g.V[r])
	}
	return u, v
}

// Rect is an inclusive rectangle of bucket indices with its statistics.
type Rect struct {
	R1, R2 int // row-bucket range (first attribute)
	C1, C2 int // column-bucket range (second attribute)
	Count  int
	SumV   float64
	Conf   float64
	Gain   float64 // set by MaxGainRect only
}

// compactColumns drops zero-count columns, returning compacted slices
// plus the mapping from compact index to original column.
func compactColumns(u []int, v []float64, cu []int, cv []float64, cmap []int) ([]int, []float64, []int) {
	cu, cv, cmap = cu[:0], cv[:0], cmap[:0]
	for c := range u {
		if u[c] > 0 {
			cu = append(cu, u[c])
			cv = append(cv, v[c])
			cmap = append(cmap, c)
		}
	}
	return cu, cv, cmap
}

// rectSolve is the 1-D inner optimizer run per collapsed row range. sc
// pools its working storage across the O(M²) calls of one sweep.
type rectSolve func(u []int, v []float64, sc *core.Scratch) (core.Pair, bool, error)

// rectPrune reports that NO range of the collapsed columns can
// STRICTLY beat best under the sweep's objective, so the 1-D solver
// call may be skipped. Pruning must be conservative — candidates that
// would tie must not be pruned — because the sweep's fold keeps the
// first-encountered best on ties; skipping only strictly-worse
// candidates therefore never changes the result, serial or parallel.
// All comparisons are exact (integer-valued counts).
type rectPrune func(u []int, v []float64, best Rect) bool

// pruneConfidence: a range's confidence is a weighted average of its
// columns' per-column confidences, so it cannot exceed their maximum.
// If every column's confidence is strictly below best's (compared by
// cross-multiplication), no range here can win.
func pruneConfidence(u []int, v []float64, best Rect) bool {
	bestCount := float64(best.Count)
	for c := range u {
		if v[c]*bestCount >= best.SumV*float64(u[c]) {
			return false
		}
	}
	return true
}

// pruneSupport: no sub-range can hold more tuples than the whole
// collapsed range, so a range whose total is not strictly above best's
// count cannot win the support objective.
func pruneSupport(u []int, v []float64, best Rect) bool {
	total := 0
	for _, uc := range u {
		total += uc
	}
	return total <= best.Count
}

// sweepScratch is one worker's pooled state for the rectangle sweep:
// the collapsed row-range accumulators, the compacted copies, and the
// 1-D solver's scratch.
type sweepScratch struct {
	u    []int
	v    []float64
	cu   []int
	cv   []float64
	cmap []int
	core core.Scratch
}

func newSweepScratch(cols int) *sweepScratch {
	return &sweepScratch{
		u:    make([]int, cols),
		v:    make([]float64, cols),
		cu:   make([]int, 0, cols),
		cv:   make([]float64, 0, cols),
		cmap: make([]int, 0, cols),
	}
}

// sweepRowRange folds the 1-D solver over the row pairs r1 ∈
// [r1lo, r1hi), r2 ∈ [r1, rows): for each r1 the row collapse is
// incremental (extending the range to r2 adds row r2's cells to the
// running column sums), so the whole sweep costs O(rows²·cols) plus
// the solver. Candidates are folded with better in iteration order, so
// any partition of r1 values merged back in r1 order reproduces the
// full serial fold exactly.
func sweepRowRange(uf []int, vf []float64, rows, cols, r1lo, r1hi int,
	solve rectSolve, better func(a, b Rect) bool, prune rectPrune, sc *sweepScratch) (Rect, bool, error) {
	u, v := sc.u, sc.v
	var best Rect
	found := false
	for r1 := r1lo; r1 < r1hi; r1++ {
		for c := range u {
			u[c], v[c] = 0, 0
		}
		for r2 := r1; r2 < rows; r2++ {
			row := r2 * cols
			for c := 0; c < cols; c++ {
				u[c] += uf[row+c]
				v[c] += vf[row+c]
			}
			sc.cu, sc.cv, sc.cmap = compactColumns(u, v, sc.cu, sc.cv, sc.cmap)
			if len(sc.cu) == 0 {
				continue
			}
			if found && prune != nil && prune(sc.cu, sc.cv, best) {
				continue
			}
			p, ok, err := solve(sc.cu, sc.cv, &sc.core)
			if err != nil {
				return Rect{}, false, err
			}
			if !ok {
				continue
			}
			cand := Rect{
				R1: r1, R2: r2,
				C1: sc.cmap[p.S], C2: sc.cmap[p.T],
				Count: p.Count, SumV: p.SumV, Conf: p.Conf,
			}
			if !found || better(cand, best) {
				best = cand
				found = true
			}
		}
	}
	return best, found, nil
}

// optimalRect runs the row-range sweep with a 1-D solver per collapsed
// row range: O(Rows²·Cols) plus the solver costs. workers > 1 splits
// the sweep's r1 values across a worker pool (see optimalRectParallel);
// the result is identical either way.
func optimalRect(g *Grid, solve rectSolve, better func(a, b Rect) bool, prune rectPrune, workers int) (Rect, bool, error) {
	if err := g.validate(); err != nil {
		return Rect{}, false, err
	}
	rows, cols := g.Rows(), g.Cols()
	uf, vf := g.flat()
	if workers > rows {
		workers = rows
	}
	if workers > 1 {
		return optimalRectParallel(uf, vf, rows, cols, solve, better, prune, workers)
	}
	return sweepRowRange(uf, vf, rows, cols, 0, rows, solve, better, prune, newSweepScratch(cols))
}

// OptimalRectConfidence finds the rectangle maximizing confidence among
// rectangles with at least minSupCount tuples; ties prefer larger
// support. ok is false when no rectangle is ample.
func OptimalRectConfidence(g *Grid, minSupCount float64) (Rect, bool, error) {
	return OptimalRectConfidenceParallel(g, minSupCount, 1)
}

// OptimalRectConfidenceParallel is OptimalRectConfidence with the
// row-pair sweep partitioned across workers goroutines. Results are
// rule-for-rule identical to the serial kernel for any worker count.
func OptimalRectConfidenceParallel(g *Grid, minSupCount float64, workers int) (Rect, bool, error) {
	return optimalRect(g, func(u []int, v []float64, sc *core.Scratch) (core.Pair, bool, error) {
		return core.OptimalSlopePairScratch(u, v, minSupCount, sc)
	}, betterConfidence, pruneConfidence, workers)
}

// betterConfidence orders rectangle candidates by confidence (compared
// by exact cross-multiplication of integer-valued counts), then by
// support.
func betterConfidence(a, b Rect) bool {
	la := a.SumV * float64(b.Count)
	lb := b.SumV * float64(a.Count)
	if la != lb {
		return la > lb
	}
	return a.Count > b.Count
}

// OptimalRectSupport finds the rectangle maximizing support among
// rectangles whose confidence is at least theta.
func OptimalRectSupport(g *Grid, theta float64) (Rect, bool, error) {
	return OptimalRectSupportParallel(g, theta, 1)
}

// OptimalRectSupportParallel is OptimalRectSupport with the row-pair
// sweep partitioned across workers goroutines; results are identical
// to the serial kernel for any worker count.
func OptimalRectSupportParallel(g *Grid, theta float64, workers int) (Rect, bool, error) {
	return optimalRect(g, func(u []int, v []float64, sc *core.Scratch) (core.Pair, bool, error) {
		return core.OptimalSupportPairScratch(u, v, theta, sc)
	}, betterSupport, pruneSupport, workers)
}

func betterSupport(a, b Rect) bool {
	return a.Count > b.Count
}

// MaxGainRect finds the rectangle maximizing the gain Σ(v − θ·u) —
// the 2-D optimized-gain region, O(Rows²·Cols) via Kadane per collapsed
// row range.
func MaxGainRect(g *Grid, theta float64) (Rect, bool, error) {
	return MaxGainRectParallel(g, theta, 1)
}

// gainSweepRange runs Kadane over the collapsed row ranges r1 ∈
// [r1lo, r1hi), reusing the caller's accumulators. Candidates fold in
// iteration order with a strict comparison, so partitioned runs merged
// in r1 order match the serial fold exactly.
func gainSweepRange(uf []int, vf []float64, rows, cols, r1lo, r1hi int, theta float64,
	u []int, v, f []float64) (Rect, bool) {
	var best Rect
	found := false
	for r1 := r1lo; r1 < r1hi; r1++ {
		for c := range u {
			u[c], v[c] = 0, 0
		}
		for r2 := r1; r2 < rows; r2++ {
			row := r2 * cols
			for c := 0; c < cols; c++ {
				u[c] += uf[row+c]
				v[c] += vf[row+c]
			}
			// Kadane via the gain-prefix table, as in core.MaxGainRange:
			// the best range ending at c is f[c+1] − min_{k<=c} f[k].
			minIdx := 0
			for c := 0; c < cols; c++ {
				f[c+1] = f[c] + v[c] - theta*float64(u[c])
				if f[c] < f[minIdx] {
					minIdx = c
				}
				gain := f[c+1] - f[minIdx]
				if !found || gain > best.Gain {
					best = Rect{R1: r1, R2: r2, C1: minIdx, C2: c, Gain: gain}
					found = true
				}
			}
		}
	}
	return best, found
}

// MaxGainRectParallel is MaxGainRect with the row-pair sweep
// partitioned across workers goroutines; results are identical to the
// serial kernel for any worker count.
func MaxGainRectParallel(g *Grid, theta float64, workers int) (Rect, bool, error) {
	if err := g.validate(); err != nil {
		return Rect{}, false, err
	}
	rows, cols := g.Rows(), g.Cols()
	uf, vf := g.flat()
	var best Rect
	var found bool
	if workers > rows {
		workers = rows
	}
	if workers > 1 {
		best, found = gainSweepParallel(uf, vf, rows, cols, theta, workers)
	} else {
		best, found = gainSweepRange(uf, vf, rows, cols, 0, rows, theta,
			make([]int, cols), make([]float64, cols), make([]float64, cols+1))
	}
	if !found {
		return Rect{}, false, nil
	}
	// Fill in the winner's statistics with one more collapse.
	u := make([]int, cols)
	v := make([]float64, cols)
	for r := best.R1; r <= best.R2; r++ {
		row := r * cols
		for c := 0; c < cols; c++ {
			u[c] += uf[row+c]
			v[c] += vf[row+c]
		}
	}
	for c := best.C1; c <= best.C2; c++ {
		best.Count += u[c]
		best.SumV += v[c]
	}
	if best.Count > 0 {
		best.Conf = best.SumV / float64(best.Count)
	}
	return best, found, nil
}

// NaiveOptimalRectConfidence is the O(M⁴) property-test oracle and
// complexity baseline: the same row-range sweep, but with core's
// quadratic 1-D solver per collapsed row range. Because the 1-D naive
// solvers share every floating-point operation with the fast solvers,
// the oracle is bit-for-bit comparable to the sweep even at exact
// confidence-threshold ties.
func NaiveOptimalRectConfidence(g *Grid, minSupCount float64) (Rect, bool, error) {
	return optimalRect(g, func(u []int, v []float64, _ *core.Scratch) (core.Pair, bool, error) {
		return core.NaiveOptimalSlopePair(u, v, minSupCount)
	}, betterConfidence, nil, 1)
}

// NaiveOptimalRectSupport is the O(M⁴) oracle for the support
// objective; see NaiveOptimalRectConfidence.
func NaiveOptimalRectSupport(g *Grid, theta float64) (Rect, bool, error) {
	return optimalRect(g, func(u []int, v []float64, _ *core.Scratch) (core.Pair, bool, error) {
		return core.NaiveOptimalSupportPair(u, v, theta)
	}, betterSupport, nil, 1)
}
