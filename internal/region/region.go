// Package region implements the two-dimensional extension sketched in
// the paper's Section 1.4: rules of the form
//
//	(A1, A2) ∈ X  ⇒  C
//
// where X is an axis-parallel RECTANGLE in the plane of two numeric
// attributes (the paper's example: (Age, Balance) ∈ X ⇒ CardLoan=yes).
// The paper notes that arbitrary connected regions are NP-hard and
// defers region classes to follow-up work [7, 20]; the rectangle case
// reduces cleanly to the 1-D machinery of Section 4: for every pair of
// row ranges, collapse the grid rows into one bucket sequence over the
// columns and run the 1-D optimizer. With an M×M grid this costs
// O(M³) — practical for the display-sized grids 2-D rules make sense
// at — versus O(M⁴) for naive rectangle enumeration, which is also
// implemented as the property-test oracle.
package region

import (
	"fmt"

	"optrule/internal/core"
)

// Grid holds per-cell statistics over an M1×M2 bucketing of two
// numeric attributes: U[r][c] tuples fall in row-bucket r of the first
// attribute and column-bucket c of the second; V[r][c] of those meet
// the objective condition.
type Grid struct {
	U [][]int
	V [][]float64
}

// NewGrid allocates a zeroed rows×cols grid.
func NewGrid(rows, cols int) (*Grid, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("region: grid shape %dx%d must be positive", rows, cols)
	}
	g := &Grid{U: make([][]int, rows), V: make([][]float64, rows)}
	for r := 0; r < rows; r++ {
		g.U[r] = make([]int, cols)
		g.V[r] = make([]float64, cols)
	}
	return g, nil
}

// Rows returns the number of row buckets.
func (g *Grid) Rows() int { return len(g.U) }

// Cols returns the number of column buckets.
func (g *Grid) Cols() int { return len(g.U[0]) }

// Total returns the total tuple count.
func (g *Grid) Total() int {
	n := 0
	for _, row := range g.U {
		for _, u := range row {
			n += u
		}
	}
	return n
}

// validate checks the grid's shape invariants.
func (g *Grid) validate() error {
	if g == nil || len(g.U) == 0 || len(g.U[0]) == 0 {
		return fmt.Errorf("region: empty grid")
	}
	cols := len(g.U[0])
	if len(g.V) != len(g.U) {
		return fmt.Errorf("region: U has %d rows, V has %d", len(g.U), len(g.V))
	}
	for r := range g.U {
		if len(g.U[r]) != cols || len(g.V[r]) != cols {
			return fmt.Errorf("region: ragged grid at row %d", r)
		}
		for c := range g.U[r] {
			if g.U[r][c] < 0 {
				return fmt.Errorf("region: negative count at (%d,%d)", r, c)
			}
		}
	}
	return nil
}

// Rect is an inclusive rectangle of bucket indices with its statistics.
type Rect struct {
	R1, R2 int // row-bucket range (first attribute)
	C1, C2 int // column-bucket range (second attribute)
	Count  int
	SumV   float64
	Conf   float64
	Gain   float64 // set by MaxGainRect only
}

// collapse accumulates rows [r1, r2] into column sums. u and v must
// have length Cols and are overwritten.
func (g *Grid) collapseInto(u []int, v []float64, r int) {
	for c := range u {
		u[c] += g.U[r][c]
		v[c] += g.V[r][c]
	}
}

// compactColumns drops zero-count columns, returning compacted slices
// plus the mapping from compact index to original column.
func compactColumns(u []int, v []float64, cu []int, cv []float64, cmap []int) ([]int, []float64, []int) {
	cu, cv, cmap = cu[:0], cv[:0], cmap[:0]
	for c := range u {
		if u[c] > 0 {
			cu = append(cu, u[c])
			cv = append(cv, v[c])
			cmap = append(cmap, c)
		}
	}
	return cu, cv, cmap
}

// OptimalRectConfidence finds the rectangle maximizing confidence among
// rectangles with at least minSupCount tuples; ties prefer larger
// support. ok is false when no rectangle is ample.
func OptimalRectConfidence(g *Grid, minSupCount float64) (Rect, bool, error) {
	return optimalRect(g, func(u []int, v []float64) (core.Pair, bool, error) {
		return core.OptimalSlopePair(u, v, minSupCount)
	}, func(a, b Rect) bool {
		la := a.SumV * float64(b.Count)
		lb := b.SumV * float64(a.Count)
		if la != lb {
			return la > lb
		}
		return a.Count > b.Count
	})
}

// OptimalRectSupport finds the rectangle maximizing support among
// rectangles whose confidence is at least theta.
func OptimalRectSupport(g *Grid, theta float64) (Rect, bool, error) {
	return optimalRect(g, func(u []int, v []float64) (core.Pair, bool, error) {
		return core.OptimalSupportPair(u, v, theta)
	}, func(a, b Rect) bool {
		return a.Count > b.Count
	})
}

// optimalRect runs the row-range sweep with a 1-D solver per collapsed
// row range: O(Rows² · Cols) plus the solver costs.
func optimalRect(g *Grid, solve func(u []int, v []float64) (core.Pair, bool, error),
	better func(a, b Rect) bool) (Rect, bool, error) {
	if err := g.validate(); err != nil {
		return Rect{}, false, err
	}
	cols := g.Cols()
	u := make([]int, cols)
	v := make([]float64, cols)
	cu := make([]int, 0, cols)
	cv := make([]float64, 0, cols)
	cmap := make([]int, 0, cols)
	var best Rect
	found := false
	for r1 := 0; r1 < g.Rows(); r1++ {
		for c := range u {
			u[c], v[c] = 0, 0
		}
		for r2 := r1; r2 < g.Rows(); r2++ {
			g.collapseInto(u, v, r2)
			cu, cv, cmap = compactColumns(u, v, cu, cv, cmap)
			if len(cu) == 0 {
				continue
			}
			p, ok, err := solve(cu, cv)
			if err != nil {
				return Rect{}, false, err
			}
			if !ok {
				continue
			}
			cand := Rect{
				R1: r1, R2: r2,
				C1: cmap[p.S], C2: cmap[p.T],
				Count: p.Count, SumV: p.SumV, Conf: p.Conf,
			}
			if !found || better(cand, best) {
				best = cand
				found = true
			}
		}
	}
	return best, found, nil
}

// MaxGainRect finds the rectangle maximizing the gain Σ(v − θ·u) —
// the 2-D optimized-gain region, O(Rows²·Cols) via Kadane per collapsed
// row range.
func MaxGainRect(g *Grid, theta float64) (Rect, bool, error) {
	if err := g.validate(); err != nil {
		return Rect{}, false, err
	}
	cols := g.Cols()
	u := make([]int, cols)
	v := make([]float64, cols)
	f := make([]float64, cols+1)
	var best Rect
	found := false
	for r1 := 0; r1 < g.Rows(); r1++ {
		for c := range u {
			u[c], v[c] = 0, 0
		}
		for r2 := r1; r2 < g.Rows(); r2++ {
			g.collapseInto(u, v, r2)
			// Kadane via the gain-prefix table, as in core.MaxGainRange:
			// the best range ending at c is f[c+1] − min_{k<=c} f[k].
			minIdx := 0
			for c := 0; c < cols; c++ {
				f[c+1] = f[c] + v[c] - theta*float64(u[c])
				if f[c] < f[minIdx] {
					minIdx = c
				}
				gain := f[c+1] - f[minIdx]
				if !found || gain > best.Gain {
					best = Rect{R1: r1, R2: r2, C1: minIdx, C2: c, Gain: gain}
					found = true
				}
			}
		}
	}
	if !found {
		return Rect{}, false, nil
	}
	// Fill in the winner's statistics with one more collapse.
	for c := range u {
		u[c], v[c] = 0, 0
	}
	for r := best.R1; r <= best.R2; r++ {
		g.collapseInto(u, v, r)
	}
	for c := best.C1; c <= best.C2; c++ {
		best.Count += u[c]
		best.SumV += v[c]
	}
	if best.Count > 0 {
		best.Conf = best.SumV / float64(best.Count)
	}
	return best, found, nil
}

// NaiveOptimalRectConfidence is the O(M⁴) property-test oracle and
// complexity baseline: the same row-range sweep, but with core's
// quadratic 1-D solver per collapsed row range. Because the 1-D naive
// solvers share every floating-point operation with the fast solvers,
// the oracle is bit-for-bit comparable to the sweep even at exact
// confidence-threshold ties.
func NaiveOptimalRectConfidence(g *Grid, minSupCount float64) (Rect, bool, error) {
	return optimalRect(g, func(u []int, v []float64) (core.Pair, bool, error) {
		return core.NaiveOptimalSlopePair(u, v, minSupCount)
	}, func(a, b Rect) bool {
		la := a.SumV * float64(b.Count)
		lb := b.SumV * float64(a.Count)
		if la != lb {
			return la > lb
		}
		return a.Count > b.Count
	})
}

// NaiveOptimalRectSupport is the O(M⁴) oracle for the support
// objective; see NaiveOptimalRectConfidence.
func NaiveOptimalRectSupport(g *Grid, theta float64) (Rect, bool, error) {
	return optimalRect(g, func(u []int, v []float64) (core.Pair, bool, error) {
		return core.NaiveOptimalSupportPair(u, v, theta)
	}, func(a, b Rect) bool {
		return a.Count > b.Count
	})
}
