package region

import "fmt"

// X-monotone regions (§1.4 of the paper; developed in the SIGMOD'96
// companion [7]): a connected union of grid cells whose intersection
// with every column is a single interval, with the intervals of
// adjacent columns overlapping. X-monotone regions can follow diagonal
// trends a rectangle cannot (e.g. card-loan propensity rising with both
// age and balance).
//
// This file computes the x-monotone region maximizing the GAIN
// Σ(v − θ·u) — the objective for which the companion paper gives its
// fastest algorithms — by exact dynamic programming:
//
//	f(c, [a,b]) = W(c, [a,b]) + max(0, g(c−1, [a,b]))
//	g(c−1, I)   = max{ f(c−1, I') : I' ∩ I ≠ ∅ }
//
// where W is the interval's gain in column c. The overlap maximum for
// ALL intervals of a column is computed in O(rows²) with a staircase
// max table, so the whole DP is O(cols · rows²) time and O(rows²)
// memory — simpler and asymptotically heavier than the companion
// paper's hand-probing algorithm, but exact, and entirely adequate at
// the display-scale grids 2-D mining runs at.
//
// The parallel variant partitions each column's interval-gain table
// and DP-cell fill across workers; only the staircase table (whose
// cells depend on their left and lower neighbors) stays serial. Every
// DP cell — value AND backtracking choice — is a pure function of the
// previous column's state, so the parallel kernel is exactly identical
// to the serial one.

// ColumnInterval is one column's slice of an x-monotone region.
type ColumnInterval struct {
	Col    int // column bucket index
	Lo, Hi int // inclusive row bucket range
}

// XMonotoneRegion is a mined x-monotone region with its statistics.
type XMonotoneRegion struct {
	Columns []ColumnInterval // consecutive columns, adjacent intervals overlap
	Count   int
	SumV    float64
	Conf    float64
	Gain    float64
}

// negInfF is a gain smaller than any achievable value, used as the DP's
// "no region" marker.
const negInfF = -1e308

// cellBest tracks the best DP cell of one a-row of the interval table,
// for the deterministic partition-and-merge best scan.
type cellBest struct {
	gain  float64
	idx   int
	found bool
}

// transposedGain returns gainT with gainT[c*rows+r] = V[r][c] − θ·U[r][c]:
// the per-cell gains laid out column-major, so the per-column DP loops
// stream contiguous memory.
func transposedGain(uf []int, vf []float64, rows, cols int, theta float64) []float64 {
	gainT := make([]float64, rows*cols)
	for r := 0; r < rows; r++ {
		row := r * cols
		for c := 0; c < cols; c++ {
			gainT[c*rows+r] = vf[row+c] - theta*float64(uf[row+c])
		}
	}
	return gainT
}

// MaxGainXMonotone returns the x-monotone region maximizing the gain
// Σ(v − θ·u) over the grid. ok is false only for an invalid grid; on
// any valid grid some single-cell region exists.
//
// Note the orientation: "columns" here are the grid's SECOND index (the
// second numeric attribute), and the per-column interval is a row
// range, so the region is monotone along the column axis.
func MaxGainXMonotone(g *Grid, theta float64) (XMonotoneRegion, bool, error) {
	return MaxGainXMonotoneParallel(g, theta, 1)
}

// MaxGainXMonotoneParallel is MaxGainXMonotone with each column's
// interval table partitioned across workers goroutines. Results —
// including the backtracked column intervals — are identical to the
// serial kernel for any worker count.
func MaxGainXMonotoneParallel(g *Grid, theta float64, workers int) (XMonotoneRegion, bool, error) {
	if err := g.validate(); err != nil {
		return XMonotoneRegion{}, false, err
	}
	rows, cols := g.Rows(), g.Cols()
	uf, vf := g.flat()
	gainT := transposedGain(uf, vf, rows, cols, theta)

	// Per-column interval gains via prefix sums: W[a][b] for a <= b.
	// Layout: w[a*rows+b].
	w := make([]float64, rows*rows)
	// f for the previous/current column, same layout.
	fPrev := make([]float64, rows*rows)
	fCur := make([]float64, rows*rows)
	// stair[x*rows+y] = max{ fPrev[a'][b'] : a' <= x, b' >= y }.
	stair := make([]float64, rows*rows)
	stairArg := make([]int32, rows*rows)

	// Backtracking: choice[c][a*rows+b] = the previous column's interval
	// index (a'<<16|b') extended by (a,b), or -1 when the region starts
	// at column c.
	choice := make([][]int32, cols)

	bestGain := negInfF
	bestCol, bestIdx := -1, -1
	bestPerA := make([]cellBest, rows)

	for c := 0; c < cols; c++ {
		colGain := gainT[c*rows : (c+1)*rows]
		// Interval gains, each a-row independent.
		parallelFor(workers, rows, func(lo, hi int) {
			for a := lo; a < hi; a++ {
				run := 0.0
				for b := a; b < rows; b++ {
					run += colGain[b]
					w[a*rows+b] = run
				}
			}
		})
		choice[c] = make([]int32, rows*rows)
		cchoice := choice[c]
		if c > 0 {
			// Staircase max over fPrev: stair(x, y) = max over a'<=x,
			// b'>=y of fPrev[a'][b']. Fill y descending, x ascending;
			// each cell depends on its (x−1, y) and (x, y+1) neighbors,
			// so this stage stays serial. stairArg tracks the argmax.
			for y := rows - 1; y >= 0; y-- {
				for x := 0; x < rows; x++ {
					best := negInfF
					var arg int32 = -1
					if x <= y { // [x, y] is a real interval of the previous column
						best = fPrev[x*rows+y]
						arg = int32(x<<16 | y)
					}
					if x > 0 && stair[(x-1)*rows+y] > best {
						best = stair[(x-1)*rows+y]
						arg = stairArg[(x-1)*rows+y]
					}
					if y < rows-1 && stair[x*rows+y+1] > best {
						best = stair[x*rows+y+1]
						arg = stairArg[x*rows+y+1]
					}
					stair[x*rows+y] = best
					stairArg[x*rows+y] = arg
				}
			}
		}
		// DP-cell fill plus per-a best scan; cells only read w, stair
		// and stairArg, so a-rows partition freely.
		parallelFor(workers, rows, func(lo, hi int) {
			for a := lo; a < hi; a++ {
				ab := cellBest{gain: negInfF}
				for b := a; b < rows; b++ {
					idx := a*rows + b
					val := w[idx]
					var ch int32 = -1
					if c > 0 {
						// Overlap condition for I'=[a',b'] vs I=[a,b]:
						// a' <= b and b' >= a.
						if prev := stair[b*rows+a]; prev > 0 {
							val += prev
							ch = stairArg[b*rows+a]
						}
					}
					fCur[idx] = val
					cchoice[idx] = ch
					if !ab.found || val > ab.gain {
						ab = cellBest{gain: val, idx: idx, found: true}
					}
				}
				bestPerA[a] = ab
			}
		})
		// Merge per-a bests in a order: the same first-achiever fold the
		// serial (a, b)-ascending scan performs.
		for a := 0; a < rows; a++ {
			if ab := bestPerA[a]; ab.found && ab.gain > bestGain {
				bestGain = ab.gain
				bestCol = c
				bestIdx = ab.idx
			}
		}
		fPrev, fCur = fCur, fPrev
	}
	if bestCol < 0 {
		return XMonotoneRegion{}, false, nil
	}

	// Backtrack the column intervals right to left.
	var rev []ColumnInterval
	c, idx := bestCol, bestIdx
	for {
		a, b := idx/rows, idx%rows
		rev = append(rev, ColumnInterval{Col: c, Lo: a, Hi: b})
		prevArg := choice[c][idx]
		if prevArg < 0 {
			break
		}
		idx = int(prevArg>>16)*rows + int(prevArg&0xffff)
		c--
	}
	region := XMonotoneRegion{Gain: bestGain}
	region.Columns = make([]ColumnInterval, len(rev))
	for i := range rev {
		region.Columns[len(rev)-1-i] = rev[i]
	}
	for _, ci := range region.Columns {
		for r := ci.Lo; r <= ci.Hi; r++ {
			region.Count += uf[r*cols+ci.Col]
			region.SumV += vf[r*cols+ci.Col]
		}
	}
	if region.Count > 0 {
		region.Conf = region.SumV / float64(region.Count)
	}
	return region, true, nil
}

// Validate checks the structural x-monotone invariants of a region:
// consecutive columns, each a valid interval, adjacent intervals
// overlapping. Used by tests and by callers that persist regions.
func (r XMonotoneRegion) Validate(rows, cols int) error {
	if len(r.Columns) == 0 {
		return fmt.Errorf("region: empty x-monotone region")
	}
	for i, ci := range r.Columns {
		if ci.Col < 0 || ci.Col >= cols {
			return fmt.Errorf("region: column %d out of range", ci.Col)
		}
		if ci.Lo < 0 || ci.Hi >= rows || ci.Lo > ci.Hi {
			return fmt.Errorf("region: invalid interval [%d, %d] at column %d", ci.Lo, ci.Hi, ci.Col)
		}
		if i > 0 {
			prev := r.Columns[i-1]
			if ci.Col != prev.Col+1 {
				return fmt.Errorf("region: columns %d and %d not consecutive", prev.Col, ci.Col)
			}
			if ci.Lo > prev.Hi || prev.Lo > ci.Hi {
				return fmt.Errorf("region: intervals at columns %d and %d do not overlap", prev.Col, ci.Col)
			}
		}
	}
	return nil
}
