package core

// This file implements the optimized-support side of Section 4:
// Algorithm 4.3 (effective indices), Algorithm 4.4 (the backward
// two-pointer over effective indices using the cumulative gain table
// F), the quadratic oracle, and Bentley's maximum-gain (Kadane) range,
// which the paper discusses to show gain maximization is not equivalent
// to support optimization.

// gainPrefix returns F with F[j] = Σ_{i<j} (v_i − θ·u_i), length M+1.
// Every algorithm below derives range sums from this one table so that
// floating-point behaviour is identical between the fast path and the
// naive oracle.
func gainPrefix(u []int, v []float64, theta float64) []float64 {
	f := make([]float64, len(u)+1)
	for i := range u {
		f[i+1] = f[i] + (v[i] - theta*float64(u[i]))
	}
	return f
}

// EffectiveIndices implements Algorithm 4.3: index s (0-based) is
// effective iff avg(j … s−1) < θ for every j < s, computed with the
// running maximum-suffix-gain w in a single forward scan. Index 0 is
// always effective. The result is ascending.
func EffectiveIndices(u []int, v []float64, theta float64) ([]int, error) {
	if err := validate(u, v); err != nil {
		return nil, err
	}
	// Algorithm 4.3's running value w = max_{j<s} Σ_{i=j}^{s−1} g_i
	// equals F[s] − min_{j<s} F[j]; we evaluate it through the shared
	// cumulative table F (which Algorithm 4.4 precomputes anyway) so
	// that effectiveness and the confidence test of the two-pointer use
	// bit-identical floating-point values.
	f := gainPrefix(u, v, theta)
	eff := []int{0}
	minF := f[0]
	for s := 1; s < len(u); s++ {
		if f[s-1] < minF {
			minF = f[s-1]
		}
		if f[s]-minF < 0 {
			eff = append(eff, s)
		}
	}
	return eff, nil
}

// OptimalSupportPair computes the optimized-support rule's range
// (Definition 4.4) in O(M) time via Algorithms 4.3 and 4.4.
//
// It returns the inclusive bucket range [S, T] maximizing the support
// count Σu among ranges whose average Σv/Σu is at least theta; among
// maximum-support ranges it returns the one with the smallest S. ok is
// false when no range reaches the threshold.
//
// When v_i counts tuples meeting the objective condition and theta is
// the minimum confidence, the result is the optimized-support rule;
// when v_i sums a target attribute and theta is the minimum average, it
// is the maximum-support range of Section 5.
func OptimalSupportPair(u []int, v []float64, theta float64) (best Pair, ok bool, err error) {
	eff, err := EffectiveIndices(u, v, theta)
	if err != nil {
		return Pair{}, false, err
	}
	m := len(u)
	pu, pv := prefixes(u, v)
	f := gainPrefix(u, v, theta)

	// Algorithm 4.4: scan effective indices from the largest down while
	// the top pointer i descends from M−1; Lemma 4.2 (top is
	// non-decreasing in s) makes the combined scan linear.
	bs, bt := -1, -1
	i := m - 1
	for j := len(eff) - 1; j >= 0; j-- {
		s := eff[j]
		for i >= s && f[i+1]-f[s] < 0 {
			i--
		}
		if i < s {
			continue // no confident range starts at s; smaller s may still work
		}
		// top(s) = i; candidate range [s, i]. Later candidates have
		// smaller s, so >= keeps the smallest S among equal supports.
		if bs < 0 || pu[i+1]-pu[s] >= pu[bt+1]-pu[bs] {
			bs, bt = s, i
		}
	}
	if bs < 0 {
		return Pair{}, false, nil
	}
	return makePair(pu, pv, bs, bt), true, nil
}

// NaiveOptimalSupportPair solves the same problem by enumerating all
// O(M²) ranges — the baseline of Figure 11 and the property-test
// oracle. It shares gainPrefix with the fast path so threshold
// comparisons are bit-identical.
func NaiveOptimalSupportPair(u []int, v []float64, theta float64) (best Pair, ok bool, err error) {
	if err := validate(u, v); err != nil {
		return Pair{}, false, err
	}
	m := len(u)
	pu, pv := prefixes(u, v)
	f := gainPrefix(u, v, theta)
	bs, bt := -1, -1
	for s := 0; s < m; s++ {
		for t := s; t < m; t++ {
			if f[t+1]-f[s] < 0 {
				continue
			}
			if bs < 0 || pu[t+1]-pu[s] > pu[bt+1]-pu[bs] {
				bs, bt = s, t
			}
		}
	}
	if bs < 0 {
		return Pair{}, false, nil
	}
	return makePair(pu, pv, bs, bt), true, nil
}

// MaxGainRange is Bentley's linear-time maximum-subarray (Kadane)
// algorithm applied to the gains x_i = v_i − θ·u_i, as described at the
// end of Section 4.2. It returns the non-empty range maximizing the
// total gain. The paper's point — reproduced in the tests — is that
// this range is NOT in general the optimized-support range: a larger
// confident range with smaller gain may exist.
func MaxGainRange(u []int, v []float64, theta float64) (s, t int, gain float64, err error) {
	if err := validate(u, v); err != nil {
		return 0, 0, 0, err
	}
	// Kadane via the cumulative table: the best range ending at t is
	// F[t+1] − min_{k<=t} F[k]. Using F keeps the arithmetic identical
	// to the other algorithms in this package.
	f := gainPrefix(u, v, theta)
	minIdx := 0
	s, t, gain = 0, 0, f[1]-f[0]
	for j := 0; j < len(u); j++ {
		if f[j] < f[minIdx] {
			minIdx = j
		}
		if g := f[j+1] - f[minIdx]; g > gain {
			gain = g
			s, t = minIdx, j
		}
	}
	return s, t, gain, nil
}
