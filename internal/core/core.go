// Package core implements the paper's primary contribution: the
// linear-time algorithms for computing optimized association rules over
// a sequence of buckets (Section 4).
//
// Inputs are per-bucket statistics for M buckets: sizes u_0 … u_{M−1}
// (each at least 1 — use bucketing.Counts.Compact to drop empty
// buckets) and values v_0 … v_{M−1}. When v_i is the number of tuples
// in bucket i meeting the objective condition C, the two entry points
// compute the paper's optimized rules:
//
//   - OptimalSlopePair (Algorithms 4.1 + 4.2): the ample range
//     maximizing confidence — the optimized-confidence rule.
//   - OptimalSupportPair (Algorithms 4.3 + 4.4): the confident range
//     maximizing support — the optimized-support rule.
//
// When v_i is instead the sum of a target numeric attribute B over
// bucket i, the same two functions compute the maximum-average range
// and the maximum-support range of Section 5.
//
// Both functions run in O(M) time after O(M) preprocessing of the
// cumulative sums. Quadratic reference implementations
// (NaiveOptimalSlopePair, NaiveOptimalSupportPair) are provided both as
// the baselines of the paper's Figures 10 and 11 and as oracles for
// property testing. Bentley's Kadane-style maximum-gain range is
// included to demonstrate (as Section 4.2 notes) that gain maximization
// is NOT equivalent to the optimized-support problem.
package core

import "fmt"

// Pair is an inclusive range [S, T] of 0-based bucket indices together
// with the support count and confidence (or average) it achieves.
type Pair struct {
	S, T  int
	Count int     // Σ u_i over [S,T] — the support in tuples
	Conf  float64 // (Σ v_i) / (Σ u_i) over [S,T]
	SumV  float64 // Σ v_i over [S,T]
}

// validate checks the bucket statistics invariants shared by every
// algorithm in this package.
func validate(u []int, v []float64) error {
	if len(u) == 0 {
		return fmt.Errorf("core: no buckets")
	}
	if len(u) != len(v) {
		return fmt.Errorf("core: %d sizes but %d values", len(u), len(v))
	}
	for i, ui := range u {
		if ui < 1 {
			return fmt.Errorf("core: bucket %d has size %d; every bucket must hold at least one tuple (compact empty buckets first)", i, ui)
		}
	}
	return nil
}

// prefixes returns cumulative sums PU, PV with PU[k] = Σ_{i<k} u_i and
// PV[k] = Σ_{i<k} v_i (lengths M+1, index 0 is zero). These are the
// coordinates of the paper's points Q_k.
func prefixes(u []int, v []float64) (pu []int, pv []float64) {
	m := len(u)
	pu = make([]int, m+1)
	pv = make([]float64, m+1)
	for i := 0; i < m; i++ {
		pu[i+1] = pu[i] + u[i]
		pv[i+1] = pv[i] + v[i]
	}
	return pu, pv
}

// makePair assembles a Pair for the bucket range [s, t] from prefix sums.
func makePair(pu []int, pv []float64, s, t int) Pair {
	count := pu[t+1] - pu[s]
	sumV := pv[t+1] - pv[s]
	return Pair{S: s, T: t, Count: count, SumV: sumV, Conf: sumV / float64(count)}
}

// cmpSlopePairs compares candidate (s1,t1) against (s2,t2) by the
// optimized-confidence objective: first confidence (slope), then
// support count. It returns +1 if the first is strictly better, −1 if
// strictly worse, 0 if tied on both. Slopes are compared by
// cross-multiplication, avoiding division.
func cmpSlopePairs(pu []int, pv []float64, s1, t1, s2, t2 int) int {
	du1 := float64(pu[t1+1] - pu[s1])
	dv1 := pv[t1+1] - pv[s1]
	du2 := float64(pu[t2+1] - pu[s2])
	dv2 := pv[t2+1] - pv[s2]
	lhs := dv1 * du2
	rhs := dv2 * du1
	switch {
	case lhs > rhs:
		return 1
	case lhs < rhs:
		return -1
	}
	switch {
	case du1 > du2:
		return 1
	case du1 < du2:
		return -1
	}
	return 0
}
