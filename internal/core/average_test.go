package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Section 5 feeds the same algorithms v_i that are SUMS of a target
// attribute — arbitrary reals, possibly negative — rather than hit
// counts bounded by u_i. These tests pin the fast algorithms to the
// naive oracles in that regime.

func randomAverageBuckets(rng *rand.Rand, m, maxU int) (u []int, v []float64) {
	u = make([]int, m)
	v = make([]float64, m)
	for i := range u {
		u[i] = 1 + rng.Intn(maxU)
		// Sum of u_i values drawn around a per-bucket mean in [-100, 100].
		mean := rng.Float64()*200 - 100
		v[i] = mean * float64(u[i])
	}
	return u, v
}

func TestOptimalSlopePairAverageRegimeMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 1500; trial++ {
		m := 1 + rng.Intn(15)
		u, v := randomAverageBuckets(rng, m, 8)
		minSup := float64(rng.Intn(30))
		fast, okF, err := OptimalSlopePair(u, v, minSup)
		if err != nil {
			t.Fatal(err)
		}
		naive, okN, err := NaiveOptimalSlopePair(u, v, minSup)
		if err != nil {
			t.Fatal(err)
		}
		if okF != okN {
			t.Fatalf("trial %d: ok mismatch (u=%v v=%v minSup=%g)", trial, u, v, minSup)
		}
		if okF && (fast.Conf != naive.Conf || fast.Count != naive.Count) {
			t.Fatalf("trial %d: fast=%+v naive=%+v (u=%v v=%v minSup=%g)", trial, fast, naive, u, v, minSup)
		}
	}
}

func TestOptimalSupportPairAverageRegimeMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 1500; trial++ {
		m := 1 + rng.Intn(15)
		u, v := randomAverageBuckets(rng, m, 8)
		theta := rng.Float64()*200 - 100 // thresholds across the value range
		fast, okF, err := OptimalSupportPair(u, v, theta)
		if err != nil {
			t.Fatal(err)
		}
		naive, okN, err := NaiveOptimalSupportPair(u, v, theta)
		if err != nil {
			t.Fatal(err)
		}
		if okF != okN {
			t.Fatalf("trial %d: ok mismatch (u=%v v=%v θ=%g)", trial, u, v, theta)
		}
		if okF && fast.Count != naive.Count {
			t.Fatalf("trial %d: fast=%+v naive=%+v (u=%v v=%v θ=%g)", trial, fast, naive, u, v, theta)
		}
	}
}

func TestAverageRegimeNegativeValuesProperty(t *testing.T) {
	f := func(seed int64, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := int(mRaw%40) + 1
		u, v := randomAverageBuckets(rng, m, 20)
		// All-negative target sums with a negative threshold.
		for i := range v {
			if v[i] > 0 {
				v[i] = -v[i]
			}
		}
		theta := -50.0
		fast, okF, err1 := OptimalSupportPair(u, v, theta)
		naive, okN, err2 := NaiveOptimalSupportPair(u, v, theta)
		if err1 != nil || err2 != nil || okF != okN {
			return false
		}
		if okF && fast.Count != naive.Count {
			return false
		}
		minSup := float64(rng.Intn(20))
		fast2, okF2, err3 := OptimalSlopePair(u, v, minSup)
		naive2, okN2, err4 := NaiveOptimalSlopePair(u, v, minSup)
		if err3 != nil || err4 != nil || okF2 != okN2 {
			return false
		}
		if okF2 && (fast2.Conf != naive2.Conf || fast2.Count != naive2.Count) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAverageRegimeLargeMagnitudes(t *testing.T) {
	// Balances in the 1e9 range with small buckets must not lose the
	// optimum to floating-point trouble versus the shared-prefix oracle.
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 200; trial++ {
		m := 2 + rng.Intn(20)
		u := make([]int, m)
		v := make([]float64, m)
		for i := range u {
			u[i] = 1 + rng.Intn(1000)
			v[i] = (rng.Float64() - 0.3) * 1e9 * float64(u[i])
		}
		fast, okF, err := OptimalSlopePair(u, v, 100)
		if err != nil {
			t.Fatal(err)
		}
		naive, okN, _ := NaiveOptimalSlopePair(u, v, 100)
		if okF != okN || (okF && (fast.Conf != naive.Conf || fast.Count != naive.Count)) {
			t.Fatalf("trial %d: fast=%+v naive=%+v", trial, fast, naive)
		}
	}
}
