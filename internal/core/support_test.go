package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteForceEffective checks the definition directly: s is effective
// iff avg(j, s−1) < θ for every j < s.
func bruteForceEffective(u []int, v []float64, theta float64) []int {
	f := gainPrefix(u, v, theta)
	var eff []int
	for s := 0; s < len(u); s++ {
		effective := true
		for j := 0; j < s; j++ {
			if f[s]-f[j] >= 0 {
				effective = false
				break
			}
		}
		if effective {
			eff = append(eff, s)
		}
	}
	return eff
}

func TestEffectiveIndicesMatchesDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 1000; trial++ {
		m := 1 + rng.Intn(20)
		u, v := randomBuckets(rng, m, 8)
		theta := float64(rng.Intn(100)) / 100
		got, err := EffectiveIndices(u, v, theta)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceEffective(u, v, theta)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %v, want %v (u=%v v=%v θ=%g)", trial, got, want, u, v, theta)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got %v, want %v", trial, got, want)
			}
		}
	}
}

func TestEffectiveIndicesAlwaysIncludesZero(t *testing.T) {
	eff, err := EffectiveIndices([]int{5}, []float64{5}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(eff) != 1 || eff[0] != 0 {
		t.Errorf("eff = %v, want [0]", eff)
	}
}

func TestOptimalSupportPairTinyCases(t *testing.T) {
	// Single bucket above threshold.
	p, ok, err := OptimalSupportPair([]int{10}, []float64{6}, 0.5)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if p.S != 0 || p.T != 0 || p.Count != 10 {
		t.Errorf("pair = %+v", p)
	}
	// Single bucket below threshold.
	if _, ok, _ := OptimalSupportPair([]int{10}, []float64{4}, 0.5); ok {
		t.Errorf("below-threshold single bucket should fail")
	}
	// Validation errors propagate.
	if _, _, err := OptimalSupportPair([]int{0}, []float64{0}, 0.5); err == nil {
		t.Errorf("empty bucket accepted")
	}
}

func TestOptimalSupportPairExpandsAroundCore(t *testing.T) {
	// A strong center lets weak neighbours ride along: buckets of 10
	// with hits 0, 4, 10, 10, 4, 0 and θ=0.5. The best confident range
	// is [1,4]: (4+10+10+4)/40 = 0.7 >= 0.5; adding either end bucket
	// drops below 0.5 ((28)/50 = 0.56 — actually still >= 0.5!).
	u := []int{10, 10, 10, 10, 10, 10}
	v := []float64{0, 4, 10, 10, 4, 0}
	p, ok, err := OptimalSupportPair(u, v, 0.5)
	if err != nil || !ok {
		t.Fatal(err)
	}
	// Full range: 28/60 = 0.466 < 0.5. Five buckets: 28/50 = 0.56 >= 0.5.
	if p.Count != 50 {
		t.Errorf("pair = %+v, want a 50-tuple range", p)
	}
	if p.Conf < 0.5 {
		t.Errorf("returned range not confident: %+v", p)
	}
}

func TestOptimalSupportPairMatchesNaiveSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 2000; trial++ {
		m := 1 + rng.Intn(12)
		u, v := randomBuckets(rng, m, 6)
		theta := float64(rng.Intn(101)) / 100
		fast, okF, err := OptimalSupportPair(u, v, theta)
		if err != nil {
			t.Fatal(err)
		}
		naive, okN, err := NaiveOptimalSupportPair(u, v, theta)
		if err != nil {
			t.Fatal(err)
		}
		if okF != okN {
			t.Fatalf("trial %d: ok mismatch fast=%v naive=%v (u=%v v=%v θ=%g)", trial, okF, okN, u, v, theta)
		}
		if !okF {
			continue
		}
		if fast.Count != naive.Count {
			t.Fatalf("trial %d: fast=%+v naive=%+v (u=%v v=%v θ=%g)", trial, fast, naive, u, v, theta)
		}
		if fast.Conf < theta {
			t.Fatalf("trial %d: fast pair not confident: %+v θ=%g", trial, fast, theta)
		}
	}
}

func TestOptimalSupportPairMatchesNaiveProperty(t *testing.T) {
	f := func(seed int64, mRaw uint8, thetaRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := int(mRaw%80) + 1
		u, v := randomBuckets(rng, m, 50)
		theta := float64(thetaRaw%101) / 100
		fast, okF, err1 := OptimalSupportPair(u, v, theta)
		naive, okN, err2 := NaiveOptimalSupportPair(u, v, theta)
		if err1 != nil || err2 != nil || okF != okN {
			return false
		}
		if !okF {
			return true
		}
		return fast.Count == naive.Count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestOptimalSupportPairThetaZeroTakesEverything(t *testing.T) {
	u := []int{3, 3, 3}
	v := []float64{0, 1, 0}
	p, ok, err := OptimalSupportPair(u, v, 0)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if p.S != 0 || p.T != 2 || p.Count != 9 {
		t.Errorf("θ=0 should select the whole domain: %+v", p)
	}
}

func TestMaxGainRangeBasics(t *testing.T) {
	// Gains with θ=0.5 on u=2 everywhere: v-1 per bucket.
	u := []int{2, 2, 2, 2, 2}
	v := []float64{0, 2, 2, 0, 2} // gains: -1, +1, +1, -1, +1
	s, tt, gain, err := MaxGainRange(u, v, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if s != 1 || tt != 2 || gain != 2 {
		t.Errorf("max gain range = [%d,%d] gain %g, want [1,2] gain 2", s, tt, gain)
	}
	// All-negative gains: best single bucket.
	s, tt, gain, err = MaxGainRange([]int{2, 2}, []float64{0, 0.5}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if s != 1 || tt != 1 || gain != -0.5 {
		t.Errorf("all-negative case = [%d,%d] %g, want [1,1] -0.5", s, tt, gain)
	}
	if _, _, _, err := MaxGainRange(nil, nil, 0.5); err == nil {
		t.Errorf("empty input accepted")
	}
}

func TestMaxGainRangeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 500; trial++ {
		m := 1 + rng.Intn(15)
		u, v := randomBuckets(rng, m, 6)
		theta := float64(rng.Intn(101)) / 100
		s, tt, gain, err := MaxGainRange(u, v, theta)
		if err != nil {
			t.Fatal(err)
		}
		f := gainPrefix(u, v, theta)
		bestGain := f[1] - f[0]
		for a := 0; a < m; a++ {
			for b := a; b < m; b++ {
				if g := f[b+1] - f[a]; g > bestGain {
					bestGain = g
				}
			}
		}
		if gain != bestGain {
			t.Fatalf("trial %d: kadane gain %g, brute force %g (u=%v v=%v θ=%g)", trial, gain, bestGain, u, v, theta)
		}
		if got := f[tt+1] - f[s]; got != gain {
			t.Fatalf("trial %d: reported range [%d,%d] has gain %g, reported %g", trial, s, tt, got, gain)
		}
	}
}

// TestKadaneIsNotOptimizedSupport reproduces the paper's Section 4.2
// remark: the maximum-gain range can be strictly smaller (in support)
// than the optimized-support range.
func TestKadaneIsNotOptimizedSupport(t *testing.T) {
	// θ = 0.5. Buckets (u=10): hits 9, 3, 5. Gains: +4, -2, 0.
	// Kadane picks [0,0] (gain 4). But the whole range [0,2] has
	// confidence 17/30 ≈ 0.567 >= 0.5 with support 30 > 10.
	u := []int{10, 10, 10}
	v := []float64{9, 3, 5}
	ks, kt, _, err := MaxGainRange(u, v, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	opt, ok, err := OptimalSupportPair(u, v, 0.5)
	if err != nil || !ok {
		t.Fatal(err)
	}
	kadaneSupport := 0
	for i := ks; i <= kt; i++ {
		kadaneSupport += u[i]
	}
	if kadaneSupport >= opt.Count {
		t.Fatalf("expected kadane support %d < optimized support %d — the inequivalence example is broken",
			kadaneSupport, opt.Count)
	}
	if opt.Conf < 0.5 {
		t.Fatalf("optimized range not confident: %+v", opt)
	}
}

func BenchmarkOptimalSupportPair1000(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	u, v := randomBuckets(rng, 1000, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := OptimalSupportPair(u, v, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNaiveOptimalSupportPair1000(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	u, v := randomBuckets(rng, 1000, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := NaiveOptimalSupportPair(u, v, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}
