package core

import (
	"math"
	"testing"
)

func TestSupportErrorBound(t *testing.T) {
	// Table I anchor: support_opt = 30%, M = 10 → bound 2/3, so the
	// approximate support lies in [10%, 50%].
	b := SupportErrorBound(10, 0.3)
	if math.Abs(b-2.0/3) > 1e-12 {
		t.Errorf("bound = %g, want 2/3", b)
	}
	lo, hi := ApproxSupportInterval(10, 0.3)
	if math.Abs(lo-0.1) > 1e-12 || math.Abs(hi-0.5) > 1e-12 {
		t.Errorf("interval = [%g, %g], want [0.1, 0.5]", lo, hi)
	}
}

func TestConfidenceErrorBound(t *testing.T) {
	// Table I anchor: conf_opt = 70%, support_opt = 30%, M = 10 →
	// bound 2/(3−2) = 2 → interval clamps to [0, 1] (the paper prints
	// 4.2% … 100% via the one-sided exact form; our symmetric bound is
	// conservative and must contain it).
	lo, hi := ApproxConfidenceInterval(10, 0.3, 0.7)
	if lo != 0 || hi != 1 {
		t.Errorf("interval = [%g, %g], want [0, 1] (vacuous at M=10)", lo, hi)
	}
	// M=1000: bound 2/(300−2) ≈ 0.00671 → conf in ~[0.695, 0.705],
	// matching Table I's 69.5% … 70.5%.
	lo, hi = ApproxConfidenceInterval(1000, 0.3, 0.7)
	if math.Abs(lo-0.6953) > 0.001 || math.Abs(hi-0.7047) > 0.001 {
		t.Errorf("interval = [%g, %g], want ≈[0.695, 0.705]", lo, hi)
	}
}

func TestTableISupportColumn(t *testing.T) {
	// Reproduce the support_app column of Table I (support_opt = 30%):
	// M=10: 10.0…50.0, M=50: 26.0…34.0, M=100: 28.0…32.0,
	// M=500: 29.6…30.4, M=1000: 29.8…30.2.
	want := map[int][2]float64{
		10:   {0.10, 0.50},
		50:   {0.26, 0.34},
		100:  {0.28, 0.32},
		500:  {0.296, 0.304},
		1000: {0.298, 0.302},
	}
	for m, w := range want {
		lo, hi := ApproxSupportInterval(m, 0.3)
		if math.Abs(lo-w[0]) > 1e-9 || math.Abs(hi-w[1]) > 1e-9 {
			t.Errorf("M=%d: interval [%g, %g], want [%g, %g]", m, lo, hi, w[0], w[1])
		}
	}
}

func TestTableIConfidenceColumnLargeM(t *testing.T) {
	// The conf_app column for large M (where the symmetric bound is
	// tight): M=500 → 2/(150−2) ≈ 1.35% → [69.05%, 70.95%] vs the
	// paper's 69.1…70.9; M=1000 → [69.53%, 70.47%] vs 69.5…70.5.
	lo, hi := ApproxConfidenceInterval(500, 0.3, 0.7)
	if math.Abs(lo-0.691) > 0.002 || math.Abs(hi-0.709) > 0.002 {
		t.Errorf("M=500: [%g, %g], want ≈[0.691, 0.709]", lo, hi)
	}
	lo, hi = ApproxConfidenceInterval(1000, 0.3, 0.7)
	if math.Abs(lo-0.695) > 0.002 || math.Abs(hi-0.705) > 0.002 {
		t.Errorf("M=1000: [%g, %g], want ≈[0.695, 0.705]", lo, hi)
	}
}

func TestBoundDegenerateInputs(t *testing.T) {
	if !math.IsInf(SupportErrorBound(0, 0.3), 1) {
		t.Errorf("M=0 should give +Inf")
	}
	if !math.IsInf(SupportErrorBound(10, 0), 1) {
		t.Errorf("support 0 should give +Inf")
	}
	if !math.IsInf(ConfidenceErrorBound(5, 0.3), 1) {
		t.Errorf("M·s <= 2 should give +Inf")
	}
	lo, hi := ApproxSupportInterval(0, 0.3)
	if lo != 0 || hi != 1 {
		t.Errorf("degenerate interval should be [0,1]")
	}
	lo, hi = ApproxConfidenceInterval(2, 0.3, 0.7)
	if lo != 0 || hi != 1 {
		t.Errorf("vacuous confidence interval should be [0,1]")
	}
}

func TestMinBucketsForNegligibleError(t *testing.T) {
	// For support 30% and 1% relative error: M >= 2/(0.01·0.3) ≈ 667.
	m := MinBucketsForNegligibleError(0.3, 0.01)
	if m != 667 {
		t.Errorf("M = %d, want 667", m)
	}
	// Section 3.4: M must be much larger than 1/support_opt.
	if float64(m) <= 1.0/0.3 {
		t.Errorf("M should far exceed 1/support")
	}
	if MinBucketsForNegligibleError(0, 0.01) != math.MaxInt32 {
		t.Errorf("degenerate support should return MaxInt32")
	}
}

func TestBoundsMonotoneInM(t *testing.T) {
	prev := math.Inf(1)
	for _, m := range []int{10, 50, 100, 500, 1000, 10000} {
		b := SupportErrorBound(m, 0.3)
		if b >= prev {
			t.Errorf("support bound should shrink with M: %g at M=%d", b, m)
		}
		prev = b
	}
}
