package core

// Top-K disjoint optimized ranges: a practical extension of the paper's
// single-range optimization. After reporting the optimal range, the
// natural follow-up question is "and where is the next such cluster?".
// We answer it greedily: report the optimal range, remove its buckets,
// and re-optimize independently on the left and right remainders, until
// k ranges are found or no remaining segment has a qualifying range.
// Each emitted range is optimal within its segment, and all ranges are
// pairwise disjoint. Worst-case O(k·M) time.

// segment is a contiguous bucket interval with its cached best pair.
type segment struct {
	lo, hi int // inclusive bucket bounds within the original arrays
	pair   Pair
	ok     bool
}

// solveSegment runs solve on u[lo..hi] and rebases the result.
func solveSegment(u []int, v []float64, lo, hi int,
	solve func(u []int, v []float64) (Pair, bool, error)) (segment, error) {
	seg := segment{lo: lo, hi: hi}
	if lo > hi {
		return seg, nil
	}
	p, ok, err := solve(u[lo:hi+1], v[lo:hi+1])
	if err != nil {
		return seg, err
	}
	if ok {
		p.S += lo
		p.T += lo
		seg.pair = p
		seg.ok = true
	}
	return seg, nil
}

// topK runs the greedy disjoint-range loop with the given per-segment
// solver and a comparator that returns true when a is strictly better
// than b.
func topK(u []int, v []float64, k int,
	solve func(u []int, v []float64) (Pair, bool, error),
	better func(a, b Pair) bool) ([]Pair, error) {
	if err := validate(u, v); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, nil
	}
	first, err := solveSegment(u, v, 0, len(u)-1, solve)
	if err != nil {
		return nil, err
	}
	segs := []segment{first}
	var out []Pair
	for len(out) < k {
		best := -1
		for i, s := range segs {
			if !s.ok {
				continue
			}
			if best < 0 || better(s.pair, segs[best].pair) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		chosen := segs[best]
		out = append(out, chosen.pair)
		// Split the winning segment around the emitted range.
		segs = append(segs[:best], segs[best+1:]...)
		left, err := solveSegment(u, v, chosen.lo, chosen.pair.S-1, solve)
		if err != nil {
			return nil, err
		}
		if left.ok {
			segs = append(segs, left)
		}
		right, err := solveSegment(u, v, chosen.pair.T+1, chosen.hi, solve)
		if err != nil {
			return nil, err
		}
		if right.ok {
			segs = append(segs, right)
		}
	}
	return out, nil
}

// TopKSlopePairs returns up to k pairwise-disjoint bucket ranges in
// decreasing confidence order, each ample (support count >= minSupCount)
// and each the optimal slope pair of the segment it was drawn from.
func TopKSlopePairs(u []int, v []float64, minSupCount float64, k int) ([]Pair, error) {
	solve := func(su []int, sv []float64) (Pair, bool, error) {
		return OptimalSlopePair(su, sv, minSupCount)
	}
	better := func(a, b Pair) bool {
		// Higher confidence first; ties by larger support.
		la := a.SumV * float64(b.Count)
		lb := b.SumV * float64(a.Count)
		if la != lb {
			return la > lb
		}
		return a.Count > b.Count
	}
	return topK(u, v, k, solve, better)
}

// TopKSupportPairs returns up to k pairwise-disjoint bucket ranges in
// decreasing support order, each confident (average >= theta) and each
// the optimal support pair of the segment it was drawn from.
func TopKSupportPairs(u []int, v []float64, theta float64, k int) ([]Pair, error) {
	solve := func(su []int, sv []float64) (Pair, bool, error) {
		return OptimalSupportPair(su, sv, theta)
	}
	better := func(a, b Pair) bool { return a.Count > b.Count }
	return topK(u, v, k, solve, better)
}
