package core

import (
	"fmt"

	"optrule/internal/hull"
)

// Scratch pools the per-call working storage of the Section 4 solvers:
// prefix-sum tables, the gain table, the effective-index list, the hull
// points, and the hull tree arena. One solver call allocates half a
// dozen M-sized slices; the 2-D rectangle sweep makes O(M²) such calls
// per grid, so callers there keep one Scratch per worker and use the
// *Scratch solver variants, which reuse the buffers across calls.
//
// A Scratch is NOT safe for concurrent use; give each goroutine its
// own. The zero value is ready to use. Passing nil to the *Scratch
// variants falls back to fresh allocations, which is exactly what the
// plain entry points do.
type Scratch struct {
	pu   []int
	pv   []float64
	f    []float64
	eff  []int
	pts  []hull.Point
	tree hull.Tree
}

// prefixesInto computes the cumulative tables PU, PV like prefixes,
// reusing sc's buffers when sc is non-nil. The arithmetic is identical,
// so scratch and non-scratch solver results are bit-for-bit equal.
func prefixesInto(sc *Scratch, u []int, v []float64) (pu []int, pv []float64) {
	if sc == nil {
		return prefixes(u, v)
	}
	m := len(u)
	sc.pu = intSlice(sc.pu, m+1)
	sc.pv = floatSlice(sc.pv, m+1)
	pu, pv = sc.pu, sc.pv
	pu[0], pv[0] = 0, 0
	for i := 0; i < m; i++ {
		pu[i+1] = pu[i] + u[i]
		pv[i+1] = pv[i] + v[i]
	}
	return pu, pv
}

// gainPrefixInto computes the cumulative gain table F like gainPrefix,
// reusing sc's buffer when sc is non-nil.
func gainPrefixInto(sc *Scratch, u []int, v []float64, theta float64) []float64 {
	if sc == nil {
		return gainPrefix(u, v, theta)
	}
	sc.f = floatSlice(sc.f, len(u)+1)
	f := sc.f
	f[0] = 0
	for i := range u {
		f[i+1] = f[i] + (v[i] - theta*float64(u[i]))
	}
	return f
}

func intSlice(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

func floatSlice(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// OptimalSlopePairScratch is OptimalSlopePair with pooled working
// storage; see Scratch. sc may be nil.
func OptimalSlopePairScratch(u []int, v []float64, minSupCount float64, sc *Scratch) (best Pair, ok bool, err error) {
	if err := validate(u, v); err != nil {
		return Pair{}, false, err
	}
	m := len(u)
	pu, pv := prefixesInto(sc, u, v)
	if float64(pu[m]) < minSupCount {
		return Pair{}, false, nil // not even the full range is ample
	}

	// Points Q_0 … Q_M; X strictly increasing because u_i >= 1.
	var pts []hull.Point
	var tree *hull.Tree
	if sc == nil {
		pts = make([]hull.Point, m+1)
	} else {
		if cap(sc.pts) < m+1 {
			sc.pts = make([]hull.Point, m+1)
		}
		pts = sc.pts[:m+1]
	}
	for k := 0; k <= m; k++ {
		pts[k] = hull.Point{X: float64(pu[k]), Y: pv[k]}
	}
	if sc == nil {
		tree, err = hull.NewTree(pts)
	} else {
		tree = &sc.tree
		err = tree.Init(pts)
	}
	if err != nil {
		return Pair{}, false, fmt.Errorf("core: building hull tree: %w", err)
	}

	// Identical to OptimalSlopePair from here on (Algorithm 4.2).
	lm, lt := -1, -1
	bs, bt := -1, -1
	r := 0
	for anchor := 0; anchor < m; anchor++ {
		if r < anchor+1 {
			r = anchor + 1
		}
		for r <= m && float64(pu[r]-pu[anchor]) < minSupCount {
			r++
		}
		if r > m {
			break
		}
		tree.AdvanceTo(r)

		if lm >= 0 && hull.AboveOrOn(pts[anchor], pts[lm], pts[lt]) {
			continue
		}
		var t int
		if lt >= r {
			t = counterclockwiseSearch(tree, pts, anchor, lt)
		} else {
			t = clockwiseSearch(tree, pts, anchor)
		}
		lm, lt = anchor, t
		if bs < 0 || cmpSlopePairs(pu, pv, anchor, t-1, bs, bt) > 0 {
			bs, bt = anchor, t-1
		}
	}
	if bs < 0 {
		return Pair{}, false, nil
	}
	return makePair(pu, pv, bs, bt), true, nil
}

// OptimalSupportPairScratch is OptimalSupportPair with pooled working
// storage; see Scratch. sc may be nil.
func OptimalSupportPairScratch(u []int, v []float64, theta float64, sc *Scratch) (best Pair, ok bool, err error) {
	if err := validate(u, v); err != nil {
		return Pair{}, false, err
	}
	m := len(u)
	f := gainPrefixInto(sc, u, v, theta)

	// Algorithm 4.3 inline over the shared F table (same arithmetic as
	// EffectiveIndices, which allocates its own F).
	var eff []int
	if sc == nil {
		eff = make([]int, 0, m)
	} else {
		if cap(sc.eff) < m {
			sc.eff = make([]int, 0, m)
		}
		eff = sc.eff[:0]
	}
	eff = append(eff, 0)
	minF := f[0]
	for s := 1; s < m; s++ {
		if f[s-1] < minF {
			minF = f[s-1]
		}
		if f[s]-minF < 0 {
			eff = append(eff, s)
		}
	}
	if sc != nil {
		sc.eff = eff
	}
	pu, pv := prefixesInto(sc, u, v)

	// Algorithm 4.4, identical to OptimalSupportPair.
	bs, bt := -1, -1
	i := m - 1
	for j := len(eff) - 1; j >= 0; j-- {
		s := eff[j]
		for i >= s && f[i+1]-f[s] < 0 {
			i--
		}
		if i < s {
			continue
		}
		if bs < 0 || pu[i+1]-pu[s] >= pu[bt+1]-pu[bs] {
			bs, bt = s, i
		}
	}
	if bs < 0 {
		return Pair{}, false, nil
	}
	return makePair(pu, pv, bs, bt), true, nil
}
