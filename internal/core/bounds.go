package core

import "math"

// Error bounds from Section 3.4: with M equi-depth buckets, the range
// of an optimized rule is approximated by a combination of consecutive
// buckets, each holding 1/M of the data, so the approximation can only
// miss by up to one bucket on each side.

// SupportErrorBound returns the relative support error bound
//
//	|support_app − support_opt| / support_opt <= 2 / (M·support_opt)
//
// for M equi-depth buckets and an optimal range of the given support
// (a fraction in (0, 1]). It returns +Inf for degenerate inputs.
func SupportErrorBound(m int, supportOpt float64) float64 {
	if m <= 0 || supportOpt <= 0 {
		return math.Inf(1)
	}
	return 2 / (float64(m) * supportOpt)
}

// ConfidenceErrorBound returns the relative confidence error bound
//
//	|conf_app − conf_opt| / conf_opt <= 2 / (M·support_opt − 2)
//
// valid when M·support_opt > 2; otherwise it returns +Inf (the bound is
// vacuous when the optimal range spans at most two buckets).
func ConfidenceErrorBound(m int, supportOpt float64) float64 {
	if m <= 0 || supportOpt <= 0 {
		return math.Inf(1)
	}
	d := float64(m)*supportOpt - 2
	if d <= 0 {
		return math.Inf(1)
	}
	return 2 / d
}

// ApproxSupportInterval returns the worst-case interval
// [support_opt·(1−bound), support_opt·(1+bound)] that an approximate
// range's support can fall in — the quantity tabulated in the paper's
// Table I (column support_app).
func ApproxSupportInterval(m int, supportOpt float64) (lo, hi float64) {
	b := SupportErrorBound(m, supportOpt)
	if math.IsInf(b, 1) {
		return 0, 1
	}
	return clamp01(supportOpt * (1 - b)), clamp01(supportOpt * (1 + b))
}

// ApproxConfidenceInterval is the Table I conf_app column: the
// worst-case interval for the approximate range's confidence around
// conf_opt.
func ApproxConfidenceInterval(m int, supportOpt, confOpt float64) (lo, hi float64) {
	b := ConfidenceErrorBound(m, supportOpt)
	if math.IsInf(b, 1) {
		return 0, 1
	}
	return clamp01(confOpt * (1 - b)), clamp01(confOpt * (1 + b))
}

// MinBucketsForNegligibleError returns the smallest M for which the
// relative support error bound stays at or below maxRelErr, i.e.
// M >= 2/(maxRelErr·support_opt). Section 3.4's guidance that "the
// number of buckets should be much larger than 1/support_opt" follows
// from this with maxRelErr fixed.
func MinBucketsForNegligibleError(supportOpt, maxRelErr float64) int {
	if supportOpt <= 0 || maxRelErr <= 0 {
		return math.MaxInt32
	}
	return int(math.Ceil(2 / (maxRelErr * supportOpt)))
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
