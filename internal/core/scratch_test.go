package core

import (
	"math/rand"
	"testing"
)

// TestScratchVariantsMatchPlain pins the pooled-scratch solvers to the
// allocating entry points bit for bit, across reuse of one Scratch for
// problems of varying size — the 2-D rectangle sweep's usage pattern.
func TestScratchVariantsMatchPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	sc := &Scratch{}
	for trial := 0; trial < 500; trial++ {
		m := 1 + rng.Intn(80)
		u := make([]int, m)
		v := make([]float64, m)
		for i := range u {
			u[i] = 1 + rng.Intn(20)
			v[i] = float64(rng.Intn(u[i] + 1))
		}
		total := 0
		for _, x := range u {
			total += x
		}
		minSup := float64(rng.Intn(total + 1))
		theta := float64(rng.Intn(101)) / 100

		p1, ok1, err1 := OptimalSlopePair(u, v, minSup)
		p2, ok2, err2 := OptimalSlopePairScratch(u, v, minSup, sc)
		if (err1 == nil) != (err2 == nil) || ok1 != ok2 || p1 != p2 {
			t.Fatalf("trial %d: slope plain=%+v/%v/%v scratch=%+v/%v/%v",
				trial, p1, ok1, err1, p2, ok2, err2)
		}

		s1, ok1, err1 := OptimalSupportPair(u, v, theta)
		s2, ok2, err2 := OptimalSupportPairScratch(u, v, theta, sc)
		if (err1 == nil) != (err2 == nil) || ok1 != ok2 || s1 != s2 {
			t.Fatalf("trial %d: support plain=%+v/%v/%v scratch=%+v/%v/%v",
				trial, s1, ok1, err1, s2, ok2, err2)
		}
	}
	// Nil scratch must behave like the plain entry points.
	u := []int{3, 1, 4}
	v := []float64{1, 1, 2}
	p1, ok1, _ := OptimalSlopePair(u, v, 2)
	p2, ok2, _ := OptimalSlopePairScratch(u, v, 2, nil)
	if ok1 != ok2 || p1 != p2 {
		t.Fatalf("nil scratch: %+v/%v vs %+v/%v", p1, ok1, p2, ok2)
	}
}

// TestScratchValidation: invalid inputs error identically.
func TestScratchValidation(t *testing.T) {
	sc := &Scratch{}
	if _, _, err := OptimalSlopePairScratch(nil, nil, 1, sc); err == nil {
		t.Error("empty input accepted")
	}
	if _, _, err := OptimalSupportPairScratch([]int{0}, []float64{0}, 0.5, sc); err == nil {
		t.Error("empty bucket accepted")
	}
}
