package core

import (
	"fmt"

	"optrule/internal/hull"
)

// OptimalSlopePair computes the optimized-confidence rule's range
// (Definition 4.2) in O(M) time using the convex hull tree of
// Algorithm 4.1 and the tangent maintenance of Algorithm 4.2.
//
// It returns the inclusive bucket range [S, T] maximizing confidence
// (Σv / Σu) among ranges whose support count Σu is at least
// minSupCount; among maximum-confidence ranges it maximizes the support
// count, per Definition 4.2. ok is false when no range is ample (the
// total count is below minSupCount).
//
// When v_i counts tuples meeting the objective condition, the result is
// the optimized-confidence rule; when v_i sums a target attribute, it
// is the maximum-average range of Section 5.
func OptimalSlopePair(u []int, v []float64, minSupCount float64) (best Pair, ok bool, err error) {
	if err := validate(u, v); err != nil {
		return Pair{}, false, err
	}
	m := len(u)
	pu, pv := prefixes(u, v)
	if float64(pu[m]) < minSupCount {
		return Pair{}, false, nil // not even the full range is ample
	}

	// Points Q_0 … Q_M; X strictly increasing because u_i >= 1.
	pts := make([]hull.Point, m+1)
	for k := 0; k <= m; k++ {
		pts[k] = hull.Point{X: float64(pu[k]), Y: pv[k]}
	}
	tree, err := hull.NewTree(pts)
	if err != nil {
		return Pair{}, false, fmt.Errorf("core: building hull tree: %w", err)
	}

	// L = (lm, lt): the most recently computed tangent (anchor Q_lm,
	// terminating point Q_lt). bs/bt track the best pair seen so far.
	lm, lt := -1, -1
	bs, bt := -1, -1
	r := 0 // r(anchor): one forward pointer, monotone over anchors
	for anchor := 0; anchor < m; anchor++ {
		// r(anchor) = min{ i >= anchor+1 : support(anchor+1 … i) ample }.
		if r < anchor+1 {
			r = anchor + 1
		}
		for r <= m && float64(pu[r]-pu[anchor]) < minSupCount {
			r++
		}
		if r > m {
			break // no ample range starts at this or any later anchor
		}
		tree.AdvanceTo(r)

		if lm >= 0 && hull.AboveOrOn(pts[anchor], pts[lm], pts[lt]) {
			// The tangent from Q_anchor cannot exceed L's slope; skip.
			continue
		}
		var t int
		if lt >= r {
			// L touches U_r at Q_lt (suffix hulls preserve surviving
			// nodes): counterclockwise search from Q_lt.
			t = counterclockwiseSearch(tree, pts, anchor, lt)
		} else {
			// L misses U_r entirely: clockwise search from Q_r.
			t = clockwiseSearch(tree, pts, anchor)
		}
		lm, lt = anchor, t
		if bs < 0 || cmpSlopePairs(pu, pv, anchor, t-1, bs, bt) > 0 {
			bs, bt = anchor, t-1
		}
	}
	if bs < 0 {
		return Pair{}, false, nil
	}
	return makePair(pu, pv, bs, bt), true, nil
}

// clockwiseSearch finds the terminating point of the tangent from
// Q_anchor to the current hull: starting at the hull's leftmost node
// (stack top), it walks right while the slope does not decrease, so
// ties resolve to the maximum X-coordinate as Definition 4.3 requires.
func clockwiseSearch(tree *hull.Tree, pts []hull.Point, anchor int) int {
	p := tree.StackLen() - 1
	for p > 0 {
		cur := tree.NodeAt(p)
		next := tree.NodeAt(p - 1)
		if hull.CompareSlopes(pts[anchor], pts[next], pts[cur]) >= 0 {
			p--
		} else {
			break
		}
	}
	return tree.NodeAt(p)
}

// counterclockwiseSearch finds the terminating point of the tangent
// from Q_anchor when the previous tangent's terminating point Q_from is
// still on the hull: it walks left from Q_from while the slope strictly
// improves (strict, so ties keep the maximum X-coordinate).
func counterclockwiseSearch(tree *hull.Tree, pts []hull.Point, anchor, from int) int {
	p := tree.Pos(from)
	for p < tree.StackLen()-1 {
		cur := tree.NodeAt(p)
		next := tree.NodeAt(p + 1)
		if hull.CompareSlopes(pts[anchor], pts[next], pts[cur]) > 0 {
			p++
		} else {
			break
		}
	}
	return tree.NodeAt(p)
}

// NaiveOptimalSlopePair solves the same problem by enumerating all
// O(M²) bucket ranges. It is the baseline of the paper's Figure 10 and
// the oracle for property tests; it uses the same comparison helpers as
// the fast path, so results agree exactly.
func NaiveOptimalSlopePair(u []int, v []float64, minSupCount float64) (best Pair, ok bool, err error) {
	if err := validate(u, v); err != nil {
		return Pair{}, false, err
	}
	m := len(u)
	pu, pv := prefixes(u, v)
	bs, bt := -1, -1
	for s := 0; s < m; s++ {
		for t := s; t < m; t++ {
			if float64(pu[t+1]-pu[s]) < minSupCount {
				continue
			}
			if bs < 0 || cmpSlopePairs(pu, pv, s, t, bs, bt) > 0 {
				bs, bt = s, t
			}
		}
	}
	if bs < 0 {
		return Pair{}, false, nil
	}
	return makePair(pu, pv, bs, bt), true, nil
}
