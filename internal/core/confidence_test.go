package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomBuckets generates M buckets with sizes in [1, maxU] and hit
// counts v_i <= u_i (the association-rule setting).
func randomBuckets(rng *rand.Rand, m, maxU int) (u []int, v []float64) {
	u = make([]int, m)
	v = make([]float64, m)
	for i := range u {
		u[i] = 1 + rng.Intn(maxU)
		v[i] = float64(rng.Intn(u[i] + 1))
	}
	return u, v
}

func TestOptimalSlopePairValidation(t *testing.T) {
	if _, _, err := OptimalSlopePair(nil, nil, 1); err == nil {
		t.Errorf("empty buckets accepted")
	}
	if _, _, err := OptimalSlopePair([]int{1, 2}, []float64{1}, 1); err == nil {
		t.Errorf("length mismatch accepted")
	}
	if _, _, err := OptimalSlopePair([]int{1, 0}, []float64{1, 0}, 1); err == nil {
		t.Errorf("empty bucket accepted")
	}
}

func TestOptimalSlopePairTinyCases(t *testing.T) {
	// Single bucket: the only range is [0,0].
	p, ok, err := OptimalSlopePair([]int{10}, []float64{5}, 5)
	if err != nil || !ok {
		t.Fatalf("single bucket failed: %v %v", ok, err)
	}
	if p.S != 0 || p.T != 0 || p.Conf != 0.5 || p.Count != 10 {
		t.Errorf("single bucket pair = %+v", p)
	}
	// Threshold above the total: no ample range.
	if _, ok, err := OptimalSlopePair([]int{10}, []float64{5}, 11); ok || err != nil {
		t.Errorf("over-threshold should return ok=false, got ok=%v err=%v", ok, err)
	}
}

func TestOptimalSlopePairExample23(t *testing.T) {
	// Mirrors Example 2.3's structure: a high-confidence small cluster
	// inside a broader mediocre region. Buckets of 10 tuples each with
	// hits: 2 2 9 8 2 2. Threshold: at least 30 tuples.
	u := []int{10, 10, 10, 10, 10, 10}
	v := []float64{2, 2, 9, 8, 2, 2}
	p, ok, err := OptimalSlopePair(u, v, 30)
	if err != nil || !ok {
		t.Fatal(err)
	}
	// Best 3-bucket window is [1,3]: (2+9+8)/30 or [2,4]: (9+8+2)/30 —
	// both 19/30; tie-break by support cannot extend. The algorithm must
	// return conf 19/30 with count 30.
	if p.Count != 30 || p.Conf != 19.0/30 {
		t.Errorf("pair = %+v, want count 30 conf %g", p, 19.0/30)
	}
}

func TestOptimalSlopePairPrefersSupportOnTie(t *testing.T) {
	// Two windows with equal confidence but different sizes: buckets
	// sized 10 with hits 5 each everywhere — every ample range has conf
	// 0.5, so the tie-break must pick the longest (full) range.
	u := []int{10, 10, 10, 10}
	v := []float64{5, 5, 5, 5}
	p, ok, err := OptimalSlopePair(u, v, 10)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if p.Count != 40 {
		t.Errorf("tie-break should maximize support: got count %d, want 40", p.Count)
	}
}

func TestOptimalSlopePairMinSupZero(t *testing.T) {
	// With a non-positive threshold every non-empty range is ample; the
	// best single bucket (or longer run) must be found.
	u := []int{5, 5, 5}
	v := []float64{1, 5, 2}
	p, ok, err := OptimalSlopePair(u, v, 0)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if p.S != 1 || p.T != 1 || p.Conf != 1 {
		t.Errorf("pair = %+v, want the pure bucket [1,1]", p)
	}
}

func TestOptimalSlopePairMatchesNaiveSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 2000; trial++ {
		m := 1 + rng.Intn(12)
		u, v := randomBuckets(rng, m, 6)
		minSup := float64(rng.Intn(20))
		fast, okF, err := OptimalSlopePair(u, v, minSup)
		if err != nil {
			t.Fatal(err)
		}
		naive, okN, err := NaiveOptimalSlopePair(u, v, minSup)
		if err != nil {
			t.Fatal(err)
		}
		if okF != okN {
			t.Fatalf("trial %d: ok mismatch fast=%v naive=%v (u=%v v=%v minSup=%g)", trial, okF, okN, u, v, minSup)
		}
		if !okF {
			continue
		}
		if fast.Conf != naive.Conf || fast.Count != naive.Count {
			t.Fatalf("trial %d: fast=%+v naive=%+v (u=%v v=%v minSup=%g)", trial, fast, naive, u, v, minSup)
		}
		if float64(fast.Count) < minSup {
			t.Fatalf("trial %d: fast pair not ample: %+v < %g", trial, fast, minSup)
		}
	}
}

func TestOptimalSlopePairMatchesNaiveProperty(t *testing.T) {
	f := func(seed int64, mRaw uint8, supRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		m := int(mRaw%80) + 1
		u, v := randomBuckets(rng, m, 50)
		total := 0
		for _, x := range u {
			total += x
		}
		minSup := float64(int(supRaw) % (total + 2))
		fast, okF, err1 := OptimalSlopePair(u, v, minSup)
		naive, okN, err2 := NaiveOptimalSlopePair(u, v, minSup)
		if err1 != nil || err2 != nil || okF != okN {
			return false
		}
		if !okF {
			return true
		}
		return fast.Conf == naive.Conf && fast.Count == naive.Count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestOptimalSlopePairSection5Averages(t *testing.T) {
	// Section 5: v_i as value sums, maximizing the average. Buckets of
	// sizes 4,4,4 with sums 40, 400, 80: best average window of count
	// >= 8 is buckets [1,2]: 480/8 = 60.
	u := []int{4, 4, 4}
	v := []float64{40, 400, 80}
	p, ok, err := OptimalSlopePair(u, v, 8)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if p.S != 1 || p.T != 2 || p.Conf != 60 {
		t.Errorf("max-average range = %+v, want [1,2] avg 60", p)
	}
}

func TestOptimalSlopePairAdversarialShapes(t *testing.T) {
	cases := []struct {
		name   string
		u      []int
		v      []float64
		minSup float64
	}{
		{"all zero hits", []int{3, 3, 3}, []float64{0, 0, 0}, 3},
		{"all full hits", []int{3, 3, 3}, []float64{3, 3, 3}, 3},
		{"increasing conf", []int{10, 10, 10, 10}, []float64{1, 3, 6, 9}, 20},
		{"decreasing conf", []int{10, 10, 10, 10}, []float64{9, 6, 3, 1}, 20},
		{"alternating", []int{5, 5, 5, 5, 5, 5}, []float64{5, 0, 5, 0, 5, 0}, 10},
		{"single spike", []int{100, 1, 100}, []float64{10, 1, 10}, 2},
		{"huge buckets", []int{1000000, 1000000}, []float64{999999, 1}, 1000000},
	}
	for _, c := range cases {
		fast, okF, err := OptimalSlopePair(c.u, c.v, c.minSup)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		naive, okN, _ := NaiveOptimalSlopePair(c.u, c.v, c.minSup)
		if okF != okN {
			t.Fatalf("%s: ok mismatch", c.name)
		}
		if okF && (fast.Conf != naive.Conf || fast.Count != naive.Count) {
			t.Errorf("%s: fast=%+v naive=%+v", c.name, fast, naive)
		}
	}
}

func TestOptimalSlopePairAllCollinear(t *testing.T) {
	// Identical buckets make every cumulative point collinear — the
	// degenerate hull. Every range has the same confidence, so the
	// tie-break must select maximum support (the whole domain).
	m := 50
	u := make([]int, m)
	v := make([]float64, m)
	for i := range u {
		u[i] = 4
		v[i] = 2
	}
	p, ok, err := OptimalSlopePair(u, v, 8)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if p.S != 0 || p.T != m-1 {
		t.Errorf("collinear case should select the full range, got %+v", p)
	}
	if p.Conf != 0.5 {
		t.Errorf("conf = %g, want 0.5", p.Conf)
	}
}

func TestOptimalSlopePairMostlyCollinearSegments(t *testing.T) {
	// Long collinear stretches interrupted by spikes exercise the hull
	// tree's collinear-popping logic.
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 300; trial++ {
		m := 5 + rng.Intn(40)
		u := make([]int, m)
		v := make([]float64, m)
		for i := range u {
			u[i] = 2
			v[i] = 1 // collinear baseline
		}
		// A few spikes.
		for k := 0; k < 1+rng.Intn(4); k++ {
			i := rng.Intn(m)
			v[i] = float64(rng.Intn(3))
		}
		minSup := float64(2 * (1 + rng.Intn(m)))
		fast, okF, err := OptimalSlopePair(u, v, minSup)
		if err != nil {
			t.Fatal(err)
		}
		naive, okN, _ := NaiveOptimalSlopePair(u, v, minSup)
		if okF != okN || (okF && (fast.Conf != naive.Conf || fast.Count != naive.Count)) {
			t.Fatalf("trial %d: fast=%+v naive=%+v (v=%v minSup=%g)", trial, fast, naive, v, minSup)
		}
	}
}

func TestOptimalPairsMediumScaleCrossCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("quadratic oracle at M=4000")
	}
	rng := rand.New(rand.NewSource(97))
	u, v := randomBuckets(rng, 4000, 30)
	fast, okF, err := OptimalSlopePair(u, v, 1000)
	if err != nil {
		t.Fatal(err)
	}
	naive, okN, err := NaiveOptimalSlopePair(u, v, 1000)
	if err != nil || okF != okN {
		t.Fatal(err)
	}
	if fast.Conf != naive.Conf || fast.Count != naive.Count {
		t.Fatalf("M=4000 slope mismatch: fast=%+v naive=%+v", fast, naive)
	}
	fastS, okFS, err := OptimalSupportPair(u, v, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	naiveS, okNS, err := NaiveOptimalSupportPair(u, v, 0.5)
	if err != nil || okFS != okNS {
		t.Fatal(err)
	}
	if fastS.Count != naiveS.Count {
		t.Fatalf("M=4000 support mismatch: fast=%+v naive=%+v", fastS, naiveS)
	}
}

func BenchmarkOptimalSlopePair1000(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	u, v := randomBuckets(rng, 1000, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := OptimalSlopePair(u, v, 2500); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNaiveOptimalSlopePair1000(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	u, v := randomBuckets(rng, 1000, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := NaiveOptimalSlopePair(u, v, 2500); err != nil {
			b.Fatal(err)
		}
	}
}
