package core

import (
	"math/rand"
	"testing"
)

func TestTopKSlopePairsTwoClusters(t *testing.T) {
	// Two high-confidence clusters separated by a cold zone.
	u := []int{10, 10, 10, 10, 10, 10, 10}
	v := []float64{1, 9, 9, 0, 8, 8, 1}
	pairs, err := TopKSlopePairs(u, v, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) < 2 {
		t.Fatalf("expected at least 2 disjoint clusters, got %d: %v", len(pairs), pairs)
	}
	// First cluster: buckets [1,2] conf 0.9; second: [4,5] conf 0.8.
	if pairs[0].S != 1 || pairs[0].T != 2 {
		t.Errorf("first pair = %+v, want [1,2]", pairs[0])
	}
	if pairs[1].S != 4 || pairs[1].T != 5 {
		t.Errorf("second pair = %+v, want [4,5]", pairs[1])
	}
	// Decreasing confidence.
	for i := 1; i < len(pairs); i++ {
		if pairs[i].Conf > pairs[i-1].Conf+1e-12 {
			t.Errorf("pairs not in decreasing confidence: %v", pairs)
		}
	}
}

func TestTopKSupportPairsDisjointAndConfident(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		m := 5 + rng.Intn(40)
		u, v := randomBuckets(rng, m, 10)
		theta := 0.4 + 0.4*rng.Float64()
		k := 1 + rng.Intn(5)
		pairs, err := TopKSupportPairs(u, v, theta, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(pairs) > k {
			t.Fatalf("returned %d > k=%d pairs", len(pairs), k)
		}
		for i, p := range pairs {
			if p.Conf < theta {
				t.Fatalf("trial %d: pair %d not confident: %+v theta=%g", trial, i, p, theta)
			}
			// Support non-increasing.
			if i > 0 && p.Count > pairs[i-1].Count {
				t.Fatalf("trial %d: supports not sorted: %v", trial, pairs)
			}
			// Pairwise disjoint.
			for j := 0; j < i; j++ {
				if p.S <= pairs[j].T && pairs[j].S <= p.T {
					t.Fatalf("trial %d: pairs %d and %d overlap: %v", trial, i, j, pairs)
				}
			}
		}
		// First pair must equal the single-range optimum.
		opt, ok, err := OptimalSupportPair(u, v, theta)
		if err != nil {
			t.Fatal(err)
		}
		if ok != (len(pairs) > 0) {
			t.Fatalf("trial %d: top-k emptiness disagrees with single optimum", trial)
		}
		if ok && pairs[0].Count != opt.Count {
			t.Fatalf("trial %d: first pair support %d != optimal %d", trial, pairs[0].Count, opt.Count)
		}
	}
}

func TestTopKSlopePairsFirstIsGlobalOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		m := 3 + rng.Intn(30)
		u, v := randomBuckets(rng, m, 8)
		minSup := float64(rng.Intn(30))
		pairs, err := TopKSlopePairs(u, v, minSup, 4)
		if err != nil {
			t.Fatal(err)
		}
		opt, ok, err := OptimalSlopePair(u, v, minSup)
		if err != nil {
			t.Fatal(err)
		}
		if ok != (len(pairs) > 0) {
			t.Fatalf("trial %d: emptiness disagrees", trial)
		}
		if ok && (pairs[0].Conf != opt.Conf || pairs[0].Count != opt.Count) {
			t.Fatalf("trial %d: first pair %+v != optimum %+v", trial, pairs[0], opt)
		}
	}
}

func TestTopKEdgeCases(t *testing.T) {
	u := []int{10}
	v := []float64{5}
	pairs, err := TopKSlopePairs(u, v, 5, 0)
	if err != nil || pairs != nil {
		t.Errorf("k=0 should return nothing: %v %v", pairs, err)
	}
	pairs, err = TopKSlopePairs(u, v, 5, 10)
	if err != nil || len(pairs) != 1 {
		t.Errorf("k beyond available ranges should return what exists: %v %v", pairs, err)
	}
	// Nothing qualifies.
	pairs, err = TopKSupportPairs([]int{10}, []float64{1}, 0.9, 3)
	if err != nil || len(pairs) != 0 {
		t.Errorf("unsatisfiable threshold should return empty: %v %v", pairs, err)
	}
	if _, err := TopKSupportPairs(nil, nil, 0.5, 1); err == nil {
		t.Errorf("empty input accepted")
	}
}
