package stats

import (
	"math"
	"sort"
)

// Summary holds basic descriptive statistics of a float64 sample.
type Summary struct {
	Count  int
	Min    float64
	Max    float64
	Mean   float64
	StdDev float64
}

// Summarize computes a Summary over xs. An empty slice yields a zero
// Summary with NaN Min/Max.
func Summarize(xs []float64) Summary {
	s := Summary{Count: len(xs), Min: math.NaN(), Max: math.NaN()}
	if len(xs) == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	sum := 0.0
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	if len(xs) > 1 {
		s.StdDev = math.Sqrt(sq / float64(len(xs)-1))
	}
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of sorted xs using the
// nearest-rank definition the paper's bucketing step relies on: the
// ceil(q·n)-th smallest element. xs must be sorted ascending and
// non-empty.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	rank := int(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// EquiDepthBoundaries returns the m−1 interior boundaries p_1 … p_{m−1}
// from step 3 of Algorithm 3.1: p_i is the ⌈i·n/m⌉-th smallest element
// of the sorted sample. The caller supplies the sorted sample.
func EquiDepthBoundaries(sorted []float64, m int) []float64 {
	if m < 1 {
		panic("stats: non-positive bucket count")
	}
	n := len(sorted)
	if n == 0 && m > 1 {
		panic("stats: EquiDepthBoundaries of empty slice")
	}
	bounds := make([]float64, 0, m-1)
	for i := 1; i < m; i++ {
		// rank = ceil(i·n/m) in exact integer arithmetic; floating-point
		// q·n can round ranks up spuriously (e.g. 0.04·10000 > 400).
		rank := (i*n + m - 1) / m
		if rank < 1 {
			rank = 1
		}
		bounds = append(bounds, sorted[rank-1])
	}
	return bounds
}

// DepthDeviation reports how far bucket sizes stray from perfect
// equi-depth: it returns max_i |u_i − N/M| / (N/M) where u_i are the
// observed bucket sizes and N = Σ u_i.
func DepthDeviation(sizes []int) float64 {
	if len(sizes) == 0 {
		return 0
	}
	total := 0
	for _, u := range sizes {
		total += u
	}
	ideal := float64(total) / float64(len(sizes))
	if ideal == 0 {
		return 0
	}
	worst := 0.0
	for _, u := range sizes {
		d := math.Abs(float64(u)-ideal) / ideal
		if d > worst {
			worst = d
		}
	}
	return worst
}

// SortedCopy returns a sorted copy of xs.
func SortedCopy(xs []float64) []float64 {
	out := make([]float64, len(xs))
	copy(out, xs)
	sort.Float64s(out)
	return out
}
