// Package stats provides the small statistical toolkit the bucketing
// analysis of the paper depends on: exact binomial tail probabilities
// (used to choose the sample size S = 40·M in Algorithm 3.1 and to
// regenerate Figure 1), quantile selection, and summary statistics.
package stats

import (
	"fmt"
	"math"
)

// LogBinomialPMF returns ln Pr(X = k) for X ~ Binomial(n, p).
//
// The value is computed in log space via math.Lgamma so that it stays
// finite for the sample sizes the paper uses (n up to a few million).
func LogBinomialPMF(n int, p float64, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if p <= 0 {
		if k == 0 {
			return 0
		}
		return math.Inf(-1)
	}
	if p >= 1 {
		if k == n {
			return 0
		}
		return math.Inf(-1)
	}
	lgN, _ := math.Lgamma(float64(n) + 1)
	lgK, _ := math.Lgamma(float64(k) + 1)
	lgNK, _ := math.Lgamma(float64(n-k) + 1)
	return lgN - lgK - lgNK + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)
}

// BinomialPMF returns Pr(X = k) for X ~ Binomial(n, p).
func BinomialPMF(n int, p float64, k int) float64 {
	return math.Exp(LogBinomialPMF(n, p, k))
}

// BinomialCDF returns Pr(X <= k) for X ~ Binomial(n, p), by direct
// summation of the probability mass function. The summation is exact up
// to floating-point rounding; it is O(k) and intended for the moderate
// n/p regimes of the bucketing analysis, not for extreme tails.
func BinomialCDF(n int, p float64, k int) float64 {
	if k < 0 {
		return 0
	}
	if k >= n {
		return 1
	}
	// Sum the smaller side for accuracy.
	mean := float64(n) * p
	if float64(k) <= mean {
		sum := 0.0
		for i := 0; i <= k; i++ {
			sum += BinomialPMF(n, p, i)
		}
		return math.Min(sum, 1)
	}
	sum := 0.0
	for i := k + 1; i <= n; i++ {
		sum += BinomialPMF(n, p, i)
	}
	return math.Max(0, 1-sum)
}

// BinomialUpperTail returns Pr(X >= k) for X ~ Binomial(n, p).
func BinomialUpperTail(n int, p float64, k int) float64 {
	return 1 - BinomialCDF(n, p, k-1)
}

// BucketDeviationProbability returns
//
//	p_e = Pr( |X − S/M| >= δ·S/M ),  X ~ Binomial(S, 1/M),
//
// the probability from Section 3.2 of the paper that the number of
// sample points falling into an interval holding N/M of the data
// deviates from its expectation S/M by a factor of at least δ. This is
// the quantity plotted in Figure 1 (for δ = 0.5 and M ∈ {5, 10, 10000}).
//
// Note that p_e depends only on S and M, not on the database size N.
func BucketDeviationProbability(sampleSize, numBuckets int, delta float64) float64 {
	if sampleSize <= 0 {
		return 1
	}
	if numBuckets <= 1 {
		return 0
	}
	mean := float64(sampleSize) / float64(numBuckets)
	lo := int(math.Ceil(mean * (1 - delta)))
	hi := int(math.Floor(mean * (1 + delta)))
	p := 1.0 / float64(numBuckets)
	// Pr(X <= lo-1) + Pr(X >= hi+1); boundary values |X−mean| == δ·mean
	// count as deviations per the paper's ">=".
	if float64(lo)-mean*(1-delta) == 0 {
		lo-- // X == (1−δ)mean is a deviation: include it in the lower tail.
	}
	if mean*(1+delta)-float64(hi) == 0 {
		hi++ // X == (1+δ)mean is a deviation: include it in the upper tail.
	}
	lower := BinomialCDF(sampleSize, p, lo)
	upper := BinomialUpperTail(sampleSize, p, hi)
	pe := lower + upper
	if pe > 1 {
		pe = 1
	}
	return pe
}

// RecommendedSampleSize returns the sample size Algorithm 3.1 should
// draw for numBuckets buckets. The paper observes (Fig. 1) that the
// deviation probability p_e drops sharply until S/M ≈ 40 and flattens
// afterwards, and therefore fixes S = 40·M.
func RecommendedSampleSize(numBuckets int) int {
	if numBuckets < 1 {
		panic(fmt.Sprintf("stats: non-positive bucket count %d", numBuckets))
	}
	return 40 * numBuckets
}

// SampleSizePerBucketForTarget returns the smallest integer ratio S/M
// in [1, maxRatio] whose deviation probability is at most target, or
// maxRatio if none reaches the target. It mirrors the reading of Fig. 1
// by which the paper selects 40.
func SampleSizePerBucketForTarget(numBuckets int, delta, target float64, maxRatio int) int {
	for r := 1; r <= maxRatio; r++ {
		if BucketDeviationProbability(r*numBuckets, numBuckets, delta) <= target {
			return r
		}
	}
	return maxRatio
}
