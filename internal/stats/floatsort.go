package stats

import (
	"math"
	"sort"
)

// radixSortMin is the length below which comparison sort wins (radix
// has fixed histogram costs).
const radixSortMin = 512

// SortFloat64s sorts xs ascending in O(n) with an LSD radix sort on the
// IEEE-754 total order, falling back to sort.Float64s for short slices.
// Algorithm 3.1 sorts a 40·M-point sample per numeric attribute, and
// that sort dominated the sampling phase's CPU profile; radix removes
// the log factor. For NaN-free input the result is numerically
// identical to sort.Float64s (NaNs, if present, sort deterministically
// to the extremes by their bit patterns rather than to arbitrary
// positions, which no caller relies on).
func SortFloat64s(xs []float64) {
	if len(xs) < radixSortMin {
		sort.Float64s(xs)
		return
	}
	// Map each float to a uint64 key that orders like the float: flip
	// all bits of negatives, flip only the sign bit of non-negatives.
	keys := make([]uint64, len(xs))
	for i, x := range xs {
		b := math.Float64bits(x)
		if b&(1<<63) != 0 {
			b = ^b
		} else {
			b |= 1 << 63
		}
		keys[i] = b
	}
	buf := make([]uint64, len(keys))
	var counts [256]int
	for shift := uint(0); shift < 64; shift += 8 {
		for i := range counts {
			counts[i] = 0
		}
		for _, k := range keys {
			counts[(k>>shift)&0xff]++
		}
		// Skip passes where every key shares the byte.
		if counts[(keys[0]>>shift)&0xff] == len(keys) {
			continue
		}
		pos := 0
		for i, c := range counts {
			counts[i] = pos
			pos += c
		}
		for _, k := range keys {
			b := (k >> shift) & 0xff
			buf[counts[b]] = k
			counts[b]++
		}
		keys, buf = buf, keys
	}
	for i, k := range keys {
		if k&(1<<63) != 0 {
			k &^= 1 << 63
		} else {
			k = ^k
		}
		xs[i] = math.Float64frombits(k)
	}
}
