package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestBinomialPMFSmallCases(t *testing.T) {
	// Binomial(4, 0.5): 1/16, 4/16, 6/16, 4/16, 1/16.
	want := []float64{1.0 / 16, 4.0 / 16, 6.0 / 16, 4.0 / 16, 1.0 / 16}
	for k, w := range want {
		got := BinomialPMF(4, 0.5, k)
		if !almostEqual(got, w, 1e-12) {
			t.Errorf("PMF(4,0.5,%d) = %g, want %g", k, got, w)
		}
	}
}

func TestBinomialPMFEdgeProbabilities(t *testing.T) {
	if got := BinomialPMF(5, 0, 0); got != 1 {
		t.Errorf("PMF(5,0,0) = %g, want 1", got)
	}
	if got := BinomialPMF(5, 0, 1); got != 0 {
		t.Errorf("PMF(5,0,1) = %g, want 0", got)
	}
	if got := BinomialPMF(5, 1, 5); got != 1 {
		t.Errorf("PMF(5,1,5) = %g, want 1", got)
	}
	if got := BinomialPMF(5, 1, 3); got != 0 {
		t.Errorf("PMF(5,1,3) = %g, want 0", got)
	}
	if got := BinomialPMF(5, 0.3, -1); got != 0 {
		t.Errorf("PMF(5,0.3,-1) = %g, want 0", got)
	}
	if got := BinomialPMF(5, 0.3, 6); got != 0 {
		t.Errorf("PMF(5,0.3,6) = %g, want 0", got)
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, tc := range []struct {
		n int
		p float64
	}{{10, 0.5}, {100, 0.1}, {1000, 0.01}, {37, 0.73}} {
		sum := 0.0
		for k := 0; k <= tc.n; k++ {
			sum += BinomialPMF(tc.n, tc.p, k)
		}
		if !almostEqual(sum, 1, 1e-9) {
			t.Errorf("sum of PMF(n=%d,p=%g) = %g, want 1", tc.n, tc.p, sum)
		}
	}
}

func TestBinomialCDFMonotone(t *testing.T) {
	n, p := 200, 0.05
	prev := -1.0
	for k := -1; k <= n+1; k++ {
		c := BinomialCDF(n, p, k)
		if c < prev-1e-12 {
			t.Fatalf("CDF not monotone at k=%d: %g < %g", k, c, prev)
		}
		if c < 0 || c > 1 {
			t.Fatalf("CDF(%d) = %g out of [0,1]", k, c)
		}
		prev = c
	}
	if BinomialCDF(n, p, n) != 1 {
		t.Errorf("CDF at k=n should be 1")
	}
	if BinomialCDF(n, p, -1) != 0 {
		t.Errorf("CDF at k=-1 should be 0")
	}
}

func TestUpperTailComplement(t *testing.T) {
	n, p := 120, 0.3
	for k := 0; k <= n; k++ {
		lo := BinomialCDF(n, p, k-1)
		hi := BinomialUpperTail(n, p, k)
		if !almostEqual(lo+hi, 1, 1e-9) {
			t.Fatalf("CDF(k-1)+UpperTail(k) = %g at k=%d, want 1", lo+hi, k)
		}
	}
}

func TestBucketDeviationProbabilityDecreasesInSampleRatio(t *testing.T) {
	// The Figure 1 phenomenon: p_e drops sharply as S/M grows.
	m := 10
	prevAvg := 1.0
	// Compare block averages to tolerate small non-monotonic jitter from
	// integer rounding of the tail cut points.
	for _, ratio := range []int{5, 20, 40, 80} {
		pe := BucketDeviationProbability(ratio*m, m, 0.5)
		if pe > prevAvg+1e-9 {
			t.Fatalf("p_e should fall as S/M grows: ratio=%d gives %g > %g", ratio, pe, prevAvg)
		}
		prevAvg = pe
	}
	// At the paper's operating point S = 40·M the probability is small.
	if pe := BucketDeviationProbability(40*m, m, 0.5); pe > 0.01 {
		t.Errorf("p_e at S/M=40, M=10 is %g, want <= 0.01", pe)
	}
}

func TestBucketDeviationProbabilityPaperOperatingPoint(t *testing.T) {
	// "It becomes smaller than 0.3% when S/M = 40" (Section 3.2).
	for _, m := range []int{5, 10, 10000} {
		pe := BucketDeviationProbability(40*m, m, 0.5)
		if pe >= 0.003+5e-4 {
			t.Errorf("M=%d: p_e(S/M=40) = %g, want < ~0.003", m, pe)
		}
	}
}

func TestBucketDeviationProbabilityEdges(t *testing.T) {
	if got := BucketDeviationProbability(0, 10, 0.5); got != 1 {
		t.Errorf("no samples should give p_e = 1, got %g", got)
	}
	if got := BucketDeviationProbability(100, 1, 0.5); got != 0 {
		t.Errorf("single bucket should give p_e = 0, got %g", got)
	}
}

func TestRecommendedSampleSize(t *testing.T) {
	if got := RecommendedSampleSize(1000); got != 40000 {
		t.Errorf("RecommendedSampleSize(1000) = %d, want 40000", got)
	}
	defer func() {
		if recover() == nil {
			t.Errorf("RecommendedSampleSize(0) should panic")
		}
	}()
	RecommendedSampleSize(0)
}

func TestSampleSizePerBucketForTarget(t *testing.T) {
	// The ratio achieving p_e <= 0.3% for M=10 should be around 40
	// (the paper's choice); certainly between 10 and 80.
	r := SampleSizePerBucketForTarget(10, 0.5, 0.003, 200)
	if r < 10 || r > 80 {
		t.Errorf("ratio for target 0.3%% = %d, want within [10,80]", r)
	}
	// Unreachable target returns maxRatio.
	if r := SampleSizePerBucketForTarget(10, 0.5, 0, 17); r != 17 {
		t.Errorf("unreachable target should return maxRatio, got %d", r)
	}
}

func TestLogPMFMatchesDirectComputationProperty(t *testing.T) {
	f := func(nRaw uint8, kRaw uint8, pRaw uint16) bool {
		n := int(nRaw%30) + 1
		k := int(kRaw) % (n + 1)
		p := (float64(pRaw%999) + 0.5) / 1000.0
		// Direct product computation for small n.
		direct := 1.0
		for i := 0; i < k; i++ {
			direct *= float64(n-i) / float64(k-i) * p
		}
		for i := 0; i < n-k; i++ {
			direct *= 1 - p
		}
		got := BinomialPMF(n, p, k)
		return almostEqual(got, direct, 1e-9*math.Max(1, direct))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
