package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestSortFloat64sMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	gens := []func() float64{
		func() float64 { return rng.Float64()*2e6 - 1e6 },
		func() float64 { return rng.NormFloat64() * 1e-9 },
		func() float64 { return float64(rng.Intn(10)) },
		func() float64 { return math.Exp(rng.NormFloat64() * 20) }, // huge dynamic range
	}
	sizes := []int{0, 1, 100, 511, 512, 513, 40000}
	for gi, gen := range gens {
		for _, n := range sizes {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = gen()
			}
			if n > 2 {
				xs[0], xs[1], xs[2] = math.Inf(-1), math.Inf(1), math.Copysign(0, -1)
			}
			want := append([]float64(nil), xs...)
			sort.Float64s(want)
			SortFloat64s(xs)
			for i := range xs {
				if xs[i] != want[i] && !(xs[i] == 0 && want[i] == 0) {
					t.Fatalf("gen %d n=%d: [%d] = %v, want %v", gi, n, i, xs[i], want[i])
				}
			}
		}
	}
}

func BenchmarkSortFloat64sRadix(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	src := make([]float64, 40000)
	for i := range src {
		src[i] = rng.NormFloat64()
	}
	xs := make([]float64, len(src))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(xs, src)
		SortFloat64s(xs)
	}
}

func BenchmarkSortFloat64sStdlib(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	src := make([]float64, 40000)
	for i := range src {
		src[i] = rng.NormFloat64()
	}
	xs := make([]float64, len(src))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(xs, src)
		sort.Float64s(xs)
	}
}
