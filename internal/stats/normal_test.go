package stats

import (
	"math"
	"testing"
)

func TestNormalUpperTailAnchors(t *testing.T) {
	cases := []struct {
		z, want, tol float64
	}{
		{0, 0.5, 1e-12},
		{1.6448536269514722, 0.05, 1e-6},
		{1.959963984540054, 0.025, 1e-6},
		{2.3263478740408408, 0.01, 1e-6},
		{-1.6448536269514722, 0.95, 1e-6},
	}
	for _, c := range cases {
		if got := NormalUpperTail(c.z); math.Abs(got-c.want) > c.tol {
			t.Errorf("NormalUpperTail(%g) = %g, want %g", c.z, got, c.want)
		}
	}
}

func TestBinomialZScore(t *testing.T) {
	// 60 of 100 at null 0.5: z = 0.1/sqrt(0.25/100) = 2.
	if z := BinomialZScore(60, 100, 0.5); math.Abs(z-2) > 1e-12 {
		t.Errorf("z = %g, want 2", z)
	}
	// At the null rate the z-score is 0.
	if z := BinomialZScore(50, 100, 0.5); z != 0 {
		t.Errorf("z = %g, want 0", z)
	}
	// Degenerate inputs.
	if BinomialZScore(1, 0, 0.5) != 0 || BinomialZScore(1, 10, 0) != 0 || BinomialZScore(1, 10, 1) != 0 {
		t.Errorf("degenerate inputs should give 0")
	}
}

func TestZScoreTailAgreesWithExactBinomial(t *testing.T) {
	// The normal approximation should be close to the exact binomial
	// upper tail in the moderate regime.
	n, p0, k := 500, 0.3, 180
	z := BinomialZScore(k, n, p0)
	approx := NormalUpperTail(z)
	exact := BinomialUpperTail(n, p0, k)
	if math.Abs(approx-exact) > 0.01 {
		t.Errorf("normal approx %g vs exact %g; too far apart", approx, exact)
	}
}
