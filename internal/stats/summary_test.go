package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.Count != 4 || s.Min != 1 || s.Max != 4 {
		t.Errorf("Summarize basics wrong: %+v", s)
	}
	if !almostEqual(s.Mean, 2.5, 1e-12) {
		t.Errorf("Mean = %g, want 2.5", s.Mean)
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if !almostEqual(s.StdDev, want, 1e-12) {
		t.Errorf("StdDev = %g, want %g", s.StdDev, want)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || !math.IsNaN(s.Min) || !math.IsNaN(s.Max) {
		t.Errorf("empty summary wrong: %+v", s)
	}
	s = Summarize([]float64{7})
	if s.Count != 1 || s.Min != 7 || s.Max != 7 || s.Mean != 7 || s.StdDev != 0 {
		t.Errorf("singleton summary wrong: %+v", s)
	}
}

func TestQuantileNearestRank(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 10}, {0.2, 10}, {0.21, 20}, {0.5, 30}, {0.8, 40}, {0.99, 50}, {1, 50},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); got != c.want {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
}

func TestQuantilePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Quantile of empty slice should panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestEquiDepthBoundariesUniform(t *testing.T) {
	n := 1000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
	}
	bounds := EquiDepthBoundaries(xs, 10)
	if len(bounds) != 9 {
		t.Fatalf("got %d boundaries, want 9", len(bounds))
	}
	for i, b := range bounds {
		want := float64((i+1)*100 - 1)
		if b != want {
			t.Errorf("boundary %d = %g, want %g", i, b, want)
		}
	}
}

func TestEquiDepthBoundariesMonotoneProperty(t *testing.T) {
	f := func(seed int64, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := int(mRaw%20) + 1
		n := m*10 + rng.Intn(500)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		sort.Float64s(xs)
		bounds := EquiDepthBoundaries(xs, m)
		if len(bounds) != m-1 {
			return false
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] < bounds[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDepthDeviation(t *testing.T) {
	if d := DepthDeviation([]int{100, 100, 100}); d != 0 {
		t.Errorf("perfect equi-depth deviation = %g, want 0", d)
	}
	// sizes 50,150 around ideal 100: deviation 0.5.
	if d := DepthDeviation([]int{50, 150}); !almostEqual(d, 0.5, 1e-12) {
		t.Errorf("deviation = %g, want 0.5", d)
	}
	if d := DepthDeviation(nil); d != 0 {
		t.Errorf("empty deviation = %g, want 0", d)
	}
}

func TestSortedCopyDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	ys := SortedCopy(xs)
	if !sort.Float64sAreSorted(ys) {
		t.Errorf("SortedCopy not sorted: %v", ys)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("SortedCopy mutated input: %v", xs)
	}
}
