package stats

import "math"

// NormalUpperTail returns Pr(Z >= z) for a standard normal Z, via the
// complementary error function.
func NormalUpperTail(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// BinomialZScore returns the normal-approximation z-score for observing
// k successes in n trials when the null success probability is p0:
//
//	z = (k/n − p0) / sqrt(p0(1−p0)/n).
//
// Degenerate inputs (n = 0 or p0 outside (0,1)) return 0.
func BinomialZScore(k, n int, p0 float64) float64 {
	if n <= 0 || p0 <= 0 || p0 >= 1 {
		return 0
	}
	phat := float64(k) / float64(n)
	return (phat - p0) / math.Sqrt(p0*(1-p0)/float64(n))
}
