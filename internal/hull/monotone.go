package hull

// UpperHull returns the indices (into pts) of the upper hull of pts, in
// left-to-right order, using Andrew's monotone chain. pts must be
// sorted by strictly increasing X. Collinear interior points are
// excluded, matching the paper's hulls whose nodes are exactly the
// vertices. This is the reference implementation the convex hull tree
// is property-tested against.
func UpperHull(pts []Point) []int {
	n := len(pts)
	if n == 0 {
		return nil
	}
	hull := make([]int, 0, n)
	for i := 0; i < n; i++ {
		// Pop while the last two hull points and pts[i] make a
		// non-clockwise turn (i.e. the middle point is on or below the
		// chord), keeping the hull strictly convex from above.
		for len(hull) >= 2 {
			a := pts[hull[len(hull)-2]]
			b := pts[hull[len(hull)-1]]
			if Cross(a, b, pts[i]) >= 0 {
				hull = hull[:len(hull)-1]
			} else {
				break
			}
		}
		hull = append(hull, i)
	}
	return hull
}
