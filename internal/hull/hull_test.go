package hull

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestCrossOrientation(t *testing.T) {
	a, b := Point{0, 0}, Point{1, 0}
	if Cross(a, b, Point{2, 1}) <= 0 {
		t.Errorf("left turn should be positive")
	}
	if Cross(a, b, Point{2, -1}) >= 0 {
		t.Errorf("right turn should be negative")
	}
	if Cross(a, b, Point{2, 0}) != 0 {
		t.Errorf("collinear should be zero")
	}
}

func TestCompareSlopes(t *testing.T) {
	o := Point{0, 0}
	if CompareSlopes(o, Point{1, 1}, Point{1, 2}) != -1 {
		t.Errorf("slope 1 vs 2 should compare -1")
	}
	if CompareSlopes(o, Point{1, 2}, Point{2, 2}) != 1 {
		t.Errorf("slope 2 vs 1 should compare +1")
	}
	if CompareSlopes(o, Point{1, 1}, Point{2, 2}) != 0 {
		t.Errorf("equal slopes should compare 0")
	}
	// Negative slopes.
	if CompareSlopes(o, Point{1, -3}, Point{1, -2}) != -1 {
		t.Errorf("-3 vs -2 should compare -1")
	}
}

func TestAboveOrOn(t *testing.T) {
	a, b := Point{0, 0}, Point{2, 2}
	if !AboveOrOn(Point{1, 1.5}, a, b) {
		t.Errorf("point above line not detected")
	}
	if !AboveOrOn(Point{1, 1}, a, b) {
		t.Errorf("point on line not detected")
	}
	if AboveOrOn(Point{1, 0.5}, a, b) {
		t.Errorf("point below line misclassified")
	}
}

func TestUpperHullSmallCases(t *testing.T) {
	cases := []struct {
		name string
		pts  []Point
		want []int
	}{
		{"empty", nil, nil},
		{"single", []Point{{0, 0}}, []int{0}},
		{"pair", []Point{{0, 0}, {1, 5}}, []int{0, 1}},
		{"peak", []Point{{0, 0}, {1, 1}, {2, 0}}, []int{0, 1, 2}},
		{"valley", []Point{{0, 0}, {1, -1}, {2, 0}}, []int{0, 2}},
		{"collinear", []Point{{0, 0}, {1, 1}, {2, 2}}, []int{0, 2}},
		{"staircase", []Point{{0, 0}, {1, 3}, {2, 4}, {3, 4.5}}, []int{0, 1, 2, 3}},
		{"interior below", []Point{{0, 0}, {1, 0}, {2, 1}}, []int{0, 2}},
	}
	for _, c := range cases {
		got := UpperHull(c.pts)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: UpperHull = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestUpperHullIsHullProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%60) + 1
		pts := make([]Point, n)
		x := 0.0
		for i := range pts {
			x += 1 + rng.Float64()*3
			pts[i] = Point{X: x, Y: rng.NormFloat64() * 10}
		}
		h := UpperHull(pts)
		if len(h) == 0 || h[0] != 0 || h[len(h)-1] != n-1 {
			return false // endpoints must be on the hull
		}
		// Every point must lie on or below every hull edge's line within
		// the edge's x-span... equivalently below the hull polyline.
		for e := 0; e+1 < len(h); e++ {
			a, b := pts[h[e]], pts[h[e+1]]
			for i := h[e] + 1; i < h[e+1]; i++ {
				if Cross(a, b, pts[i]) > 0 {
					return false // interior point above a hull edge
				}
			}
		}
		// Hull must be convex from above: consecutive slopes strictly
		// decreasing.
		for e := 0; e+2 < len(h); e++ {
			if CompareSlopes(pts[h[e]], pts[h[e+1]], pts[h[e+2]]) <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNewTreeValidation(t *testing.T) {
	if _, err := NewTree(nil); err == nil {
		t.Errorf("empty point set accepted")
	}
	if _, err := NewTree([]Point{{0, 0}, {0, 1}}); err == nil {
		t.Errorf("equal X accepted")
	}
	if _, err := NewTree([]Point{{1, 0}, {0, 1}}); err == nil {
		t.Errorf("decreasing X accepted")
	}
}

func TestTreeInitialHullMatchesMonotoneChain(t *testing.T) {
	pts := []Point{{0, 0}, {1, 2}, {2, 1}, {3, 4}, {4, 3}, {5, 5}, {6, 0}}
	tree, err := NewTree(pts)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Cur() != 0 {
		t.Fatalf("fresh tree should hold U_0, got U_%d", tree.Cur())
	}
	got := tree.HullLeftToRight()
	want := UpperHull(pts)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("U_0 = %v, want %v", got, want)
	}
}

func TestTreeRestorationMatchesMonotoneChainEveryStep(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(40) + 2
		pts := make([]Point, n)
		x := 0.0
		for i := range pts {
			x += 1 + rng.Float64()
			pts[i] = Point{X: x, Y: rng.NormFloat64() * 5}
		}
		tree, err := NewTree(pts)
		if err != nil {
			t.Fatal(err)
		}
		for m := 0; m < n; m++ {
			got := tree.HullLeftToRight()
			wantRel := UpperHull(pts[m:])
			want := make([]int, len(wantRel))
			for i, idx := range wantRel {
				want[i] = idx + m
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d: U_%d = %v, want %v", trial, m, got, want)
			}
			// pos must be consistent with the stack.
			for p := 0; p < tree.StackLen(); p++ {
				if tree.Pos(tree.NodeAt(p)) != p {
					t.Fatalf("pos inconsistent at stack position %d", p)
				}
			}
			if m < n-1 {
				tree.Advance()
			}
		}
	}
}

func TestTreeAdvanceToAndPanics(t *testing.T) {
	pts := []Point{{0, 0}, {1, 1}, {2, 0}, {3, 2}}
	tree, _ := NewTree(pts)
	tree.AdvanceTo(2)
	if tree.Cur() != 2 {
		t.Fatalf("AdvanceTo(2) left tree at %d", tree.Cur())
	}
	got := tree.HullLeftToRight()
	if !reflect.DeepEqual(got, []int{2, 3}) {
		t.Errorf("U_2 = %v, want [2 3]", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("rewind should panic")
			}
		}()
		tree.AdvanceTo(0)
	}()
	tree.AdvanceTo(3)
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("Advance past end should panic")
			}
		}()
		tree.Advance()
	}()
}

func TestTreePointAccessors(t *testing.T) {
	pts := []Point{{0, 0}, {1, 1}}
	tree, _ := NewTree(pts)
	if tree.NumPoints() != 2 {
		t.Errorf("NumPoints = %d", tree.NumPoints())
	}
	if tree.Point(1) != (Point{1, 1}) {
		t.Errorf("Point(1) = %v", tree.Point(1))
	}
	if tree.Pos(0) == -1 || tree.Pos(1) == -1 {
		t.Errorf("both points should be on U_0 of a 2-point set")
	}
}

func TestTreeBranchStacksDisjointCover(t *testing.T) {
	// Every node is on U_0 or in exactly one branch stack D_i — the
	// convex hull tree is a partition of the nodes.
	rng := rand.New(rand.NewSource(7))
	n := 200
	pts := make([]Point, n)
	x := 0.0
	for i := range pts {
		x += 1 + rng.Float64()
		pts[i] = Point{X: x, Y: rng.NormFloat64()}
	}
	tree, err := NewTree(pts)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]int, n)
	for _, idx := range tree.HullLeftToRight() {
		seen[idx]++
	}
	for i := 0; i < n; i++ {
		for _, idx := range tree.d[i] {
			seen[idx]++
		}
	}
	for i, c := range seen {
		if c != 1 {
			t.Errorf("node %d appears %d times across U_0 and branches, want exactly 1", i, c)
		}
	}
}
