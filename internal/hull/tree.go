package hull

import "fmt"

// Tree is the convex hull tree of Algorithm 4.1. Given points
// Q_0 … Q_{n−1} sorted by strictly increasing X, the preparatory phase
// (NewTree) computes, in O(n) total time, the branch stacks D_i holding
// the nodes that belong to U_{i+1} (the upper hull of {Q_{i+1}, …,
// Q_{n−1}}) but not to U_i. Afterwards the stack S holds U_0, and the
// restoration phase (Advance) transforms S from U_cur to U_{cur+1} in
// amortized O(1): pop Q_cur, push back D_cur.
//
// The stack is exposed positionally for the tangent searches of
// Algorithm 4.2: position StackLen()−1 is the top (the leftmost hull
// node Q_cur), position 0 the bottom (the rightmost node Q_{n−1});
// walking down the stack visits the hull clockwise (left to right).
type Tree struct {
	pts   []Point
	stack []int
	// Branch stacks D_i. Every node is popped at most once during the
	// preparatory phase and all pops for step i are contiguous, so the
	// branches are slices of one shared arena — the whole tree costs
	// four allocations regardless of size.
	d    [][]int
	dBuf []int
	pos  []int
	cur  int
}

// NewTree runs the preparatory phase over pts, which must be sorted by
// strictly increasing X (cumulative bucket sizes guarantee this). After
// construction the stack holds U_0.
func NewTree(pts []Point) (*Tree, error) {
	t := &Tree{}
	if err := t.Init(pts); err != nil {
		return nil, err
	}
	return t, nil
}

// Init (re)runs the preparatory phase over pts, reusing the tree's
// backing storage when capacities allow. Callers that solve many small
// hull problems back to back — the 2-D rectangle sweep runs one per row
// pair — keep one Tree per worker and Init it per problem instead of
// paying NewTree's allocations every time. The computation is identical
// to NewTree's.
func (t *Tree) Init(pts []Point) error {
	n := len(pts)
	if n == 0 {
		return fmt.Errorf("hull: no points")
	}
	for i := 1; i < n; i++ {
		if pts[i].X <= pts[i-1].X {
			return fmt.Errorf("hull: X not strictly increasing at %d (%g after %g)", i, pts[i].X, pts[i-1].X)
		}
	}
	t.pts = pts
	if cap(t.stack) < n {
		t.stack = make([]int, 0, n)
	} else {
		t.stack = t.stack[:0]
	}
	if cap(t.dBuf) < n {
		t.dBuf = make([]int, 0, n)
	} else {
		t.dBuf = t.dBuf[:0]
	}
	if cap(t.d) >= n {
		t.d = t.d[:n]
	} else {
		t.d = make([][]int, n)
	}
	if cap(t.pos) >= n {
		t.pos = t.pos[:n]
	} else {
		t.pos = make([]int, n)
	}
	for i := range t.pos {
		t.pos[i] = -1
	}
	for i := n - 1; i >= 0; i-- {
		// Clockwise search: pop hull nodes that fall below the tangent
		// from Q_i, recording them on the branch stack D_i.
		start := len(t.dBuf)
		for len(t.stack) >= 2 {
			top := t.stack[len(t.stack)-1]
			second := t.stack[len(t.stack)-2]
			if CompareSlopes(t.pts[i], t.pts[top], t.pts[second]) <= 0 {
				t.popToBuf()
			} else {
				break
			}
		}
		t.d[i] = t.dBuf[start:len(t.dBuf):len(t.dBuf)]
		t.push(i)
	}
	t.cur = 0
	return nil
}

// push puts node on top of S.
func (t *Tree) push(node int) {
	t.stack = append(t.stack, node)
	t.pos[node] = len(t.stack) - 1
}

// popToBuf removes the top of S and records it on the branch arena.
func (t *Tree) popToBuf() {
	top := t.stack[len(t.stack)-1]
	t.stack = t.stack[:len(t.stack)-1]
	t.pos[top] = -1
	t.dBuf = append(t.dBuf, top)
}

// Cur returns the index m such that the stack currently holds U_m.
func (t *Tree) Cur() int { return t.cur }

// NumPoints returns the number of points the tree was built over.
func (t *Tree) NumPoints() int { return len(t.pts) }

// Advance performs one restoration step, turning U_cur into U_{cur+1}.
// It panics if the tree is already at the last suffix.
func (t *Tree) Advance() {
	if t.cur >= len(t.pts)-1 {
		panic("hull: Advance past the last suffix hull")
	}
	// Pop Q_cur …
	top := t.stack[len(t.stack)-1]
	if top != t.cur {
		panic(fmt.Sprintf("hull: stack top %d is not Q_%d; tree corrupted", top, t.cur))
	}
	t.stack = t.stack[:len(t.stack)-1]
	t.pos[top] = -1
	// … and push back the branch D_cur in top-to-bottom order (reverse
	// of pop order), which restores U_{cur+1} with Q_{cur+1} on top.
	branch := t.d[t.cur]
	for j := len(branch) - 1; j >= 0; j-- {
		t.push(branch[j])
	}
	t.cur++
}

// AdvanceTo advances until the stack holds U_m. m must be >= Cur() and
// < NumPoints().
func (t *Tree) AdvanceTo(m int) {
	if m < t.cur {
		panic(fmt.Sprintf("hull: cannot rewind from U_%d to U_%d", t.cur, m))
	}
	for t.cur < m {
		t.Advance()
	}
}

// StackLen returns the number of nodes on the current hull.
func (t *Tree) StackLen() int { return len(t.stack) }

// NodeAt returns the point index stored at stack position p
// (0 = bottom/rightmost, StackLen()−1 = top/leftmost).
func (t *Tree) NodeAt(p int) int { return t.stack[p] }

// Pos returns the stack position of node, or −1 if the node is not on
// the current hull.
func (t *Tree) Pos(node int) int { return t.pos[node] }

// Point returns the coordinates of point index i.
func (t *Tree) Point(i int) Point { return t.pts[i] }

// HullLeftToRight returns the current hull's point indices from the
// leftmost node (Q_cur) to the rightmost (Q_{n−1}). Intended for tests
// and debugging; allocates a fresh slice.
func (t *Tree) HullLeftToRight() []int {
	out := make([]int, len(t.stack))
	for i := range out {
		out[i] = t.stack[len(t.stack)-1-i]
	}
	return out
}
