// Package hull implements the computational-geometry machinery behind
// the paper's optimized-confidence algorithm: 2-D points, exact-ish
// slope comparisons via cross products, a reference monotone-chain
// upper hull, and the convex hull tree of Algorithm 4.1 (online
// maintenance of the upper hulls U_m of point suffixes, with the stack
// S and branch stacks D_i exactly as in the paper).
package hull

// Point is a point in the plane. In the optimized-rule setting,
// X-coordinates are cumulative bucket sizes (strictly increasing, since
// every bucket holds at least one tuple) and Y-coordinates are
// cumulative hit counts or value sums.
type Point struct {
	X, Y float64
}

// Sub returns p − q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Cross returns the z-component of (b−a) × (c−a): positive when the
// turn a→b→c is counterclockwise, negative when clockwise, zero when
// collinear.
func Cross(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// CompareSlopes compares slope(o→a) with slope(o→b) without division,
// assuming a.X > o.X and b.X > o.X. It returns −1, 0, or +1.
func CompareSlopes(o, a, b Point) int {
	// slope(o,a) < slope(o,b)  ⇔  (a.Y−o.Y)(b.X−o.X) < (b.Y−o.Y)(a.X−o.X)
	lhs := (a.Y - o.Y) * (b.X - o.X)
	rhs := (b.Y - o.Y) * (a.X - o.X)
	switch {
	case lhs < rhs:
		return -1
	case lhs > rhs:
		return 1
	default:
		return 0
	}
}

// AboveOrOn reports whether p lies on or above the line through a and
// b, where a.X < b.X.
func AboveOrOn(p, a, b Point) bool {
	// Line direction a→b; p above means the turn a→b→p is clockwise for
	// screen coordinates but counterclockwise in standard orientation:
	// Cross(a, b, p) >= 0 puts p on the left of a→b, which for a
	// left-to-right segment is above.
	return Cross(a, b, p) >= 0
}

// Slope returns (b.Y−a.Y)/(b.X−a.X). Callers must ensure b.X != a.X;
// with strictly increasing cumulative sizes this always holds.
func Slope(a, b Point) float64 {
	return (b.Y - a.Y) / (b.X - a.X)
}
