package hull

import (
	"math/rand"
	"testing"
)

func benchPoints(n int) []Point {
	rng := rand.New(rand.NewSource(1))
	pts := make([]Point, n)
	x := 0.0
	for i := range pts {
		x += 1 + rng.Float64()
		pts[i] = Point{X: x, Y: rng.NormFloat64() * 100}
	}
	return pts
}

func BenchmarkNewTree10k(b *testing.B) {
	pts := benchPoints(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewTree(pts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTreeFullRestoration10k(b *testing.B) {
	pts := benchPoints(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree, err := NewTree(pts)
		if err != nil {
			b.Fatal(err)
		}
		tree.AdvanceTo(len(pts) - 1)
	}
}

func BenchmarkUpperHull10k(b *testing.B) {
	pts := benchPoints(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		UpperHull(pts)
	}
}
