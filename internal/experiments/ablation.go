package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"optrule/internal/bucketing"
	"optrule/internal/core"
	"optrule/internal/datagen"
	"optrule/internal/hull"
	"optrule/internal/stats"
)

// Ablations quantify the paper's individual design choices:
//
//  1. the sample factor S/M (why 40 and not 5 or 80),
//  2. the convex hull tree + amortized tangents of Algorithms 4.1/4.2
//     (versus recomputing each suffix hull from scratch), and
//  3. the bucket count M (accuracy/time trade-off behind Table I).

// SampleFactorRow reports bucketing quality and cost for one S/M.
type SampleFactorRow struct {
	Factor       int
	Seconds      float64
	MaxDeviation float64 // worst bucket's relative depth deviation
}

// SampleFactorResult is the S/M ablation.
type SampleFactorResult struct {
	Tuples  int
	Buckets int
	Rows    []SampleFactorRow
}

// AblateSampleFactor buckets an n-tuple uniform column into m buckets
// at several sample factors and reports the worst depth deviation — the
// empirical counterpart of Figure 1's analysis.
func AblateSampleFactor(n, m int, factors []int, seed int64) (SampleFactorResult, error) {
	if factors == nil {
		factors = []int{5, 10, 20, 40, 80}
	}
	res := SampleFactorResult{Tuples: n, Buckets: m}
	shape, err := datagen.NewPerfShape(1, 0, nil)
	if err != nil {
		return res, err
	}
	rel, err := datagen.Materialize(shape, n, seed)
	if err != nil {
		return res, err
	}
	for _, f := range factors {
		rng := rand.New(rand.NewSource(seed + int64(f)))
		start := time.Now()
		bounds, err := bucketing.SampledBoundaries(rel, 0, m, f, rng)
		if err != nil {
			return res, err
		}
		counts, err := bucketing.Count(rel, 0, bounds, bucketing.Options{})
		if err != nil {
			return res, err
		}
		sec := time.Since(start).Seconds()
		res.Rows = append(res.Rows, SampleFactorRow{
			Factor:       f,
			Seconds:      sec,
			MaxDeviation: stats.DepthDeviation(counts.U),
		})
	}
	return res, nil
}

// Print writes the sample-factor ablation.
func (r SampleFactorResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Ablation: sample factor S/M (%d tuples, M=%d)\n", r.Tuples, r.Buckets)
	fmt.Fprintf(w, "%6s  %12s  %22s\n", "S/M", "seconds", "worst depth deviation")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%6d  %12.3f  %21.1f%%\n", row.Factor, row.Seconds, 100*row.MaxDeviation)
	}
}

// rescanOptimalSlopePair solves the optimized-confidence problem
// WITHOUT the hull tree: for every anchor it rebuilds the suffix hull
// with a monotone chain and scans it for the tangent. O(M²) worst case
// — this is what Algorithm 4.1's tree and Algorithm 4.2's amortized
// tangent searches save. Results must equal OptimalSlopePair.
func rescanOptimalSlopePair(u []int, v []float64, minSupCount float64) (core.Pair, bool) {
	m := len(u)
	pu := make([]int, m+1)
	pv := make([]float64, m+1)
	for i := 0; i < m; i++ {
		pu[i+1] = pu[i] + u[i]
		pv[i+1] = pv[i] + v[i]
	}
	pts := make([]hull.Point, m+1)
	for k := 0; k <= m; k++ {
		pts[k] = hull.Point{X: float64(pu[k]), Y: pv[k]}
	}
	bs, bt := -1, -1
	better := func(s1, t1, s2, t2 int) bool {
		du1 := float64(pu[t1+1] - pu[s1])
		dv1 := pv[t1+1] - pv[s1]
		du2 := float64(pu[t2+1] - pu[s2])
		dv2 := pv[t2+1] - pv[s2]
		if dv1*du2 != dv2*du1 {
			return dv1*du2 > dv2*du1
		}
		return du1 > du2
	}
	r := 0
	for anchor := 0; anchor < m; anchor++ {
		if r < anchor+1 {
			r = anchor + 1
		}
		for r <= m && float64(pu[r]-pu[anchor]) < minSupCount {
			r++
		}
		if r > m {
			break
		}
		// Rebuild the suffix hull from scratch — the ablated cost.
		hh := hull.UpperHull(pts[r:])
		best := hh[0] + r
		for _, rel := range hh[1:] {
			node := rel + r
			if hull.CompareSlopes(pts[anchor], pts[node], pts[best]) >= 0 {
				best = node
			}
		}
		if bs < 0 || better(anchor, best-1, bs, bt) {
			bs, bt = anchor, best-1
		}
	}
	if bs < 0 {
		return core.Pair{}, false
	}
	count := pu[bt+1] - pu[bs]
	sumV := pv[bt+1] - pv[bs]
	return core.Pair{S: bs, T: bt, Count: count, SumV: sumV, Conf: sumV / float64(count)}, true
}

// HullTreeRow compares the hull-tree algorithm with the rescan ablation
// at one bucket count.
type HullTreeRow struct {
	Buckets       int
	TreeSeconds   float64
	RescanSeconds float64
	Agree         bool
}

// HullTreeResult is the hull-tree ablation.
type HullTreeResult struct {
	Rows []HullTreeRow
}

// AblateHullTree times OptimalSlopePair against the rescan variant.
func AblateHullTree(ms []int, seed int64) (HullTreeResult, error) {
	if ms == nil {
		ms = []int{100, 1000, 10000, 50000}
	}
	var res HullTreeResult
	rng := rand.New(rand.NewSource(seed))
	for _, m := range ms {
		u, v := ruleBuckets(m, rng)
		total := 0
		for _, x := range u {
			total += x
		}
		minSup := 0.05 * float64(total)
		start := time.Now()
		fast, okF, err := core.OptimalSlopePair(u, v, minSup)
		if err != nil {
			return res, err
		}
		treeSec := time.Since(start).Seconds()
		start = time.Now()
		slow, okS := rescanOptimalSlopePair(u, v, minSup)
		rescanSec := time.Since(start).Seconds()
		agree := okF == okS && (!okF || (fast.Conf == slow.Conf && fast.Count == slow.Count))
		res.Rows = append(res.Rows, HullTreeRow{
			Buckets: m, TreeSeconds: treeSec, RescanSeconds: rescanSec, Agree: agree,
		})
	}
	return res, nil
}

// Print writes the hull-tree ablation.
func (r HullTreeResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Ablation: convex hull tree (Alg 4.1/4.2) vs per-anchor hull rebuild")
	fmt.Fprintf(w, "%10s  %14s  %14s  %10s  %6s\n", "buckets", "hull tree (s)", "rebuild (s)", "speedup", "agree")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%10d  %14.6f  %14.6f  %9.1fx  %6v\n",
			row.Buckets, row.TreeSeconds, row.RescanSeconds, row.RescanSeconds/row.TreeSeconds, row.Agree)
	}
}

// BucketCountRow reports mining accuracy at one bucket count, measured
// against the exact (finest-bucket) optimum.
type BucketCountRow struct {
	Buckets      int
	Seconds      float64
	SupportError float64 // |approx − exact| / exact
	ConfError    float64
}

// BucketCountResult is the bucket-count accuracy/cost ablation — the
// empirical companion of Table I on realistic (randomly planted) data.
type BucketCountResult struct {
	Tuples int
	Rows   []BucketCountRow
}

// AblateBucketCount mines the planted bank rule at several bucket
// counts and reports the relative error against the exact optimum
// computed from finest buckets over the raw values.
func AblateBucketCount(n int, ms []int, seed int64) (BucketCountResult, error) {
	if ms == nil {
		ms = []int{10, 50, 100, 500, 1000, 5000}
	}
	res := BucketCountResult{Tuples: n}
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		return res, err
	}
	rel, err := datagen.Materialize(bank, n, seed)
	if err != nil {
		return res, err
	}
	theta := 0.55

	// Exact optimum: one finest bucket per distinct Balance value.
	bal, err := rel.NumericColumn(0)
	if err != nil {
		return res, err
	}
	loan, err := rel.BoolColumn(3)
	if err != nil {
		return res, err
	}
	type pairVal struct {
		x   float64
		hit bool
	}
	pairs := make([]pairVal, n)
	for i := range pairs {
		pairs[i] = pairVal{bal[i], loan[i]}
	}
	// Sort by value and collapse ties into finest buckets.
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].x < pairs[j].x })
	var exactU []int
	var exactV []float64
	for i := 0; i < n; {
		j := i
		uu, vv := 0, 0.0
		for j < n && pairs[j].x == pairs[i].x {
			uu++
			if pairs[j].hit {
				vv++
			}
			j++
		}
		exactU = append(exactU, uu)
		exactV = append(exactV, vv)
		i = j
	}
	exact, okE, err := core.OptimalSupportPair(exactU, exactV, theta)
	if err != nil || !okE {
		return res, fmt.Errorf("experiments: exact optimum failed: ok=%v err=%v", okE, err)
	}
	exactSupport := float64(exact.Count) / float64(n)

	for _, m := range ms {
		rng := rand.New(rand.NewSource(seed + int64(m)))
		start := time.Now()
		bounds, err := bucketing.SampledBoundaries(rel, 0, m, 40, rng)
		if err != nil {
			return res, err
		}
		counts, err := bucketing.Count(rel, 0, bounds, bucketing.Options{
			Bools: []bucketing.BoolCond{{Attr: 3, Want: true}},
		})
		if err != nil {
			return res, err
		}
		compact, _ := counts.Compact()
		v := make([]float64, compact.M)
		for i, c := range compact.V[0] {
			v[i] = float64(c)
		}
		approx, okA, err := core.OptimalSupportPair(compact.U, v, theta)
		sec := time.Since(start).Seconds()
		if err != nil {
			return res, err
		}
		row := BucketCountRow{Buckets: m, Seconds: sec, SupportError: 1, ConfError: 1}
		if okA {
			approxSupport := float64(approx.Count) / float64(n)
			row.SupportError = abs(approxSupport-exactSupport) / exactSupport
			row.ConfError = abs(approx.Conf-exact.Conf) / exact.Conf
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Print writes the bucket-count ablation.
func (r BucketCountResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Ablation: bucket count M vs accuracy (%d tuples, optimized-support rule, θ=55%%)\n", r.Tuples)
	fmt.Fprintf(w, "%10s  %12s  %16s  %16s\n", "buckets", "seconds", "support error", "confidence error")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%10d  %12.3f  %15.2f%%  %15.2f%%\n",
			row.Buckets, row.Seconds, 100*row.SupportError, 100*row.ConfError)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
