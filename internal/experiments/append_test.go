package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestAppendExperiment pins the ingest contract at experiment scale:
// within-budget appends fold tail-only statistics (the experiment
// hard-fails internally on answer deviation or a >5% byte ratio), and
// the over-budget step re-samples boundaries instead of folding.
func TestAppendExperiment(t *testing.T) {
	res, err := Append(20000, []float64{0.001, 0.01, 0.10}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 3 {
		t.Fatalf("got %d steps, want 3", len(res.Steps))
	}
	for i, s := range res.Steps[:2] {
		if s.Resamples != 0 {
			t.Errorf("step %d (%.2g): re-sampled %d boundary sets inside the budget", i, s.Fraction, s.Resamples)
		}
		if s.EntriesFolded == 0 {
			t.Errorf("step %d (%.2g): no cache entries folded", i, s.Fraction)
		}
		if s.TailRows != int64(s.AppendedRows) {
			t.Errorf("step %d: delta scanned %d rows, appended %d", i, s.TailRows, s.AppendedRows)
		}
		if s.DeltaBytes*20 > s.ColdBytes {
			t.Errorf("step %d: delta read %d bytes, cold %d — over the 5%% ceiling", i, s.DeltaBytes, s.ColdBytes)
		}
	}
	last := res.Steps[2]
	if last.Resamples == 0 {
		t.Errorf("10%% append (cumulative ~11%%) did not trip the bucket-error budget")
	}
	if last.EntriesFolded != 0 {
		t.Errorf("over-budget step folded %d entries; they should drop pending re-sampled boundaries", last.EntriesFolded)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "resamples") {
		t.Errorf("print output missing the telemetry columns:\n%s", buf.String())
	}
}
