package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"optrule/internal/miner"
	"optrule/internal/relation"
)

// The v3scan experiment: what do per-block compression and zone maps
// buy over the plain column-major v2 format? The same tuple stream is
// written in both formats; an unfiltered MineAll measures pure
// decode-vs-raw scan cost and the compression ratio of the counted-I/O
// model, and a filtered targeted query over a clustered Boolean column
// measures zone-map pruning — the v3 reader proves most block groups
// filter-free from their directory entries and never reads them. The
// experiment hard-fails if either format mines different rules.

// V3ScanResult is the compressed-format experiment's structured result.
type V3ScanResult struct {
	Tuples    int
	GroupRows int
	// File sizes on disk: the compression ratio at rest.
	V2FileBytes int64
	V3FileBytes int64
	// Unfiltered MineAll: every block decoded, no pruning.
	UnfilteredV2Bytes   int64
	UnfilteredV3Bytes   int64
	UnfilteredV2Seconds float64
	UnfilteredV3Seconds float64
	Rules               int
	// Filtered targeted query over the clustered Boolean: zone maps
	// refute the filter for every group outside the cluster band.
	FilteredV2Bytes   int64
	FilteredV3Bytes   int64
	FilteredV2Seconds float64
	FilteredV3Seconds float64
}

// writeClustered writes n tuples in the given format: X drives a
// planted (X ∈ band) ⇒ (C=yes) association so MineAll finds rules, T
// is an uncorrelated target, and F is a Boolean that is true only in
// the middle fifth of the row order — the clustered column whose zone
// maps make pruning possible. Both numerics are integer-valued (like
// the bank columns), which is what the v3 delta bit-packer compresses.
func writeClustered(path string, n, groupRows int, format int, seed int64) (*relation.DiskRelation, error) {
	schema := relation.Schema{
		{Name: "X", Kind: relation.Numeric},
		{Name: "T", Kind: relation.Numeric},
		{Name: "F", Kind: relation.Boolean},
		{Name: "C", Kind: relation.Boolean},
	}
	var dw *relation.DiskWriter
	var err error
	if format == relation.DiskFormatV3 {
		dw, err = relation.NewDiskWriterV3(path, schema, groupRows)
	} else {
		dw, err = relation.NewDiskWriterV2(path, schema, groupRows)
	}
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	lo, hi := 2*n/5, 3*n/5
	for i := 0; i < n; i++ {
		x := math.Round(rng.NormFloat64() * 1000)
		p := 0.1
		if x >= -300 && x <= 300 {
			p = 0.7
		}
		err := dw.Append(
			[]float64{x, math.Round(rng.Float64() * 100)},
			[]bool{i >= lo && i < hi, rng.Float64() < p},
		)
		if err != nil {
			dw.Discard()
			return nil, err
		}
	}
	if err := dw.Close(); err != nil {
		return nil, err
	}
	return relation.OpenDisk(path)
}

// V3Scan writes the clustered data set in the v2 and v3 formats and
// measures the unfiltered and the zone-map-prunable scan on each.
func V3Scan(n, groupRows int, seed int64) (V3ScanResult, error) {
	res := V3ScanResult{Tuples: n, GroupRows: groupRows}
	dir, err := os.MkdirTemp("", "optrule-v3scan")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	v2Path := filepath.Join(dir, "clustered_v2.opr")
	v3Path := filepath.Join(dir, "clustered_v3.opr")
	v2, err := writeClustered(v2Path, n, groupRows, relation.DiskFormatV2, seed)
	if err != nil {
		return res, err
	}
	defer v2.Close()
	v3, err := writeClustered(v3Path, n, groupRows, relation.DiskFormatV3, seed)
	if err != nil {
		return res, err
	}
	defer v3.Close()
	for _, p := range []struct {
		path string
		dst  *int64
	}{{v2Path, &res.V2FileBytes}, {v3Path, &res.V3FileBytes}} {
		st, err := os.Stat(p.path)
		if err != nil {
			return res, err
		}
		*p.dst = st.Size()
	}

	cfg := miner.Config{Buckets: 500, Seed: seed}
	mineAll := func(dr *relation.DiskRelation) (*miner.Result, int64, float64, error) {
		dr.ResetBytesRead()
		start := time.Now()
		r, err := miner.MineAll(dr, cfg)
		return r, dr.BytesRead(), time.Since(start).Seconds(), err
	}
	r2, b2, s2, err := mineAll(v2)
	if err != nil {
		return res, err
	}
	r3, b3, s3, err := mineAll(v3)
	if err != nil {
		return res, err
	}
	res.UnfilteredV2Bytes, res.UnfilteredV2Seconds = b2, s2
	res.UnfilteredV3Bytes, res.UnfilteredV3Seconds = b3, s3
	res.Rules = len(r2.Rules)
	if len(r2.Rules) == 0 {
		return res, fmt.Errorf("v3scan: mined no rules; the comparison is vacuous")
	}
	if len(r2.Rules) != len(r3.Rules) {
		return res, fmt.Errorf("v3scan: v2 mined %d rules, v3 mined %d", len(r2.Rules), len(r3.Rules))
	}
	for i := range r2.Rules {
		if r2.Rules[i] != r3.Rules[i] {
			return res, fmt.Errorf("v3scan: rule %d deviates between formats:\n  v2: %v\n  v3: %v",
				i, r2.Rules[i], r3.Rules[i])
		}
	}

	// The targeted query conditions on the clustered F: only the middle
	// fifth of the block groups can contain matching rows, so the v3
	// zone maps prune roughly 80% of the relation.
	filtered := func(dr *relation.DiskRelation) ([]miner.Answer, int64, float64, error) {
		s, err := miner.NewSession(dr, cfg)
		if err != nil {
			return nil, 0, 0, err
		}
		dr.ResetBytesRead()
		start := time.Now()
		answers, err := s.ExecuteBatch([]miner.Query{{
			Op: miner.OpRules, Numeric: "X", Objective: "C", ObjectiveValue: true,
			Conditions: []miner.Condition{{Attr: "F", Value: true}},
		}})
		return answers, dr.BytesRead(), time.Since(start).Seconds(), err
	}
	a2, fb2, fs2, err := filtered(v2)
	if err != nil {
		return res, err
	}
	a3, fb3, fs3, err := filtered(v3)
	if err != nil {
		return res, err
	}
	res.FilteredV2Bytes, res.FilteredV2Seconds = fb2, fs2
	res.FilteredV3Bytes, res.FilteredV3Seconds = fb3, fs3
	if !answersEqual(a2, a3) {
		return res, fmt.Errorf("v3scan: filtered answers deviate between formats")
	}
	if res.FilteredV3Bytes >= res.FilteredV2Bytes {
		return res, fmt.Errorf("v3scan: filtered v3 scan read %d bytes, v2 read %d; zone maps pruned nothing",
			res.FilteredV3Bytes, res.FilteredV2Bytes)
	}
	return res, nil
}

// Print writes the compressed-format comparison.
func (r V3ScanResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Compressed v3 format: %d tuples, block groups of %d rows, %d rules mined identically\n",
		r.Tuples, r.GroupRows, r.Rules)
	fmt.Fprintf(w, "file size: v2 %d B, v3 %d B (%.2fx smaller)\n",
		r.V2FileBytes, r.V3FileBytes, float64(r.V2FileBytes)/float64(r.V3FileBytes))
	fmt.Fprintf(w, "%22s  %14s  %14s  %8s  %10s  %10s\n",
		"scan", "v2 bytes", "v3 bytes", "byte rx", "v2 (s)", "v3 (s)")
	fmt.Fprintf(w, "%22s  %14d  %14d  %7.1fx  %10.3f  %10.3f\n",
		"unfiltered MineAll", r.UnfilteredV2Bytes, r.UnfilteredV3Bytes,
		float64(r.UnfilteredV2Bytes)/float64(r.UnfilteredV3Bytes),
		r.UnfilteredV2Seconds, r.UnfilteredV3Seconds)
	fmt.Fprintf(w, "%22s  %14d  %14d  %7.1fx  %10.3f  %10.3f\n",
		"filtered (zone maps)", r.FilteredV2Bytes, r.FilteredV3Bytes,
		float64(r.FilteredV2Bytes)/float64(r.FilteredV3Bytes),
		r.FilteredV2Seconds, r.FilteredV3Seconds)
}
