package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestV3ScanWins runs the compressed-format experiment at a small
// scale and pins its acceptance shape: v3 must read strictly fewer
// counted bytes than v2 on both the unfiltered and the filtered scan,
// and the file itself must be smaller. Rule identity is enforced
// inside V3Scan (it errors on any deviation).
func TestV3ScanWins(t *testing.T) {
	res, err := V3Scan(40000, 1<<12, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rules == 0 {
		t.Fatalf("no rules mined; the experiment is vacuous")
	}
	if res.V3FileBytes >= res.V2FileBytes {
		t.Errorf("v3 file is %d bytes, v2 is %d; compression saved nothing",
			res.V3FileBytes, res.V2FileBytes)
	}
	if res.UnfilteredV3Bytes >= res.UnfilteredV2Bytes {
		t.Errorf("unfiltered v3 scan read %d bytes, v2 read %d",
			res.UnfilteredV3Bytes, res.UnfilteredV2Bytes)
	}
	if res.FilteredV3Bytes >= res.FilteredV2Bytes {
		t.Errorf("filtered v3 scan read %d bytes, v2 read %d",
			res.FilteredV3Bytes, res.FilteredV2Bytes)
	}
	// Zone maps should prune far more than compression alone saves: the
	// filtered byte ratio must beat the unfiltered one.
	unf := float64(res.UnfilteredV2Bytes) / float64(res.UnfilteredV3Bytes)
	fil := float64(res.FilteredV2Bytes) / float64(res.FilteredV3Bytes)
	if fil <= unf {
		t.Errorf("filtered byte ratio %.2fx does not beat unfiltered %.2fx; zone maps pruned nothing",
			fil, unf)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Compressed v3 format") {
		t.Errorf("print output malformed: %s", buf.String())
	}
}
