// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 6 plus the analytic Figure 1 and
// Table I). Each experiment returns structured rows and can print
// itself in the paper's format; cmd/optbench and the repository-root
// benchmarks are thin wrappers around this package.
//
// Scale note: the paper ran on a 1996-era 133 MHz PowerPC with data on
// an IDE disk. The default sizes here are chosen so the full suite
// finishes in minutes on a commodity machine while preserving the
// figures' *shapes* (who wins, by what factor, and the linear growth);
// the Full option restores paper-scale sizes.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"optrule/internal/bucketing"
	"optrule/internal/core"
	"optrule/internal/datagen"
	"optrule/internal/stats"
)

// Fig1Row is one point of Figure 1: the probability p_e that a
// bucket's sample count deviates by >= 50% from its expectation, as a
// function of the samples-per-bucket ratio S/M.
type Fig1Row struct {
	Ratio int       // S/M
	PE    []float64 // one value per M in Fig1 Ms
}

// Fig1Result reproduces Figure 1.
type Fig1Result struct {
	Delta  float64
	Ms     []int
	Rows   []Fig1Row
	Chosen int // the S/M the paper selects (first ratio with p_e < 0.3%)
}

// Fig1 computes the deviation-probability curves for δ=0.5 and
// M ∈ {5, 10, 10000}, for S/M = 1 … maxRatio.
func Fig1(maxRatio int) Fig1Result {
	res := Fig1Result{Delta: 0.5, Ms: []int{5, 10, 10000}}
	if maxRatio < 1 {
		maxRatio = 100
	}
	for r := 1; r <= maxRatio; r++ {
		row := Fig1Row{Ratio: r}
		for _, m := range res.Ms {
			row.PE = append(row.PE, stats.BucketDeviationProbability(r*m, m, res.Delta))
		}
		res.Rows = append(res.Rows, row)
	}
	// The paper reads the operating point off the most demanding curve
	// (largest M): the smallest S/M with p_e below 0.3% for M = 10⁴.
	res.Chosen = stats.SampleSizePerBucketForTarget(res.Ms[len(res.Ms)-1], res.Delta, 0.003, maxRatio)
	return res
}

// Print writes the figure as a table.
func (r Fig1Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 1: p_e = Pr(|X - S/M| >= %.1f S/M), X ~ B(S, 1/M)\n", r.Delta)
	fmt.Fprintf(w, "%8s", "S/M")
	for _, m := range r.Ms {
		fmt.Fprintf(w, "  M=%-8d", m)
	}
	fmt.Fprintln(w)
	for _, row := range r.Rows {
		// Print a sparse set of ratios like the figure's x-axis.
		if row.Ratio != 1 && row.Ratio%10 != 0 && row.Ratio != r.Chosen {
			continue
		}
		fmt.Fprintf(w, "%8d", row.Ratio)
		for _, pe := range row.PE {
			fmt.Fprintf(w, "  %-10.4g", pe)
		}
		if row.Ratio == r.Chosen {
			fmt.Fprintf(w, "  <- paper's operating point (p_e < 0.3%%)")
		}
		fmt.Fprintln(w)
	}
}

// Table1Row is one row of Table I: the worst-case interval the
// approximate rule's support and confidence can fall in, for an optimal
// rule with support 30% and confidence 70%, plus the empirically
// measured approximation on a planted dataset.
type Table1Row struct {
	Buckets                       int
	SupportLo, SupportHi          float64 // analytic bound
	ConfLo, ConfHi                float64 // analytic bound
	MeasuredSupport, MeasuredConf float64 // from the planted dataset
}

// Table1Result reproduces Table I (support_opt = 30%, conf_opt = 70%).
type Table1Result struct {
	SupportOpt, ConfOpt float64
	Rows                []Table1Row
}

// Table1 computes the analytic error-bound intervals of Table I and
// measures the actual approximation error on a deterministic planted
// dataset of n tuples whose optimal range has exactly support 30% and
// confidence 70%.
func Table1(n int) Table1Result {
	res := Table1Result{SupportOpt: 0.30, ConfOpt: 0.70}
	if n <= 0 {
		n = 100000
	}
	// Deterministic planted data: X = 0 … n−1; the block
	// [0.35n, 0.65n) is "inside" with exactly 7 of 10 tuples meeting C;
	// outside exactly 2 of 10 meet C. The optimized-support rule at
	// θ = 0.7 is exactly the inside block.
	lo, hi := int(0.35*float64(n)), int(0.65*float64(n))
	values := make([]float64, n)
	hits := make([]bool, n)
	for i := 0; i < n; i++ {
		values[i] = float64(i)
		if i >= lo && i < hi {
			hits[i] = i%10 < 7
		} else {
			hits[i] = i%10 < 2
		}
	}
	for _, m := range []int{10, 50, 100, 500, 1000} {
		row := Table1Row{Buckets: m}
		row.SupportLo, row.SupportHi = core.ApproxSupportInterval(m, res.SupportOpt)
		row.ConfLo, row.ConfHi = core.ApproxConfidenceInterval(m, res.SupportOpt, res.ConfOpt)

		// Equi-depth buckets over the uniform grid are just equal slices.
		u := make([]int, m)
		v := make([]float64, m)
		for i := 0; i < n; i++ {
			b := i * m / n
			u[b]++
			if hits[i] {
				v[b]++
			}
		}
		p, ok, err := core.OptimalSupportPair(u, v, res.ConfOpt)
		if err != nil {
			panic(err)
		}
		if ok {
			row.MeasuredSupport = float64(p.Count) / float64(n)
			row.MeasuredConf = p.Conf
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Print writes the table in the paper's layout with the measured
// columns appended.
func (r Table1Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Table I: error range of approximation (support_opt=%.0f%%, conf_opt=%.0f%%)\n",
		100*r.SupportOpt, 100*r.ConfOpt)
	fmt.Fprintf(w, "%12s  %-17s  %-17s  %-10s  %-10s\n",
		"No. buckets", "support_app bound", "conf_app bound", "meas. supp", "meas. conf")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%12d  %6.2f%% ... %5.2f%%  %6.2f%% ... %5.2f%%  %9.2f%%  %9.2f%%\n",
			row.Buckets,
			100*row.SupportLo, 100*row.SupportHi,
			100*row.ConfLo, 100*row.ConfHi,
			100*row.MeasuredSupport, 100*row.MeasuredConf)
	}
}

// Fig9Row is one data point of Figure 9: wall-clock seconds to bucket
// every numeric attribute of an (8 numeric + 8 Boolean)-attribute
// relation into 1000 buckets and count all Boolean attributes.
type Fig9Row struct {
	Tuples        int
	Alg31Seconds  float64
	NaiveSeconds  float64
	VSplitSeconds float64
}

// Fig9Result reproduces Figure 9.
type Fig9Result struct {
	Buckets int
	Rows    []Fig9Row
}

// Fig9 times the three bucketing pipelines over the given tuple counts
// (the paper sweeps 5·10⁵ … 5·10⁶). A nil sizes slice uses a scaled
// default.
func Fig9(sizes []int, seed int64) (Fig9Result, error) {
	if sizes == nil {
		sizes = []int{50000, 100000, 200000, 400000}
	}
	res := Fig9Result{Buckets: 1000}
	shape := datagen.PaperPerfShape()
	for _, n := range sizes {
		rel, err := datagen.Materialize(shape, n, seed)
		if err != nil {
			return res, err
		}
		row := Fig9Row{Tuples: n}
		start := time.Now()
		if _, err := bucketing.Algorithm31All(rel, res.Buckets, 40, seed+1); err != nil {
			return res, err
		}
		row.Alg31Seconds = time.Since(start).Seconds()
		start = time.Now()
		if _, err := bucketing.NaiveSortAll(rel, res.Buckets); err != nil {
			return res, err
		}
		row.NaiveSeconds = time.Since(start).Seconds()
		start = time.Now()
		if _, err := bucketing.VerticalSplitSortAll(rel, res.Buckets); err != nil {
			return res, err
		}
		row.VSplitSeconds = time.Since(start).Seconds()
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Print writes the timing rows and speedups.
func (r Fig9Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 9: bucketing performance (M=%d, 8 numeric + 8 boolean attrs)\n", r.Buckets)
	fmt.Fprintf(w, "%10s  %12s  %12s  %12s  %10s  %10s\n",
		"tuples", "alg3.1 (s)", "naive (s)", "vsplit (s)", "naive/31", "vsplit/31")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%10d  %12.3f  %12.3f  %12.3f  %9.1fx  %9.1fx\n",
			row.Tuples, row.Alg31Seconds, row.NaiveSeconds, row.VSplitSeconds,
			row.NaiveSeconds/row.Alg31Seconds, row.VSplitSeconds/row.Alg31Seconds)
	}
}

// FigRuleRow is one data point of Figures 10/11: time to find one
// optimized rule over M buckets, for the linear algorithm and the
// quadratic baseline.
type FigRuleRow struct {
	Buckets      int
	FastSeconds  float64
	NaiveSeconds float64 // 0 when skipped (too slow)
}

// FigRuleResult reproduces Figure 10 (confidence) or 11 (support).
type FigRuleResult struct {
	Name      string
	Threshold string
	Rows      []FigRuleRow
}

// ruleBuckets builds M random buckets resembling an equi-depth
// bucketing of N = 100·M tuples with a mid-range confidence profile.
func ruleBuckets(m int, rng *rand.Rand) (u []int, v []float64) {
	u = make([]int, m)
	v = make([]float64, m)
	for i := range u {
		u[i] = 90 + rng.Intn(21) // almost equi-depth around 100
		v[i] = float64(rng.Intn(u[i] + 1))
	}
	return u, v
}

// Fig10 times optimized-confidence rule finding (minimum support 5%)
// over bucket counts; naiveCap bounds the largest M the quadratic
// baseline is run at. A nil ms uses the paper's sweep shape scaled to
// 100 … 10⁶.
func Fig10(ms []int, naiveCap int, seed int64) FigRuleResult {
	if ms == nil {
		ms = []int{100, 1000, 10000, 100000, 1000000}
	}
	if naiveCap == 0 {
		naiveCap = 20000
	}
	res := FigRuleResult{Name: "Figure 10: optimized-confidence rules", Threshold: "min support 5%"}
	rng := rand.New(rand.NewSource(seed))
	for _, m := range ms {
		u, v := ruleBuckets(m, rng)
		total := 0
		for _, x := range u {
			total += x
		}
		minSup := 0.05 * float64(total)
		row := FigRuleRow{Buckets: m}
		start := time.Now()
		if _, _, err := core.OptimalSlopePair(u, v, minSup); err != nil {
			panic(err)
		}
		row.FastSeconds = time.Since(start).Seconds()
		if m <= naiveCap {
			start = time.Now()
			if _, _, err := core.NaiveOptimalSlopePair(u, v, minSup); err != nil {
				panic(err)
			}
			row.NaiveSeconds = time.Since(start).Seconds()
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Fig11 times optimized-support rule finding (minimum confidence 50%)
// over bucket counts, like Fig10.
func Fig11(ms []int, naiveCap int, seed int64) FigRuleResult {
	if ms == nil {
		ms = []int{100, 1000, 10000, 100000, 1000000}
	}
	if naiveCap == 0 {
		naiveCap = 20000
	}
	res := FigRuleResult{Name: "Figure 11: optimized-support rules", Threshold: "min confidence 50%"}
	rng := rand.New(rand.NewSource(seed))
	for _, m := range ms {
		u, v := ruleBuckets(m, rng)
		row := FigRuleRow{Buckets: m}
		start := time.Now()
		if _, _, err := core.OptimalSupportPair(u, v, 0.5); err != nil {
			panic(err)
		}
		row.FastSeconds = time.Since(start).Seconds()
		if m <= naiveCap {
			start = time.Now()
			if _, _, err := core.NaiveOptimalSupportPair(u, v, 0.5); err != nil {
				panic(err)
			}
			row.NaiveSeconds = time.Since(start).Seconds()
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Print writes the timing rows and speedups.
func (r FigRuleResult) Print(w io.Writer) {
	fmt.Fprintf(w, "%s (%s)\n", r.Name, r.Threshold)
	fmt.Fprintf(w, "%10s  %14s  %14s  %10s\n", "buckets", "linear (s)", "naive (s)", "speedup")
	for _, row := range r.Rows {
		if row.NaiveSeconds > 0 {
			fmt.Fprintf(w, "%10d  %14.6f  %14.6f  %9.1fx\n",
				row.Buckets, row.FastSeconds, row.NaiveSeconds, row.NaiveSeconds/row.FastSeconds)
		} else {
			fmt.Fprintf(w, "%10d  %14.6f  %14s  %10s\n", row.Buckets, row.FastSeconds, "(skipped)", "-")
		}
	}
}

// ParallelRow is one data point of the Section 3.3 scalability check.
type ParallelRow struct {
	PEs     int
	Seconds float64
	Speedup float64
}

// ParallelResult reports parallel-bucketing scalability.
type ParallelResult struct {
	Tuples  int
	Buckets int
	Rows    []ParallelRow
}

// Parallel measures Algorithm 3.2's counting scan with 1 … maxPEs
// goroutine processing elements over an n-tuple relation.
func Parallel(n, maxPEs int, seed int64) (ParallelResult, error) {
	if n <= 0 {
		n = 2000000
	}
	if maxPEs <= 0 {
		maxPEs = 8
	}
	res := ParallelResult{Tuples: n, Buckets: 1000}
	shape, err := datagen.NewPerfShape(1, 4, nil)
	if err != nil {
		return res, err
	}
	rel, err := datagen.Materialize(shape, n, seed)
	if err != nil {
		return res, err
	}
	rng := rand.New(rand.NewSource(seed + 1))
	bounds, err := bucketing.SampledBoundaries(rel, 0, res.Buckets, 40, rng)
	if err != nil {
		return res, err
	}
	s := rel.Schema()
	var opts bucketing.Options
	for _, b := range s.BooleanIndices() {
		opts.Bools = append(opts.Bools, bucketing.BoolCond{Attr: b, Want: true})
	}
	var base float64
	for pes := 1; pes <= maxPEs; pes *= 2 {
		start := time.Now()
		if _, err := bucketing.ParallelCount(rel, 0, bounds, opts, pes); err != nil {
			return res, err
		}
		sec := time.Since(start).Seconds()
		if pes == 1 {
			base = sec
		}
		res.Rows = append(res.Rows, ParallelRow{PEs: pes, Seconds: sec, Speedup: base / sec})
	}
	return res, nil
}

// Print writes the scalability rows.
func (r ParallelResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Section 3.3: parallel bucketing (%d tuples, M=%d)\n", r.Tuples, r.Buckets)
	fmt.Fprintf(w, "%6s  %12s  %10s\n", "PEs", "seconds", "speedup")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%6d  %12.3f  %9.2fx\n", row.PEs, row.Seconds, row.Speedup)
	}
}
