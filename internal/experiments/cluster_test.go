package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestClusterWins runs the prunable-layout experiment at a small scale
// and pins its acceptance shape: the clustered filtered query must
// read at least 2x fewer physical bytes (Cluster itself hard-fails
// otherwise), rules must exist and agree across layouts (also enforced
// inside Cluster), and every schedule must have delivered the same
// surviving rows. Wall-clock ordering is NOT asserted here — timing at
// unit-test scale is noise; BENCH_pr8.json records it at bench scale.
func TestClusterWins(t *testing.T) {
	res, err := Cluster(60000, 256, []int{1, 2, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rules == 0 {
		t.Fatalf("no rules mined; the experiment is vacuous")
	}
	if 2*res.ClusteredFilteredBytes > res.UnclusteredFilteredBytes {
		t.Errorf("clustered filtered query read %d bytes, unclustered %d; want at least 2x fewer",
			res.ClusteredFilteredBytes, res.UnclusteredFilteredBytes)
	}
	if res.MatchRows == 0 || res.MatchRows >= int64(res.Tuples) {
		t.Errorf("filtered scan delivered %d of %d rows; the band filter is degenerate", res.MatchRows, res.Tuples)
	}
	if len(res.StaticSeconds) != len(res.PEs) || len(res.StealingSeconds) != len(res.PEs) {
		t.Fatalf("got %d static / %d stealing timings for %d PE counts",
			len(res.StaticSeconds), len(res.StealingSeconds), len(res.PEs))
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Prunable layouts") {
		t.Errorf("print output malformed: %s", buf.String())
	}
}
