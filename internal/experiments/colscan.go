package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"optrule/internal/datagen"
	"optrule/internal/relation"
)

// ColScanRow is one point of the columnar-format sweep: the cost of a
// counting-style scan that touches k of the relation's d numeric
// attributes, on the same data in both on-disk formats. Bytes are the
// deterministic counted-I/O model (relation.DiskRelation.BytesRead):
// the v1 row-major format pays all 8·d+⌈b/8⌉ bytes per tuple no matter
// how few columns the scan selects, while the v2 column-major format
// pays 8·k — so the byte ratio is the layout argument itself, free of
// page-cache and hardware noise, and the seconds columns show what it
// buys on this machine.
type ColScanRow struct {
	SelectedCols int
	V1Bytes      int64
	V2Bytes      int64
	V1Seconds    float64
	V2Seconds    float64
}

// ColScanResult is the columnar disk format experiment: scan cost as a
// function of selected columns k at fixed attribute count d.
type ColScanResult struct {
	Tuples       int
	NumericAttrs int
	BoolAttrs    int
	GroupRows    int
	Rows         []ColScanRow
}

// ColScan writes an n-tuple relation with d numeric and 2 Boolean
// attributes to disk in both formats, then times a summing scan of the
// first k numeric columns for each k in ks, recording counted bytes
// and wall-clock seconds per format.
func ColScan(n, d int, ks []int, seed int64) (ColScanResult, error) {
	if ks == nil {
		ks = []int{1, 2, 4, d}
	}
	res := ColScanResult{Tuples: n, NumericAttrs: d, BoolAttrs: 2}
	shape, err := datagen.NewPerfShape(d, res.BoolAttrs, nil)
	if err != nil {
		return res, err
	}
	dir, err := os.MkdirTemp("", "optrule-colscan")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)

	v1Path := filepath.Join(dir, "cols_v1.opr")
	v2Path := filepath.Join(dir, "cols_v2.opr")
	if err := datagen.WriteDiskFormat(v1Path, shape, n, seed, relation.DiskFormatV1); err != nil {
		return res, err
	}
	if err := datagen.WriteDiskFormat(v2Path, shape, n, seed, relation.DiskFormatV2); err != nil {
		return res, err
	}
	v1, err := relation.OpenDisk(v1Path)
	if err != nil {
		return res, err
	}
	v2, err := relation.OpenDisk(v2Path)
	if err != nil {
		return res, err
	}
	res.GroupRows = v2.GroupRows()

	scan := func(dr *relation.DiskRelation, k int) (int64, float64, error) {
		cols := relation.ColumnSet{Numeric: make([]int, k)}
		for i := range cols.Numeric {
			cols.Numeric[i] = i
		}
		dr.ResetBytesRead()
		start := time.Now()
		sum := 0.0
		err := dr.Scan(cols, func(b *relation.Batch) error {
			for _, col := range b.Numeric {
				for _, v := range col[:b.Len] {
					sum += v
				}
			}
			return nil
		})
		return dr.BytesRead(), time.Since(start).Seconds(), err
	}
	for _, k := range ks {
		if k < 1 || k > d {
			return res, fmt.Errorf("experiments: selected column count %d out of [1, %d]", k, d)
		}
		row := ColScanRow{SelectedCols: k}
		if row.V1Bytes, row.V1Seconds, err = scan(v1, k); err != nil {
			return res, err
		}
		if row.V2Bytes, row.V2Seconds, err = scan(v2, k); err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Print writes the columnar-format comparison.
func (r ColScanResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Columnar disk format: %d tuples, %d numeric + %d Boolean attributes, v2 groups of %d rows\n",
		r.Tuples, r.NumericAttrs, r.BoolAttrs, r.GroupRows)
	fmt.Fprintf(w, "%6s  %14s  %14s  %8s  %10s  %10s\n",
		"cols", "v1 bytes", "v2 bytes", "byte rx", "v1 (s)", "v2 (s)")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%6d  %14d  %14d  %7.1fx  %10.3f  %10.3f\n",
			row.SelectedCols, row.V1Bytes, row.V2Bytes,
			float64(row.V1Bytes)/float64(row.V2Bytes),
			row.V1Seconds, row.V2Seconds)
	}
}
