package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestBatchExperiment pins the serving contract at experiment scale:
// the batched session answers the whole mixed workload identically to
// per-query sessions (the experiment fails internally otherwise),
// reads strictly fewer bytes doing it, and the cached re-query reads
// nothing at all.
func TestBatchExperiment(t *testing.T) {
	res, err := Batch(20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries < 5 {
		t.Fatalf("degenerate workload: %d queries", res.Queries)
	}
	if res.BatchBytes <= 0 {
		t.Fatalf("batched run read no bytes")
	}
	if res.BatchBytes >= res.PerQueryBytes {
		t.Errorf("batched run read %d bytes, per-query %d — no sharing happened",
			res.BatchBytes, res.PerQueryBytes)
	}
	if res.CachedBytes != 0 {
		t.Errorf("cached re-query read %d bytes, want 0", res.CachedBytes)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "cached re-query") {
		t.Errorf("print output missing the cached row:\n%s", buf.String())
	}
}
