package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"time"

	"optrule/internal/datagen"
	"optrule/internal/miner"
	"optrule/internal/relation"
)

// ScatterRow is one point of the worker-count sweep: the full fused
// MineAll workload with the counting scan scattered one-task-per-shard
// across a pool of Workers (0 = the classic serial/segmented executor,
// the no-regression baseline). Identical rules at every worker count
// is the scatter-gather contract — the merge is integer-exact, so
// placement, retries, and worker count must never change the answer.
type ScatterRow struct {
	Workers int
	Seconds float64
	Bytes   int64
	Rules   int
}

// ScatterFaultRun is the recovery measurement: the same workload with
// every pool worker reading through the deterministic fault harness at
// a 10% per-scan failure probability, repeated until faults actually
// fire (a handful of draws at 10% can all come up healthy). The
// recovery counters prove the failure machinery actually ran; the
// rule-identity check on every repetition proves it cost nothing in
// correctness.
type ScatterFaultRun struct {
	FailProb  float64
	Workers   int
	Runs      int
	Seconds   float64 // total across runs
	Tasks     int64
	Retries   int64
	Timeouts  int64
	Fallbacks int64
	Injected  int64
	Rules     int
}

// ScatterResult is the scatter-gather executor experiment over a
// sharded relation.
type ScatterResult struct {
	Tuples     int
	Shards     int
	GoMaxProcs int
	Rows       []ScatterRow
	FaultRun   ScatterFaultRun
}

// Scatter writes an n-tuple bank relation as a sharded v2 layout, then
// times MineAll at each worker count — hard-failing on any rule
// deviation from the zero-worker baseline — and finishes with a
// faulted run whose per-worker scans fail 10% of the time.
func Scatter(n int, shards int, workerCounts []int, seed int64) (ScatterResult, error) {
	res := ScatterResult{Tuples: n, Shards: shards, GoMaxProcs: runtime.GOMAXPROCS(0)}
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		return res, err
	}
	dir, err := os.MkdirTemp("", "optrule-scatter")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)

	manifest := filepath.Join(dir, "bank.oprs")
	if err := datagen.WriteSharded(manifest, bank, n, seed, shards, relation.DiskFormatV2); err != nil {
		return res, err
	}
	sr, err := relation.OpenSharded(manifest)
	if err != nil {
		return res, err
	}
	defer sr.Close()

	base := miner.Config{Buckets: 1000, Seed: seed}
	var want *miner.Result
	for _, workers := range workerCounts {
		cfg := base
		cfg.Scatter = miner.ScatterConfig{Workers: workers}
		sr.ResetBytesRead()
		start := time.Now()
		got, err := miner.MineAll(sr, cfg)
		secs := time.Since(start).Seconds()
		if err != nil {
			return res, fmt.Errorf("workers=%d: %w", workers, err)
		}
		if want == nil {
			want = got
		} else if !reflect.DeepEqual(got.Rules, want.Rules) {
			return res, fmt.Errorf("workers=%d: scattered rules differ from the serial baseline", workers)
		}
		res.Rows = append(res.Rows, ScatterRow{
			Workers: workers, Seconds: secs, Bytes: sr.BytesRead(), Rules: len(got.Rules),
		})
	}

	// Faulted runs: every worker reads through one shared harness that
	// kills 10% of scans mid-task. The coordinator's retries draw fresh
	// scan ordinals from the deterministic per-ordinal stream, so each
	// run always terminates, and any task whose attempts are exhausted
	// falls back to a direct scan of the clean relation. One run may
	// legitimately draw no faults (8 scans at 10%), so repeat until the
	// harness has actually fired — capped so a pathological seed cannot
	// loop forever.
	const failProb = 0.10
	workers := workerCounts[len(workerCounts)-1]
	if workers == 0 {
		workers = 4
	}
	fr := relation.NewFaultRelation(sr, relation.FaultConfig{
		Seed: seed, FailProb: failProb, FailAfterRows: n / (2 * shards),
	})
	var stats miner.ScatterStats
	cfg := base
	cfg.Scatter = miner.ScatterConfig{
		Workers: workers,
		NewWorker: func(i int, rel relation.Relation) miner.Worker {
			return miner.NewLocalWorker(fr, false)
		},
		Stats: &stats,
	}
	fault := ScatterFaultRun{FailProb: failProb, Workers: workers}
	for fault.Runs = 0; fault.Runs < 20; {
		start := time.Now()
		got, err := miner.MineAll(sr, cfg)
		fault.Seconds += time.Since(start).Seconds()
		fault.Runs++
		if err != nil {
			return res, fmt.Errorf("faulted run %d: %w", fault.Runs, err)
		}
		if !reflect.DeepEqual(got.Rules, want.Rules) {
			return res, fmt.Errorf("faulted run %d: rules differ from the healthy baseline", fault.Runs)
		}
		fault.Rules = len(got.Rules)
		if fr.Injected() > 0 {
			break
		}
	}
	if fr.Injected() == 0 {
		return res, fmt.Errorf("fault harness never fired in %d runs at %.0f%%", fault.Runs, failProb*100)
	}
	fault.Tasks = stats.Tasks.Load()
	fault.Retries = stats.Retries.Load()
	fault.Timeouts = stats.Timeouts.Load()
	fault.Fallbacks = stats.Fallbacks.Load()
	fault.Injected = fr.Injected()
	res.FaultRun = fault
	return res, nil
}

// Print writes the scatter-gather sweep.
func (r ScatterResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Scatter-gather executor: MineAll over %d bank tuples in %d shards, GOMAXPROCS=%d\n",
		r.Tuples, r.Shards, r.GoMaxProcs)
	fmt.Fprintf(w, "%8s  %10s  %14s  %6s\n", "workers", "time (s)", "bytes", "rules")
	for _, row := range r.Rows {
		name := fmt.Sprintf("%d", row.Workers)
		if row.Workers == 0 {
			name = "serial"
		}
		fmt.Fprintf(w, "%8s  %10.3f  %14d  %6d\n", name, row.Seconds, row.Bytes, row.Rules)
	}
	f := r.FaultRun
	fmt.Fprintf(w, "faulted: %.0f%% scan failure, %d workers, %d run(s): %.3fs, %d tasks, %d retries, %d timeouts, %d fallbacks, %d faults injected, rules identical\n",
		f.FailProb*100, f.Workers, f.Runs, f.Seconds, f.Tasks, f.Retries, f.Timeouts, f.Fallbacks, f.Injected)
}
