package experiments

import (
	"strings"
	"testing"
)

// TestTwoDimExperimentShape runs the 2-D scaling experiment at tiny
// sizes and checks its structural claims: the fused engine reads FEWER
// counted bytes than the per-pair loop at every point (two scans total
// versus three per pair per kind), the gap grows with the pair count,
// and the targeted all-kinds sweep produces every requested rule
// family.
func TestTwoDimExperimentShape(t *testing.T) {
	res, err := TwoDim(4000, []int{2, 4}, []int{8, 16}, []int{16}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.FusedMB >= row.LegacyMB {
			t.Errorf("attrs=%d side=%d: fused read %.2f MB, legacy %.2f MB — fused must read less",
				row.Attrs, row.Side, row.FusedMB, row.LegacyMB)
		}
		if row.Pairs != row.Attrs*(row.Attrs-1)/2 {
			t.Errorf("attrs=%d: pairs=%d", row.Attrs, row.Pairs)
		}
	}
	// The byte gap grows with the pair count: legacy bytes scale with
	// pairs, fused bytes stay ~flat (two scans regardless).
	var r2, r4 TwoDimRow
	for _, row := range res.Rows {
		if row.Side == 16 {
			if row.Attrs == 2 {
				r2 = row
			}
			if row.Attrs == 4 {
				r4 = row
			}
		}
	}
	if r4.LegacyMB/r4.FusedMB <= r2.LegacyMB/r2.FusedMB {
		t.Errorf("byte-ratio should grow with pairs: d=2 %.1fx, d=4 %.1fx",
			r2.LegacyMB/r2.FusedMB, r4.LegacyMB/r4.FusedMB)
	}
	if len(res.Targeted) != 1 {
		t.Fatalf("got %d targeted rows, want 1", len(res.Targeted))
	}
	tr := res.Targeted[0]
	if tr.Side != 16 || tr.Seconds <= 0 {
		t.Errorf("bad targeted row: %+v", tr)
	}

	var sb strings.Builder
	res.Print(&sb)
	for _, want := range []string{"Fused 2-D engine", "pairs", "Targeted pair", "xmono gain"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("Print output missing %q", want)
		}
	}
}
