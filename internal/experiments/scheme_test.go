package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestAblateBucketingSchemeFootnote3(t *testing.T) {
	res, err := AblateBucketingScheme(100000, []int{200}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	row := res.Rows[0]
	// On skewed lognormal data, equi-width buckets are wildly uneven
	// while sampled equi-depth buckets stay close to uniform.
	if row.DepthDevWidth < 5*row.DepthDevDepth {
		t.Errorf("equi-width skew %g should dwarf equi-depth skew %g",
			row.DepthDevWidth, row.DepthDevDepth)
	}
	// And the mined rule should be at least as accurate with equi-depth
	// buckets (footnote 3's claim, with a small tolerance for sampling
	// noise).
	if row.SupErrDepth > row.SupErrWidth+0.02 {
		t.Errorf("equi-depth rule error %g should not exceed equi-width error %g",
			row.SupErrDepth, row.SupErrWidth)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "equi-depth vs equi-width") {
		t.Errorf("print malformed")
	}
}
