package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"optrule/internal/bucketing"
	"optrule/internal/datagen"
	"optrule/internal/relation"
)

// FusedRow compares the legacy per-attribute bucketing pipeline (one
// sampling pass plus one counting scan PER numeric attribute) against
// the fused engine (one sampling scan plus one counting scan TOTAL) on
// the same disk-resident relation, at one attribute count.
type FusedRow struct {
	Attrs         int
	LegacySeconds float64
	FusedSeconds  float64
	LegacyScans   int   // sequential passes issued by the legacy pipeline
	FusedScans    int   // always 2: sampling + counting
	LegacyRows    int64 // tuples streamed off disk by the legacy pipeline
	FusedRows     int64 // tuples streamed off disk by the fused pipeline
}

// FusedResult is the fused-engine scan-count experiment: the paper's
// cost currency is sequential passes over a database larger than main
// memory, so the d+1 → 2 pass collapse is THE headline win of the fused
// counting engine, and it grows with the number of numeric attributes.
type FusedResult struct {
	Tuples  int
	Buckets int
	Rows    []FusedRow
}

// Fused times both pipelines end to end (boundaries + counts for every
// numeric attribute, all Boolean objectives) over a disk relation of n
// tuples, for each attribute count in attrCounts.
func Fused(n int, attrCounts []int, seed int64) (FusedResult, error) {
	if attrCounts == nil {
		attrCounts = []int{1, 2, 4, 8}
	}
	res := FusedResult{Tuples: n, Buckets: 1000}
	dir, err := os.MkdirTemp("", "optrule-fused")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)

	for _, d := range attrCounts {
		shape, err := datagen.NewPerfShape(d, 4, nil)
		if err != nil {
			return res, err
		}
		path := fmt.Sprintf("%s/d%d.opr", dir, d)
		if err := datagen.WriteDisk(path, shape, n, seed); err != nil {
			return res, err
		}
		rel, err := relation.OpenDisk(path)
		if err != nil {
			return res, err
		}
		s := rel.Schema()
		attrs := s.NumericIndices()
		var opts bucketing.Options
		for _, b := range s.BooleanIndices() {
			opts.Bools = append(opts.Bools, bucketing.BoolCond{Attr: b, Want: true})
		}
		opts.TrackExtremes = true
		row := FusedRow{Attrs: d}

		// Legacy: one sampling pass + one counting scan per attribute.
		counting := &relation.CountingRelation{R: rel}
		start := time.Now()
		for _, attr := range attrs {
			rng := rand.New(rand.NewSource(seed + int64(attr)))
			bounds, err := bucketing.SampledBoundaries(counting, attr, res.Buckets, 40, rng)
			if err != nil {
				return res, err
			}
			if _, err := bucketing.Count(counting, attr, bounds, opts); err != nil {
				return res, err
			}
		}
		row.LegacySeconds = time.Since(start).Seconds()
		row.LegacyScans = counting.Scans
		row.LegacyRows = counting.Rows

		// Fused: one sampling scan + one counting scan, total.
		counting = &relation.CountingRelation{R: rel}
		rngs := make([]*rand.Rand, len(attrs))
		for k, attr := range attrs {
			rngs[k] = rand.New(rand.NewSource(seed + int64(attr)))
		}
		start = time.Now()
		bounds, err := bucketing.MultiSampledBoundaries(counting, attrs, res.Buckets, 40, 0, rngs)
		if err != nil {
			return res, err
		}
		if _, err := bucketing.MultiCount(counting, attrs, bounds, opts); err != nil {
			return res, err
		}
		row.FusedSeconds = time.Since(start).Seconds()
		row.FusedScans = counting.Scans
		row.FusedRows = counting.Rows

		res.Rows = append(res.Rows, row)
		os.Remove(path)
	}
	return res, nil
}

// Print writes the fused-engine comparison.
func (r FusedResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Fused counting engine: disk relation, %d tuples, M=%d, all objectives\n", r.Tuples, r.Buckets)
	fmt.Fprintf(w, "%6s  %12s  %12s  %11s  %10s  %12s  %11s  %8s\n",
		"attrs", "legacy (s)", "fused (s)", "legacy", "fused", "legacy rows", "fused rows", "speedup")
	fmt.Fprintf(w, "%6s  %12s  %12s  %11s  %10s  %12s  %11s  %8s\n",
		"", "", "", "scans", "scans", "", "", "")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%6d  %12.3f  %12.3f  %11d  %10d  %12d  %11d  %7.1fx\n",
			row.Attrs, row.LegacySeconds, row.FusedSeconds,
			row.LegacyScans, row.FusedScans, row.LegacyRows, row.FusedRows,
			row.LegacySeconds/row.FusedSeconds)
	}
}
