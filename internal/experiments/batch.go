package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"time"

	"optrule/internal/datagen"
	"optrule/internal/miner"
	"optrule/internal/relation"
)

// The batch/serving experiment: what does the plan/execute session buy
// over per-query mining? A mixed workload of B queries costs B×2 scans
// when each query plans alone (the pre-session architecture) but
// exactly 2 scans when planned together, and 0 scans when a session
// re-answers threshold variants from its statistics cache. Wall-clock
// and the deterministic counted-bytes model both record the win.

// BatchResult is the batch experiment's structured result.
type BatchResult struct {
	Tuples     int
	Queries    int
	GoMaxProcs int
	// PerQuery runs every query in its own throwaway session: B
	// sampling scans + B counting scans.
	PerQuerySeconds float64
	PerQueryBytes   int64
	// Batch answers all queries from one ExecuteBatch: 2 scans.
	BatchSeconds float64
	BatchBytes   int64
	// Cached re-answers threshold/kind variants on the warm session:
	// 0 scans.
	CachedSeconds float64
	CachedBytes   int64
}

// batchQueries builds the experiment's heterogeneous workload over the
// bank schema: all-attribute rules, two targeted queries, a 2-D pair
// with a region class, ranked ranges, an average-operator query, and a
// conjunctive query.
func batchQueries() []miner.Query {
	return []miner.Query{
		{Op: miner.OpRules},
		{Op: miner.OpRules, Numeric: "Balance", Objective: "CardLoan", ObjectiveValue: true},
		{Op: miner.OpRules, Numeric: "Age", Objective: "Mortgage", ObjectiveValue: true,
			Conditions: []miner.Condition{{Attr: "AutoWithdraw", Value: true}}},
		{Op: miner.OpRules2D, Numeric: "Balance", NumericB: "Age", Objective: "CardLoan",
			ObjectiveValue: true, GridSide: 32, Regions: []miner.RegionClass{miner.XMonotoneClass}},
		{Op: miner.OpTopK, Numeric: "Balance", Objective: "CardLoan", ObjectiveValue: true, K: 3},
		{Op: miner.OpAverage, Numeric: "Balance", Target: "Age", MinSupport: 0.1},
		{Op: miner.OpConjunctive, Numeric: "Age",
			Objectives: []miner.Condition{{Attr: "CardLoan", Value: true}},
			Conditions: []miner.Condition{{Attr: "Mortgage", Value: true}}},
	}
}

// rethresholded derives the cache-hit workload: same statistics,
// different thresholds, kinds, K, and region classes.
func rethresholded(queries []miner.Query) []miner.Query {
	out := make([]miner.Query, len(queries))
	for i, q := range queries {
		if q.Op == miner.OpAverage || q.Op == miner.OpSupportRange {
			// The average ops take their floors literally and use no
			// confidence threshold.
			q.MinSupport = 0.25
		} else {
			q.MinSupport, q.MinConfidence = 0.12, 0.65
		}
		if q.Op == miner.OpTopK {
			q.K = 5
		}
		if q.Op == miner.OpRules2D {
			q.Regions = []miner.RegionClass{miner.RectilinearConvexClass}
		}
		out[i] = q
	}
	return out
}

// answersEqual compares two answer sets field-for-field (queries
// aside); the experiment hard-fails on any divergence — a
// wrong-but-fast batch must not publish a bogus win.
func answersEqual(a, b []miner.Answer) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if (a[i].Err == nil) != (b[i].Err == nil) {
			return false
		}
		if !reflect.DeepEqual(a[i].Rules, b[i].Rules) ||
			!reflect.DeepEqual(a[i].Rules2D, b[i].Rules2D) ||
			!reflect.DeepEqual(a[i].Regions, b[i].Regions) ||
			!reflect.DeepEqual(a[i].Range, b[i].Range) {
			return false
		}
	}
	return true
}

// Batch measures the mixed workload on an n-tuple v2 disk bank
// relation: per-query sessions vs one batched session vs cached
// re-query.
func Batch(n int, seed int64) (BatchResult, error) {
	res := BatchResult{Tuples: n, GoMaxProcs: runtime.GOMAXPROCS(0)}
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		return res, err
	}
	dir, err := os.MkdirTemp("", "optrule-batch")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "bank.opr")
	if err := datagen.WriteDiskFormat(path, bank, n, seed, relation.DiskFormatV2); err != nil {
		return res, err
	}
	rel, err := relation.OpenDisk(path)
	if err != nil {
		return res, err
	}
	defer rel.Close()

	cfg := miner.Config{Buckets: 1000, Seed: seed}
	queries := batchQueries()
	res.Queries = len(queries)

	// Per-query baseline: every query pays its own two scans.
	rel.ResetBytesRead()
	start := time.Now()
	var perQuery []miner.Answer
	for _, q := range queries {
		s, err := miner.NewSession(rel, cfg)
		if err != nil {
			return res, err
		}
		answers, err := s.ExecuteBatch([]miner.Query{q})
		if err != nil {
			return res, err
		}
		if answers[0].Err != nil {
			return res, fmt.Errorf("per-query %s: %w", q.Op, answers[0].Err)
		}
		perQuery = append(perQuery, answers[0])
	}
	res.PerQuerySeconds = time.Since(start).Seconds()
	res.PerQueryBytes = rel.BytesRead()

	// Batched: one session, one plan, two scans for everything.
	session, err := miner.NewSession(rel, cfg)
	if err != nil {
		return res, err
	}
	rel.ResetBytesRead()
	start = time.Now()
	batched, err := session.ExecuteBatch(queries)
	if err != nil {
		return res, err
	}
	res.BatchSeconds = time.Since(start).Seconds()
	res.BatchBytes = rel.BytesRead()
	if !answersEqual(perQuery, batched) {
		return res, fmt.Errorf("batched answers deviate from per-query answers")
	}

	// Cached: different thresholds/kinds on the warm session; every
	// statistic is already cached, so the relation is not read at all.
	rel.ResetBytesRead()
	start = time.Now()
	cached, err := session.ExecuteBatch(rethresholded(queries))
	if err != nil {
		return res, err
	}
	res.CachedSeconds = time.Since(start).Seconds()
	res.CachedBytes = rel.BytesRead()
	for i, a := range cached {
		if a.Err != nil {
			return res, fmt.Errorf("cached re-query %d: %w", i, a.Err)
		}
	}
	if res.CachedBytes != 0 {
		return res, fmt.Errorf("cached re-query read %d bytes, want 0", res.CachedBytes)
	}
	return res, nil
}

// Print writes the comparison.
func (r BatchResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Batch serving: %d mixed queries over %d tuples (GOMAXPROCS=%d)\n",
		r.Queries, r.Tuples, r.GoMaxProcs)
	fmt.Fprintf(w, "%16s  %12s  %14s\n", "mode", "seconds", "bytes read")
	fmt.Fprintf(w, "%16s  %12.3f  %14d\n", "per-query", r.PerQuerySeconds, r.PerQueryBytes)
	fmt.Fprintf(w, "%16s  %12.3f  %14d\n", "batched", r.BatchSeconds, r.BatchBytes)
	fmt.Fprintf(w, "%16s  %12.3f  %14d\n", "cached re-query", r.CachedSeconds, r.CachedBytes)
	if r.BatchSeconds > 0 {
		fmt.Fprintf(w, "batch vs per-query: %.2fx wall-clock, %.2fx bytes\n",
			r.PerQuerySeconds/r.BatchSeconds, float64(r.PerQueryBytes)/float64(r.BatchBytes))
	}
}
