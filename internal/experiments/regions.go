package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"optrule/internal/region"
)

// RegionRow compares the three §1.4 region classes on one workload.
type RegionRow struct {
	Workload   string
	RectGain   float64
	RectSecs   float64
	ConvexGain float64
	ConvexSecs float64
	XMonoGain  float64
	XMonoSecs  float64
}

// RegionResult is the region-class comparison (an extension experiment;
// not a table in the base paper).
type RegionResult struct {
	GridSide int
	Rows     []RegionRow
}

// Regions builds three planted 2-D workloads — an axis-parallel block,
// a diagonal band, and a disk — and reports each region class's optimal
// gain and cost on a gridSide×gridSide grid. The expected shape: all
// classes tie on the block; x-monotone wins the diagonal; the disk is
// captured by rectilinear-convex and x-monotone but not the rectangle.
func Regions(gridSide int, cellTuples int, seed int64) (RegionResult, error) {
	if gridSide <= 0 {
		gridSide = 32
	}
	if cellTuples <= 0 {
		cellTuples = 50
	}
	res := RegionResult{GridSide: gridSide}
	rng := rand.New(rand.NewSource(seed))
	workloads := []struct {
		name string
		hot  func(r, c int) bool
	}{
		{"block", func(r, c int) bool {
			return r >= gridSide/4 && r < gridSide/2 && c >= gridSide/4 && c < gridSide/2
		}},
		{"diagonal", func(r, c int) bool {
			d := r - c
			return d <= 1 && d >= -1
		}},
		{"disk", func(r, c int) bool {
			dr := float64(r - gridSide/2)
			dc := float64(c - gridSide/2)
			return dr*dr+dc*dc < float64(gridSide*gridSide)/16
		}},
	}
	for _, wl := range workloads {
		g, err := region.NewGrid(gridSide, gridSide)
		if err != nil {
			return res, err
		}
		for r := 0; r < gridSide; r++ {
			for c := 0; c < gridSide; c++ {
				g.U[r][c] = cellTuples
				p := 0.05
				if wl.hot(r, c) {
					p = 0.8
				}
				hits := 0
				for k := 0; k < cellTuples; k++ {
					if rng.Float64() < p {
						hits++
					}
				}
				g.V[r][c] = float64(hits)
			}
		}
		row := RegionRow{Workload: wl.name}
		start := time.Now()
		rect, _, err := region.MaxGainRect(g, 0.5)
		if err != nil {
			return res, err
		}
		row.RectSecs = time.Since(start).Seconds()
		row.RectGain = rect.Gain

		start = time.Now()
		rc, _, err := region.MaxGainRectilinearConvex(g, 0.5)
		if err != nil {
			return res, err
		}
		row.ConvexSecs = time.Since(start).Seconds()
		row.ConvexGain = rc.Gain

		start = time.Now()
		xm, _, err := region.MaxGainXMonotone(g, 0.5)
		if err != nil {
			return res, err
		}
		row.XMonoSecs = time.Since(start).Seconds()
		row.XMonoGain = xm.Gain
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Print writes the comparison.
func (r RegionResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Extension: §1.4 region classes, optimized gain at θ=50%% (%dx%d grid)\n", r.GridSide, r.GridSide)
	fmt.Fprintf(w, "%10s  %12s %10s  %12s %10s  %12s %10s\n",
		"workload", "rect gain", "(s)", "convex gain", "(s)", "xmono gain", "(s)")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%10s  %12.1f %10.4f  %12.1f %10.4f  %12.1f %10.4f\n",
			row.Workload, row.RectGain, row.RectSecs,
			row.ConvexGain, row.ConvexSecs, row.XMonoGain, row.XMonoSecs)
	}
}
