package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestShardsIdenticalBytes pins the sharding contract at experiment
// scale: every layout — single file, each shard count, serial and
// concurrent — mines the same rules (the experiment itself fails
// otherwise) and the counted bytes are equal across layouts up to
// boolean bitmap padding (each shard rounds every Boolean column up to
// whole bytes: at most one byte per Boolean attribute per shard),
// because sharding changes where rows live, never how many are read.
func TestShardsIdenticalBytes(t *testing.T) {
	res, err := Shards(20000, []int{2, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	if res.SingleFile.Rules == 0 {
		t.Fatal("degenerate experiment: no rules mined")
	}
	const boolAttrs = 3 // the bank schema's Boolean attribute count
	for _, row := range res.Rows {
		pad := int64(boolAttrs * row.Shards)
		if d := row.SerialBytes - res.SingleFile.Bytes; d < 0 || d > pad {
			t.Errorf("%d shards: serial bytes %d, single-file %d (allowed padding %d)",
				row.Shards, row.SerialBytes, res.SingleFile.Bytes, pad)
		}
		if d := row.ConcurrentBytes - res.SingleFile.Bytes; d < 0 || d > pad {
			t.Errorf("%d shards: concurrent bytes %d, single-file %d (allowed padding %d)",
				row.Shards, row.ConcurrentBytes, res.SingleFile.Bytes, pad)
		}
		if row.Rules != res.SingleFile.Rules {
			t.Errorf("%d shards: %d rules, single-file %d", row.Shards, row.Rules, res.SingleFile.Rules)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Sharded backend") {
		t.Errorf("print output malformed: %s", buf.String())
	}
}
