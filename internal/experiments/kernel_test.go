package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestKernelExperimentRuns runs the counting-kernel comparison at a
// small scale: it must produce all three timings, and the kernel
// differential inside Kernel (reference vs vectorized statistics)
// must hold — any deviation is an error, not a benchmark number.
func TestKernelExperimentRuns(t *testing.T) {
	res, err := Kernel(30000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.FastPathSeconds <= 0 || res.RefSeconds <= 0 || res.VecSeconds <= 0 {
		t.Errorf("missing timings: %+v", res)
	}
	if res.VecSpeedup <= 0 || res.GapToFast <= 0 {
		t.Errorf("ratios not computed: %+v", res)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Counting kernels") {
		t.Errorf("print output malformed: %s", buf.String())
	}
}
