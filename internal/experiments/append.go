package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"optrule/internal/datagen"
	"optrule/internal/miner"
	"optrule/internal/relation"
)

// The append experiment: what does delta statistics merge buy over
// rebuilding the cache? A warm session whose relation grows by Δ rows
// folds tail-only partial statistics into its cache (one counting
// scan over the Δ rows, no re-sampling) as long as the accumulated
// growth stays inside the §3.4 bucket-error budget — so ingest costs
// O(Δ), not the O(n) of a cold two-scan rebuild. Past the budget the
// session re-samples boundaries and recounts on demand, converging to
// cold-session behavior. Each step hard-fails unless the warm
// session's answers are byte-identical to a bounds-matched cold
// rebuild, and within-budget steps hard-fail unless the whole
// append-and-requery cycle reads ≤ 5% of the cold rebuild's counted
// bytes.

// AppendResult is the append experiment's structured result.
type AppendResult struct {
	BaseTuples int
	Queries    int
	GoMaxProcs int
	Steps      []AppendStep
}

// AppendStep measures one append: Δ rows (Fraction of the BASE size,
// cumulative across steps) land in new shard files, the warm session
// refreshes, and the previously-cached mixed batch re-runs.
type AppendStep struct {
	// Fraction of the base tuple count appended in this step.
	Fraction     float64
	AppendedRows int
	TuplesAfter  int
	// Delta is append + RefreshFromStorage + re-running the batch on
	// the warm session; Cold is a fresh session answering the same
	// batch on the grown relation with a full two-scan rebuild.
	DeltaSeconds float64
	DeltaBytes   int64
	ColdSeconds  float64
	ColdBytes    int64
	// Telemetry from the refresh: tail rows counted, cache entries
	// folded in place, and boundary sets re-sampled because the
	// accumulated growth left the bucket-error budget.
	TailRows      int64
	EntriesFolded int
	Resamples     int
}

// appendQueries is the batch workload minus the average operator:
// averages carry float sums whose addition order is observable, so
// the delta path deliberately strips them and recounts on demand
// (over the full relation) rather than fold them — a different,
// correctness-driven cost model that would drown the O(Δ) signal the
// experiment measures. Everything else folds integer-exactly.
func appendQueries() []miner.Query {
	var out []miner.Query
	for _, q := range batchQueries() {
		if q.Op == miner.OpAverage {
			continue
		}
		out = append(out, q)
	}
	return out
}

// Append measures delta ingest on an n-tuple sharded v2 bank
// relation: for each fraction (of the base size, applied cumulatively
// to one relation), append Δ rows and compare the warm session's
// refresh-and-requery against a cold rebuild.
func Append(n int, fractions []float64, seed int64) (AppendResult, error) {
	res := AppendResult{BaseTuples: n, GoMaxProcs: runtime.GOMAXPROCS(0)}
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		return res, err
	}
	dir, err := os.MkdirTemp("", "optrule-append")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	manifest := filepath.Join(dir, "bank.oprs")
	if err := datagen.WriteSharded(manifest, bank, n, seed, 4, relation.DiskFormatV2); err != nil {
		return res, err
	}
	rel, err := relation.OpenSharded(manifest)
	if err != nil {
		return res, err
	}
	defer rel.Close()

	cfg := miner.Config{Buckets: 1000, Seed: seed}
	queries := appendQueries()
	res.Queries = len(queries)

	// Warm the session: the batch pays its two scans once, up front.
	warm, err := miner.NewSession(rel, cfg)
	if err != nil {
		return res, err
	}
	if err := runAppendBatch(warm, queries); err != nil {
		return res, fmt.Errorf("warming batch: %w", err)
	}

	grown := n // rows generated so far; the stream offset for the next tail
	for _, f := range fractions {
		delta := int(f * float64(n))
		if delta < 1 {
			delta = 1
		}
		// The prefix property: rows [grown, grown+delta) of the seed's
		// stream are exactly the rows the relation does not hold yet.
		tail, err := datagen.MaterializeRange(bank, seed, grown, delta)
		if err != nil {
			return res, err
		}

		rel.ResetBytesRead()
		start := time.Now()
		if _, err := relation.AppendToSharded(manifest, tail, relation.AppendOptions{}); err != nil {
			return res, err
		}
		stats, err := warm.RefreshFromStorage()
		if err != nil {
			return res, err
		}
		deltaAnswers, err := warm.ExecuteBatch(queries)
		if err != nil {
			return res, err
		}
		step := AppendStep{
			Fraction:      f,
			AppendedRows:  delta,
			TuplesAfter:   rel.NumTuples(),
			DeltaSeconds:  time.Since(start).Seconds(),
			DeltaBytes:    rel.BytesRead(),
			TailRows:      stats.RowsScanned,
			EntriesFolded: stats.EntriesFolded,
			Resamples:     stats.Resamples,
		}
		grown += delta

		// Cold rebuild on the grown relation: fresh session, full
		// sampling + counting scans.
		rel.ResetBytesRead()
		start = time.Now()
		cold, err := miner.NewSession(rel, cfg)
		if err != nil {
			return res, err
		}
		coldAnswers, err := cold.ExecuteBatch(queries)
		if err != nil {
			return res, err
		}
		step.ColdSeconds = time.Since(start).Seconds()
		step.ColdBytes = rel.BytesRead()

		// Identity hard-fail: with the warm session's boundaries, a
		// fresh rebuild must reproduce its answers bit for bit — a
		// wrong-but-cheap fold must not publish a bogus win. (The plain
		// cold session above samples the grown relation, so its
		// boundaries — and rules — may legitimately differ by a hair
		// while growth is inside the sampling error budget.)
		control, err := miner.NewSession(rel, cfg)
		if err != nil {
			return res, err
		}
		control.StatsCache().CopyBoundsFrom(warm.StatsCache())
		controlAnswers, err := control.ExecuteBatch(queries)
		if err != nil {
			return res, err
		}
		if !answersEqual(deltaAnswers, controlAnswers) {
			return res, fmt.Errorf("fraction %g: delta-merged answers deviate from cold rebuild", f)
		}
		for i, a := range coldAnswers {
			if a.Err != nil {
				return res, fmt.Errorf("fraction %g: cold query %d: %w", f, i, a.Err)
			}
		}

		// The acceptance ceiling: a within-budget append-and-requery
		// cycle must read at most 5% of what the cold rebuild reads.
		if step.Resamples == 0 && step.DeltaBytes*20 > step.ColdBytes {
			return res, fmt.Errorf("fraction %g: delta path read %d bytes, over 5%% of cold rebuild's %d",
				f, step.DeltaBytes, step.ColdBytes)
		}
		res.Steps = append(res.Steps, step)
	}
	return res, nil
}

// runAppendBatch executes the batch and fails on any per-query error.
func runAppendBatch(s *miner.Session, queries []miner.Query) error {
	answers, err := s.ExecuteBatch(queries)
	if err != nil {
		return err
	}
	for i, a := range answers {
		if a.Err != nil {
			return fmt.Errorf("query %d (%s): %w", i, a.Query.Op, a.Err)
		}
	}
	return nil
}

// Print writes the comparison.
func (r AppendResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Incremental append: %d-query batch over %d base tuples (GOMAXPROCS=%d)\n",
		r.Queries, r.BaseTuples, r.GoMaxProcs)
	fmt.Fprintf(w, "%9s %10s  %12s %14s  %12s %14s  %9s %7s %9s\n",
		"fraction", "rows", "delta s", "delta bytes", "cold s", "cold bytes", "tail rows", "folds", "resamples")
	for _, s := range r.Steps {
		fmt.Fprintf(w, "%8.2f%% %10d  %12.3f %14d  %12.3f %14d  %9d %7d %9d\n",
			s.Fraction*100, s.AppendedRows, s.DeltaSeconds, s.DeltaBytes,
			s.ColdSeconds, s.ColdBytes, s.TailRows, s.EntriesFolded, s.Resamples)
	}
	for _, s := range r.Steps {
		if s.Resamples == 0 && s.ColdBytes > 0 {
			fmt.Fprintf(w, "fraction %g: delta ingest read %.2f%% of cold rebuild bytes\n",
				s.Fraction, 100*float64(s.DeltaBytes)/float64(s.ColdBytes))
		}
	}
}
