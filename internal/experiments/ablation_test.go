package experiments

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"optrule/internal/core"
)

func TestAblateSampleFactorQualityImproves(t *testing.T) {
	res, err := AblateSampleFactor(100000, 100, []int{5, 40}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// S/M = 40 must give materially tighter buckets than S/M = 5.
	if res.Rows[1].MaxDeviation >= res.Rows[0].MaxDeviation {
		t.Errorf("S/M=40 deviation %g should beat S/M=5 deviation %g",
			res.Rows[1].MaxDeviation, res.Rows[0].MaxDeviation)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "sample factor") {
		t.Errorf("print malformed")
	}
}

func TestRescanMatchesHullTree(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 300; trial++ {
		m := 1 + rng.Intn(60)
		u := make([]int, m)
		v := make([]float64, m)
		for i := range u {
			u[i] = 1 + rng.Intn(20)
			v[i] = float64(rng.Intn(u[i] + 1))
		}
		minSup := float64(rng.Intn(40))
		slow, okS := rescanOptimalSlopePair(u, v, minSup)
		fast, okF, err := core.OptimalSlopePair(u, v, minSup)
		if err != nil {
			t.Fatal(err)
		}
		if okS != okF {
			t.Fatalf("trial %d: ok mismatch (u=%v v=%v minSup=%g)", trial, u, v, minSup)
		}
		if okS && (slow.Conf != fast.Conf || slow.Count != fast.Count) {
			t.Fatalf("trial %d: rescan %+v != tree %+v", trial, slow, fast)
		}
	}
}

func TestAblateHullTreeAgreesAndWins(t *testing.T) {
	res, err := AblateHullTree([]int{200, 5000}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if !row.Agree {
			t.Errorf("M=%d: rescan ablation disagrees with the hull tree", row.Buckets)
		}
	}
	// At 5000 buckets the tree must win clearly.
	last := res.Rows[len(res.Rows)-1]
	if last.RescanSeconds < 2*last.TreeSeconds {
		t.Errorf("hull tree should be >2x faster at M=%d: tree %gs rescan %gs",
			last.Buckets, last.TreeSeconds, last.RescanSeconds)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "hull tree") {
		t.Errorf("print malformed")
	}
}

func TestAblateBucketCountErrorShrinks(t *testing.T) {
	res, err := AblateBucketCount(50000, []int{10, 1000}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	coarse, fine := res.Rows[0], res.Rows[1]
	if fine.SupportError > coarse.SupportError+1e-9 {
		t.Errorf("M=1000 support error %g should not exceed M=10 error %g",
			fine.SupportError, coarse.SupportError)
	}
	// At M=1000 the approximation should be tight (§3.4: error ~2/(M·s)).
	if fine.SupportError > 0.05 {
		t.Errorf("M=1000 support error %g too large", fine.SupportError)
	}
	if fine.ConfError > 0.05 {
		t.Errorf("M=1000 confidence error %g too large", fine.ConfError)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "bucket count") {
		t.Errorf("print malformed")
	}
}
