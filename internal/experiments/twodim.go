package experiments

import (
	"fmt"
	"io"
	"os"
	"time"

	"optrule/internal/datagen"
	"optrule/internal/miner"
	"optrule/internal/relation"
)

// TwoDimRow compares the fused all-pairs 2-D engine (MineAll2D: one
// sampling scan + one counting scan TOTAL) against the legacy per-pair
// pipeline (three scans and a serial sweep PER PAIR PER KIND) at one
// (attribute count, grid side) point, on a disk-resident relation.
type TwoDimRow struct {
	Attrs         int
	Pairs         int
	Side          int
	FusedSeconds  float64
	LegacySeconds float64
	FusedMB       float64 // counted disk bytes read by the fused engine
	LegacyMB      float64 // counted disk bytes read by the per-pair loop
}

// TwoDimTargetedRow is one point of the targeted deep-grid sweep: a
// single attribute pair mined at a large grid side with ALL kinds —
// both paper-standard rectangle kinds, optimized-gain, and both
// non-rectangular region classes — the workload the parallel region
// kernels exist for.
type TwoDimTargetedRow struct {
	Side       int
	Seconds    float64
	Rules      int
	Regions    int
	RectGain   float64 // optimized-gain rectangle's gain
	XMonoGain  float64
	ConvexGain float64
}

// TwoDimResult is the 2-D scaling experiment: wall-clock and counted
// bytes versus the number of attribute pairs and the grid side.
type TwoDimResult struct {
	Tuples   int
	Rows     []TwoDimRow
	Targeted []TwoDimTargetedRow
}

// TwoDim writes an n-tuple relation with the largest requested
// attribute count to disk (v2 columnar format) and, for every
// (attrCount × side) combination, mines all pairs with the two
// paper-standard rectangle kinds via the fused engine and via the
// legacy per-pair loop, recording wall-clock and counted disk bytes.
// targetedSides (optional) adds the single-pair all-kinds deep-grid
// sweep.
func TwoDim(n int, attrCounts, sides, targetedSides []int, seed int64) (TwoDimResult, error) {
	if n <= 0 {
		n = 200000
	}
	if attrCounts == nil {
		attrCounts = []int{2, 4, 8}
	}
	if sides == nil {
		sides = []int{16, 32, 64}
	}
	res := TwoDimResult{Tuples: n}
	maxAttrs := 0
	for _, d := range attrCounts {
		if d > maxAttrs {
			maxAttrs = d
		}
	}
	if maxAttrs < 2 {
		return res, fmt.Errorf("experiments: 2-D mining needs at least 2 attributes")
	}
	shape, err := datagen.NewPerfShape(maxAttrs, 2, nil)
	if err != nil {
		return res, err
	}
	dir, err := os.MkdirTemp("", "optrule-twodim")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	path := dir + "/twodim.opr"
	if err := datagen.WriteDiskFormat(path, shape, n, seed, relation.DiskFormatV2); err != nil {
		return res, err
	}
	rel, err := relation.OpenDisk(path)
	if err != nil {
		return res, err
	}
	defer rel.Close() // release the point-read mapping with the temp file
	s := rel.Schema()
	allNums := s.NumericIndices()
	objective := s[s.BooleanIndices()[0]].Name
	kinds := []miner.RuleKind{miner.OptimizedSupport, miner.OptimizedConfidence}

	for _, d := range attrCounts {
		names := make([]string, d)
		for k := 0; k < d; k++ {
			names[k] = s[allNums[k]].Name
		}
		for _, side := range sides {
			cfg := miner.Config{Seed: seed}
			row := TwoDimRow{Attrs: d, Pairs: d * (d - 1) / 2, Side: side}

			before := rel.BytesRead()
			start := time.Now()
			if _, err := miner.MineAll2D(rel, miner.Options2D{
				Numerics: names, Objective: objective, ObjectiveValue: true,
				Kinds: kinds, GridSide: side,
			}, cfg); err != nil {
				return res, err
			}
			row.FusedSeconds = time.Since(start).Seconds()
			row.FusedMB = float64(rel.BytesRead()-before) / (1 << 20)

			before = rel.BytesRead()
			start = time.Now()
			for i := 0; i < d; i++ {
				for j := i + 1; j < d; j++ {
					for _, kind := range kinds {
						if _, err := miner.Mine2DPerPair(rel, names[i], names[j],
							objective, true, kind, side, cfg); err != nil {
							return res, err
						}
					}
				}
			}
			row.LegacySeconds = time.Since(start).Seconds()
			row.LegacyMB = float64(rel.BytesRead()-before) / (1 << 20)
			res.Rows = append(res.Rows, row)
		}
	}

	a, b := s[allNums[0]].Name, s[allNums[1]].Name
	for _, side := range targetedSides {
		cfg := miner.Config{Seed: seed}
		start := time.Now()
		out, err := miner.MineAll2D(rel, miner.Options2D{
			Numerics: []string{a, b}, Objective: objective, ObjectiveValue: true,
			Kinds:    []miner.RuleKind{miner.OptimizedSupport, miner.OptimizedConfidence, miner.OptimizedGain},
			Regions:  []miner.RegionClass{miner.XMonotoneClass, miner.RectilinearConvexClass},
			GridSide: side,
		}, cfg)
		if err != nil {
			return res, err
		}
		trow := TwoDimTargetedRow{
			Side: side, Seconds: time.Since(start).Seconds(),
			Rules: len(out.Rules), Regions: len(out.Regions),
		}
		for _, r := range out.Rules {
			if r.Kind == miner.OptimizedGain {
				trow.RectGain = r.Gain
			}
		}
		for _, r := range out.Regions {
			switch r.Class {
			case miner.XMonotoneClass:
				trow.XMonoGain = r.Gain
			case miner.RectilinearConvexClass:
				trow.ConvexGain = r.Gain
			}
		}
		res.Targeted = append(res.Targeted, trow)
	}
	return res, nil
}

// Print writes the scaling rows and the targeted deep-grid sweep.
func (r TwoDimResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Fused 2-D engine: all-pairs mining on a %d-tuple v2 disk relation\n", r.Tuples)
	fmt.Fprintf(w, "%6s  %6s  %5s  %11s  %12s  %9s  %10s  %8s\n",
		"attrs", "pairs", "side", "fused (s)", "legacy (s)", "fused MB", "legacy MB", "speedup")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%6d  %6d  %5d  %11.3f  %12.3f  %9.1f  %10.1f  %7.1fx\n",
			row.Attrs, row.Pairs, row.Side, row.FusedSeconds, row.LegacySeconds,
			row.FusedMB, row.LegacyMB, row.LegacySeconds/row.FusedSeconds)
	}
	if len(r.Targeted) > 0 {
		fmt.Fprintf(w, "Targeted pair, all kinds (2 rect kinds + gain + x-monotone + rectilinear-convex):\n")
		fmt.Fprintf(w, "%5s  %10s  %6s  %8s  %11s  %11s  %11s\n",
			"side", "secs", "rules", "regions", "rect gain", "xmono gain", "convex gain")
		for _, row := range r.Targeted {
			fmt.Fprintf(w, "%5d  %10.3f  %6d  %8d  %11.1f  %11.1f  %11.1f\n",
				row.Side, row.Seconds, row.Rules, row.Regions,
				row.RectGain, row.XMonoGain, row.ConvexGain)
		}
	}
}
