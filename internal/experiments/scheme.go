package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"optrule/internal/bucketing"
	"optrule/internal/core"
	"optrule/internal/datagen"
	"optrule/internal/stats"
)

// SchemeRow compares equi-depth and equi-width bucketing at one M.
type SchemeRow struct {
	Buckets int
	// DepthDevDepth/Width: worst relative bucket-depth deviation.
	DepthDevDepth, DepthDevWidth float64
	// SupErrDepth/Width: relative support error of the mined
	// optimized-support rule versus the exact (finest-bucket) optimum.
	SupErrDepth, SupErrWidth float64
}

// SchemeResult is the bucketing-scheme ablation (paper footnote 3:
// "using equi-depth buckets minimizes the possible error of
// approximations for any fixed number of buckets").
type SchemeResult struct {
	Tuples int
	Rows   []SchemeRow
}

// AblateBucketingScheme mines the planted bank rule (skewed lognormal
// Balance) with equi-depth versus equi-width buckets and reports both
// bucket-depth skew and rule-approximation error.
func AblateBucketingScheme(n int, ms []int, seed int64) (SchemeResult, error) {
	if ms == nil {
		ms = []int{50, 200, 1000}
	}
	res := SchemeResult{Tuples: n}
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		return res, err
	}
	rel, err := datagen.Materialize(bank, n, seed)
	if err != nil {
		return res, err
	}
	theta := 0.55
	opts := bucketing.Options{Bools: []bucketing.BoolCond{{Attr: 3, Want: true}}}

	// Exact optimum from finest buckets.
	bal, err := rel.NumericColumn(0)
	if err != nil {
		return res, err
	}
	loan, err := rel.BoolColumn(3)
	if err != nil {
		return res, err
	}
	exactSupport, err := exactSupportOptimum(bal, loan, theta)
	if err != nil {
		return res, err
	}

	lo, hi, err := bucketing.ColumnExtremes(rel, 0)
	if err != nil {
		return res, err
	}
	for _, m := range ms {
		row := SchemeRow{Buckets: m}

		rng := rand.New(rand.NewSource(seed + int64(m)))
		depthBounds, err := bucketing.SampledBoundaries(rel, 0, m, 40, rng)
		if err != nil {
			return res, err
		}
		widthBounds, err := bucketing.EquiWidthBoundaries(lo, hi, m)
		if err != nil {
			return res, err
		}
		for i, bounds := range []bucketing.Boundaries{depthBounds, widthBounds} {
			counts, err := bucketing.Count(rel, 0, bounds, opts)
			if err != nil {
				return res, err
			}
			dev := stats.DepthDeviation(counts.U)
			compact, _ := counts.Compact()
			v := make([]float64, compact.M)
			for k, c := range compact.V[0] {
				v[k] = float64(c)
			}
			supErr := 1.0
			if p, ok, err := core.OptimalSupportPair(compact.U, v, theta); err != nil {
				return res, err
			} else if ok {
				supErr = abs(float64(p.Count)/float64(n)-exactSupport) / exactSupport
			}
			if i == 0 {
				row.DepthDevDepth, row.SupErrDepth = dev, supErr
			} else {
				row.DepthDevWidth, row.SupErrWidth = dev, supErr
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// exactSupportOptimum computes the finest-bucket optimized-support
// fraction for a raw (values, hits) column.
func exactSupportOptimum(values []float64, hits []bool, theta float64) (float64, error) {
	type pv struct {
		x   float64
		hit bool
	}
	n := len(values)
	pairs := make([]pv, n)
	for i := range pairs {
		pairs[i] = pv{values[i], hits[i]}
	}
	sortByX := func(i, j int) bool { return pairs[i].x < pairs[j].x }
	sort.Slice(pairs, sortByX)
	var u []int
	var v []float64
	for i := 0; i < n; {
		j := i
		cnt, hit := 0, 0
		for j < n && pairs[j].x == pairs[i].x {
			cnt++
			if pairs[j].hit {
				hit++
			}
			j++
		}
		u = append(u, cnt)
		v = append(v, float64(hit))
		i = j
	}
	p, ok, err := core.OptimalSupportPair(u, v, theta)
	if err != nil || !ok {
		return 0, fmt.Errorf("experiments: exact optimum failed: ok=%v err=%v", ok, err)
	}
	return float64(p.Count) / float64(n), nil
}

// Print writes the scheme ablation.
func (r SchemeResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Ablation: equi-depth vs equi-width buckets (footnote 3; %d tuples, skewed Balance)\n", r.Tuples)
	fmt.Fprintf(w, "%10s  %16s  %16s  %16s  %16s\n",
		"buckets", "depth skew (ed)", "depth skew (ew)", "rule err (ed)", "rule err (ew)")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%10d  %15.1f%%  %15.0f%%  %15.2f%%  %15.2f%%\n",
			row.Buckets, 100*row.DepthDevDepth, 100*row.DepthDevWidth,
			100*row.SupErrDepth, 100*row.SupErrWidth)
	}
}
