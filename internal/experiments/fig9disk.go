package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"optrule/internal/bucketing"
	"optrule/internal/datagen"
	"optrule/internal/relation"
)

// Fig9DiskRow is one data point of the out-of-core variant of Figure 9:
// bucketing a DISK-resident relation under a bounded in-memory working
// set, comparing Algorithm 3.1's sampling against an honest external
// merge sort.
//
// Timings are reported for human inspection, but the comparison the
// paper argues by is I/O volume, which is deterministic: Alg31Work
// counts the column values Algorithm 3.1 reads (sampling scan, which
// may abort early, plus the counting scan), and ExternalWork counts
// what the external sort moves (full column scan + each finite value
// written to and read back from a sorted run, plus the same counting
// scan). Tests assert on the counted work, not the clock.
type Fig9DiskRow struct {
	Tuples          int
	Alg31Seconds    float64
	ExternalSeconds float64
	Alg31Work       int64 // values read by sampling + counting scans
	ExternalWork    int64 // values read by scans + spilled to/merged from runs
}

// Fig9DiskResult reproduces the out-of-core reading of Figure 9.
type Fig9DiskResult struct {
	Buckets  int
	MemLimit int // max float64 values the external sort may hold
	Rows     []Fig9DiskRow
}

// Fig9Disk writes each workload to a disk relation, then runs
// (a) Algorithm 3.1: sample 40·M values, sort the sample, one counting
// scan; versus (b) exact bucketing via external merge sort under the
// given memory budget, plus the same counting scan. This is the
// comparison the paper's Section 2.3 argues by — "it takes an enormous
// amount of time to sort a giant database that is much larger than the
// main memory" — made concrete.
func Fig9Disk(sizes []int, memLimit int, seed int64) (Fig9DiskResult, error) {
	if sizes == nil {
		sizes = []int{100000, 200000, 400000}
	}
	if memLimit <= 0 {
		memLimit = 1 << 16 // 64Ki floats = 512 KB working set
	}
	res := Fig9DiskResult{Buckets: 1000, MemLimit: memLimit}
	shape, err := datagen.NewPerfShape(1, 4, nil)
	if err != nil {
		return res, err
	}
	dir, err := os.MkdirTemp("", "optrule-fig9disk")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)

	var opts bucketing.Options
	for _, b := range shape.Schema().BooleanIndices() {
		opts.Bools = append(opts.Bools, bucketing.BoolCond{Attr: b, Want: true})
	}
	for _, n := range sizes {
		path := fmt.Sprintf("%s/n%d.opr", dir, n)
		if err := datagen.WriteDisk(path, shape, n, seed); err != nil {
			return res, err
		}
		rel, err := relation.OpenDisk(path)
		if err != nil {
			return res, err
		}
		row := Fig9DiskRow{Tuples: n}

		rng := rand.New(rand.NewSource(seed + 1))
		counting := &relation.CountingRelation{R: rel}
		start := time.Now()
		bounds, err := bucketing.SampledBoundaries(counting, 0, res.Buckets, 40, rng)
		if err != nil {
			return res, err
		}
		if _, err := bucketing.Count(counting, 0, bounds, opts); err != nil {
			return res, err
		}
		row.Alg31Seconds = time.Since(start).Seconds()
		row.Alg31Work = counting.Rows

		counting = &relation.CountingRelation{R: rel}
		start = time.Now()
		exact, err := bucketing.ExternalExactBoundaries(counting, 0, res.Buckets, dir, memLimit)
		if err != nil {
			return res, err
		}
		if _, err := bucketing.Count(counting, 0, exact, opts); err != nil {
			return res, err
		}
		row.ExternalSeconds = time.Since(start).Seconds()
		// Scanned values plus run-file traffic: the merge sort writes
		// every finite value to a sorted run once and reads it back once
		// (the workload generator produces no NaNs, so that is n each
		// way). This deterministic cost model is what makes the
		// comparison hardware independent.
		row.ExternalWork = counting.Rows + 2*int64(n)

		res.Rows = append(res.Rows, row)
		os.Remove(path)
	}
	return res, nil
}

// Print writes the out-of-core comparison.
func (r Fig9DiskResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 9 (out-of-core variant): disk relation, M=%d, external-sort budget %d values\n",
		r.Buckets, r.MemLimit)
	fmt.Fprintf(w, "%10s  %14s  %18s  %14s  %16s  %10s\n",
		"tuples", "alg3.1 (s)", "external sort (s)", "alg3.1 I/O", "external I/O", "ext/3.1")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%10d  %14.3f  %18.3f  %14d  %16d  %9.1fx\n",
			row.Tuples, row.Alg31Seconds, row.ExternalSeconds,
			row.Alg31Work, row.ExternalWork,
			float64(row.ExternalWork)/float64(row.Alg31Work))
	}
}
