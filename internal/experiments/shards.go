package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"time"

	"optrule/internal/datagen"
	"optrule/internal/miner"
	"optrule/internal/relation"
)

// ShardsRow is one point of the sharding sweep: the full fused MineAll
// workload (one sampling + one counting scan) over the same data split
// into Shards files, scanned serially (shard after shard, the
// single-file-equivalent discipline) and with concurrent shard
// sub-scans (each shard running its own double-buffered prefetcher).
// Bytes are the deterministic counted-I/O model summed across shards;
// equal bytes at every shard count IS the sharding contract — the
// layout changes where rows live, never how many are read. (The only
// slack is boolean bitmap padding: every shard rounds each Boolean
// column up to whole bytes, at most one byte per Boolean attribute per
// shard.)
type ShardsRow struct {
	Shards            int
	SerialSeconds     float64
	ConcurrentSeconds float64
	SerialBytes       int64
	ConcurrentBytes   int64
	Rules             int
}

// ShardsBaseline is the single-file reference measurement.
type ShardsBaseline struct {
	Seconds float64
	Bytes   int64
	Rules   int
}

// ShardsResult is the sharded-backend experiment: single-file baseline
// against 2/4/8-shard layouts of the same relation. GOMAXPROCS is
// recorded because concurrent sub-scans overlap work across cores (and
// disks); on a single-CPU host the concurrent figures measure pipeline
// overhead, not parallel speedup.
type ShardsResult struct {
	Tuples     int
	GoMaxProcs int
	SingleFile ShardsBaseline
	Rows       []ShardsRow
}

// Shards writes an n-tuple bank relation as one v2 file and as sharded
// relations of each requested shard count, then times MineAll on every
// layout, verifying rule-for-rule identity with the single-file result
// as it goes (a wrong-but-fast sharded scan must fail the experiment,
// not publish a bogus win).
func Shards(n int, shardCounts []int, seed int64) (ShardsResult, error) {
	res := ShardsResult{Tuples: n, GoMaxProcs: runtime.GOMAXPROCS(0)}
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		return res, err
	}
	dir, err := os.MkdirTemp("", "optrule-shards")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)

	cfg := miner.Config{Buckets: 1000, Seed: seed}
	mineAll := func(rel relation.Relation) (float64, *miner.Result, error) {
		start := time.Now()
		r, err := miner.MineAll(rel, cfg)
		return time.Since(start).Seconds(), r, err
	}

	singlePath := filepath.Join(dir, "bank.opr")
	if err := datagen.WriteDiskFormat(singlePath, bank, n, seed, relation.DiskFormatV2); err != nil {
		return res, err
	}
	single, err := relation.OpenDisk(singlePath)
	if err != nil {
		return res, err
	}
	defer single.Close()
	secs, want, err := mineAll(single)
	if err != nil {
		return res, err
	}
	res.SingleFile = ShardsBaseline{Seconds: secs, Bytes: single.BytesRead(), Rules: len(want.Rules)}

	for _, shards := range shardCounts {
		manifest := filepath.Join(dir, fmt.Sprintf("bank-%d.oprs", shards))
		if err := datagen.WriteSharded(manifest, bank, n, seed, shards, relation.DiskFormatV2); err != nil {
			return res, err
		}
		sr, err := relation.OpenSharded(manifest)
		if err != nil {
			return res, err
		}
		row := ShardsRow{Shards: shards}
		sr.SetConcurrentScans(0)
		if row.SerialSeconds, row.SerialBytes, err = timedIdentical(sr, mineAll, want); err != nil {
			sr.Close()
			return res, fmt.Errorf("%d shards serial: %w", shards, err)
		}
		sr.SetConcurrentScans(shards)
		if row.ConcurrentSeconds, row.ConcurrentBytes, err = timedIdentical(sr, mineAll, want); err != nil {
			sr.Close()
			return res, fmt.Errorf("%d shards concurrent: %w", shards, err)
		}
		row.Rules = len(want.Rules)
		res.Rows = append(res.Rows, row)
		sr.Close()
	}
	return res, nil
}

// timedIdentical runs the workload on a sharded relation and requires
// its rules to match the single-file reference exactly.
func timedIdentical(sr *relation.ShardedRelation, mineAll func(relation.Relation) (float64, *miner.Result, error), want *miner.Result) (float64, int64, error) {
	sr.ResetBytesRead()
	secs, got, err := mineAll(sr)
	if err != nil {
		return 0, 0, err
	}
	if !reflect.DeepEqual(got.Rules, want.Rules) {
		return 0, 0, fmt.Errorf("sharded rules differ from single-file rules")
	}
	return secs, sr.BytesRead(), nil
}

// Print writes the sharding comparison.
func (r ShardsResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Sharded backend: MineAll over %d bank tuples, GOMAXPROCS=%d\n", r.Tuples, r.GoMaxProcs)
	fmt.Fprintf(w, "%10s  %12s  %12s  %14s  %14s\n", "layout", "serial (s)", "concur (s)", "serial bytes", "concur bytes")
	fmt.Fprintf(w, "%10s  %12.3f  %12s  %14d  %14s\n", "1 file", r.SingleFile.Seconds, "-", r.SingleFile.Bytes, "-")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%9dx  %12.3f  %12.3f  %14d  %14d\n",
			row.Shards, row.SerialSeconds, row.ConcurrentSeconds, row.SerialBytes, row.ConcurrentBytes)
	}
}
