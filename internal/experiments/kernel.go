package experiments

import (
	"fmt"
	"io"
	"reflect"
	"time"

	"optrule/internal/datagen"
	"optrule/internal/plan"
	"optrule/internal/relation"
)

// The kernel experiment: how close does the batch-vectorized general
// counting kernel come to the homogeneous MultiCount fast path, and
// what did vectorizing buy over the reference per-tuple kernel? Three
// timings over the same in-memory relation: a same-shape 1-D batch
// that stays on the fast path, and a mixed 1-D+2-D batch (the same
// 1-D groups plus a pair grid, which forces every group through the
// general kernel) run once with the reference kernel and once with
// the vectorized one. The experiment hard-fails unless both kernels
// produce bit-identical statistics — 1-D groups and 2-D grid cells.

// KernelResult is the counting-kernel experiment's structured result.
type KernelResult struct {
	Tuples int
	Reps   int
	// FastPath is the homogeneous batch on the MultiCount fast path.
	FastPathSeconds float64
	FastPathNsRow   float64
	// Ref and Vec are the mixed 1-D+2-D batch under the reference
	// per-tuple kernel and the batch-vectorized kernel.
	RefSeconds float64
	RefNsRow   float64
	VecSeconds float64
	VecNsRow   float64
	// VecSpeedup is ref/vec; GapToFast is vec/fast — how much slower
	// the general kernel still is than the fast path (the mixed batch
	// also fills a pair grid the fast batch does not, so ~1x means the
	// gap is fully closed).
	VecSpeedup float64
	GapToFast  float64
}

// kernelRun resolves the batch and times plan.Run, taking the best of
// reps runs with a fresh cache each time so no statistics carry over.
func kernelRun(rel relation.Relation, d plan.Defaults, queries []plan.Query, reps int) (*plan.StatsSet, float64, error) {
	req := plan.NewRequirements()
	for _, q := range queries {
		r, err := plan.Resolve(rel, d, q)
		if err != nil {
			return nil, 0, err
		}
		req.Add(r)
	}
	var set *plan.StatsSet
	best := 0.0
	for i := 0; i < reps; i++ {
		start := time.Now()
		s, err := plan.Run(rel, d, plan.NewCache(0), req)
		if err != nil {
			return nil, 0, err
		}
		elapsed := time.Since(start).Seconds()
		if i == 0 || elapsed < best {
			set, best = s, elapsed
		}
	}
	return set, best, nil
}

// Kernel measures the three counting configurations on an n-tuple
// in-memory bank relation (memory, so the comparison is pure CPU cost,
// not I/O).
func Kernel(n int, seed int64) (KernelResult, error) {
	const reps = 3
	res := KernelResult{Tuples: n, Reps: reps}
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		return res, err
	}
	rel, err := datagen.Materialize(bank, n, seed)
	if err != nil {
		return res, err
	}

	d := plan.Defaults{Buckets: 500, GridSide: 32, SampleFactor: 40, Seed: seed}
	// One all-attribute rules query: every group has the same tally
	// shape, so countScan stays on the homogeneous MultiCount path.
	fast := []plan.Query{{Op: plan.OpRules}}
	// Adding a 2-D pair makes the batch mixed-schedule and forces
	// every group — the same 1-D groups plus the pair grid — through
	// the general kernel.
	general := append(fast, plan.Query{
		Op: plan.OpRules2D, Numeric: "Balance", NumericB: "Age",
		Objective: "CardLoan", ObjectiveValue: true,
	})

	if _, res.FastPathSeconds, err = kernelRun(rel, d, fast, reps); err != nil {
		return res, err
	}
	dRef := d
	dRef.RefKernel = true
	refSet, refSec, err := kernelRun(rel, dRef, general, reps)
	if err != nil {
		return res, err
	}
	vecSet, vecSec, err := kernelRun(rel, d, general, reps)
	if err != nil {
		return res, err
	}
	res.RefSeconds, res.VecSeconds = refSec, vecSec
	if len(refSet.Groups) == 0 || len(refSet.Pairs) == 0 {
		return res, fmt.Errorf("kernel: reference run produced %d groups, %d pairs; the comparison is vacuous",
			len(refSet.Groups), len(refSet.Pairs))
	}
	if !reflect.DeepEqual(refSet.Groups, vecSet.Groups) {
		return res, fmt.Errorf("kernel: vectorized 1-D statistics deviate from the reference kernel")
	}
	for k, w := range refSet.Pairs {
		g, ok := vecSet.Pairs[k]
		if !ok || w.N != g.N || w.Hits != g.Hits ||
			!reflect.DeepEqual(w.Grid.U, g.Grid.U) || !reflect.DeepEqual(w.Grid.V, g.Grid.V) {
			return res, fmt.Errorf("kernel: vectorized pair grid %v deviates from the reference kernel", k)
		}
	}

	perRow := func(s float64) float64 { return s * 1e9 / float64(n) }
	res.FastPathNsRow = perRow(res.FastPathSeconds)
	res.RefNsRow = perRow(res.RefSeconds)
	res.VecNsRow = perRow(res.VecSeconds)
	res.VecSpeedup = res.RefSeconds / res.VecSeconds
	res.GapToFast = res.VecSeconds / res.FastPathSeconds
	return res, nil
}

// Print writes the kernel comparison.
func (r KernelResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Counting kernels: %d in-memory tuples, best of %d runs\n", r.Tuples, r.Reps)
	fmt.Fprintf(w, "%28s  %10s  %10s\n", "configuration", "seconds", "ns/row")
	fmt.Fprintf(w, "%28s  %10.3f  %10.1f\n", "fast path (homogeneous)", r.FastPathSeconds, r.FastPathNsRow)
	fmt.Fprintf(w, "%28s  %10.3f  %10.1f\n", "general, reference kernel", r.RefSeconds, r.RefNsRow)
	fmt.Fprintf(w, "%28s  %10.3f  %10.1f\n", "general, vectorized kernel", r.VecSeconds, r.VecNsRow)
	fmt.Fprintf(w, "vectorized vs reference: %.2fx; gap to fast path: %.2fx\n", r.VecSpeedup, r.GapToFast)
}
