package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestColScanByteModel pins the counted-I/O model of the columnar
// format sweep: v1 pays the full row width for every selected-column
// count, v2 pays exactly the selected columns, and the ratio at k=2 of
// d=8 is the tentpole's >= 2x.
func TestColScanByteModel(t *testing.T) {
	n, d := 20000, 8
	res, err := ColScan(n, d, []int{1, 2, 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	rowBytes := int64(8*d + (res.BoolAttrs+7)/8)
	for _, row := range res.Rows {
		if row.V1Bytes != int64(n)*rowBytes {
			t.Errorf("k=%d: v1 bytes = %d, want %d (full rows regardless of selection)",
				row.SelectedCols, row.V1Bytes, int64(n)*rowBytes)
		}
		if row.V2Bytes != int64(n)*8*int64(row.SelectedCols) {
			t.Errorf("k=%d: v2 bytes = %d, want %d (selected columns only)",
				row.SelectedCols, row.V2Bytes, int64(n)*8*int64(row.SelectedCols))
		}
	}
	// The acceptance shape: >= 2x fewer bytes at 2 of 8 columns.
	k2 := res.Rows[1]
	if k2.V2Bytes*2 > k2.V1Bytes {
		t.Errorf("k=2: v2 reads %d bytes vs v1 %d, want >= 2x reduction", k2.V2Bytes, k2.V1Bytes)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Columnar disk format") {
		t.Errorf("print output malformed: %s", buf.String())
	}
}

func TestColScanRejectsBadColumnCounts(t *testing.T) {
	if _, err := ColScan(1000, 4, []int{0}, 1); err == nil {
		t.Errorf("k=0 accepted")
	}
	if _, err := ColScan(1000, 4, []int{5}, 1); err == nil {
		t.Errorf("k>d accepted")
	}
}
