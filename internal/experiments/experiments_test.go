package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestFig1ShapeMatchesPaper(t *testing.T) {
	res := Fig1(60)
	if len(res.Rows) != 60 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The paper's reading: p_e drops sharply below S/M=40, is < 0.3% at
	// 40, and flattens beyond.
	at := func(ratio, mIdx int) float64 { return res.Rows[ratio-1].PE[mIdx] }
	for mIdx := range res.Ms {
		if at(5, mIdx) < at(40, mIdx) {
			t.Errorf("M=%d: p_e should fall from S/M=5 to 40 (%g vs %g)", res.Ms[mIdx], at(5, mIdx), at(40, mIdx))
		}
		if at(40, mIdx) >= 0.0035 {
			t.Errorf("M=%d: p_e at S/M=40 = %g, want < 0.3%%", res.Ms[mIdx], at(40, mIdx))
		}
	}
	// The derived operating point should be at or below the paper's 40.
	if res.Chosen > 45 || res.Chosen < 10 {
		t.Errorf("chosen S/M = %d, want near the paper's 40", res.Chosen)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "M=10000") {
		t.Errorf("print output missing M=10000 column: %s", buf.String())
	}
}

func TestTable1MatchesPaperNumbers(t *testing.T) {
	res := Table1(100000)
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Paper's support_app column.
	wantSupport := map[int][2]float64{
		10:   {0.10, 0.50},
		50:   {0.26, 0.34},
		100:  {0.28, 0.32},
		500:  {0.296, 0.304},
		1000: {0.298, 0.302},
	}
	for _, row := range res.Rows {
		w := wantSupport[row.Buckets]
		if diff := row.SupportLo - w[0]; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("M=%d: support lo %g, want %g", row.Buckets, row.SupportLo, w[0])
		}
		if diff := row.SupportHi - w[1]; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("M=%d: support hi %g, want %g", row.Buckets, row.SupportHi, w[1])
		}
		// The measured approximation must fall inside the analytic bound
		// (that is the content of Section 3.4).
		if row.MeasuredSupport < row.SupportLo-1e-9 || row.MeasuredSupport > row.SupportHi+1e-9 {
			t.Errorf("M=%d: measured support %g outside bound [%g, %g]",
				row.Buckets, row.MeasuredSupport, row.SupportLo, row.SupportHi)
		}
		if row.MeasuredConf < row.ConfLo-1e-9 || row.MeasuredConf > row.ConfHi+1e-9 {
			t.Errorf("M=%d: measured conf %g outside bound [%g, %g]",
				row.Buckets, row.MeasuredConf, row.ConfLo, row.ConfHi)
		}
		// Approximation quality improves with M; at M>=500 the measured
		// support should be within 1% of the optimum.
		if row.Buckets >= 500 {
			if d := row.MeasuredSupport - 0.30; d > 0.01 || d < -0.01 {
				t.Errorf("M=%d: measured support %g too far from 30%%", row.Buckets, row.MeasuredSupport)
			}
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Table I") {
		t.Errorf("print output malformed")
	}
}

func TestFig9ShapeSmall(t *testing.T) {
	// Small sizes keep the test fast; the ordering claim is scale-free
	// enough to check at 30–60k tuples.
	res, err := Fig9([]int{30000, 100000}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Alg31Seconds <= 0 || row.NaiveSeconds <= 0 || row.VSplitSeconds <= 0 {
			t.Errorf("non-positive timing: %+v", row)
		}
	}
	// Who-wins shape: Algorithm 3.1 beats Naive Sort decisively at the
	// larger size. (At tiny N the fixed 40·M sampling cost can tie them,
	// so only the largest point is asserted, with headroom for timer
	// noise.)
	last := res.Rows[len(res.Rows)-1]
	if last.NaiveSeconds < 1.3*last.Alg31Seconds {
		t.Errorf("N=%d: naive sort (%gs) should clearly exceed algorithm 3.1 (%gs)",
			last.Tuples, last.NaiveSeconds, last.Alg31Seconds)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Figure 9") {
		t.Errorf("print output malformed")
	}
}

func TestFig9DiskShapeSmall(t *testing.T) {
	res, err := Fig9Disk([]int{20000, 40000}, 2048, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Alg31Seconds <= 0 || row.ExternalSeconds <= 0 {
			t.Errorf("non-positive timing: %+v", row)
		}
		// The who-wins claim is asserted on counted I/O, which is
		// deterministic, rather than wall-clock, which on a fast machine
		// ties at these small sizes. The external sort must move every
		// tuple through its spill files on top of the scans both sides
		// share, so its counted work strictly dominates.
		n := int64(row.Tuples)
		if row.Alg31Work <= 0 || row.Alg31Work > 2*n {
			t.Errorf("N=%d: alg3.1 work %d outside (0, 2N]", row.Tuples, row.Alg31Work)
		}
		if row.ExternalWork != 4*n {
			t.Errorf("N=%d: external work %d, want 4N=%d (two scans + spill write/read)",
				row.Tuples, row.ExternalWork, 4*n)
		}
		if row.ExternalWork <= row.Alg31Work {
			t.Errorf("N=%d: external sort work (%d) should exceed sampling work (%d)",
				row.Tuples, row.ExternalWork, row.Alg31Work)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "out-of-core") {
		t.Errorf("print malformed")
	}
}

func TestFusedExperimentShape(t *testing.T) {
	res, err := Fused(20000, []int{1, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.FusedScans != 2 {
			t.Errorf("attrs=%d: fused pipeline issued %d scans, want 2", row.Attrs, row.FusedScans)
		}
		if want := 2 * row.Attrs; row.LegacyScans != want {
			t.Errorf("attrs=%d: legacy pipeline issued %d scans, want %d", row.Attrs, row.LegacyScans, want)
		}
		if row.Attrs > 1 && row.FusedRows >= row.LegacyRows {
			t.Errorf("attrs=%d: fused streamed %d rows, legacy %d; fused should read less",
				row.Attrs, row.FusedRows, row.LegacyRows)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Fused counting engine") {
		t.Errorf("print malformed")
	}
}

func TestFig10And11ShapeSmall(t *testing.T) {
	f10 := Fig10([]int{500, 5000}, 5000, 2)
	f11 := Fig11([]int{500, 5000}, 5000, 2)
	for _, res := range []FigRuleResult{f10, f11} {
		if len(res.Rows) != 2 {
			t.Fatalf("%s: rows = %d", res.Name, len(res.Rows))
		}
		for _, row := range res.Rows {
			if row.FastSeconds <= 0 {
				t.Errorf("%s: non-positive fast timing at M=%d", res.Name, row.Buckets)
			}
		}
		// At M=5000 the quadratic baseline must lose by a wide margin
		// (paper: an order of magnitude well before 5000 buckets).
		last := res.Rows[len(res.Rows)-1]
		if last.NaiveSeconds < 10*last.FastSeconds {
			t.Errorf("%s: at M=%d naive %gs vs fast %gs; want >=10x gap",
				res.Name, last.Buckets, last.NaiveSeconds, last.FastSeconds)
		}
		var buf bytes.Buffer
		res.Print(&buf)
		if !strings.Contains(buf.String(), "Figure 1") {
			t.Errorf("%s: print output malformed", res.Name)
		}
	}
}

func TestFigNaiveCapSkips(t *testing.T) {
	res := Fig10([]int{100, 2000}, 500, 3)
	if res.Rows[0].NaiveSeconds == 0 {
		t.Errorf("naive should run at M=100 under cap 500")
	}
	if res.Rows[1].NaiveSeconds != 0 {
		t.Errorf("naive should be skipped at M=2000 under cap 500")
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "skipped") {
		t.Errorf("skipped rows should be marked: %s", buf.String())
	}
}

func TestRegionsExperimentShape(t *testing.T) {
	res, err := Regions(16, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := map[string]RegionRow{}
	for _, r := range res.Rows {
		byName[r.Workload] = r
		// Class hierarchy holds on every workload.
		if r.ConvexGain < r.RectGain-1e-9 || r.XMonoGain < r.ConvexGain-1e-9 {
			t.Errorf("%s: gain hierarchy violated: %g / %g / %g",
				r.Workload, r.RectGain, r.ConvexGain, r.XMonoGain)
		}
	}
	// On the axis-parallel block all classes tie.
	b := byName["block"]
	if b.XMonoGain > b.RectGain+1e-9 {
		t.Errorf("block: region classes should tie with the rectangle: %g vs %g", b.XMonoGain, b.RectGain)
	}
	// On the diagonal the general classes must win decisively.
	d := byName["diagonal"]
	if d.XMonoGain < 2*d.RectGain {
		t.Errorf("diagonal: x-monotone gain %g should dwarf rectangle gain %g", d.XMonoGain, d.RectGain)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "region classes") {
		t.Errorf("print malformed")
	}
}

func TestParallelSmall(t *testing.T) {
	res, err := Parallel(200000, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 { // 1, 2, 4
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0].PEs != 1 || res.Rows[0].Speedup != 1 {
		t.Errorf("first row should be the single-PE baseline: %+v", res.Rows[0])
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "parallel bucketing") {
		t.Errorf("print output malformed")
	}
}
