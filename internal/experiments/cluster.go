package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"optrule/internal/miner"
	"optrule/internal/relation"
)

// The cluster experiment: what does the prunable-layout pipeline —
// ClusterBy on the write path, RLE/FOR encodings on sorted runs, and
// zone-map-aware work-stealing scan scheduling — buy end to end?
//
// The same tuple stream is written to v3 twice, shuffled and clustered
// by the driver column. Part one measures layout: a selective
// Boolean-filtered query whose matches live in one value band of the
// cluster column must read a fraction of the unclustered bytes,
// because clustering turned the zone maps from overlapping (useless)
// into partitioning (every out-of-band group refuted). Part two
// measures scheduling on the clustered file, where pruning makes chunk
// costs maximally skewed: the same predicated parallel scan runs under
// static equal-row segmentation (the pre-scheduler AlignedSegments
// split, one worker per segment) and under the zone-map-priced
// work-stealing chunk queue (PlanScanChunks + dynamic claiming), per
// PE count. The schedule wins twice: static segmentation strands the
// whole surviving band on whichever worker's segment covers it while
// stealing spreads it, and static walks every zone-refuted group
// through the scan machinery just to skip it while the planner's
// Pruned chunks are settled without issuing a scan at all.
//
// Hard-fails: clustered and unclustered files must mine DeepEqual-
// identical rules (exact domains make boundaries row-order
// independent), the filtered answers must match, the clustered
// filtered read must be at least 2x cheaper in physical bytes, and
// both schedules must deliver identical row totals and checksums.

// ClusterResult is the prunable-layout experiment's structured result.
type ClusterResult struct {
	Tuples     int
	GroupRows  int
	GoMaxProcs int
	// Rules mined identically on both layouts (deviation hard-fails).
	Rules int
	// Physical bytes of the selective Boolean-filtered query.
	UnclusteredFilteredBytes int64
	ClusteredFilteredBytes   int64
	// Wall-clock seconds of the filtered parallel scan on the clustered
	// file, static equal-row segmentation vs work-stealing chunks, per
	// PE count (best of three runs each).
	PEs             []int
	StaticSeconds   []float64
	StealingSeconds []float64
	// Rows the predicate survived — identical under every schedule.
	MatchRows int64
}

// writeBanded writes n tuples: X uniform over 200 integer values (an
// exact domain), Y a payload column over 500 distinct NON-integer
// values — too many for the dictionary encoder and ineligible for
// delta/FOR, so its blocks stay raw and carry full decode weight,
// while the domain is still small enough for exact-domain boundaries
// (rule identity across row orders) — B a planted objective correlated
// with the band, and F true exactly when X lies in [120, 133] — so
// clustering by X makes F constant-false outside the band's block
// groups. clusterAttr < 0 writes append (shuffled) order.
func writeBanded(path string, n, groupRows int, clusterAttr int, seed int64) (*relation.DiskRelation, error) {
	schema := relation.Schema{
		{Name: "X", Kind: relation.Numeric},
		{Name: "Y", Kind: relation.Numeric},
		{Name: "B", Kind: relation.Boolean},
		{Name: "F", Kind: relation.Boolean},
	}
	dw, err := relation.NewDiskWriterV3(path, schema, groupRows)
	if err != nil {
		return nil, err
	}
	if clusterAttr >= 0 {
		if err := dw.ClusterBy(clusterAttr); err != nil {
			dw.Discard()
			return nil, err
		}
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		x := float64(rng.Intn(200))
		inBand := x >= 120 && x <= 133
		p := 0.15
		if inBand {
			p = 0.75
		}
		y := float64(rng.Intn(500))*0.5 + 0.25
		if err := dw.Append([]float64{x, y}, []bool{rng.Float64() < p, inBand}); err != nil {
			dw.Discard()
			return nil, err
		}
	}
	if err := dw.Close(); err != nil {
		return nil, err
	}
	return relation.OpenDisk(path)
}

// scanStatic runs the predicated scan under the pre-scheduler static
// split: pes equal-row storage-aligned segments, one worker pinned to
// each. Returns rows delivered and a value checksum.
func scanStatic(dr *relation.DiskRelation, pes int, cols relation.ColumnSet, pred *relation.Predicate) (int64, float64, error) {
	segs := relation.AlignedSegments(dr, dr.NumTuples(), pes)
	var rows atomic.Int64
	sums := make([]float64, pes)
	errs := make([]error, pes)
	var wg sync.WaitGroup
	for p := 0; p < pes; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			var local float64 // avoid false sharing on sums during the scan
			errs[p] = dr.ScanRangePruned(segs[p], segs[p+1], cols, pred,
				func(int) error { return nil },
				func(b *relation.Batch) error {
					rows.Add(int64(b.Len))
					for _, v := range b.Numeric[0][:b.Len] {
						local += v
					}
					return nil
				})
			sums[p] = local
		}(p)
	}
	wg.Wait()
	var sum float64
	for p := 0; p < pes; p++ {
		if errs[p] != nil {
			return 0, 0, errs[p]
		}
		sum += sums[p]
	}
	return rows.Load(), sum, nil
}

// scanStealing runs the same predicated scan under the zone-map-aware
// schedule: PlanScanChunks prices block-group-aligned chunks under
// pred and pes workers claim them dynamically.
func scanStealing(dr *relation.DiskRelation, pes int, cols relation.ColumnSet, pred *relation.Predicate) (int64, float64, error) {
	chunks := relation.PlanScanChunks(dr, pes, cols, pred)
	var rows atomic.Int64
	sums := make([]float64, len(chunks))
	errs := make([]error, len(chunks))
	var next atomic.Int64
	var wg sync.WaitGroup
	workers := pes
	if workers > len(chunks) {
		workers = len(chunks)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(chunks) {
					return
				}
				if chunks[i].Pruned {
					continue // planner-proved empty: no scan, no rows
				}
				var local float64 // avoid false sharing on sums during the scan
				errs[i] = dr.ScanRangePruned(chunks[i].Start, chunks[i].End, cols, pred,
					func(int) error { return nil },
					func(b *relation.Batch) error {
						rows.Add(int64(b.Len))
						for _, v := range b.Numeric[0][:b.Len] {
							local += v
						}
						return nil
					})
				sums[i] = local
			}
		}()
	}
	wg.Wait()
	var sum float64
	for i := range errs {
		if errs[i] != nil {
			return 0, 0, errs[i]
		}
		sum += sums[i]
	}
	return rows.Load(), sum, nil
}

// Cluster runs the prunable-layout experiment; see the package comment
// at the top of this file for what it measures and what hard-fails.
func Cluster(n, groupRows int, pesList []int, seed int64) (ClusterResult, error) {
	res := ClusterResult{Tuples: n, GroupRows: groupRows, GoMaxProcs: runtime.GOMAXPROCS(0), PEs: pesList}
	dir, err := os.MkdirTemp("", "optrule-cluster")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	shuffled, err := writeBanded(filepath.Join(dir, "shuffled.opr"), n, groupRows, -1, seed)
	if err != nil {
		return res, err
	}
	defer shuffled.Close()
	clustered, err := writeBanded(filepath.Join(dir, "clustered.opr"), n, groupRows, 0, seed)
	if err != nil {
		return res, err
	}
	defer clustered.Close()

	// Rule identity: exact domains (X has 200 distinct values) make
	// boundaries independent of row order, so the two layouts must mine
	// the same rules bit for bit.
	cfg := miner.Config{Buckets: 100, Seed: seed, ExactDomainLimit: 1024}
	rShuf, err := miner.MineAll(shuffled, cfg)
	if err != nil {
		return res, err
	}
	rClus, err := miner.MineAll(clustered, cfg)
	if err != nil {
		return res, err
	}
	res.Rules = len(rShuf.Rules)
	if res.Rules == 0 {
		return res, fmt.Errorf("cluster: mined no rules; the comparison is vacuous")
	}
	if !reflect.DeepEqual(rShuf.Rules, rClus.Rules) {
		return res, fmt.Errorf("cluster: rules deviate between shuffled and clustered layouts")
	}

	// Layout: the selective filtered query. F=true rows live only in
	// the clustered file's band groups; everywhere else the zone maps
	// refute the filter and the blocks never leave the disk.
	filtered := func(dr *relation.DiskRelation) ([]miner.Answer, int64, error) {
		s, err := miner.NewSession(dr, cfg)
		if err != nil {
			return nil, 0, err
		}
		dr.ResetBytesRead()
		answers, err := s.ExecuteBatch([]miner.Query{{
			Op: miner.OpRules, Numeric: "X", Objective: "B", ObjectiveValue: true,
			Conditions: []miner.Condition{{Attr: "F", Value: true}},
		}})
		return answers, dr.BytesRead(), err
	}
	aShuf, bShuf, err := filtered(shuffled)
	if err != nil {
		return res, err
	}
	aClus, bClus, err := filtered(clustered)
	if err != nil {
		return res, err
	}
	res.UnclusteredFilteredBytes, res.ClusteredFilteredBytes = bShuf, bClus
	if !answersEqual(aShuf, aClus) {
		return res, fmt.Errorf("cluster: filtered answers deviate between layouts")
	}
	if 2*res.ClusteredFilteredBytes > res.UnclusteredFilteredBytes {
		return res, fmt.Errorf("cluster: clustered filtered query read %d bytes, unclustered %d; want at least 2x fewer",
			res.ClusteredFilteredBytes, res.UnclusteredFilteredBytes)
	}

	// Scheduling: the same predicated scan on the clustered file under
	// both schedules, best of three runs each.
	cols := relation.ColumnSet{Numeric: []int{0, 1}, Bool: []int{2, 3}}
	pred := &relation.Predicate{Bools: []relation.BoolPredicate{{Attr: 3, Want: true}}}
	const reps = 3
	var wantRows int64
	var wantSum float64
	for _, pes := range pesList {
		best := func(scan func(*relation.DiskRelation, int, relation.ColumnSet, *relation.Predicate) (int64, float64, error)) (float64, error) {
			bestS := 0.0
			for r := 0; r < reps; r++ {
				start := time.Now()
				rows, sum, err := scan(clustered, pes, cols, pred)
				s := time.Since(start).Seconds()
				if err != nil {
					return 0, err
				}
				if wantRows == 0 {
					wantRows, wantSum = rows, sum
				} else if rows != wantRows || sum != wantSum {
					return 0, fmt.Errorf("cluster: schedule deviation: %d rows (sum %g), want %d (sum %g)",
						rows, sum, wantRows, wantSum)
				}
				if r == 0 || s < bestS {
					bestS = s
				}
			}
			return bestS, nil
		}
		sStatic, err := best(scanStatic)
		if err != nil {
			return res, err
		}
		sSteal, err := best(scanStealing)
		if err != nil {
			return res, err
		}
		res.StaticSeconds = append(res.StaticSeconds, sStatic)
		res.StealingSeconds = append(res.StealingSeconds, sSteal)
	}
	res.MatchRows = wantRows
	return res, nil
}

// Print writes the prunable-layout comparison.
func (r ClusterResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Prunable layouts: %d tuples, block groups of %d rows, %d rules mined identically\n",
		r.Tuples, r.GroupRows, r.Rules)
	fmt.Fprintf(w, "selective filtered query: unclustered %d B, clustered %d B (%.1fx fewer)\n",
		r.UnclusteredFilteredBytes, r.ClusteredFilteredBytes,
		float64(r.UnclusteredFilteredBytes)/float64(r.ClusteredFilteredBytes))
	fmt.Fprintf(w, "filtered parallel scan on the clustered file (%d matching rows, GOMAXPROCS=%d):\n",
		r.MatchRows, r.GoMaxProcs)
	fmt.Fprintf(w, "%6s  %12s  %12s  %8s\n", "PEs", "static (s)", "stealing (s)", "speedup")
	for i, pes := range r.PEs {
		fmt.Fprintf(w, "%6d  %12.4f  %12.4f  %7.2fx\n",
			pes, r.StaticSeconds[i], r.StealingSeconds[i], r.StaticSeconds[i]/r.StealingSeconds[i])
	}
}
