package relation

import (
	"fmt"
	"math"
	"sort"
)

// ClusterBy declares a cluster column for the writer: Close writes the
// appended tuples ordered by that column's value instead of in append
// order. Must be called before the first Append. The column may be
// numeric (ascending, NaN last) or Boolean (false before true); the
// sort is stable, so equal-key rows keep their append order and the
// clustered layout is deterministic.
//
// Clustering is what makes the v3 format's structure exploitable on
// columns that arrive shuffled: sorted values produce long runs (RLE),
// tight per-block ranges (delta/FOR at narrow bit widths), and —
// decisive for predicated scans — zone maps that partition the value
// space, so a selective filter prunes whole block groups instead of
// matching a few rows in every group. It works on every format
// version, but only v2/v3 block layouts profit.
//
// Cost: the writer buffers ALL appended tuples in memory until Close
// (an in-memory permute — 8 bytes per numeric plus 1 per Boolean
// value), so clustering is for datasets a build machine can hold even
// when the written file will be scanned out of core.
//
// Caveat for mining reproducibility: clustering REORDERS ROWS, and the
// sampling pass consumes rows in storage order through per-attribute
// RNG streams — so sampling-derived bucket boundaries on a clustered
// relation differ from the unclustered ones (statistically equivalent,
// not bit-identical). Exact-domain boundaries do not depend on row
// order; differential tests pin clustered-vs-unclustered rule identity
// there.
func (dw *DiskWriter) ClusterBy(attr int) error {
	if dw.closed {
		return fmt.Errorf("relation: ClusterBy on closed DiskWriter")
	}
	if dw.clustering {
		return fmt.Errorf("relation: cluster column already chosen")
	}
	if dw.rows > 0 {
		return fmt.Errorf("relation: ClusterBy must precede the first Append")
	}
	if attr < 0 || attr >= len(dw.schema) {
		return fmt.Errorf("relation: cluster attribute %d out of schema [0, %d)", attr, len(dw.schema))
	}
	dw.clustering = true
	dw.clusterAttr = attr
	dw.bufNums = make([][]float64, dw.nums)
	dw.bufBools = make([][]bool, dw.bools)
	return nil
}

// clusterPerm returns the stable permutation ordering rows 0..n-1 by
// key, NaN keys last.
func clusterPerm(n int, key func(row int) float64) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(i, j int) bool {
		a, b := key(perm[i]), key(perm[j])
		if math.IsNaN(b) {
			return !math.IsNaN(a)
		}
		return a < b
	})
	return perm
}

// replayClustered sorts the buffered tuples by the cluster column and
// streams them through the normal append path, releasing the buffers.
func (dw *DiskWriter) replayClustered() error {
	dw.clustering = false
	pos := 0
	for i := 0; i < dw.clusterAttr; i++ {
		if dw.schema[i].Kind == dw.schema[dw.clusterAttr].Kind {
			pos++
		}
	}
	var key func(row int) float64
	if dw.schema[dw.clusterAttr].Kind == Numeric {
		col := dw.bufNums[pos]
		key = func(row int) float64 { return col[row] }
	} else {
		col := dw.bufBools[pos]
		key = func(row int) float64 {
			if col[row] {
				return 1
			}
			return 0
		}
	}
	perm := clusterPerm(dw.bufRows, key)
	nums := make([]float64, dw.nums)
	bools := make([]bool, dw.bools)
	for _, row := range perm {
		for j := range nums {
			nums[j] = dw.bufNums[j][row]
		}
		for j := range bools {
			bools[j] = dw.bufBools[j][row]
		}
		if err := dw.Append(nums, bools); err != nil {
			return err
		}
	}
	dw.bufNums, dw.bufBools, dw.bufRows = nil, nil, 0
	return nil
}

// ConvertFileClustered is ConvertFile with a cluster column: the
// destination file holds the source's tuples reordered by the given
// attribute (see ClusterBy for ordering, memory cost, and the
// sampling-reproducibility caveat). The source is left untouched.
func ConvertFileClustered(src Relation, dst string, version, clusterAttr int) error {
	return convertFile(src, dst, version, clusterAttr)
}
