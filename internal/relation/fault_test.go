package relation

import (
	"errors"
	"testing"
	"time"
)

// collectScan drains a full scan of the Balance and CardLoan columns.
func collectScan(rel Relation) ([]float64, []bool, error) {
	var nums []float64
	var bools []bool
	err := rel.Scan(ColumnSet{Numeric: []int{0}, Bool: []int{2}}, func(b *Batch) error {
		nums = append(nums, b.Numeric[0][:b.Len]...)
		bools = append(bools, b.Bool[0][:b.Len]...)
		return nil
	})
	return nums, bools, err
}

// TestFaultSelectionDeterministic pins the seed-driven selection: two
// wrappers with equal configs fail exactly the same scan ordinals, and
// a different seed draws a different (non-degenerate) pattern.
func TestFaultSelectionDeterministic(t *testing.T) {
	_, mem := writeTestFile(t, 100, 1)
	pattern := func(seed int64) []bool {
		fr := NewFaultRelation(mem, FaultConfig{Seed: seed, FailProb: 0.4})
		var fails []bool
		for i := 0; i < 40; i++ {
			_, _, err := collectScan(fr)
			if err != nil && !errors.Is(err, ErrInjected) {
				t.Fatalf("scan %d: unexpected error kind: %v", i, err)
			}
			fails = append(fails, err != nil)
		}
		return fails
	}
	a, b := pattern(7), pattern(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at scan %d: %v vs %v", i+1, a, b)
		}
	}
	nA := 0
	for _, f := range a {
		if f {
			nA++
		}
	}
	if nA == 0 || nA == len(a) {
		t.Fatalf("degenerate selection at FailProb=0.4: %d/%d scans failed", nA, len(a))
	}
	c := pattern(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds drew identical failure patterns")
	}
}

// TestFaultFailScansAndEvery pins the explicit selectors: listed
// ordinals and every-Nth ordinals fail, everything else passes.
func TestFaultFailScansAndEvery(t *testing.T) {
	_, mem := writeTestFile(t, 50, 2)
	fr := NewFaultRelation(mem, FaultConfig{FailScans: []int{2}, FailEvery: 5})
	wantFail := map[int]bool{2: true, 5: true, 10: true}
	for ord := 1; ord <= 10; ord++ {
		_, _, err := collectScan(fr)
		if wantFail[ord] && !errors.Is(err, ErrInjected) {
			t.Errorf("scan %d: want injected fault, got %v", ord, err)
		}
		if !wantFail[ord] && err != nil {
			t.Errorf("scan %d: unselected scan failed: %v", ord, err)
		}
	}
	if got := fr.Scans(); got != 10 {
		t.Errorf("Scans() = %d, want 10", got)
	}
	if got := fr.Injected(); got != 3 {
		t.Errorf("Injected() = %d, want 3", got)
	}
}

// TestFaultMidScanAtRow pins the row-accurate mid-stream cut: a
// selected scan delivers exactly FailAfterRows rows, then errors.
func TestFaultMidScanAtRow(t *testing.T) {
	n := DefaultBatchSize + 500
	_, mem := writeTestFile(t, n, 3)
	failAt := DefaultBatchSize + 123 // inside the second batch
	fr := NewFaultRelation(mem, FaultConfig{FailEvery: 1, FailAfterRows: failAt})
	nums, _, err := collectScan(fr)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected fault, got %v", err)
	}
	if len(nums) != failAt {
		t.Fatalf("delivered %d rows before the fault, want %d", len(nums), failAt)
	}
	// And the delivered prefix is the true data, not garbage.
	want, _ := mem.NumericColumn(0)
	for i, v := range nums {
		if v != want[i] {
			t.Fatalf("row %d corrupted: got %g want %g", i, v, want[i])
		}
	}
}

// TestFaultBeforeFirstBatch pins FailAfterRows=0: the failure mimics an
// open/header error, before any rows flow.
func TestFaultBeforeFirstBatch(t *testing.T) {
	_, mem := writeTestFile(t, 100, 4)
	fr := NewFaultRelation(mem, FaultConfig{FailEvery: 1})
	nums, _, err := collectScan(fr)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected fault, got %v", err)
	}
	if len(nums) != 0 {
		t.Fatalf("fail-before-first-batch delivered %d rows", len(nums))
	}
}

// TestFaultAfterStreamEnd pins finish(): a selected scan whose fault
// row lies beyond the data still fails — selection is never silently
// forgiven by a short relation.
func TestFaultAfterStreamEnd(t *testing.T) {
	_, mem := writeTestFile(t, 100, 5)
	fr := NewFaultRelation(mem, FaultConfig{FailEvery: 1, FailAfterRows: 10_000})
	if _, _, err := collectScan(fr); !errors.Is(err, ErrInjected) {
		t.Fatalf("fault row beyond stream end was forgiven: %v", err)
	}
}

// TestFaultShortBatchesFidelity pins the re-chunker: with ShortBatches
// set, every delivered batch respects the cap and the concatenated
// stream is byte-identical to the unwrapped scan — over both the memory
// backend and the v2 prefetcher (whose batches the wrapper re-slices).
func TestFaultShortBatchesFidelity(t *testing.T) {
	n := 2*DefaultBatchSize + 77
	path, mem := writeTestFile(t, n, 6)
	dr, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer dr.Close()
	wantNums, _ := mem.NumericColumn(0)
	wantBools, _ := mem.BoolColumn(2)
	for _, inner := range []Relation{mem, Relation(dr)} {
		fr := NewFaultRelation(inner, FaultConfig{ShortBatches: 17})
		var nums []float64
		var bools []bool
		err := fr.Scan(ColumnSet{Numeric: []int{0}, Bool: []int{2}}, func(b *Batch) error {
			if b.Len > 17 {
				t.Fatalf("%T: batch of %d rows exceeds ShortBatches=17", inner, b.Len)
			}
			nums = append(nums, b.Numeric[0][:b.Len]...)
			bools = append(bools, b.Bool[0][:b.Len]...)
			return nil
		})
		if err != nil {
			t.Fatalf("%T: %v", inner, err)
		}
		if len(nums) != n {
			t.Fatalf("%T: re-chunked scan delivered %d rows, want %d", inner, len(nums), n)
		}
		for i := range nums {
			if nums[i] != wantNums[i] || bools[i] != wantBools[i] {
				t.Fatalf("%T: re-chunked stream diverges at row %d", inner, i)
			}
		}
	}
}

// TestFaultMaxFaultsBudget pins the transient-fault budget: exactly
// MaxFaults failures are injected, then the wrapper goes permanently
// healthy — the property retry loops rely on.
func TestFaultMaxFaultsBudget(t *testing.T) {
	_, mem := writeTestFile(t, 50, 7)
	fr := NewFaultRelation(mem, FaultConfig{FailEvery: 1, MaxFaults: 2})
	for ord := 1; ord <= 6; ord++ {
		_, _, err := collectScan(fr)
		if ord <= 2 && !errors.Is(err, ErrInjected) {
			t.Errorf("scan %d: want injected fault, got %v", ord, err)
		}
		if ord > 2 && err != nil {
			t.Errorf("scan %d: budget exhausted but still failing: %v", ord, err)
		}
	}
	if got := fr.Injected(); got != 2 {
		t.Errorf("Injected() = %d, want 2", got)
	}
}

// TestFaultStallOnly pins the slow-worker mode: a selected scan stalls,
// then completes with the full correct stream and no error.
func TestFaultStallOnly(t *testing.T) {
	_, mem := writeTestFile(t, 200, 8)
	stall := 30 * time.Millisecond
	fr := NewFaultRelation(mem, FaultConfig{FailEvery: 1, Stall: stall, StallOnly: true})
	start := time.Now()
	nums, _, err := collectScan(fr)
	if err != nil {
		t.Fatalf("StallOnly scan errored: %v", err)
	}
	if len(nums) != 200 {
		t.Fatalf("StallOnly scan delivered %d rows, want 200", len(nums))
	}
	if d := time.Since(start); d < stall {
		t.Errorf("scan finished in %v, want at least the %v stall", d, stall)
	}
}

// TestFaultClose pins Close injection, composed over a backend with a
// real Close (the wrapped Close still runs first).
func TestFaultClose(t *testing.T) {
	path, _ := writeTestFile(t, 50, 9)
	dr, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	fr := NewFaultRelation(dr, FaultConfig{FailClose: true})
	if err := fr.Close(); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected close error, got %v", err)
	}
}

// TestFaultRangeAndPrunedScans pins fault delivery through the optional
// scan surfaces, composed over the sharded backend — the injected error
// must tear down the concurrent sub-scan pipeline cleanly and surface
// with its identity intact.
func TestFaultRangeAndPrunedScans(t *testing.T) {
	manifest, mem := writeShardedFixture(t, 10, []int{400, 300, 300}, []int{DiskFormatV1, DiskFormatV2, DiskFormatV2}, 128)
	sr, err := OpenSharded(manifest)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	sr.SetConcurrentScans(3)
	for name, scan := range map[string]func(fr *FaultRelation, fn func(*Batch) error) error{
		"range": func(fr *FaultRelation, fn func(*Batch) error) error {
			return fr.ScanRange(100, 900, ColumnSet{Numeric: []int{0}}, fn)
		},
		"pruned": func(fr *FaultRelation, fn func(*Batch) error) error {
			return fr.ScanRangePruned(100, 900, ColumnSet{Numeric: []int{0}}, nil,
				func(rows int) error { return nil }, fn)
		},
	} {
		// Healthy wrapped scan first: delegation must be lossless.
		fr := NewFaultRelation(sr, FaultConfig{})
		var got []float64
		if err := scan(fr, func(b *Batch) error {
			got = append(got, b.Numeric[0][:b.Len]...)
			return nil
		}); err != nil {
			t.Fatalf("%s: healthy wrapped scan: %v", name, err)
		}
		want, _ := mem.NumericColumn(0)
		want = want[100:900]
		if len(got) != len(want) {
			t.Fatalf("%s: wrapped scan delivered %d rows, want %d", name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: wrapped scan diverges at row %d", name, i)
			}
		}
		// Now a mid-stream fault crossing a shard boundary.
		fr = NewFaultRelation(sr, FaultConfig{FailEvery: 1, FailAfterRows: 450})
		rows := 0
		err := scan(fr, func(b *Batch) error {
			rows += b.Len
			return nil
		})
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("%s: want injected fault, got %v", name, err)
		}
		if rows != 450 {
			t.Fatalf("%s: delivered %d rows before the fault, want 450", name, rows)
		}
	}
}

// TestFaultPointReadsNeverFaulted pins the sampling-determinism rule:
// point reads pass through untouched even under FailEvery=1, so a
// faulted run's bucket boundaries match the healthy run's.
func TestFaultPointReadsNeverFaulted(t *testing.T) {
	path, mem := writeTestFile(t, 300, 11)
	dr, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer dr.Close()
	fr := NewFaultRelation(dr, FaultConfig{FailEvery: 1})
	rows := []int{0, 17, 123, 299}
	out := make([]float64, len(rows))
	if err := fr.ReadNumericPoints(0, rows, out); err != nil {
		t.Fatalf("point read faulted: %v", err)
	}
	want, _ := mem.NumericColumn(0)
	for i, r := range rows {
		if out[i] != want[r] {
			t.Errorf("point read row %d: got %g want %g", r, out[i], want[r])
		}
	}
}

// TestFaultDelegatesHints pins the pass-through of the planner's
// storage hints: alignment, snapping, and byte accounting reach the
// wrapped backend, and degrade to neutral values over plain memory.
func TestFaultDelegatesHints(t *testing.T) {
	manifest, _ := writeShardedFixture(t, 12, []int{200, 300}, []int{DiskFormatV2, DiskFormatV2}, 128)
	sr, err := OpenSharded(manifest)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	fr := NewFaultRelation(sr, FaultConfig{})
	if got, want := fr.ScanAlignment(), sr.ScanAlignment(); got != want {
		t.Errorf("ScanAlignment = %d, want %d", got, want)
	}
	if got, want := fr.SnapSegment(250), sr.SnapSegment(250); got != want {
		t.Errorf("SnapSegment(250) = %d, want %d", got, want)
	}
	if _, _, err := collectScan(fr); err != nil {
		t.Fatal(err)
	}
	if fr.BytesRead() == 0 {
		t.Error("BytesRead not delegated to the sharded backend")
	}
	fr.ResetBytesRead()
	if fr.BytesRead() != 0 {
		t.Error("ResetBytesRead not delegated")
	}

	_, mem := writeTestFile(t, 50, 13)
	plain := NewFaultRelation(mem, FaultConfig{})
	if plain.ScanAlignment() != 1 || plain.SnapSegment(25) != 25 || plain.BytesRead() != 0 {
		t.Error("neutral fallbacks wrong for a backend without hints")
	}
}
