package relation

import (
	"fmt"
	"math"
)

// ColumnLayout summarizes one column's physical layout across a v3
// file's block groups: which encodings the writer chose, how many
// payload bytes they cost versus the uncompressed column, and how
// useful the zone maps are for pruning.
type ColumnLayout struct {
	Name string
	Kind Kind

	// Blocks is the number of block groups (= blocks for this column).
	Blocks int

	// Encodings counts blocks per encoding name ("raw", "delta",
	// "dict", "bitmap", "rle", "for").
	Encodings map[string]int

	// EncodedBytes is the total on-disk payload for the column;
	// RawBytes is what an uncompressed layout would charge (8 bytes
	// per numeric value, one bit per Boolean rounded up per block).
	EncodedBytes int64
	RawBytes     int64

	// ZoneTightness is the mean block envelope width divided by the
	// column envelope width, in [0, 1]: 0 means every block is a
	// single point (perfectly clustered), 1 means every block spans
	// the whole column (shuffled — zone maps useless). For Boolean
	// columns it is the fraction of mixed true/false blocks.
	ZoneTightness float64

	// Prunability estimates the fraction of block groups a narrow
	// range predicate on this column skips: for numerics, the expected
	// skip rate of a point query drawn uniformly over the column
	// envelope (1 − ZoneTightness for non-overlapping zones); for
	// Booleans, the fraction of constant blocks, which prune for the
	// opposing predicate polarity.
	Prunability float64
}

// LayoutInspection is the physical-layout report for one v3 file —
// what `optdata inspect` prints. See DiskRelation.InspectLayout.
type LayoutInspection struct {
	Path      string
	Rows      int
	GroupRows int
	Groups    int
	Columns   []ColumnLayout
}

// v3EncodingName names a block encoding byte for reports.
func v3EncodingName(enc uint8) string {
	switch enc {
	case v3EncRaw:
		return "raw"
	case v3EncDelta:
		return "delta"
	case v3EncDict:
		return "dict"
	case v3EncBitmap:
		return "bitmap"
	case v3EncRLE:
		return "rle"
	case v3EncFOR:
		return "for"
	default:
		return fmt.Sprintf("enc%d", enc)
	}
}

// InspectLayout reads the block directory of a v3 file and reports the
// per-column encoding mix, compression ratio, and zone-map quality —
// the numbers that predict whether a predicated scan will prune.
// Requires the v3 format; v1/v2 files have no per-block directory to
// inspect.
func (dr *DiskRelation) InspectLayout() (*LayoutInspection, error) {
	if dr.version != DiskFormatV3 {
		return nil, fmt.Errorf("relation: %s: layout inspection requires the v3 format (file is v%d)", dr.path, dr.version)
	}
	groups := len(dr.groupOffs)
	insp := &LayoutInspection{
		Path:      dr.path,
		Rows:      dr.numRows,
		GroupRows: dr.groupRows,
		Groups:    groups,
		Columns:   make([]ColumnLayout, 0, len(dr.schema)),
	}
	for a, attr := range dr.schema {
		col := ColumnLayout{Name: attr.Name, Kind: attr.Kind, Blocks: groups, Encodings: map[string]int{}}
		// First pass: encoding mix, byte totals, and the column-wide
		// zone envelope (ignoring all-NaN blocks, whose inverted
		// min/max envelope matches nothing).
		colMin, colMax := math.Inf(1), math.Inf(-1)
		for g := 0; g < groups; g++ {
			gRows := dr.groupRows
			if g == groups-1 {
				gRows = dr.numRows - (groups-1)*dr.groupRows
			}
			var blk *v3Block
			if attr.Kind == Numeric {
				blk = dr.v3NumBlock(g, dr.numPos[a])
				col.RawBytes += int64(8 * gRows)
			} else {
				blk = dr.v3BoolBlock(g, dr.boolPos[a])
				col.RawBytes += int64((gRows + 7) / 8)
			}
			col.Encodings[v3EncodingName(blk.enc)]++
			col.EncodedBytes += int64(blk.encLen)
			if attr.Kind == Numeric && blk.min <= blk.max {
				colMin = math.Min(colMin, blk.min)
				colMax = math.Max(colMax, blk.max)
			}
		}
		// Second pass: zone-map quality.
		switch {
		case attr.Kind == Boolean:
			mixed := 0
			for g := 0; g < groups; g++ {
				gRows := dr.groupRows
				if g == groups-1 {
					gRows = dr.numRows - (groups-1)*dr.groupRows
				}
				if tc := dr.v3BoolBlock(g, dr.boolPos[a]).trueCnt; tc > 0 && tc < gRows {
					mixed++
				}
			}
			col.ZoneTightness = float64(mixed) / float64(groups)
			col.Prunability = 1 - col.ZoneTightness
		case colMax > colMin:
			span := colMax - colMin
			sum := 0.0
			for g := 0; g < groups; g++ {
				blk := dr.v3NumBlock(g, dr.numPos[a])
				if blk.min <= blk.max {
					sum += (blk.max - blk.min) / span
				}
				// All-NaN blocks contribute 0 width: they prune under
				// every range predicate.
			}
			col.ZoneTightness = sum / float64(groups)
			col.Prunability = 1 - col.ZoneTightness
		default:
			// Constant (or all-NaN) column: every block is a point, but
			// a matching predicate still reads everything — tight zones,
			// nothing to prune between groups.
			col.ZoneTightness = 0
			col.Prunability = 0
		}
		insp.Columns = append(insp.Columns, col)
	}
	return insp, nil
}
