package relation

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// writeShardedFixture hand-writes a sharded relation: n pseudo-random
// bank tuples split into contiguous shards of the given sizes, each in
// the given format (parallel slices; formats[i] == DiskFormatV2 uses
// groupRows-row block groups). Returns the manifest path and the
// in-memory twin. The same (n, seed) as writeTestFile yields identical
// data.
func writeShardedFixture(t *testing.T, seed int64, sizes []int, formats []int, groupRows int) (string, *MemoryRelation) {
	t.Helper()
	schema := bankSchema()
	dir := t.TempDir()
	mem := MustNewMemoryRelation(schema)
	rng := rand.New(rand.NewSource(seed))
	var manifest strings.Builder
	fmt.Fprintf(&manifest, "OPTSHARD 1\n")
	for i, size := range sizes {
		name := fmt.Sprintf("part-%02d.opr", i)
		var dw *DiskWriter
		var err error
		if formats[i] == DiskFormatV2 {
			dw, err = NewDiskWriterV2(filepath.Join(dir, name), schema, groupRows)
		} else {
			dw, err = NewDiskWriter(filepath.Join(dir, name), schema)
		}
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < size; r++ {
			nums := []float64{rng.Float64() * 1e6, float64(rng.Intn(100))}
			bools := []bool{rng.Intn(2) == 0, rng.Intn(3) == 0}
			if err := dw.Append(nums, bools); err != nil {
				t.Fatal(err)
			}
			mem.MustAppend(nums, bools)
		}
		if err := dw.Close(); err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&manifest, "shard %d %s\n", size, name)
	}
	path := filepath.Join(dir, "rel.oprs")
	if err := os.WriteFile(path, []byte(manifest.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, mem
}

// collectRange scans [start, end) of rel and returns the Balance
// column plus the CardLoan column.
func collectRange(t *testing.T, rel RangeScanner, start, end int) ([]float64, []bool) {
	t.Helper()
	var nums []float64
	var bools []bool
	err := rel.ScanRange(start, end, ColumnSet{Numeric: []int{0}, Bool: []int{2}}, func(b *Batch) error {
		nums = append(nums, b.Numeric[0][:b.Len]...)
		bools = append(bools, b.Bool[0][:b.Len]...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return nums, bools
}

func TestShardedRoundTrip(t *testing.T) {
	// Mixed formats, a tiny v2 group size so groups end mid-shard, and
	// an empty shard in the middle.
	sizes := []int{1000, 0, 2500, 700}
	formats := []int{DiskFormatV1, DiskFormatV2, DiskFormatV2, DiskFormatV1}
	path, mem := writeShardedFixture(t, 3, sizes, formats, 512)
	sr, err := OpenSharded(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	if sr.NumTuples() != 4200 {
		t.Fatalf("NumTuples = %d, want 4200", sr.NumTuples())
	}
	if sr.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", sr.NumShards())
	}
	if !sameSchema(sr.Schema(), mem.Schema()) {
		t.Fatalf("schema = %v", sr.Schema())
	}
	if got := len(sr.StoragePaths()); got != 5 {
		t.Fatalf("StoragePaths returned %d paths, want manifest + 4 shards", got)
	}
	wantBal, _ := mem.NumericColumn(0)
	wantCL, _ := mem.BoolColumn(2)

	// Full scan and assorted ranges, serial and concurrent, must agree
	// with the in-memory twin — including ranges inside one shard,
	// straddling shard boundaries, and straddling the empty shard.
	ranges := [][2]int{{0, 4200}, {0, 1}, {999, 1001}, {500, 3100}, {1000, 1000}, {3499, 3501}, {4200, 4200}, {17, 4012}}
	for _, ahead := range []int{0, 2, 3, 100} {
		sr.SetConcurrentScans(ahead)
		for _, rg := range ranges {
			nums, bools := collectRange(t, sr, rg[0], rg[1])
			if len(nums) != rg[1]-rg[0] {
				t.Fatalf("ahead=%d range %v: delivered %d rows", ahead, rg, len(nums))
			}
			for i := range nums {
				if nums[i] != wantBal[rg[0]+i] || bools[i] != wantCL[rg[0]+i] {
					t.Fatalf("ahead=%d range %v: row %d differs", ahead, rg, rg[0]+i)
				}
			}
		}
	}
}

func TestShardedScanEarlyAbortAndErrors(t *testing.T) {
	path, _ := writeShardedFixture(t, 5, []int{800, 800, 800}, []int{DiskFormatV2, DiskFormatV2, DiskFormatV2}, 256)
	sr, err := OpenSharded(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	for _, ahead := range []int{0, 2} {
		sr.SetConcurrentScans(ahead)
		// Callback error propagates from any shard.
		want := errSentinel("stop")
		seen := 0
		err := sr.Scan(ColumnSet{Numeric: []int{0}}, func(b *Batch) error {
			seen += b.Len
			if seen > 1200 { // inside shard 1
				return want
			}
			return nil
		})
		if err != want {
			t.Errorf("ahead=%d: callback error lost: %v", ahead, err)
		}
		// Column validation errors match the other backends.
		if err := sr.Scan(ColumnSet{Numeric: []int{2}}, func(*Batch) error { return nil }); err == nil {
			t.Errorf("ahead=%d: bool column as numeric accepted", ahead)
		}
	}
	// A missing shard file surfaces as a scan error, not a panic.
	sr2, err := OpenSharded(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sr2.Close()
	if err := os.Remove(sr2.StoragePaths()[2]); err != nil {
		t.Fatal(err)
	}
	for _, ahead := range []int{0, 2} {
		sr2.SetConcurrentScans(ahead)
		if err := sr2.Scan(ColumnSet{Numeric: []int{0}}, func(*Batch) error { return nil }); err == nil {
			t.Errorf("ahead=%d: scan with deleted shard succeeded", ahead)
		}
	}
}

func TestShardedPointReads(t *testing.T) {
	sizes := []int{300, 300, 300}
	path, mem := writeShardedFixture(t, 7, sizes, []int{DiskFormatV1, DiskFormatV2, DiskFormatV1}, 128)
	sr, err := OpenSharded(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	want, _ := mem.NumericColumn(0)
	rows := []int{0, 0, 5, 299, 300, 301, 599, 600, 600, 899}
	out := make([]float64, len(rows))
	before := sr.BytesRead()
	if err := sr.ReadNumericPoints(0, rows, out); err != nil {
		t.Fatal(err)
	}
	unique := 0
	for i, row := range rows {
		if i == 0 || row != rows[i-1] {
			unique++
		}
		if out[i] != want[row] {
			t.Errorf("row %d = %g, want %g", row, out[i], want[row])
		}
	}
	if got := sr.BytesRead() - before; got != int64(unique)*8 {
		t.Errorf("point reads counted %d bytes, want %d", got, unique*8)
	}
	// Validation errors, same contract as DiskRelation.
	if err := sr.ReadNumericPoints(2, []int{0}, out[:1]); err == nil {
		t.Error("Boolean attribute accepted")
	}
	if err := sr.ReadNumericPoints(0, []int{900}, out[:1]); err == nil {
		t.Error("out-of-range row accepted")
	}
	if err := sr.ReadNumericPoints(0, []int{5, 3}, out[:2]); err == nil {
		t.Error("unsorted rows accepted")
	}
	if err := sr.ReadNumericPoints(0, []int{0}, out[:0]); err == nil {
		t.Error("length mismatch accepted")
	}
	// Close releases shard mappings; reads fall back to positioned reads.
	if err := sr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sr.ReadNumericPoints(0, []int{1, 450}, out[:2]); err != nil {
		t.Fatalf("post-Close point read: %v", err)
	}
	if out[0] != want[1] || out[1] != want[450] {
		t.Errorf("post-Close points = %v", out[:2])
	}
}

func TestShardedSnapSegment(t *testing.T) {
	// Shard layout: [0,1000) v1, [1000,3500) v2 groups of 512,
	// [3500,4200) v1. Preferred cuts inside shard 1 are 1000 + k·512.
	path, _ := writeShardedFixture(t, 11, []int{1000, 2500, 700},
		[]int{DiskFormatV1, DiskFormatV2, DiskFormatV1}, 512)
	sr, err := OpenSharded(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	if got := sr.ScanAlignment(); got != 512 {
		t.Fatalf("ScanAlignment = %d, want 512 (coarsest shard unit)", got)
	}
	cases := []struct{ cut, want int }{
		{-5, 0},
		{0, 0},
		{4200, 4200},
		{9999, 4200},
		{500, 500},   // v1 shard: cuts stay put
		{1100, 1000}, // rounds down to the shard boundary
		{1300, 1512}, // nearest group boundary is 1000+512
		{2024, 2024}, // exactly on a group boundary (1000+2·512)
		{3490, 3500}, // clamps to the shard end, not past it
		{3600, 3600}, // trailing v1 shard: identity
	}
	for _, c := range cases {
		if got := sr.SnapSegment(c.cut); got != c.want {
			t.Errorf("SnapSegment(%d) = %d, want %d", c.cut, got, c.want)
		}
	}
	// AlignedSegments over the sharded relation: monotone, covering, and
	// every interior cut is a preferred boundary (snap-idempotent).
	for _, pes := range []int{2, 3, 4} {
		cuts := AlignedSegments(sr, sr.NumTuples(), pes)
		if cuts[0] != 0 || cuts[pes] != sr.NumTuples() {
			t.Fatalf("pes=%d: cuts %v do not cover", pes, cuts)
		}
		for p := 1; p < pes; p++ {
			if cuts[p] < cuts[p-1] {
				t.Fatalf("pes=%d: cuts %v not monotone", pes, cuts)
			}
			if got := sr.SnapSegment(cuts[p]); got != cuts[p] {
				t.Errorf("pes=%d: interior cut %d is not a preferred boundary (snaps to %d)", pes, cuts[p], got)
			}
		}
	}
	// Small relations fall back to unaligned splits rather than emptying
	// segments (the ScanAligner guard).
	cuts := AlignedSegments(sr, 100, 4)
	if !reflect.DeepEqual(cuts, []int{0, 25, 50, 75, 100}) {
		t.Errorf("small-n cuts = %v, want unaligned quarters", cuts)
	}
}

func TestShardedWriterPolicies(t *testing.T) {
	schema := bankSchema()
	row := func(i int) ([]float64, []bool) {
		return []float64{float64(i), float64(i % 7)}, []bool{i%2 == 0, i%3 == 0}
	}
	t.Run("count-based", func(t *testing.T) {
		dir := t.TempDir()
		path := filepath.Join(dir, "rel.oprs")
		sw, err := NewShardedWriter(path, schema, ShardedWriterOptions{Shards: 4, TotalRows: 1000, GroupRows: 64})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1000; i++ {
			nums, bools := row(i)
			if err := sw.Append(nums, bools); err != nil {
				t.Fatal(err)
			}
		}
		if err := sw.Close(); err != nil {
			t.Fatal(err)
		}
		sr, err := OpenSharded(path)
		if err != nil {
			t.Fatal(err)
		}
		defer sr.Close()
		if sr.NumShards() != 4 || sr.NumTuples() != 1000 {
			t.Fatalf("shards=%d rows=%d, want 4/1000", sr.NumShards(), sr.NumTuples())
		}
		nums, _ := collectRange(t, sr, 0, 1000)
		for i, v := range nums {
			if v != float64(i) {
				t.Fatalf("row %d = %g: global order not preserved", i, v)
			}
		}
	})
	t.Run("size-based-overflow", func(t *testing.T) {
		// RowsPerShard splitting keeps creating shards as rows arrive.
		dir := t.TempDir()
		path := filepath.Join(dir, "rel.oprs")
		sw, err := NewShardedWriter(path, schema, ShardedWriterOptions{RowsPerShard: 300, Format: DiskFormatV1})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1000; i++ {
			nums, bools := row(i)
			if err := sw.Append(nums, bools); err != nil {
				t.Fatal(err)
			}
		}
		if err := sw.Close(); err != nil {
			t.Fatal(err)
		}
		sr, err := OpenSharded(path)
		if err != nil {
			t.Fatal(err)
		}
		defer sr.Close()
		if sr.NumShards() != 4 { // 300+300+300+100
			t.Fatalf("NumShards = %d, want 4", sr.NumShards())
		}
		if sr.cur.Load().shards[0].Version() != DiskFormatV1 {
			t.Errorf("shard format = %d, want v1", sr.cur.Load().shards[0].Version())
		}
	})
	t.Run("failed-rollover-is-sticky", func(t *testing.T) {
		// A shard rollover that fails (the directory vanished between
		// shards) must poison the writer: later Appends and Close return
		// errors — no panic, and no manifest committing a stream with a
		// silent gap.
		dir := t.TempDir()
		sub := filepath.Join(dir, "sub")
		if err := os.Mkdir(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(sub, "rel.oprs")
		sw, err := NewShardedWriter(path, schema, ShardedWriterOptions{RowsPerShard: 2, Format: DiskFormatV1})
		if err != nil {
			t.Fatal(err)
		}
		nums, bools := row(0)
		for i := 0; i < 2; i++ {
			if err := sw.Append(nums, bools); err != nil {
				t.Fatal(err)
			}
		}
		if err := os.RemoveAll(sub); err != nil {
			t.Fatal(err)
		}
		if err := sw.Append(nums, bools); err == nil { // rollover into removed dir
			t.Fatal("rollover into removed directory succeeded")
		}
		if err := sw.Append(nums, bools); err == nil {
			t.Error("Append after failed rollover succeeded")
		}
		if err := sw.Close(); err == nil {
			t.Error("Close after failed rollover committed a gapped manifest")
		}
	})
	t.Run("sticky-close-error", func(t *testing.T) {
		// A Close that fails (manifest directory vanished) must keep
		// failing on retry, not report success with no manifest written.
		dir := t.TempDir()
		sub := filepath.Join(dir, "sub")
		if err := os.Mkdir(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(sub, "rel.oprs")
		sw, err := NewShardedWriter(path, schema, ShardedWriterOptions{Shards: 1, TotalRows: 10})
		if err != nil {
			t.Fatal(err)
		}
		if err := sw.Append([]float64{1, 2}, []bool{true, false}); err != nil {
			t.Fatal(err)
		}
		if err := os.RemoveAll(sub); err != nil {
			t.Fatal(err)
		}
		if err := sw.Close(); err == nil {
			t.Fatal("Close into a removed directory succeeded")
		}
		if err := sw.Close(); err == nil {
			t.Error("second Close after a failed Close reported success")
		}
	})
	t.Run("manifest-mode-matches-shards", func(t *testing.T) {
		// The manifest is staged in a 0600 temp file; after Close it must
		// carry the same umask-derived mode as the shard files, or a
		// second user who can read every shard still can't open the
		// relation.
		dir := t.TempDir()
		path := filepath.Join(dir, "perm.oprs")
		sw, err := NewShardedWriter(path, schema, ShardedWriterOptions{Shards: 1, TotalRows: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := sw.Close(); err != nil {
			t.Fatal(err)
		}
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		shardSt, err := os.Stat(filepath.Join(dir, "perm-s00000.opr"))
		if err != nil {
			t.Fatal(err)
		}
		if st.Mode().Perm() != shardSt.Mode().Perm() {
			t.Errorf("manifest mode = %v, shard mode = %v; want equal", st.Mode().Perm(), shardSt.Mode().Perm())
		}
	})
	t.Run("empty", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "empty.oprs")
		sw, err := NewShardedWriter(path, schema, ShardedWriterOptions{Shards: 3, TotalRows: 0})
		if err != nil {
			t.Fatal(err)
		}
		if err := sw.Close(); err != nil {
			t.Fatal(err)
		}
		sr, err := OpenSharded(path)
		if err != nil {
			t.Fatal(err)
		}
		defer sr.Close()
		if sr.NumTuples() != 0 || sr.NumShards() != 1 {
			t.Errorf("empty relation: %d tuples in %d shards", sr.NumTuples(), sr.NumShards())
		}
	})
	t.Run("bad-options", func(t *testing.T) {
		dir := t.TempDir()
		cases := []ShardedWriterOptions{
			{},                                     // no policy
			{RowsPerShard: 10, Shards: 2},          // both policies
			{Shards: 2, TotalRows: -1},             // negative total
			{Shards: 2, TotalRows: 10, Format: 99}, // unknown format
		}
		for i, o := range cases {
			if _, err := NewShardedWriter(filepath.Join(dir, fmt.Sprintf("bad%d.oprs", i)), schema, o); err == nil {
				t.Errorf("case %d (%+v): expected error", i, o)
			}
		}
	})
}

func TestConvertToShardedAndBack(t *testing.T) {
	path, mem := writeTestFile(t, 2000, 9)
	dr, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Dir(path)
	manifest := filepath.Join(dir, "sharded.oprs")
	if err := ConvertToSharded(dr, manifest, 3, DiskFormatV2); err != nil {
		t.Fatal(err)
	}
	sr, err := OpenSharded(manifest)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	if sr.NumShards() != 3 || sr.NumTuples() != 2000 {
		t.Fatalf("sharded: %d shards, %d rows", sr.NumShards(), sr.NumTuples())
	}
	want, _ := mem.NumericColumn(0)
	nums, _ := collectRange(t, sr, 0, 2000)
	for i := range nums {
		if nums[i] != want[i] {
			t.Fatalf("row %d differs after sharding", i)
		}
	}
	// Back to a single file through the generic path.
	single := filepath.Join(dir, "single.opr")
	if err := ConvertFile(sr, single, DiskFormatV1); err != nil {
		t.Fatal(err)
	}
	back, err := OpenDisk(single)
	if err != nil {
		t.Fatal(err)
	}
	nums2, _ := collectRange(t, back, 0, 2000)
	for i := range nums2 {
		if nums2[i] != want[i] {
			t.Fatalf("row %d differs after round trip", i)
		}
	}
	// Self-aliasing destinations are refused for both directions, and a
	// sharded conversion refuses ANY pre-existing destination file — it
	// cannot overwrite a multi-file relation atomically, so it must
	// never truncate or delete files it did not create.
	if err := ConvertFile(sr, sr.StoragePaths()[1], DiskFormatV2); err == nil {
		t.Error("converting a sharded relation onto its own shard accepted")
	}
	if err := ConvertToSharded(sr, manifest, 2, DiskFormatV2); err == nil {
		t.Error("converting a sharded relation onto its own manifest accepted")
	}
	preShard := sr.StoragePaths()[1] // an existing shard file
	before, err := os.ReadFile(preShard)
	if err != nil {
		t.Fatal(err)
	}
	clobber := filepath.Join(dir, "sharded.oprs") // same manifest -> same shard names
	if err := ConvertToSharded(back, clobber, 3, DiskFormatV2); err == nil {
		t.Error("sharded conversion over an existing relation accepted")
	}
	after, err := os.ReadFile(preShard)
	if err != nil {
		t.Fatalf("pre-existing shard destroyed by refused conversion: %v", err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Error("refused sharded conversion modified a pre-existing shard file")
	}
	// A failed sharded conversion cleans up everything it created.
	if err := os.Truncate(single, 100); err != nil {
		t.Fatal(err)
	}
	failed := filepath.Join(dir, "failed.oprs")
	if err := ConvertToSharded(back, failed, 2, DiskFormatV2); err == nil {
		t.Fatal("conversion from truncated source succeeded")
	}
	leftovers, err := filepath.Glob(filepath.Join(dir, "failed*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leftovers) != 0 {
		t.Errorf("failed sharded conversion left %v behind", leftovers)
	}
}

func TestOpenDataSniffsBackends(t *testing.T) {
	path, _ := writeTestFile(t, 100, 3)
	rel, err := OpenData(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rel.(*DiskRelation); !ok {
		t.Errorf("single file opened as %T", rel)
	}
	mPath, _ := writeShardedFixture(t, 3, []int{50, 50}, []int{DiskFormatV2, DiskFormatV2}, 0)
	rel2, err := OpenData(mPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rel2.(*ShardedRelation); !ok {
		t.Errorf("manifest opened as %T", rel2)
	}
	rel2.Close()
	if _, err := OpenData(filepath.Join(t.TempDir(), "missing.opr")); err == nil {
		t.Error("missing file accepted")
	}
}

// TestShardManifestCorruption exercises the targeted failure modes a
// drifted or damaged manifest can exhibit: each must fail at open with
// a descriptive error, never a panic or a silently wrong relation.
func TestShardManifestCorruption(t *testing.T) {
	dir := t.TempDir()
	schema := bankSchema()
	mkShard := func(name string, rows int) {
		t.Helper()
		dw, err := NewDiskWriterV2(filepath.Join(dir, name), schema, 64)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < rows; i++ {
			if err := dw.Append([]float64{float64(i), 1}, []bool{true, false}); err != nil {
				t.Fatal(err)
			}
		}
		if err := dw.Close(); err != nil {
			t.Fatal(err)
		}
	}
	mkShard("a.opr", 10)
	mkShard("b.opr", 20)
	// A shard with a different schema.
	dw, err := NewDiskWriter(filepath.Join(dir, "other.opr"), Schema{{Name: "X", Kind: Numeric}})
	if err != nil {
		t.Fatal(err)
	}
	dw.Append([]float64{1}, nil)
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name     string
		manifest string
		wantErr  string
	}{
		{"valid", "OPTSHARD 1\nshard 10 a.opr\nshard 20 b.opr\n", ""},
		{"comments-and-blanks", "OPTSHARD 1\n\n# part one\nshard 10 a.opr\n", ""},
		{"bad-magic", "NOTSHARD 1\nshard 10 a.opr\n", "not a shard manifest"},
		{"bad-version", "OPTSHARD 9\nshard 10 a.opr\n", "version"},
		{"no-shards", "OPTSHARD 1\n# empty\n", "no shards"},
		{"missing-file", "OPTSHARD 1\nshard 10 a.opr\nshard 5 gone.opr\n", "shard 1"},
		{"row-count-mismatch", "OPTSHARD 1\nshard 10 a.opr\nshard 21 b.opr\n", "manifest declares"},
		{"mixed-schemas", "OPTSHARD 1\nshard 10 a.opr\nshard 1 other.opr\n", "schema"},
		{"malformed-line", "OPTSHARD 1\nshard 10\n", "malformed"},
		{"negative-rows", "OPTSHARD 1\nshard -3 a.opr\n", "row count"},
		{"empty-path", "OPTSHARD 1\nshard 10  \n", "malformed"},
		{"empty-file", "", "empty shard manifest"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := filepath.Join(dir, c.name+".oprs")
			if err := os.WriteFile(p, []byte(c.manifest), 0o644); err != nil {
				t.Fatal(err)
			}
			sr, err := OpenSharded(p)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("valid manifest rejected: %v", err)
				}
				sr.Close()
				return
			}
			if err == nil {
				sr.Close()
				t.Fatalf("corrupt manifest accepted")
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

// TestShardedScanRaceConcurrent runs overlapping concurrent full scans
// plus point reads on a sharded relation; meaningful under -race.
func TestShardedScanRaceConcurrent(t *testing.T) {
	path, _ := writeShardedFixture(t, 17, []int{900, 900, 900}, []int{DiskFormatV2, DiskFormatV2, DiskFormatV1}, 256)
	sr, err := OpenSharded(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	sr.SetConcurrentScans(3)
	done := make(chan error, 4)
	for g := 0; g < 2; g++ {
		go func() {
			sum := 0.0
			done <- sr.Scan(ColumnSet{Numeric: []int{0}}, func(b *Batch) error {
				for _, v := range b.Numeric[0][:b.Len] {
					sum += v
				}
				return nil
			})
		}()
		go func() {
			out := make([]float64, 3)
			done <- sr.ReadNumericPoints(0, []int{10, 1200, 2600}, out)
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}
