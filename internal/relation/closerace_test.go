package relation

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
)

// closeRaceFixtures opens one relation per storage backend — v1, v2,
// and v3 single files plus a mixed-format sharded relation — over the
// same deterministic tuple stream.
func closeRaceFixtures(t *testing.T, n int) map[string]Relation {
	t.Helper()
	schema := bankSchema()
	rng := rand.New(rand.NewSource(77))
	rows := make([][2]interface{}, 0, n)
	for i := 0; i < n; i++ {
		nums := []float64{rng.Float64() * 1e6, float64(rng.Intn(100))}
		bools := []bool{rng.Intn(2) == 0, rng.Intn(3) == 0}
		rows = append(rows, [2]interface{}{nums, bools})
	}
	dir := t.TempDir()
	fixtures := map[string]Relation{}
	for _, version := range []int{DiskFormatV1, DiskFormatV2, DiskFormatV3} {
		path := filepath.Join(dir, fmt.Sprintf("v%d.opr", version))
		dw, err := NewDiskWriterFormat(path, schema, version)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if err := dw.Append(r[0].([]float64), r[1].([]bool)); err != nil {
				t.Fatal(err)
			}
		}
		if err := dw.Close(); err != nil {
			t.Fatal(err)
		}
		dr, err := OpenDisk(path)
		if err != nil {
			t.Fatal(err)
		}
		fixtures[fmt.Sprintf("v%d", version)] = dr
	}
	manifest, _ := writeShardedFixture(t, 77, []int{n / 2, n - n/2}, []int{DiskFormatV1, DiskFormatV2}, 128)
	sr, err := OpenSharded(manifest)
	if err != nil {
		t.Fatal(err)
	}
	fixtures["sharded"] = sr
	return fixtures
}

type busyCloser interface {
	Close() error
}

// TestCloseDuringScanReturnsErrBusy pins the defined Close‖Scan
// contract on every disk backend: Close during an in-flight scan
// returns ErrBusy and releases nothing (the scan completes unharmed);
// Close after the scan succeeds; and the relation stays usable for
// point reads afterwards, exactly as when no scan ever raced it.
func TestCloseDuringScanReturnsErrBusy(t *testing.T) {
	for name, rel := range closeRaceFixtures(t, 600) {
		t.Run(name, func(t *testing.T) {
			started := make(chan struct{})
			unblock := make(chan struct{})
			scanDone := make(chan error, 1)
			go func() {
				first := true
				scanDone <- rel.Scan(ColumnSet{Numeric: []int{0}}, func(b *Batch) error {
					if first {
						first = false
						close(started)
						<-unblock
					}
					return nil
				})
			}()
			<-started
			err := rel.(busyCloser).Close()
			if !errors.Is(err, ErrBusy) {
				t.Errorf("Close during scan: got %v, want ErrBusy", err)
			}
			close(unblock)
			if err := <-scanDone; err != nil {
				t.Fatalf("scan raced by Close failed: %v", err)
			}
			if err := rel.(busyCloser).Close(); err != nil {
				t.Errorf("Close after scan: %v", err)
			}
			// Usable-after-Close is part of the Close contract: point
			// reads lazily re-establish what Close released.
			out := make([]float64, 2)
			if err := rel.(NumericPointReader).ReadNumericPoints(0, []int{0, 599}, out); err != nil {
				t.Errorf("point read after Close: %v", err)
			}
		})
	}
}

// TestCloseScanChurn hammers each backend with concurrent scans,
// point reads, and Closes. Run under -race this pins that the ops
// guard makes the interleaving well-defined: every Close returns nil
// or ErrBusy, every scan and point read completes cleanly, and nothing
// races on the point-read mapping.
func TestCloseScanChurn(t *testing.T) {
	for name, rel := range closeRaceFixtures(t, 400) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 15; i++ {
						if err := rel.Scan(ColumnSet{Numeric: []int{0}, Bool: []int{2}}, func(b *Batch) error {
							return nil
						}); err != nil {
							t.Errorf("scan: %v", err)
							return
						}
						out := make([]float64, 1)
						if err := rel.(NumericPointReader).ReadNumericPoints(0, []int{i}, out); err != nil {
							t.Errorf("point read: %v", err)
							return
						}
					}
				}()
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					if err := rel.(busyCloser).Close(); err != nil && !errors.Is(err, ErrBusy) {
						t.Errorf("churned Close: %v", err)
						return
					}
				}
			}()
			wg.Wait()
		})
	}
}
