package relation

import (
	"bytes"
	"strings"
	"testing"
)

const sampleCSV = `Balance,Age,CardLoan,AutoWithdraw
1500.5,34,yes,no
200,61,no,no
99999,18,YES,true
`

func TestReadCSVWithSchema(t *testing.T) {
	rel, err := ReadCSV(strings.NewReader(sampleCSV), bankSchema())
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumTuples() != 3 {
		t.Fatalf("NumTuples = %d, want 3", rel.NumTuples())
	}
	bal, _ := rel.NumericColumn(0)
	if bal[0] != 1500.5 || bal[2] != 99999 {
		t.Errorf("Balance = %v", bal)
	}
	cl, _ := rel.BoolColumn(2)
	if !cl[0] || cl[1] || !cl[2] {
		t.Errorf("CardLoan = %v", cl)
	}
	aw, _ := rel.BoolColumn(3)
	if aw[0] || aw[1] || !aw[2] {
		t.Errorf("AutoWithdraw = %v", aw)
	}
}

func TestReadCSVColumnReorderAndExtras(t *testing.T) {
	csvText := "Extra,CardLoan,Balance,Age,AutoWithdraw\nignored,yes,10,20,no\n"
	rel, err := ReadCSV(strings.NewReader(csvText), bankSchema())
	if err != nil {
		t.Fatal(err)
	}
	bal, _ := rel.NumericColumn(0)
	if bal[0] != 10 {
		t.Errorf("Balance = %v, want [10]", bal)
	}
	cl, _ := rel.BoolColumn(2)
	if !cl[0] {
		t.Errorf("CardLoan should be yes")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"missing attr", "Balance,Age\n1,2\n"},
		{"bad numeric", "Balance,Age,CardLoan,AutoWithdraw\nxyz,2,yes,no\n"},
		{"bad bool", "Balance,Age,CardLoan,AutoWithdraw\n1,2,maybe,no\n"},
		{"empty", ""},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.text), bankSchema()); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestInferSchema(t *testing.T) {
	s, err := InferSchema([]string{"A", "B", "C"}, []string{"1.5", "yes", "42"})
	if err != nil {
		t.Fatal(err)
	}
	if s[0].Kind != Numeric || s[1].Kind != Boolean || s[2].Kind != Numeric {
		t.Errorf("inferred kinds wrong: %v", s)
	}
	if _, err := InferSchema([]string{"A"}, []string{"hello"}); err == nil {
		t.Errorf("uninferable column accepted")
	}
	if _, err := InferSchema([]string{"A", "B"}, []string{"1"}); err == nil {
		t.Errorf("shape mismatch accepted")
	}
}

func TestReadCSVAutoSchema(t *testing.T) {
	rel, err := ReadCSVAutoSchema(strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumTuples() != 3 {
		t.Fatalf("NumTuples = %d, want 3", rel.NumTuples())
	}
	s := rel.Schema()
	if s[0].Kind != Numeric || s[2].Kind != Boolean {
		t.Errorf("auto schema wrong: %v", s)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	rel, err := ReadCSV(strings.NewReader(sampleCSV), bankSchema())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rel); err != nil {
		t.Fatal(err)
	}
	rel2, err := ReadCSV(&buf, bankSchema())
	if err != nil {
		t.Fatal(err)
	}
	if rel2.NumTuples() != rel.NumTuples() {
		t.Fatalf("round trip lost tuples: %d vs %d", rel2.NumTuples(), rel.NumTuples())
	}
	b1, _ := rel.NumericColumn(0)
	b2, _ := rel2.NumericColumn(0)
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Errorf("row %d: balance %g != %g", i, b1[i], b2[i])
		}
	}
	c1, _ := rel.BoolColumn(2)
	c2, _ := rel2.BoolColumn(2)
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Errorf("row %d: cardloan %v != %v", i, c1[i], c2[i])
		}
	}
}

func TestParseBoolForms(t *testing.T) {
	yes := []string{"yes", "Y", "TRUE", "t", "1", " yes "}
	no := []string{"no", "N", "false", "F", "0"}
	for _, s := range yes {
		v, err := parseBool(s)
		if err != nil || !v {
			t.Errorf("parseBool(%q) = %v, %v; want true", s, v, err)
		}
	}
	for _, s := range no {
		v, err := parseBool(s)
		if err != nil || v {
			t.Errorf("parseBool(%q) = %v, %v; want false", s, v, err)
		}
	}
	if _, err := parseBool("perhaps"); err == nil {
		t.Errorf("parseBool(perhaps) should fail")
	}
}
