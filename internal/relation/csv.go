package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CSV conventions: the first row is a header of attribute names. Boolean
// values are written as "yes"/"no" (the paper's domain for Boolean
// attributes); "true"/"false"/"1"/"0"/"y"/"n" are accepted on input.
// Numeric values are decimal floats.

// parseBool interprets a CSV cell as a Boolean attribute value.
func parseBool(cell string) (bool, error) {
	switch strings.ToLower(strings.TrimSpace(cell)) {
	case "yes", "y", "true", "t", "1":
		return true, nil
	case "no", "n", "false", "f", "0":
		return false, nil
	default:
		return false, fmt.Errorf("relation: cannot parse %q as boolean", cell)
	}
}

// ReadCSV parses a headered CSV stream into a MemoryRelation using the
// given schema. The header must contain every schema attribute (extra
// CSV columns are ignored); columns may appear in any order.
func ReadCSV(r io.Reader, schema Schema) (*MemoryRelation, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: reading CSV header: %w", err)
	}
	colOf := make([]int, len(schema))
	for i, a := range schema {
		colOf[i] = -1
		for j, h := range header {
			if strings.TrimSpace(h) == a.Name {
				colOf[i] = j
				break
			}
		}
		if colOf[i] == -1 {
			return nil, fmt.Errorf("relation: CSV header missing attribute %q", a.Name)
		}
	}
	rel, err := NewMemoryRelation(schema)
	if err != nil {
		return nil, err
	}
	nums := make([]float64, 0, len(schema))
	bools := make([]bool, 0, len(schema))
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: reading CSV: %w", err)
		}
		line++
		nums = nums[:0]
		bools = bools[:0]
		for i, a := range schema {
			if colOf[i] >= len(rec) {
				return nil, fmt.Errorf("relation: CSV line %d has %d fields, need column %d", line, len(rec), colOf[i]+1)
			}
			cell := rec[colOf[i]]
			switch a.Kind {
			case Numeric:
				v, err := strconv.ParseFloat(strings.TrimSpace(cell), 64)
				if err != nil {
					return nil, fmt.Errorf("relation: CSV line %d, attribute %q: %w", line, a.Name, err)
				}
				nums = append(nums, v)
			case Boolean:
				b, err := parseBool(cell)
				if err != nil {
					return nil, fmt.Errorf("relation: CSV line %d, attribute %q: %w", line, a.Name, err)
				}
				bools = append(bools, b)
			}
		}
		if err := rel.Append(nums, bools); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// InferSchema reads the header and first data row of a CSV stream and
// guesses each column's kind: cells parseable as floats are Numeric,
// cells recognizable as Booleans are Boolean. Returns an error on any
// other cell.
func InferSchema(header, firstRow []string) (Schema, error) {
	if len(header) != len(firstRow) {
		return nil, fmt.Errorf("relation: header has %d columns, first row has %d", len(header), len(firstRow))
	}
	schema := make(Schema, 0, len(header))
	for i, name := range header {
		cell := strings.TrimSpace(firstRow[i])
		if _, err := parseBool(cell); err == nil {
			schema = append(schema, Attribute{Name: strings.TrimSpace(name), Kind: Boolean})
			continue
		}
		if _, err := strconv.ParseFloat(cell, 64); err == nil {
			schema = append(schema, Attribute{Name: strings.TrimSpace(name), Kind: Numeric})
			continue
		}
		return nil, fmt.Errorf("relation: cannot infer kind of column %q from value %q", name, cell)
	}
	return schema, schema.Validate()
}

// ReadCSVAutoSchema parses a headered CSV stream, inferring the schema
// from the first data row.
func ReadCSVAutoSchema(r io.Reader) (*MemoryRelation, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: reading CSV header: %w", err)
	}
	first, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: reading first CSV row: %w", err)
	}
	schema, err := InferSchema(header, first)
	if err != nil {
		return nil, err
	}
	rel, err := NewMemoryRelation(schema)
	if err != nil {
		return nil, err
	}
	appendRec := func(rec []string) error {
		var nums []float64
		var bools []bool
		for i, a := range schema {
			cell := strings.TrimSpace(rec[i])
			switch a.Kind {
			case Numeric:
				v, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					return fmt.Errorf("relation: attribute %q: %w", a.Name, err)
				}
				nums = append(nums, v)
			case Boolean:
				b, err := parseBool(cell)
				if err != nil {
					return fmt.Errorf("relation: attribute %q: %w", a.Name, err)
				}
				bools = append(bools, b)
			}
		}
		return rel.Append(nums, bools)
	}
	if err := appendRec(first); err != nil {
		return nil, err
	}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return rel, nil
		}
		if err != nil {
			return nil, fmt.Errorf("relation: reading CSV: %w", err)
		}
		if err := appendRec(rec); err != nil {
			return nil, err
		}
	}
}

// WriteCSV writes the relation with a header row. Boolean values are
// encoded as "yes"/"no"; numeric values with strconv.FormatFloat 'g'.
func WriteCSV(w io.Writer, rel Relation) error {
	cw := csv.NewWriter(w)
	schema := rel.Schema()
	if err := cw.Write(schema.Names()); err != nil {
		return err
	}
	cols := ColumnSet{Numeric: schema.NumericIndices(), Bool: schema.BooleanIndices()}
	// Map schema position -> position within the scanned column set.
	numAt := make(map[int]int, len(cols.Numeric))
	for k, i := range cols.Numeric {
		numAt[i] = k
	}
	boolAt := make(map[int]int, len(cols.Bool))
	for k, i := range cols.Bool {
		boolAt[i] = k
	}
	record := make([]string, len(schema))
	err := rel.Scan(cols, func(b *Batch) error {
		for row := 0; row < b.Len; row++ {
			for i, a := range schema {
				if a.Kind == Numeric {
					record[i] = strconv.FormatFloat(b.Numeric[numAt[i]][row], 'g', -1, 64)
				} else if b.Bool[boolAt[i]][row] {
					record[i] = "yes"
				} else {
					record[i] = "no"
				}
			}
			if err := cw.Write(record); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}
