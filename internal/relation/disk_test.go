package relation

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

// writeTestFile writes n pseudo-random tuples to a temp file and
// returns the path plus the in-memory twin for comparison.
func writeTestFile(t *testing.T, n int, seed int64) (string, *MemoryRelation) {
	t.Helper()
	schema := bankSchema()
	path := filepath.Join(t.TempDir(), "data.opr")
	dw, err := NewDiskWriter(path, schema)
	if err != nil {
		t.Fatal(err)
	}
	mem := MustNewMemoryRelation(schema)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		nums := []float64{rng.Float64() * 1e6, float64(rng.Intn(100))}
		bools := []bool{rng.Intn(2) == 0, rng.Intn(3) == 0}
		if err := dw.Append(nums, bools); err != nil {
			t.Fatal(err)
		}
		mem.MustAppend(nums, bools)
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	return path, mem
}

func TestDiskRoundTrip(t *testing.T) {
	n := DefaultBatchSize + 321
	path, mem := writeTestFile(t, n, 1)
	dr, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	if dr.NumTuples() != n {
		t.Fatalf("NumTuples = %d, want %d", dr.NumTuples(), n)
	}
	if got := dr.Schema(); len(got) != 4 || got[0].Name != "Balance" || got[2].Kind != Boolean {
		t.Fatalf("schema mismatch: %v", got)
	}
	cols := ColumnSet{Numeric: []int{0, 1}, Bool: []int{2, 3}}
	wantBal, _ := mem.NumericColumn(0)
	wantAge, _ := mem.NumericColumn(1)
	wantCL, _ := mem.BoolColumn(2)
	wantAW, _ := mem.BoolColumn(3)
	at := 0
	err = dr.Scan(cols, func(b *Batch) error {
		for row := 0; row < b.Len; row++ {
			if b.Numeric[0][row] != wantBal[at] || b.Numeric[1][row] != wantAge[at] {
				t.Fatalf("numeric mismatch at row %d", at)
			}
			if b.Bool[0][row] != wantCL[at] || b.Bool[1][row] != wantAW[at] {
				t.Fatalf("bool mismatch at row %d", at)
			}
			at++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if at != n {
		t.Fatalf("scanned %d rows, want %d", at, n)
	}
}

func TestDiskScanRangeMatchesMemory(t *testing.T) {
	n := 1000
	path, mem := writeTestFile(t, n, 2)
	dr, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	collect := func(r RangeScanner, start, end int) []float64 {
		var out []float64
		if err := r.ScanRange(start, end, ColumnSet{Numeric: []int{0}}, func(b *Batch) error {
			out = append(out, b.Numeric[0][:b.Len]...)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	for _, rg := range [][2]int{{0, n}, {17, 430}, {999, 1000}, {500, 500}} {
		got := collect(dr, rg[0], rg[1])
		want := collect(mem, rg[0], rg[1])
		if len(got) != len(want) {
			t.Fatalf("range %v: got %d values, want %d", rg, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("range %v: value %d differs", rg, i)
			}
		}
	}
}

func TestDiskConcurrentRangeScans(t *testing.T) {
	n := 5000
	path, mem := writeTestFile(t, n, 3)
	dr, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	parts := 4
	sums := make([]float64, parts)
	errs := make(chan error, parts)
	for p := 0; p < parts; p++ {
		go func(p int) {
			start, end := p*n/parts, (p+1)*n/parts
			errs <- dr.ScanRange(start, end, ColumnSet{Numeric: []int{0}}, func(b *Batch) error {
				for _, v := range b.Numeric[0][:b.Len] {
					sums[p] += v
				}
				return nil
			})
		}(p)
	}
	for p := 0; p < parts; p++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	total := 0.0
	for _, s := range sums {
		total += s
	}
	want := 0.0
	col, _ := mem.NumericColumn(0)
	for _, v := range col {
		want += v
	}
	if math.Abs(total-want) > 1e-6*math.Abs(want) {
		t.Errorf("parallel scan sum = %g, want %g", total, want)
	}
}

func TestDiskSpecialFloatValues(t *testing.T) {
	schema := Schema{{Name: "X", Kind: Numeric}, {Name: "B", Kind: Boolean}}
	path := filepath.Join(t.TempDir(), "special.opr")
	dw, err := NewDiskWriter(path, schema)
	if err != nil {
		t.Fatal(err)
	}
	values := []float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.MaxFloat64, math.SmallestNonzeroFloat64, -1.5}
	for i, v := range values {
		if err := dw.Append([]float64{v}, []bool{i%2 == 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	dr, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	at := 0
	err = dr.Scan(ColumnSet{Numeric: []int{0}, Bool: []int{1}}, func(b *Batch) error {
		for row := 0; row < b.Len; row++ {
			got := b.Numeric[0][row]
			want := values[at]
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("value %d: got %v (bits %x), want %v", at, got, math.Float64bits(got), want)
			}
			if b.Bool[0][row] != (at%2 == 0) {
				t.Errorf("bool %d wrong", at)
			}
			at++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDiskManyBooleansPacking(t *testing.T) {
	// 11 Boolean attributes forces two packed bytes per row.
	schema := Schema{{Name: "X", Kind: Numeric}}
	for i := 0; i < 11; i++ {
		schema = append(schema, Attribute{Name: string(rune('A' + i)), Kind: Boolean})
	}
	path := filepath.Join(t.TempDir(), "bools.opr")
	dw, err := NewDiskWriter(path, schema)
	if err != nil {
		t.Fatal(err)
	}
	rows := 64
	for r := 0; r < rows; r++ {
		bools := make([]bool, 11)
		for b := 0; b < 11; b++ {
			bools[b] = (r>>uint(b%6))&1 == 1
		}
		if err := dw.Append([]float64{float64(r)}, bools); err != nil {
			t.Fatal(err)
		}
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	dr, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	boolIdx := dr.Schema().BooleanIndices()
	at := 0
	err = dr.Scan(ColumnSet{Bool: boolIdx}, func(b *Batch) error {
		for row := 0; row < b.Len; row++ {
			for k := 0; k < 11; k++ {
				want := (at>>uint(k%6))&1 == 1
				if b.Bool[k][row] != want {
					t.Fatalf("row %d bool %d: got %v, want %v", at, k, b.Bool[k][row], want)
				}
			}
			at++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDiskWriterErrors(t *testing.T) {
	schema := Schema{{Name: "X", Kind: Numeric}}
	path := filepath.Join(t.TempDir(), "w.opr")
	dw, err := NewDiskWriter(path, schema)
	if err != nil {
		t.Fatal(err)
	}
	if err := dw.Append([]float64{1, 2}, nil); err == nil {
		t.Errorf("wrong-shape append accepted")
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := dw.Close(); err != nil {
		t.Errorf("double close should be a no-op, got %v", err)
	}
	if err := dw.Append([]float64{1}, nil); err == nil {
		t.Errorf("append after close accepted")
	}
	if _, err := NewDiskWriter(path, Schema{}); err == nil {
		t.Errorf("empty schema accepted")
	}
}

func TestOpenDiskRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.opr")
	if err := os.WriteFile(bad, []byte("this is not an optrule file at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(bad); err == nil {
		t.Errorf("garbage file accepted")
	}
	if _, err := OpenDisk(filepath.Join(dir, "missing.opr")); err == nil {
		t.Errorf("missing file accepted")
	}
	// Truncated file: write a valid one, cut it short.
	path, _ := writeTestFile(t, 100, 4)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc.opr")
	if err := os.WriteFile(trunc, data[:len(data)-40], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(trunc); err == nil {
		t.Errorf("truncated file accepted")
	}
}

func TestDiskMemoryEquivalenceProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%2000) + 1
		path, mem := writeTestFile(t, n, seed)
		dr, err := OpenDisk(path)
		if err != nil {
			return false
		}
		cols := ColumnSet{Numeric: []int{0}, Bool: []int{3}}
		var dVals []float64
		var dBools []bool
		if err := dr.Scan(cols, func(b *Batch) error {
			dVals = append(dVals, b.Numeric[0][:b.Len]...)
			dBools = append(dBools, b.Bool[0][:b.Len]...)
			return nil
		}); err != nil {
			return false
		}
		mVals, _ := mem.NumericColumn(0)
		mBools, _ := mem.BoolColumn(3)
		if len(dVals) != len(mVals) {
			return false
		}
		for i := range dVals {
			if dVals[i] != mVals[i] || dBools[i] != mBools[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
