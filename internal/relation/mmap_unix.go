//go:build unix

package relation

import (
	"os"
	"syscall"
)

// mmapFile maps the whole file read-only. Returns nil (no error) for
// empty files; callers treat a nil mapping as "use positioned reads".
func mmapFile(f *os.File) ([]byte, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size <= 0 || int64(int(size)) != size {
		return nil, nil
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapFile releases a mapping produced by mmapFile.
func munmapFile(data []byte) error {
	return syscall.Munmap(data)
}
