package relation

import "fmt"

// MemoryRelation is a columnar in-memory implementation of Relation.
// Numeric columns are []float64 and Boolean columns are []bool, stored
// per attribute, so scans of a few columns touch only those columns.
type MemoryRelation struct {
	schema  Schema
	numRows int
	// colIdx[i] is the position of schema attribute i within its
	// kind-specific column store.
	colIdx  []int
	numeric [][]float64
	boolean [][]bool
}

// NewMemoryRelation creates an empty relation with the given schema.
func NewMemoryRelation(schema Schema) (*MemoryRelation, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	r := &MemoryRelation{schema: schema, colIdx: make([]int, len(schema))}
	for i, a := range schema {
		switch a.Kind {
		case Numeric:
			r.colIdx[i] = len(r.numeric)
			r.numeric = append(r.numeric, nil)
		case Boolean:
			r.colIdx[i] = len(r.boolean)
			r.boolean = append(r.boolean, nil)
		}
	}
	return r, nil
}

// MustNewMemoryRelation is NewMemoryRelation that panics on error, for
// tests and examples with statically known schemas.
func MustNewMemoryRelation(schema Schema) *MemoryRelation {
	r, err := NewMemoryRelation(schema)
	if err != nil {
		panic(err)
	}
	return r
}

// Schema implements Relation.
func (r *MemoryRelation) Schema() Schema { return r.schema }

// NumTuples implements Relation.
func (r *MemoryRelation) NumTuples() int { return r.numRows }

// Append adds one tuple. nums and bools must list the tuple's numeric
// and Boolean values in schema order of their respective kinds.
func (r *MemoryRelation) Append(nums []float64, bools []bool) error {
	if len(nums) != len(r.numeric) {
		return fmt.Errorf("relation: got %d numeric values, schema has %d", len(nums), len(r.numeric))
	}
	if len(bools) != len(r.boolean) {
		return fmt.Errorf("relation: got %d boolean values, schema has %d", len(bools), len(r.boolean))
	}
	for i, v := range nums {
		r.numeric[i] = append(r.numeric[i], v)
	}
	for i, v := range bools {
		r.boolean[i] = append(r.boolean[i], v)
	}
	r.numRows++
	return nil
}

// MustAppend is Append that panics on error.
func (r *MemoryRelation) MustAppend(nums []float64, bools []bool) {
	if err := r.Append(nums, bools); err != nil {
		panic(err)
	}
}

// Grow pre-allocates capacity for n additional tuples.
func (r *MemoryRelation) Grow(n int) {
	for i := range r.numeric {
		if cap(r.numeric[i])-len(r.numeric[i]) < n {
			col := make([]float64, len(r.numeric[i]), len(r.numeric[i])+n)
			copy(col, r.numeric[i])
			r.numeric[i] = col
		}
	}
	for i := range r.boolean {
		if cap(r.boolean[i])-len(r.boolean[i]) < n {
			col := make([]bool, len(r.boolean[i]), len(r.boolean[i])+n)
			copy(col, r.boolean[i])
			r.boolean[i] = col
		}
	}
}

// NumericColumn returns the full column for the numeric attribute at
// schema position i. The returned slice is the backing store: callers
// must not modify it.
func (r *MemoryRelation) NumericColumn(i int) ([]float64, error) {
	if i < 0 || i >= len(r.schema) || r.schema[i].Kind != Numeric {
		return nil, fmt.Errorf("relation: attribute %d is not a numeric column", i)
	}
	return r.numeric[r.colIdx[i]], nil
}

// BoolColumn returns the full column for the Boolean attribute at
// schema position i. The returned slice is the backing store: callers
// must not modify it.
func (r *MemoryRelation) BoolColumn(i int) ([]bool, error) {
	if i < 0 || i >= len(r.schema) || r.schema[i].Kind != Boolean {
		return nil, fmt.Errorf("relation: attribute %d is not a boolean column", i)
	}
	return r.boolean[r.colIdx[i]], nil
}

// Scan implements Relation. Batches are views into the column stores
// (no copying).
func (r *MemoryRelation) Scan(cols ColumnSet, fn func(*Batch) error) error {
	if err := cols.Validate(r.schema); err != nil {
		return err
	}
	batch := &Batch{
		Numeric: make([][]float64, len(cols.Numeric)),
		Bool:    make([][]bool, len(cols.Bool)),
	}
	for start := 0; start < r.numRows; start += DefaultBatchSize {
		end := start + DefaultBatchSize
		if end > r.numRows {
			end = r.numRows
		}
		batch.Len = end - start
		for k, i := range cols.Numeric {
			batch.Numeric[k] = r.numeric[r.colIdx[i]][start:end]
		}
		for k, i := range cols.Bool {
			batch.Bool[k] = r.boolean[r.colIdx[i]][start:end]
		}
		if err := fn(batch); err != nil {
			return err
		}
	}
	return nil
}
