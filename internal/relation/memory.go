package relation

import (
	"fmt"
	"sync"
)

// MemoryRelation is a columnar in-memory implementation of Relation.
// Numeric columns are []float64 and Boolean columns are []bool, stored
// per attribute, so scans of a few columns touch only those columns.
//
// Appends may run concurrently with scans: every reader captures the
// row count and column headers under a read lock and then streams
// lock-free. Append only writes at indices at or beyond a previously
// captured length (or reallocates, leaving the captured backing array
// untouched), so an in-flight scan observes exactly the rows that
// existed when it started.
type MemoryRelation struct {
	mu      sync.RWMutex
	schema  Schema
	numRows int
	// colIdx[i] is the position of schema attribute i within its
	// kind-specific column store.
	colIdx  []int
	numeric [][]float64
	boolean [][]bool
}

// NewMemoryRelation creates an empty relation with the given schema.
func NewMemoryRelation(schema Schema) (*MemoryRelation, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	r := &MemoryRelation{schema: schema, colIdx: make([]int, len(schema))}
	for i, a := range schema {
		switch a.Kind {
		case Numeric:
			r.colIdx[i] = len(r.numeric)
			r.numeric = append(r.numeric, nil)
		case Boolean:
			r.colIdx[i] = len(r.boolean)
			r.boolean = append(r.boolean, nil)
		}
	}
	return r, nil
}

// MustNewMemoryRelation is NewMemoryRelation that panics on error, for
// tests and examples with statically known schemas.
func MustNewMemoryRelation(schema Schema) *MemoryRelation {
	r, err := NewMemoryRelation(schema)
	if err != nil {
		panic(err)
	}
	return r
}

// Schema implements Relation.
func (r *MemoryRelation) Schema() Schema { return r.schema }

// NumTuples implements Relation.
func (r *MemoryRelation) NumTuples() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.numRows
}

// snapshot captures the row count and the column slice headers under
// the read lock; the returned headers are safe to read up to the
// captured row count without further locking.
func (r *MemoryRelation) snapshot() (n int, numeric [][]float64, boolean [][]bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.numRows, append([][]float64(nil), r.numeric...), append([][]bool(nil), r.boolean...)
}

// Append adds one tuple. nums and bools must list the tuple's numeric
// and Boolean values in schema order of their respective kinds. Safe
// to call concurrently with scans; the new tuple becomes visible to
// scans that start after Append returns.
func (r *MemoryRelation) Append(nums []float64, bools []bool) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(nums) != len(r.numeric) {
		return fmt.Errorf("relation: got %d numeric values, schema has %d", len(nums), len(r.numeric))
	}
	if len(bools) != len(r.boolean) {
		return fmt.Errorf("relation: got %d boolean values, schema has %d", len(bools), len(r.boolean))
	}
	for i, v := range nums {
		r.numeric[i] = append(r.numeric[i], v)
	}
	for i, v := range bools {
		r.boolean[i] = append(r.boolean[i], v)
	}
	r.numRows++
	return nil
}

// MustAppend is Append that panics on error.
func (r *MemoryRelation) MustAppend(nums []float64, bools []bool) {
	if err := r.Append(nums, bools); err != nil {
		panic(err)
	}
}

// Grow pre-allocates capacity for n additional tuples.
func (r *MemoryRelation) Grow(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.numeric {
		if cap(r.numeric[i])-len(r.numeric[i]) < n {
			col := make([]float64, len(r.numeric[i]), len(r.numeric[i])+n)
			copy(col, r.numeric[i])
			r.numeric[i] = col
		}
	}
	for i := range r.boolean {
		if cap(r.boolean[i])-len(r.boolean[i]) < n {
			col := make([]bool, len(r.boolean[i]), len(r.boolean[i])+n)
			copy(col, r.boolean[i])
			r.boolean[i] = col
		}
	}
}

// NumericColumn returns the full column for the numeric attribute at
// schema position i. The returned slice is the backing store: callers
// must not modify it, and its length reflects the rows present when
// NumericColumn was called.
func (r *MemoryRelation) NumericColumn(i int) ([]float64, error) {
	if i < 0 || i >= len(r.schema) || r.schema[i].Kind != Numeric {
		return nil, fmt.Errorf("relation: attribute %d is not a numeric column", i)
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.numeric[r.colIdx[i]], nil
}

// BoolColumn returns the full column for the Boolean attribute at
// schema position i. The returned slice is the backing store: callers
// must not modify it, and its length reflects the rows present when
// BoolColumn was called.
func (r *MemoryRelation) BoolColumn(i int) ([]bool, error) {
	if i < 0 || i >= len(r.schema) || r.schema[i].Kind != Boolean {
		return nil, fmt.Errorf("relation: attribute %d is not a boolean column", i)
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.boolean[r.colIdx[i]], nil
}

// Scan implements Relation. Batches are views into the column stores
// (no copying).
func (r *MemoryRelation) Scan(cols ColumnSet, fn func(*Batch) error) error {
	n, numeric, boolean := r.snapshot()
	return r.scanSnapshot(0, n, n, numeric, boolean, cols, fn)
}

// scanSnapshot streams rows [start,end) of a captured snapshot.
func (r *MemoryRelation) scanSnapshot(start, end, n int, numeric [][]float64, boolean [][]bool, cols ColumnSet, fn func(*Batch) error) error {
	if err := cols.Validate(r.schema); err != nil {
		return err
	}
	if start < 0 || end > n || start > end {
		return fmt.Errorf("relation: scan range [%d,%d) out of [0,%d)", start, end, n)
	}
	batch := &Batch{
		Numeric: make([][]float64, len(cols.Numeric)),
		Bool:    make([][]bool, len(cols.Bool)),
	}
	for at := start; at < end; at += DefaultBatchSize {
		stop := at + DefaultBatchSize
		if stop > end {
			stop = end
		}
		batch.Len = stop - at
		for k, i := range cols.Numeric {
			batch.Numeric[k] = numeric[r.colIdx[i]][at:stop]
		}
		for k, i := range cols.Bool {
			batch.Bool[k] = boolean[r.colIdx[i]][at:stop]
		}
		if err := fn(batch); err != nil {
			return err
		}
	}
	return nil
}
