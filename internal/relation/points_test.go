package relation

import (
	"math"
	"path/filepath"
	"testing"
)

// pointsFixture writes n deterministic tuples (two numeric columns, one
// Boolean) in the given format and opens the file.
func pointsFixture(t *testing.T, n, version int) *DiskRelation {
	t.Helper()
	schema := Schema{
		{Name: "A", Kind: Numeric},
		{Name: "B", Kind: Numeric},
		{Name: "Flag", Kind: Boolean},
	}
	path := filepath.Join(t.TempDir(), "points.opr")
	var dw *DiskWriter
	var err error
	if version == DiskFormatV2 {
		// A small group size so point reads cross group boundaries.
		dw, err = NewDiskWriterV2(path, schema, 64)
	} else {
		dw, err = NewDiskWriter(path, schema)
	}
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v := float64(i)
		if i%17 == 0 {
			v = math.NaN()
		}
		if err := dw.Append([]float64{v, -2 * float64(i)}, []bool{i%2 == 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	dr, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	return dr
}

func TestReadNumericPointsBothFormats(t *testing.T) {
	const n = 300
	for _, version := range []int{DiskFormatV1, DiskFormatV2} {
		dr := pointsFixture(t, n, version)
		rows := []int{0, 0, 1, 16, 17, 17, 17, 63, 64, 65, 128, n - 1, n - 1}
		out := make([]float64, len(rows))
		before := dr.BytesRead()
		if err := dr.ReadNumericPoints(0, rows, out); err != nil {
			t.Fatalf("v%d: %v", version, err)
		}
		unique := 0
		for i, row := range rows {
			if i == 0 || row != rows[i-1] {
				unique++
			}
			want := float64(row)
			if row%17 == 0 {
				if !math.IsNaN(out[i]) {
					t.Errorf("v%d: row %d = %g, want NaN", version, row, out[i])
				}
				continue
			}
			if out[i] != want {
				t.Errorf("v%d: row %d = %g, want %g", version, row, out[i], want)
			}
		}
		// Counted-I/O model: 8 bytes per unique row.
		if got := dr.BytesRead() - before; got != int64(unique)*8 {
			t.Errorf("v%d: point reads counted %d bytes, want %d", version, got, unique*8)
		}
		// Second column too.
		if err := dr.ReadNumericPoints(1, []int{5, 100}, out[:2]); err != nil {
			t.Fatal(err)
		}
		if out[0] != -10 || out[1] != -200 {
			t.Errorf("v%d: column B points = %v", version, out[:2])
		}

		// Close releases the mapping; reads keep working via the
		// positioned-read fallback and agree with the mapped path.
		if err := dr.Close(); err != nil {
			t.Fatalf("v%d: Close: %v", version, err)
		}
		if err := dr.ReadNumericPoints(0, []int{1, 64}, out[:2]); err != nil {
			t.Fatalf("v%d: post-Close read: %v", version, err)
		}
		if out[0] != 1 || out[1] != 64 {
			t.Errorf("v%d: post-Close points = %v", version, out[:2])
		}
		if err := dr.Close(); err != nil {
			t.Errorf("v%d: second Close: %v", version, err)
		}

		// Validation errors.
		if err := dr.ReadNumericPoints(2, []int{0}, out[:1]); err == nil {
			t.Errorf("v%d: Boolean attribute accepted", version)
		}
		if err := dr.ReadNumericPoints(0, []int{n}, out[:1]); err == nil {
			t.Errorf("v%d: out-of-range row accepted", version)
		}
		if err := dr.ReadNumericPoints(0, []int{5, 3}, out[:2]); err == nil {
			t.Errorf("v%d: unsorted rows accepted", version)
		}
		if err := dr.ReadNumericPoints(0, []int{0}, out[:0]); err == nil {
			t.Errorf("v%d: length mismatch accepted", version)
		}
	}
}

// TestCloseBeforeFirstPointRead pins the Close + point-read lifecycle:
// a Close that precedes the FIRST point read must permanently disable
// the lazy mapping (Close fires the map-once latch), so later reads
// engage the documented positioned-read fallback instead of re-arming
// a mapping on a closed relation that nothing would ever release.
// BytesRead must follow the same 8-bytes-per-unique-row model on the
// fallback path.
func TestCloseBeforeFirstPointRead(t *testing.T) {
	const n = 300
	for _, version := range []int{DiskFormatV1, DiskFormatV2} {
		dr := pointsFixture(t, n, version)
		if err := dr.Close(); err != nil {
			t.Fatalf("v%d: Close before first read: %v", version, err)
		}
		rows := []int{1, 64, 64, n - 1}
		out := make([]float64, len(rows))
		before := dr.BytesRead()
		if err := dr.ReadNumericPoints(0, rows, out); err != nil {
			t.Fatalf("v%d: post-Close read: %v", version, err)
		}
		if out[0] != 1 || out[1] != 64 || out[2] != 64 || out[3] != n-1 {
			t.Errorf("v%d: post-Close points = %v", version, out)
		}
		if got := dr.BytesRead() - before; got != 3*8 {
			t.Errorf("v%d: fallback reads counted %d bytes, want %d (3 unique rows)", version, got, 3*8)
		}
		// The mapping must never have armed: Close already fired the
		// latch, so a mapped read here would be the leak this test pins.
		if dr.mmapData != nil {
			t.Errorf("v%d: mapping re-armed after Close", version)
		}
		if err := dr.Close(); err != nil {
			t.Errorf("v%d: idempotent Close: %v", version, err)
		}
	}
}

// TestConcurrentScanAndPointReads runs full scans concurrently with
// point reads (including the racy first read that arms the mapping) on
// both formats; meaningful under -race.
func TestConcurrentScanAndPointReads(t *testing.T) {
	const n = 2000
	for _, version := range []int{DiskFormatV1, DiskFormatV2} {
		dr := pointsFixture(t, n, version)
		done := make(chan error, 6)
		for g := 0; g < 3; g++ {
			go func() {
				sum := 0.0
				done <- dr.Scan(ColumnSet{Numeric: []int{1}}, func(b *Batch) error {
					for _, v := range b.Numeric[0][:b.Len] {
						sum += v
					}
					return nil
				})
			}()
			go func() {
				out := make([]float64, 4)
				done <- dr.ReadNumericPoints(1, []int{3, 500, 500, n - 1}, out)
			}()
		}
		for i := 0; i < 6; i++ {
			if err := <-done; err != nil {
				t.Errorf("v%d: %v", version, err)
			}
		}
		if err := dr.Close(); err != nil {
			t.Errorf("v%d: Close: %v", version, err)
		}
	}
}

// TestMemoryReadNumericPoints covers the in-memory implementation.
func TestMemoryReadNumericPoints(t *testing.T) {
	rel := MustNewMemoryRelation(Schema{{Name: "X", Kind: Numeric}, {Name: "F", Kind: Boolean}})
	for i := 0; i < 50; i++ {
		rel.MustAppend([]float64{float64(i) * 3}, []bool{false})
	}
	out := make([]float64, 3)
	if err := rel.ReadNumericPoints(0, []int{0, 7, 49}, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 0 || out[1] != 21 || out[2] != 147 {
		t.Errorf("points = %v", out)
	}
	if err := rel.ReadNumericPoints(0, []int{50}, out[:1]); err == nil {
		t.Error("out-of-range row accepted")
	}
}
