package relation

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzReadCSVAutoSchema checks the CSV reader never panics and that
// accepted inputs round-trip: whatever parses must re-parse to the same
// tuple count after WriteCSV.
func FuzzReadCSVAutoSchema(f *testing.F) {
	f.Add("A,B\n1.5,yes\n2,no\n")
	f.Add("A\nhello\n")
	f.Add("X,Y,Z\n1,2,3\n4,5\n")
	f.Add("")
	f.Add("Balance,CardLoan\n-1e308,true\n0.0,0\n")
	f.Add("A,A\n1,2\n")
	f.Add("A,B\nNaN,yes\n")
	f.Fuzz(func(t *testing.T, input string) {
		rel, err := ReadCSVAutoSchema(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, rel); err != nil {
			t.Fatalf("accepted relation failed to serialize: %v", err)
		}
		back, err := ReadCSV(&buf, rel.Schema())
		if err != nil {
			t.Fatalf("serialized relation failed to re-parse: %v", err)
		}
		if back.NumTuples() != rel.NumTuples() {
			t.Fatalf("round trip changed tuple count: %d -> %d", rel.NumTuples(), back.NumTuples())
		}
	})
}

// FuzzOpenSharded feeds arbitrary manifest text to the sharded opener:
// two genuine shard files sit in the directory, so accepted manifests
// exercise shard opening and cross-checking too. It must reject or
// accept without panicking, and an accepted relation must scan exactly
// the row count it declares.
func FuzzOpenSharded(f *testing.F) {
	f.Add("OPTSHARD 1\nshard 7 s0.opr\nshard 3 s1.opr\n")
	f.Add("OPTSHARD 1\nshard 7 s0.opr\n# comment\n\nshard 7 s0.opr\n")
	f.Add("OPTSHARD 1\n")
	f.Add("OPTSHARD 2\nshard 7 s0.opr\n")
	f.Add("OPTSHARD 1\nshard -1 s0.opr\n")
	f.Add("OPTSHARD 1\nshard 99 s0.opr\n")
	f.Add("OPTSHARD 1\nshard 7 missing.opr\n")
	f.Add("OPTSHARD 1\nshard x s0.opr\nshard 3 s1.opr junk\n")
	f.Add("OPTR not a manifest")
	f.Add("")
	// Appended-manifest shapes: the ShardedAppender rewrites manifests
	// as existing lines verbatim plus appended `m-sNNNNN.opr` lines, so
	// opened-after-append relations look like these — including a shard
	// repeated between the seed and appended sections, and appended
	// lines whose files are missing (a torn cleanup).
	f.Add("OPTSHARD 1\nshard 7 s0.opr\nshard 3 s1.opr\nshard 7 m-s00002.opr\n")
	f.Add("OPTSHARD 1\nshard 7 s0.opr\nshard 7 s0.opr\nshard 3 s1.opr\n")
	f.Add("OPTSHARD 1\nshard 7 s0.opr\nshard 3 m-s00001.opr\nshard 3 m-s00002.opr\n")
	f.Add("OPTSHARD 1\nshard 7 s0.opr\nshard 0 m-s00001.opr\n")
	f.Fuzz(func(t *testing.T, manifest string) {
		dir := t.TempDir()
		for i, rows := range []int{7, 3} {
			name := filepath.Join(dir, "s"+string(rune('0'+i))+".opr")
			dw, err := NewDiskWriterV2(name, Schema{{Name: "X", Kind: Numeric}, {Name: "B", Kind: Boolean}}, 4)
			if err != nil {
				t.Fatal(err)
			}
			for r := 0; r < rows; r++ {
				dw.Append([]float64{float64(r)}, []bool{r%2 == 0})
			}
			if err := dw.Close(); err != nil {
				t.Fatal(err)
			}
		}
		p := filepath.Join(dir, "m.oprs")
		if err := os.WriteFile(p, []byte(manifest), 0o644); err != nil {
			t.Skip()
		}
		sr, err := OpenSharded(p)
		if err != nil {
			return // rejection is fine; panics are not
		}
		defer sr.Close()
		count := 0
		err = sr.Scan(ColumnSet{Numeric: []int{0}, Bool: []int{1}}, func(b *Batch) error {
			count += b.Len
			return nil
		})
		if err != nil {
			t.Fatalf("accepted sharded relation failed to scan: %v", err)
		}
		if count != sr.NumTuples() {
			t.Fatalf("scan returned %d rows, manifest declared %d", count, sr.NumTuples())
		}
	})
}

// FuzzOpenDisk feeds arbitrary bytes to the binary reader — the v1 row
// parser, the v2 header/block-directory parser, and the v3 compressed
// header/directory/block parsers: it must reject or accept without
// panicking, and never over-deliver declared rows. For v1/v2, an
// accepted file must also scan cleanly (every field the scan trusts is
// validated at open); v3 block payloads are validated at DECODE time,
// so an accepted v3 file may legitimately fail mid-scan — what it must
// never do is panic, deliver more rows than declared, or scan cleanly
// with a row count other than the declared one.
func FuzzOpenDisk(f *testing.F) {
	// Seed with a genuine v1 file.
	dir := os.TempDir()
	path := filepath.Join(dir, "fuzz-seed.opr")
	dw, err := NewDiskWriter(path, Schema{{Name: "X", Kind: Numeric}, {Name: "B", Kind: Boolean}})
	if err != nil {
		f.Fatal(err)
	}
	dw.Append([]float64{1.5}, []bool{true})
	dw.Append([]float64{-2.5}, []bool{false})
	if err := dw.Close(); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte("OPTR garbage"))
	f.Add([]byte{})
	f.Add(valid[:len(valid)-3])
	// Seed with a genuine v2 file: several groups plus a partial tail,
	// and mutations cutting into the directory and the header tail.
	pathV2 := filepath.Join(dir, "fuzz-seed-v2.opr")
	dw2, err := NewDiskWriterV2(pathV2, Schema{{Name: "X", Kind: Numeric}, {Name: "B", Kind: Boolean}}, 4)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 11; i++ {
		dw2.Append([]float64{float64(i) * 1.5}, []bool{i%2 == 0})
	}
	if err := dw2.Close(); err != nil {
		f.Fatal(err)
	}
	validV2, err := os.ReadFile(pathV2)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(validV2)
	f.Add(validV2[:len(validV2)-5])        // cut mid-directory
	f.Add(validV2[:len(validV2)/2])        // cut mid-data
	mut := append([]byte(nil), validV2...) // corrupt a directory byte
	mut[len(mut)-6] ^= 0xff
	f.Add(mut)
	// Seed with a genuine v3 file exercising most encodings: a delta
	// column (small ints), a dict column (3 repeating reals), a raw
	// column (irrationals), a FOR column (integers beyond the ±2^52
	// delta limit, where only FOR is exact), and a bitmap bool —
	// several groups plus a partial tail — with mutations into the
	// directory (zone maps, encodings, offsets) and into the
	// compressed payloads.
	pathV3 := filepath.Join(dir, "fuzz-seed-v3.opr")
	dw3, err := NewDiskWriterV3(pathV3, Schema{
		{Name: "D", Kind: Numeric}, {Name: "K", Kind: Numeric},
		{Name: "R", Kind: Numeric}, {Name: "F", Kind: Numeric},
		{Name: "B", Kind: Boolean},
	}, 4)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 11; i++ {
		dicts := []float64{0.5, 1.5, 2.5}
		dw3.Append([]float64{
			float64(i % 7), dicts[i%3], float64(i) + 0.123,
			float64(uint64(1)<<53) + float64(i)*512,
		}, []bool{i%2 == 0})
	}
	if err := dw3.Close(); err != nil {
		f.Fatal(err)
	}
	validV3, err := os.ReadFile(pathV3)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(validV3)
	f.Add(validV3[:len(validV3)-5]) // cut mid-directory
	f.Add(validV3[:len(validV3)/2]) // cut mid-data
	for _, flip := range []int{6, 20, 29, 40} {
		mut3 := append([]byte(nil), validV3...) // corrupt directory bytes
		mut3[len(mut3)-flip] ^= 0xff
		f.Add(mut3)
	}
	mid := append([]byte(nil), validV3...) // corrupt a payload byte
	mid[len(mid)/2] ^= 0xff
	f.Add(mid)
	// A second v3 seed built for run-length coding: RLE only beats the
	// dictionary when a group's cardinality is high relative to its run
	// count, which tiny groups cannot produce — so this file uses
	// 400-row groups with two long half-group runs. Mutations cut and
	// flip into the run directory and the packed payload.
	pathRLE := filepath.Join(dir, "fuzz-seed-v3-rle.opr")
	dwR, err := NewDiskWriterV3(pathRLE, Schema{{Name: "S", Kind: Numeric}}, 400)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		dwR.Append([]float64{float64(i/200) + 0.5}, nil)
	}
	if err := dwR.Close(); err != nil {
		f.Fatal(err)
	}
	validRLE, err := os.ReadFile(pathRLE)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(validRLE)
	f.Add(validRLE[:len(validRLE)-9]) // cut mid-directory
	f.Add(validRLE[:40])              // cut mid-payload
	for _, flip := range []int{5, 17, 25, 33, 40, 41, 44, 48, 52} {
		mutR := append([]byte(nil), validRLE...) // run counts, end rows, values
		mutR[flip] ^= 0xff
		f.Add(mutR)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "fuzz.opr")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Skip()
		}
		dr, err := OpenDisk(p)
		if err != nil {
			return
		}
		count := 0
		err = dr.Scan(ColumnSet{Numeric: dr.Schema().NumericIndices(), Bool: dr.Schema().BooleanIndices()},
			func(b *Batch) error {
				count += b.Len
				return nil
			})
		if count > dr.NumTuples() {
			t.Fatalf("scan delivered %d rows, header declared %d", count, dr.NumTuples())
		}
		if err != nil {
			// v3 block payloads are validated at decode time, so a hostile
			// file may pass the open-time directory checks and fail
			// mid-scan — a clean error, not a panic, is the contract. For
			// v1/v2, everything a scan trusts was validated at open, so a
			// scan failure there means an open-time check has a hole.
			if dr.Version() == DiskFormatV3 {
				return
			}
			t.Fatalf("accepted v%d file failed to scan: %v", dr.Version(), err)
		}
		if count != dr.NumTuples() {
			t.Fatalf("scan returned %d rows, header declared %d", count, dr.NumTuples())
		}
	})
}
