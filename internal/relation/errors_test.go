package relation

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// failWriter errors after n bytes, to exercise write-error paths.
type failWriter struct {
	n       int
	written int
}

func (f *failWriter) Write(p []byte) (int, error) {
	f.written += len(p)
	if f.written > f.n {
		return 0, errSentinel("disk full")
	}
	return len(p), nil
}

func TestWriteCSVPropagatesWriterErrors(t *testing.T) {
	rel := MustNewMemoryRelation(bankSchema())
	for i := 0; i < 100; i++ {
		rel.MustAppend([]float64{float64(i), 1}, []bool{true, false})
	}
	if err := WriteCSV(&failWriter{n: 10}, rel); err == nil {
		t.Errorf("failing writer not reported")
	}
	if err := WriteCSV(&failWriter{n: 200}, rel); err == nil {
		t.Errorf("mid-stream failure not reported")
	}
}

func TestNewDiskWriterUnwritablePath(t *testing.T) {
	if _, err := NewDiskWriter("/nonexistent-dir-xyz/f.opr", bankSchema()); err == nil {
		t.Errorf("unwritable path accepted")
	}
}

func TestOpenDiskWrongVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.opr")
	dw, err := NewDiskWriter(path, Schema{{Name: "X", Kind: Numeric}})
	if err != nil {
		t.Fatal(err)
	}
	dw.Append([]float64{1}, nil)
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Patch the version field (bytes 4..8) to 99.
	binary.LittleEndian.PutUint32(data[4:8], 99)
	bad := filepath.Join(t.TempDir(), "v99.opr")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("wrong version accepted: %v", err)
	}
}

func TestOpenDiskImplausibleAttributeCount(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(diskMagic[:])
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], DiskFormatV1)
	buf.Write(u32[:])
	binary.LittleEndian.PutUint32(u32[:], 1<<20) // absurd attribute count
	buf.Write(u32[:])
	path := filepath.Join(t.TempDir(), "attrs.opr")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(path); err == nil {
		t.Errorf("implausible attribute count accepted")
	}
}

func TestDiskScanRangeErrors(t *testing.T) {
	path, _ := writeTestFile(t, 50, 8)
	dr, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dr.ScanRange(-1, 10, ColumnSet{}, func(*Batch) error { return nil }); err == nil {
		t.Errorf("negative start accepted")
	}
	if err := dr.ScanRange(0, 51, ColumnSet{}, func(*Batch) error { return nil }); err == nil {
		t.Errorf("end beyond rows accepted")
	}
	if err := dr.ScanRange(0, 10, ColumnSet{Numeric: []int{2}}, func(*Batch) error { return nil }); err == nil {
		t.Errorf("bool column as numeric accepted")
	}
	// Callback error propagates.
	want := errSentinel("stop")
	if err := dr.ScanRange(0, 50, ColumnSet{Numeric: []int{0}}, func(*Batch) error { return want }); err != want {
		t.Errorf("callback error lost: %v", err)
	}
	// Deleting the backing file breaks subsequent scans.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if err := dr.Scan(ColumnSet{Numeric: []int{0}}, func(*Batch) error { return nil }); err == nil {
		t.Errorf("scan of deleted file succeeded")
	}
}
