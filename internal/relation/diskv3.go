package relation

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"os"
	"sync"
)

// Format v3 — compressed column-major block groups (little endian).
// The header and block-group discipline are v2's (see diskv2.go); what
// changes is that every column block is individually ENCODED and the
// footer directory carries one entry per block — its file location,
// its encoding, and a zone map — instead of one entry per group:
//
//	magic     [4]byte  "OPTR"
//	version   uint32   3
//	nattrs    uint32
//	per attribute: kind uint8, nameLen uint16, name []byte
//	numRows   uint64   (patched on Close)
//	groupRows uint32   rows per full block group
//	numGroups uint32   (patched on Close)
//	dirOff    uint64   file offset of the block directory (patched on Close)
//	compressed column blocks, back to back (per group: numeric columns
//	    in dense order, then Boolean columns in dense order)
//	directory at dirOff: per group, per column:
//	    numeric: off uint64, encLen uint32, enc uint8, min f64, max f64
//	    boolean: off uint64, encLen uint32, enc uint8, trueCount uint32
//
// Block encodings (enc):
//
//	encRaw    0  rows × 8 bytes of float64 — the fallback for columns
//	             with no exploitable structure (e.g. continuous noise).
//	encDelta  1  delta-from-minimum bit packing: payload is one
//	             bitWidth byte followed by rows values of bitWidth bits
//	             each (LSB first); value = zoneMin + delta. Chosen for
//	             blocks whose values are all integers in a small range
//	             (ages, counts, categorical codes) — a 7-bit age column
//	             is 9.1x smaller than raw.
//	encDict   2  dictionary coding: count uint16, count × 8-byte dict
//	             values (first-appearance order, keyed by Float64bits
//	             so NaN and ±Inf entries round-trip), one bitWidth
//	             byte, then rows packed dict indices. Chosen for
//	             low-cardinality columns whatever their values.
//	encBitmap 3  Boolean columns: ceil(rows/8) packed bits, bit r%8 of
//	             byte r/8 (LSB first) — the v2 bit layout, kept because
//	             1 bit/row rarely loses to anything.
//	encRLE    4  run-length: numRuns uint32, then per run an exclusive
//	             cumulative end row uint32 and the run's value as raw
//	             Float64bits. Runs are maximal spans of bit-identical
//	             values, so NaN and −0 round-trip exactly. Chosen for
//	             sorted or constant-ish blocks whose cardinality
//	             defeats the dictionary — the shape a clustered column
//	             produces (see ClusterBy).
//	encFOR    5  frame-of-reference bit packing: an explicit int64 base
//	             (the block minimum), one bitWidth byte, then rows
//	             deltas of bitWidth bits each, computed in exact int64
//	             arithmetic — covers integer-valued blocks beyond
//	             encDelta's ±2^52 float-exactness limit, up to ±2^62.
//	             encDelta wins whenever both are eligible (its header
//	             is 8 bytes smaller at the same bit width).
//
// The writer picks, per block, the encoding with the smallest computed
// size (raw wins ties), so a pathological block can never grow beyond
// raw + its directory entry.
//
// Zone maps: a numeric entry's min/max cover the block's non-NaN values
// (+Inf/−Inf marks an all-NaN block); a Boolean entry carries its
// trueCount. ScanRangePruned consults them to skip every block of a
// group that provably contains no predicate-matching row — the skipped
// rows are reported through the skip callback so callers keep exact
// row accounting — and BytesRead then grows by nothing for that group.
//
// BytesRead contract under compression: scans charge the PHYSICAL
// post-compression bytes actually fetched (whole encoded blocks of the
// selected columns; zone-skipped groups charge zero), so v3 scans of
// compressible columns cost strictly fewer counted bytes than the same
// v2 scan. Point reads keep the flat 8-bytes-per-unique-row price of
// the other formats: the value's location is computed in O(1) from the
// directory entry (bit arithmetic for packed blocks; RLE blocks
// binary-search their run directory in O(log runs) tiny fetches),
// never by decoding the block.

// Numeric/Boolean block encodings of the v3 format.
const (
	v3EncRaw    = 0
	v3EncDelta  = 1
	v3EncDict   = 2
	v3EncBitmap = 3
	v3EncRLE    = 4
	v3EncFOR    = 5
)

const (
	// v3NumEntrySize / v3BoolEntrySize are the encoded directory entry
	// sizes: off u64 + encLen u32 + enc u8, then min/max f64 (numeric)
	// or trueCount u32 (bool).
	v3NumEntrySize  = 8 + 4 + 1 + 8 + 8
	v3BoolEntrySize = 8 + 4 + 1 + 4
	// v3MaxDict bounds dictionary size: 256 keeps indices within 8 bits
	// and the dict itself within 2 KiB.
	v3MaxDict = 256
	// v3MaxDictBits is the widest legal dict index.
	v3MaxDictBits = 8
	// v3DeltaLimit bounds the magnitude of delta-encodable values:
	// within ±2^52 every integer-valued float64 difference v−min is
	// exact, so encode(decode) is the identity. Beyond it, differences
	// can round and the encoding would silently corrupt values.
	v3DeltaLimit = 1 << 52
	// v3FORLimit bounds FOR-encodable magnitudes: within ±2^62 every
	// integer-valued float64 converts exactly to int64, and any block
	// span stays under 64 bits — the writer further requires the span
	// to fit 63 bits so the decoder can reject base+delta overflow with
	// a plain signed comparison.
	v3FORLimit = 1 << 62
	// v3RLERunSize is the encoded size of one RLE run record: end row
	// uint32 + value bits uint64.
	v3RLERunSize = 4 + 8
)

// v3GroupEntrySize returns the directory bytes per block group.
func v3GroupEntrySize(nums, bools int) int {
	return nums*v3NumEntrySize + bools*v3BoolEntrySize
}

// v3Block is one decoded directory entry. Numeric blocks use min/max
// (the zone map; min also anchors encDelta); Boolean blocks use
// trueCount.
type v3Block struct {
	off      int64
	encLen   int
	enc      uint8
	min, max float64
	trueCnt  int
}

// ---------------------------------------------------------------------
// Bit packing (LSB first): value i occupies bits [i*bw, (i+1)*bw).

// packBits writes n bw-bit values into dst (which must be zeroed and
// hold at least ceil(n*bw/8) bytes).
func packBits(dst []byte, vals []uint64, bw int) {
	if bw == 0 {
		return
	}
	bit := 0
	for _, v := range vals {
		put := 0
		for put < bw {
			byteOff := bit >> 3
			shift := bit & 7
			chunk := 8 - shift
			if chunk > bw-put {
				chunk = bw - put
			}
			piece := (v >> uint(put)) & (1<<uint(chunk) - 1)
			dst[byteOff] |= byte(piece << uint(shift))
			bit += chunk
			put += chunk
		}
	}
}

// unpackBits reads n bw-bit values from src into dst[:n]. src must hold
// at least ceil(n*bw/8) bytes; a fast 9-byte-window path covers all but
// the final values, which are assembled byte by byte.
func unpackBits(src []byte, bw, n int, dst []uint64) {
	if bw == 0 {
		for i := 0; i < n; i++ {
			dst[i] = 0
		}
		return
	}
	mask := ^uint64(0) >> uint(64-bw)
	bit := 0
	i := 0
	for ; i < n; i++ {
		byteOff := bit >> 3
		if byteOff+9 > len(src) {
			break
		}
		shift := uint(bit & 7)
		w := binary.LittleEndian.Uint64(src[byteOff:]) >> shift
		if shift > 0 {
			w |= uint64(src[byteOff+8]) << (64 - shift)
		}
		dst[i] = w & mask
		bit += bw
	}
	for ; i < n; i++ {
		byteOff := bit >> 3
		shift := uint(bit & 7)
		var w uint64
		for j := 0; j < 9 && byteOff+j < len(src); j++ {
			if j == 0 {
				w = uint64(src[byteOff]) >> shift
			} else {
				w |= uint64(src[byteOff+j]) << (uint(8*j) - shift)
			}
		}
		dst[i] = w & mask
		bit += bw
	}
}

// ---------------------------------------------------------------------
// Writer.

// NewDiskWriterV3 creates (staged like NewDiskWriterV2) the file at path and writes a v3
// compressed column-major header. groupRows is the block-group size; 0
// selects DefaultGroupRows. Call Append for each tuple and Close to
// finalize.
func NewDiskWriterV3(path string, schema Schema, groupRows int) (*DiskWriter, error) {
	dw, err := NewDiskWriterV2(path, schema, groupRows)
	if err != nil {
		return nil, err
	}
	// The v2 constructor wrote "version 2" into the header prefix; patch
	// the version field in place before any data lands after it.
	dw.version = DiskFormatV3
	if err := dw.w.Flush(); err != nil {
		dw.abort()
		return nil, err
	}
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(DiskFormatV3))
	if _, err := dw.f.WriteAt(u32[:], 4); err != nil {
		dw.abort()
		return nil, err
	}
	return dw, nil
}

// v3MinMax returns the zone map of a numeric block: min/max over the
// non-NaN values, or the (+Inf, −Inf) all-NaN marker.
func v3MinMax(col []float64) (mn, mx float64) {
	mn, mx = math.Inf(1), math.Inf(-1)
	for _, v := range col {
		if math.IsNaN(v) {
			continue
		}
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return mn, mx
}

// v3PlanNumeric analyzes one numeric block and picks its encoding:
// the candidate sizes are computed arithmetically, so only the winner
// is ever materialized. Returns the encoding, its payload size, the
// packed bit width (encDelta/encFOR), and the dictionary (encDict, in
// first-appearance order).
func v3PlanNumeric(col []float64, mn, mx float64) (enc uint8, size int, bw int, dict []float64) {
	rows := len(col)
	rawSize := 8 * rows
	enc, size = v3EncRaw, rawSize

	// Integer eligibility, shared by delta and FOR: every value an
	// integer (NaN fails v != Trunc(v)) and no negative zero — -0 − min
	// yields +0, so its sign bit would not round-trip.
	intOK := true
	for _, v := range col {
		if v != math.Trunc(v) || (v == 0 && math.Signbit(v)) {
			intOK = false
			break
		}
	}
	// Delta: anchored at the zone-map minimum, exact only within ±2^52.
	// An all-NaN block (mn = +Inf) fails the bound checks.
	if intOK && mn >= -v3DeltaLimit && mx <= v3DeltaLimit {
		w := bits.Len64(uint64(mx - mn))
		if s := 1 + (rows*w+7)/8; s < size {
			enc, size, bw = v3EncDelta, s, w
		}
	}
	// FOR: explicit int64 base in the payload, deltas in exact int64
	// arithmetic — reaches integer blocks beyond the delta limit. The
	// uint64 subtraction is exact two's complement, so the span check
	// needs no float rounding slack.
	if intOK && mn >= -v3FORLimit && mx <= v3FORLimit {
		w := bits.Len64(uint64(int64(mx)) - uint64(int64(mn)))
		if s := 8 + 1 + (rows*w+7)/8; w <= 63 && s < size {
			enc, size, bw = v3EncFOR, s, w
		}
	}

	// Run-length: maximal spans of bit-identical values (NaN and ±0
	// runs compress and round-trip exactly). Wins on sorted or
	// constant-ish blocks whose cardinality defeats the dictionary.
	runs := 1
	for i := 1; i < rows; i++ {
		if math.Float64bits(col[i]) != math.Float64bits(col[i-1]) {
			runs++
		}
	}
	if s := 4 + v3RLERunSize*runs; s < size {
		enc, size = v3EncRLE, s
	}

	// Dictionary eligibility: at most v3MaxDict distinct bit patterns.
	seen := make(map[uint64]struct{}, 16)
	for _, v := range col {
		k := math.Float64bits(v)
		if _, ok := seen[k]; ok {
			continue
		}
		if len(seen) == v3MaxDict {
			seen = nil
			break
		}
		seen[k] = struct{}{}
		dict = append(dict, v)
	}
	if seen != nil && len(dict) > 0 {
		w := bits.Len(uint(len(dict) - 1))
		if s := 2 + 8*len(dict) + 1 + (rows*w+7)/8; s < size {
			enc, size = v3EncDict, s
			return enc, size, bw, dict
		}
	}
	return enc, size, bw, nil
}

// v3EncodeNumeric encodes one numeric block into buf (whose first size
// bytes are overwritten) according to the plan from v3PlanNumeric.
// scratch holds the packed integers and is grown as needed.
func v3EncodeNumeric(col []float64, enc uint8, size, bw int, dict []float64, mn float64, buf []byte, scratch []uint64) ([]byte, []uint64) {
	out := buf[:size]
	switch enc {
	case v3EncRaw:
		for i, v := range col {
			binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
		}
	case v3EncDelta:
		if cap(scratch) < len(col) {
			scratch = make([]uint64, len(col))
		}
		vals := scratch[:len(col)]
		for i, v := range col {
			vals[i] = uint64(v - mn)
		}
		for i := 1; i < size; i++ {
			out[i] = 0
		}
		out[0] = byte(bw)
		packBits(out[1:], vals, bw)
	case v3EncFOR:
		base := int64(mn)
		binary.LittleEndian.PutUint64(out, uint64(base))
		out[8] = byte(bw)
		if cap(scratch) < len(col) {
			scratch = make([]uint64, len(col))
		}
		vals := scratch[:len(col)]
		for i, v := range col {
			vals[i] = uint64(int64(v) - base)
		}
		for i := 9; i < size; i++ {
			out[i] = 0
		}
		packBits(out[9:], vals, bw)
	case v3EncRLE:
		runs := 0
		for i := 0; i < len(col); {
			b := math.Float64bits(col[i])
			j := i + 1
			for j < len(col) && math.Float64bits(col[j]) == b {
				j++
			}
			rec := out[4+v3RLERunSize*runs:]
			binary.LittleEndian.PutUint32(rec, uint32(j))
			binary.LittleEndian.PutUint64(rec[4:], b)
			runs++
			i = j
		}
		binary.LittleEndian.PutUint32(out, uint32(runs))
	case v3EncDict:
		binary.LittleEndian.PutUint16(out, uint16(len(dict)))
		idxOf := make(map[uint64]uint64, len(dict))
		for i, v := range dict {
			binary.LittleEndian.PutUint64(out[2+8*i:], math.Float64bits(v))
			idxOf[math.Float64bits(v)] = uint64(i)
		}
		bw := bits.Len(uint(len(dict) - 1))
		out[2+8*len(dict)] = byte(bw)
		if cap(scratch) < len(col) {
			scratch = make([]uint64, len(col))
		}
		vals := scratch[:len(col)]
		for i, v := range col {
			vals[i] = idxOf[math.Float64bits(v)]
		}
		packed := out[2+8*len(dict)+1:]
		for i := range packed {
			packed[i] = 0
		}
		packBits(packed, vals, bw)
	}
	return out, scratch
}

// flushGroupV3 encodes and writes the pending block group's columns and
// appends their directory entries.
func (dw *DiskWriter) flushGroupV3() error {
	g := dw.pending
	if g == 0 {
		return nil
	}
	if dw.encodeBuf == nil {
		dw.encodeBuf = make([]byte, 8*dw.groupRows)
	}
	var entry [v3NumEntrySize]byte
	for _, col := range dw.colNums {
		mn, mx := v3MinMax(col)
		enc, size, bw, dict := v3PlanNumeric(col, mn, mx)
		var payload []byte
		payload, dw.v3Scratch = v3EncodeNumeric(col, enc, size, bw, dict, mn, dw.encodeBuf, dw.v3Scratch)
		if _, err := dw.w.Write(payload); err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(entry[0:], uint64(dw.off))
		binary.LittleEndian.PutUint32(entry[8:], uint32(size))
		entry[12] = enc
		binary.LittleEndian.PutUint64(entry[13:], math.Float64bits(mn))
		binary.LittleEndian.PutUint64(entry[21:], math.Float64bits(mx))
		dw.v3Dir = append(dw.v3Dir, entry[:v3NumEntrySize]...)
		dw.off += int64(size)
	}
	for _, col := range dw.colBools {
		if _, err := dw.w.Write(col); err != nil {
			return err
		}
		trueCount := 0
		for _, b := range col {
			trueCount += bits.OnesCount8(b)
		}
		binary.LittleEndian.PutUint64(entry[0:], uint64(dw.off))
		binary.LittleEndian.PutUint32(entry[8:], uint32(len(col)))
		entry[12] = v3EncBitmap
		binary.LittleEndian.PutUint32(entry[13:], uint32(trueCount))
		dw.v3Dir = append(dw.v3Dir, entry[:v3BoolEntrySize]...)
		dw.off += int64(len(col))
	}
	dw.groupOffs = append(dw.groupOffs, dw.off) // group count tracking only
	for j := range dw.colNums {
		dw.colNums[j] = dw.colNums[j][:0]
	}
	for j := range dw.colBools {
		dw.colBools[j] = dw.colBools[j][:0]
	}
	dw.pending = 0
	return nil
}

// closeV3 flushes the tail group, writes the block directory, and
// patches numRows, numGroups, and dirOff into the header.
func (dw *DiskWriter) closeV3() error {
	fail := func(err error) error {
		dw.abort()
		return err
	}
	if err := dw.flushGroupV3(); err != nil {
		return fail(err)
	}
	dirOff := dw.off
	if _, err := dw.w.Write(dw.v3Dir); err != nil {
		return fail(err)
	}
	if err := dw.w.Flush(); err != nil {
		return fail(err)
	}
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], dw.rows)
	if _, err := dw.f.WriteAt(u64[:], dw.rowsOff); err != nil {
		return fail(err)
	}
	var tailer [12]byte
	binary.LittleEndian.PutUint32(tailer[0:], uint32(len(dw.groupOffs)))
	binary.LittleEndian.PutUint64(tailer[4:], uint64(dirOff))
	if _, err := dw.f.WriteAt(tailer[:], dw.rowsOff+8+4); err != nil {
		return fail(err)
	}
	return dw.commit()
}

// ---------------------------------------------------------------------
// Reader.

// openV3Meta parses and validates the v3 header tail and block
// directory. Like openV2Meta, every declared quantity is cross-checked
// before any group-sized allocation: block bounds must sit inside the
// data region, encodings must be legal for the column kind, zone maps
// must be coherent (min ≤ max or the all-NaN marker; trueCount within
// the group) — so a hostile directory fails at open with a clear error.
// Per-block payload corruption is detected at decode time.
func (dr *DiskRelation) openV3Meta(f *os.File, r *bufio.Reader) error {
	var tail [16]byte
	if _, err := metaReadFull(r, tail[:]); err != nil {
		return fmt.Errorf("relation: %s: reading v3 header: %w", dr.path, err)
	}
	dr.groupRows = int(binary.LittleEndian.Uint32(tail[0:]))
	numGroups := int(binary.LittleEndian.Uint32(tail[4:]))
	dirOff := int64(binary.LittleEndian.Uint64(tail[8:]))
	dr.dataOff += 16
	if dr.groupRows < 1 || dr.groupRows > maxGroupRows {
		return fmt.Errorf("relation: %s: group size %d rows out of [1, %d]", dr.path, dr.groupRows, maxGroupRows)
	}
	wantGroups := (dr.numRows + dr.groupRows - 1) / dr.groupRows
	if numGroups != wantGroups {
		return fmt.Errorf("relation: %s: directory declares %d block groups, %d rows of %d need %d",
			dr.path, numGroups, dr.numRows, dr.groupRows, wantGroups)
	}
	if dirOff < dr.dataOff {
		return fmt.Errorf("relation: %s: directory offset %d inside header (data starts at %d)", dr.path, dirOff, dr.dataOff)
	}
	st, err := f.Stat()
	if err != nil {
		return err
	}
	entrySize := v3GroupEntrySize(dr.nums, dr.bools)
	dirBytes := int64(numGroups) * int64(entrySize)
	if dirOff+dirBytes > st.Size() {
		return fmt.Errorf("relation: %s truncated: %d bytes, directory needs [%d, %d)",
			dr.path, st.Size(), dirOff, dirOff+dirBytes)
	}
	dir := make([]byte, dirBytes)
	if _, err := metaReadAt(f, dir, dirOff); err != nil {
		return fmt.Errorf("relation: %s: reading block directory: %w", dr.path, err)
	}
	dr.v3Blocks = make([]v3Block, numGroups*(dr.nums+dr.bools))
	dr.groupOffs = make([]int64, numGroups)
	pos := 0
	for g := 0; g < numGroups; g++ {
		gRows := dr.groupRows
		if g == numGroups-1 {
			gRows = dr.numRows - (numGroups-1)*dr.groupRows
		}
		for p := 0; p < dr.nums; p++ {
			blk := v3Block{
				off:    int64(binary.LittleEndian.Uint64(dir[pos:])),
				encLen: int(binary.LittleEndian.Uint32(dir[pos+8:])),
				enc:    dir[pos+12],
				min:    math.Float64frombits(binary.LittleEndian.Uint64(dir[pos+13:])),
				max:    math.Float64frombits(binary.LittleEndian.Uint64(dir[pos+21:])),
			}
			pos += v3NumEntrySize
			switch blk.enc {
			case v3EncRaw, v3EncDelta, v3EncDict, v3EncRLE, v3EncFOR:
			default:
				return fmt.Errorf("relation: %s: group %d column %d: unknown numeric encoding %d", dr.path, g, p, blk.enc)
			}
			if blk.encLen < 0 || blk.off < dr.dataOff || blk.off+int64(blk.encLen) > dirOff {
				return fmt.Errorf("relation: %s: group %d column %d: block [%d, %d) outside data region [%d, %d)",
					dr.path, g, p, blk.off, blk.off+int64(blk.encLen), dr.dataOff, dirOff)
			}
			// Zone-map coherence: min ≤ max, or the all-NaN marker
			// (+Inf, −Inf). A NaN bound fails both tests and is rejected
			// — an inverted or poisoned zone map could otherwise skip
			// blocks that DO contain matching rows, a silent miscount.
			if !(blk.min <= blk.max) && !(math.IsInf(blk.min, 1) && math.IsInf(blk.max, -1)) {
				return fmt.Errorf("relation: %s: group %d column %d: inverted zone map [%v, %v]",
					dr.path, g, p, blk.min, blk.max)
			}
			dr.v3Blocks[g*(dr.nums+dr.bools)+p] = blk
		}
		for q := 0; q < dr.bools; q++ {
			blk := v3Block{
				off:     int64(binary.LittleEndian.Uint64(dir[pos:])),
				encLen:  int(binary.LittleEndian.Uint32(dir[pos+8:])),
				enc:     dir[pos+12],
				trueCnt: int(binary.LittleEndian.Uint32(dir[pos+13:])),
			}
			pos += v3BoolEntrySize
			if blk.enc != v3EncBitmap {
				return fmt.Errorf("relation: %s: group %d bool column %d: unknown encoding %d", dr.path, g, q, blk.enc)
			}
			if blk.encLen != (gRows+7)/8 {
				return fmt.Errorf("relation: %s: group %d bool column %d: %d payload bytes, %d rows need %d",
					dr.path, g, q, blk.encLen, gRows, (gRows+7)/8)
			}
			if blk.off < dr.dataOff || blk.off+int64(blk.encLen) > dirOff {
				return fmt.Errorf("relation: %s: group %d bool column %d: block [%d, %d) outside data region [%d, %d)",
					dr.path, g, q, blk.off, blk.off+int64(blk.encLen), dr.dataOff, dirOff)
			}
			if blk.trueCnt < 0 || blk.trueCnt > gRows {
				return fmt.Errorf("relation: %s: group %d bool column %d: trueCount %d of %d rows",
					dr.path, g, q, blk.trueCnt, gRows)
			}
			dr.v3Blocks[g*(dr.nums+dr.bools)+dr.nums+q] = blk
		}
		dr.groupOffs[g] = dr.v3Blocks[g*(dr.nums+dr.bools)].off
	}
	return nil
}

// v3NumBlock returns the directory entry of group g's numeric column at
// dense position p.
func (dr *DiskRelation) v3NumBlock(g, p int) *v3Block {
	return &dr.v3Blocks[g*(dr.nums+dr.bools)+p]
}

// v3BoolBlock returns the directory entry of group g's Boolean column
// at dense position q.
func (dr *DiskRelation) v3BoolBlock(g, q int) *v3Block {
	return &dr.v3Blocks[g*(dr.nums+dr.bools)+dr.nums+q]
}

// v3DecodeNumeric decodes one numeric block payload into dst[:rows],
// validating the payload's shape and every dictionary index against
// the directory entry — hostile block bytes must produce an error,
// never a panic or an out-of-range read.
func v3DecodeNumeric(blk *v3Block, data []byte, rows int, dst []float64, scratch *[]uint64) error {
	switch blk.enc {
	case v3EncRaw:
		if len(data) != 8*rows {
			return fmt.Errorf("raw block holds %d bytes, %d rows need %d", len(data), rows, 8*rows)
		}
		for i := 0; i < rows; i++ {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
		}
	case v3EncDelta:
		if len(data) < 1 {
			return fmt.Errorf("empty delta block")
		}
		bw := int(data[0])
		if bw > 64 {
			return fmt.Errorf("delta bit width %d overflows 64", bw)
		}
		if len(data) != 1+(rows*bw+7)/8 {
			return fmt.Errorf("delta block holds %d bytes, %d rows of %d bits need %d", len(data), rows, bw, 1+(rows*bw+7)/8)
		}
		if math.IsNaN(blk.min) || math.IsInf(blk.min, 0) {
			return fmt.Errorf("delta block anchored at non-finite minimum %v", blk.min)
		}
		if cap(*scratch) < rows {
			*scratch = make([]uint64, rows)
		}
		vals := (*scratch)[:rows]
		unpackBits(data[1:], bw, rows, vals)
		mn := blk.min
		for i, d := range vals {
			dst[i] = mn + float64(d)
		}
	case v3EncDict:
		if len(data) < 3 {
			return fmt.Errorf("dict block holds %d bytes", len(data))
		}
		count := int(binary.LittleEndian.Uint16(data))
		if count < 1 || count > v3MaxDict {
			return fmt.Errorf("dict size %d out of [1, %d]", count, v3MaxDict)
		}
		head := 2 + 8*count + 1
		if len(data) < head {
			return fmt.Errorf("dict block holds %d bytes, dictionary of %d needs %d", len(data), count, head)
		}
		bw := int(data[2+8*count])
		if bw > v3MaxDictBits {
			return fmt.Errorf("dict index bit width %d overflows %d", bw, v3MaxDictBits)
		}
		if len(data) != head+(rows*bw+7)/8 {
			return fmt.Errorf("dict block holds %d bytes, %d rows of %d bits need %d", len(data), rows, bw, head+(rows*bw+7)/8)
		}
		var dict [v3MaxDict]float64
		for i := 0; i < count; i++ {
			dict[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[2+8*i:]))
		}
		if cap(*scratch) < rows {
			*scratch = make([]uint64, rows)
		}
		vals := (*scratch)[:rows]
		unpackBits(data[head:], bw, rows, vals)
		bad := uint64(0)
		for _, ix := range vals {
			if ix >= uint64(count) {
				bad = 1
			}
		}
		if bad != 0 {
			return fmt.Errorf("dict index out of range (dictionary of %d)", count)
		}
		for i, ix := range vals {
			dst[i] = dict[ix]
		}
	case v3EncRLE:
		if len(data) < 4 {
			return fmt.Errorf("RLE block holds %d bytes", len(data))
		}
		runs := int(binary.LittleEndian.Uint32(data))
		if runs < 1 || runs > rows {
			return fmt.Errorf("RLE run count %d out of [1, %d]", runs, rows)
		}
		if len(data) != 4+v3RLERunSize*runs {
			return fmt.Errorf("RLE block holds %d bytes, %d runs need %d", len(data), runs, 4+v3RLERunSize*runs)
		}
		pos := 0
		for k := 0; k < runs; k++ {
			rec := data[4+v3RLERunSize*k:]
			end := int(binary.LittleEndian.Uint32(rec))
			if end <= pos || end > rows {
				return fmt.Errorf("RLE run %d ends at row %d (after %d, block of %d)", k, end, pos, rows)
			}
			v := math.Float64frombits(binary.LittleEndian.Uint64(rec[4:]))
			for ; pos < end; pos++ {
				dst[pos] = v
			}
		}
		if pos != rows {
			return fmt.Errorf("RLE runs cover %d of %d rows", pos, rows)
		}
	case v3EncFOR:
		if len(data) < 9 {
			return fmt.Errorf("FOR block holds %d bytes", len(data))
		}
		base := int64(binary.LittleEndian.Uint64(data))
		bw := int(data[8])
		if bw > 63 {
			return fmt.Errorf("FOR bit width %d overflows 63", bw)
		}
		if len(data) != 9+(rows*bw+7)/8 {
			return fmt.Errorf("FOR block holds %d bytes, %d rows of %d bits need %d", len(data), rows, bw, 9+(rows*bw+7)/8)
		}
		if cap(*scratch) < rows {
			*scratch = make([]uint64, rows)
		}
		vals := (*scratch)[:rows]
		unpackBits(data[9:], bw, rows, vals)
		for i, d := range vals {
			// bw ≤ 63 keeps int64(d) non-negative, so overflow of the
			// signed sum shows as wrap-around below base.
			v := base + int64(d)
			if v < base {
				return fmt.Errorf("FOR value overflows int64 (base %d + delta %d)", base, d)
			}
			dst[i] = float64(v)
		}
	default:
		return fmt.Errorf("unknown numeric encoding %d", blk.enc)
	}
	return nil
}

// v3DecodeBool decodes one bitmap block payload into dst[:rows].
func v3DecodeBool(blk *v3Block, data []byte, rows int, dst []bool) error {
	if blk.enc != v3EncBitmap {
		return fmt.Errorf("unknown boolean encoding %d", blk.enc)
	}
	if len(data) != (rows+7)/8 {
		return fmt.Errorf("bitmap block holds %d bytes, %d rows need %d", len(data), rows, (rows+7)/8)
	}
	for i := 0; i < rows; i++ {
		dst[i] = data[i>>3]&(1<<uint(i&7)) != 0
	}
	return nil
}

// v3GroupPruned reports whether the zone maps prove that NO row of
// group g can satisfy pred: some Boolean conjunct's block has the wrong
// constant population, or some range conjunct lies entirely outside a
// numeric block's [min, max]. NaN rows never match a range, so the
// all-NaN (+Inf, −Inf) marker prunes every range conjunct.
func (dr *DiskRelation) v3GroupPruned(g int, pred *Predicate) bool {
	gRows := dr.rowsInGroup(g)
	for _, bp := range pred.Bools {
		blk := dr.v3BoolBlock(g, dr.boolPos[bp.Attr])
		if bp.Want && blk.trueCnt == 0 {
			return true
		}
		if !bp.Want && blk.trueCnt == gRows {
			return true
		}
	}
	for _, rp := range pred.Ranges {
		blk := dr.v3NumBlock(g, dr.numPos[rp.Attr])
		if blk.min > rp.Hi || blk.max < rp.Lo {
			return true
		}
	}
	return false
}

// v3Fetch is one block group's compressed column payloads (or a
// zone-skip marker), produced by the prefetcher and consumed by the
// decode loop. buf holds the selected numeric blocks back to back in
// selection order, then the selected Boolean blocks.
type v3Fetch struct {
	group int
	first int // first delivered row within the group
	rows  int // delivered rows
	skip  bool
	buf   []byte
	err   error
}

// v3DecodeState is the consumer-side scratch of one v3 scan: fully
// decoded selected columns of the current group, reused group to group.
type v3DecodeState struct {
	nums    [][]float64
	bools   [][]bool
	scratch []uint64
}

// v3BufPool recycles compressed-group buffers across scans.
var v3BufPool sync.Pool

func v3GetBuf(size int) []byte {
	if b, ok := v3BufPool.Get().([]byte); ok && cap(b) >= size {
		return b[:size]
	}
	return make([]byte, size)
}

// scanRangeV3 streams rows [start, end) of a v3 file through fn with
// the same overlapped read-ahead pipeline as v2 (see scanRangeV2): the
// prefetcher reads group N+1's compressed column blocks while this
// goroutine decodes group N and runs fn. When pred is non-nil, groups
// whose zone maps prove no row can match are never read: the
// prefetcher sends a skip marker, the consumer reports the window's
// rows through skip, and BytesRead grows by nothing.
func (dr *DiskRelation) scanRangeV3(start, end int, cols ColumnSet, pred *Predicate, skipFn func(rows int) error, fn func(*Batch) error) error {
	f, err := os.Open(dr.path)
	if err != nil {
		return err
	}
	defer f.Close()

	numSel := make([]int, len(cols.Numeric)) // dense numeric positions
	for k, i := range cols.Numeric {
		numSel[k] = dr.numPos[i]
	}
	boolSel := make([]int, len(cols.Bool)) // dense boolean positions
	for k, i := range cols.Bool {
		boolSel[k] = dr.boolPos[i]
	}
	if pred != nil && pred.Empty() {
		pred = nil
	}

	g0, g1 := start/dr.groupRows, (end-1)/dr.groupRows
	ready := make(chan *v3Fetch, v2ReadAheadGroups)
	free := make(chan []byte, v2ReadAheadGroups)
	for i := 0; i < v2ReadAheadGroups; i++ {
		free <- nil // sized lazily by the prefetcher
	}
	stop := make(chan struct{})
	prefDone := make(chan struct{})
	defer func() {
		close(stop)
		<-prefDone
		for {
			select {
			case fg, ok := <-ready:
				if ok && fg.buf != nil {
					v3BufPool.Put(fg.buf)
				}
				if !ok {
					ready = nil
				}
			case buf := <-free:
				if buf != nil {
					v3BufPool.Put(buf)
				}
			default:
				return
			}
		}
	}()

	fill := func(g int, buf []byte) *v3Fetch {
		gRows := dr.rowsInGroup(g)
		gStart := g * dr.groupRows
		first, last := 0, gRows
		if start > gStart {
			first = start - gStart
		}
		if end < gStart+gRows {
			last = end - gStart
		}
		fg := &v3Fetch{group: g, first: first, rows: last - first}
		if pred != nil && dr.v3GroupPruned(g, pred) {
			fg.skip = true
			fg.buf = buf // hand the free-list token back through the consumer
			return fg
		}
		total := 0
		for _, p := range numSel {
			total += dr.v3NumBlock(g, p).encLen
		}
		for _, q := range boolSel {
			total += dr.v3BoolBlock(g, q).encLen
		}
		if cap(buf) < total {
			buf = v3GetBuf(total)
		}
		buf = buf[:total]
		fg.buf = buf
		pos := 0
		for _, p := range numSel {
			blk := dr.v3NumBlock(g, p)
			if _, err := uncountedReadAt(f, buf[pos:pos+blk.encLen], blk.off); err != nil {
				fg.err = fmt.Errorf("relation: reading column block of group %d of %s: %w", g, dr.path, err)
				return fg
			}
			pos += blk.encLen
		}
		for _, q := range boolSel {
			blk := dr.v3BoolBlock(g, q)
			if _, err := uncountedReadAt(f, buf[pos:pos+blk.encLen], blk.off); err != nil {
				fg.err = fmt.Errorf("relation: reading boolean block of group %d of %s: %w", g, dr.path, err)
				return fg
			}
			pos += blk.encLen
		}
		return fg
	}

	go func() {
		defer close(prefDone)
		defer close(ready)
		for g := g0; g <= g1; g++ {
			var buf []byte
			select {
			case buf = <-free:
			case <-stop:
				return
			}
			fg := fill(g, buf)
			select {
			case ready <- fg:
			case <-stop:
				return
			}
			if fg.err != nil {
				return
			}
		}
	}()

	dec := &v3DecodeState{
		nums:  make([][]float64, len(numSel)),
		bools: make([][]bool, len(boolSel)),
	}
	for k := range dec.nums {
		dec.nums[k] = make([]float64, dr.groupRows)
	}
	for k := range dec.bools {
		dec.bools[k] = make([]bool, dr.groupRows)
	}
	batch := &Batch{
		Numeric: make([][]float64, len(cols.Numeric)),
		Bool:    make([][]bool, len(cols.Bool)),
	}

	for fg := range ready {
		if fg.err != nil {
			v3BufPool.Put(fg.buf)
			return fg.err
		}
		if fg.skip {
			select {
			case free <- fg.buf:
			default:
				if fg.buf != nil {
					v3BufPool.Put(fg.buf)
				}
			}
			if err := skipFn(fg.rows); err != nil {
				return err
			}
			continue
		}
		// Count physical (post-compression) bytes at delivery, not inside
		// the prefetcher — same deterministic-cost-model reasoning as v2.
		dr.bytesRead.Add(int64(len(fg.buf)))
		gRows := dr.rowsInGroup(fg.group)
		pos := 0
		for k, p := range numSel {
			blk := dr.v3NumBlock(fg.group, p)
			if err := v3DecodeNumeric(blk, fg.buf[pos:pos+blk.encLen], gRows, dec.nums[k], &dec.scratch); err != nil {
				v3BufPool.Put(fg.buf)
				return fmt.Errorf("relation: group %d column %d of %s: %w", fg.group, cols.Numeric[k], dr.path, err)
			}
			pos += blk.encLen
		}
		for k, q := range boolSel {
			blk := dr.v3BoolBlock(fg.group, q)
			if err := v3DecodeBool(blk, fg.buf[pos:pos+blk.encLen], gRows, dec.bools[k]); err != nil {
				v3BufPool.Put(fg.buf)
				return fmt.Errorf("relation: group %d bool column %d of %s: %w", fg.group, cols.Bool[k], dr.path, err)
			}
			pos += blk.encLen
		}
		for r0 := 0; r0 < fg.rows; r0 += DefaultBatchSize {
			n := DefaultBatchSize
			if r0+n > fg.rows {
				n = fg.rows - r0
			}
			lo := fg.first + r0
			for k := range dec.nums {
				batch.Numeric[k] = dec.nums[k][lo : lo+n]
			}
			for k := range dec.bools {
				batch.Bool[k] = dec.bools[k][lo : lo+n]
			}
			batch.Len = n
			if err := fn(batch); err != nil {
				v3BufPool.Put(fg.buf)
				return err
			}
		}
		select {
		case free <- fg.buf:
		default:
			v3BufPool.Put(fg.buf)
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Point reads.

// v3PointValue serves one row of one numeric column without decoding
// the block: the value's location is computed from the directory entry
// — a direct 8-byte read for raw blocks, O(1) bit arithmetic into the
// packed payload for delta, dict, and FOR blocks, and an O(log runs)
// binary search of the run directory for RLE blocks. get must fill its
// buffer from the given file offset.
func (dr *DiskRelation) v3PointValue(p, row int, get func(off int64, dst []byte) error) (float64, error) {
	g := row / dr.groupRows
	r := row - g*dr.groupRows
	gRows := dr.rowsInGroup(g)
	blk := dr.v3NumBlock(g, p)
	var buf [16]byte
	switch blk.enc {
	case v3EncRaw:
		if blk.encLen != 8*gRows {
			return 0, fmt.Errorf("relation: %s: raw block holds %d bytes, %d rows need %d", dr.path, blk.encLen, gRows, 8*gRows)
		}
		if err := get(blk.off+int64(8*r), buf[:8]); err != nil {
			return 0, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(buf[:8])), nil
	case v3EncDelta:
		if err := get(blk.off, buf[:1]); err != nil {
			return 0, err
		}
		bw := int(buf[0])
		if bw > 64 || blk.encLen != 1+(gRows*bw+7)/8 {
			return 0, fmt.Errorf("relation: %s: malformed delta block (width %d, %d bytes, %d rows)", dr.path, bw, blk.encLen, gRows)
		}
		if math.IsNaN(blk.min) || math.IsInf(blk.min, 0) {
			return 0, fmt.Errorf("relation: %s: delta block anchored at non-finite minimum %v", dr.path, blk.min)
		}
		d, err := dr.v3PointBits(blk.off+1, blk.encLen-1, r, bw, get)
		if err != nil {
			return 0, err
		}
		return blk.min + float64(d), nil
	case v3EncDict:
		if err := get(blk.off, buf[:2]); err != nil {
			return 0, err
		}
		count := int(binary.LittleEndian.Uint16(buf[:2]))
		head := 2 + 8*count + 1
		if count < 1 || count > v3MaxDict || blk.encLen < head {
			return 0, fmt.Errorf("relation: %s: malformed dict block (dictionary of %d, %d bytes)", dr.path, count, blk.encLen)
		}
		if err := get(blk.off+int64(2+8*count), buf[:1]); err != nil {
			return 0, err
		}
		bw := int(buf[0])
		if bw > v3MaxDictBits || blk.encLen != head+(gRows*bw+7)/8 {
			return 0, fmt.Errorf("relation: %s: malformed dict block (width %d, %d bytes, %d rows)", dr.path, bw, blk.encLen, gRows)
		}
		ix, err := dr.v3PointBits(blk.off+int64(head), blk.encLen-head, r, bw, get)
		if err != nil {
			return 0, err
		}
		if ix >= uint64(count) {
			return 0, fmt.Errorf("relation: %s: dict index %d out of dictionary of %d", dr.path, ix, count)
		}
		if err := get(blk.off+int64(2+8*int(ix)), buf[:8]); err != nil {
			return 0, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(buf[:8])), nil
	case v3EncRLE:
		if err := get(blk.off, buf[:4]); err != nil {
			return 0, err
		}
		runs := int(binary.LittleEndian.Uint32(buf[:4]))
		if runs < 1 || runs > gRows || blk.encLen != 4+v3RLERunSize*runs {
			return 0, fmt.Errorf("relation: %s: malformed RLE block (%d runs, %d bytes, %d rows)", dr.path, runs, blk.encLen, gRows)
		}
		// Binary search the run directory for the first run whose
		// exclusive end exceeds r — O(log runs) tiny fetches instead of a
		// block decode.
		readEnd := func(k int) (int, error) {
			if err := get(blk.off+int64(4+v3RLERunSize*k), buf[:4]); err != nil {
				return 0, err
			}
			return int(binary.LittleEndian.Uint32(buf[:4])), nil
		}
		lo, hi := 0, runs-1
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			end, err := readEnd(mid)
			if err != nil {
				return 0, err
			}
			if end <= r {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		// A corrupt (non-monotonic) run directory can misdirect the
		// search; re-check the landed run actually covers row r.
		if end, err := readEnd(lo); err != nil {
			return 0, err
		} else if end <= r || end > gRows {
			return 0, fmt.Errorf("relation: %s: RLE run directory does not cover row %d", dr.path, r)
		}
		if err := get(blk.off+int64(4+v3RLERunSize*lo+4), buf[:8]); err != nil {
			return 0, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(buf[:8])), nil
	case v3EncFOR:
		if err := get(blk.off, buf[:9]); err != nil {
			return 0, err
		}
		base := int64(binary.LittleEndian.Uint64(buf[:8]))
		bw := int(buf[8])
		if bw > 63 || blk.encLen != 9+(gRows*bw+7)/8 {
			return 0, fmt.Errorf("relation: %s: malformed FOR block (width %d, %d bytes, %d rows)", dr.path, bw, blk.encLen, gRows)
		}
		d, err := dr.v3PointBits(blk.off+9, blk.encLen-9, r, bw, get)
		if err != nil {
			return 0, err
		}
		v := base + int64(d)
		if v < base {
			return 0, fmt.Errorf("relation: %s: FOR value overflows int64 (base %d + delta %d)", dr.path, base, d)
		}
		return float64(v), nil
	default:
		return 0, fmt.Errorf("relation: %s: unknown numeric encoding %d", dr.path, blk.enc)
	}
}

// v3PointBits extracts the r-th bw-bit value from a packed payload of
// payloadLen bytes starting at file offset payloadOff.
func (dr *DiskRelation) v3PointBits(payloadOff int64, payloadLen, r, bw int, get func(off int64, dst []byte) error) (uint64, error) {
	if bw == 0 {
		return 0, nil
	}
	bit := r * bw
	byteOff := bit >> 3
	shift := uint(bit & 7)
	span := int(shift+uint(bw)+7) / 8
	if byteOff+span > payloadLen {
		return 0, fmt.Errorf("relation: %s: packed value beyond block payload", dr.path)
	}
	var buf [9]byte
	if err := get(payloadOff+int64(byteOff), buf[:span]); err != nil {
		return 0, err
	}
	var w uint64
	for j := 0; j < span; j++ {
		if j == 0 {
			w = uint64(buf[0]) >> shift
		} else {
			w |= uint64(buf[j]) << (uint(8*j) - shift)
		}
	}
	return w & (^uint64(0) >> uint(64-bw)), nil
}
