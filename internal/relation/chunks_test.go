package relation

import (
	"path/filepath"
	"reflect"
	"testing"
)

// chunkFixtureV3 writes a clustered v3 file: n rows of V = i over
// groupRows-row groups, so zone maps partition the value space and a
// narrow range predicate prunes all but one group.
func chunkFixtureV3(t *testing.T, n, groupRows int) *DiskRelation {
	t.Helper()
	schema := Schema{{Name: "V", Kind: Numeric}, {Name: "B", Kind: Boolean}}
	path := filepath.Join(t.TempDir(), "chunks.opr")
	dw, err := NewDiskWriterV3(path, schema, groupRows)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := dw.Append([]float64{float64(i)}, []bool{i%2 == 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	dr, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dr.Close() })
	return dr
}

// TestScanCostsV3Pruning pins the cost model: atoms are block groups,
// zone-refuted groups cost 0, and surviving groups charge their
// encoded payload bytes for the selected columns.
func TestScanCostsV3Pruning(t *testing.T) {
	n, groupRows := 5120, 512
	dr := chunkFixtureV3(t, n, groupRows)
	cols := ColumnSet{Numeric: []int{0}}
	pred := &Predicate{Ranges: []RangePredicate{{Attr: 0, Lo: 600, Hi: 700}}}
	cuts, costs := dr.ScanCosts(cols, pred)
	if len(cuts) != 11 || len(costs) != 10 {
		t.Fatalf("got %d cuts, %d costs; want 11, 10", len(cuts), len(costs))
	}
	for g, cut := range cuts {
		if want := g * groupRows; cut != want {
			t.Errorf("cut %d = %d, want %d", g, cut, want)
		}
	}
	for g, c := range costs {
		survives := g == 1 // rows [512, 1024) overlap [600, 700]
		if survives && c <= 0 {
			t.Errorf("surviving group %d priced at %d", g, c)
		}
		if !survives && c != 0 {
			t.Errorf("pruned group %d priced at %d, want 0", g, c)
		}
	}
	// Without a predicate every group costs its physical bytes.
	_, open := dr.ScanCosts(cols, nil)
	for g, c := range open {
		if c <= 0 {
			t.Errorf("unpredicated group %d priced at %d", g, c)
		}
	}
}

// TestPlanScanChunksContract pins the planner invariants: chunks are
// contiguous, non-empty, cover every row, and the plan is a
// deterministic function of its inputs. Under a selective predicate
// the pruned region collapses into wide cheap chunks while the
// surviving group stays in a chunk of its own cost class.
func TestPlanScanChunksContract(t *testing.T) {
	n := 5120
	dr := chunkFixtureV3(t, n, 512)
	cols := ColumnSet{Numeric: []int{0}}
	pred := &Predicate{Ranges: []RangePredicate{{Attr: 0, Lo: 600, Hi: 700}}}
	for _, pes := range []int{1, 2, 4, 8} {
		chunks := PlanScanChunks(dr, pes, cols, pred)
		if len(chunks) == 0 {
			t.Fatalf("pes=%d: no chunks", pes)
		}
		at := 0
		for i, c := range chunks {
			if c.Start != at || c.End <= c.Start {
				t.Fatalf("pes=%d: chunk %d = [%d,%d) after row %d: not contiguous/non-empty", pes, i, c.Start, c.End, at)
			}
			at = c.End
		}
		if at != n {
			t.Fatalf("pes=%d: chunks cover %d rows, want %d", pes, at, n)
		}
		if again := PlanScanChunks(dr, pes, cols, pred); !reflect.DeepEqual(again, chunks) {
			t.Errorf("pes=%d: plan is not deterministic", pes)
		}
	}
	// Boundaries stay storage-aligned: every interior cut is a group cut.
	for _, c := range PlanScanChunks(dr, 4, cols, pred)[:] {
		if c.End != n && c.End%512 != 0 {
			t.Errorf("chunk end %d not aligned to 512-row groups", c.End)
		}
	}
}

// TestPlanScanChunksPruned pins the scan-free shortcut: maximal runs of
// zone-refuted groups surface as dedicated Pruned chunks with cost 0,
// and the surviving region never hides inside one. With V = i and a
// range predicate on [600, 700], only group 1 of ten survives — the
// plan must be pruned[0,512) + surviving[512,1024) + pruned[1024,5120).
func TestPlanScanChunksPruned(t *testing.T) {
	n := 5120
	dr := chunkFixtureV3(t, n, 512)
	cols := ColumnSet{Numeric: []int{0}}
	pred := &Predicate{Ranges: []RangePredicate{{Attr: 0, Lo: 600, Hi: 700}}}
	chunks := PlanScanChunks(dr, 4, cols, pred)
	if len(chunks) != 3 {
		t.Fatalf("got %d chunks %+v, want 3 (pruned, surviving, pruned)", len(chunks), chunks)
	}
	for i, want := range []struct {
		start, end int
		pruned     bool
	}{{0, 512, true}, {512, 1024, false}, {1024, 5120, true}} {
		c := chunks[i]
		if c.Start != want.start || c.End != want.end || c.Pruned != want.pruned {
			t.Errorf("chunk %d = %+v, want [%d,%d) pruned=%v", i, c, want.start, want.end, want.pruned)
		}
		if c.Pruned && c.Cost != 0 {
			t.Errorf("pruned chunk %d carries cost %d, want 0", i, c.Cost)
		}
		if !c.Pruned && c.Cost <= 0 {
			t.Errorf("surviving chunk %d carries cost %d, want > 0", i, c.Cost)
		}
	}
	// Without a predicate nothing is provably empty: no Pruned chunks.
	for i, c := range PlanScanChunks(dr, 4, cols, nil) {
		if c.Pruned {
			t.Errorf("unpredicated chunk %d marked Pruned: %+v", i, c)
		}
	}
}

// TestPlanScanChunksFallback pins the no-directory path: a v1
// (row-major) file has no atoms to price, so the plan degrades to the
// static AlignedSegments split — the pre-scheduler behavior.
func TestPlanScanChunksFallback(t *testing.T) {
	schema := Schema{{Name: "V", Kind: Numeric}}
	path := filepath.Join(t.TempDir(), "v1.opr")
	dw, err := NewDiskWriter(path, schema)
	if err != nil {
		t.Fatal(err)
	}
	n := 1000
	for i := 0; i < n; i++ {
		if err := dw.Append([]float64{float64(i)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	dr, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer dr.Close()
	pes := 4
	chunks := PlanScanChunks(dr, pes, ColumnSet{Numeric: []int{0}}, nil)
	segs := AlignedSegments(dr, n, pes)
	if len(chunks) != pes {
		t.Fatalf("%d chunks, want %d", len(chunks), pes)
	}
	for p, c := range chunks {
		if c.Start != segs[p] || c.End != segs[p+1] {
			t.Errorf("chunk %d = [%d,%d), want segment [%d,%d)", p, c.Start, c.End, segs[p], segs[p+1])
		}
	}
}

// TestScanCostsSharded pins the sharded concatenation: per-shard atoms
// appear in global row order with translated cuts, and pruning carries
// through each shard's own zone maps.
func TestScanCostsSharded(t *testing.T) {
	dr := chunkFixtureV3(t, 4096, 256)
	manifest := filepath.Join(t.TempDir(), "sharded.oprs")
	if err := ConvertToSharded(dr, manifest, 4, DiskFormatV3); err != nil {
		t.Fatal(err)
	}
	sr, err := OpenSharded(manifest)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	cols := ColumnSet{Numeric: []int{0}}
	pred := &Predicate{Ranges: []RangePredicate{{Attr: 0, Lo: 0, Hi: 100}}}
	cuts, costs := sr.ScanCosts(cols, pred)
	if cuts == nil {
		t.Fatal("sharded v3 relation declined to price its atoms")
	}
	if cuts[0] != 0 || cuts[len(cuts)-1] != sr.NumTuples() {
		t.Fatalf("cuts span [%d,%d], want [0,%d]", cuts[0], cuts[len(cuts)-1], sr.NumTuples())
	}
	for i := 1; i < len(cuts); i++ {
		if cuts[i] <= cuts[i-1] {
			t.Fatalf("cuts not strictly increasing at %d: %v", i, cuts[i-1:i+1])
		}
	}
	var priced int
	for _, c := range costs {
		if c > 0 {
			priced++
		}
	}
	if priced == 0 || priced == len(costs) {
		t.Errorf("%d of %d atoms priced nonzero; the narrow predicate should prune most but not all", priced, len(costs))
	}
	// The planner accepts the sharded model end to end.
	chunks := PlanScanChunks(sr, 4, cols, pred)
	at := 0
	for _, c := range chunks {
		if c.Start != at {
			t.Fatalf("sharded chunks not contiguous at %d", at)
		}
		at = c.End
	}
	if at != sr.NumTuples() {
		t.Fatalf("sharded chunks cover %d of %d rows", at, sr.NumTuples())
	}
}
