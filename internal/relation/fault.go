package relation

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Deterministic storage fault injection. FaultRelation wraps any
// backend — memory, v1/v2/v3 disk, sharded — and injects failures into
// its scan surface so the layers above (prefetchers, shard pipelines,
// the plan executor, the scatter-gather coordinator) can be driven
// through their error paths on demand. Injection is seed-driven and
// deterministic: which scans fail is a pure function of the config and
// each scan's ordinal (a process-wide atomic counter per wrapper), so a
// failing test case replays exactly.
//
// Faults are injected at the consumer boundary — inside the scan
// callback stream, after the configured number of rows has been
// delivered — which exercises BOTH directions at once: the caller sees
// a mid-stream storage error, and the wrapped backend sees a consumer
// error mid-scan (the path that tears down read-ahead prefetchers and
// concurrent shard sub-scans).

// ErrInjected is the sentinel wrapped by every injected fault, so tests
// can assert errors.Is(err, ErrInjected) through any number of layers.
var ErrInjected = errors.New("relation: injected fault")

// FaultConfig selects which scans fail and how. A scan is selected when
// its 1-based ordinal is listed in FailScans, is a multiple of
// FailEvery, or draws below FailProb from the deterministic per-ordinal
// stream seeded by Seed — subject to the MaxFaults budget.
type FaultConfig struct {
	// Seed drives the FailProb stream. Two wrappers with equal configs
	// select the same ordinals.
	Seed int64
	// FailProb is the per-scan failure probability, in [0, 1].
	FailProb float64
	// FailScans lists 1-based scan ordinals that fail.
	FailScans []int
	// FailEvery selects every Nth scan (ordinals N, 2N, …) when > 0.
	FailEvery int
	// FailAfterRows is how many rows a selected scan delivers before the
	// injected error — 0 fails before the first batch, mimicking an open
	// or header read error; a mid-relation value exercises mid-stream
	// teardown.
	FailAfterRows int
	// MaxFaults bounds the total number of injected scan failures
	// (0 = unlimited). Transient-fault tests use it to guarantee that
	// retries eventually see a healthy scan.
	MaxFaults int
	// Stall is slept before a selected scan delivers its fault (or its
	// first batch, when StallOnly is set) — long enough a stall trips
	// per-worker timeouts in the scatter executor.
	Stall time.Duration
	// StallOnly turns selected scans into slow-but-successful ones:
	// they stall, then complete normally without error.
	StallOnly bool
	// ShortBatches caps every delivered batch at this many rows,
	// re-chunking the stream (0 = off). It applies to all scans, not
	// just selected ones, and injects no errors by itself.
	ShortBatches int
	// FailClose makes Close return an injected error (after delegating
	// to the wrapped relation's own Close).
	FailClose bool
}

// FaultRelation wraps a Relation with deterministic fault injection.
// It passes through the full optional storage surface — range scans,
// pruned scans, point reads, alignment and snapping hints, byte
// accounting — delegating to the wrapped value where supported and
// degrading to the neutral behavior where not, so it composes over
// every backend without changing what the planner sees.
type FaultRelation struct {
	inner Relation
	cfg   FaultConfig

	scans    atomic.Int64 // scan ordinal counter
	injected atomic.Int64 // injected scan failures so far
}

// NewFaultRelation wraps rel with the given fault plan.
func NewFaultRelation(rel Relation, cfg FaultConfig) *FaultRelation {
	return &FaultRelation{inner: rel, cfg: cfg}
}

// Inner returns the wrapped relation.
func (fr *FaultRelation) Inner() Relation { return fr.inner }

// Scans returns the number of scans started through the wrapper.
func (fr *FaultRelation) Scans() int64 { return fr.scans.Load() }

// Injected returns the number of scan failures injected so far.
func (fr *FaultRelation) Injected() int64 { return fr.injected.Load() }

// Schema implements Relation.
func (fr *FaultRelation) Schema() Schema { return fr.inner.Schema() }

// NumTuples implements Relation.
func (fr *FaultRelation) NumTuples() int { return fr.inner.NumTuples() }

// hash01 maps (seed, ordinal) to a uniform [0,1) draw via a split-mix
// style mixer — cheap, stateless, and stable across runs.
func hash01(seed, ord int64) float64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(ord)*0xBF58476D1CE4E5B9
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// selects reports whether the scan with the given ordinal is a fault
// candidate (before the MaxFaults budget is applied).
func (fr *FaultRelation) selects(ord int64) bool {
	for _, s := range fr.cfg.FailScans {
		if int64(s) == ord {
			return true
		}
	}
	if fr.cfg.FailEvery > 0 && ord%int64(fr.cfg.FailEvery) == 0 {
		return true
	}
	if fr.cfg.FailProb > 0 && hash01(fr.cfg.Seed, ord) < fr.cfg.FailProb {
		return true
	}
	return false
}

// beginScan assigns the next scan ordinal and charges the fault budget,
// returning the per-scan injector.
func (fr *FaultRelation) beginScan() *FaultScanner {
	ord := fr.scans.Add(1)
	fs := &FaultScanner{cfg: &fr.cfg, ord: ord}
	if fr.selects(ord) && !fr.cfg.StallOnly {
		// Charge the budget with a CAS loop so concurrent scans never
		// overdraw it: exactly MaxFaults failures are injected, then the
		// wrapper goes permanently healthy.
		for {
			n := fr.injected.Load()
			if fr.cfg.MaxFaults > 0 && n >= int64(fr.cfg.MaxFaults) {
				return fs
			}
			if fr.injected.CompareAndSwap(n, n+1) {
				fs.faulty = true
				return fs
			}
		}
	}
	if fr.selects(ord) {
		fs.faulty = true // StallOnly: selected, but will not error
	}
	return fs
}

// FaultScanner injects one scan's faults into a callback stream: it
// stalls, re-chunks batches, and cuts the stream with an injected error
// at the configured row. FaultRelation creates one per scan; tests
// composing custom scan paths can build one with NewFaultScanner and
// drive it directly via Wrap.
type FaultScanner struct {
	cfg    *FaultConfig
	ord    int64
	faulty bool

	rows    int
	stalled bool
	view    Batch // reused sub-batch header for re-chunked delivery
}

// NewFaultScanner returns an injector for one scan under cfg. faulty
// marks the scan as selected for failure (or stalling, under
// StallOnly).
func NewFaultScanner(cfg *FaultConfig, ord int64, faulty bool) *FaultScanner {
	return &FaultScanner{cfg: cfg, ord: ord, faulty: faulty}
}

// errAt builds the injected mid-scan error.
func (fs *FaultScanner) errAt() error {
	return fmt.Errorf("scan %d failed after %d rows: %w", fs.ord, fs.rows, ErrInjected)
}

// stall sleeps the configured stall once per scan.
func (fs *FaultScanner) stall() {
	if fs.cfg.Stall > 0 && !fs.stalled {
		fs.stalled = true
		time.Sleep(fs.cfg.Stall)
	}
}

// budget returns how many more rows the scan may deliver before its
// injected failure, or MaxInt when the scan is healthy.
func (fs *FaultScanner) budget() int {
	if !fs.faulty || fs.cfg.StallOnly {
		return math.MaxInt
	}
	if left := fs.cfg.FailAfterRows - fs.rows; left > 0 {
		return left
	}
	return 0
}

// Wrap decorates a scan callback with the scan's injections. The
// returned callback delivers (possibly re-chunked, possibly truncated)
// batches to fn and returns the injected error at the fault row.
func (fs *FaultScanner) Wrap(fn func(*Batch) error) func(*Batch) error {
	return func(b *Batch) error {
		if fs.faulty {
			fs.stall()
			if fs.budget() == 0 {
				return fs.errAt()
			}
		}
		chunk := b.Len
		if fs.cfg.ShortBatches > 0 && fs.cfg.ShortBatches < chunk {
			chunk = fs.cfg.ShortBatches
		}
		if budget := fs.budget(); budget < chunk {
			chunk = budget
		}
		if chunk == b.Len {
			fs.rows += b.Len
			err := fn(b)
			if err == nil && fs.budget() == 0 {
				err = fs.errAt()
			}
			return err
		}
		// Deliver the batch in sub-views. The view shares the batch's
		// column backing (callbacks must not retain it anyway), so
		// re-chunking allocates nothing per call beyond the first.
		v := &fs.view
		if cap(v.Numeric) < len(b.Numeric) {
			v.Numeric = make([][]float64, len(b.Numeric))
		}
		if cap(v.Bool) < len(b.Bool) {
			v.Bool = make([][]bool, len(b.Bool))
		}
		v.Numeric = v.Numeric[:len(b.Numeric)]
		v.Bool = v.Bool[:len(b.Bool)]
		for off := 0; off < b.Len; {
			n := b.Len - off
			if fs.cfg.ShortBatches > 0 && fs.cfg.ShortBatches < n {
				n = fs.cfg.ShortBatches
			}
			budget := fs.budget()
			if budget == 0 {
				return fs.errAt()
			}
			if budget < n {
				n = budget
			}
			for k := range b.Numeric {
				v.Numeric[k] = b.Numeric[k][off : off+n]
			}
			for k := range b.Bool {
				v.Bool[k] = b.Bool[k][off : off+n]
			}
			v.Len = n
			fs.rows += n
			if err := fn(v); err != nil {
				return err
			}
			off += n
		}
		if fs.budget() == 0 {
			return fs.errAt()
		}
		return nil
	}
}

// finish settles scans whose fault row was never reached because the
// stream ended first (e.g. FailAfterRows beyond the scanned range):
// the scan still fails, so a selected scan never silently succeeds.
func (fs *FaultScanner) finish(err error) error {
	if err != nil {
		return err
	}
	if fs.faulty && !fs.cfg.StallOnly {
		if fs.rows == 0 {
			fs.stall()
		}
		return fs.errAt()
	}
	return nil
}

// Scan implements Relation.
func (fr *FaultRelation) Scan(cols ColumnSet, fn func(*Batch) error) error {
	fs := fr.beginScan()
	if fs.faulty && !fs.cfg.StallOnly && fs.cfg.FailAfterRows <= 0 {
		fs.stall()
		return fs.errAt()
	}
	return fs.finish(fr.inner.Scan(cols, fs.Wrap(fn)))
}

// ScanRange implements RangeScanner by delegation; wrapping a relation
// without range scans yields a clear error rather than a silent full
// scan, since callers gate parallel plans on this interface.
func (fr *FaultRelation) ScanRange(start, end int, cols ColumnSet, fn func(*Batch) error) error {
	rs, ok := fr.inner.(RangeScanner)
	if !ok {
		return fmt.Errorf("relation: %T does not support range scans", fr.inner)
	}
	fs := fr.beginScan()
	if fs.faulty && !fs.cfg.StallOnly && fs.cfg.FailAfterRows <= 0 {
		fs.stall()
		return fs.errAt()
	}
	return fs.finish(rs.ScanRange(start, end, cols, fs.Wrap(fn)))
}

// ScanRangePruned implements PrunedRangeScanner when the wrapped
// relation does, and falls back to the plain range scan otherwise
// (pruning is an optimization, never a filter, so delivering every row
// and never calling skip is correct).
func (fr *FaultRelation) ScanRangePruned(start, end int, cols ColumnSet, pred *Predicate, skip func(rows int) error, fn func(*Batch) error) error {
	prs, ok := fr.inner.(PrunedRangeScanner)
	if !ok {
		return fr.ScanRange(start, end, cols, fn)
	}
	fs := fr.beginScan()
	if fs.faulty && !fs.cfg.StallOnly && fs.cfg.FailAfterRows <= 0 {
		fs.stall()
		return fs.errAt()
	}
	return fs.finish(prs.ScanRangePruned(start, end, cols, pred, skip, fs.Wrap(fn)))
}

// ReadNumericPoints implements NumericPointReader by delegation. Point
// reads are never faulted: the sampling pass must stay deterministic so
// a faulted run's boundaries — and therefore its rules — stay
// comparable to the healthy run's.
func (fr *FaultRelation) ReadNumericPoints(attr int, rows []int, out []float64) error {
	pr, ok := fr.inner.(NumericPointReader)
	if !ok {
		return fmt.Errorf("relation: %T does not support point reads", fr.inner)
	}
	return pr.ReadNumericPoints(attr, rows, out)
}

// ScanAlignment implements ScanAligner by delegation (1 — no preferred
// alignment — when the wrapped relation declares none).
func (fr *FaultRelation) ScanAlignment() int {
	if a, ok := fr.inner.(ScanAligner); ok {
		return a.ScanAlignment()
	}
	return 1
}

// SnapSegment implements SegmentSnapper by delegation (identity when
// the wrapped relation has no preferred cuts).
func (fr *FaultRelation) SnapSegment(cut int) int {
	if sn, ok := fr.inner.(SegmentSnapper); ok {
		return sn.SnapSegment(cut)
	}
	return cut
}

// BytesRead delegates to the wrapped relation (0 for backends without
// byte accounting).
func (fr *FaultRelation) BytesRead() int64 {
	type reader interface{ BytesRead() int64 }
	if br, ok := fr.inner.(reader); ok {
		return br.BytesRead()
	}
	return 0
}

// ResetBytesRead delegates to the wrapped relation when supported.
func (fr *FaultRelation) ResetBytesRead() {
	type resetter interface{ ResetBytesRead() }
	if rr, ok := fr.inner.(resetter); ok {
		rr.ResetBytesRead()
	}
}

// Close delegates to the wrapped relation when it has a Close, then
// injects the configured Close error.
func (fr *FaultRelation) Close() error {
	var err error
	type closer interface{ Close() error }
	if c, ok := fr.inner.(closer); ok {
		err = c.Close()
	}
	if fr.cfg.FailClose {
		closeErr := fmt.Errorf("close failed: %w", ErrInjected)
		if err == nil {
			err = closeErr
		}
	}
	return err
}
