package relation

import (
	"testing"
)

func bankSchema() Schema {
	return Schema{
		{Name: "Balance", Kind: Numeric},
		{Name: "Age", Kind: Numeric},
		{Name: "CardLoan", Kind: Boolean},
		{Name: "AutoWithdraw", Kind: Boolean},
	}
}

func TestSchemaValidate(t *testing.T) {
	if err := bankSchema().Validate(); err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
	cases := []struct {
		name string
		s    Schema
	}{
		{"empty", Schema{}},
		{"blank name", Schema{{Name: "", Kind: Numeric}}},
		{"dup name", Schema{{Name: "A", Kind: Numeric}, {Name: "A", Kind: Boolean}}},
		{"bad kind", Schema{{Name: "A", Kind: Kind(9)}}},
	}
	for _, c := range cases {
		if err := c.s.Validate(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestSchemaLookups(t *testing.T) {
	s := bankSchema()
	if i := s.Index("CardLoan"); i != 2 {
		t.Errorf("Index(CardLoan) = %d, want 2", i)
	}
	if i := s.Index("Missing"); i != -1 {
		t.Errorf("Index(Missing) = %d, want -1", i)
	}
	if got := s.NumericIndices(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("NumericIndices = %v", got)
	}
	if got := s.BooleanIndices(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("BooleanIndices = %v", got)
	}
	names := s.Names()
	if names[0] != "Balance" || names[3] != "AutoWithdraw" {
		t.Errorf("Names = %v", names)
	}
}

func TestKindString(t *testing.T) {
	if Numeric.String() != "numeric" || Boolean.String() != "boolean" {
		t.Errorf("kind strings wrong")
	}
	if Kind(42).String() == "" {
		t.Errorf("unknown kind should still print")
	}
}

func TestMemoryAppendAndColumns(t *testing.T) {
	r := MustNewMemoryRelation(bankSchema())
	r.MustAppend([]float64{100, 30}, []bool{true, false})
	r.MustAppend([]float64{200, 40}, []bool{false, true})
	if r.NumTuples() != 2 {
		t.Fatalf("NumTuples = %d, want 2", r.NumTuples())
	}
	bal, err := r.NumericColumn(0)
	if err != nil || len(bal) != 2 || bal[0] != 100 || bal[1] != 200 {
		t.Errorf("Balance column = %v (%v)", bal, err)
	}
	age, err := r.NumericColumn(1)
	if err != nil || age[0] != 30 || age[1] != 40 {
		t.Errorf("Age column = %v (%v)", age, err)
	}
	cl, err := r.BoolColumn(2)
	if err != nil || !cl[0] || cl[1] {
		t.Errorf("CardLoan column = %v (%v)", cl, err)
	}
	if _, err := r.NumericColumn(2); err == nil {
		t.Errorf("NumericColumn on bool attr should fail")
	}
	if _, err := r.BoolColumn(0); err == nil {
		t.Errorf("BoolColumn on numeric attr should fail")
	}
	if _, err := r.NumericColumn(-1); err == nil {
		t.Errorf("NumericColumn(-1) should fail")
	}
}

func TestMemoryAppendShapeErrors(t *testing.T) {
	r := MustNewMemoryRelation(bankSchema())
	if err := r.Append([]float64{1}, []bool{true, false}); err == nil {
		t.Errorf("short numeric row accepted")
	}
	if err := r.Append([]float64{1, 2}, []bool{true}); err == nil {
		t.Errorf("short bool row accepted")
	}
	if r.NumTuples() != 0 {
		t.Errorf("failed appends should not grow the relation")
	}
}

func TestMemoryScanBatches(t *testing.T) {
	r := MustNewMemoryRelation(bankSchema())
	n := 2*DefaultBatchSize + 17
	r.Grow(n)
	for i := 0; i < n; i++ {
		r.MustAppend([]float64{float64(i), float64(i % 100)}, []bool{i%3 == 0, i%2 == 0})
	}
	var seen int
	var sumBal float64
	var countLoan int
	err := r.Scan(ColumnSet{Numeric: []int{0}, Bool: []int{2}}, func(b *Batch) error {
		if b.Len == 0 {
			t.Fatal("empty batch delivered")
		}
		for row := 0; row < b.Len; row++ {
			sumBal += b.Numeric[0][row]
			if b.Bool[0][row] {
				countLoan++
			}
		}
		seen += b.Len
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != n {
		t.Errorf("scanned %d tuples, want %d", seen, n)
	}
	wantSum := float64(n) * float64(n-1) / 2
	if sumBal != wantSum {
		t.Errorf("sum of Balance = %g, want %g", sumBal, wantSum)
	}
	wantLoan := (n + 2) / 3
	if countLoan != wantLoan {
		t.Errorf("CardLoan yes count = %d, want %d", countLoan, wantLoan)
	}
}

func TestMemoryScanValidatesColumns(t *testing.T) {
	r := MustNewMemoryRelation(bankSchema())
	r.MustAppend([]float64{1, 2}, []bool{true, false})
	if err := r.Scan(ColumnSet{Numeric: []int{2}}, func(*Batch) error { return nil }); err == nil {
		t.Errorf("scan with bool column as numeric should fail")
	}
	if err := r.Scan(ColumnSet{Bool: []int{0}}, func(*Batch) error { return nil }); err == nil {
		t.Errorf("scan with numeric column as bool should fail")
	}
	if err := r.Scan(ColumnSet{Numeric: []int{99}}, func(*Batch) error { return nil }); err == nil {
		t.Errorf("scan with out-of-range column should fail")
	}
}

func TestMemoryScanRange(t *testing.T) {
	r := MustNewMemoryRelation(Schema{{Name: "X", Kind: Numeric}})
	for i := 0; i < 100; i++ {
		r.MustAppend([]float64{float64(i)}, nil)
	}
	var got []float64
	err := r.ScanRange(10, 20, ColumnSet{Numeric: []int{0}}, func(b *Batch) error {
		got = append(got, b.Numeric[0][:b.Len]...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Errorf("ScanRange(10,20) = %v", got)
	}
	if err := r.ScanRange(-1, 5, ColumnSet{}, func(*Batch) error { return nil }); err == nil {
		t.Errorf("negative start accepted")
	}
	if err := r.ScanRange(5, 101, ColumnSet{}, func(*Batch) error { return nil }); err == nil {
		t.Errorf("end beyond NumTuples accepted")
	}
	if err := r.ScanRange(7, 3, ColumnSet{}, func(*Batch) error { return nil }); err == nil {
		t.Errorf("inverted range accepted")
	}
	// Empty range is a no-op.
	if err := r.ScanRange(5, 5, ColumnSet{}, func(*Batch) error {
		t.Fatal("callback invoked for empty range")
		return nil
	}); err != nil {
		t.Errorf("empty range errored: %v", err)
	}
}

func TestMemoryScanErrorPropagation(t *testing.T) {
	r := MustNewMemoryRelation(Schema{{Name: "X", Kind: Numeric}})
	for i := 0; i < 10; i++ {
		r.MustAppend([]float64{1}, nil)
	}
	wantErr := errSentinel("boom")
	err := r.Scan(ColumnSet{Numeric: []int{0}}, func(*Batch) error { return wantErr })
	if err != wantErr {
		t.Errorf("scan error = %v, want %v", err, wantErr)
	}
}

type errSentinel string

func (e errSentinel) Error() string { return string(e) }
