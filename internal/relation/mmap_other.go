//go:build !unix

package relation

import "os"

// mmapFile is unavailable on this platform; point reads use positioned
// reads instead.
func mmapFile(f *os.File) ([]byte, error) {
	return nil, nil
}

// munmapFile matches mmap_unix.go; nothing to release here.
func munmapFile([]byte) error { return nil }
