package relation

import (
	"fmt"
	"math"
)

// BoolPredicate requires the Boolean attribute at schema index Attr to
// equal Want.
type BoolPredicate struct {
	Attr int
	Want bool
}

// RangePredicate requires the numeric attribute at schema index Attr to
// lie in [Lo, Hi] (inclusive). NaN values never match, matching the
// counting kernels' NaN handling.
type RangePredicate struct {
	Attr   int
	Lo, Hi float64
}

// Predicate is a conjunction of per-attribute conditions a pruned scan
// may exploit. Pruning is an OPTIMIZATION, not a filter: a pruned scan
// still delivers every row of any block that MIGHT contain a match, so
// callers must keep applying their own filter logic to delivered rows.
// What pruning guarantees is the converse — a skipped block provably
// contains no matching row — which is why skipping can never change
// what the caller counts.
type Predicate struct {
	Bools  []BoolPredicate
	Ranges []RangePredicate
}

// Empty reports whether the predicate has no conditions (and thus can
// prune nothing).
func (p *Predicate) Empty() bool {
	return p == nil || (len(p.Bools) == 0 && len(p.Ranges) == 0)
}

// Validate checks every condition against the schema: attributes must
// exist and have the right kind, and range bounds must not be NaN
// (a NaN bound satisfies no row, which is almost certainly a caller
// bug — reject it loudly rather than silently scanning everything).
func (p *Predicate) Validate(s Schema) error {
	if p == nil {
		return nil
	}
	for _, bp := range p.Bools {
		if bp.Attr < 0 || bp.Attr >= len(s) || s[bp.Attr].Kind != Boolean {
			return fmt.Errorf("relation: predicate attribute %d is not a boolean column", bp.Attr)
		}
	}
	for _, rp := range p.Ranges {
		if rp.Attr < 0 || rp.Attr >= len(s) || s[rp.Attr].Kind != Numeric {
			return fmt.Errorf("relation: predicate attribute %d is not a numeric column", rp.Attr)
		}
		if math.IsNaN(rp.Lo) || math.IsNaN(rp.Hi) {
			return fmt.Errorf("relation: predicate range on attribute %d has a NaN bound", rp.Attr)
		}
	}
	return nil
}

// PrunedRangeScanner is implemented by relations whose ScanRange can
// use storage metadata (v3 zone maps) to skip whole storage blocks
// that provably contain no predicate-matching row. Skipped rows are
// reported through the skip callback in row order relative to the
// delivered batches, so callers keep exact logical-row accounting
// (e.g. the counting kernels add skipped rows to their totals — a
// filter-rejected row contributes only to Total, whether it was read
// or skipped). Relations without usable metadata simply never call
// skip and deliver everything.
type PrunedRangeScanner interface {
	RangeScanner
	ScanRangePruned(start, end int, cols ColumnSet, pred *Predicate, skip func(rows int) error, fn func(*Batch) error) error
}

// ScanRangePruned implements PrunedRangeScanner: v3 files consult their
// zone maps; v1/v2 files have none and degrade to a plain ScanRange.
func (dr *DiskRelation) ScanRangePruned(start, end int, cols ColumnSet, pred *Predicate, skip func(rows int) error, fn func(*Batch) error) error {
	dr.ops.RLock()
	defer dr.ops.RUnlock()
	if err := cols.Validate(dr.schema); err != nil {
		return err
	}
	if err := pred.Validate(dr.schema); err != nil {
		return err
	}
	if start < 0 || end > dr.numRows || start > end {
		return fmt.Errorf("relation: scan range [%d,%d) out of [0,%d)", start, end, dr.numRows)
	}
	if start == end {
		return nil
	}
	if dr.version == DiskFormatV3 && !pred.Empty() {
		if skip == nil {
			skip = func(int) error { return nil }
		}
		return dr.scanRangeV3(start, end, cols, pred, skip, fn)
	}
	return dr.ScanRange(start, end, cols, fn)
}
