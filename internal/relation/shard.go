package relation

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Sharded relations: one LOGICAL relation backed by an ordered list of
// shard files (each a self-contained v1, v2, or v3 relation file) plus a
// small versioned manifest. The global row order is the concatenation
// of the shards in manifest order, so a sharded relation holding the
// same tuple stream as a single file is indistinguishable to the miner
// — samples, boundaries, counts, and therefore rules are identical.
//
// Sharding is the horizontal decomposition that breaks the single-file
// / single-spindle ceiling: each shard can live on its own disk (or
// eventually its own node), each shard sub-scan runs its own
// double-buffered read-ahead pipeline, and the parallel counting
// engines split work at shard boundaries so workers never contend for
// one file. Per-shard state stays bounded no matter how large the
// logical relation grows.
//
// Manifest format (text, line-oriented, version negotiated):
//
//	OPTSHARD 1
//	shard <rows> <path>
//	shard <rows> <path>
//	...
//
// Paths are resolved relative to the manifest's directory unless
// absolute; <rows> is the shard's declared tuple count and is
// cross-checked against the shard file's own header on open, so a
// manifest that drifted from its shards fails loudly instead of
// serving misaligned global row numbers. Blank lines and lines
// starting with '#' are ignored. All shards must share one schema
// (same attribute names and kinds, in the same order); shards may mix
// on-disk format versions freely — a relation can be grown with v2 or
// v3 shards while old v1 shards stay in place.

const (
	// ShardManifestVersion is the current manifest format version.
	ShardManifestVersion = 1
	// shardManifestMagic is the first token of every manifest.
	shardManifestMagic = "OPTSHARD"
	// maxManifestBytes bounds manifest reads so a hostile file cannot
	// demand an absurd allocation.
	maxManifestBytes = 1 << 20
	// maxManifestShards bounds the declared shard count.
	maxManifestShards = 1 << 16
	// shardScanDepth is the number of copied batches in flight per shard
	// prefetcher during a concurrent scan (double buffering: the
	// consumer's current batch plus one being filled).
	shardScanDepth = 2
)

// errShardStop aborts shard sub-scans when a concurrent scan is torn
// down early (consumer error or early abort).
var errShardStop = errors.New("relation: shard scan stopped")

// DataRelation is the full storage surface shared by the disk-backed
// backends — the single-file DiskRelation and the ShardedRelation —
// so callers (cmd/optdata, experiments) can treat either uniformly:
// range scans, point reads, segment-alignment hints, the counted
// BytesRead cost model, and resource release.
type DataRelation interface {
	RangeScanner
	NumericPointReader
	ScanAligner
	BytesRead() int64
	ResetBytesRead()
	Close() error
}

var (
	_ DataRelation = (*DiskRelation)(nil)
	_ DataRelation = (*ShardedRelation)(nil)
)

// ShardedRelation is a Relation backed by an ordered list of shard
// files; see the package comment above for the manifest format and the
// global row-order contract. Open one with OpenSharded.
//
// The shard list lives in an immutable snapshot (shardSet) swapped
// atomically by Reopen: every operation loads the snapshot once and
// works against it, so an open relation can pick up shards appended to
// the manifest (by a ShardedAppender) without invalidating in-flight
// scans — appends only ever extend the shard list, so a scan bounded
// by an older snapshot's row count stays valid against any newer one.
type ShardedRelation struct {
	manifestPath string
	schema       Schema
	// cur is the current immutable shard-set snapshot. Readers load it
	// once per operation; Reopen swaps in a new one.
	cur atomic.Pointer[shardSet]
	// epoch counts snapshot swaps that added rows; see Epoch.
	epoch atomic.Int64
	// reopenMu serializes Reopen (and orders it against Close) without
	// blocking scans, which only read the snapshot pointer.
	reopenMu sync.Mutex
	// scanAhead > 1 enables concurrent sub-scans: Scan/ScanRange runs up
	// to scanAhead shards' scans at once, each with its own prefetcher,
	// delivering batches in global row order. See SetConcurrentScans.
	scanAhead int

	// ops mirrors DiskRelation.ops: scans and point reads hold the read
	// lock so Close can refuse with ErrBusy instead of tearing down
	// shard mappings under an in-flight operation.
	ops sync.RWMutex
}

// shardSet is one immutable snapshot of a sharded relation's backing
// files. Never mutated after publication; Reopen builds a fresh one
// (sharing the already-open *DiskRelation prefix) and swaps the
// pointer.
type shardSet struct {
	shards  []*DiskRelation
	paths   []string             // resolved shard paths, manifest order
	entries []shardManifestEntry // parsed manifest lines, raw path text preserved
	starts  []int                // starts[i] = global row of shard i's first tuple; len(shards)+1 entries
	numRows int
}

// shardManifestEntry is one parsed manifest line. raw preserves the
// path exactly as written (before resolving against the manifest
// directory), so an appender can rewrite existing lines verbatim.
type shardManifestEntry struct {
	rows int
	path string
	raw  string
}

// parseShardManifest parses and validates manifest text (not the shard
// files themselves). dir is the manifest's directory, against which
// relative shard paths are resolved.
func parseShardManifest(name string, data []byte, dir string) ([]shardManifestEntry, error) {
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	if !sc.Scan() {
		return nil, fmt.Errorf("relation: %s: empty shard manifest", name)
	}
	header := strings.Fields(sc.Text())
	if len(header) != 2 || header[0] != shardManifestMagic {
		return nil, fmt.Errorf("relation: %s is not a shard manifest", name)
	}
	version, err := strconv.Atoi(header[1])
	if err != nil || version != ShardManifestVersion {
		return nil, fmt.Errorf("relation: %s: unsupported shard manifest version %q", name, header[1])
	}
	var entries []shardManifestEntry
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		// "shard <rows> <path>"; the path is the remainder of the line, so
		// it may contain spaces.
		fields := strings.SplitN(text, " ", 3)
		if len(fields) != 3 || fields[0] != "shard" {
			return nil, fmt.Errorf("relation: %s:%d: malformed manifest line %q", name, line, text)
		}
		rows, err := strconv.Atoi(fields[1])
		if err != nil || rows < 0 {
			return nil, fmt.Errorf("relation: %s:%d: bad shard row count %q", name, line, fields[1])
		}
		raw := strings.TrimSpace(fields[2])
		if raw == "" {
			return nil, fmt.Errorf("relation: %s:%d: empty shard path", name, line)
		}
		path := raw
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, path)
		}
		entries = append(entries, shardManifestEntry{rows: rows, path: path, raw: raw})
		if len(entries) > maxManifestShards {
			return nil, fmt.Errorf("relation: %s: more than %d shards", name, maxManifestShards)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("relation: %s: reading manifest: %w", name, err)
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("relation: %s: shard manifest lists no shards", name)
	}
	return entries, nil
}

// sameSchema reports whether two schemas are identical (names and kinds
// in the same order).
func sameSchema(a, b Schema) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// readShardManifest stats, reads, and parses the manifest at path.
func readShardManifest(manifestPath string) ([]shardManifestEntry, error) {
	st, err := os.Stat(manifestPath)
	if err != nil {
		return nil, err
	}
	if st.Size() > maxManifestBytes {
		return nil, fmt.Errorf("relation: %s: implausible %d-byte shard manifest", manifestPath, st.Size())
	}
	data, err := os.ReadFile(manifestPath)
	if err != nil {
		return nil, err
	}
	return parseShardManifest(manifestPath, data, filepath.Dir(manifestPath))
}

// buildShardSet opens manifest entries [from, len(entries)), reusing
// the already-open prefix shards, and returns the complete snapshot.
// schema is the required schema for every newly opened shard (nil when
// from == 0: shard 0 defines it). On error, every shard opened by THIS
// call is closed; prefix shards are left untouched.
func buildShardSet(manifestPath string, entries []shardManifestEntry, prefix []*DiskRelation, schema Schema) (*shardSet, error) {
	from := len(prefix)
	ss := &shardSet{
		shards:  append(make([]*DiskRelation, 0, len(entries)), prefix...),
		paths:   make([]string, 0, len(entries)),
		entries: entries,
		starts:  make([]int, 1, len(entries)+1),
	}
	ok := false
	defer func() {
		if !ok {
			for _, sh := range ss.shards[from:] {
				sh.Close()
			}
		}
	}()
	for i, e := range entries {
		if i >= from {
			dr, err := OpenDisk(e.path)
			if err != nil {
				return nil, fmt.Errorf("relation: %s: shard %d: %w", manifestPath, i, err)
			}
			ss.shards = append(ss.shards, dr)
		}
		dr := ss.shards[i]
		ss.paths = append(ss.paths, e.path)
		if dr.NumTuples() != e.rows {
			return nil, fmt.Errorf("relation: %s: shard %d (%s) holds %d rows, manifest declares %d",
				manifestPath, i, e.path, dr.NumTuples(), e.rows)
		}
		if schema == nil {
			schema = dr.Schema()
		} else if !sameSchema(schema, dr.Schema()) {
			return nil, fmt.Errorf("relation: %s: shard %d (%s) schema %v differs from shard 0 schema %v",
				manifestPath, i, e.path, dr.Schema().Names(), schema.Names())
		}
		ss.numRows += e.rows
		ss.starts = append(ss.starts, ss.numRows)
	}
	ok = true
	return ss, nil
}

// OpenSharded opens a sharded relation from its manifest: every listed
// shard file is opened (format version negotiated per shard) and
// cross-checked — declared row counts against the shard headers,
// schemas for exact equality across shards — before any row is served,
// so a corrupt or drifted manifest fails at open, not mid-scan.
func OpenSharded(manifestPath string) (*ShardedRelation, error) {
	entries, err := readShardManifest(manifestPath)
	if err != nil {
		return nil, err
	}
	ss, err := buildShardSet(manifestPath, entries, nil, nil)
	if err != nil {
		return nil, err
	}
	sr := &ShardedRelation{manifestPath: manifestPath, schema: ss.shards[0].Schema()}
	sr.cur.Store(ss)
	return sr, nil
}

// Reopen re-reads the manifest and picks up shards committed since the
// relation was opened (or last reopened). The new manifest must extend
// the current one — every existing entry unchanged, in order — because
// append is the only manifest mutation that preserves the global row
// numbering cached statistics are keyed on; anything else (reorder,
// rewrite, truncation) errors and leaves the relation on its current
// snapshot. In-flight scans are never invalidated: they run against
// the snapshot they started on, whose shards stay open. Returns the
// number of rows added.
func (sr *ShardedRelation) Reopen() (added int, err error) {
	sr.reopenMu.Lock()
	defer sr.reopenMu.Unlock()
	old := sr.cur.Load()
	entries, err := readShardManifest(sr.manifestPath)
	if err != nil {
		return 0, err
	}
	if len(entries) < len(old.entries) {
		return 0, fmt.Errorf("relation: %s: manifest shrank from %d to %d shards; reopen requires append-only growth",
			sr.manifestPath, len(old.entries), len(entries))
	}
	for i, e := range old.entries {
		if entries[i].rows != e.rows || entries[i].path != e.path {
			return 0, fmt.Errorf("relation: %s: shard %d changed (%d rows at %s -> %d rows at %s); reopen requires append-only growth",
				sr.manifestPath, i, e.rows, e.path, entries[i].rows, entries[i].path)
		}
	}
	if len(entries) == len(old.entries) {
		return 0, nil // nothing new committed
	}
	ss, err := buildShardSet(sr.manifestPath, entries, old.shards, sr.schema)
	if err != nil {
		return 0, err
	}
	sr.cur.Store(ss)
	if ss.numRows != old.numRows {
		sr.epoch.Add(1)
	}
	return ss.numRows - old.numRows, nil
}

// Epoch returns a counter incremented every time Reopen picks up
// committed rows. Sessions compare epochs to detect that cached
// statistics cover a prefix of the current relation.
func (sr *ShardedRelation) Epoch() int64 { return sr.epoch.Load() }

// Schema implements Relation.
func (sr *ShardedRelation) Schema() Schema { return sr.schema }

// NumTuples implements Relation.
func (sr *ShardedRelation) NumTuples() int { return sr.cur.Load().numRows }

// NumShards returns the number of shard files backing the relation.
func (sr *ShardedRelation) NumShards() int { return len(sr.cur.Load().shards) }

// ShardStarts returns the global row offset of each shard's first
// tuple plus a final NumTuples entry (len NumShards()+1, monotone
// non-decreasing) — the natural task boundaries for a scatter-gather
// coordinator assigning one worker per shard.
func (sr *ShardedRelation) ShardStarts() []int {
	return append([]int(nil), sr.cur.Load().starts...)
}

// ManifestPath returns the path the relation was opened from.
func (sr *ShardedRelation) ManifestPath() string { return sr.manifestPath }

// StoragePaths returns every file backing the relation: the manifest,
// then the shard files in manifest order. Conversion helpers use it to
// refuse writing a destination onto one of its own sources.
func (sr *ShardedRelation) StoragePaths() []string {
	ss := sr.cur.Load()
	out := make([]string, 0, len(ss.paths)+1)
	out = append(out, sr.manifestPath)
	return append(out, ss.paths...)
}

// SetConcurrentScans configures how many shard sub-scans a single
// Scan/ScanRange call may run at once. ahead <= 1 (the default) scans
// shards serially in manifest order — fully deterministic, including
// the counted BytesRead of early-aborted scans. ahead > 1 runs up to
// that many shards' scans concurrently in a sliding window, each with
// its own double-buffered prefetcher, delivering batches to the
// callback in global row order; tuple delivery is identical to the
// serial scan, but a scan the callback aborts early may have read (and
// counted) up to the window's read-ahead beyond the abort point.
// Not safe to call concurrently with in-flight scans.
func (sr *ShardedRelation) SetConcurrentScans(ahead int) {
	sr.scanAhead = ahead
}

// BytesRead sums the counted payload bytes delivered from disk across
// all shards since open (or the last ResetBytesRead). Safe for
// concurrent use.
func (sr *ShardedRelation) BytesRead() int64 {
	var total int64
	for _, sh := range sr.cur.Load().shards {
		total += sh.BytesRead()
	}
	return total
}

// ResetBytesRead zeroes every shard's BytesRead counter.
func (sr *ShardedRelation) ResetBytesRead() {
	for _, sh := range sr.cur.Load().shards {
		sh.ResetBytesRead()
	}
}

// Close releases every shard's resources (point-read mappings). Shards
// stay usable afterwards via positioned reads, like DiskRelation.Close.
// Calling Close while scans or point reads are in flight on the
// sharded relation returns ErrBusy and releases nothing.
func (sr *ShardedRelation) Close() error {
	if !sr.ops.TryLock() {
		return fmt.Errorf("relation: %s: %w", sr.manifestPath, ErrBusy)
	}
	defer sr.ops.Unlock()
	// Hold reopenMu so a racing Reopen cannot open shards after Close
	// loaded the snapshot (they would leak their mappings).
	sr.reopenMu.Lock()
	defer sr.reopenMu.Unlock()
	var first error
	for _, sh := range sr.cur.Load().shards {
		if err := sh.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ScanAlignment implements ScanAligner with the coarsest storage unit
// of any shard (a v2 shard's block-group size, 1 for all-v1 shards).
// For sharded relations the value is a granularity hint only —
// AlignedSegments places the actual cuts through SnapSegment, because
// shard boundaries fall at arbitrary global offsets and each shard's
// group grid is phased to the shard's own first row.
func (sr *ShardedRelation) ScanAlignment() int {
	g := 1
	for _, sh := range sr.cur.Load().shards {
		if a := sh.ScanAlignment(); a > g {
			g = a
		}
	}
	return g
}

// shardAt returns the index of the shard containing global row, for
// row in [0, numRows). Empty shards never contain a row and are
// skipped naturally.
func (ss *shardSet) shardAt(row int) int {
	// First i with starts[i] >= row+1, minus one: starts[i] <= row < starts[i+1].
	return sort.SearchInts(ss.starts, row+1) - 1
}

// SnapSegment implements SegmentSnapper: the proposed cut is rounded to
// the nearest preferred boundary — a multiple of the containing shard's
// block-group size measured from that shard's first row, clamped to the
// shard's own bounds (shard boundaries are themselves always preferred
// cuts, since every shard starts a fresh group grid). Workers given
// AlignedSegments built from these cuts therefore never split a
// shard's block group.
func (sr *ShardedRelation) SnapSegment(cut int) int {
	ss := sr.cur.Load()
	if cut <= 0 {
		return 0
	}
	if cut >= ss.numRows {
		return ss.numRows
	}
	i := ss.shardAt(cut)
	align := ss.shards[i].ScanAlignment()
	if align <= 1 {
		return cut
	}
	local := cut - ss.starts[i]
	snapped := (local + align/2) / align * align
	if max := ss.starts[i+1] - ss.starts[i]; snapped > max {
		snapped = max
	}
	return ss.starts[i] + snapped
}

// Scan implements Relation by streaming every shard in manifest order.
func (sr *ShardedRelation) Scan(cols ColumnSet, fn func(*Batch) error) error {
	return sr.ScanRange(0, sr.NumTuples(), cols, fn)
}

// ScanRange implements RangeScanner: the global row range [start, end)
// is translated into per-shard sub-ranges and streamed shard by shard
// in global row order. With SetConcurrentScans(n > 1), up to n shards'
// sub-scans run at once (each with its own read-ahead pipeline) while
// batches are still delivered to fn in row order. Bounds semantics are
// identical to the other backends: start/end outside [0, NumTuples()]
// or start > end error; start == end scans nothing.
func (sr *ShardedRelation) ScanRange(start, end int, cols ColumnSet, fn func(*Batch) error) error {
	sr.ops.RLock()
	defer sr.ops.RUnlock()
	ss := sr.cur.Load()
	if err := cols.Validate(sr.schema); err != nil {
		return err
	}
	if start < 0 || end > ss.numRows || start > end {
		return fmt.Errorf("relation: scan range [%d,%d) out of [0,%d)", start, end, ss.numRows)
	}
	if start == end {
		return nil
	}
	first, last := ss.shardAt(start), ss.shardAt(end-1)
	if sr.scanAhead > 1 && first < last {
		return sr.scanRangeConcurrent(ss, start, end, first, last, cols, fn)
	}
	for i := first; i <= last; i++ {
		lo, hi := ss.shardRange(i, start, end)
		if lo >= hi {
			continue // empty shard inside the window
		}
		if err := ss.shards[i].ScanRange(lo, hi, cols, fn); err != nil {
			return err
		}
	}
	return nil
}

// ScanRangePruned implements PrunedRangeScanner by delegating to each
// shard in the window: v3 shards prune through their zone maps, v1/v2
// shards deliver everything — so a mixed-format relation prunes
// exactly where its storage can. The concurrent multi-shard pipeline
// (SetConcurrentScans > 1) has no pruned variant and falls back to the
// plain concurrent scan: still correct (pruning is an optimization,
// never a filter), just without the skip savings.
func (sr *ShardedRelation) ScanRangePruned(start, end int, cols ColumnSet, pred *Predicate, skip func(rows int) error, fn func(*Batch) error) error {
	sr.ops.RLock()
	defer sr.ops.RUnlock()
	ss := sr.cur.Load()
	if err := cols.Validate(sr.schema); err != nil {
		return err
	}
	if err := pred.Validate(sr.schema); err != nil {
		return err
	}
	if start < 0 || end > ss.numRows || start > end {
		return fmt.Errorf("relation: scan range [%d,%d) out of [0,%d)", start, end, ss.numRows)
	}
	if start == end {
		return nil
	}
	first, last := ss.shardAt(start), ss.shardAt(end-1)
	if sr.scanAhead > 1 && first < last {
		return sr.scanRangeConcurrent(ss, start, end, first, last, cols, fn)
	}
	for i := first; i <= last; i++ {
		lo, hi := ss.shardRange(i, start, end)
		if lo >= hi {
			continue // empty shard inside the window
		}
		if err := ss.shards[i].ScanRangePruned(lo, hi, cols, pred, skip, fn); err != nil {
			return err
		}
	}
	return nil
}

// shardRange clips the global range [start, end) to shard i's rows and
// translates it to shard-local coordinates.
func (ss *shardSet) shardRange(i, start, end int) (lo, hi int) {
	lo, hi = 0, ss.starts[i+1]-ss.starts[i]
	if s := start - ss.starts[i]; s > lo {
		lo = s
	}
	if e := end - ss.starts[i]; e < hi {
		hi = e
	}
	return lo, hi
}

// shardBatch carries one copied batch from a shard prefetcher to the
// in-order consumer of a concurrent scan. Slices are owned by the
// batch and recycled through the stream's free list.
type shardBatch struct {
	len     int
	numeric [][]float64
	bools   [][]bool
	err     error
}

// shardStream is one shard's asynchronous sub-scan: out delivers
// filled batches in shard row order; free returns consumed batches to
// the producer for reuse, bounding the stream at shardScanDepth
// buffers regardless of shard size.
type shardStream struct {
	out  chan *shardBatch
	free chan *shardBatch
}

// startShardStream launches shard i's sub-scan of local rows [lo, hi)
// as a producer goroutine. The producer copies each scan batch into an
// owned buffer (the underlying scan reuses its batches) and blocks on
// the free list, so at most shardScanDepth copies exist per shard. A
// closed stop channel tears the producer down on any consumer exit
// path.
func startShardStream(ss *shardSet, i, lo, hi int, cols ColumnSet, stop <-chan struct{}) *shardStream {
	st := &shardStream{
		out:  make(chan *shardBatch, shardScanDepth),
		free: make(chan *shardBatch, shardScanDepth),
	}
	for j := 0; j < shardScanDepth; j++ {
		st.free <- nil // allocated lazily by the producer
	}
	sh := ss.shards[i]
	go func() {
		defer close(st.out)
		err := sh.ScanRange(lo, hi, cols, func(b *Batch) error {
			var sb *shardBatch
			select {
			case sb = <-st.free:
			case <-stop:
				return errShardStop
			}
			if sb == nil {
				sb = &shardBatch{
					numeric: make([][]float64, len(cols.Numeric)),
					bools:   make([][]bool, len(cols.Bool)),
				}
			}
			sb.len = b.Len
			for k := range b.Numeric {
				sb.numeric[k] = append(sb.numeric[k][:0], b.Numeric[k][:b.Len]...)
			}
			for k := range b.Bool {
				sb.bools[k] = append(sb.bools[k][:0], b.Bool[k][:b.Len]...)
			}
			select {
			case st.out <- sb:
			case <-stop:
				return errShardStop
			}
			return nil
		})
		if err != nil && err != errShardStop {
			select {
			case st.out <- &shardBatch{err: err}:
			case <-stop:
			}
		}
	}()
	return st
}

// scanRangeConcurrent is ScanRange's multi-shard pipeline: a sliding
// window of scanAhead shard sub-scans runs concurrently — shard i is
// consumed in order while shards i+1..i+scanAhead-1 prefetch — so the
// next shard's disk reads overlap the current shard's decode-and-count
// work, and on multi-disk layouts the spindles stream in parallel.
// Memory stays bounded at scanAhead × shardScanDepth copied batches.
func (sr *ShardedRelation) scanRangeConcurrent(ss *shardSet, start, end, first, last int, cols ColumnSet, fn func(*Batch) error) error {
	stop := make(chan struct{})
	defer close(stop) // tears down every launched producer on any exit
	streams := make([]*shardStream, last-first+1)
	launch := func(i int) {
		if i > last {
			return
		}
		lo, hi := ss.shardRange(i, start, end)
		streams[i-first] = startShardStream(ss, i, lo, hi, cols, stop)
	}
	for i := first; i < first+sr.scanAhead && i <= last; i++ {
		launch(i)
	}
	batch := &Batch{
		Numeric: make([][]float64, len(cols.Numeric)),
		Bool:    make([][]bool, len(cols.Bool)),
	}
	for i := first; i <= last; i++ {
		for sb := range streams[i-first].out {
			if sb.err != nil {
				return sb.err
			}
			batch.Len = sb.len
			copy(batch.Numeric, sb.numeric)
			copy(batch.Bool, sb.bools)
			if err := fn(batch); err != nil {
				return err
			}
			select {
			case streams[i-first].free <- sb:
			default:
			}
		}
		launch(i + sr.scanAhead)
	}
	return nil
}

// ReadNumericPoints implements NumericPointReader across shards: the
// sorted global rows are split into per-shard runs and each run is
// served by that shard's own point reader (mmap-backed where
// available), preserving the 8-bytes-per-unique-row counted cost.
func (sr *ShardedRelation) ReadNumericPoints(attr int, rows []int, out []float64) error {
	sr.ops.RLock()
	defer sr.ops.RUnlock()
	ss := sr.cur.Load()
	if attr < 0 || attr >= len(sr.schema) || sr.schema[attr].Kind != Numeric {
		return fmt.Errorf("relation: point read attribute %d is not a numeric column", attr)
	}
	if len(out) != len(rows) {
		return fmt.Errorf("relation: %d rows but %d outputs", len(rows), len(out))
	}
	for i, row := range rows {
		if row < 0 || row >= ss.numRows {
			return fmt.Errorf("relation: point read row %d out of [0,%d)", row, ss.numRows)
		}
		if i > 0 && row < rows[i-1] {
			return fmt.Errorf("relation: point read rows not sorted at %d", i)
		}
	}
	if len(rows) == 0 {
		return nil
	}
	local := make([]int, 0, len(rows))
	for j := 0; j < len(rows); {
		i := ss.shardAt(rows[j])
		hi := ss.starts[i+1]
		k := j
		local = local[:0]
		for k < len(rows) && rows[k] < hi {
			local = append(local, rows[k]-ss.starts[i])
			k++
		}
		if err := ss.shards[i].ReadNumericPoints(attr, local, out[j:k]); err != nil {
			return err
		}
		j = k
	}
	return nil
}

// IsShardManifest reports whether the file at path begins with the
// shard-manifest magic — the cheap sniff OpenData uses to dispatch
// between the single-file and sharded backends.
func IsShardManifest(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	buf := make([]byte, len(shardManifestMagic))
	n := sniffPrefix(f, buf)
	return string(buf[:n]) == shardManifestMagic, nil
}

// OpenData opens either disk backend at path, sniffing the file's
// magic: a shard manifest opens as a ShardedRelation, anything else is
// handed to OpenDisk.
func OpenData(path string) (DataRelation, error) {
	isManifest, err := IsShardManifest(path)
	if err != nil {
		return nil, err
	}
	if isManifest {
		return OpenSharded(path)
	}
	return OpenDisk(path)
}

// ShardedWriterOptions configures NewShardedWriter. Exactly one
// splitting policy must be chosen; both split the append stream into
// CONTIGUOUS runs (shard 0 holds the first rows, shard 1 the next, …)
// because global row order is the mining contract — a sharded relation
// must be tuple-for-tuple identical to the same stream written to one
// file, or samples, boundaries, and rules would silently change.
type ShardedWriterOptions struct {
	// RowsPerShard, when positive, starts a new shard every RowsPerShard
	// rows (size-based splitting, for streams of unknown length).
	RowsPerShard int
	// Shards, when positive, targets that many shards for an expected
	// TotalRows tuples (count-based splitting): rows per shard is
	// ceil(TotalRows/Shards). Appending beyond TotalRows keeps splitting
	// at the same size, growing extra shards.
	Shards int
	// TotalRows is the expected tuple count for count-based splitting.
	TotalRows int
	// Format is the shard file format version (DiskFormatV1,
	// DiskFormatV2, or DiskFormatV3); 0 selects the v2 default.
	Format int
	// GroupRows is the v2/v3 block-group size; 0 selects the default.
	GroupRows int
}

// rowsPerShard resolves the splitting policy.
func (o ShardedWriterOptions) rowsPerShard() (int, error) {
	switch {
	case o.RowsPerShard > 0 && o.Shards > 0:
		return 0, fmt.Errorf("relation: sharded writer: set RowsPerShard or Shards, not both")
	case o.RowsPerShard > 0:
		return o.RowsPerShard, nil
	case o.Shards > 0:
		if o.TotalRows < 0 {
			return 0, fmt.Errorf("relation: sharded writer: negative TotalRows %d", o.TotalRows)
		}
		rps := (o.TotalRows + o.Shards - 1) / o.Shards
		if rps < 1 {
			rps = 1
		}
		return rps, nil
	default:
		return 0, fmt.Errorf("relation: sharded writer needs RowsPerShard or Shards")
	}
}

// ShardedWriter streams tuples into a sharded relation: shard files are
// written next to the manifest path (named <base>-s00000.opr,
// <base>-s00001.opr, …), a new shard starting whenever the splitting
// policy says so, and the manifest itself is written last — to a temp
// file renamed into place on Close, so a crashed or failed write never
// leaves a manifest pointing at missing or short shards.
type ShardedWriter struct {
	manifestPath string
	dir          string
	base         string
	schema       Schema
	format       int
	groupRows    int
	rowsPerShard int
	cur          *DiskWriter
	curRows      int
	rows         int
	entries      []shardManifestEntry // closed shards, base-named paths
	created      []string             // every file this writer created
	closed       bool
	closeErr     error // sticky result of the first Close
	// writeErr latches a failed shard rollover: the writer has lost rows
	// (a shard closed but its successor was never created), so every
	// later Append and the final Close must fail rather than commit a
	// manifest that silently drops the tail of the stream.
	writeErr error
}

// NewShardedWriter creates a sharded relation rooted at manifestPath
// (conventionally *.oprs). The first shard file is created eagerly so
// an immediately-Closed writer still yields a valid empty relation.
func NewShardedWriter(manifestPath string, schema Schema, opts ShardedWriterOptions) (*ShardedWriter, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	rps, err := opts.rowsPerShard()
	if err != nil {
		return nil, err
	}
	format := opts.Format
	if format == 0 {
		format = DiskFormatV2
	}
	if format != DiskFormatV1 && format != DiskFormatV2 && format != DiskFormatV3 {
		return nil, fmt.Errorf("relation: unknown disk format version %d", format)
	}
	sw := &ShardedWriter{
		manifestPath: manifestPath,
		dir:          filepath.Dir(manifestPath),
		base:         shardBaseName(manifestPath),
		schema:       schema,
		format:       format,
		groupRows:    opts.GroupRows,
		rowsPerShard: rps,
	}
	if err := sw.startShard(); err != nil {
		return nil, err
	}
	return sw, nil
}

// shardBaseName derives the shard files' name stem from the manifest
// path (its base with the extension stripped).
func shardBaseName(manifestPath string) string {
	base := filepath.Base(manifestPath)
	if ext := filepath.Ext(base); ext != "" {
		base = base[:len(base)-len(ext)]
	}
	return base
}

// shardFileName returns the base name of shard i for the given stem —
// the ONE place the naming scheme lives; the writer and the
// ConvertToSharded freshness pre-check both use it, so the check can
// never drift from the names the writer actually creates.
func shardFileName(base string, i int) string {
	return fmt.Sprintf("%s-s%05d.opr", base, i)
}

// shardName returns the base name of shard i.
func (sw *ShardedWriter) shardName(i int) string {
	return shardFileName(sw.base, i)
}

// startShard opens the next shard file.
func (sw *ShardedWriter) startShard() error {
	name := sw.shardName(len(sw.entries))
	path := filepath.Join(sw.dir, name)
	var dw *DiskWriter
	var err error
	switch sw.format {
	case DiskFormatV2:
		dw, err = NewDiskWriterV2(path, sw.schema, sw.groupRows)
	case DiskFormatV3:
		dw, err = NewDiskWriterV3(path, sw.schema, sw.groupRows)
	default:
		dw, err = NewDiskWriter(path, sw.schema)
	}
	if err != nil {
		return err
	}
	sw.cur = dw
	sw.curRows = 0
	sw.created = append(sw.created, path)
	return nil
}

// finishShard closes the current shard and records its manifest entry.
func (sw *ShardedWriter) finishShard() error {
	if err := sw.cur.Close(); err != nil {
		return err
	}
	sw.entries = append(sw.entries, shardManifestEntry{rows: sw.curRows, path: sw.shardName(len(sw.entries))})
	sw.cur = nil
	return nil
}

// Append writes one tuple (same contract as DiskWriter.Append),
// rolling over to a new shard file when the splitting policy fills the
// current one. A failed rollover is sticky: the writer has already
// lost its place in the stream, so later Appends and Close keep
// failing instead of committing a manifest with a silent gap.
func (sw *ShardedWriter) Append(nums []float64, bools []bool) error {
	if sw.closed {
		return fmt.Errorf("relation: append to closed ShardedWriter")
	}
	if sw.writeErr != nil {
		return sw.writeErr
	}
	if sw.curRows == sw.rowsPerShard {
		if err := sw.finishShard(); err != nil {
			sw.writeErr = err
			return err
		}
		if err := sw.startShard(); err != nil {
			sw.writeErr = err
			return err
		}
	}
	if err := sw.cur.Append(nums, bools); err != nil {
		return err
	}
	sw.curRows++
	sw.rows++
	return nil
}

// Close finalizes the last shard and writes the manifest (temp file in
// the manifest's directory, renamed into place), so readers only ever
// see a manifest whose shards are complete. A failed Close is sticky:
// repeated calls return the first error instead of a false success.
func (sw *ShardedWriter) Close() error {
	if sw.closed {
		return sw.closeErr
	}
	sw.closed = true
	sw.closeErr = sw.commit()
	return sw.closeErr
}

// commit is Close's one-shot body.
func (sw *ShardedWriter) commit() error {
	if sw.writeErr != nil {
		// A rollover already failed: refuse to commit a manifest missing
		// part of the stream, and release the current shard's handle.
		if sw.cur != nil {
			sw.cur.Discard()
			sw.cur = nil
		}
		return fmt.Errorf("relation: sharded writer failed before Close: %w", sw.writeErr)
	}
	if err := sw.finishShard(); err != nil {
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s %d\n", shardManifestMagic, ShardManifestVersion)
	for _, e := range sw.entries {
		fmt.Fprintf(&b, "shard %d %s\n", e.rows, e.path)
	}
	tf, err := os.CreateTemp(sw.dir, filepath.Base(sw.manifestPath)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := tf.Name()
	shardPaths := append([]string(nil), sw.created...)
	sw.created = append(sw.created, tmp)
	if _, err := tf.WriteString(b.String()); err != nil {
		tf.Close()
		os.Remove(tmp)
		return err
	}
	if err := tf.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	// CreateTemp files are 0600; the manifest is data, not a secret, and
	// must carry exactly the mode of the shard files it points at (which
	// os.Create gave the user's umask-derived permissions).
	if err := os.Chmod(tmp, outputMode(shardPaths)); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, sw.manifestPath); err != nil {
		os.Remove(tmp)
		return err
	}
	sw.created = append(sw.created, sw.manifestPath)
	return nil
}

// CreatedPaths returns every file the writer has created so far —
// shard files, the manifest, and any leftover temp file — so failed
// conversions can clean up after themselves.
func (sw *ShardedWriter) CreatedPaths() []string { return sw.created }

// ConvertToSharded streams an open relation into a sharded relation at
// manifestPath with the given shard count and shard format version
// (0 selects v2). The destination must be FRESH: any pre-existing file
// among the planned outputs (the manifest or a shard name) is refused
// — a multi-file relation cannot be overwritten atomically the way
// ConvertFile's single temp-and-rename can, and creating the writer
// would truncate files in place (catastrophic when they alias the
// source being read, destructive even when they belong to an unrelated
// relation). A failed conversion removes everything it created — which
// the freshness check guarantees is only ever its own files — so no
// partial shard set is left behind.
func ConvertToSharded(src Relation, manifestPath string, shards, version int) error {
	if shards < 1 {
		return fmt.Errorf("relation: shard count %d must be positive", shards)
	}
	opts := ShardedWriterOptions{Shards: shards, TotalRows: src.NumTuples(), Format: version}
	if opts.Format == 0 {
		opts.Format = DiskFormatV2
	}
	rps, err := opts.rowsPerShard()
	if err != nil {
		return err
	}
	planned := []string{manifestPath}
	base := shardBaseName(manifestPath)
	numShards := 1
	if rps > 0 && src.NumTuples() > 0 {
		numShards = (src.NumTuples() + rps - 1) / rps
	}
	for i := 0; i < numShards; i++ {
		planned = append(planned, filepath.Join(filepath.Dir(manifestPath), shardFileName(base, i)))
	}
	for _, p := range planned {
		if _, err := os.Stat(p); err == nil {
			return fmt.Errorf("relation: sharded conversion destination %s already exists; remove it or choose a fresh path", p)
		} else if !os.IsNotExist(err) {
			return err
		}
	}
	sw, err := NewShardedWriter(manifestPath, src.Schema(), opts)
	if err != nil {
		return err
	}
	if err := appendAll(src, sw.Append); err != nil {
		if sw.cur != nil {
			sw.cur.Discard()
		}
		removeAll(sw.CreatedPaths())
		return err
	}
	if err := sw.Close(); err != nil {
		removeAll(sw.CreatedPaths())
		return err
	}
	return nil
}

// AppendOptions configures NewShardedAppender.
type AppendOptions struct {
	// RowsPerShard, when positive, starts a new appended shard every
	// RowsPerShard rows; 0 puts the whole appended stream in one new
	// shard.
	RowsPerShard int
	// Format is the new shards' file format version (DiskFormatV1,
	// DiskFormatV2, or DiskFormatV3); 0 selects the v2 default. Appended
	// shards may use a different format than the existing ones.
	Format int
	// GroupRows is the v2/v3 block-group size; 0 selects the default.
	GroupRows int
}

// ShardedAppender grows an EXISTING sharded relation: appended tuples
// stream into fresh shard files next to the manifest (continuing the
// <base>-sNNNNN.opr numbering past any name already on disk), and
// Close rewrites the manifest — existing lines verbatim, new `shard`
// lines added — through the same temp+rename discipline as
// ShardedWriter. A reader that opens (or Reopens) the manifest
// therefore sees either the old relation or the fully-committed grown
// one, never a partial append; existing shard files are never touched,
// so the old relation remains a valid prefix of the new one.
type ShardedAppender struct {
	manifestPath string
	dir          string
	base         string
	schema       Schema
	format       int
	groupRows    int
	rowsPerShard int
	existing     []shardManifestEntry
	nextIdx      int // shard file number for the next started shard
	cur          *DiskWriter
	curRows      int
	rows         int
	newEntries   []shardManifestEntry
	created      []string
	closed       bool
	closeErr     error
	// writeErr latches a failed rollover, like ShardedWriter: rows are
	// lost, so later Appends and Close must fail rather than commit.
	writeErr error
}

// NewShardedAppender opens the manifest at manifestPath for appending.
// The manifest's schema (shard 0's) becomes the appender's schema;
// callers must append tuples of exactly that schema.
func NewShardedAppender(manifestPath string, opts AppendOptions) (*ShardedAppender, error) {
	entries, err := readShardManifest(manifestPath)
	if err != nil {
		return nil, err
	}
	dr, err := OpenDisk(entries[0].path)
	if err != nil {
		return nil, fmt.Errorf("relation: %s: shard 0: %w", manifestPath, err)
	}
	schema := dr.Schema()
	dr.Close()
	format := opts.Format
	if format == 0 {
		format = DiskFormatV2
	}
	if format != DiskFormatV1 && format != DiskFormatV2 && format != DiskFormatV3 {
		return nil, fmt.Errorf("relation: unknown disk format version %d", format)
	}
	sa := &ShardedAppender{
		manifestPath: manifestPath,
		dir:          filepath.Dir(manifestPath),
		base:         shardBaseName(manifestPath),
		schema:       schema,
		format:       format,
		groupRows:    opts.GroupRows,
		rowsPerShard: opts.RowsPerShard,
		existing:     entries,
		nextIdx:      len(entries),
	}
	// Continue the numbering past any existing file: a relation written
	// with custom shard names, or grown and partially cleaned up, may
	// hold base-named files beyond len(entries). Never truncate one.
	for {
		p := filepath.Join(sa.dir, shardFileName(sa.base, sa.nextIdx))
		if _, err := os.Stat(p); err == nil {
			sa.nextIdx++
			continue
		} else if !os.IsNotExist(err) {
			return nil, err
		}
		break
	}
	return sa, nil
}

// Schema returns the relation's schema, for callers validating their
// rows before appending.
func (sa *ShardedAppender) Schema() Schema { return sa.schema }

// Rows returns the number of tuples appended so far.
func (sa *ShardedAppender) Rows() int { return sa.rows }

// startShard opens the next appended shard file. The first shard is
// started lazily by Append, so a zero-row appender Closes without
// touching the manifest or the directory.
func (sa *ShardedAppender) startShard() error {
	name := shardFileName(sa.base, sa.nextIdx)
	path := filepath.Join(sa.dir, name)
	var dw *DiskWriter
	var err error
	switch sa.format {
	case DiskFormatV2:
		dw, err = NewDiskWriterV2(path, sa.schema, sa.groupRows)
	case DiskFormatV3:
		dw, err = NewDiskWriterV3(path, sa.schema, sa.groupRows)
	default:
		dw, err = NewDiskWriter(path, sa.schema)
	}
	if err != nil {
		return err
	}
	sa.cur = dw
	sa.curRows = 0
	sa.nextIdx++
	sa.created = append(sa.created, path)
	return nil
}

// finishShard closes the current shard and records its manifest entry
// (relative path: appended shards always live beside the manifest).
func (sa *ShardedAppender) finishShard() error {
	if err := sa.cur.Close(); err != nil {
		return err
	}
	name := shardFileName(sa.base, sa.nextIdx-1)
	sa.newEntries = append(sa.newEntries, shardManifestEntry{rows: sa.curRows, path: filepath.Join(sa.dir, name), raw: name})
	sa.cur = nil
	return nil
}

// Append writes one tuple (same contract as DiskWriter.Append),
// rolling to a new shard file when RowsPerShard fills the current one.
func (sa *ShardedAppender) Append(nums []float64, bools []bool) error {
	if sa.closed {
		return fmt.Errorf("relation: append to closed ShardedAppender")
	}
	if sa.writeErr != nil {
		return sa.writeErr
	}
	if sa.cur == nil || (sa.rowsPerShard > 0 && sa.curRows == sa.rowsPerShard) {
		if sa.cur != nil {
			if err := sa.finishShard(); err != nil {
				sa.writeErr = err
				return err
			}
		}
		if err := sa.startShard(); err != nil {
			sa.writeErr = err
			return err
		}
	}
	if err := sa.cur.Append(nums, bools); err != nil {
		return err
	}
	sa.curRows++
	sa.rows++
	return nil
}

// Close finalizes the appended shards and commits the grown manifest
// via temp+rename. Closing with zero appended rows is a no-op success:
// the manifest is left byte-identical. A failed Close is sticky.
func (sa *ShardedAppender) Close() error {
	if sa.closed {
		return sa.closeErr
	}
	sa.closed = true
	sa.closeErr = sa.commit()
	return sa.closeErr
}

// commit is Close's one-shot body.
func (sa *ShardedAppender) commit() error {
	if sa.writeErr != nil {
		if sa.cur != nil {
			sa.cur.Discard()
			sa.cur = nil
		}
		return fmt.Errorf("relation: sharded appender failed before Close: %w", sa.writeErr)
	}
	if sa.cur != nil {
		if err := sa.finishShard(); err != nil {
			return err
		}
	}
	if len(sa.newEntries) == 0 {
		return nil // nothing appended: manifest untouched
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s %d\n", shardManifestMagic, ShardManifestVersion)
	for _, e := range sa.existing {
		fmt.Fprintf(&b, "shard %d %s\n", e.rows, e.raw)
	}
	for _, e := range sa.newEntries {
		fmt.Fprintf(&b, "shard %d %s\n", e.rows, e.raw)
	}
	tf, err := os.CreateTemp(sa.dir, filepath.Base(sa.manifestPath)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := tf.Name()
	sa.created = append(sa.created, tmp)
	if _, err := tf.WriteString(b.String()); err != nil {
		tf.Close()
		os.Remove(tmp)
		return err
	}
	if err := tf.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	// Match the manifest's own existing mode (CreateTemp files are 0600).
	if err := os.Chmod(tmp, outputMode([]string{sa.manifestPath})); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, sa.manifestPath); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// CreatedPaths returns every file the appender created so far (new
// shard files and any leftover temp manifest), so a failed append can
// clean up after itself — the original relation's files are never in
// this list.
func (sa *ShardedAppender) CreatedPaths() []string { return sa.created }

// AppendToSharded streams every tuple of src onto the end of the
// sharded relation at manifestPath. The source schema must equal the
// relation's schema exactly (names and kinds, in order) — mismatches
// are refused before any file is created. On any error the appended
// shard files are removed and the manifest is left as it was, so the
// relation either grows by all of src or not at all.
func AppendToSharded(manifestPath string, src Relation, opts AppendOptions) (rows int, err error) {
	sa, err := NewShardedAppender(manifestPath, opts)
	if err != nil {
		return 0, err
	}
	if !sameSchema(sa.Schema(), src.Schema()) {
		return 0, fmt.Errorf("relation: append schema %v does not match %s schema %v",
			src.Schema().Names(), manifestPath, sa.Schema().Names())
	}
	if err := appendAll(src, sa.Append); err != nil {
		if sa.cur != nil {
			sa.cur.Discard()
		}
		removeAll(sa.CreatedPaths())
		return 0, err
	}
	if err := sa.Close(); err != nil {
		removeAll(sa.CreatedPaths())
		return 0, err
	}
	return sa.Rows(), nil
}

// storagePathsOf returns the files backing rel, when it declares them.
func storagePathsOf(rel Relation) []string {
	if fb, ok := rel.(interface{ StoragePaths() []string }); ok {
		return fb.StoragePaths()
	}
	return nil
}

// removeAll best-effort removes the given paths.
func removeAll(paths []string) {
	for _, p := range paths {
		os.Remove(p)
	}
}

// appendAll streams every tuple of src into emit, in storage order.
func appendAll(src Relation, emit func(nums []float64, bools []bool) error) error {
	s := src.Schema()
	cols := ColumnSet{Numeric: s.NumericIndices(), Bool: s.BooleanIndices()}
	nums := make([]float64, len(cols.Numeric))
	bools := make([]bool, len(cols.Bool))
	return src.Scan(cols, func(b *Batch) error {
		for row := 0; row < b.Len; row++ {
			for k := range nums {
				nums[k] = b.Numeric[k][row]
			}
			for k := range bools {
				bools[k] = b.Bool[k][row]
			}
			if err := emit(nums, bools); err != nil {
				return err
			}
		}
		return nil
	})
}
