package relation

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Sharded relations: one LOGICAL relation backed by an ordered list of
// shard files (each a self-contained v1, v2, or v3 relation file) plus a
// small versioned manifest. The global row order is the concatenation
// of the shards in manifest order, so a sharded relation holding the
// same tuple stream as a single file is indistinguishable to the miner
// — samples, boundaries, counts, and therefore rules are identical.
//
// Sharding is the horizontal decomposition that breaks the single-file
// / single-spindle ceiling: each shard can live on its own disk (or
// eventually its own node), each shard sub-scan runs its own
// double-buffered read-ahead pipeline, and the parallel counting
// engines split work at shard boundaries so workers never contend for
// one file. Per-shard state stays bounded no matter how large the
// logical relation grows.
//
// Manifest format (text, line-oriented, version negotiated):
//
//	OPTSHARD 1
//	shard <rows> <path>
//	shard <rows> <path>
//	...
//
// Paths are resolved relative to the manifest's directory unless
// absolute; <rows> is the shard's declared tuple count and is
// cross-checked against the shard file's own header on open, so a
// manifest that drifted from its shards fails loudly instead of
// serving misaligned global row numbers. Blank lines and lines
// starting with '#' are ignored. All shards must share one schema
// (same attribute names and kinds, in the same order); shards may mix
// on-disk format versions freely — a relation can be grown with v2 or
// v3 shards while old v1 shards stay in place.

const (
	// ShardManifestVersion is the current manifest format version.
	ShardManifestVersion = 1
	// shardManifestMagic is the first token of every manifest.
	shardManifestMagic = "OPTSHARD"
	// maxManifestBytes bounds manifest reads so a hostile file cannot
	// demand an absurd allocation.
	maxManifestBytes = 1 << 20
	// maxManifestShards bounds the declared shard count.
	maxManifestShards = 1 << 16
	// shardScanDepth is the number of copied batches in flight per shard
	// prefetcher during a concurrent scan (double buffering: the
	// consumer's current batch plus one being filled).
	shardScanDepth = 2
)

// errShardStop aborts shard sub-scans when a concurrent scan is torn
// down early (consumer error or early abort).
var errShardStop = errors.New("relation: shard scan stopped")

// DataRelation is the full storage surface shared by the disk-backed
// backends — the single-file DiskRelation and the ShardedRelation —
// so callers (cmd/optdata, experiments) can treat either uniformly:
// range scans, point reads, segment-alignment hints, the counted
// BytesRead cost model, and resource release.
type DataRelation interface {
	RangeScanner
	NumericPointReader
	ScanAligner
	BytesRead() int64
	ResetBytesRead()
	Close() error
}

var (
	_ DataRelation = (*DiskRelation)(nil)
	_ DataRelation = (*ShardedRelation)(nil)
)

// ShardedRelation is a Relation backed by an ordered list of shard
// files; see the package comment above for the manifest format and the
// global row-order contract. Open one with OpenSharded.
type ShardedRelation struct {
	manifestPath string
	schema       Schema
	shards       []*DiskRelation
	paths        []string // resolved shard paths, manifest order
	starts       []int    // starts[i] = global row of shard i's first tuple; len(shards)+1 entries
	numRows      int
	// scanAhead > 1 enables concurrent sub-scans: Scan/ScanRange runs up
	// to scanAhead shards' scans at once, each with its own prefetcher,
	// delivering batches in global row order. See SetConcurrentScans.
	scanAhead int

	// ops mirrors DiskRelation.ops: scans and point reads hold the read
	// lock so Close can refuse with ErrBusy instead of tearing down
	// shard mappings under an in-flight operation.
	ops sync.RWMutex
}

// shardManifestEntry is one parsed manifest line.
type shardManifestEntry struct {
	rows int
	path string
}

// parseShardManifest parses and validates manifest text (not the shard
// files themselves). dir is the manifest's directory, against which
// relative shard paths are resolved.
func parseShardManifest(name string, data []byte, dir string) ([]shardManifestEntry, error) {
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	if !sc.Scan() {
		return nil, fmt.Errorf("relation: %s: empty shard manifest", name)
	}
	header := strings.Fields(sc.Text())
	if len(header) != 2 || header[0] != shardManifestMagic {
		return nil, fmt.Errorf("relation: %s is not a shard manifest", name)
	}
	version, err := strconv.Atoi(header[1])
	if err != nil || version != ShardManifestVersion {
		return nil, fmt.Errorf("relation: %s: unsupported shard manifest version %q", name, header[1])
	}
	var entries []shardManifestEntry
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		// "shard <rows> <path>"; the path is the remainder of the line, so
		// it may contain spaces.
		fields := strings.SplitN(text, " ", 3)
		if len(fields) != 3 || fields[0] != "shard" {
			return nil, fmt.Errorf("relation: %s:%d: malformed manifest line %q", name, line, text)
		}
		rows, err := strconv.Atoi(fields[1])
		if err != nil || rows < 0 {
			return nil, fmt.Errorf("relation: %s:%d: bad shard row count %q", name, line, fields[1])
		}
		path := strings.TrimSpace(fields[2])
		if path == "" {
			return nil, fmt.Errorf("relation: %s:%d: empty shard path", name, line)
		}
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, path)
		}
		entries = append(entries, shardManifestEntry{rows: rows, path: path})
		if len(entries) > maxManifestShards {
			return nil, fmt.Errorf("relation: %s: more than %d shards", name, maxManifestShards)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("relation: %s: reading manifest: %w", name, err)
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("relation: %s: shard manifest lists no shards", name)
	}
	return entries, nil
}

// sameSchema reports whether two schemas are identical (names and kinds
// in the same order).
func sameSchema(a, b Schema) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// OpenSharded opens a sharded relation from its manifest: every listed
// shard file is opened (format version negotiated per shard) and
// cross-checked — declared row counts against the shard headers,
// schemas for exact equality across shards — before any row is served,
// so a corrupt or drifted manifest fails at open, not mid-scan.
func OpenSharded(manifestPath string) (*ShardedRelation, error) {
	st, err := os.Stat(manifestPath)
	if err != nil {
		return nil, err
	}
	if st.Size() > maxManifestBytes {
		return nil, fmt.Errorf("relation: %s: implausible %d-byte shard manifest", manifestPath, st.Size())
	}
	data, err := os.ReadFile(manifestPath)
	if err != nil {
		return nil, err
	}
	entries, err := parseShardManifest(manifestPath, data, filepath.Dir(manifestPath))
	if err != nil {
		return nil, err
	}
	sr := &ShardedRelation{
		manifestPath: manifestPath,
		shards:       make([]*DiskRelation, 0, len(entries)),
		paths:        make([]string, 0, len(entries)),
		starts:       make([]int, 1, len(entries)+1),
	}
	ok := false
	defer func() {
		if !ok {
			sr.Close()
		}
	}()
	for i, e := range entries {
		dr, err := OpenDisk(e.path)
		if err != nil {
			return nil, fmt.Errorf("relation: %s: shard %d: %w", manifestPath, i, err)
		}
		sr.shards = append(sr.shards, dr)
		sr.paths = append(sr.paths, e.path)
		if dr.NumTuples() != e.rows {
			return nil, fmt.Errorf("relation: %s: shard %d (%s) holds %d rows, manifest declares %d",
				manifestPath, i, e.path, dr.NumTuples(), e.rows)
		}
		if i == 0 {
			sr.schema = dr.Schema()
		} else if !sameSchema(sr.schema, dr.Schema()) {
			return nil, fmt.Errorf("relation: %s: shard %d (%s) schema %v differs from shard 0 schema %v",
				manifestPath, i, e.path, dr.Schema().Names(), sr.schema.Names())
		}
		sr.numRows += e.rows
		sr.starts = append(sr.starts, sr.numRows)
	}
	ok = true
	return sr, nil
}

// Schema implements Relation.
func (sr *ShardedRelation) Schema() Schema { return sr.schema }

// NumTuples implements Relation.
func (sr *ShardedRelation) NumTuples() int { return sr.numRows }

// NumShards returns the number of shard files backing the relation.
func (sr *ShardedRelation) NumShards() int { return len(sr.shards) }

// ShardStarts returns the global row offset of each shard's first
// tuple plus a final NumTuples entry (len NumShards()+1, monotone
// non-decreasing) — the natural task boundaries for a scatter-gather
// coordinator assigning one worker per shard.
func (sr *ShardedRelation) ShardStarts() []int {
	return append([]int(nil), sr.starts...)
}

// ManifestPath returns the path the relation was opened from.
func (sr *ShardedRelation) ManifestPath() string { return sr.manifestPath }

// StoragePaths returns every file backing the relation: the manifest,
// then the shard files in manifest order. Conversion helpers use it to
// refuse writing a destination onto one of its own sources.
func (sr *ShardedRelation) StoragePaths() []string {
	out := make([]string, 0, len(sr.paths)+1)
	out = append(out, sr.manifestPath)
	return append(out, sr.paths...)
}

// SetConcurrentScans configures how many shard sub-scans a single
// Scan/ScanRange call may run at once. ahead <= 1 (the default) scans
// shards serially in manifest order — fully deterministic, including
// the counted BytesRead of early-aborted scans. ahead > 1 runs up to
// that many shards' scans concurrently in a sliding window, each with
// its own double-buffered prefetcher, delivering batches to the
// callback in global row order; tuple delivery is identical to the
// serial scan, but a scan the callback aborts early may have read (and
// counted) up to the window's read-ahead beyond the abort point.
// Not safe to call concurrently with in-flight scans.
func (sr *ShardedRelation) SetConcurrentScans(ahead int) {
	sr.scanAhead = ahead
}

// BytesRead sums the counted payload bytes delivered from disk across
// all shards since open (or the last ResetBytesRead). Safe for
// concurrent use.
func (sr *ShardedRelation) BytesRead() int64 {
	var total int64
	for _, sh := range sr.shards {
		total += sh.BytesRead()
	}
	return total
}

// ResetBytesRead zeroes every shard's BytesRead counter.
func (sr *ShardedRelation) ResetBytesRead() {
	for _, sh := range sr.shards {
		sh.ResetBytesRead()
	}
}

// Close releases every shard's resources (point-read mappings). Shards
// stay usable afterwards via positioned reads, like DiskRelation.Close.
// Calling Close while scans or point reads are in flight on the
// sharded relation returns ErrBusy and releases nothing.
func (sr *ShardedRelation) Close() error {
	if !sr.ops.TryLock() {
		return fmt.Errorf("relation: %s: %w", sr.manifestPath, ErrBusy)
	}
	defer sr.ops.Unlock()
	var first error
	for _, sh := range sr.shards {
		if err := sh.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ScanAlignment implements ScanAligner with the coarsest storage unit
// of any shard (a v2 shard's block-group size, 1 for all-v1 shards).
// For sharded relations the value is a granularity hint only —
// AlignedSegments places the actual cuts through SnapSegment, because
// shard boundaries fall at arbitrary global offsets and each shard's
// group grid is phased to the shard's own first row.
func (sr *ShardedRelation) ScanAlignment() int {
	g := 1
	for _, sh := range sr.shards {
		if a := sh.ScanAlignment(); a > g {
			g = a
		}
	}
	return g
}

// shardAt returns the index of the shard containing global row, for
// row in [0, numRows). Empty shards never contain a row and are
// skipped naturally.
func (sr *ShardedRelation) shardAt(row int) int {
	// First i with starts[i] >= row+1, minus one: starts[i] <= row < starts[i+1].
	return sort.SearchInts(sr.starts, row+1) - 1
}

// SnapSegment implements SegmentSnapper: the proposed cut is rounded to
// the nearest preferred boundary — a multiple of the containing shard's
// block-group size measured from that shard's first row, clamped to the
// shard's own bounds (shard boundaries are themselves always preferred
// cuts, since every shard starts a fresh group grid). Workers given
// AlignedSegments built from these cuts therefore never split a
// shard's block group.
func (sr *ShardedRelation) SnapSegment(cut int) int {
	if cut <= 0 {
		return 0
	}
	if cut >= sr.numRows {
		return sr.numRows
	}
	i := sr.shardAt(cut)
	align := sr.shards[i].ScanAlignment()
	if align <= 1 {
		return cut
	}
	local := cut - sr.starts[i]
	snapped := (local + align/2) / align * align
	if max := sr.starts[i+1] - sr.starts[i]; snapped > max {
		snapped = max
	}
	return sr.starts[i] + snapped
}

// Scan implements Relation by streaming every shard in manifest order.
func (sr *ShardedRelation) Scan(cols ColumnSet, fn func(*Batch) error) error {
	return sr.ScanRange(0, sr.numRows, cols, fn)
}

// ScanRange implements RangeScanner: the global row range [start, end)
// is translated into per-shard sub-ranges and streamed shard by shard
// in global row order. With SetConcurrentScans(n > 1), up to n shards'
// sub-scans run at once (each with its own read-ahead pipeline) while
// batches are still delivered to fn in row order. Bounds semantics are
// identical to the other backends: start/end outside [0, NumTuples()]
// or start > end error; start == end scans nothing.
func (sr *ShardedRelation) ScanRange(start, end int, cols ColumnSet, fn func(*Batch) error) error {
	sr.ops.RLock()
	defer sr.ops.RUnlock()
	if err := cols.Validate(sr.schema); err != nil {
		return err
	}
	if start < 0 || end > sr.numRows || start > end {
		return fmt.Errorf("relation: scan range [%d,%d) out of [0,%d)", start, end, sr.numRows)
	}
	if start == end {
		return nil
	}
	first, last := sr.shardAt(start), sr.shardAt(end-1)
	if sr.scanAhead > 1 && first < last {
		return sr.scanRangeConcurrent(start, end, first, last, cols, fn)
	}
	for i := first; i <= last; i++ {
		lo, hi := sr.shardRange(i, start, end)
		if lo >= hi {
			continue // empty shard inside the window
		}
		if err := sr.shards[i].ScanRange(lo, hi, cols, fn); err != nil {
			return err
		}
	}
	return nil
}

// ScanRangePruned implements PrunedRangeScanner by delegating to each
// shard in the window: v3 shards prune through their zone maps, v1/v2
// shards deliver everything — so a mixed-format relation prunes
// exactly where its storage can. The concurrent multi-shard pipeline
// (SetConcurrentScans > 1) has no pruned variant and falls back to the
// plain concurrent scan: still correct (pruning is an optimization,
// never a filter), just without the skip savings.
func (sr *ShardedRelation) ScanRangePruned(start, end int, cols ColumnSet, pred *Predicate, skip func(rows int) error, fn func(*Batch) error) error {
	sr.ops.RLock()
	defer sr.ops.RUnlock()
	if err := cols.Validate(sr.schema); err != nil {
		return err
	}
	if err := pred.Validate(sr.schema); err != nil {
		return err
	}
	if start < 0 || end > sr.numRows || start > end {
		return fmt.Errorf("relation: scan range [%d,%d) out of [0,%d)", start, end, sr.numRows)
	}
	if start == end {
		return nil
	}
	first, last := sr.shardAt(start), sr.shardAt(end-1)
	if sr.scanAhead > 1 && first < last {
		return sr.scanRangeConcurrent(start, end, first, last, cols, fn)
	}
	for i := first; i <= last; i++ {
		lo, hi := sr.shardRange(i, start, end)
		if lo >= hi {
			continue // empty shard inside the window
		}
		if err := sr.shards[i].ScanRangePruned(lo, hi, cols, pred, skip, fn); err != nil {
			return err
		}
	}
	return nil
}

// shardRange clips the global range [start, end) to shard i's rows and
// translates it to shard-local coordinates.
func (sr *ShardedRelation) shardRange(i, start, end int) (lo, hi int) {
	lo, hi = 0, sr.starts[i+1]-sr.starts[i]
	if s := start - sr.starts[i]; s > lo {
		lo = s
	}
	if e := end - sr.starts[i]; e < hi {
		hi = e
	}
	return lo, hi
}

// shardBatch carries one copied batch from a shard prefetcher to the
// in-order consumer of a concurrent scan. Slices are owned by the
// batch and recycled through the stream's free list.
type shardBatch struct {
	len     int
	numeric [][]float64
	bools   [][]bool
	err     error
}

// shardStream is one shard's asynchronous sub-scan: out delivers
// filled batches in shard row order; free returns consumed batches to
// the producer for reuse, bounding the stream at shardScanDepth
// buffers regardless of shard size.
type shardStream struct {
	out  chan *shardBatch
	free chan *shardBatch
}

// startShardStream launches shard i's sub-scan of local rows [lo, hi)
// as a producer goroutine. The producer copies each scan batch into an
// owned buffer (the underlying scan reuses its batches) and blocks on
// the free list, so at most shardScanDepth copies exist per shard. A
// closed stop channel tears the producer down on any consumer exit
// path.
func (sr *ShardedRelation) startShardStream(i, lo, hi int, cols ColumnSet, stop <-chan struct{}) *shardStream {
	st := &shardStream{
		out:  make(chan *shardBatch, shardScanDepth),
		free: make(chan *shardBatch, shardScanDepth),
	}
	for j := 0; j < shardScanDepth; j++ {
		st.free <- nil // allocated lazily by the producer
	}
	sh := sr.shards[i]
	go func() {
		defer close(st.out)
		err := sh.ScanRange(lo, hi, cols, func(b *Batch) error {
			var sb *shardBatch
			select {
			case sb = <-st.free:
			case <-stop:
				return errShardStop
			}
			if sb == nil {
				sb = &shardBatch{
					numeric: make([][]float64, len(cols.Numeric)),
					bools:   make([][]bool, len(cols.Bool)),
				}
			}
			sb.len = b.Len
			for k := range b.Numeric {
				sb.numeric[k] = append(sb.numeric[k][:0], b.Numeric[k][:b.Len]...)
			}
			for k := range b.Bool {
				sb.bools[k] = append(sb.bools[k][:0], b.Bool[k][:b.Len]...)
			}
			select {
			case st.out <- sb:
			case <-stop:
				return errShardStop
			}
			return nil
		})
		if err != nil && err != errShardStop {
			select {
			case st.out <- &shardBatch{err: err}:
			case <-stop:
			}
		}
	}()
	return st
}

// scanRangeConcurrent is ScanRange's multi-shard pipeline: a sliding
// window of scanAhead shard sub-scans runs concurrently — shard i is
// consumed in order while shards i+1..i+scanAhead-1 prefetch — so the
// next shard's disk reads overlap the current shard's decode-and-count
// work, and on multi-disk layouts the spindles stream in parallel.
// Memory stays bounded at scanAhead × shardScanDepth copied batches.
func (sr *ShardedRelation) scanRangeConcurrent(start, end, first, last int, cols ColumnSet, fn func(*Batch) error) error {
	stop := make(chan struct{})
	defer close(stop) // tears down every launched producer on any exit
	streams := make([]*shardStream, last-first+1)
	launch := func(i int) {
		if i > last {
			return
		}
		lo, hi := sr.shardRange(i, start, end)
		streams[i-first] = sr.startShardStream(i, lo, hi, cols, stop)
	}
	for i := first; i < first+sr.scanAhead && i <= last; i++ {
		launch(i)
	}
	batch := &Batch{
		Numeric: make([][]float64, len(cols.Numeric)),
		Bool:    make([][]bool, len(cols.Bool)),
	}
	for i := first; i <= last; i++ {
		for sb := range streams[i-first].out {
			if sb.err != nil {
				return sb.err
			}
			batch.Len = sb.len
			copy(batch.Numeric, sb.numeric)
			copy(batch.Bool, sb.bools)
			if err := fn(batch); err != nil {
				return err
			}
			select {
			case streams[i-first].free <- sb:
			default:
			}
		}
		launch(i + sr.scanAhead)
	}
	return nil
}

// ReadNumericPoints implements NumericPointReader across shards: the
// sorted global rows are split into per-shard runs and each run is
// served by that shard's own point reader (mmap-backed where
// available), preserving the 8-bytes-per-unique-row counted cost.
func (sr *ShardedRelation) ReadNumericPoints(attr int, rows []int, out []float64) error {
	sr.ops.RLock()
	defer sr.ops.RUnlock()
	if attr < 0 || attr >= len(sr.schema) || sr.schema[attr].Kind != Numeric {
		return fmt.Errorf("relation: point read attribute %d is not a numeric column", attr)
	}
	if len(out) != len(rows) {
		return fmt.Errorf("relation: %d rows but %d outputs", len(rows), len(out))
	}
	for i, row := range rows {
		if row < 0 || row >= sr.numRows {
			return fmt.Errorf("relation: point read row %d out of [0,%d)", row, sr.numRows)
		}
		if i > 0 && row < rows[i-1] {
			return fmt.Errorf("relation: point read rows not sorted at %d", i)
		}
	}
	if len(rows) == 0 {
		return nil
	}
	local := make([]int, 0, len(rows))
	for j := 0; j < len(rows); {
		i := sr.shardAt(rows[j])
		hi := sr.starts[i+1]
		k := j
		local = local[:0]
		for k < len(rows) && rows[k] < hi {
			local = append(local, rows[k]-sr.starts[i])
			k++
		}
		if err := sr.shards[i].ReadNumericPoints(attr, local, out[j:k]); err != nil {
			return err
		}
		j = k
	}
	return nil
}

// IsShardManifest reports whether the file at path begins with the
// shard-manifest magic — the cheap sniff OpenData uses to dispatch
// between the single-file and sharded backends.
func IsShardManifest(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	buf := make([]byte, len(shardManifestMagic))
	n := sniffPrefix(f, buf)
	return string(buf[:n]) == shardManifestMagic, nil
}

// OpenData opens either disk backend at path, sniffing the file's
// magic: a shard manifest opens as a ShardedRelation, anything else is
// handed to OpenDisk.
func OpenData(path string) (DataRelation, error) {
	isManifest, err := IsShardManifest(path)
	if err != nil {
		return nil, err
	}
	if isManifest {
		return OpenSharded(path)
	}
	return OpenDisk(path)
}

// ShardedWriterOptions configures NewShardedWriter. Exactly one
// splitting policy must be chosen; both split the append stream into
// CONTIGUOUS runs (shard 0 holds the first rows, shard 1 the next, …)
// because global row order is the mining contract — a sharded relation
// must be tuple-for-tuple identical to the same stream written to one
// file, or samples, boundaries, and rules would silently change.
type ShardedWriterOptions struct {
	// RowsPerShard, when positive, starts a new shard every RowsPerShard
	// rows (size-based splitting, for streams of unknown length).
	RowsPerShard int
	// Shards, when positive, targets that many shards for an expected
	// TotalRows tuples (count-based splitting): rows per shard is
	// ceil(TotalRows/Shards). Appending beyond TotalRows keeps splitting
	// at the same size, growing extra shards.
	Shards int
	// TotalRows is the expected tuple count for count-based splitting.
	TotalRows int
	// Format is the shard file format version (DiskFormatV1,
	// DiskFormatV2, or DiskFormatV3); 0 selects the v2 default.
	Format int
	// GroupRows is the v2/v3 block-group size; 0 selects the default.
	GroupRows int
}

// rowsPerShard resolves the splitting policy.
func (o ShardedWriterOptions) rowsPerShard() (int, error) {
	switch {
	case o.RowsPerShard > 0 && o.Shards > 0:
		return 0, fmt.Errorf("relation: sharded writer: set RowsPerShard or Shards, not both")
	case o.RowsPerShard > 0:
		return o.RowsPerShard, nil
	case o.Shards > 0:
		if o.TotalRows < 0 {
			return 0, fmt.Errorf("relation: sharded writer: negative TotalRows %d", o.TotalRows)
		}
		rps := (o.TotalRows + o.Shards - 1) / o.Shards
		if rps < 1 {
			rps = 1
		}
		return rps, nil
	default:
		return 0, fmt.Errorf("relation: sharded writer needs RowsPerShard or Shards")
	}
}

// ShardedWriter streams tuples into a sharded relation: shard files are
// written next to the manifest path (named <base>-s00000.opr,
// <base>-s00001.opr, …), a new shard starting whenever the splitting
// policy says so, and the manifest itself is written last — to a temp
// file renamed into place on Close, so a crashed or failed write never
// leaves a manifest pointing at missing or short shards.
type ShardedWriter struct {
	manifestPath string
	dir          string
	base         string
	schema       Schema
	format       int
	groupRows    int
	rowsPerShard int
	cur          *DiskWriter
	curRows      int
	rows         int
	entries      []shardManifestEntry // closed shards, base-named paths
	created      []string             // every file this writer created
	closed       bool
	closeErr     error // sticky result of the first Close
	// writeErr latches a failed shard rollover: the writer has lost rows
	// (a shard closed but its successor was never created), so every
	// later Append and the final Close must fail rather than commit a
	// manifest that silently drops the tail of the stream.
	writeErr error
}

// NewShardedWriter creates a sharded relation rooted at manifestPath
// (conventionally *.oprs). The first shard file is created eagerly so
// an immediately-Closed writer still yields a valid empty relation.
func NewShardedWriter(manifestPath string, schema Schema, opts ShardedWriterOptions) (*ShardedWriter, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	rps, err := opts.rowsPerShard()
	if err != nil {
		return nil, err
	}
	format := opts.Format
	if format == 0 {
		format = DiskFormatV2
	}
	if format != DiskFormatV1 && format != DiskFormatV2 && format != DiskFormatV3 {
		return nil, fmt.Errorf("relation: unknown disk format version %d", format)
	}
	sw := &ShardedWriter{
		manifestPath: manifestPath,
		dir:          filepath.Dir(manifestPath),
		base:         shardBaseName(manifestPath),
		schema:       schema,
		format:       format,
		groupRows:    opts.GroupRows,
		rowsPerShard: rps,
	}
	if err := sw.startShard(); err != nil {
		return nil, err
	}
	return sw, nil
}

// shardBaseName derives the shard files' name stem from the manifest
// path (its base with the extension stripped).
func shardBaseName(manifestPath string) string {
	base := filepath.Base(manifestPath)
	if ext := filepath.Ext(base); ext != "" {
		base = base[:len(base)-len(ext)]
	}
	return base
}

// shardFileName returns the base name of shard i for the given stem —
// the ONE place the naming scheme lives; the writer and the
// ConvertToSharded freshness pre-check both use it, so the check can
// never drift from the names the writer actually creates.
func shardFileName(base string, i int) string {
	return fmt.Sprintf("%s-s%05d.opr", base, i)
}

// shardName returns the base name of shard i.
func (sw *ShardedWriter) shardName(i int) string {
	return shardFileName(sw.base, i)
}

// startShard opens the next shard file.
func (sw *ShardedWriter) startShard() error {
	name := sw.shardName(len(sw.entries))
	path := filepath.Join(sw.dir, name)
	var dw *DiskWriter
	var err error
	switch sw.format {
	case DiskFormatV2:
		dw, err = NewDiskWriterV2(path, sw.schema, sw.groupRows)
	case DiskFormatV3:
		dw, err = NewDiskWriterV3(path, sw.schema, sw.groupRows)
	default:
		dw, err = NewDiskWriter(path, sw.schema)
	}
	if err != nil {
		return err
	}
	sw.cur = dw
	sw.curRows = 0
	sw.created = append(sw.created, path)
	return nil
}

// finishShard closes the current shard and records its manifest entry.
func (sw *ShardedWriter) finishShard() error {
	if err := sw.cur.Close(); err != nil {
		return err
	}
	sw.entries = append(sw.entries, shardManifestEntry{rows: sw.curRows, path: sw.shardName(len(sw.entries))})
	sw.cur = nil
	return nil
}

// Append writes one tuple (same contract as DiskWriter.Append),
// rolling over to a new shard file when the splitting policy fills the
// current one. A failed rollover is sticky: the writer has already
// lost its place in the stream, so later Appends and Close keep
// failing instead of committing a manifest with a silent gap.
func (sw *ShardedWriter) Append(nums []float64, bools []bool) error {
	if sw.closed {
		return fmt.Errorf("relation: append to closed ShardedWriter")
	}
	if sw.writeErr != nil {
		return sw.writeErr
	}
	if sw.curRows == sw.rowsPerShard {
		if err := sw.finishShard(); err != nil {
			sw.writeErr = err
			return err
		}
		if err := sw.startShard(); err != nil {
			sw.writeErr = err
			return err
		}
	}
	if err := sw.cur.Append(nums, bools); err != nil {
		return err
	}
	sw.curRows++
	sw.rows++
	return nil
}

// Close finalizes the last shard and writes the manifest (temp file in
// the manifest's directory, renamed into place), so readers only ever
// see a manifest whose shards are complete. A failed Close is sticky:
// repeated calls return the first error instead of a false success.
func (sw *ShardedWriter) Close() error {
	if sw.closed {
		return sw.closeErr
	}
	sw.closed = true
	sw.closeErr = sw.commit()
	return sw.closeErr
}

// commit is Close's one-shot body.
func (sw *ShardedWriter) commit() error {
	if sw.writeErr != nil {
		// A rollover already failed: refuse to commit a manifest missing
		// part of the stream, and release the current shard's handle.
		if sw.cur != nil {
			sw.cur.Discard()
			sw.cur = nil
		}
		return fmt.Errorf("relation: sharded writer failed before Close: %w", sw.writeErr)
	}
	if err := sw.finishShard(); err != nil {
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s %d\n", shardManifestMagic, ShardManifestVersion)
	for _, e := range sw.entries {
		fmt.Fprintf(&b, "shard %d %s\n", e.rows, e.path)
	}
	tf, err := os.CreateTemp(sw.dir, filepath.Base(sw.manifestPath)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := tf.Name()
	shardPaths := append([]string(nil), sw.created...)
	sw.created = append(sw.created, tmp)
	if _, err := tf.WriteString(b.String()); err != nil {
		tf.Close()
		os.Remove(tmp)
		return err
	}
	if err := tf.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	// CreateTemp files are 0600; the manifest is data, not a secret, and
	// must carry exactly the mode of the shard files it points at (which
	// os.Create gave the user's umask-derived permissions).
	if err := os.Chmod(tmp, outputMode(shardPaths)); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, sw.manifestPath); err != nil {
		os.Remove(tmp)
		return err
	}
	sw.created = append(sw.created, sw.manifestPath)
	return nil
}

// CreatedPaths returns every file the writer has created so far —
// shard files, the manifest, and any leftover temp file — so failed
// conversions can clean up after themselves.
func (sw *ShardedWriter) CreatedPaths() []string { return sw.created }

// ConvertToSharded streams an open relation into a sharded relation at
// manifestPath with the given shard count and shard format version
// (0 selects v2). The destination must be FRESH: any pre-existing file
// among the planned outputs (the manifest or a shard name) is refused
// — a multi-file relation cannot be overwritten atomically the way
// ConvertFile's single temp-and-rename can, and creating the writer
// would truncate files in place (catastrophic when they alias the
// source being read, destructive even when they belong to an unrelated
// relation). A failed conversion removes everything it created — which
// the freshness check guarantees is only ever its own files — so no
// partial shard set is left behind.
func ConvertToSharded(src Relation, manifestPath string, shards, version int) error {
	if shards < 1 {
		return fmt.Errorf("relation: shard count %d must be positive", shards)
	}
	opts := ShardedWriterOptions{Shards: shards, TotalRows: src.NumTuples(), Format: version}
	if opts.Format == 0 {
		opts.Format = DiskFormatV2
	}
	rps, err := opts.rowsPerShard()
	if err != nil {
		return err
	}
	planned := []string{manifestPath}
	base := shardBaseName(manifestPath)
	numShards := 1
	if rps > 0 && src.NumTuples() > 0 {
		numShards = (src.NumTuples() + rps - 1) / rps
	}
	for i := 0; i < numShards; i++ {
		planned = append(planned, filepath.Join(filepath.Dir(manifestPath), shardFileName(base, i)))
	}
	for _, p := range planned {
		if _, err := os.Stat(p); err == nil {
			return fmt.Errorf("relation: sharded conversion destination %s already exists; remove it or choose a fresh path", p)
		} else if !os.IsNotExist(err) {
			return err
		}
	}
	sw, err := NewShardedWriter(manifestPath, src.Schema(), opts)
	if err != nil {
		return err
	}
	if err := appendAll(src, sw.Append); err != nil {
		if sw.cur != nil {
			sw.cur.Discard()
		}
		removeAll(sw.CreatedPaths())
		return err
	}
	if err := sw.Close(); err != nil {
		removeAll(sw.CreatedPaths())
		return err
	}
	return nil
}

// storagePathsOf returns the files backing rel, when it declares them.
func storagePathsOf(rel Relation) []string {
	if fb, ok := rel.(interface{ StoragePaths() []string }); ok {
		return fb.StoragePaths()
	}
	return nil
}

// removeAll best-effort removes the given paths.
func removeAll(paths []string) {
	for _, p := range paths {
		os.Remove(p)
	}
}

// appendAll streams every tuple of src into emit, in storage order.
func appendAll(src Relation, emit func(nums []float64, bools []bool) error) error {
	s := src.Schema()
	cols := ColumnSet{Numeric: s.NumericIndices(), Bool: s.BooleanIndices()}
	nums := make([]float64, len(cols.Numeric))
	bools := make([]bool, len(cols.Bool))
	return src.Scan(cols, func(b *Batch) error {
		for row := 0; row < b.Len; row++ {
			for k := range nums {
				nums[k] = b.Numeric[k][row]
			}
			for k := range bools {
				bools[k] = b.Bool[k][row]
			}
			if err := emit(nums, bools); err != nil {
				return err
			}
		}
		return nil
	})
}
