package relation

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
)

// NumericPointReader is implemented by relations that can serve
// scattered point reads of one numeric column. The fused sampling
// phase uses it: Algorithm 3.1 needs only S = M·sampleFactor values
// per attribute, but the largest sorted sample index lands within a
// hair of the last row, so a "bounded" sequential scan reads and
// decodes essentially the whole column to deliver a few thousand
// values. Point reads fetch exactly the sampled cells — 8 bytes per
// sample in the counted-I/O cost model — which is the one access
// pattern where the paper's small-sorted-sample premise beats its
// sequential-scan premise.
//
// rows must be sorted ascending and may contain duplicates
// (with-replacement draws); out must have len(rows). Implementations
// deliver out[i] = column value at rows[i].
type NumericPointReader interface {
	ReadNumericPoints(attr int, rows []int, out []float64) error
}

// ReadNumericPoints implements NumericPointReader by direct column
// indexing.
func (r *MemoryRelation) ReadNumericPoints(attr int, rows []int, out []float64) error {
	// NumericColumn captures the column header under the relation's read
	// lock; rows beyond its captured length (concurrent appends) are out
	// of range for this call, matching NumTuples at capture time.
	col, err := r.NumericColumn(attr)
	if err != nil {
		return err
	}
	if len(out) != len(rows) {
		return fmt.Errorf("relation: %d rows but %d outputs", len(rows), len(out))
	}
	for i, row := range rows {
		if row < 0 || row >= len(col) {
			return fmt.Errorf("relation: point read row %d out of [0,%d)", row, len(col))
		}
		out[i] = col[row]
	}
	return nil
}

// validatePointRead checks the shared preconditions of the disk
// implementations.
func (dr *DiskRelation) validatePointRead(attr int, rows []int, out []float64) error {
	if attr < 0 || attr >= len(dr.schema) || dr.schema[attr].Kind != Numeric {
		return fmt.Errorf("relation: point read attribute %d is not a numeric column", attr)
	}
	if len(out) != len(rows) {
		return fmt.Errorf("relation: %d rows but %d outputs", len(rows), len(out))
	}
	for i, row := range rows {
		if row < 0 || row >= dr.numRows {
			return fmt.Errorf("relation: point read row %d out of [0,%d)", row, dr.numRows)
		}
		if i > 0 && row < rows[i-1] {
			return fmt.Errorf("relation: point read rows not sorted at %d", i)
		}
	}
	return nil
}

// ErrBusy is returned by Close when scans or point reads are still in
// flight on the relation: releasing the point-read mapping under a
// concurrent reader would be a use-after-unmap, so Close refuses with
// a defined error instead of racing. Callers retry after their
// operations drain; the relation is untouched.
var ErrBusy = errors.New("relation: close during active scan")

// Close releases resources the relation holds beyond per-scan file
// handles — today, the point-read memory mapping. It is safe to call
// on a relation that never served point reads, and the relation stays
// usable afterwards (subsequent point reads fall back to positioned
// reads). Calling Close while scans or point reads are in flight
// returns ErrBusy and releases nothing.
func (dr *DiskRelation) Close() error {
	if !dr.ops.TryLock() {
		return fmt.Errorf("relation: %s: %w", dr.path, ErrBusy)
	}
	defer dr.ops.Unlock()
	// Fire the map-once latch (a no-op if a point read already fired it)
	// so the mapping can never re-arm after Close: without this, a Close
	// that PRECEDES the first point read would leave mmapOnce cocked,
	// and a later ReadNumericPoints would map the file on a relation the
	// caller believes closed — a mapping nothing would ever release.
	dr.mmapOnce.Do(func() {})
	if dr.mmapData == nil {
		return nil
	}
	data := dr.mmapData
	dr.mmapData = nil
	return munmapFile(data)
}

// pointData lazily memory-maps the relation file for point reads,
// returning nil when mapping is unavailable (non-unix platforms, mmap
// failure, empty file) — callers then use positioned reads.
func (dr *DiskRelation) pointData() []byte {
	dr.mmapOnce.Do(func() {
		f, err := os.Open(dr.path)
		if err != nil {
			return
		}
		defer f.Close()
		if data, err := mmapFile(f); err == nil {
			dr.mmapData = data
		}
	})
	return dr.mmapData
}

// pointOffset returns the byte offset of the given row's value in the
// numeric column at dense position p: v1 has a fixed row stride; v2
// locates the group via the directory, then the column block within
// it.
func (dr *DiskRelation) pointOffset(p, row int) int64 {
	if dr.version == DiskFormatV2 {
		g := row / dr.groupRows
		gRows := dr.rowsInGroup(g)
		r := row - g*dr.groupRows
		return dr.groupOffs[g] + int64(p)*8*int64(gRows) + int64(r)*8
	}
	return dr.dataOff + int64(row)*int64(dr.rowSize) + int64(8*p)
}

// ReadNumericPoints implements NumericPointReader for all disk
// formats: the value's location is computable directly (v1: fixed row
// stride; v2: group directory plus the column block's position within
// the group; v3: O(1) bit arithmetic from the block's directory entry,
// never a block decode), so each unique row costs a handful of bytes —
// served from a lazily-created read-only mapping of the file when the
// platform supports it, or positioned reads otherwise. Duplicate rows
// are served from the previous value. BytesRead grows by a flat 8 per
// unique row in EVERY format — the counted cost model's point-read
// price, versus a whole column block per group for a scan — even
// though a v3 packed value physically touches fewer bytes.
func (dr *DiskRelation) ReadNumericPoints(attr int, rows []int, out []float64) error {
	dr.ops.RLock()
	defer dr.ops.RUnlock()
	if err := dr.validatePointRead(attr, rows, out); err != nil {
		return err
	}
	if len(rows) == 0 {
		return nil
	}
	p := dr.numPos[attr]
	if dr.version == DiskFormatV3 {
		return dr.readNumericPointsV3(p, rows, out)
	}
	read := 0
	if data := dr.pointData(); data != nil {
		for i, row := range rows {
			if i > 0 && row == rows[i-1] {
				out[i] = out[i-1] // with-replacement duplicate
				continue
			}
			off := dr.pointOffset(p, row)
			if off < 0 || off+8 > int64(len(data)) {
				return fmt.Errorf("relation: point read row %d of %s out of mapped range", row, dr.path)
			}
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
			read++
		}
		dr.bytesRead.Add(int64(read) * 8)
		return nil
	}
	f, err := os.Open(dr.path)
	if err != nil {
		return err
	}
	defer f.Close()
	var buf [8]byte
	for i, row := range rows {
		if i > 0 && row == rows[i-1] {
			out[i] = out[i-1] // with-replacement duplicate
			continue
		}
		if _, err := uncountedReadAt(f, buf[:], dr.pointOffset(p, row)); err != nil {
			return fmt.Errorf("relation: point read row %d of %s: %w", row, dr.path, err)
		}
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
		read++
	}
	dr.bytesRead.Add(int64(read) * 8)
	return nil
}

// readNumericPointsV3 serves point reads from a v3 file through
// v3PointValue's per-encoding partial decode, backed by the point-read
// mapping when available and positioned reads otherwise.
func (dr *DiskRelation) readNumericPointsV3(p int, rows []int, out []float64) error {
	var get func(off int64, dst []byte) error
	if data := dr.pointData(); data != nil {
		get = func(off int64, dst []byte) error {
			if off < 0 || off+int64(len(dst)) > int64(len(data)) {
				return fmt.Errorf("relation: point read of %s out of mapped range", dr.path)
			}
			copy(dst, data[off:])
			return nil
		}
	} else {
		f, err := os.Open(dr.path)
		if err != nil {
			return err
		}
		defer f.Close()
		get = func(off int64, dst []byte) error {
			if _, err := uncountedReadAt(f, dst, off); err != nil {
				return fmt.Errorf("relation: point read of %s: %w", dr.path, err)
			}
			return nil
		}
	}
	read := 0
	for i, row := range rows {
		if i > 0 && row == rows[i-1] {
			out[i] = out[i-1] // with-replacement duplicate
			continue
		}
		v, err := dr.v3PointValue(p, row, get)
		if err != nil {
			return err
		}
		out[i] = v
		read++
	}
	dr.bytesRead.Add(int64(read) * 8)
	return nil
}
