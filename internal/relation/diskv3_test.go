package relation

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTestFileV3 writes n pseudo-random tuples in v3 format with the
// given block-group size and returns the path plus the in-memory twin.
// The same (n, seed) passed to writeTestFile / writeTestFileV2 yields
// identical data in v1 / v2.
func writeTestFileV3(t *testing.T, n int, seed int64, groupRows int) (string, *MemoryRelation) {
	t.Helper()
	schema := bankSchema()
	path := filepath.Join(t.TempDir(), "data_v3.opr")
	dw, err := NewDiskWriterV3(path, schema, groupRows)
	if err != nil {
		t.Fatal(err)
	}
	mem := MustNewMemoryRelation(schema)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		nums := []float64{rng.Float64() * 1e6, float64(rng.Intn(100))}
		bools := []bool{rng.Intn(2) == 0, rng.Intn(3) == 0}
		if err := dw.Append(nums, bools); err != nil {
			t.Fatal(err)
		}
		mem.MustAppend(nums, bools)
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	return path, mem
}

func TestDiskV3RoundTrip(t *testing.T) {
	// Several full groups, a partial tail group, group boundaries that do
	// not coincide with batch boundaries.
	n := 3*1000 + 137
	path, mem := writeTestFileV3(t, n, 1, 1000)
	dr, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	if dr.Version() != DiskFormatV3 {
		t.Fatalf("Version = %d, want %d", dr.Version(), DiskFormatV3)
	}
	if dr.GroupRows() != 1000 {
		t.Fatalf("GroupRows = %d, want 1000", dr.GroupRows())
	}
	cols := ColumnSet{Numeric: []int{0, 1}, Bool: []int{2, 3}}
	wantBal, _ := mem.NumericColumn(0)
	wantAge, _ := mem.NumericColumn(1)
	wantCL, _ := mem.BoolColumn(2)
	wantAW, _ := mem.BoolColumn(3)
	at := 0
	err = dr.Scan(cols, func(b *Batch) error {
		for row := 0; row < b.Len; row++ {
			if b.Numeric[0][row] != wantBal[at] || b.Numeric[1][row] != wantAge[at] {
				return fmt.Errorf("numeric mismatch at row %d", at)
			}
			if b.Bool[0][row] != wantCL[at] || b.Bool[1][row] != wantAW[at] {
				return fmt.Errorf("bool mismatch at row %d", at)
			}
			at++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if at != n {
		t.Fatalf("scanned %d rows, want %d", at, n)
	}
}

func TestDiskV3ScanRangeMatchesMemory(t *testing.T) {
	n := 2500
	path, mem := writeTestFileV3(t, n, 2, 512)
	dr, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	collect := func(r RangeScanner, start, end int, cols ColumnSet) ([]float64, []bool) {
		var nums []float64
		var bools []bool
		if err := r.ScanRange(start, end, cols, func(b *Batch) error {
			if len(cols.Numeric) > 0 {
				nums = append(nums, b.Numeric[0][:b.Len]...)
			}
			if len(cols.Bool) > 0 {
				bools = append(bools, b.Bool[0][:b.Len]...)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return nums, bools
	}
	ranges := [][2]int{{0, n}, {17, 430}, {511, 513}, {512, 1024}, {1000, 1001}, {2499, 2500}, {500, 500}, {3, 2400}}
	for _, rg := range ranges {
		for _, cols := range []ColumnSet{
			{Numeric: []int{1}},
			{Bool: []int{3}},
			{Numeric: []int{0}, Bool: []int{2}},
		} {
			gotN, gotB := collect(dr, rg[0], rg[1], cols)
			wantN, wantB := collect(mem, rg[0], rg[1], cols)
			if len(gotN) != len(wantN) || len(gotB) != len(wantB) {
				t.Fatalf("range %v cols %v: got %d/%d values, want %d/%d", rg, cols, len(gotN), len(gotB), len(wantN), len(wantB))
			}
			for i := range gotN {
				if gotN[i] != wantN[i] {
					t.Fatalf("range %v: numeric %d differs", rg, i)
				}
			}
			for i := range gotB {
				if gotB[i] != wantB[i] {
					t.Fatalf("range %v: bool %d differs", rg, i)
				}
			}
		}
	}
}

// TestDiskV3EncodingRoundTrips writes columns engineered to exercise
// each encoding — including NaN and ±Inf under dict and raw — and pins
// both the CHOSEN encoding (via the decoded directory) and bit-exact
// round-trips of every value.
func TestDiskV3EncodingRoundTrips(t *testing.T) {
	nan, pinf, ninf := math.NaN(), math.Inf(1), math.Inf(-1)
	cases := []struct {
		name    string
		gen     func(i int) float64
		wantEnc uint8
	}{
		{"delta small ints", func(i int) float64 { return float64(18 + i%73) }, v3EncDelta},
		{"delta negatives", func(i int) float64 { return float64(i%100 - 50) }, v3EncDelta},
		{"delta constant", func(i int) float64 { return 42 }, v3EncDelta},
		{"delta wide span", func(i int) float64 { return float64(i) * 1e9 }, v3EncDelta},
		{"dict low cardinality", func(i int) float64 { return []float64{1.5, -2.25, 1e300, 0.125}[i%4] }, v3EncDict},
		{"dict with specials", func(i int) float64 { return []float64{nan, pinf, ninf, 7.5}[i%4] }, v3EncDict},
		{"dict negative zero", func(i int) float64 {
			if i%2 == 0 {
				return math.Copysign(0, -1)
			}
			return 0
		}, v3EncDict},
		{"raw continuous", func(i int) float64 { return math.Sqrt(float64(i) + 0.5) }, v3EncRaw},
		// Integer-valued beyond the delta limit: FOR's exact int64
		// arithmetic reaches where delta's float differences would round.
		{"for beyond 2^52", func(i int) float64 { return float64(uint64(1)<<53) + float64(i)*4096 }, v3EncFOR},
		{"for negative wide", func(i int) float64 { return -float64(uint64(1)<<60) + float64(i)*65536 }, v3EncFOR},
		// Sorted non-integer runs with per-group cardinality above
		// v3MaxDict: only RLE exploits the structure.
		{"rle sorted runs", func(i int) float64 { return float64(i/2) + 0.5 }, v3EncRLE},
		{"rle long runs with NaN", func(i int) float64 { return []float64{nan, 2.5, pinf}[i/500] }, v3EncRLE},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			schema := Schema{{Name: "X", Kind: Numeric}, {Name: "B", Kind: Boolean}}
			n := 1500
			path := filepath.Join(t.TempDir(), "enc.opr")
			dw, err := NewDiskWriterV3(path, schema, 600)
			if err != nil {
				t.Fatal(err)
			}
			want := make([]float64, n)
			for i := 0; i < n; i++ {
				want[i] = tc.gen(i)
				if err := dw.Append([]float64{want[i]}, []bool{i%5 == 0}); err != nil {
					t.Fatal(err)
				}
			}
			if err := dw.Close(); err != nil {
				t.Fatal(err)
			}
			dr, err := OpenDisk(path)
			if err != nil {
				t.Fatal(err)
			}
			if tc.wantEnc != 255 {
				if got := dr.v3NumBlock(0, 0).enc; got != tc.wantEnc {
					t.Errorf("group 0 chose encoding %d, want %d", got, tc.wantEnc)
				}
			}
			at := 0
			err = dr.Scan(ColumnSet{Numeric: []int{0}, Bool: []int{1}}, func(b *Batch) error {
				for r := 0; r < b.Len; r++ {
					if math.Float64bits(b.Numeric[0][r]) != math.Float64bits(want[at]) {
						return fmt.Errorf("row %d: got %v (%x), want %v (%x)", at,
							b.Numeric[0][r], math.Float64bits(b.Numeric[0][r]), want[at], math.Float64bits(want[at]))
					}
					if b.Bool[0][r] != (at%5 == 0) {
						return fmt.Errorf("row %d: bool wrong", at)
					}
					at++
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if at != n {
				t.Fatalf("scanned %d rows, want %d", at, n)
			}
			// Point reads must agree bit-for-bit with the scan on every
			// encoding (they decode through a separate O(1) path).
			rows := []int{0, 1, 1, 599, 600, 601, 1234, n - 1}
			out := make([]float64, len(rows))
			if err := dr.ReadNumericPoints(0, rows, out); err != nil {
				t.Fatal(err)
			}
			for i, row := range rows {
				if math.Float64bits(out[i]) != math.Float64bits(want[row]) {
					t.Errorf("point read row %d: got %v, want %v", row, out[i], want[row])
				}
			}
		})
	}
}

// TestPackBitsRoundTrip exercises the bit packers across every width
// with random values and lengths straddling the 9-byte fast path's
// boundary conditions.
func TestPackBitsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for bw := 0; bw <= 64; bw++ {
		for _, n := range []int{0, 1, 2, 7, 8, 9, 63, 64, 65, 300} {
			vals := make([]uint64, n)
			var mask uint64
			if bw > 0 {
				mask = ^uint64(0) >> uint(64-bw)
			}
			for i := range vals {
				vals[i] = rng.Uint64() & mask
			}
			buf := make([]byte, (n*bw+7)/8)
			packBits(buf, vals, bw)
			got := make([]uint64, n)
			unpackBits(buf, bw, n, got)
			for i := range vals {
				if got[i] != vals[i] {
					t.Fatalf("bw %d n %d: value %d = %d, want %d", bw, n, i, got[i], vals[i])
				}
			}
		}
	}
}

// TestDiskV3MatchesV2 pins that the formats hold bit-identical data:
// the same stream written through both writers scans back equal.
func TestDiskV3MatchesV2(t *testing.T) {
	n := 9000
	v2Path, _ := writeTestFileV2(t, n, 11, 2048)
	v3Path, _ := writeTestFileV3(t, n, 11, 2048)
	v2, err := OpenDisk(v2Path)
	if err != nil {
		t.Fatal(err)
	}
	v3, err := OpenDisk(v3Path)
	if err != nil {
		t.Fatal(err)
	}
	cols := ColumnSet{Numeric: []int{0, 1}, Bool: []int{2, 3}}
	type rowdata struct {
		n0, n1 float64
		b0, b1 bool
	}
	read := func(dr *DiskRelation) []rowdata {
		var out []rowdata
		if err := dr.Scan(cols, func(b *Batch) error {
			for r := 0; r < b.Len; r++ {
				out = append(out, rowdata{b.Numeric[0][r], b.Numeric[1][r], b.Bool[0][r], b.Bool[1][r]})
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	r2, r3 := read(v2), read(v3)
	if len(r2) != n || len(r3) != n {
		t.Fatalf("read %d v2 rows, %d v3 rows, want %d", len(r2), len(r3), n)
	}
	for i := range r2 {
		if r2[i] != r3[i] {
			t.Fatalf("row %d differs between formats: %v vs %v", i, r2[i], r3[i])
		}
	}
}

// TestDiskV3FewerBytesThanV2 pins the BytesRead contract for compressed
// reads: on the same scan, a v3 file with compressible columns charges
// strictly fewer physical bytes than v2 — the Age column (integers in
// [0,100)) delta-packs to 7 bits from 64.
func TestDiskV3FewerBytesThanV2(t *testing.T) {
	n := 50000
	v2Path, _ := writeTestFileV2(t, n, 4, 4096)
	v3Path, _ := writeTestFileV3(t, n, 4, 4096)
	v2, err := OpenDisk(v2Path)
	if err != nil {
		t.Fatal(err)
	}
	v3, err := OpenDisk(v3Path)
	if err != nil {
		t.Fatal(err)
	}
	scan := func(dr *DiskRelation, cols ColumnSet) int64 {
		dr.ResetBytesRead()
		if err := dr.Scan(cols, func(b *Batch) error { return nil }); err != nil {
			t.Fatal(err)
		}
		return dr.BytesRead()
	}
	// Compressible selection: the integer column and the bools.
	cols := ColumnSet{Numeric: []int{1}, Bool: []int{2, 3}}
	b2, b3 := scan(v2, cols), scan(v3, cols)
	if b3 >= b2 {
		t.Errorf("v3 scan charged %d bytes, v2 %d: want v3 strictly fewer", b3, b2)
	}
	// Full-width selection including the incompressible Balance column
	// must still never exceed v2 (raw fallback is byte-identical in size).
	all := ColumnSet{Numeric: []int{0, 1}, Bool: []int{2, 3}}
	if b3, b2 := scan(v3, all), scan(v2, all); b3 > b2 {
		t.Errorf("v3 full scan charged %d bytes, v2 %d: raw fallback must not grow", b3, b2)
	}
}

// clusteredSchema builds a v3 file whose Flag column is true only in
// rows [lo, hi) — so whole block groups outside the band are provably
// flag-free and zone-prunable — plus a numeric ID column equal to the
// row index.
func writeClusteredV3(t *testing.T, path string, n, lo, hi, groupRows int) {
	t.Helper()
	schema := Schema{{Name: "ID", Kind: Numeric}, {Name: "V", Kind: Numeric}, {Name: "Flag", Kind: Boolean}}
	dw, err := NewDiskWriterV3(path, schema, groupRows)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < n; i++ {
		if err := dw.Append([]float64{float64(i), rng.NormFloat64()}, []bool{i >= lo && i < hi}); err != nil {
			t.Fatal(err)
		}
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDiskV3ZoneMapPruning pins the zone-map differential: a pruned
// scan must deliver exactly the rows of non-prunable groups, report
// every skipped row through the callback (so delivered+skipped spans
// the range exactly), charge zero bytes for skipped groups, and agree
// with the unpruned scan on everything it delivers.
func TestDiskV3ZoneMapPruning(t *testing.T) {
	n, lo, hi, gr := 10000, 4200, 4800, 1000
	path := filepath.Join(t.TempDir(), "clustered.opr")
	writeClusteredV3(t, path, n, lo, hi, gr)
	dr, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	cols := ColumnSet{Numeric: []int{0}, Bool: []int{2}}

	type result struct {
		delivered int
		skipped   int
		matches   int
		sum       float64
		bytes     int64
	}
	run := func(pred *Predicate) result {
		dr.ResetBytesRead()
		var res result
		err := dr.ScanRangePruned(0, n, cols, pred,
			func(rows int) error { res.skipped += rows; return nil },
			func(b *Batch) error {
				for r := 0; r < b.Len; r++ {
					res.delivered++
					if b.Bool[0][r] {
						res.matches++
						res.sum += b.Numeric[0][r]
					}
				}
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		res.bytes = dr.BytesRead()
		return res
	}

	pred := &Predicate{Bools: []BoolPredicate{{Attr: 2, Want: true}}}
	pruned := run(pred)
	unpruned := run(nil)

	if unpruned.skipped != 0 || unpruned.delivered != n {
		t.Fatalf("unpruned scan delivered %d + skipped %d, want %d + 0", unpruned.delivered, unpruned.skipped, n)
	}
	if pruned.delivered+pruned.skipped != n {
		t.Fatalf("pruned scan delivered %d + skipped %d, want total %d", pruned.delivered, pruned.skipped, n)
	}
	if pruned.skipped == 0 {
		t.Fatalf("pruned scan skipped nothing; zone maps not consulted")
	}
	// The flag band [4200, 4800) lies entirely inside group 4; the other
	// 9 of 10 groups are prunable.
	if want := 9 * gr; pruned.skipped != want {
		t.Errorf("pruned scan skipped %d rows, want %d", pruned.skipped, want)
	}
	if pruned.matches != unpruned.matches || pruned.sum != unpruned.sum {
		t.Errorf("pruning changed the counted matches: %d/%g vs %d/%g",
			pruned.matches, pruned.sum, unpruned.matches, unpruned.sum)
	}
	if pruned.bytes >= unpruned.bytes {
		t.Errorf("pruned scan charged %d bytes, unpruned %d: want strictly fewer", pruned.bytes, unpruned.bytes)
	}

	// Range predicate over the ID column (equal to the row index): only
	// group 2 intersects [2000, 2500].
	rp := &Predicate{Ranges: []RangePredicate{{Attr: 0, Lo: 2000, Hi: 2500}}}
	r := run(rp)
	if r.delivered+r.skipped != n || r.skipped != 9*gr {
		t.Errorf("range pruning delivered %d + skipped %d, want %d rows with %d skipped", r.delivered, r.skipped, n, 9*gr)
	}

	// Want=false against the all-true band prunes only the band's fully
	// true groups — here none are fully true except group 4..5 partially;
	// construct the inverse: groups 4 and 5 contain false rows too, so
	// nothing is prunable and the scan degrades to a full delivery.
	inv := run(&Predicate{Bools: []BoolPredicate{{Attr: 2, Want: false}}})
	if inv.delivered != n || inv.skipped != 0 {
		t.Errorf("Want=false pruned %d rows of a relation with false rows in every group", inv.skipped)
	}

	// An unsatisfiable conjunction prunes everything.
	none := run(&Predicate{Ranges: []RangePredicate{{Attr: 0, Lo: 2 * float64(n), Hi: 3 * float64(n)}}})
	if none.delivered != 0 || none.skipped != n || none.bytes != 0 {
		t.Errorf("unsatisfiable predicate delivered %d, skipped %d, charged %d bytes; want 0/%d/0",
			none.delivered, none.skipped, none.bytes, n)
	}
}

// TestDiskV3PrunedScanValidation pins predicate validation and the
// v1/v2 degradation path.
func TestDiskV3PrunedScanValidation(t *testing.T) {
	path, _ := writeTestFileV3(t, 100, 9, 64)
	dr, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	cols := ColumnSet{Numeric: []int{0}}
	nop := func(*Batch) error { return nil }
	if err := dr.ScanRangePruned(0, 100, cols, &Predicate{Bools: []BoolPredicate{{Attr: 0, Want: true}}}, nil, nop); err == nil {
		t.Errorf("bool predicate on numeric attribute accepted")
	}
	if err := dr.ScanRangePruned(0, 100, cols, &Predicate{Ranges: []RangePredicate{{Attr: 2, Lo: 0, Hi: 1}}}, nil, nop); err == nil {
		t.Errorf("range predicate on boolean attribute accepted")
	}
	if err := dr.ScanRangePruned(0, 100, cols, &Predicate{Ranges: []RangePredicate{{Attr: 0, Lo: math.NaN(), Hi: 1}}}, nil, nop); err == nil {
		t.Errorf("NaN range bound accepted")
	}

	// v2 files implement the interface but never prune.
	v2Path, _ := writeTestFileV2(t, 100, 9, 64)
	v2, err := OpenDisk(v2Path)
	if err != nil {
		t.Fatal(err)
	}
	delivered, skipped := 0, 0
	err = v2.ScanRangePruned(0, 100, cols,
		&Predicate{Ranges: []RangePredicate{{Attr: 0, Lo: -2, Hi: -1}}},
		func(rows int) error { skipped += rows; return nil },
		func(b *Batch) error { delivered += b.Len; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if delivered != 100 || skipped != 0 {
		t.Errorf("v2 pruned scan delivered %d, skipped %d; want full delivery", delivered, skipped)
	}
}

// TestConvertDiskV3 round-trips v1 -> v3 -> v2 -> v3 -> v1 and checks
// the data survives every hop.
func TestConvertDiskV3(t *testing.T) {
	n := 5000
	v1Path, mem := writeTestFile(t, n, 21)
	dir := t.TempDir()
	hops := []struct {
		name    string
		version int
	}{
		{"a_v3.opr", DiskFormatV3},
		{"b_v2.opr", DiskFormatV2},
		{"c_v3.opr", DiskFormatV3},
		{"d_v1.opr", DiskFormatV1},
	}
	src := v1Path
	for _, h := range hops {
		dst := filepath.Join(dir, h.name)
		if err := ConvertDisk(src, dst, h.version); err != nil {
			t.Fatalf("convert %s -> %s: %v", src, dst, err)
		}
		src = dst
	}
	dr, err := OpenDisk(src)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := mem.NumericColumn(0)
	wantB, _ := mem.BoolColumn(3)
	at := 0
	err = dr.Scan(ColumnSet{Numeric: []int{0}, Bool: []int{3}}, func(b *Batch) error {
		for r := 0; r < b.Len; r++ {
			if b.Numeric[0][r] != want[at] || b.Bool[0][r] != wantB[at] {
				return fmt.Errorf("row %d differs after conversion chain", at)
			}
			at++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if at != n {
		t.Fatalf("scanned %d rows, want %d", at, n)
	}
}

func TestDiskV3Empty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty_v3.opr")
	dw, err := NewDiskWriterV3(path, bankSchema(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	dr, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	if dr.NumTuples() != 0 {
		t.Fatalf("NumTuples = %d, want 0", dr.NumTuples())
	}
	if err := dr.Scan(ColumnSet{Numeric: []int{0}}, func(*Batch) error {
		return fmt.Errorf("callback on empty relation")
	}); err != nil {
		t.Fatal(err)
	}
}

// TestDiskV3ConcurrentScanRange pins that disjoint ScanRange segments
// on one shared v3 relation share no mutable state (run under -race).
func TestDiskV3ConcurrentScanRange(t *testing.T) {
	n := 20000
	path, mem := writeTestFileV3(t, n, 13, 4096)
	dr, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	col, _ := mem.NumericColumn(0)
	for _, v := range col {
		want += v
	}
	parts := 8
	sums := make([]float64, parts)
	errs := make(chan error, parts)
	for p := 0; p < parts; p++ {
		go func(p int) {
			start, end := p*n/parts, (p+1)*n/parts
			errs <- dr.ScanRange(start, end, ColumnSet{Numeric: []int{0}, Bool: []int{2}}, func(b *Batch) error {
				for _, v := range b.Numeric[0][:b.Len] {
					sums[p] += v
				}
				return nil
			})
		}(p)
	}
	for p := 0; p < parts; p++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	total := 0.0
	for _, s := range sums {
		total += s
	}
	if math.Abs(total-want) > 1e-6*math.Abs(want) {
		t.Errorf("parallel scan sum = %g, want %g", total, want)
	}
}

// v3FileLayout locates the pieces of a valid v3 test file needed by the
// corruption tests: header tail offsets and the block directory.
type v3FileLayout struct {
	data      []byte
	rowsOff   int64
	dirOff    int64
	nums      int
	bools     int
	numGroups int
}

func v3Layout(t *testing.T, path string) *v3FileLayout {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rowsOff, _, numGroupsOff, dirOffOff := v2HeaderOffsets(bankSchema())
	return &v3FileLayout{
		data:      data,
		rowsOff:   rowsOff,
		dirOff:    int64(binary.LittleEndian.Uint64(data[dirOffOff:])),
		nums:      2,
		bools:     2,
		numGroups: int(binary.LittleEndian.Uint32(data[numGroupsOff:])),
	}
}

// numEntry returns the directory offset of group g's numeric column p.
func (l *v3FileLayout) numEntry(g, p int) int64 {
	return l.dirOff + int64(g)*int64(v3GroupEntrySize(l.nums, l.bools)) + int64(p)*v3NumEntrySize
}

// TestDiskV3CorruptionErrors corrupts a valid v3 file in the targeted
// ways the issue names — truncated block, bad dictionary index, min/max
// inversion, bit-width overflow — plus header-level damage, and checks
// every case is rejected with an error (at open or at scan), never a
// panic or a silent miscount.
func TestDiskV3CorruptionErrors(t *testing.T) {
	path, _ := writeTestFileV3(t, 2500, 5, 1000)
	l := v3Layout(t, path)
	// Column 1 (Age) is delta-coded; find its directory entry in group 0.
	ageEntry := l.numEntry(0, 1)

	cases := []struct {
		name    string
		corrupt func(d []byte) []byte
		openErr string // non-empty: must fail at open, mentioning this
	}{
		{"zone map inverted", func(d []byte) []byte {
			// Swap min and max of the Age block: min > max.
			binary.LittleEndian.PutUint64(d[ageEntry+13:], math.Float64bits(99))
			binary.LittleEndian.PutUint64(d[ageEntry+21:], math.Float64bits(0))
			return d
		}, "inverted zone map"},
		{"zone map NaN", func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[ageEntry+13:], math.Float64bits(math.NaN()))
			return d
		}, "inverted zone map"},
		{"unknown encoding", func(d []byte) []byte {
			d[ageEntry+12] = 9
			return d
		}, "unknown numeric encoding"},
		{"block offset out of bounds", func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[ageEntry:], uint64(len(d)))
			return d
		}, "outside data region"},
		{"bit width overflow", func(d []byte) []byte {
			// First payload byte of the delta block is its bit width.
			off := binary.LittleEndian.Uint64(d[ageEntry:])
			d[off] = 200
			return d
		}, ""},
		{"bad dictionary", func(d []byte) []byte {
			// Rewrite the delta block as a dict block whose declared
			// dictionary is absurd; encLen no longer matches any legal
			// dict shape, so the decoder must reject it.
			d[ageEntry+12] = v3EncDict
			off := binary.LittleEndian.Uint64(d[ageEntry:])
			binary.LittleEndian.PutUint16(d[off:], 60000)
			return d
		}, ""},
		{"truncated block", func(d []byte) []byte {
			// Shrink the declared encLen of the Age block: the decoder
			// sees fewer bytes than the rows demand.
			encLen := binary.LittleEndian.Uint32(d[ageEntry+8:])
			binary.LittleEndian.PutUint32(d[ageEntry+8:], encLen/2)
			return d
		}, ""},
		{"truncated file mid-directory", func(d []byte) []byte {
			return d[:len(d)-7]
		}, "truncated"},
		{"bool trueCount overflow", func(d []byte) []byte {
			boolEntry := l.numEntry(0, 2) // first bool entry follows the numerics
			binary.LittleEndian.PutUint32(d[boolEntry+13:], 100000)
			return d
		}, "trueCount"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.corrupt(append([]byte(nil), l.data...))
			p := filepath.Join(t.TempDir(), "corrupt.opr")
			if err := os.WriteFile(p, data, 0o644); err != nil {
				t.Fatal(err)
			}
			dr, err := OpenDisk(p)
			if tc.openErr != "" {
				if err == nil {
					t.Fatalf("corrupt file accepted at open")
				}
				if !strings.Contains(err.Error(), tc.openErr) {
					t.Errorf("open error %q does not mention %q", err, tc.openErr)
				}
				return
			}
			if err != nil {
				return // rejected at open: also fine
			}
			rows := 0
			scanErr := dr.Scan(ColumnSet{Numeric: []int{0, 1}, Bool: []int{2, 3}}, func(b *Batch) error {
				rows += b.Len
				return nil
			})
			if scanErr == nil && rows != dr.NumTuples() {
				t.Errorf("corrupt file scanned cleanly but delivered %d of %d rows", rows, dr.NumTuples())
			}
			if scanErr == nil && rows == dr.NumTuples() {
				t.Errorf("corrupt file scanned cleanly; corruption undetected")
			}
		})
	}
}

// TestDiskV3CorruptionRLEFOR corrupts genuine RLE and FOR blocks in
// the targeted ways the decoders must reject — run counts exceeding
// the block's rows, truncated run directories, out-of-range or
// non-monotonic run ends, FOR widths beyond 63, and base+delta
// overflow — through both the scan and point-read paths.
func TestDiskV3CorruptionRLEFOR(t *testing.T) {
	schema := Schema{{Name: "S", Kind: Numeric}, {Name: "F", Kind: Numeric}}
	path := filepath.Join(t.TempDir(), "rlefor.opr")
	dw, err := NewDiskWriterV3(path, schema, 400)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		// S: two 200-row runs per group, cardinality-beating RLE. F:
		// integers beyond the delta limit, FOR-only territory.
		if err := dw.Append([]float64{float64(i/200) + 0.5, float64(uint64(1)<<53) + float64(i)*512}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	dr, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	if enc := dr.v3NumBlock(0, 0).enc; enc != v3EncRLE {
		t.Fatalf("column S chose encoding %d, want RLE", enc)
	}
	if enc := dr.v3NumBlock(0, 1).enc; enc != v3EncFOR {
		t.Fatalf("column F chose encoding %d, want FOR", enc)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, dirOffOff := v2HeaderOffsets(schema)
	dirOff := int64(binary.LittleEndian.Uint64(valid[dirOffOff:]))
	entry := func(p int) int64 { return dirOff + int64(p)*v3NumEntrySize }
	sOff := int64(binary.LittleEndian.Uint64(valid[entry(0):]))
	fOff := int64(binary.LittleEndian.Uint64(valid[entry(1):]))

	cases := []struct {
		name     string
		corrupt  func(d []byte)
		errFrag  string // scan error must mention this when non-empty
		attr     int    // point read of this column must fail too
		pointRow int
	}{
		{"run count exceeds rows", func(d []byte) {
			binary.LittleEndian.PutUint32(d[sOff:], 100000)
		}, "run count", 0, 300},
		{"truncated runs", func(d []byte) {
			binary.LittleEndian.PutUint32(d[entry(0)+8:], 16)
		}, "RLE block holds", 0, 300},
		{"run end beyond block", func(d []byte) {
			binary.LittleEndian.PutUint32(d[sOff+4:], 450)
		}, "", 0, 300},
		{"run ends not monotonic", func(d []byte) {
			binary.LittleEndian.PutUint32(d[sOff+4+v3RLERunSize:], 0)
		}, "", 0, 300},
		{"FOR width beyond 63", func(d []byte) {
			d[fOff+8] = 200
		}, "overflows 63", 1, 399},
		{"FOR base+delta overflow", func(d []byte) {
			binary.LittleEndian.PutUint64(d[fOff:], uint64(math.MaxInt64))
		}, "overflows int64", 1, 399},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := append([]byte(nil), valid...)
			tc.corrupt(data)
			p := filepath.Join(t.TempDir(), "corrupt.opr")
			if err := os.WriteFile(p, data, 0o644); err != nil {
				t.Fatal(err)
			}
			cdr, err := OpenDisk(p)
			if err != nil {
				t.Fatalf("directory untouched; open failed: %v", err)
			}
			scanErr := cdr.Scan(ColumnSet{Numeric: []int{0, 1}}, func(*Batch) error { return nil })
			if scanErr == nil {
				t.Errorf("corrupt block scanned cleanly")
			} else if tc.errFrag != "" && !strings.Contains(scanErr.Error(), tc.errFrag) {
				t.Errorf("scan error %q does not mention %q", scanErr, tc.errFrag)
			}
			out := make([]float64, 1)
			if err := cdr.ReadNumericPoints(tc.attr, []int{tc.pointRow}, out); err == nil {
				t.Errorf("corrupt block accepted by point read")
			}
		})
	}
}

// TestDiskV3BadDictIndex crafts a genuine dict block (3 distinct
// values, so 2-bit indices can express the out-of-range index 3),
// corrupts the packed indices, and checks the decoder rejects the
// block instead of reading past the dictionary.
func TestDiskV3BadDictIndex(t *testing.T) {
	schema := Schema{{Name: "X", Kind: Numeric}}
	path := filepath.Join(t.TempDir(), "dict.opr")
	dw, err := NewDiskWriterV3(path, schema, 64)
	if err != nil {
		t.Fatal(err)
	}
	vals := []float64{0.5, 1.5, 2.5}
	for i := 0; i < 64; i++ {
		if err := dw.Append([]float64{vals[i%3]}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	dr, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	blk := dr.v3NumBlock(0, 0)
	if blk.enc != v3EncDict {
		t.Fatalf("crafted block chose encoding %d, want dict", blk.enc)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Payload: count u16, 3×8 dict values, bw byte, packed indices. Set
	// every index bit: index 3 with a 3-entry dictionary.
	head := blk.off + 2 + 8*3 + 1
	for i := head; i < blk.off+int64(blk.encLen); i++ {
		data[i] = 0xFF
	}
	p := filepath.Join(t.TempDir(), "baddict.opr")
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	cdr, err := OpenDisk(p)
	if err != nil {
		t.Fatal(err) // directory untouched; must open
	}
	scanErr := cdr.Scan(ColumnSet{Numeric: []int{0}}, func(*Batch) error { return nil })
	if scanErr == nil || !strings.Contains(scanErr.Error(), "dict index") {
		t.Errorf("bad dict index scan error = %v, want dict index rejection", scanErr)
	}
	// The point-read path must reject it too.
	out := make([]float64, 1)
	if err := cdr.ReadNumericPoints(0, []int{5}, out); err == nil {
		t.Errorf("bad dict index accepted by point read")
	}
}

// TestDiskV3PointReadsMatchScan pins the flat point-read price on v3.
func TestDiskV3PointReadsMatchScan(t *testing.T) {
	n := 5000
	path, mem := writeTestFileV3(t, n, 31, 1024)
	dr, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer dr.Close()
	for attr := 0; attr <= 1; attr++ {
		want, _ := mem.NumericColumn(attr)
		rows := []int{0, 1, 1, 512, 1023, 1024, 1025, 2047, 3000, n - 1}
		out := make([]float64, len(rows))
		dr.ResetBytesRead()
		if err := dr.ReadNumericPoints(attr, rows, out); err != nil {
			t.Fatal(err)
		}
		for i, row := range rows {
			if math.Float64bits(out[i]) != math.Float64bits(want[row]) {
				t.Errorf("attr %d row %d: got %v, want %v", attr, row, out[i], want[row])
			}
		}
		unique := len(rows) - 1 // one duplicate in the list
		if got := dr.BytesRead(); got != int64(unique)*8 {
			t.Errorf("attr %d: point reads charged %d bytes, want %d (8 per unique row)", attr, got, int64(unique)*8)
		}
	}
}

// TestShardedV3Mix pins that a sharded relation mixes v3 shards with
// other formats freely and that its pruned scan delegates per shard.
func TestShardedV3Mix(t *testing.T) {
	dir := t.TempDir()
	manifest := filepath.Join(dir, "mix.oprs")
	sw, err := NewShardedWriter(manifest, bankSchema(), ShardedWriterOptions{RowsPerShard: 1000, Format: DiskFormatV3, GroupRows: 500})
	if err != nil {
		t.Fatal(err)
	}
	mem := MustNewMemoryRelation(bankSchema())
	rng := rand.New(rand.NewSource(17))
	n := 3500
	for i := 0; i < n; i++ {
		nums := []float64{rng.Float64() * 1e6, float64(rng.Intn(100))}
		bools := []bool{rng.Intn(2) == 0, rng.Intn(3) == 0}
		if err := sw.Append(nums, bools); err != nil {
			t.Fatal(err)
		}
		mem.MustAppend(nums, bools)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	sr, err := OpenSharded(manifest)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	if sr.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", sr.NumShards())
	}
	want, _ := mem.NumericColumn(1)
	at := 0
	err = sr.Scan(ColumnSet{Numeric: []int{1}}, func(b *Batch) error {
		for r := 0; r < b.Len; r++ {
			if b.Numeric[0][r] != want[at] {
				return fmt.Errorf("row %d differs", at)
			}
			at++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if at != n {
		t.Fatalf("scanned %d rows, want %d", at, n)
	}
	// Pruned delegation: an unsatisfiable range skips every row of every
	// v3 shard.
	delivered, skipped := 0, 0
	err = sr.ScanRangePruned(0, n, ColumnSet{Numeric: []int{1}},
		&Predicate{Ranges: []RangePredicate{{Attr: 1, Lo: 1e9, Hi: 2e9}}},
		func(rows int) error { skipped += rows; return nil },
		func(b *Batch) error { delivered += b.Len; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if delivered != 0 || skipped != n {
		t.Errorf("sharded pruned scan delivered %d, skipped %d; want 0, %d", delivered, skipped, n)
	}
}
