package relation

// CountingRelation wraps a Relation and counts the scans issued against
// it. The paper's cost model is sequential passes over the database, so
// tests and experiments assert on this counter — "MineAll costs one
// sampling scan plus one counting scan" — instead of wall-clock time,
// which is hardware dependent and flaky.
type CountingRelation struct {
	R Relation
	// Scans is the number of Scan calls issued.
	Scans int
	// Rows is the total number of tuples delivered to scan callbacks
	// (a partial scan that aborts early contributes only what it read).
	Rows int64
}

// Schema implements Relation.
func (c *CountingRelation) Schema() Schema { return c.R.Schema() }

// NumTuples implements Relation.
func (c *CountingRelation) NumTuples() int { return c.R.NumTuples() }

// Scan implements Relation, counting the pass and the rows it delivers.
func (c *CountingRelation) Scan(cols ColumnSet, fn func(*Batch) error) error {
	c.Scans++
	return c.R.Scan(cols, func(b *Batch) error {
		c.Rows += int64(b.Len)
		return fn(b)
	})
}
