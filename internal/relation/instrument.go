package relation

// CountingRelation wraps a Relation and counts the scans issued against
// it. The paper's cost model is sequential passes over the database, so
// tests and experiments assert on this counter — "MineAll costs one
// sampling scan plus one counting scan" — instead of wall-clock time,
// which is hardware dependent and flaky.
type CountingRelation struct {
	R Relation
	// Scans is the number of Scan calls issued.
	Scans int
	// Rows is the total number of tuples delivered to scan callbacks
	// (a partial scan that aborts early contributes only what it read).
	Rows int64
}

// Schema implements Relation.
func (c *CountingRelation) Schema() Schema { return c.R.Schema() }

// NumTuples implements Relation.
func (c *CountingRelation) NumTuples() int { return c.R.NumTuples() }

// Scan implements Relation, counting the pass and the rows it delivers.
func (c *CountingRelation) Scan(cols ColumnSet, fn func(*Batch) error) error {
	c.Scans++
	return c.R.Scan(cols, func(b *Batch) error {
		c.Rows += int64(b.Len)
		return fn(b)
	})
}

// RangeCountingRelation wraps a RangeScanner and counts both full scans
// and range scans, recording each range's bounds. The delta-merge tests
// assert on it: an incremental refresh must issue scans covering ONLY
// the appended tail, never the prefix the cache already summarizes.
// (CountingRelation deliberately does not implement RangeScanner —
// existing tests rely on wrapped relations dropping that capability —
// hence a separate wrapper.)
type RangeCountingRelation struct {
	R RangeScanner
	// Scans counts Scan plus ScanRange calls; Rows totals delivered
	// tuples across both.
	Scans int
	Rows  int64
	// Ranges records every ScanRange's [start, end) in call order; full
	// Scans record [0, NumTuples()).
	Ranges [][2]int
}

// Schema implements Relation.
func (c *RangeCountingRelation) Schema() Schema { return c.R.Schema() }

// NumTuples implements Relation.
func (c *RangeCountingRelation) NumTuples() int { return c.R.NumTuples() }

// Scan implements Relation.
func (c *RangeCountingRelation) Scan(cols ColumnSet, fn func(*Batch) error) error {
	c.Scans++
	c.Ranges = append(c.Ranges, [2]int{0, c.R.NumTuples()})
	return c.R.Scan(cols, func(b *Batch) error {
		c.Rows += int64(b.Len)
		return fn(b)
	})
}

// ScanRange implements RangeScanner.
func (c *RangeCountingRelation) ScanRange(start, end int, cols ColumnSet, fn func(*Batch) error) error {
	c.Scans++
	c.Ranges = append(c.Ranges, [2]int{start, end})
	return c.R.ScanRange(start, end, cols, func(b *Batch) error {
		c.Rows += int64(b.Len)
		return fn(b)
	})
}

// MinScanned returns the lowest row any recorded scan touched, or -1
// when no scan ran.
func (c *RangeCountingRelation) MinScanned() int {
	min := -1
	for _, r := range c.Ranges {
		if r[0] == r[1] {
			continue // empty range: touched nothing
		}
		if min == -1 || r[0] < min {
			min = r[0]
		}
	}
	return min
}
