package relation

import (
	"io"
	"sync/atomic"
)

// This file is the one place in internal/relation where raw file reads
// happen. Everything else goes through these helpers, and the optlint
// bytecount analyzer enforces it: BytesRead is the deterministic cost
// model the planner and the paper's I/O accounting trust, so every
// read must make an explicit, reviewable choice about how it charges —
// payload now, payload at delivery, or metadata never.
//
// The charging rules, which the helpers' names encode:
//
//   - payload reads charge the counter the moment the data is
//     DELIVERED to the scan, so BytesRead is a pure function of the
//     plan and how far the scan ran — never of prefetch races.
//     payloadReadFull charges itself (streaming scans deliver
//     immediately); uncountedReadAt leaves the charge to the caller
//     (prefetchers charge whole staged groups on delivery, point reads
//     charge logical bytes once the batch completes).
//   - metadata reads (headers, directories, magic sniffs) never
//     charge: BytesRead counts the payload bytes a scan pulls, and
//     open-time metadata would smear a constant over every scan of the
//     same relation.

// payloadReadFull reads exactly len(buf) payload bytes from r and
// charges them to counter. Nothing is charged on a short or failed
// read — the scan is about to abort and must not bill bytes it never
// delivered.
func payloadReadFull(r io.Reader, buf []byte, counter *atomic.Int64) (int, error) {
	n, err := io.ReadFull(r, buf)
	if err == nil {
		counter.Add(int64(n))
	}
	return n, err
}

// metaReadFull reads exactly len(buf) metadata bytes from r without
// charging any counter.
func metaReadFull(r io.Reader, buf []byte) (int, error) {
	return io.ReadFull(r, buf)
}

// metaReadAt reads len(buf) metadata bytes at off without charging any
// counter.
func metaReadAt(f io.ReaderAt, buf []byte, off int64) (int, error) {
	return f.ReadAt(buf, off)
}

// uncountedReadAt reads len(buf) payload bytes at off; the CALLER owns
// the charge and must add the delivered bytes to the relation's
// counter when (and only when) the data reaches the scan.
func uncountedReadAt(f io.ReaderAt, buf []byte, off int64) (int, error) {
	return f.ReadAt(buf, off)
}

// sniffPrefix reads up to len(buf) bytes from the start of r for magic
// detection, returning however many were there. Metadata: uncharged.
func sniffPrefix(r io.Reader, buf []byte) int {
	n, _ := io.ReadFull(r, buf)
	return n
}
