package relation

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"
)

// settleGoroutines polls until the goroutine count drops back to at
// most base+slack, failing the test if leaked scan pipelines keep it
// elevated. Prefetcher and shard producer goroutines exit through
// channel teardown, not synchronously with the scan return, so a short
// settle window is part of the contract being pinned.
func settleGoroutines(t *testing.T, base int, what string) {
	t.Helper()
	const slack = 3
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("%s leaked goroutines: %d running, started with %d\n%s",
				what, runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

var errConsumer = errors.New("consumer rejected batch")

// TestScanTeardownOnConsumerError drives every backend's scan pipeline
// through its consumer-error path — the callback fails mid-stream —
// and pins that (a) the exact error surfaces, un-wrapped and
// un-replaced, and (b) the read-ahead machinery behind the scan (v2/v3
// double-buffered prefetchers, sharded concurrent sub-scans) shuts
// down without leaking goroutines, across many repetitions.
func TestScanTeardownOnConsumerError(t *testing.T) {
	fixtures := closeRaceFixtures(t, 3000)
	if sr, ok := fixtures["sharded"].(*ShardedRelation); ok {
		sr.SetConcurrentScans(3)
	}
	base := runtime.NumGoroutine()
	for name, rel := range fixtures {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 30; i++ {
				rows := 0
				failAt := 1 + (i*97)%2000 // sweep the fault row across batches
				err := rel.Scan(ColumnSet{Numeric: []int{0, 1}, Bool: []int{2}}, func(b *Batch) error {
					rows += b.Len
					if rows >= failAt {
						return fmt.Errorf("at row %d: %w", rows, errConsumer)
					}
					return nil
				})
				if !errors.Is(err, errConsumer) {
					t.Fatalf("iteration %d: consumer error lost or replaced: %v", i, err)
				}
			}
			settleGoroutines(t, base, name)
		})
	}
}

// TestScanTeardownOnInjectedFault is the storage-side twin: the fault
// harness cuts streams at varying rows THROUGH each backend's pipeline
// (the wrapper's callback error reaches the prefetcher/sub-scan
// machinery as a consumer failure), and repeated injected failures
// must neither leak pipeline goroutines nor corrupt later scans.
func TestScanTeardownOnInjectedFault(t *testing.T) {
	fixtures := closeRaceFixtures(t, 3000)
	if sr, ok := fixtures["sharded"].(*ShardedRelation); ok {
		sr.SetConcurrentScans(3)
	}
	base := runtime.NumGoroutine()
	for name, rel := range fixtures {
		t.Run(name, func(t *testing.T) {
			fr := NewFaultRelation(rel, FaultConfig{FailEvery: 2, FailAfterRows: 1500})
			var clean []float64
			for i := 0; i < 30; i++ {
				var got []float64
				err := fr.Scan(ColumnSet{Numeric: []int{0}}, func(b *Batch) error {
					got = append(got, b.Numeric[0][:b.Len]...)
					return nil
				})
				if (i+1)%2 == 0 {
					if !errors.Is(err, ErrInjected) {
						t.Fatalf("scan %d: want injected fault, got %v", i+1, err)
					}
					continue
				}
				if err != nil {
					t.Fatalf("healthy scan %d failed after injected neighbors: %v", i+1, err)
				}
				if clean == nil {
					clean = got
				} else if len(got) != len(clean) {
					t.Fatalf("scan %d: healthy scan length changed after faults: %d vs %d", i+1, len(got), len(clean))
				}
			}
			settleGoroutines(t, base, name)
		})
	}
}

// TestScanEarlyAbortNoLeak pins the mundane variant: callers that stop
// a scan early with a plain error (the every-day form of consumer
// abort) can do so in a tight loop without accumulating pipeline
// goroutines or file handles.
func TestScanEarlyAbortNoLeak(t *testing.T) {
	fixtures := closeRaceFixtures(t, 2000)
	base := runtime.NumGoroutine()
	stop := errors.New("stop")
	for name, rel := range fixtures {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 50; i++ {
				err := rel.Scan(ColumnSet{Numeric: []int{0}}, func(b *Batch) error { return stop })
				if !errors.Is(err, stop) {
					t.Fatalf("early abort error lost: %v", err)
				}
			}
			settleGoroutines(t, base, name)
		})
	}
}
