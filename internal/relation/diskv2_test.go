package relation

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTestFileV2 writes n pseudo-random tuples in v2 format with the
// given block-group size and returns the path plus the in-memory twin.
// The same (n, seed) passed to writeTestFile yields identical data in
// v1 format.
func writeTestFileV2(t *testing.T, n int, seed int64, groupRows int) (string, *MemoryRelation) {
	t.Helper()
	schema := bankSchema()
	path := filepath.Join(t.TempDir(), "data_v2.opr")
	dw, err := NewDiskWriterV2(path, schema, groupRows)
	if err != nil {
		t.Fatal(err)
	}
	mem := MustNewMemoryRelation(schema)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		nums := []float64{rng.Float64() * 1e6, float64(rng.Intn(100))}
		bools := []bool{rng.Intn(2) == 0, rng.Intn(3) == 0}
		if err := dw.Append(nums, bools); err != nil {
			t.Fatal(err)
		}
		mem.MustAppend(nums, bools)
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	return path, mem
}

func TestDiskV2RoundTrip(t *testing.T) {
	// Small odd group size: several full groups, a partial tail group,
	// and group boundaries that do not coincide with batch boundaries.
	n := 3*1000 + 137
	path, mem := writeTestFileV2(t, n, 1, 1000)
	dr, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	if dr.Version() != DiskFormatV2 {
		t.Fatalf("Version = %d, want %d", dr.Version(), DiskFormatV2)
	}
	if dr.GroupRows() != 1000 {
		t.Fatalf("GroupRows = %d, want 1000", dr.GroupRows())
	}
	if dr.NumTuples() != n {
		t.Fatalf("NumTuples = %d, want %d", dr.NumTuples(), n)
	}
	cols := ColumnSet{Numeric: []int{0, 1}, Bool: []int{2, 3}}
	wantBal, _ := mem.NumericColumn(0)
	wantAge, _ := mem.NumericColumn(1)
	wantCL, _ := mem.BoolColumn(2)
	wantAW, _ := mem.BoolColumn(3)
	at := 0
	err = dr.Scan(cols, func(b *Batch) error {
		for row := 0; row < b.Len; row++ {
			if b.Numeric[0][row] != wantBal[at] || b.Numeric[1][row] != wantAge[at] {
				return fmt.Errorf("numeric mismatch at row %d", at)
			}
			if b.Bool[0][row] != wantCL[at] || b.Bool[1][row] != wantAW[at] {
				return fmt.Errorf("bool mismatch at row %d", at)
			}
			at++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if at != n {
		t.Fatalf("scanned %d rows, want %d", at, n)
	}
}

func TestDiskV2DefaultGroupRows(t *testing.T) {
	path, _ := writeTestFileV2(t, 10, 1, 0)
	dr, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	if dr.GroupRows() != DefaultGroupRows {
		t.Errorf("GroupRows = %d, want %d", dr.GroupRows(), DefaultGroupRows)
	}
}

func TestDiskV2ScanRangeMatchesMemory(t *testing.T) {
	n := 2500
	path, mem := writeTestFileV2(t, n, 2, 512)
	dr, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	collect := func(r RangeScanner, start, end int, cols ColumnSet) ([]float64, []bool) {
		var nums []float64
		var bools []bool
		if err := r.ScanRange(start, end, cols, func(b *Batch) error {
			if len(cols.Numeric) > 0 {
				nums = append(nums, b.Numeric[0][:b.Len]...)
			}
			if len(cols.Bool) > 0 {
				bools = append(bools, b.Bool[0][:b.Len]...)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return nums, bools
	}
	ranges := [][2]int{{0, n}, {17, 430}, {511, 513}, {512, 1024}, {1000, 1001}, {2499, 2500}, {500, 500}, {3, 2400}}
	for _, rg := range ranges {
		for _, cols := range []ColumnSet{
			{Numeric: []int{1}},
			{Bool: []int{3}},
			{Numeric: []int{0}, Bool: []int{2}},
		} {
			gotN, gotB := collect(dr, rg[0], rg[1], cols)
			wantN, wantB := collect(mem, rg[0], rg[1], cols)
			if len(gotN) != len(wantN) || len(gotB) != len(wantB) {
				t.Fatalf("range %v cols %v: got %d/%d values, want %d/%d", rg, cols, len(gotN), len(gotB), len(wantN), len(wantB))
			}
			for i := range gotN {
				if gotN[i] != wantN[i] {
					t.Fatalf("range %v: numeric %d differs", rg, i)
				}
			}
			for i := range gotB {
				if gotB[i] != wantB[i] {
					t.Fatalf("range %v: bool %d differs", rg, i)
				}
			}
		}
	}
}

func TestDiskV2SpecialFloatValues(t *testing.T) {
	schema := Schema{{Name: "X", Kind: Numeric}, {Name: "B", Kind: Boolean}}
	path := filepath.Join(t.TempDir(), "special_v2.opr")
	dw, err := NewDiskWriterV2(path, schema, 4)
	if err != nil {
		t.Fatal(err)
	}
	values := []float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.NaN(), math.MaxFloat64, math.SmallestNonzeroFloat64, -1.5, 42}
	for i, v := range values {
		if err := dw.Append([]float64{v}, []bool{i%3 == 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	dr, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	at := 0
	err = dr.Scan(ColumnSet{Numeric: []int{0}, Bool: []int{1}}, func(b *Batch) error {
		for row := 0; row < b.Len; row++ {
			got, want := b.Numeric[0][row], values[at]
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("value %d: got %v (bits %x), want %v", at, got, math.Float64bits(got), want)
			}
			if b.Bool[0][row] != (at%3 == 0) {
				t.Errorf("bool %d wrong", at)
			}
			at++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if at != len(values) {
		t.Fatalf("scanned %d rows, want %d", at, len(values))
	}
}

func TestDiskV2Empty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty_v2.opr")
	dw, err := NewDiskWriterV2(path, bankSchema(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	dr, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	if dr.NumTuples() != 0 {
		t.Fatalf("NumTuples = %d, want 0", dr.NumTuples())
	}
	if err := dr.Scan(ColumnSet{Numeric: []int{0}}, func(*Batch) error {
		return fmt.Errorf("callback on empty relation")
	}); err != nil {
		t.Fatal(err)
	}
}

func TestDiskV2ScanErrorPropagates(t *testing.T) {
	path, _ := writeTestFileV2(t, 5000, 3, 1024)
	dr, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	boom := fmt.Errorf("boom")
	calls := 0
	err = dr.Scan(ColumnSet{Numeric: []int{0}}, func(b *Batch) error {
		calls++
		if calls == 2 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("scan error = %v, want %v", err, boom)
	}
	if calls != 2 {
		t.Fatalf("callback ran %d times after error, want 2", calls)
	}
}

// TestDiskV2MatchesV1 pins that the two formats hold bit-identical
// data: the same row stream written through both writers scans back
// equal, column for column.
func TestDiskV2MatchesV1(t *testing.T) {
	n := 9000
	v1Path, _ := writeTestFile(t, n, 11)
	v2Path, _ := writeTestFileV2(t, n, 11, 2048)
	v1, err := OpenDisk(v1Path)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := OpenDisk(v2Path)
	if err != nil {
		t.Fatal(err)
	}
	cols := ColumnSet{Numeric: []int{0, 1}, Bool: []int{2, 3}}
	type rowdata struct {
		n0, n1 float64
		b0, b1 bool
	}
	read := func(dr *DiskRelation) []rowdata {
		var out []rowdata
		if err := dr.Scan(cols, func(b *Batch) error {
			for r := 0; r < b.Len; r++ {
				out = append(out, rowdata{b.Numeric[0][r], b.Numeric[1][r], b.Bool[0][r], b.Bool[1][r]})
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	r1, r2 := read(v1), read(v2)
	if len(r1) != n || len(r2) != n {
		t.Fatalf("read %d v1 rows, %d v2 rows, want %d", len(r1), len(r2), n)
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("row %d differs between formats: %v vs %v", i, r1[i], r2[i])
		}
	}
}

func TestConvertDisk(t *testing.T) {
	n := 5000
	v1Path, mem := writeTestFile(t, n, 21)
	dir := t.TempDir()

	v2Path := filepath.Join(dir, "conv_v2.opr")
	if err := ConvertDisk(v1Path, v2Path, DiskFormatV2); err != nil {
		t.Fatal(err)
	}
	backPath := filepath.Join(dir, "conv_back_v1.opr")
	if err := ConvertDisk(v2Path, backPath, DiskFormatV1); err != nil {
		t.Fatal(err)
	}
	// Converted files must carry the source file's mode, not the 0600 of
	// the temp file they were staged in (and not a forced 0644, which
	// would expose a private 0600 source's data).
	srcSt, err := os.Stat(v1Path)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(v2Path); err != nil || st.Mode().Perm() != srcSt.Mode().Perm() {
		t.Errorf("converted file mode = %v (err %v), want source's %v", st.Mode().Perm(), err, srcSt.Mode().Perm())
	}
	private := filepath.Join(dir, "private.opr")
	if err := os.Chmod(v1Path, 0o600); err != nil {
		t.Fatal(err)
	}
	if err := ConvertDisk(v1Path, private, DiskFormatV2); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(private); err != nil || st.Mode().Perm() != 0o600 {
		t.Errorf("conversion of a 0600 source produced mode %v (err %v), want 0600 preserved", st.Mode().Perm(), err)
	}
	if err := os.Chmod(v1Path, srcSt.Mode().Perm()); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{v2Path, backPath} {
		dr, err := OpenDisk(path)
		if err != nil {
			t.Fatal(err)
		}
		if dr.NumTuples() != n {
			t.Fatalf("%s: NumTuples = %d, want %d", path, dr.NumTuples(), n)
		}
		want, _ := mem.NumericColumn(0)
		wantB, _ := mem.BoolColumn(3)
		at := 0
		err = dr.Scan(ColumnSet{Numeric: []int{0}, Bool: []int{3}}, func(b *Batch) error {
			for r := 0; r < b.Len; r++ {
				if b.Numeric[0][r] != want[at] || b.Bool[0][r] != wantB[at] {
					return fmt.Errorf("row %d differs after convert", at)
				}
				at++
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := ConvertDisk(v1Path, filepath.Join(dir, "x.opr"), 99); err == nil {
		t.Errorf("unknown target version accepted")
	}
	// In-place conversion must be refused BEFORE the writer truncates
	// the source, including when dst names the source through an
	// unclean path.
	if err := ConvertDisk(v1Path, v1Path, DiskFormatV2); err == nil {
		t.Errorf("self-conversion accepted")
	}
	srcDir := filepath.Dir(v1Path)
	unclean := filepath.Join(srcDir, "..", filepath.Base(srcDir), filepath.Base(v1Path))
	if err := ConvertDisk(v1Path, unclean, DiskFormatV2); err == nil {
		t.Errorf("self-conversion via unclean path accepted")
	}
	if dr, err := OpenDisk(v1Path); err != nil || dr.NumTuples() != n {
		t.Fatalf("source damaged by refused self-conversion: %v", err)
	}
}

// TestConvertDiskFailureSafe pins the temp-file-and-rename discipline:
// a conversion that fails MID-COPY (the source turns out to be
// truncated once the scan reaches its tail) must leave no partial dst
// behind — and must leave a PRE-EXISTING dst byte-for-byte untouched,
// since the output only ever reaches dst via rename after a successful
// Close.
func TestConvertDiskFailureSafe(t *testing.T) {
	n := 3 * DefaultBatchSize
	srcPath, _ := writeTestFile(t, n, 23)
	src, err := OpenDisk(srcPath)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate the already-open source mid-data: the conversion scan
	// fails partway through the copy, after rows have been written.
	st, err := os.Stat(srcPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(srcPath, st.Size()/2); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	// Case 1: dst did not exist — nothing may be left behind.
	dst := filepath.Join(dir, "out.opr")
	if err := ConvertDiskFrom(src, dst, DiskFormatV2); err == nil {
		t.Fatal("conversion from truncated source succeeded")
	}
	if _, err := os.Stat(dst); !os.IsNotExist(err) {
		t.Errorf("failed conversion left dst behind: %v", err)
	}
	if left, _ := filepath.Glob(filepath.Join(dir, "*")); len(left) != 0 {
		t.Errorf("failed conversion left temp files behind: %v", left)
	}

	// Case 2: dst existed — it must survive unmodified.
	goodPath, _ := writeTestFileV2(t, 100, 5, 64)
	want, err := os.ReadFile(goodPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := ConvertDiskFrom(src, goodPath, DiskFormatV1); err == nil {
		t.Fatal("conversion from truncated source succeeded")
	}
	got, err := os.ReadFile(goodPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Error("failed conversion modified the pre-existing destination")
	}
	if dr, err := OpenDisk(goodPath); err != nil || dr.NumTuples() != 100 {
		t.Errorf("pre-existing destination unreadable after failed conversion: %v", err)
	}
}

// v2HeaderOffsets returns the file offsets of the v2 header fields for
// the bank schema test files: numRows, groupRows, numGroups, dirOff.
func v2HeaderOffsets(s Schema) (rowsOff, groupRowsOff, numGroupsOff, dirOffOff int64) {
	rowsOff = 4 + 4 + 4
	for _, a := range s {
		rowsOff += 1 + 2 + int64(len(a.Name))
	}
	return rowsOff, rowsOff + 8, rowsOff + 12, rowsOff + 16
}

// TestDiskV2CorruptionErrors patches individual v2 header and directory
// fields and checks each corruption is rejected with a clear error, not
// a panic or an accepted file.
func TestDiskV2CorruptionErrors(t *testing.T) {
	path, _ := writeTestFileV2(t, 2500, 5, 1000)
	valid, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	_, groupRowsOff, numGroupsOff, dirOffOff := v2HeaderOffsets(bankSchema())
	cases := []struct {
		name    string
		corrupt func(data []byte) []byte
		errHint string
	}{
		{"zero group size", func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[groupRowsOff:], 0)
			return d
		}, "group size"},
		{"absurd group size", func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[groupRowsOff:], 1<<30)
			return d
		}, "group size"},
		{"group count mismatch", func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[numGroupsOff:], 99)
			return d
		}, "block groups"},
		{"directory offset beyond file", func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[dirOffOff:], uint64(len(d))+1000)
			return d
		}, "truncated"},
		{"directory offset inside header", func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[dirOffOff:], 3)
			return d
		}, "directory offset"},
		{"truncated mid-directory", func(d []byte) []byte {
			return d[:len(d)-7]
		}, "truncated"},
		{"truncated mid-data", func(d []byte) []byte {
			return d[:len(d)/2]
		}, ""},
		{"group offset out of bounds", func(d []byte) []byte {
			dirOff := binary.LittleEndian.Uint64(d[dirOffOff:])
			binary.LittleEndian.PutUint64(d[dirOff:], uint64(len(d))) // first entry off
			return d
		}, "outside data region"},
		{"group row count corrupted", func(d []byte) []byte {
			dirOff := binary.LittleEndian.Uint64(d[dirOffOff:])
			binary.LittleEndian.PutUint32(d[dirOff+8:], 7) // first entry rows
			return d
		}, "rows"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.corrupt(append([]byte(nil), valid...))
			p := filepath.Join(t.TempDir(), "corrupt.opr")
			if err := os.WriteFile(p, data, 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := OpenDisk(p)
			if err == nil {
				t.Fatalf("corrupt file accepted")
			}
			if tc.errHint != "" && !strings.Contains(err.Error(), tc.errHint) {
				t.Errorf("error %q does not mention %q", err, tc.errHint)
			}
		})
	}
}

// TestConcurrentScanRangeBothFormats pins that disjoint ScanRange
// segments on one shared *DiskRelation share no mutable state, for both
// formats — run under -race this is the Algorithm 3.2 access pattern.
func TestConcurrentScanRangeBothFormats(t *testing.T) {
	n := 20000
	v1Path, mem := writeTestFile(t, n, 13)
	v2Path, _ := writeTestFileV2(t, n, 13, 4096)
	want := 0.0
	col, _ := mem.NumericColumn(0)
	for _, v := range col {
		want += v
	}
	for _, tc := range []struct {
		name string
		path string
	}{{"v1", v1Path}, {"v2", v2Path}} {
		t.Run(tc.name, func(t *testing.T) {
			dr, err := OpenDisk(tc.path)
			if err != nil {
				t.Fatal(err)
			}
			parts := 8
			sums := make([]float64, parts)
			errs := make(chan error, parts)
			for p := 0; p < parts; p++ {
				go func(p int) {
					start, end := p*n/parts, (p+1)*n/parts
					errs <- dr.ScanRange(start, end, ColumnSet{Numeric: []int{0}, Bool: []int{2}}, func(b *Batch) error {
						for _, v := range b.Numeric[0][:b.Len] {
							sums[p] += v
						}
						return nil
					})
				}(p)
			}
			for p := 0; p < parts; p++ {
				if err := <-errs; err != nil {
					t.Fatal(err)
				}
			}
			total := 0.0
			for _, s := range sums {
				total += s
			}
			if math.Abs(total-want) > 1e-6*math.Abs(want) {
				t.Errorf("parallel scan sum = %g, want %g", total, want)
			}
			if got := dr.BytesRead(); got <= 0 {
				t.Errorf("BytesRead = %d after scans, want > 0", got)
			}
		})
	}
}

// TestDiskV2SelectiveScanBytes pins the tentpole acceptance criterion
// in the deterministic counted-I/O model: at d=8 numeric attributes,
// scanning 2 selected columns from the v2 column-major format reads at
// least 2x fewer bytes than the v1 row-major format (it actually reads
// ~4x fewer: 16 of 65 bytes per tuple).
func TestDiskV2SelectiveScanBytes(t *testing.T) {
	schema := Schema{}
	for i := 0; i < 8; i++ {
		schema = append(schema, Attribute{Name: fmt.Sprintf("N%d", i), Kind: Numeric})
	}
	schema = append(schema, Attribute{Name: "B", Kind: Boolean})
	n := 30000
	dir := t.TempDir()
	v1Path := filepath.Join(dir, "wide_v1.opr")
	v2Path := filepath.Join(dir, "wide_v2.opr")
	w1, err := NewDiskWriter(v1Path, schema)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := NewDiskWriterV2(v2Path, schema, 4096)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	nums := make([]float64, 8)
	for i := 0; i < n; i++ {
		for j := range nums {
			nums[j] = rng.NormFloat64()
		}
		b := []bool{rng.Intn(2) == 0}
		if err := w1.Append(nums, b); err != nil {
			t.Fatal(err)
		}
		if err := w2.Append(nums, b); err != nil {
			t.Fatal(err)
		}
	}
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	v1, err := OpenDisk(v1Path)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := OpenDisk(v2Path)
	if err != nil {
		t.Fatal(err)
	}
	cols := ColumnSet{Numeric: []int{2, 5}}
	scan := func(dr *DiskRelation) int64 {
		dr.ResetBytesRead()
		sum := 0.0
		if err := dr.Scan(cols, func(b *Batch) error {
			for _, v := range b.Numeric[0][:b.Len] {
				sum += v
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return dr.BytesRead()
	}
	v1Bytes, v2Bytes := scan(v1), scan(v2)
	if v1Bytes != int64(n)*65 { // 8 floats + 1 packed bool byte
		t.Errorf("v1 bytes = %d, want %d", v1Bytes, int64(n)*65)
	}
	if v2Bytes != int64(n)*16 { // exactly the 2 selected columns
		t.Errorf("v2 bytes = %d, want %d", v2Bytes, int64(n)*16)
	}
	if v2Bytes*2 > v1Bytes {
		t.Errorf("v2 selective scan reads %d bytes, v1 %d: want >= 2x reduction", v2Bytes, v1Bytes)
	}
}

// TestDiskV2EarlyAbortBytesDeterministic pins that BytesRead is a
// deterministic cost model even when the caller aborts the scan early:
// only delivered groups are charged, never the prefetcher's in-flight
// read-ahead (whether that read finished is a goroutine race).
func TestDiskV2EarlyAbortBytesDeterministic(t *testing.T) {
	path, _ := writeTestFileV2(t, 20000, 7, 1000)
	dr, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	stop := fmt.Errorf("stop")
	abortingScan := func() int64 {
		dr.ResetBytesRead()
		batches := 0
		err := dr.Scan(ColumnSet{Numeric: []int{0}}, func(b *Batch) error {
			batches++
			if batches == 2 {
				return stop
			}
			return nil
		})
		if err != stop {
			t.Fatalf("scan error = %v, want %v", err, stop)
		}
		return dr.BytesRead()
	}
	first := abortingScan()
	if first <= 0 {
		t.Fatalf("aborted scan counted %d bytes, want > 0", first)
	}
	for i := 0; i < 20; i++ {
		if got := abortingScan(); got != first {
			t.Fatalf("aborted scan counted %d bytes on repeat %d, want %d every time", got, i, first)
		}
	}
}

func TestDiskV2ScanAlignment(t *testing.T) {
	v1Path, _ := writeTestFile(t, 100, 6)
	v2Path, _ := writeTestFileV2(t, 100, 6, 64)
	v1, err := OpenDisk(v1Path)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := OpenDisk(v2Path)
	if err != nil {
		t.Fatal(err)
	}
	if got := v1.ScanAlignment(); got != 1 {
		t.Errorf("v1 ScanAlignment = %d, want 1", got)
	}
	if got := v2.ScanAlignment(); got != 64 {
		t.Errorf("v2 ScanAlignment = %d, want 64", got)
	}
}

func TestNewDiskWriterV2Errors(t *testing.T) {
	dir := t.TempDir()
	if _, err := NewDiskWriterV2(filepath.Join(dir, "a.opr"), Schema{}, 0); err == nil {
		t.Errorf("empty schema accepted")
	}
	if _, err := NewDiskWriterV2(filepath.Join(dir, "b.opr"), bankSchema(), -1); err == nil {
		t.Errorf("negative group size accepted")
	}
	if _, err := NewDiskWriterV2(filepath.Join(dir, "c.opr"), bankSchema(), maxGroupRows+1); err == nil {
		t.Errorf("oversized group accepted")
	}
	path := filepath.Join(dir, "d.opr")
	dw, err := NewDiskWriterV2(path, bankSchema(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := dw.Append([]float64{1}, nil); err == nil {
		t.Errorf("wrong-shape append accepted")
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := dw.Close(); err != nil {
		t.Errorf("double close should be a no-op, got %v", err)
	}
	if err := dw.Append([]float64{1, 2}, []bool{true, false}); err == nil {
		t.Errorf("append after close accepted")
	}
}
