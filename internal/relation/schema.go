// Package relation provides the storage substrate of the reproduction:
// a columnar in-memory relation, a paged disk-backed relation for data
// sets that do not fit in main memory, and CSV / binary codecs.
//
// The paper's algorithms only require two access patterns, both of which
// this package exposes as streaming scans:
//
//   - a full sequential scan of selected columns (bucket assignment and
//     counting, Algorithm 3.1 step 4), and
//   - a uniform random sample of one numeric column (Algorithm 3.1
//     steps 1–2), implemented on top of the scan by package sampling.
//
// Avoiding random access is the point: the paper's premise is that the
// database is far larger than main memory, so anything but sequential
// scans and small sorted samples is prohibitively expensive.
package relation

import "fmt"

// Kind is the type of an attribute.
type Kind int

const (
	// Numeric attributes hold float64 values (balances, ages, …).
	Numeric Kind = iota
	// Boolean attributes hold yes/no values (CardLoan, …).
	Boolean
)

// String returns a human-readable kind name.
func (k Kind) String() string {
	switch k {
	case Numeric:
		return "numeric"
	case Boolean:
		return "boolean"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Attribute describes one column of a relation.
type Attribute struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of attributes.
type Schema []Attribute

// Validate checks that the schema is non-empty and attribute names are
// unique and non-blank.
func (s Schema) Validate() error {
	if len(s) == 0 {
		return fmt.Errorf("relation: empty schema")
	}
	seen := make(map[string]bool, len(s))
	for i, a := range s {
		if a.Name == "" {
			return fmt.Errorf("relation: attribute %d has empty name", i)
		}
		if seen[a.Name] {
			return fmt.Errorf("relation: duplicate attribute name %q", a.Name)
		}
		if a.Kind != Numeric && a.Kind != Boolean {
			return fmt.Errorf("relation: attribute %q has invalid kind %d", a.Name, int(a.Kind))
		}
		seen[a.Name] = true
	}
	return nil
}

// Index returns the position of the attribute with the given name, or
// -1 if absent.
func (s Schema) Index(name string) int {
	for i, a := range s {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// NumericIndices returns the schema positions of all numeric attributes.
func (s Schema) NumericIndices() []int {
	var out []int
	for i, a := range s {
		if a.Kind == Numeric {
			out = append(out, i)
		}
	}
	return out
}

// BooleanIndices returns the schema positions of all Boolean attributes.
func (s Schema) BooleanIndices() []int {
	var out []int
	for i, a := range s {
		if a.Kind == Boolean {
			out = append(out, i)
		}
	}
	return out
}

// Names returns the attribute names in schema order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, a := range s {
		out[i] = a.Name
	}
	return out
}

// ColumnSet selects columns for a scan, by schema position.
type ColumnSet struct {
	Numeric []int // positions of numeric attributes to materialize
	Bool    []int // positions of Boolean attributes to materialize
}

// Validate checks every requested position against the schema.
func (c ColumnSet) Validate(s Schema) error {
	for _, i := range c.Numeric {
		if i < 0 || i >= len(s) {
			return fmt.Errorf("relation: numeric column %d out of range", i)
		}
		if s[i].Kind != Numeric {
			return fmt.Errorf("relation: column %d (%s) is not numeric", i, s[i].Name)
		}
	}
	for _, i := range c.Bool {
		if i < 0 || i >= len(s) {
			return fmt.Errorf("relation: bool column %d out of range", i)
		}
		if s[i].Kind != Boolean {
			return fmt.Errorf("relation: column %d (%s) is not boolean", i, s[i].Name)
		}
	}
	return nil
}

// Batch is one chunk of scanned tuples in columnar form. Numeric[i] and
// Bool[j] are parallel to the requesting ColumnSet's Numeric and Bool
// slices; each has length Len. Batches are reused between callbacks —
// callers must not retain the slices after the callback returns.
type Batch struct {
	Len     int
	Numeric [][]float64
	Bool    [][]bool
}

// Relation is a read-only table of tuples supporting streaming scans.
type Relation interface {
	// Schema returns the relation's schema.
	Schema() Schema
	// NumTuples returns the number of tuples.
	NumTuples() int
	// Scan streams the selected columns in storage order, invoking fn
	// with reused batches. fn returning an error aborts the scan and the
	// error is propagated.
	Scan(cols ColumnSet, fn func(*Batch) error) error
}

// DefaultBatchSize is the number of tuples per scan batch.
const DefaultBatchSize = 8192
