package relation

// Zone-map-aware scan scheduling. Static equal-row segmentation
// (AlignedSegments) balances a parallel scan only when every row costs
// the same to read — exactly what stops being true once v3 zone maps
// prune block groups: a worker whose segment happens to hold the
// matching value range decodes every block while its neighbors skip
// theirs and go idle. The scheduler below fixes the skew at its
// source: the storage layer prices each block-group-aligned atom from
// its directory (pruned groups cost ~0, surviving groups their
// physical encoded bytes), PlanScanChunks packs the atoms into more
// chunks than workers with roughly equal estimated cost, and the
// workers claim chunks dynamically off a shared queue — cheap chunks
// drain fast, expensive ones spread across whoever is free. Pricing
// from the directory pays a second dividend: a chunk made entirely of
// zone-refuted groups (ScanChunk.Pruned) needs no scan at all — its
// rows fold straight into the skip accounting — where the static split
// walks every such group through the scan machinery just to skip it.
//
// Determinism contract: the chunk list is a pure function of the
// relation's directory, the column set, the predicate, and the worker
// count — it does NOT depend on timing. Callers keep one partial per
// CHUNK (not per worker) and fold the partials in chunk index order,
// so every integer statistic is bit-identical across worker counts,
// placements, and steal orders; float accumulations are identical for
// a fixed worker count (same chunk plan, same fold order) and remain
// subject to the serial-scan rule when bit-reproducibility across
// worker counts is required.

// ScanChunk is one dynamically claimable unit of a parallel scan:
// global rows [Start, End), with the scheduler's cost estimate (v3:
// physical encoded bytes the scan will read after zone-map pruning;
// fallbacks: row count). Pruned marks a chunk whose every block group
// the zone maps refute under the planning predicate: a pruned scan of
// it is guaranteed to deliver zero batches, so a scheduler may settle
// it without issuing the scan at all — the chunk's whole contribution
// is End-Start skipped rows. Static segmentation has no such shortcut;
// it pays the per-group scan machinery even for regions the directory
// already proved empty.
type ScanChunk struct {
	Start, End int
	Cost       int64
	Pruned     bool
}

// BlockCostModel is implemented by relations that can price storage-
// aligned scan atoms from their block directory. ScanCosts returns the
// atom boundaries (cuts, len k+1, cuts[0] = 0, cuts[k] = NumTuples())
// and each atom's estimated read cost under the predicate (len k).
// Atoms the zone maps prove empty under pred cost 0 — and ONLY those:
// a 0-cost atom is a guarantee that scanning it under pred delivers no
// rows, which the planner turns into scan-free Pruned chunks. A nil,
// nil return means the relation has no directory to price from
// (callers fall back to equal-row segmentation).
type BlockCostModel interface {
	ScanCosts(cols ColumnSet, pred *Predicate) (cuts []int, costs []int64)
}

// scanChunksPerPE is the steal-slack factor: the planner aims for this
// many chunks per worker, so a worker that drew only pruned groups can
// claim more work instead of idling, while per-chunk state stays
// bounded.
const scanChunksPerPE = 4

// ScanCosts implements BlockCostModel for single-file relations. v3
// files price each block group as the encoded payload bytes of the
// selected columns — zero when the group's zone maps refute pred — so
// the estimate is exactly what BytesRead will charge for scanning the
// group. v2 files have block groups but no directory bytes or zone
// maps; their groups are priced uniformly by row count, which degrades
// the planner to equal-row packing with steal slack. v1 row-major
// files return nil (no preferred atoms).
func (dr *DiskRelation) ScanCosts(cols ColumnSet, pred *Predicate) ([]int, []int64) {
	if dr.version != DiskFormatV2 && dr.version != DiskFormatV3 {
		return nil, nil
	}
	groups := len(dr.groupOffs)
	if groups == 0 {
		return nil, nil
	}
	cuts := make([]int, groups+1)
	costs := make([]int64, groups)
	for g := 0; g < groups; g++ {
		cuts[g] = g * dr.groupRows
		gRows := dr.groupRows
		if g == groups-1 {
			gRows = dr.numRows - cuts[g]
		}
		if dr.version == DiskFormatV2 {
			costs[g] = int64(gRows)
			continue
		}
		if pred != nil && dr.v3GroupPruned(g, pred) {
			continue // zone-refuted: the scan skips it unread, cost 0
		}
		var c int64
		for _, a := range cols.Numeric {
			c += int64(dr.v3NumBlock(g, dr.numPos[a]).encLen)
		}
		for _, a := range cols.Bool {
			c += int64(dr.v3BoolBlock(g, dr.boolPos[a]).encLen)
		}
		if c == 0 {
			// Degenerate column set: keep surviving groups visibly more
			// expensive than pruned ones so packing still spreads them.
			c = int64(gRows)
		}
		costs[g] = c
	}
	cuts[groups] = dr.numRows
	return cuts, costs
}

// ScanCosts implements BlockCostModel for sharded relations: the
// per-shard atom lists concatenated in global row order, each shard's
// cuts translated by its global start. If any shard cannot price its
// atoms the whole relation declines, so the estimate never silently
// mixes priced and unpriced regions.
func (sr *ShardedRelation) ScanCosts(cols ColumnSet, pred *Predicate) ([]int, []int64) {
	ss := sr.cur.Load()
	cuts := []int{0}
	var costs []int64
	for i, shard := range ss.shards {
		if shard.NumTuples() == 0 {
			continue // empty shard: no atoms to contribute
		}
		sCuts, sCosts := shard.ScanCosts(cols, pred)
		if sCuts == nil {
			return nil, nil
		}
		base := ss.starts[i]
		for j, c := range sCosts {
			cuts = append(cuts, base+sCuts[j+1])
			costs = append(costs, c)
		}
	}
	if len(costs) == 0 {
		return nil, nil
	}
	return cuts, costs
}

// PlanScanChunks partitions [0, NumTuples()) into storage-aligned
// chunks of roughly equal estimated scan cost for pes workers to claim
// dynamically. When the relation prices its atoms (BlockCostModel),
// consecutive atoms are packed greedily until a chunk holds its fair
// share of the total estimate — zone-pruned groups are effectively
// free, so a chunk covering a pruned region spans many more rows than
// one covering surviving groups. Otherwise the static equal-row
// AlignedSegments split is returned as chunks, which preserves the
// pre-scheduler behavior exactly.
//
// The plan is deterministic: same relation state, columns, predicate,
// and pes yield the same chunks. len(result) >= 1 for non-empty
// relations; chunks are contiguous, non-empty, and cover every row.
func PlanScanChunks(rel Relation, pes int, cols ColumnSet, pred *Predicate) []ScanChunk {
	n := rel.NumTuples()
	if n == 0 {
		return nil
	}
	if pes < 1 {
		pes = 1
	}
	var cuts []int
	var costs []int64
	if cm, ok := rel.(BlockCostModel); ok {
		cuts, costs = cm.ScanCosts(cols, pred)
	}
	if cuts == nil {
		segs := AlignedSegments(rel, n, pes)
		chunks := make([]ScanChunk, 0, pes)
		for p := 0; p < pes; p++ {
			if segs[p+1] > segs[p] {
				chunks = append(chunks, ScanChunk{Start: segs[p], End: segs[p+1], Cost: int64(segs[p+1] - segs[p])})
			}
		}
		return chunks
	}
	var total int64
	surviving := 0
	for _, c := range costs {
		total += c
		if c > 0 {
			surviving++
		}
	}
	target := pes * scanChunksPerPE
	if target > surviving {
		target = surviving
	}
	if target < 1 {
		target = 1
	}
	per := total / int64(target)
	if per < 1 {
		per = 1 // all-pruned scans collapse into one free chunk
	}
	// Maximal runs of zero-cost atoms become dedicated Pruned chunks
	// (cost 0 means the zone maps refuted the atom outright — see
	// ScanCosts — so the run is provably empty under pred and a
	// scheduler can settle it scan-free); surviving runs are packed
	// greedily to the per-chunk share.
	chunks := make([]ScanChunk, 0, target+2)
	for g := 0; g < len(costs); {
		if costs[g] == 0 {
			r := g
			for r < len(costs) && costs[r] == 0 {
				r++
			}
			chunks = append(chunks, ScanChunk{Start: cuts[g], End: cuts[r], Pruned: true})
			g = r
			continue
		}
		start, acc := cuts[g], int64(0)
		for g < len(costs) && costs[g] != 0 {
			acc += costs[g]
			g++
			if acc >= per {
				chunks = append(chunks, ScanChunk{Start: start, End: cuts[g], Cost: acc})
				start, acc = cuts[g], 0
			}
		}
		if cuts[g] > start {
			chunks = append(chunks, ScanChunk{Start: start, End: cuts[g], Cost: acc})
		}
	}
	return chunks
}
