package relation

import (
	"math"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
)

// TestClusterByOrdersRows pins the ClusterBy contract: rows come back
// ordered by the cluster column (NaN last), the sort is stable for
// equal keys, and every tuple survives the permute bit-exactly.
func TestClusterByOrdersRows(t *testing.T) {
	schema := Schema{{Name: "K", Kind: Numeric}, {Name: "Seq", Kind: Numeric}, {Name: "B", Kind: Boolean}}
	n := 5000
	rng := rand.New(rand.NewSource(3))
	type row struct {
		k, seq float64
		b      bool
	}
	rows := make([]row, n)
	for i := range rows {
		k := float64(rng.Intn(40)) // heavy ties to exercise stability
		if i%97 == 0 {
			k = math.NaN()
		}
		rows[i] = row{k, float64(i), rng.Intn(2) == 0}
	}
	want := append([]row(nil), rows...)
	sort.SliceStable(want, func(i, j int) bool {
		a, b := want[i].k, want[j].k
		if math.IsNaN(b) {
			return !math.IsNaN(a)
		}
		return a < b
	})

	for _, version := range []int{DiskFormatV1, DiskFormatV2, DiskFormatV3} {
		path := filepath.Join(t.TempDir(), "clustered.opr")
		var dw *DiskWriter
		var err error
		switch version {
		case DiskFormatV1:
			dw, err = NewDiskWriter(path, schema)
		case DiskFormatV2:
			dw, err = NewDiskWriterV2(path, schema, 512)
		default:
			dw, err = NewDiskWriterV3(path, schema, 512)
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := dw.ClusterBy(0); err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if err := dw.Append([]float64{r.k, r.seq}, []bool{r.b}); err != nil {
				t.Fatal(err)
			}
		}
		if err := dw.Close(); err != nil {
			t.Fatal(err)
		}
		dr, err := OpenDisk(path)
		if err != nil {
			t.Fatal(err)
		}
		at := 0
		err = dr.Scan(ColumnSet{Numeric: []int{0, 1}, Bool: []int{2}}, func(b *Batch) error {
			for r := 0; r < b.Len; r++ {
				got := row{b.Numeric[0][r], b.Numeric[1][r], b.Bool[0][r]}
				w := want[at]
				if math.Float64bits(got.k) != math.Float64bits(w.k) || got.seq != w.seq || got.b != w.b {
					t.Fatalf("v%d row %d: got %v, want %v", version, at, got, w)
				}
				at++
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if at != n {
			t.Fatalf("v%d: scanned %d rows, want %d", version, at, n)
		}
	}
}

// TestClusterByBoolean pins Boolean cluster keys: all false rows
// precede all true rows, stably.
func TestClusterByBoolean(t *testing.T) {
	schema := Schema{{Name: "Seq", Kind: Numeric}, {Name: "Flag", Kind: Boolean}}
	path := filepath.Join(t.TempDir(), "boolclustered.opr")
	dw, err := NewDiskWriterV3(path, schema, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := dw.ClusterBy(1); err != nil {
		t.Fatal(err)
	}
	n := 100
	for i := 0; i < n; i++ {
		if err := dw.Append([]float64{float64(i)}, []bool{i%3 == 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	dr, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	var flags []bool
	var seqs []float64
	err = dr.Scan(ColumnSet{Numeric: []int{0}, Bool: []int{1}}, func(b *Batch) error {
		seqs = append(seqs, b.Numeric[0][:b.Len]...)
		flags = append(flags, b.Bool[0][:b.Len]...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	seenTrue := false
	prev := -1.0
	for i, f := range flags {
		if f {
			if !seenTrue {
				seenTrue = true
				prev = -1
			}
		} else if seenTrue {
			t.Fatalf("false row at %d after the first true row", i)
		}
		// Stability: within each half, Seq stays ascending.
		if seqs[i] <= prev {
			t.Fatalf("row %d: Seq %g not ascending within its key class (prev %g)", i, seqs[i], prev)
		}
		prev = seqs[i]
	}
	if !seenTrue {
		t.Fatal("no true rows delivered")
	}
}

// TestClusterByErrors pins the misuse errors.
func TestClusterByErrors(t *testing.T) {
	schema := Schema{{Name: "X", Kind: Numeric}}
	path := filepath.Join(t.TempDir(), "c.opr")
	dw, err := NewDiskWriterV3(path, schema, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := dw.ClusterBy(5); err == nil {
		t.Error("out-of-schema cluster attribute accepted")
	}
	if err := dw.ClusterBy(0); err != nil {
		t.Fatal(err)
	}
	if err := dw.ClusterBy(0); err == nil {
		t.Error("second ClusterBy accepted")
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := dw.ClusterBy(0); err == nil {
		t.Error("ClusterBy on closed writer accepted")
	}

	path2 := filepath.Join(t.TempDir(), "c2.opr")
	dw2, err := NewDiskWriterV3(path2, schema, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := dw2.Append([]float64{1}, nil); err != nil {
		t.Fatal(err)
	}
	if err := dw2.ClusterBy(0); err == nil {
		t.Error("ClusterBy after Append accepted")
	}
	if err := dw2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestConvertFileClustered pins the conversion path: the destination
// holds the same multiset of tuples ordered by the cluster column, and
// the clustered v3 layout actually becomes prunable — a selective
// range scan on the cluster column skips most block groups and reads
// fewer physical bytes than the same scan on the unclustered file.
func TestConvertFileClustered(t *testing.T) {
	schema := Schema{{Name: "V", Kind: Numeric}, {Name: "B", Kind: Boolean}}
	srcPath := filepath.Join(t.TempDir(), "src.opr")
	dw, err := NewDiskWriterV3(srcPath, schema, 4096)
	if err != nil {
		t.Fatal(err)
	}
	// The conversion writes with the DEFAULT 64Ki group size, so the
	// relation must span several default groups for zone maps to bite.
	n := 4 * DefaultGroupRows
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < n; i++ {
		// Shuffled uniform values: every group's zone map spans the whole
		// range, so nothing prunes before clustering.
		if err := dw.Append([]float64{rng.Float64() * 1000}, []bool{i%2 == 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	src, err := OpenDisk(srcPath)
	if err != nil {
		t.Fatal(err)
	}
	dstPath := filepath.Join(t.TempDir(), "clustered.opr")
	if err := ConvertFileClustered(src, dstPath, DiskFormatV3, 0); err != nil {
		t.Fatal(err)
	}
	dst, err := OpenDisk(dstPath)
	if err != nil {
		t.Fatal(err)
	}
	var got []float64
	if err := dst.Scan(ColumnSet{Numeric: []int{0}}, func(b *Batch) error {
		got = append(got, b.Numeric[0][:b.Len]...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != n || !sort.Float64sAreSorted(got) {
		t.Fatalf("clustered conversion delivered %d rows, sorted=%v", len(got), sort.Float64sAreSorted(got))
	}

	pred := &Predicate{Ranges: []RangePredicate{{Attr: 0, Lo: 100, Hi: 140}}}
	scanBytes := func(dr *DiskRelation) (int64, int) {
		dr.ResetBytesRead()
		skipped := 0
		if err := dr.ScanRangePruned(0, n, ColumnSet{Numeric: []int{0}}, pred,
			func(rows int) error { skipped += rows; return nil },
			func(*Batch) error { return nil }); err != nil {
			t.Fatal(err)
		}
		return dr.BytesRead(), skipped
	}
	srcBytes, srcSkipped := scanBytes(src)
	dstBytes, dstSkipped := scanBytes(dst)
	if srcSkipped != 0 {
		t.Errorf("shuffled source pruned %d rows; zone maps should be useless there", srcSkipped)
	}
	if dstSkipped == 0 {
		t.Error("clustered destination pruned nothing")
	}
	if dstBytes*2 > srcBytes {
		t.Errorf("clustered selective scan read %d bytes, unclustered %d: want at least 2x fewer", dstBytes, srcBytes)
	}
}
