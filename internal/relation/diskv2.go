package relation

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
)

// Format v2 — column-major block groups (little endian):
//
//	magic     [4]byte  "OPTR"
//	version   uint32   2
//	nattrs    uint32
//	per attribute: kind uint8, nameLen uint16, name []byte
//	numRows   uint64   (patched on Close)
//	groupRows uint32   rows per full block group
//	numGroups uint32   (patched on Close)
//	dirOff    uint64   file offset of the group directory (patched on Close)
//	block groups, back to back
//	directory at dirOff: numGroups × { off uint64, rows uint32 }
//
// Within a group of g rows, every column is contiguous:
//
//	numeric column j (dense order): g × 8 bytes of float64 at j·8·g
//	boolean column j (dense order): ceil(g/8) bytes of packed bits
//	    (row r is bit r%8 of byte r/8, LSB first) after the numerics
//
// The column-major layout is what makes selective scans cheap: a scan
// touching k of d numeric attributes seeks to k column blocks per group
// and reads ~k/d of the bytes a v1 row scan would. All groups except
// the last hold exactly groupRows rows, so the group containing any row
// is computable without consulting the directory; the directory exists
// to make offsets explicit (future block compression or reordering) and
// to let the reader validate a file before trusting it.
//
// Scans overlap I/O with decoding: a prefetcher goroutine reads group
// N+1's selected column blocks while the caller decodes and counts
// group N (see scanRangeV2). Memory stays bounded at
// v2ReadAheadGroups buffers of selected-columns size.

const (
	// DefaultGroupRows is the block-group size NewDiskWriterV2 uses when
	// none is given: 64Ki rows keeps each numeric column block at 512 KB
	// — large enough for sequential-read bandwidth, small enough that a
	// handful of in-flight groups stay comfortably in memory.
	DefaultGroupRows = 1 << 16
	// maxGroupRows bounds declared group sizes to keep hostile headers
	// from demanding absurd buffers.
	maxGroupRows = 1 << 22
	// v2ReadAheadGroups is the depth of the scan pipeline: how many
	// filled group buffers may exist at once (the consumer's current
	// group plus the prefetcher's read-ahead).
	v2ReadAheadGroups = 2
)

// v2DirEntrySize is the encoded size of one directory entry.
const v2DirEntrySize = 8 + 4

// groupBytesV2 returns the encoded size of a block group of rows tuples
// for a schema with the given dense column counts.
func groupBytesV2(nums, bools, rows int) int64 {
	return int64(nums)*8*int64(rows) + int64(bools)*int64((rows+7)/8)
}

// NewDiskWriterV2 creates a v2 column-major relation file at path,
// staged in a temp file beside it and renamed over it by a successful
// Close. groupRows is the block-group size; 0 selects
// DefaultGroupRows. Call Append for each tuple and Close to finalize
// (or Discard to abandon).
func NewDiskWriterV2(path string, schema Schema, groupRows int) (*DiskWriter, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if groupRows == 0 {
		groupRows = DefaultGroupRows
	}
	if groupRows < 1 || groupRows > maxGroupRows {
		return nil, fmt.Errorf("relation: group size %d rows out of [1, %d]", groupRows, maxGroupRows)
	}
	f, err := createStaged(path)
	if err != nil {
		return nil, err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	dw := &DiskWriter{
		f: f, w: w, schema: schema, version: DiskFormatV2,
		groupRows: groupRows,
		dst:       path,
		tmp:       f.Name(),
	}
	rowsOff, err := writeDiskHeader(w, schema, DiskFormatV2)
	if err != nil {
		dw.abort()
		return nil, err
	}
	// groupRows, then placeholders for numGroups and dirOff.
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(groupRows))
	w.Write(u32[:])
	var pad [12]byte
	if _, err := w.Write(pad[:]); err != nil {
		dw.abort()
		return nil, err
	}
	dw.rowsOff = rowsOff
	dw.off = rowsOff + 8 + 4 + 4 + 8
	for _, a := range schema {
		if a.Kind == Numeric {
			dw.nums++
		} else {
			dw.bools++
		}
	}
	dw.colNums = make([][]float64, dw.nums)
	for j := range dw.colNums {
		dw.colNums[j] = make([]float64, 0, groupRows)
	}
	dw.colBools = make([][]byte, dw.bools)
	for j := range dw.colBools {
		dw.colBools[j] = make([]byte, 0, (groupRows+7)/8)
	}
	return dw, nil
}

// appendV2 buffers one tuple into the pending block group, flushing it
// when full.
func (dw *DiskWriter) appendV2(nums []float64, bools []bool) error {
	for j, v := range nums {
		dw.colNums[j] = append(dw.colNums[j], v)
	}
	if dw.pending%8 == 0 {
		for j := range dw.colBools {
			dw.colBools[j] = append(dw.colBools[j], 0)
		}
	}
	for j, b := range bools {
		if b {
			dw.colBools[j][dw.pending/8] |= 1 << uint(dw.pending%8)
		}
	}
	dw.pending++
	dw.rows++
	if dw.pending == dw.groupRows {
		return dw.flushGroup()
	}
	return nil
}

// flushGroup writes the pending block group's columns contiguously and
// records its directory entry. v3 writers share the group buffering but
// encode each block before writing it.
func (dw *DiskWriter) flushGroup() error {
	if dw.version == DiskFormatV3 {
		return dw.flushGroupV3()
	}
	g := dw.pending
	if g == 0 {
		return nil
	}
	if dw.encodeBuf == nil {
		dw.encodeBuf = make([]byte, 8*dw.groupRows)
	}
	for _, col := range dw.colNums {
		buf := dw.encodeBuf[:8*g]
		for i, v := range col {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
		}
		if _, err := dw.w.Write(buf); err != nil {
			return err
		}
	}
	for _, col := range dw.colBools {
		if _, err := dw.w.Write(col); err != nil {
			return err
		}
	}
	dw.groupOffs = append(dw.groupOffs, dw.off)
	dw.off += groupBytesV2(dw.nums, dw.bools, g)
	for j := range dw.colNums {
		dw.colNums[j] = dw.colNums[j][:0]
	}
	for j := range dw.colBools {
		dw.colBools[j] = dw.colBools[j][:0]
	}
	dw.pending = 0
	return nil
}

// closeV2 flushes the tail group, writes the group directory, and
// patches numRows, numGroups, and dirOff into the header.
func (dw *DiskWriter) closeV2() error {
	fail := func(err error) error {
		dw.abort()
		return err
	}
	tail := dw.pending
	if err := dw.flushGroup(); err != nil {
		return fail(err)
	}
	dirOff := dw.off
	var entry [v2DirEntrySize]byte
	for i, off := range dw.groupOffs {
		rows := dw.groupRows
		if i == len(dw.groupOffs)-1 && tail > 0 {
			rows = tail
		}
		binary.LittleEndian.PutUint64(entry[0:], uint64(off))
		binary.LittleEndian.PutUint32(entry[8:], uint32(rows))
		if _, err := dw.w.Write(entry[:]); err != nil {
			return fail(err)
		}
	}
	if err := dw.w.Flush(); err != nil {
		return fail(err)
	}
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], dw.rows)
	if _, err := dw.f.WriteAt(u64[:], dw.rowsOff); err != nil {
		return fail(err)
	}
	var tailer [12]byte
	binary.LittleEndian.PutUint32(tailer[0:], uint32(len(dw.groupOffs)))
	binary.LittleEndian.PutUint64(tailer[4:], uint64(dirOff))
	if _, err := dw.f.WriteAt(tailer[:], dw.rowsOff+8+4); err != nil {
		return fail(err)
	}
	return dw.commit()
}

// openV2Meta parses and validates the v2 header tail and block-group
// directory. r is positioned just after numRows; dr.dataOff still
// holds the offset of the position r is at and is advanced past the v2
// fields. Every declared quantity is cross-checked before any
// group-sized allocation so corrupt or truncated files fail with a
// clear error instead of a panic or an absurd allocation.
func (dr *DiskRelation) openV2Meta(f *os.File, r *bufio.Reader) error {
	var tail [16]byte
	if _, err := metaReadFull(r, tail[:]); err != nil {
		return fmt.Errorf("relation: %s: reading v2 header: %w", dr.path, err)
	}
	dr.groupRows = int(binary.LittleEndian.Uint32(tail[0:]))
	numGroups := int(binary.LittleEndian.Uint32(tail[4:]))
	dirOff := int64(binary.LittleEndian.Uint64(tail[8:]))
	dr.dataOff += 16
	if dr.groupRows < 1 || dr.groupRows > maxGroupRows {
		return fmt.Errorf("relation: %s: group size %d rows out of [1, %d]", dr.path, dr.groupRows, maxGroupRows)
	}
	wantGroups := (dr.numRows + dr.groupRows - 1) / dr.groupRows
	if numGroups != wantGroups {
		return fmt.Errorf("relation: %s: directory declares %d block groups, %d rows of %d need %d",
			dr.path, numGroups, dr.numRows, dr.groupRows, wantGroups)
	}
	if dirOff < dr.dataOff {
		return fmt.Errorf("relation: %s: directory offset %d inside header (data starts at %d)", dr.path, dirOff, dr.dataOff)
	}
	st, err := f.Stat()
	if err != nil {
		return err
	}
	dirBytes := int64(numGroups) * v2DirEntrySize
	if dirOff+dirBytes > st.Size() {
		return fmt.Errorf("relation: %s truncated: %d bytes, directory needs [%d, %d)",
			dr.path, st.Size(), dirOff, dirOff+dirBytes)
	}
	dir := make([]byte, dirBytes)
	if _, err := metaReadAt(f, dir, dirOff); err != nil {
		return fmt.Errorf("relation: %s: reading block directory: %w", dr.path, err)
	}
	dr.groupOffs = make([]int64, numGroups)
	for g := 0; g < numGroups; g++ {
		off := int64(binary.LittleEndian.Uint64(dir[g*v2DirEntrySize:]))
		rows := int(binary.LittleEndian.Uint32(dir[g*v2DirEntrySize+8:]))
		wantRows := dr.groupRows
		if g == numGroups-1 {
			wantRows = dr.numRows - (numGroups-1)*dr.groupRows
		}
		if rows != wantRows {
			return fmt.Errorf("relation: %s: block group %d declares %d rows, want %d", dr.path, g, rows, wantRows)
		}
		if off < dr.dataOff || off+groupBytesV2(dr.nums, dr.bools, rows) > dirOff {
			return fmt.Errorf("relation: %s: block group %d at [%d, %d) outside data region [%d, %d)",
				dr.path, g, off, off+groupBytesV2(dr.nums, dr.bools, rows), dr.dataOff, dirOff)
		}
		dr.groupOffs[g] = off
	}
	return nil
}

// rowsInGroup returns the row count of block group g.
func (dr *DiskRelation) rowsInGroup(g int) int {
	if g == len(dr.groupOffs)-1 {
		if tail := dr.numRows - g*dr.groupRows; tail < dr.groupRows {
			return tail
		}
	}
	return dr.groupRows
}

// v2Fetch is one block group's selected column data, produced by the
// prefetcher and consumed by the decode loop. buf holds the selected
// numeric column slices back to back (rows×8 bytes each), then the
// selected boolean column byte ranges (all the same length for a given
// row window).
type v2Fetch struct {
	group int
	first int // first delivered row within the group
	rows  int
	buf   []byte
	err   error
}

// v2BufPool recycles group buffers across scans so steady-state
// pipelines allocate nothing per group.
var v2BufPool sync.Pool

func v2GetBuf(size int) []byte {
	if b, ok := v2BufPool.Get().([]byte); ok && cap(b) >= size {
		return b[:size]
	}
	return make([]byte, size)
}

// scanRangeV2 streams rows [start, end) of a v2 file through fn with an
// overlapped read-ahead pipeline: a prefetcher goroutine reads block
// group N+1's selected column blocks (one pread per column) while this
// goroutine decodes group N into batches and runs fn. Double-buffered:
// at most v2ReadAheadGroups group buffers are in flight, so memory is
// bounded by 2 × (selected columns × group size) regardless of the
// relation's size.
func (dr *DiskRelation) scanRangeV2(start, end int, cols ColumnSet, fn func(*Batch) error) error {
	f, err := os.Open(dr.path)
	if err != nil {
		return err
	}
	defer f.Close()

	numSel := make([]int, len(cols.Numeric)) // dense numeric positions
	for k, i := range cols.Numeric {
		numSel[k] = dr.numPos[i]
	}
	boolSel := make([]int, len(cols.Bool)) // dense boolean positions
	for k, i := range cols.Bool {
		boolSel[k] = dr.boolPos[i]
	}

	g0, g1 := start/dr.groupRows, (end-1)/dr.groupRows
	ready := make(chan *v2Fetch, v2ReadAheadGroups)
	free := make(chan []byte, v2ReadAheadGroups)
	for i := 0; i < v2ReadAheadGroups; i++ {
		free <- nil // sized lazily by the prefetcher
	}
	stop := make(chan struct{})
	prefDone := make(chan struct{})
	// On every exit path — completion, callback error, early abort —
	// stop the prefetcher, wait for it to exit, then reclaim all group
	// buffers into the pool. Early aborts are the COMMON case (the
	// sampling pass always stops at its last sorted index), so buffers
	// parked in free or queued in ready must survive for the next scan,
	// not be dropped for the GC. Draining is race-free only after
	// prefDone: the prefetcher no longer touches either channel.
	defer func() {
		close(stop)
		<-prefDone
		for {
			select {
			case fg, ok := <-ready:
				if ok && fg.buf != nil {
					v2BufPool.Put(fg.buf)
				}
				if !ok {
					// Channel closed and empty; fall through to free.
					ready = nil
				}
			case buf := <-free:
				if buf != nil {
					v2BufPool.Put(buf)
				}
			default:
				return
			}
		}
	}()

	fill := func(g int, buf []byte) *v2Fetch {
		gRows := dr.rowsInGroup(g)
		gStart := g * dr.groupRows
		first, last := 0, gRows
		if start > gStart {
			first = start - gStart
		}
		if end < gStart+gRows {
			last = end - gStart
		}
		rows := last - first
		numLen := rows * 8
		byteLo, byteHi := first/8, (first+rows+7)/8
		boolLen := byteHi - byteLo
		total := len(numSel)*numLen + len(boolSel)*boolLen
		if cap(buf) < total {
			buf = v2GetBuf(total)
		}
		buf = buf[:total]
		fg := &v2Fetch{group: g, first: first, rows: rows, buf: buf}
		base := dr.groupOffs[g]
		boolBase := base + int64(dr.nums)*8*int64(gRows)
		bytesPerBool := int64((gRows + 7) / 8)
		pos := 0
		for _, p := range numSel {
			off := base + int64(p)*8*int64(gRows) + int64(first)*8
			if _, err := uncountedReadAt(f, buf[pos:pos+numLen], off); err != nil {
				fg.err = fmt.Errorf("relation: reading column block of group %d of %s: %w", g, dr.path, err)
				return fg
			}
			pos += numLen
		}
		for _, q := range boolSel {
			off := boolBase + int64(q)*bytesPerBool + int64(byteLo)
			if _, err := uncountedReadAt(f, buf[pos:pos+boolLen], off); err != nil {
				fg.err = fmt.Errorf("relation: reading boolean block of group %d of %s: %w", g, dr.path, err)
				return fg
			}
			pos += boolLen
		}
		return fg
	}

	go func() {
		defer close(prefDone)
		defer close(ready)
		for g := g0; g <= g1; g++ {
			var buf []byte
			select {
			case buf = <-free:
			case <-stop:
				return
			}
			fg := fill(g, buf)
			select {
			case ready <- fg:
			case <-stop:
				return
			}
			if fg.err != nil {
				return
			}
		}
	}()

	batch := &Batch{
		Numeric: make([][]float64, len(cols.Numeric)),
		Bool:    make([][]bool, len(cols.Bool)),
	}
	for k := range batch.Numeric {
		batch.Numeric[k] = make([]float64, DefaultBatchSize)
	}
	for k := range batch.Bool {
		batch.Bool[k] = make([]bool, DefaultBatchSize)
	}

	for fg := range ready {
		if fg.err != nil {
			v2BufPool.Put(fg.buf)
			return fg.err
		}
		// Count bytes at delivery, not inside the prefetcher: a scan the
		// caller aborts early must not charge for a group whose read-ahead
		// happened to finish — whether it did is a goroutine race, and
		// BytesRead is documented as a deterministic cost model.
		dr.bytesRead.Add(int64(len(fg.buf)))
		numLen := fg.rows * 8
		boolLen := (fg.first+fg.rows+7)/8 - fg.first/8
		boolStart := len(numSel) * numLen
		bitBase := fg.first % 8
		for r0 := 0; r0 < fg.rows; r0 += DefaultBatchSize {
			n := DefaultBatchSize
			if r0+n > fg.rows {
				n = fg.rows - r0
			}
			for k := range numSel {
				src := fg.buf[k*numLen+r0*8:]
				dst := batch.Numeric[k][:n]
				for i := range dst {
					dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[i*8:]))
				}
				batch.Numeric[k] = dst
			}
			for k := range boolSel {
				src := fg.buf[boolStart+k*boolLen:]
				dst := batch.Bool[k][:n]
				bit := bitBase + r0
				for i := range dst {
					dst[i] = src[(bit+i)>>3]&(1<<uint((bit+i)&7)) != 0
				}
				batch.Bool[k] = dst
			}
			batch.Len = n
			if err := fn(batch); err != nil {
				v2BufPool.Put(fg.buf)
				return err
			}
		}
		select {
		case free <- fg.buf:
		default:
			v2BufPool.Put(fg.buf)
		}
	}
	return nil
}

// ConvertDisk rewrites the relation file at src into the given format
// version at dst, streaming batch by batch — the migration path among
// v1 row-major, v2 column-major, and v3 compressed files (any
// direction; same-version conversion regroups to the default block
// size). The partial output is removed on error.
func ConvertDisk(src, dst string, version int) error {
	dr, err := OpenDisk(src)
	if err != nil {
		return err
	}
	return ConvertDiskFrom(dr, dst, version)
}

// sameFile reports whether the two paths name the same file: equal
// after Abs-cleaning, or (when both exist) the same inode — catching
// symlinks and hard links too.
func sameFile(a, b string) bool {
	absA, errA := filepath.Abs(a)
	absB, errB := filepath.Abs(b)
	if errA == nil && errB == nil && absA == absB {
		return true
	}
	stA, errA := os.Stat(a)
	stB, errB := os.Stat(b)
	return errA == nil && errB == nil && os.SameFile(stA, stB)
}

// NewDiskWriterFormat creates a relation file at path in the given
// format version with default layout parameters — the single place the
// version-to-writer dispatch lives.
func NewDiskWriterFormat(path string, schema Schema, version int) (*DiskWriter, error) {
	switch version {
	case DiskFormatV1:
		return NewDiskWriter(path, schema)
	case DiskFormatV2:
		return NewDiskWriterV2(path, schema, 0)
	case DiskFormatV3:
		return NewDiskWriterV3(path, schema, 0)
	default:
		return nil, fmt.Errorf("relation: unknown disk format version %d", version)
	}
}

// ConvertDiskFrom is ConvertDisk over an already-open source relation,
// so callers that inspected the source first do not parse it twice.
func ConvertDiskFrom(dr *DiskRelation, dst string, version int) error {
	return ConvertFile(dr, dst, version)
}

// ConvertFile streams any open relation into a single relation file at
// dst in the given format version. It refuses a dst aliasing one of
// the source's own files (in-place conversion would leave the still-
// open source describing a layout that no longer exists), and it is
// failure-safe: the staged writer puts the output in a temp file in
// dst's directory and renames it over dst only on a successful Close,
// so an interrupted or failed conversion never leaves a truncated dst
// — and never clobbers a pre-existing dst.
func ConvertFile(src Relation, dst string, version int) error {
	return convertFile(src, dst, version, -1)
}

// convertFile is the shared body of ConvertFile and
// ConvertFileClustered; clusterAttr < 0 preserves the source's row
// order.
func convertFile(src Relation, dst string, version, clusterAttr int) error {
	for _, p := range storagePathsOf(src) {
		if sameFile(p, dst) {
			return fmt.Errorf("relation: cannot convert %s onto itself", p)
		}
	}
	dw, err := NewDiskWriterFormat(dst, src.Schema(), version)
	if err != nil {
		return err
	}
	// The writer stages into a temp file and renames it over dst on
	// Close. Commit with the mode a direct write would have produced —
	// the source file's own mode when it has one (preserving a private
	// 0600 source's privacy), else the 0644-under-umask of a fresh
	// create.
	dw.commitMode = outputMode(storagePathsOf(src))
	if clusterAttr >= 0 {
		if err := dw.ClusterBy(clusterAttr); err != nil {
			dw.Discard()
			return err
		}
	}
	if err := appendAll(src, dw.Append); err != nil {
		dw.Discard()
		return err
	}
	return dw.Close()
}

// outputMode returns the permission bits a staged output file should
// carry: those of the first stat-able sibling/source path, or — when
// none exists — whatever a plain os.Create yields under the current
// umask, measured with a throwaway probe file (reading the umask
// directly would mean temporarily setting it: racy process-wide
// state).
func outputMode(siblings []string) os.FileMode {
	for _, p := range siblings {
		if st, err := os.Stat(p); err == nil {
			return st.Mode().Perm()
		}
	}
	dir, err := os.MkdirTemp("", "optrule-mode-*")
	if err != nil {
		return 0o600 // conservative fallback
	}
	defer os.RemoveAll(dir)
	probe := filepath.Join(dir, "probe")
	//optlint:ignore atomicwrite throwaway probe in a private temp dir, created only to measure the umask; no destination data at stake
	f, err := os.Create(probe)
	if err != nil {
		return 0o600
	}
	//optlint:ignore closecheck the probe's content is irrelevant (only its stat mode is read); a lost write cannot corrupt anything
	f.Close()
	st, err := os.Stat(probe)
	if err != nil {
		return 0o600
	}
	return st.Mode().Perm()
}
