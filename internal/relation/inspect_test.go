package relation

import (
	"math"
	"path/filepath"
	"testing"
)

// TestInspectLayout pins the layout report on a hand-built v3 file
// whose per-column physics are known: a clustered column must report
// tight zones and high prunability, a shuffled one loose zones, and
// the encoding histogram must name what the writer actually chose.
func TestInspectLayout(t *testing.T) {
	schema := Schema{
		{Name: "Sorted", Kind: Numeric},
		{Name: "Shuffled", Kind: Numeric},
		{Name: "Flag", Kind: Boolean},
	}
	path := filepath.Join(t.TempDir(), "inspect.opr")
	dw, err := NewDiskWriterV3(path, schema, 100)
	if err != nil {
		t.Fatal(err)
	}
	n := 1000
	for i := 0; i < n; i++ {
		sorted := float64(i)
		shuffled := float64((i * 617) % n) // hits the full range in every group
		if err := dw.Append([]float64{sorted, shuffled}, []bool{i < 500}); err != nil {
			t.Fatal(err)
		}
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	dr, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer dr.Close()
	insp, err := dr.InspectLayout()
	if err != nil {
		t.Fatal(err)
	}
	if insp.Rows != n || insp.Groups != 10 || insp.GroupRows != 100 {
		t.Fatalf("shape: %d rows, %d groups of %d", insp.Rows, insp.Groups, insp.GroupRows)
	}
	if len(insp.Columns) != 3 {
		t.Fatalf("%d columns reported", len(insp.Columns))
	}
	byName := map[string]ColumnLayout{}
	for _, col := range insp.Columns {
		byName[col.Name] = col
		if col.Blocks != 10 {
			t.Errorf("%s: %d blocks, want 10", col.Name, col.Blocks)
		}
		total := 0
		for _, c := range col.Encodings {
			total += c
		}
		if total != 10 {
			t.Errorf("%s: encoding histogram covers %d blocks, want 10", col.Name, total)
		}
	}
	sorted := byName["Sorted"]
	// Ten 100-row groups partition [0,1000): each spans ~1/10 of the
	// column, so tightness ~0.1 and prunability ~0.9.
	if sorted.ZoneTightness > 0.15 || sorted.Prunability < 0.85 {
		t.Errorf("Sorted: tightness %.3f, prunability %.3f; want ~0.1 / ~0.9",
			sorted.ZoneTightness, sorted.Prunability)
	}
	if sorted.Encodings["delta"] != 10 {
		t.Errorf("Sorted encodings = %v, want delta:10", sorted.Encodings)
	}
	if sorted.RawBytes != 8*int64(n) {
		t.Errorf("Sorted raw bytes = %d, want %d", sorted.RawBytes, 8*n)
	}
	if sorted.EncodedBytes <= 0 || sorted.EncodedBytes >= sorted.RawBytes {
		t.Errorf("Sorted encoded bytes = %d (raw %d): delta should compress", sorted.EncodedBytes, sorted.RawBytes)
	}
	shuffled := byName["Shuffled"]
	if shuffled.ZoneTightness < 0.9 || shuffled.Prunability > 0.1 {
		t.Errorf("Shuffled: tightness %.3f, prunability %.3f; want ~1 / ~0",
			shuffled.ZoneTightness, shuffled.Prunability)
	}
	flag := byName["Flag"]
	// All ten groups are constant (first five all-true, last five
	// all-false): zero mixed blocks, fully prunable.
	if flag.ZoneTightness != 0 || flag.Prunability != 1 {
		t.Errorf("Flag: tightness %.3f, prunability %.3f; want 0 / 1",
			flag.ZoneTightness, flag.Prunability)
	}
	// Bits round up per block: ten 100-row groups charge 13 bytes each.
	if flag.RawBytes != 130 {
		t.Errorf("Flag raw bytes = %d, want 130", flag.RawBytes)
	}
}

// TestInspectLayoutRejectsV2 pins the version gate.
func TestInspectLayoutRejectsV2(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v2.opr")
	dw, err := NewDiskWriterV2(path, Schema{{Name: "X", Kind: Numeric}}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := dw.Append([]float64{1}, nil); err != nil {
		t.Fatal(err)
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	dr, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer dr.Close()
	if _, err := dr.InspectLayout(); err == nil {
		t.Error("InspectLayout accepted a v2 file")
	}
}

// TestInspectLayoutConstantColumn pins the degenerate envelope: a
// constant column reports tight zones but zero prunability (every
// block's zone admits the one value there is).
func TestInspectLayoutConstantColumn(t *testing.T) {
	path := filepath.Join(t.TempDir(), "const.opr")
	dw, err := NewDiskWriterV3(path, Schema{{Name: "C", Kind: Numeric}}, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := dw.Append([]float64{42}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	dr, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer dr.Close()
	insp, err := dr.InspectLayout()
	if err != nil {
		t.Fatal(err)
	}
	col := insp.Columns[0]
	if col.ZoneTightness != 0 || col.Prunability != 0 {
		t.Errorf("constant column: tightness %.3f, prunability %.3f; want 0 / 0",
			col.ZoneTightness, col.Prunability)
	}
	if math.IsNaN(col.ZoneTightness) || math.IsNaN(col.Prunability) {
		t.Error("NaN leaked into the constant-column report")
	}
}
