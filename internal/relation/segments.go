package relation

// AlignedSegments splits [0, n) into pes contiguous segments for a
// parallel scan (Algorithm 3.2 and the fused counting engines), honoring
// the relation's preferred scan alignment (ScanAligner): interior
// boundaries are rounded to the nearest alignment multiple so that
// workers never split a v2 block group — each worker then issues
// whole-block sequential reads instead of two workers seeking into the
// same group. Alignment is only honored when every worker can still get
// at least one full alignment unit (n >= pes·align); on smaller
// relations an aligned split would empty some segments and shrink
// effective parallelism, which costs far more than split groups do.
// Rounding keeps the boundaries monotone. The result has pes+1 entries
// with AlignedSegments(...)[0] == 0 and [pes] == n.
func AlignedSegments(rel Relation, n, pes int) []int {
	align := 1
	if a, ok := rel.(ScanAligner); ok {
		if g := a.ScanAlignment(); g > 1 && n >= pes*g {
			align = g
		}
	}
	cuts := make([]int, pes+1)
	for p := 1; p < pes; p++ {
		cut := p * n / pes
		if align > 1 {
			cut = (cut + align/2) / align * align
			if cut > n {
				cut = n
			}
		}
		cuts[p] = cut
	}
	cuts[pes] = n
	return cuts
}
