package relation

// SegmentSnapper is implemented by relations whose preferred segment
// boundaries are NOT multiples of a single stride, so the modular
// rounding of ScanAligner cannot express them. The sharded backend is
// the motivating case: its preferred cuts are shard boundaries (which
// fall at arbitrary global offsets, since shards may hold different row
// counts) plus each v2 shard's internal block-group boundaries (whose
// phase is relative to the shard's own first row, not to global row 0).
// No single alignment modulus — not even an lcm — describes that set.
//
// SnapSegment returns the preferred boundary nearest to the proposed
// cut. Implementations must be monotone (cut1 <= cut2 implies
// SnapSegment(cut1) <= SnapSegment(cut2)) and must return a value in
// [0, NumTuples()]. Callers treat the result as a hint — any range is
// still valid to scan.
type SegmentSnapper interface {
	SnapSegment(cut int) int
}

// AlignedSegments splits [0, n) into pes contiguous segments for a
// parallel scan (Algorithm 3.2 and the fused counting engines), honoring
// the relation's preferred scan alignment: interior boundaries are
// snapped to storage-preferred cuts so that workers never split a v2
// block group — each worker then issues whole-block sequential reads
// instead of two workers seeking into the same group.
//
// Relations declare their preference through one of two interfaces:
// SegmentSnapper (consulted first) places each boundary exactly — the
// sharded backend uses it to keep cuts on shard and per-shard group
// boundaries; ScanAligner declares a single stride and boundaries are
// rounded to its nearest multiple. Alignment is only honored when every
// worker can still get at least one full alignment unit (n >= pes·g,
// where g is ScanAlignment, the coarsest storage unit); on smaller
// relations an aligned split would empty some segments and shrink
// effective parallelism, which costs far more than split groups do.
// The result is monotone with pes+1 entries, AlignedSegments(...)[0]
// == 0 and [pes] == n.
func AlignedSegments(rel Relation, n, pes int) []int {
	snap := func(cut int) int { return cut }
	coarsest := 1
	if a, ok := rel.(ScanAligner); ok {
		if g := a.ScanAlignment(); g > coarsest {
			coarsest = g
		}
	}
	if sn, ok := rel.(SegmentSnapper); ok {
		if n >= pes*coarsest {
			snap = sn.SnapSegment
		}
	} else if g := coarsest; g > 1 && n >= pes*g {
		snap = func(cut int) int {
			cut = (cut + g/2) / g * g
			if cut > n {
				cut = n
			}
			return cut
		}
	}
	cuts := make([]int, pes+1)
	for p := 1; p < pes; p++ {
		cut := snap(p * n / pes)
		if cut < cuts[p-1] {
			cut = cuts[p-1]
		}
		cuts[p] = cut
	}
	cuts[pes] = n
	return cuts
}
