package relation

import (
	"math/rand"
	"path/filepath"
	"testing"
)

func benchMemory(b *testing.B, n int) *MemoryRelation {
	b.Helper()
	rel := MustNewMemoryRelation(bankSchema())
	rng := rand.New(rand.NewSource(1))
	rel.Grow(n)
	for i := 0; i < n; i++ {
		rel.MustAppend([]float64{rng.Float64() * 1e6, float64(rng.Intn(100))},
			[]bool{rng.Intn(2) == 0, rng.Intn(3) == 0})
	}
	return rel
}

func BenchmarkMemoryScan1M(b *testing.B) {
	rel := benchMemory(b, 1000000)
	cols := ColumnSet{Numeric: []int{0}, Bool: []int{2}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := 0.0
		err := rel.Scan(cols, func(batch *Batch) error {
			for _, v := range batch.Numeric[0][:batch.Len] {
				sum += v
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(rel.NumTuples()) * 9) // 8B float + 1B bool per tuple
}

func BenchmarkDiskScan1M(b *testing.B) {
	mem := benchMemory(b, 1000000)
	path := filepath.Join(b.TempDir(), "bench.opr")
	dw, err := NewDiskWriter(path, mem.Schema())
	if err != nil {
		b.Fatal(err)
	}
	bal, _ := mem.NumericColumn(0)
	age, _ := mem.NumericColumn(1)
	cl, _ := mem.BoolColumn(2)
	aw, _ := mem.BoolColumn(3)
	for i := 0; i < mem.NumTuples(); i++ {
		if err := dw.Append([]float64{bal[i], age[i]}, []bool{cl[i], aw[i]}); err != nil {
			b.Fatal(err)
		}
	}
	if err := dw.Close(); err != nil {
		b.Fatal(err)
	}
	dr, err := OpenDisk(path)
	if err != nil {
		b.Fatal(err)
	}
	cols := ColumnSet{Numeric: []int{0}, Bool: []int{2}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := 0.0
		err := dr.Scan(cols, func(batch *Batch) error {
			for _, v := range batch.Numeric[0][:batch.Len] {
				sum += v
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(dr.NumTuples()) * int64(dr.rowSize))
}

func BenchmarkDiskWrite100k(b *testing.B) {
	dir := b.TempDir()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path := filepath.Join(dir, "w.opr")
		dw, err := NewDiskWriter(path, bankSchema())
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 100000; j++ {
			if err := dw.Append([]float64{rng.Float64(), 1}, []bool{true, false}); err != nil {
				b.Fatal(err)
			}
		}
		if err := dw.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
