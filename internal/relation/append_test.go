package relation

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// appendFixtureTail builds a standalone memory relation of n fresh
// rows over the bank test schema, continuing from rng.
func appendFixtureTail(rng *rand.Rand, n int) *MemoryRelation {
	tail := MustNewMemoryRelation(bankSchema())
	for r := 0; r < n; r++ {
		nums := []float64{rng.Float64() * 1e6, float64(rng.Intn(100))}
		bools := []bool{rng.Intn(2) == 0, rng.Intn(3) == 0}
		tail.MustAppend(nums, bools)
	}
	return tail
}

// TestShardedAppendAndReopen covers the grow-and-pick-up cycle: append
// shards commit through the manifest, an OPEN relation sees them only
// after Reopen (epoch bump), and the grown relation reads back
// tuple-identical to prefix+tail — across mixed shard formats.
func TestShardedAppendAndReopen(t *testing.T) {
	manifest, mem := writeShardedFixture(t, 5, []int{50, 30}, []int{DiskFormatV1, DiskFormatV2}, 16)
	sr, err := OpenSharded(manifest)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	if sr.NumTuples() != 80 {
		t.Fatalf("base relation holds %d tuples, want 80", sr.NumTuples())
	}
	epoch0 := sr.Epoch()

	rng := rand.New(rand.NewSource(99))
	tail := appendFixtureTail(rng, 30)
	rows, err := AppendToSharded(manifest, tail, AppendOptions{Format: DiskFormatV3, RowsPerShard: 12})
	if err != nil {
		t.Fatal(err)
	}
	if rows != 30 {
		t.Fatalf("appended %d rows, want 30", rows)
	}
	// Commit is visible to new opens but NOT to the live handle until
	// Reopen: in-flight consumers keep their snapshot.
	if sr.NumTuples() != 80 {
		t.Errorf("live handle saw appended rows before Reopen: %d tuples", sr.NumTuples())
	}
	added, err := sr.Reopen()
	if err != nil {
		t.Fatal(err)
	}
	if added != 30 {
		t.Fatalf("Reopen added %d rows, want 30", added)
	}
	if sr.Epoch() == epoch0 {
		t.Errorf("epoch did not advance across a growing Reopen")
	}
	if sr.NumTuples() != 110 || sr.NumShards() != 5 {
		t.Fatalf("grown relation: %d tuples in %d shards, want 110 in 5 (12+12+6 appended)", sr.NumTuples(), sr.NumShards())
	}
	// A second Reopen with no growth is a cheap no-op.
	added, err = sr.Reopen()
	if err != nil {
		t.Fatal(err)
	}
	if added != 0 || sr.Epoch() != epoch0+1 {
		t.Errorf("no-growth Reopen: added %d, epoch %d (want 0, %d)", added, sr.Epoch(), epoch0+1)
	}

	// Tuple identity: grown relation == prefix rows ++ tail rows.
	wantN, wantB := collectRange(t, mem, 0, 80)
	tn, tb := collectRange(t, tail, 0, 30)
	wantN = append(wantN, tn...)
	wantB = append(wantB, tb...)
	gotN, gotB := collectRange(t, sr, 0, 110)
	for i := range wantN {
		if gotN[i] != wantN[i] || gotB[i] != wantB[i] {
			t.Fatalf("row %d differs after append: %v/%v vs %v/%v", i, gotN[i], gotB[i], wantN[i], wantB[i])
		}
	}
	// And a cold open agrees.
	fresh, err := OpenSharded(manifest)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if fresh.NumTuples() != 110 {
		t.Errorf("cold open sees %d tuples, want 110", fresh.NumTuples())
	}
}

// TestShardedAppendSchemaMismatchRefused pins the all-or-nothing
// contract: a schema mismatch is refused before any file is created,
// and the manifest stays byte-identical.
func TestShardedAppendSchemaMismatchRefused(t *testing.T) {
	manifest, _ := writeShardedFixture(t, 7, []int{20}, []int{DiskFormatV2}, 16)
	before, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Dir(manifest))
	if err != nil {
		t.Fatal(err)
	}
	wrong := MustNewMemoryRelation(Schema{
		{Name: "Other", Kind: Numeric},
		{Name: "Flag", Kind: Boolean},
	})
	wrong.MustAppend([]float64{1}, []bool{true})
	if _, err := AppendToSharded(manifest, wrong, AppendOptions{}); err == nil {
		t.Fatalf("schema mismatch accepted")
	}
	after, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Errorf("manifest changed by refused append")
	}
	entriesAfter, err := os.ReadDir(filepath.Dir(manifest))
	if err != nil {
		t.Fatal(err)
	}
	if len(entriesAfter) != len(entries) {
		t.Errorf("refused append left files behind: %d entries, had %d", len(entriesAfter), len(entries))
	}
}

// TestShardedAppendZeroRowsUntouched pins that appending an empty
// source leaves the manifest byte-identical (no temp-rename cycle for
// nothing).
func TestShardedAppendZeroRowsUntouched(t *testing.T) {
	manifest, _ := writeShardedFixture(t, 11, []int{20}, []int{DiskFormatV2}, 16)
	before, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	empty := MustNewMemoryRelation(bankSchema())
	rows, err := AppendToSharded(manifest, empty, AppendOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rows != 0 {
		t.Fatalf("empty append reported %d rows", rows)
	}
	after, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Errorf("manifest rewritten by zero-row append")
	}
}

// TestShardedReopenRequiresAppendOnlyGrowth pins Reopen's safety rail:
// a manifest whose existing lines shrank or changed is an in-place
// rewrite, not an append, and must be refused (the snapshot's shard
// handles would be lies).
func TestShardedReopenRequiresAppendOnlyGrowth(t *testing.T) {
	manifest, _ := writeShardedFixture(t, 13, []int{20, 10}, []int{DiskFormatV2, DiskFormatV2}, 16)
	sr, err := OpenSharded(manifest)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	original, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(original), "\n"), "\n")

	// Shrunk: drop the last shard line.
	if err := os.WriteFile(manifest, []byte(strings.Join(lines[:len(lines)-1], "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Reopen(); err == nil {
		t.Errorf("Reopen accepted a shrunken manifest")
	}

	// Changed row count on an existing line.
	mutated := append([]string(nil), lines...)
	mutated[1] = strings.Replace(mutated[1], "shard 20 ", "shard 19 ", 1)
	if err := os.WriteFile(manifest, []byte(strings.Join(mutated, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Reopen(); err == nil {
		t.Errorf("Reopen accepted a mutated shard line")
	}

	// Restored: Reopen recovers.
	if err := os.WriteFile(manifest, original, 0o644); err != nil {
		t.Fatal(err)
	}
	if added, err := sr.Reopen(); err != nil || added != 0 {
		t.Errorf("Reopen after restore: added %d, err %v", added, err)
	}
}

// TestShardedReopenDuringScan pins the epoch/snapshot contract: a scan
// in flight when Reopen lands keeps delivering its pre-append snapshot
// — exactly the old tuple count, no torn view.
func TestShardedReopenDuringScan(t *testing.T) {
	manifest, _ := writeShardedFixture(t, 17, []int{40, 40}, []int{DiskFormatV2, DiskFormatV2}, 16)
	sr, err := OpenSharded(manifest)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	rng := rand.New(rand.NewSource(101))
	delivered := 0
	reopened := false
	err = sr.Scan(ColumnSet{Numeric: []int{0}}, func(b *Batch) error {
		delivered += b.Len
		if !reopened {
			reopened = true
			tail := appendFixtureTail(rng, 25)
			if _, err := AppendToSharded(manifest, tail, AppendOptions{}); err != nil {
				return fmt.Errorf("append mid-scan: %w", err)
			}
			if _, err := sr.Reopen(); err != nil {
				return fmt.Errorf("reopen mid-scan: %w", err)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if delivered != 80 {
		t.Errorf("mid-append scan delivered %d rows, want the 80-row snapshot", delivered)
	}
	if sr.NumTuples() != 105 {
		t.Errorf("post-scan relation holds %d tuples, want 105", sr.NumTuples())
	}
}

// TestShardedAppenderContinuesNumbering pins that appended shard files
// never truncate an existing base-named file: numbering skips past any
// <base>-sNNNNN.opr already on disk.
func TestShardedAppenderContinuesNumbering(t *testing.T) {
	manifest, _ := writeShardedFixture(t, 19, []int{10}, []int{DiskFormatV2}, 16)
	dir := filepath.Dir(manifest)
	// Plant an unrelated file at the first append slot.
	blocker := filepath.Join(dir, "rel-s00001.opr")
	if err := os.WriteFile(blocker, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	tail := appendFixtureTail(rng, 5)
	if _, err := AppendToSharded(manifest, tail, AppendOptions{}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(blocker)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "precious" {
		t.Errorf("append truncated an existing base-named file")
	}
	sr, err := OpenSharded(manifest)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	if sr.NumTuples() != 15 {
		t.Errorf("relation holds %d tuples, want 15", sr.NumTuples())
	}
}
