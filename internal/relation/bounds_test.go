package relation

import (
	"strings"
	"testing"
)

// TestScanRangeBoundsUnified pins identical ScanRange bounds semantics
// across every backend — MemoryRelation, DiskRelation v1 and v2, and
// ShardedRelation — so the miner's segment planners see one contract
// everywhere: negative start, start > end, and end > NumTuples() are
// errors mentioning the offending range; start == end (anywhere in
// [0, NumTuples()], including both extremes) scans nothing and
// succeeds; valid ranges deliver exactly end-start rows.
func TestScanRangeBoundsUnified(t *testing.T) {
	const n = 250
	v1Path, mem := writeTestFile(t, n, 31)
	v2Path, _ := writeTestFileV2(t, n, 31, 64)
	shPath, _ := writeShardedFixture(t, 31, []int{100, 100, 50}, []int{DiskFormatV1, DiskFormatV2, DiskFormatV2}, 64)

	v1, err := OpenDisk(v1Path)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := OpenDisk(v2Path)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := OpenSharded(shPath)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	shc, err := OpenSharded(shPath)
	if err != nil {
		t.Fatal(err)
	}
	defer shc.Close()
	shc.SetConcurrentScans(2)

	backends := []struct {
		name string
		rel  RangeScanner
	}{
		{"memory", mem},
		{"disk-v1", v1},
		{"disk-v2", v2},
		{"sharded", sh},
		{"sharded-concurrent", shc},
	}
	cases := []struct {
		name       string
		start, end int
		wantErr    bool
	}{
		{"full", 0, n, false},
		{"interior", 40, 180, false},
		{"empty-at-zero", 0, 0, false},
		{"empty-interior", 100, 100, false},
		{"empty-at-n", n, n, false},
		{"negative-start", -1, 10, true},
		{"end-past-n", 0, n + 1, true},
		{"start-past-end", 60, 30, true},
		{"both-past-n", n + 5, n + 9, true},
	}
	cols := ColumnSet{Numeric: []int{0}}
	for _, b := range backends {
		for _, c := range cases {
			rows := 0
			err := b.rel.ScanRange(c.start, c.end, cols, func(batch *Batch) error {
				rows += batch.Len
				return nil
			})
			if c.wantErr {
				if err == nil {
					t.Errorf("%s/%s: invalid range accepted", b.name, c.name)
				} else if !strings.Contains(err.Error(), "scan range") {
					t.Errorf("%s/%s: error %q does not mention the scan range", b.name, c.name, err)
				}
				continue
			}
			if err != nil {
				t.Errorf("%s/%s: %v", b.name, c.name, err)
				continue
			}
			if want := c.end - c.start; rows != want {
				t.Errorf("%s/%s: delivered %d rows, want %d", b.name, c.name, rows, want)
			}
		}
		// Column-set validation precedes bounds checking on every backend,
		// and an invalid column set errors even on an otherwise-valid range.
		if err := b.rel.ScanRange(0, 1, ColumnSet{Numeric: []int{99}}, func(*Batch) error { return nil }); err == nil {
			t.Errorf("%s: out-of-range column accepted", b.name)
		}
	}
}
