package relation

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Three on-disk formats share the "OPTR" magic and header prefix and
// are negotiated by the version field; OpenDisk reads all of them,
// DiskWriter writes any.
//
// Format v1 — row-major (little endian):
//
//	magic   [4]byte  "OPTR"
//	version uint32   1
//	nattrs  uint32
//	per attribute: kind uint8, nameLen uint16, name []byte
//	numRows uint64   (patched on Close)
//	rows: per row, one float64 per numeric attribute in schema order,
//	      then ceil(nbool/8) bytes of packed Boolean values (bit i of
//	      byte i/8 is the i-th Boolean attribute, LSB first).
//
// Fixed-width rows keep the scan sequential and make row offsets
// computable, but every scan pays for all 8·d bytes of each tuple even
// when it needs a single column.
//
// Format v2 — column-major block groups — stores each column
// contiguously within groups of GroupRows tuples, so a scan selecting
// k of d columns reads ~k/d of the bytes; see diskv2.go for the layout
// and the overlapped read-ahead scan pipeline.
//
// Format v3 — compressed column-major block groups — keeps the v2
// block-group discipline but encodes each column block (delta bit
// packing, dictionary coding, bitmaps, raw fallback) and stores
// per-block zone maps in the directory so predicated scans skip whole
// groups; see diskv3.go.

var diskMagic = [4]byte{'O', 'P', 'T', 'R'}

// On-disk format versions.
const (
	// DiskFormatV1 is the original row-major format.
	DiskFormatV1 = 1
	// DiskFormatV2 is the column-major block-group format.
	DiskFormatV2 = 2
	// DiskFormatV3 is the compressed column-major block-group format
	// with per-block zone maps.
	DiskFormatV3 = 3
)

// rowWidth returns the encoded size in bytes of one v1 tuple.
func rowWidth(s Schema) int {
	numNumeric, numBool := 0, 0
	for _, a := range s {
		if a.Kind == Numeric {
			numNumeric++
		} else {
			numBool++
		}
	}
	return 8*numNumeric + (numBool+7)/8
}

// DiskWriter streams tuples into the binary on-disk format (either
// version; NewDiskWriter writes v1, NewDiskWriterV2 writes v2).
type DiskWriter struct {
	f       *os.File
	w       *bufio.Writer
	schema  Schema
	version int
	nums    int
	bools   int
	rows    uint64
	rowsOff int64
	closed  bool

	// Crash safety: f is a temp file in dst's directory; a successful
	// Close renames it over dst (commit), every failure path removes it
	// (abort/Discard). The destination is either the previous complete
	// file or the new complete file — never a truncation. commitMode, if
	// nonzero, overrides the permissions the committed file gets
	// (convertFile preserves the source's mode through it).
	dst        string
	tmp        string
	commitMode os.FileMode

	// v1 state: one encoded row, reused.
	rowBuf []byte

	// v2 state: the pending block group's columns, flushed every
	// groupRows tuples (see diskv2.go).
	groupRows int
	colNums   [][]float64
	colBools  [][]byte
	pending   int
	groupOffs []int64
	off       int64
	encodeBuf []byte

	// v3 state: the accumulated block directory and the bit-packing
	// scratch (see diskv3.go).
	v3Dir     []byte
	v3Scratch []uint64

	// cluster state (see cluster.go): while clustering, Append buffers
	// whole columns instead of streaming them into groups, and Close
	// replays the rows in cluster-key order through the normal path.
	clustering  bool
	clusterAttr int
	bufNums     [][]float64
	bufBools    [][]bool
	bufRows     int
}

// writeDiskHeader writes the common header prefix (magic, version,
// schema) and the row-count placeholder, returning the offset of the
// row-count field.
func writeDiskHeader(w *bufio.Writer, schema Schema, version int) (rowsOff int64, err error) {
	if _, err := w.Write(diskMagic[:]); err != nil {
		return 0, err
	}
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(version))
	w.Write(u32[:])
	binary.LittleEndian.PutUint32(u32[:], uint32(len(schema)))
	w.Write(u32[:])
	rowsOff = int64(4 + 4 + 4)
	for _, a := range schema {
		w.WriteByte(byte(a.Kind))
		var u16 [2]byte
		binary.LittleEndian.PutUint16(u16[:], uint16(len(a.Name)))
		w.Write(u16[:])
		w.WriteString(a.Name)
		rowsOff += 1 + 2 + int64(len(a.Name))
	}
	// Placeholder row count, patched in Close.
	var u64 [8]byte
	if _, err := w.Write(u64[:]); err != nil {
		return 0, err
	}
	return rowsOff, nil
}

// createStaged opens the staging temp file for a writer destined for
// path: same directory (so the commit rename cannot cross file
// systems), removed on every failure path.
func createStaged(path string) (*os.File, error) {
	return os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
}

// abort closes and removes the staging file after a failed write,
// leaving the destination untouched.
func (dw *DiskWriter) abort() {
	dw.f.Close()
	os.Remove(dw.tmp)
}

// commit finishes a staged write: close the temp file (delayed write
// errors surface here), give it the destination's permissions (the
// temp was 0600), and atomically rename it over the destination.
func (dw *DiskWriter) commit() error {
	if err := dw.f.Close(); err != nil {
		os.Remove(dw.tmp)
		return err
	}
	mode := dw.commitMode
	if mode == 0 {
		mode = outputMode([]string{dw.dst})
	}
	if err := os.Chmod(dw.tmp, mode); err != nil {
		os.Remove(dw.tmp)
		return err
	}
	if err := os.Rename(dw.tmp, dw.dst); err != nil {
		os.Remove(dw.tmp)
		return err
	}
	return nil
}

// Discard abandons the staged write: the temp file is removed and the
// destination keeps whatever it held before the writer was created.
// Callers that fail mid-stream must Discard rather than Close — Close
// would commit a short but well-formed file over the destination. A
// no-op after Close or a second Discard.
func (dw *DiskWriter) Discard() {
	if dw.closed {
		return
	}
	dw.closed = true
	dw.abort()
}

// NewDiskWriter creates a v1 relation file at path: the data is staged
// in a temp file beside path and renamed over it by a successful
// Close. Call Append for each tuple and Close to finalize (or Discard
// to abandon).
func NewDiskWriter(path string, schema Schema) (*DiskWriter, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	f, err := createStaged(path)
	if err != nil {
		return nil, err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	dw := &DiskWriter{f: f, w: w, schema: schema, version: DiskFormatV1, rowBuf: make([]byte, rowWidth(schema)), dst: path, tmp: f.Name()}
	rowsOff, err := writeDiskHeader(w, schema, DiskFormatV1)
	if err != nil {
		dw.abort()
		return nil, err
	}
	dw.rowsOff = rowsOff
	for _, a := range schema {
		if a.Kind == Numeric {
			dw.nums++
		} else {
			dw.bools++
		}
	}
	return dw, nil
}

// Append writes one tuple: nums in numeric schema order, bools in
// Boolean schema order.
func (dw *DiskWriter) Append(nums []float64, bools []bool) error {
	if dw.closed {
		return fmt.Errorf("relation: append to closed DiskWriter")
	}
	if len(nums) != dw.nums || len(bools) != dw.bools {
		return fmt.Errorf("relation: tuple shape (%d numeric, %d bool) does not match schema (%d, %d)",
			len(nums), len(bools), dw.nums, dw.bools)
	}
	if dw.clustering {
		for j, v := range nums {
			dw.bufNums[j] = append(dw.bufNums[j], v)
		}
		for j, b := range bools {
			dw.bufBools[j] = append(dw.bufBools[j], b)
		}
		dw.bufRows++
		return nil
	}
	if dw.version == DiskFormatV2 || dw.version == DiskFormatV3 {
		return dw.appendV2(nums, bools)
	}
	buf := dw.rowBuf
	off := 0
	for _, v := range nums {
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
		off += 8
	}
	for i := off; i < len(buf); i++ {
		buf[i] = 0
	}
	for i, b := range bools {
		if b {
			buf[off+i/8] |= 1 << uint(i%8)
		}
	}
	if _, err := dw.w.Write(buf); err != nil {
		return err
	}
	dw.rows++
	return nil
}

// Close flushes buffered rows, patches the row count (and, for v2/v3,
// the block-group directory location) into the header, closes the
// staging file, and renames it over the destination — the commit point
// of the staged write.
func (dw *DiskWriter) Close() error {
	if dw.closed {
		return nil
	}
	if dw.clustering {
		if err := dw.replayClustered(); err != nil {
			dw.closed = true
			dw.abort()
			return err
		}
	}
	dw.closed = true
	if dw.version == DiskFormatV3 {
		return dw.closeV3()
	}
	if dw.version == DiskFormatV2 {
		return dw.closeV2()
	}
	if err := dw.w.Flush(); err != nil {
		dw.abort()
		return err
	}
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], dw.rows)
	if _, err := dw.f.WriteAt(u64[:], dw.rowsOff); err != nil {
		dw.abort()
		return err
	}
	return dw.commit()
}

// DiskRelation is a Relation backed by either binary on-disk format. It
// keeps only the schema and layout metadata in memory; scans stream
// rows through fixed-size buffers, which is what makes it a faithful
// stand-in for the paper's larger-than-memory databases.
type DiskRelation struct {
	path    string
	schema  Schema
	version int
	numRows int
	rowSize int   // v1: encoded bytes per row
	dataOff int64 // first byte after the header
	nums    int
	bools   int
	numPos  []int // schema index -> dense numeric position
	boolPos []int // schema index -> dense boolean position

	// v2/v3 layout (see diskv2.go, diskv3.go). groupOffs holds each
	// group's first byte; v3 additionally keeps the decoded per-block
	// directory with encodings and zone maps.
	groupRows int
	groupOffs []int64
	v3Blocks  []v3Block

	// bytesRead counts payload bytes delivered from disk by scans — the
	// deterministic counted-I/O model experiments and tests compare
	// formats by (header and directory reads are excluded).
	bytesRead atomic.Int64

	// Point-read acceleration: the file is memory-mapped lazily on the
	// first ReadNumericPoints call (unix only; other platforms and mmap
	// failures fall back to positioned reads). The mapping lives as
	// long as the relation — read-only, paged in on demand, so it costs
	// address space, not resident memory.
	mmapOnce sync.Once
	mmapData []byte

	// ops tracks in-flight scans and point reads (read-locked for their
	// duration) so Close can refuse with ErrBusy — a defined error —
	// instead of unmapping the point-read mapping under a concurrent
	// reader. Close only try-locks, so readers never block each other.
	ops sync.RWMutex
}

// OpenDisk opens a file written by DiskWriter, negotiating the format
// version from the header.
func OpenDisk(path string) (*DiskRelation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var magic [4]byte
	if _, err := metaReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("relation: reading magic: %w", err)
	}
	if magic != diskMagic {
		return nil, fmt.Errorf("relation: %s is not an optrule data file", path)
	}
	var u32 [4]byte
	if _, err := metaReadFull(r, u32[:]); err != nil {
		return nil, err
	}
	version := int(binary.LittleEndian.Uint32(u32[:]))
	if version != DiskFormatV1 && version != DiskFormatV2 && version != DiskFormatV3 {
		return nil, fmt.Errorf("relation: unsupported file version %d", version)
	}
	if _, err := metaReadFull(r, u32[:]); err != nil {
		return nil, err
	}
	nattrs := int(binary.LittleEndian.Uint32(u32[:]))
	if nattrs <= 0 || nattrs > 1<<16 {
		return nil, fmt.Errorf("relation: implausible attribute count %d", nattrs)
	}
	schema := make(Schema, 0, nattrs)
	headerLen := int64(4 + 4 + 4)
	for i := 0; i < nattrs; i++ {
		kindB, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		var u16 [2]byte
		if _, err := metaReadFull(r, u16[:]); err != nil {
			return nil, err
		}
		nameLen := int(binary.LittleEndian.Uint16(u16[:]))
		name := make([]byte, nameLen)
		if _, err := metaReadFull(r, name); err != nil {
			return nil, err
		}
		schema = append(schema, Attribute{Name: string(name), Kind: Kind(kindB)})
		headerLen += 1 + 2 + int64(nameLen)
	}
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	var u64 [8]byte
	if _, err := metaReadFull(r, u64[:]); err != nil {
		return nil, err
	}
	numRows := binary.LittleEndian.Uint64(u64[:])
	headerLen += 8
	if numRows > 1<<48 {
		return nil, fmt.Errorf("relation: implausible row count %d", numRows)
	}
	dr := &DiskRelation{
		path:    path,
		schema:  schema,
		version: version,
		numRows: int(numRows),
		rowSize: rowWidth(schema),
		dataOff: headerLen,
		numPos:  make([]int, len(schema)),
		boolPos: make([]int, len(schema)),
	}
	for i, a := range schema {
		if a.Kind == Numeric {
			dr.numPos[i] = dr.nums
			dr.nums++
		} else {
			dr.boolPos[i] = dr.bools
			dr.bools++
		}
	}
	if version == DiskFormatV2 {
		if err := dr.openV2Meta(f, r); err != nil {
			return nil, err
		}
		return dr, nil
	}
	if version == DiskFormatV3 {
		if err := dr.openV3Meta(f, r); err != nil {
			return nil, err
		}
		return dr, nil
	}
	// Sanity-check the file size against the declared row count.
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	want := headerLen + int64(numRows)*int64(dr.rowSize)
	if st.Size() < want {
		return nil, fmt.Errorf("relation: %s truncated: %d bytes, need %d for %d rows", path, st.Size(), want, numRows)
	}
	return dr, nil
}

// Schema implements Relation.
func (dr *DiskRelation) Schema() Schema { return dr.schema }

// NumTuples implements Relation.
func (dr *DiskRelation) NumTuples() int { return dr.numRows }

// Version returns the on-disk format version (DiskFormatV1,
// DiskFormatV2, or DiskFormatV3).
func (dr *DiskRelation) Version() int { return dr.version }

// StoragePaths returns the single file backing the relation, mirroring
// ShardedRelation.StoragePaths so conversion helpers can refuse
// writing a destination onto its own source for either backend.
func (dr *DiskRelation) StoragePaths() []string { return []string{dr.path} }

// GroupRows returns the rows per block group for v2/v3 files and 0 for
// v1.
func (dr *DiskRelation) GroupRows() int {
	if dr.version == DiskFormatV2 || dr.version == DiskFormatV3 {
		return dr.groupRows
	}
	return 0
}

// BytesRead returns the total payload bytes scans have delivered from
// disk since open (or the last ResetBytesRead). Header and directory
// reads are excluded, so the counter is a deterministic I/O cost model:
// v1 scans cost rowWidth bytes per row regardless of the column set,
// v2 scans cost only the selected column blocks, and v3 scans cost the
// PHYSICAL post-compression bytes of the selected blocks — so a v3
// scan of compressible columns counts strictly fewer bytes than the
// same v2 scan, and a zone-skipped group counts zero. Point reads
// charge a flat 8 bytes per unique row in every format. Safe for
// concurrent use.
func (dr *DiskRelation) BytesRead() int64 { return dr.bytesRead.Load() }

// ResetBytesRead zeroes the BytesRead counter.
func (dr *DiskRelation) ResetBytesRead() { dr.bytesRead.Store(0) }

// ScanAlignment implements ScanAligner: v2/v3 scans are cheapest when
// segment boundaries coincide with block-group boundaries (a split
// group costs two partial — or, compressed, two full — column-block
// reads instead of one); v1 rows are individually addressable.
func (dr *DiskRelation) ScanAlignment() int {
	if dr.version == DiskFormatV2 || dr.version == DiskFormatV3 {
		return dr.groupRows
	}
	return 1
}

// Scan implements Relation by streaming the whole file once.
func (dr *DiskRelation) Scan(cols ColumnSet, fn func(*Batch) error) error {
	return dr.ScanRange(0, dr.numRows, cols, fn)
}

// ScanRange streams rows [start, end) through fn. Each call opens its
// own file handle, so disjoint ranges may be scanned concurrently — the
// access pattern of the parallel bucketing Algorithm 3.2. On v2 files
// the scan runs the overlapped read-ahead pipeline of diskv2.go.
func (dr *DiskRelation) ScanRange(start, end int, cols ColumnSet, fn func(*Batch) error) error {
	dr.ops.RLock()
	defer dr.ops.RUnlock()
	if err := cols.Validate(dr.schema); err != nil {
		return err
	}
	if start < 0 || end > dr.numRows || start > end {
		return fmt.Errorf("relation: scan range [%d,%d) out of [0,%d)", start, end, dr.numRows)
	}
	if start == end {
		return nil
	}
	if dr.version == DiskFormatV3 {
		return dr.scanRangeV3(start, end, cols, nil, nil, fn)
	}
	if dr.version == DiskFormatV2 {
		return dr.scanRangeV2(start, end, cols, fn)
	}
	f, err := os.Open(dr.path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Seek(dr.dataOff+int64(start)*int64(dr.rowSize), io.SeekStart); err != nil {
		return err
	}
	r := bufio.NewReaderSize(f, 1<<20)

	batch := &Batch{
		Numeric: make([][]float64, len(cols.Numeric)),
		Bool:    make([][]bool, len(cols.Bool)),
	}
	for k := range batch.Numeric {
		batch.Numeric[k] = make([]float64, DefaultBatchSize)
	}
	for k := range batch.Bool {
		batch.Bool[k] = make([]bool, DefaultBatchSize)
	}
	rowBuf := make([]byte, dr.rowSize*DefaultBatchSize)
	boolBase := 8 * dr.nums

	for at := start; at < end; {
		n := DefaultBatchSize
		if at+n > end {
			n = end - at
		}
		if _, err := payloadReadFull(r, rowBuf[:n*dr.rowSize], &dr.bytesRead); err != nil {
			return fmt.Errorf("relation: reading rows %d..%d of %s: %w", at, at+n, dr.path, err)
		}
		for k, i := range cols.Numeric {
			dst := batch.Numeric[k][:n]
			fieldOff := 8 * dr.numPos[i]
			for row := 0; row < n; row++ {
				bits := binary.LittleEndian.Uint64(rowBuf[row*dr.rowSize+fieldOff:])
				dst[row] = math.Float64frombits(bits)
			}
			batch.Numeric[k] = dst
		}
		for k, i := range cols.Bool {
			dst := batch.Bool[k][:n]
			bit := dr.boolPos[i]
			byteOff := boolBase + bit/8
			mask := byte(1) << uint(bit%8)
			for row := 0; row < n; row++ {
				dst[row] = rowBuf[row*dr.rowSize+byteOff]&mask != 0
			}
			batch.Bool[k] = dst
		}
		batch.Len = n
		if err := fn(batch); err != nil {
			return err
		}
		at += n
	}
	return nil
}

// RangeScanner is implemented by relations that can scan an arbitrary
// row range, enabling the parallel counting of Algorithm 3.2.
type RangeScanner interface {
	Relation
	ScanRange(start, end int, cols ColumnSet, fn func(*Batch) error) error
}

// ScanAligner is implemented by relations whose ScanRange has a
// preferred row alignment for segment boundaries: splitting work at
// multiples of ScanAlignment lets the storage layer serve each segment
// with whole storage units (v2 block groups). Callers must treat the
// alignment as a hint — any range is still valid.
type ScanAligner interface {
	ScanAlignment() int
}

// ScanRange makes MemoryRelation a RangeScanner.
func (r *MemoryRelation) ScanRange(start, end int, cols ColumnSet, fn func(*Batch) error) error {
	n, numeric, boolean := r.snapshot()
	return r.scanSnapshot(start, end, n, numeric, boolean, cols, fn)
}
