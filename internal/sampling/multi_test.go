package sampling

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"optrule/internal/relation"
)

// twoColumnRelation has two numeric columns: X = i, Y = 2i (with every
// 9th Y value NaN), spanning several scan batches.
func twoColumnRelation(t testing.TB, n int) *relation.MemoryRelation {
	t.Helper()
	rel := relation.MustNewMemoryRelation(relation.Schema{
		{Name: "X", Kind: relation.Numeric},
		{Name: "Y", Kind: relation.Numeric},
	})
	for i := 0; i < n; i++ {
		y := float64(2 * i)
		if i%9 == 0 {
			y = math.NaN()
		}
		rel.MustAppend([]float64{float64(i), y}, nil)
	}
	return rel
}

func TestMultiColumnWithReplacementMatchesSingleColumn(t *testing.T) {
	rel := twoColumnRelation(t, 20000) // > 2 batches
	attrs := []int{0, 1}
	const s = 500
	rngs := []*rand.Rand{rand.New(rand.NewSource(3)), rand.New(rand.NewSource(4))}
	got, err := MultiColumnWithReplacement(rel, attrs, s, rngs, 0)
	if err != nil {
		t.Fatal(err)
	}
	for k, attr := range attrs {
		want, err := ColumnWithReplacement(rel, attr, s, rand.New(rand.NewSource(3+int64(k))))
		if err != nil {
			t.Fatal(err)
		}
		if len(got[k].Sample) != s {
			t.Fatalf("attr %d: sample size %d, want %d", attr, len(got[k].Sample), s)
		}
		// NaN != NaN, so compare bit patterns.
		for i := range want {
			g, w := got[k].Sample[i], want[i]
			if math.Float64bits(g) != math.Float64bits(w) {
				t.Fatalf("attr %d: sample[%d] = %v, want %v (fused pass must be bit-identical)", attr, i, g, w)
			}
		}
		if got[k].Distinct != nil {
			t.Errorf("attr %d: distinct tracking was not requested", attr)
		}
	}
}

func TestMultiColumnWithReplacementDistinctTracking(t *testing.T) {
	rel := relation.MustNewMemoryRelation(relation.Schema{
		{Name: "Small", Kind: relation.Numeric},
		{Name: "Big", Kind: relation.Numeric},
		{Name: "HasNaN", Kind: relation.Numeric},
	})
	for i := 0; i < 1000; i++ {
		nan := 1.0
		if i%13 == 0 {
			nan = math.NaN()
		}
		rel.MustAppend([]float64{float64(i % 5), float64(i), nan}, nil)
	}
	rngs := []*rand.Rand{
		rand.New(rand.NewSource(1)), rand.New(rand.NewSource(2)), rand.New(rand.NewSource(3)),
	}
	got, err := MultiColumnWithReplacement(rel, []int{0, 1, 2}, 50, rngs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if want := []float64{0, 1, 2, 3, 4}; !reflect.DeepEqual(got[0].Distinct, want) {
		t.Errorf("small domain distinct = %v, want %v", got[0].Distinct, want)
	}
	if got[1].Distinct != nil {
		t.Errorf("large domain should overflow the tracking limit, got %v", got[1].Distinct)
	}
	if got[2].Distinct != nil {
		t.Errorf("NaN-bearing attribute must not get finest buckets, got %v", got[2].Distinct)
	}
}

func TestMultiColumnWithReplacementErrors(t *testing.T) {
	rel := twoColumnRelation(t, 10)
	if _, err := MultiColumnWithReplacement(rel, []int{0, 1}, 5, []*rand.Rand{rand.New(rand.NewSource(1))}, 0); err == nil {
		t.Error("mismatched rngs length should be rejected")
	}
	empty := relation.MustNewMemoryRelation(relation.Schema{{Name: "X", Kind: relation.Numeric}})
	if _, err := MultiColumnWithReplacement(empty, []int{0}, 5, []*rand.Rand{rand.New(rand.NewSource(1))}, 0); err == nil {
		t.Error("empty relation should be rejected")
	}
}

func TestMultiColumnWithReplacementAbortsAfterTrackersOverflow(t *testing.T) {
	// High-cardinality column: the distinct tracker overflows within the
	// first batch, after which the scan must stop as soon as all sample
	// indices are satisfied rather than reading the whole relation.
	n := 100000
	rel := twoColumnRelation(t, n)
	counting := &relation.CountingRelation{R: rel}
	rngs := []*rand.Rand{rand.New(rand.NewSource(21))}
	out, err := MultiColumnWithReplacement(counting, []int{0}, 10, rngs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Distinct != nil {
		t.Errorf("tracker should have overflowed, got %v", out[0].Distinct)
	}
	idx, err := WithReplacementIndices(rand.New(rand.NewSource(21)), n, 10)
	if err != nil {
		t.Fatal(err)
	}
	last := idx[len(idx)-1]
	// The tracker overflows inside batch 0 but is observed overflowed
	// from batch 1 on, so the scan stops at the end of the batch
	// containing the last sample index (or batch 1, whichever is later).
	bs := relation.DefaultBatchSize
	wantRows := (last/bs + 1) * bs
	if wantRows < 2*bs {
		wantRows = 2 * bs
	}
	if wantRows > n {
		wantRows = n
	}
	if counting.Rows != int64(wantRows) {
		t.Errorf("scan read %d rows, want %d (abort once trackers overflow and samples are satisfied)", counting.Rows, wantRows)
	}
}

func TestMultiColumnWithReplacementEarlyAbort(t *testing.T) {
	n := 50000
	rel := twoColumnRelation(t, n)
	// Replay the index draws to compute exactly where the scan may stop:
	// the end of the batch containing the largest sampled index.
	maxIdx := 0
	for _, seed := range []int64{9, 10} {
		idx, err := WithReplacementIndices(rand.New(rand.NewSource(seed)), n, 10)
		if err != nil {
			t.Fatal(err)
		}
		if last := idx[len(idx)-1]; last > maxIdx {
			maxIdx = last
		}
	}
	wantRows := (maxIdx/relation.DefaultBatchSize + 1) * relation.DefaultBatchSize
	if wantRows > n {
		wantRows = n
	}
	counting := &relation.CountingRelation{R: rel}
	rngs := []*rand.Rand{rand.New(rand.NewSource(9)), rand.New(rand.NewSource(10))}
	if _, err := MultiColumnWithReplacement(counting, []int{0, 1}, 10, rngs, 0); err != nil {
		t.Fatal(err)
	}
	if counting.Scans != 1 {
		t.Errorf("scans = %d, want 1", counting.Scans)
	}
	if counting.Rows != int64(wantRows) {
		t.Errorf("scan read %d rows; want abort after batch containing last index (%d rows)", counting.Rows, wantRows)
	}
}
