package sampling

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"optrule/internal/relation"
)

func makeRelation(t testing.TB, n int) *relation.MemoryRelation {
	t.Helper()
	rel := relation.MustNewMemoryRelation(relation.Schema{{Name: "X", Kind: relation.Numeric}})
	rel.Grow(n)
	for i := 0; i < n; i++ {
		rel.MustAppend([]float64{float64(i)}, nil)
	}
	return rel
}

func TestWithReplacementIndicesBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	idx, err := WithReplacementIndices(rng, 100, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 1000 {
		t.Fatalf("got %d indices, want 1000", len(idx))
	}
	if !sort.IntsAreSorted(idx) {
		t.Errorf("indices not sorted")
	}
	for _, i := range idx {
		if i < 0 || i >= 100 {
			t.Fatalf("index %d out of range", i)
		}
	}
}

func TestWithReplacementIndicesErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := WithReplacementIndices(rng, 0, 5); err == nil {
		t.Errorf("empty population accepted")
	}
	if _, err := WithReplacementIndices(rng, 10, -1); err == nil {
		t.Errorf("negative sample size accepted")
	}
	idx, err := WithReplacementIndices(rng, 10, 0)
	if err != nil || len(idx) != 0 {
		t.Errorf("zero sample should be empty, got %v, %v", idx, err)
	}
}

func TestColumnWithReplacementExactCount(t *testing.T) {
	rel := makeRelation(t, 10)
	rng := rand.New(rand.NewSource(7))
	// Oversampling a tiny relation forces many duplicate indices.
	sample, err := ColumnWithReplacement(rel, 0, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(sample) != 500 {
		t.Fatalf("got %d samples, want 500", len(sample))
	}
	for _, v := range sample {
		if v < 0 || v > 9 || v != math.Trunc(v) {
			t.Fatalf("sample value %g not a valid row value", v)
		}
	}
}

func TestColumnWithReplacementSpansBatches(t *testing.T) {
	n := 3*relation.DefaultBatchSize + 5
	rel := makeRelation(t, n)
	rng := rand.New(rand.NewSource(11))
	sample, err := ColumnWithReplacement(rel, 0, 2000, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Values must match their indices (row i holds value i), so a sample
	// from late batches must include values beyond the first batch.
	maxV := 0.0
	for _, v := range sample {
		if v > maxV {
			maxV = v
		}
	}
	if maxV < float64(relation.DefaultBatchSize) {
		t.Errorf("sample never crossed the first batch; max value %g", maxV)
	}
}

func TestColumnWithReplacementUniformity(t *testing.T) {
	// Chi-squared-ish check: sampling 40x per value from 100 values
	// should hit every value and no value should be wildly off 40.
	rel := makeRelation(t, 100)
	rng := rand.New(rand.NewSource(13))
	sample, err := ColumnWithReplacement(rel, 0, 4000, rng)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 100)
	for _, v := range sample {
		counts[int(v)]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Errorf("value %d never sampled", i)
		}
		if c > 100 {
			t.Errorf("value %d sampled %d times; suspiciously non-uniform", i, c)
		}
	}
}

func TestColumnWithReplacementPropertyCountAndMembership(t *testing.T) {
	f := func(seed int64, nRaw, sRaw uint16) bool {
		n := int(nRaw%5000) + 1
		s := int(sRaw % 3000)
		rel := makeRelation(t, n)
		rng := rand.New(rand.NewSource(seed))
		sample, err := ColumnWithReplacement(rel, 0, s, rng)
		if err != nil || len(sample) != s {
			return false
		}
		for _, v := range sample {
			if v < 0 || v >= float64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestReservoirBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r, err := NewReservoir(10, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		r.Offer(float64(i))
	}
	if r.Seen() != 1000 {
		t.Errorf("Seen = %d, want 1000", r.Seen())
	}
	s := r.Sample()
	if len(s) != 10 {
		t.Fatalf("sample size %d, want 10", len(s))
	}
	seen := map[float64]bool{}
	for _, v := range s {
		if v < 0 || v >= 1000 {
			t.Errorf("sample value %g out of stream range", v)
		}
		if seen[v] {
			t.Errorf("without-replacement sample has duplicate %g", v)
		}
		seen[v] = true
	}
}

func TestReservoirShortStream(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	r, _ := NewReservoir(10, rng)
	for i := 0; i < 3; i++ {
		r.Offer(float64(i))
	}
	if len(r.Sample()) != 3 {
		t.Errorf("short stream should keep everything, got %d", len(r.Sample()))
	}
	if _, err := NewReservoir(0, rng); err == nil {
		t.Errorf("zero-size reservoir accepted")
	}
}

func TestReservoirApproximatelyUniform(t *testing.T) {
	// Each of 100 stream values should appear in a size-10 reservoir
	// with probability 1/10; over 2000 trials each value's count should
	// be near 200.
	counts := make([]int, 100)
	for trial := 0; trial < 2000; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		r, _ := NewReservoir(10, rng)
		for i := 0; i < 100; i++ {
			r.Offer(float64(i))
		}
		for _, v := range r.Sample() {
			counts[int(v)]++
		}
	}
	for i, c := range counts {
		if c < 120 || c > 290 {
			t.Errorf("value %d kept %d times over 2000 trials; want ~200", i, c)
		}
	}
}
