// Package sampling implements the random sampling primitives used by
// the bucketing step (Algorithm 3.1): uniform sampling with replacement
// from a relation of known size, realized as a single sequential scan,
// and reservoir sampling for streams of unknown size.
//
// The paper's analysis (Section 3.2) assumes each sample point is drawn
// independently and uniformly at random *with replacement*; the indexed
// sampler below preserves exactly that distribution while touching the
// underlying data in storage order only — no random I/O.
package sampling

import (
	"fmt"
	"math/rand"
	"sort"

	"optrule/internal/relation"
)

// WithReplacementIndices draws s indices uniformly at random with
// replacement from [0, n) and returns them sorted ascending. The sorted
// order lets a caller fetch the sampled tuples in one sequential pass.
func WithReplacementIndices(rng *rand.Rand, n, s int) ([]int, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sampling: population size %d must be positive", n)
	}
	if s < 0 {
		return nil, fmt.Errorf("sampling: negative sample size %d", s)
	}
	idx := make([]int, s)
	for i := range idx {
		idx[i] = rng.Intn(n)
	}
	sort.Ints(idx)
	return idx, nil
}

// ColumnWithReplacement draws a uniform with-replacement sample of size
// s from the numeric attribute at schema position attr, using a single
// sequential scan of rel. The returned values are in no particular
// order with respect to the underlying distribution (they follow the
// sorted index order), which is irrelevant to the bucketing step since
// the sample is sorted immediately afterwards.
func ColumnWithReplacement(rel relation.Relation, attr int, s int, rng *rand.Rand) ([]float64, error) {
	n := rel.NumTuples()
	idx, err := WithReplacementIndices(rng, n, s)
	if err != nil {
		return nil, err
	}
	out := make([]float64, 0, s)
	next := 0 // next position in idx to satisfy
	at := 0   // global row number of the batch start
	err = rel.Scan(relation.ColumnSet{Numeric: []int{attr}}, func(b *relation.Batch) error {
		if next >= len(idx) {
			return errDone
		}
		hi := at + b.Len
		for next < len(idx) && idx[next] < hi {
			v := b.Numeric[0][idx[next]-at]
			out = append(out, v)
			next++
			// Duplicated indices (with-replacement draws) each contribute
			// one sample point; emit repeats without re-reading.
			for next < len(idx) && idx[next] == idx[next-1] {
				out = append(out, v)
				next++
			}
		}
		at = hi
		return nil
	})
	if err != nil && err != errDone {
		return nil, err
	}
	if len(out) != s {
		return nil, fmt.Errorf("sampling: drew %d of %d requested samples", len(out), s)
	}
	return out, nil
}

// errDone aborts a scan early once every sampled index is satisfied.
var errDone = fmt.Errorf("sampling: done")

// Reservoir maintains a uniform without-replacement sample of a stream
// of float64 values whose length is unknown in advance (Vitter's
// Algorithm R). It is provided for completeness: Algorithm 3.1 knows N
// and uses with-replacement sampling, but streaming ingest pipelines
// often do not.
type Reservoir struct {
	k      int
	seen   int
	rng    *rand.Rand
	sample []float64
}

// NewReservoir creates a reservoir holding at most k values.
func NewReservoir(k int, rng *rand.Rand) (*Reservoir, error) {
	if k <= 0 {
		return nil, fmt.Errorf("sampling: reservoir size %d must be positive", k)
	}
	return &Reservoir{k: k, rng: rng, sample: make([]float64, 0, k)}, nil
}

// Offer feeds one value from the stream.
func (r *Reservoir) Offer(v float64) {
	r.seen++
	if len(r.sample) < r.k {
		r.sample = append(r.sample, v)
		return
	}
	if j := r.rng.Intn(r.seen); j < r.k {
		r.sample[j] = v
	}
}

// Seen returns how many values have been offered.
func (r *Reservoir) Seen() int { return r.seen }

// Sample returns the current sample. The returned slice is owned by the
// reservoir; callers should copy it if they keep feeding values.
func (r *Reservoir) Sample() []float64 { return r.sample }
