// Package sampling implements the random sampling primitives used by
// the bucketing step (Algorithm 3.1): uniform sampling with replacement
// from a relation of known size, realized as a single sequential scan,
// and reservoir sampling for streams of unknown size.
//
// The paper's analysis (Section 3.2) assumes each sample point is drawn
// independently and uniformly at random *with replacement*; the indexed
// sampler below preserves exactly that distribution while touching the
// underlying data in storage order only — no random I/O.
package sampling

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"optrule/internal/relation"
)

// WithReplacementIndices draws s indices uniformly at random with
// replacement from [0, n) and returns them sorted ascending. The sorted
// order lets a caller fetch the sampled tuples in one sequential pass.
//
// The indices are generated already sorted in O(s), via the classic
// exponential-spacings construction: the running sums of s+1 iid
// Exp(1) variables, normalized by their total, are distributed exactly
// as the order statistics of s iid Uniform(0,1) draws. This replaces
// the draw-then-sort approach (O(s log s)), whose sort dominated the
// sampling phase's CPU profile; the sampled-index distribution is
// unchanged.
func WithReplacementIndices(rng *rand.Rand, n, s int) ([]int, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sampling: population size %d must be positive", n)
	}
	if s < 0 {
		return nil, fmt.Errorf("sampling: negative sample size %d", s)
	}
	idx := make([]int, s)
	if s == 0 {
		return idx, nil
	}
	cum := make([]float64, s)
	total := 0.0
	for i := range cum {
		total += rng.ExpFloat64()
		cum[i] = total
	}
	total += rng.ExpFloat64()
	scale := float64(n) / total
	for i, c := range cum {
		k := int(c * scale)
		if k >= n {
			k = n - 1 // guard the half-open interval against rounding
		}
		idx[i] = k
	}
	return idx, nil
}

// boundedScan returns a scan function over rel that stops after the
// row at index limit-1: when rel supports range scans, the scan is
// issued as ScanRange(0, limit), so the storage layer never reads the
// tail at all — on the v2 columnar format the read-ahead pipeline
// skips every block group past the last sampled index instead of
// fetching it and aborting afterwards. Otherwise the plain Scan is
// returned and the caller's early-abort error does the bounding.
func boundedScan(rel relation.Relation, limit int) func(relation.ColumnSet, func(*relation.Batch) error) error {
	if rs, ok := rel.(relation.RangeScanner); ok {
		if limit > rel.NumTuples() {
			limit = rel.NumTuples()
		}
		return func(cols relation.ColumnSet, fn func(*relation.Batch) error) error {
			return rs.ScanRange(0, limit, cols, fn)
		}
	}
	return rel.Scan
}

// ColumnWithReplacement draws a uniform with-replacement sample of size
// s from the numeric attribute at schema position attr, using a single
// sequential scan of rel. The returned values are in no particular
// order with respect to the underlying distribution (they follow the
// sorted index order), which is irrelevant to the bucketing step since
// the sample is sorted immediately afterwards.
//
// The sampled indices are sorted, so the scan is bounded at the largest
// one: on range-scanning relations rows past it are never read.
func ColumnWithReplacement(rel relation.Relation, attr int, s int, rng *rand.Rand) ([]float64, error) {
	n := rel.NumTuples()
	idx, err := WithReplacementIndices(rng, n, s)
	if err != nil {
		return nil, err
	}
	limit := 0
	if s > 0 {
		limit = idx[s-1] + 1
	}
	out := make([]float64, 0, s)
	next := 0 // next position in idx to satisfy
	at := 0   // global row number of the batch start
	err = boundedScan(rel, limit)(relation.ColumnSet{Numeric: []int{attr}}, func(b *relation.Batch) error {
		if next >= len(idx) {
			return errDone
		}
		hi := at + b.Len
		for next < len(idx) && idx[next] < hi {
			v := b.Numeric[0][idx[next]-at]
			out = append(out, v)
			next++
			// Duplicated indices (with-replacement draws) each contribute
			// one sample point; emit repeats without re-reading.
			for next < len(idx) && idx[next] == idx[next-1] {
				out = append(out, v)
				next++
			}
		}
		at = hi
		return nil
	})
	if err != nil && err != errDone {
		return nil, err
	}
	if len(out) != s {
		return nil, fmt.Errorf("sampling: drew %d of %d requested samples", len(out), s)
	}
	return out, nil
}

// errDone aborts a scan early once every sampled index is satisfied.
var errDone = fmt.Errorf("sampling: done")

// MultiSample is the output of the fused sampling pass for one attribute.
type MultiSample struct {
	// Sample is the with-replacement sample in sorted-index order,
	// identical to what ColumnWithReplacement would have drawn from the
	// same rng.
	Sample []float64
	// Distinct is the attribute's sorted distinct finite value set, only
	// populated when distinct tracking was requested and the attribute
	// stayed within the tracking limit (and contained no NaN values);
	// nil otherwise.
	Distinct []float64
}

// MultiColumnWithReplacement fuses the sampling passes of several
// numeric attributes into ONE sequential scan: for each attrs[k] it
// draws an independent uniform with-replacement sample of size s driven
// by rngs[k], consuming exactly the random stream that
// ColumnWithReplacement(rel, attrs[k], s, rngs[k]) would, so per-attribute
// results are bit-identical to the unfused path. This is what lets the
// miner's boundary-construction phase cost one scan of the relation
// instead of one scan per attribute.
//
// If trackDistinct > 0 the scan additionally records each attribute's
// distinct value set for the finest-bucket path (Definition 2.5): an
// attribute's Distinct slice is populated only if it has at most
// trackDistinct distinct finite values and no NaNs; tracking forces a
// full scan (no early abort once samples are satisfied).
//
// When the relation serves point reads (relation.NumericPointReader)
// and no distinct tracking is requested, the samples are fetched
// directly at their sorted indices instead of scanning: the largest
// sample index is within ~n/S rows of the end, so the "bounded" scan
// reads essentially every row to deliver S of them, where point reads
// cost 8 bytes per sample. The sampled values — and therefore the
// bucket boundaries and every downstream rule — are identical either
// way.
func MultiColumnWithReplacement(rel relation.Relation, attrs []int, s int, rngs []*rand.Rand, trackDistinct int) ([]MultiSample, error) {
	if len(attrs) != len(rngs) {
		return nil, fmt.Errorf("sampling: %d attributes but %d rngs", len(attrs), len(rngs))
	}
	reqs := make([]ColumnRequest, len(attrs))
	for k := range attrs {
		reqs[k] = ColumnRequest{Attr: attrs[k], S: s, Rng: rngs[k], TrackDistinct: trackDistinct}
	}
	return MultiColumnRequests(rel, reqs)
}

// ColumnRequest is one attribute's share of a fused sampling scan: a
// with-replacement sample of size S driven by Rng, plus optional
// distinct-value tracking for the finest-bucket path. Requests are
// independent — different attributes may sample at different sizes in
// the same scan, and the same attribute may appear more than once
// (e.g. a 1000-bucket 1-D sample and a 64-bucket 2-D grid sample, each
// consuming its own fresh stream).
type ColumnRequest struct {
	Attr          int
	S             int
	Rng           *rand.Rand
	TrackDistinct int // 0 = off
}

// MultiColumnRequests generalizes MultiColumnWithReplacement to
// heterogeneous per-request sample sizes: every request draws exactly
// the stream ColumnWithReplacement(rel, req.Attr, req.S, req.Rng)
// would, so per-request results stay bit-identical to the unfused
// path, while the relation is scanned at most ONCE for the whole set.
// Requests needing no rows at all (S = 0, no tracking) trigger no scan.
func MultiColumnRequests(rel relation.Relation, reqs []ColumnRequest) ([]MultiSample, error) {
	n := rel.NumTuples()
	out := make([]MultiSample, len(reqs))
	idx := make([][]int, len(reqs))
	next := make([]int, len(reqs))
	limit := 0
	anyTracking := false
	for k, req := range reqs {
		ix, err := WithReplacementIndices(req.Rng, n, req.S)
		if err != nil {
			return nil, err
		}
		idx[k] = ix
		out[k].Sample = make([]float64, 0, req.S)
		if len(ix) > 0 && ix[len(ix)-1]+1 > limit {
			limit = ix[len(ix)-1] + 1
		}
		if req.TrackDistinct > 0 {
			anyTracking = true
		}
	}
	if limit == 0 && !anyTracking {
		return out, nil // nothing needs any row
	}
	// The scan reads each requested column once even when several
	// requests share an attribute.
	uniq := make([]int, 0, len(reqs))
	colOf := make([]int, len(reqs))
	pos := map[int]int{}
	for k, req := range reqs {
		p, ok := pos[req.Attr]
		if !ok {
			p = len(uniq)
			pos[req.Attr] = p
			uniq = append(uniq, req.Attr)
		}
		colOf[k] = p
	}
	if pr, ok := rel.(relation.NumericPointReader); ok && !anyTracking {
		for k := range reqs {
			sample := make([]float64, len(idx[k]))
			if err := pr.ReadNumericPoints(reqs[k].Attr, idx[k], sample); err != nil {
				return nil, err
			}
			out[k].Sample = sample
		}
		return out, nil
	}
	type distinct struct {
		seen     map[float64]struct{}
		overflow bool
	}
	dist := make([]distinct, len(reqs))
	for k, req := range reqs {
		if req.TrackDistinct > 0 {
			dist[k].seen = make(map[float64]struct{})
		}
	}
	// Distinct tracking needs every row; pure sampling needs none past
	// the largest sorted index of any request, so the scan is bounded
	// there (rows past it are never read on range-scanning relations).
	scan := rel.Scan
	if !anyTracking {
		scan = boundedScan(rel, limit)
	}
	at := 0 // global row number of the batch start
	err := scan(relation.ColumnSet{Numeric: uniq}, func(b *relation.Batch) error {
		pending := false
		tracking := false
		for k := range reqs {
			col := b.Numeric[colOf[k]]
			ix, nx := idx[k], next[k]
			hi := at + b.Len
			// Duplicated indices (with-replacement draws) each contribute
			// one sample point; the loop condition re-admits them.
			for nx < len(ix) && ix[nx] < hi {
				out[k].Sample = append(out[k].Sample, col[ix[nx]-at])
				nx++
			}
			next[k] = nx
			if nx < len(ix) {
				pending = true
			}
			if dist[k].seen != nil && !dist[k].overflow {
				tracking = true
				d := &dist[k]
				for _, v := range col[:b.Len] {
					if math.IsNaN(v) {
						// NaN carries no order information and would make
						// finest-bucket cut points ill-defined; treat the
						// attribute as untrackable.
						d.overflow = true
						break
					}
					if _, ok := d.seen[v]; !ok {
						d.seen[v] = struct{}{}
						if len(d.seen) > reqs[k].TrackDistinct {
							d.overflow = true
							break
						}
					}
				}
			}
		}
		at += b.Len
		// Abort once every sample is satisfied and no request still
		// tracks distinct values (a request whose tracker overflowed
		// — or that started the batch overflowed — needs no more rows).
		if !pending && !tracking {
			return errDone
		}
		return nil
	})
	if err != nil && err != errDone {
		return nil, err
	}
	for k, req := range reqs {
		if len(out[k].Sample) != req.S {
			return nil, fmt.Errorf("sampling: attribute %d: drew %d of %d requested samples", req.Attr, len(out[k].Sample), req.S)
		}
		if dist[k].seen != nil && !dist[k].overflow && len(dist[k].seen) > 0 {
			values := make([]float64, 0, len(dist[k].seen))
			for v := range dist[k].seen {
				values = append(values, v)
			}
			sort.Float64s(values)
			out[k].Distinct = values
		}
	}
	return out, nil
}

// Reservoir maintains a uniform without-replacement sample of a stream
// of float64 values whose length is unknown in advance (Vitter's
// Algorithm R). It is provided for completeness: Algorithm 3.1 knows N
// and uses with-replacement sampling, but streaming ingest pipelines
// often do not.
type Reservoir struct {
	k      int
	seen   int
	rng    *rand.Rand
	sample []float64
}

// NewReservoir creates a reservoir holding at most k values.
func NewReservoir(k int, rng *rand.Rand) (*Reservoir, error) {
	if k <= 0 {
		return nil, fmt.Errorf("sampling: reservoir size %d must be positive", k)
	}
	return &Reservoir{k: k, rng: rng, sample: make([]float64, 0, k)}, nil
}

// Offer feeds one value from the stream.
func (r *Reservoir) Offer(v float64) {
	r.seen++
	if len(r.sample) < r.k {
		r.sample = append(r.sample, v)
		return
	}
	if j := r.rng.Intn(r.seen); j < r.k {
		r.sample[j] = v
	}
}

// Seen returns how many values have been offered.
func (r *Reservoir) Seen() int { return r.seen }

// Sample returns the current sample. The returned slice is owned by the
// reservoir; callers should copy it if they keep feeding values.
func (r *Reservoir) Sample() []float64 { return r.sample }
