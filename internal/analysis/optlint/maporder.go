package optlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"optrule/internal/analysis"
)

// MapOrder flags map iteration whose body leaks Go's randomized map
// order into rule output: appending to a slice that outlives the loop
// (candidate lists, schedules, cache keys) without sorting it
// afterwards, or writing output mid-loop. The engine's headline
// guarantee is bit-identical rules regardless of worker count or steal
// order; an unsorted map range anywhere in the plan/merge pipeline
// breaks it silently and only under the iteration orders the tests
// happened not to see.
var MapOrder = &analysis.Analyzer{
	Name: "maporder",
	Doc: `flag map ranges whose bodies append to outer slices without a
subsequent sort, or write output, making rule output depend on Go's
randomized map iteration order`,
	Match: inModule,
	Run:   runMapOrder,
}

func runMapOrder(pass *analysis.Pass) (any, error) {
	forEachFuncBody(pass, func(decl *ast.FuncDecl) {
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMapRange(pass.TypesInfo, rs) {
				return true
			}
			checkMapRangeBody(pass, decl, rs)
			return true
		})
	})
	return nil, nil
}

// isMapRange reports whether rs ranges over a map value.
func isMapRange(info *types.Info, rs *ast.RangeStmt) bool {
	t := info.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRangeBody inspects one map-range body for order leaks.
func checkMapRangeBody(pass *analysis.Pass, decl *ast.FuncDecl, rs *ast.RangeStmt) {
	info := pass.TypesInfo
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.RangeStmt:
			// A nested map range reports its own leaks.
			if v != rs && isMapRange(info, v) {
				return false
			}
		case *ast.AssignStmt:
			for _, rhs := range v.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltin(info, call, "append") || len(call.Args) == 0 {
					continue
				}
				target := rootObj(info, call.Args[0])
				if target == nil || !declaredOutside(target, rs.Body) {
					continue
				}
				if sortedAfter(info, decl.Body, rs, target) {
					continue
				}
				pass.Reportf(call.Pos(),
					"appending to %s while ranging over a map leaks the randomized iteration order; sort %s after the loop or range over sorted keys",
					target.Name(), target.Name())
			}
			if v.Tok == token.ADD_ASSIGN && len(v.Lhs) == 1 && isString(info.TypeOf(v.Lhs[0])) {
				if target := rootObj(info, v.Lhs[0]); target != nil && declaredOutside(target, rs.Body) {
					pass.Reportf(v.Pos(),
						"building string %s while ranging over a map leaks the randomized iteration order; range over sorted keys",
						target.Name())
				}
			}
		case *ast.CallExpr:
			if name, ok := outputCall(info, v); ok {
				pass.Reportf(v.Pos(),
					"%s while ranging over a map emits output in randomized iteration order; range over sorted keys",
					name)
			}
		}
		return true
	})
}

// sortedAfter reports whether, after the range statement, the
// enclosing function sorts the target: a call to any sort or slices
// function mentioning the target among its arguments.
func sortedAfter(info *types.Info, body *ast.BlockStmt, rs *ast.RangeStmt, target types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && info.ObjectOf(id) == target {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// outputCall reports whether the call writes user-visible output:
// fmt printing, io/binary writes, or Write*/Encode methods.
func outputCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	if isBuiltin(info, call, "print") || isBuiltin(info, call, "println") {
		return "printing", true
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return "", false
	}
	if fn.Signature().Recv() == nil {
		if fn.Pkg() == nil {
			return "", false
		}
		switch fn.Pkg().Path() {
		case "fmt":
			if n := fn.Name(); strings.HasPrefix(n, "Print") || strings.HasPrefix(n, "Fprint") {
				return "fmt." + n, true
			}
		case "io":
			if fn.Name() == "WriteString" {
				return "io.WriteString", true
			}
		case "encoding/binary":
			if fn.Name() == "Write" {
				return "binary.Write", true
			}
		}
		return "", false
	}
	switch fn.Name() {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Encode", "Print", "Printf", "Println":
		return "calling " + fn.Name(), true
	}
	return "", false
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
