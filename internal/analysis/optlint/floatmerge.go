package optlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"optrule/internal/analysis"
)

// FloatMerge flags floating-point accumulation in functions reachable
// from a parallel merge entry point (execState.merge, Partial.Merge,
// Counts.merge, Grid.Merge, and any other *merge*-named function in
// the kernel packages). Float addition is not associative, so a float
// += in a fold whose order varies with worker count or steal order
// breaks bit-identical results. Only integer tallies (or extremes,
// which are order-free) may accumulate there; the sanctioned
// exceptions — sums folded in a fixed deterministic order, or values
// proven to be exact small integers in float64 — carry directives.
var FloatMerge = &analysis.Analyzer{
	Name: "floatmerge",
	Doc: `flag floating-point += accumulation in functions reachable from
parallel merge entry points, where non-associative float addition
breaks bit-identical rule output`,
	Match: pkgMatcher(
		"internal/plan",
		"internal/bucketing",
		"internal/region",
	),
	Run: runFloatMerge,
}

// mergeEntry reports whether a declared function is a merge entry
// point, by name: merge, Merge, mergedWith, mergeRuns, ...
func mergeEntry(decl *ast.FuncDecl) bool {
	return strings.Contains(strings.ToLower(decl.Name.Name), "merge")
}

func runFloatMerge(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo

	// Index this package's declared functions and the static
	// same-package call edges between them. Calls inside function
	// literals belong to the enclosing declaration.
	decls := map[*types.Func]*ast.FuncDecl{}
	forEachFuncBody(pass, func(decl *ast.FuncDecl) {
		if fn, ok := info.Defs[decl.Name].(*types.Func); ok {
			decls[fn] = decl
		}
	})
	callees := map[*ast.FuncDecl][]*ast.FuncDecl{}
	forEachFuncBody(pass, func(decl *ast.FuncDecl) {
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if target, ok := decls[calleeFunc(info, call)]; ok && target != decl {
				callees[decl] = append(callees[decl], target)
			}
			return true
		})
	})

	// Breadth-first reachability from the merge entry points.
	reachable := map[*ast.FuncDecl]bool{}
	var queue []*ast.FuncDecl
	forEachFuncBody(pass, func(decl *ast.FuncDecl) {
		if mergeEntry(decl) && !reachable[decl] {
			reachable[decl] = true
			queue = append(queue, decl)
		}
	})
	for len(queue) > 0 {
		decl := queue[0]
		queue = queue[1:]
		for _, next := range callees[decl] {
			if !reachable[next] {
				reachable[next] = true
				queue = append(queue, next)
			}
		}
	}

	// Flag float accumulation inside every reachable body, in source
	// order for stable output.
	forEachFuncBody(pass, func(decl *ast.FuncDecl) {
		if !reachable[decl] {
			return
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || (as.Tok != token.ADD_ASSIGN && as.Tok != token.SUB_ASSIGN) || len(as.Lhs) != 1 {
				return true
			}
			if isFloat(info.TypeOf(as.Lhs[0])) {
				pass.Reportf(as.Pos(),
					"floating-point accumulation in %s, which is reachable from a parallel merge entry point; float addition is order-dependent — keep merge tallies integer-exact or document why this fold is deterministic",
					decl.Name.Name)
			}
			return true
		})
	})
	return nil, nil
}
