package optlint

import (
	"go/ast"
	"go/types"
	"strings"

	"optrule/internal/analysis"
)

// CloseCheck flags ignored Close errors on write handles. For a file
// being written, Close is where delayed write errors surface; an
// `f.Close()` whose error is dropped can commit a truncated or corrupt
// file while the caller reports success. The check tracks handles
// obtained from os.Create / os.CreateTemp / os.OpenFile and from
// New*Writer-style constructors, and flags:
//
//   - a bare `x.Close()` statement outside error-cleanup blocks, and
//   - a `defer x.Close()` when no checked Close of x exists in the
//     function (a backup-cleanup defer next to a checked Close is
//     fine; a defer as the ONLY close is not).
//
// Closes inside an if whose condition tests an error value are
// error-path cleanup: the operation already failed, the Close error
// adds nothing.
var CloseCheck = &analysis.Analyzer{
	Name: "closecheck",
	Doc: `flag ignored Close() errors on write handles, where a dropped
Close error can commit a truncated file while reporting success`,
	Match: inModule,
	Run:   runCloseCheck,
}

func runCloseCheck(pass *analysis.Pass) (any, error) {
	forEachFuncBody(pass, func(decl *ast.FuncDecl) {
		checkCloses(pass, decl)
	})
	return nil, nil
}

func checkCloses(pass *analysis.Pass, decl *ast.FuncDecl) {
	info := pass.TypesInfo

	// Handles assigned from writer-producing calls.
	writers := map[types.Object]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !writerConstructor(info, call) {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			if obj := info.ObjectOf(id); obj != nil {
				writers[obj] = true
			}
		}
		return true
	})
	if len(writers) == 0 {
		return
	}

	// Classify every Close on a tracked handle.
	type closeSite struct {
		call    *ast.CallExpr
		obj     types.Object
		stmt    bool // bare statement
		deferCl bool // deferred call (directly or via a one-call literal)
	}
	var sites []closeSite
	checked := map[types.Object]bool{}
	var walk func(n ast.Node, guarded, deferred bool)
	walkList := func(list []ast.Stmt, guarded, deferred bool) {
		for _, s := range list {
			walk(s, guarded, deferred)
		}
	}
	walk = func(n ast.Node, guarded, deferred bool) {
		switch v := n.(type) {
		case nil:
			return
		case *ast.IfStmt:
			walk(v.Init, guarded, deferred)
			g := guarded || mentionsError(info, v.Cond)
			walk(v.Body, g, deferred)
			walk(v.Else, g, deferred)
			return
		case *ast.DeferStmt:
			if obj := closeTarget(info, writers, v.Call); obj != nil {
				sites = append(sites, closeSite{call: v.Call, obj: obj, deferCl: true})
				return
			}
			// defer func() { x.Close() }() — treat the body as deferred.
			if lit, ok := ast.Unparen(v.Call.Fun).(*ast.FuncLit); ok {
				walk(lit.Body, guarded, true)
				return
			}
			walk(v.Call, guarded, deferred)
			return
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(v.X).(*ast.CallExpr); ok {
				if obj := closeTarget(info, writers, call); obj != nil {
					if deferred || !guarded {
						sites = append(sites, closeSite{call: call, obj: obj, stmt: true, deferCl: deferred})
					}
					return
				}
			}
		case *ast.CallExpr:
			// A Close whose result is consumed (if err := x.Close();
			// ..., return x.Close(), err = x.Close()) reaches here as a
			// plain call, not an ExprStmt.
			if obj := closeTarget(info, writers, v); obj != nil {
				checked[obj] = true
			}
		case *ast.BlockStmt:
			walkList(v.List, guarded, deferred)
			return
		}
		// Generic descent preserving the flags.
		for _, child := range children(n) {
			walk(child, guarded, deferred)
		}
	}
	walk(decl.Body, false, false)

	for _, s := range sites {
		name := s.obj.Name()
		switch {
		case s.stmt && !s.deferCl:
			pass.Reportf(s.call.Pos(),
				"error from %s.Close() ignored on a write path; delayed write errors surface at Close — check it or the file may be committed truncated",
				name)
		case !s.stmt && s.deferCl && !checked[s.obj]:
			pass.Reportf(s.call.Pos(),
				"defer %s.Close() is the only Close of this write handle and its error is dropped; close explicitly on the success path and check the error",
				name)
		case s.stmt && s.deferCl && !checked[s.obj]:
			pass.Reportf(s.call.Pos(),
				"error from %s.Close() ignored in a deferred cleanup with no checked Close elsewhere; a failed Close can commit a truncated file",
				name)
		}
	}
}

// writerConstructor reports whether the call produces a write handle:
// os.Create/CreateTemp/OpenFile or a New*Writer-style constructor.
func writerConstructor(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	if isPkgFunc(fn, "os", "Create", "CreateTemp", "OpenFile") {
		return true
	}
	name := fn.Name()
	return strings.HasPrefix(name, "New") && strings.Contains(name, "Writer")
}

// closeTarget returns the tracked handle a call closes, if the call is
// x.Close() with x in writers.
func closeTarget(info *types.Info, writers map[types.Object]bool, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" || len(call.Args) != 0 {
		return nil
	}
	obj := rootObj(info, sel.X)
	if obj == nil || !writers[obj] {
		return nil
	}
	return obj
}

// mentionsError reports whether the condition inspects an error value
// (err != nil and friends).
func mentionsError(info *types.Info, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		if obj := info.ObjectOf(id); obj != nil {
			if named, ok := obj.Type().(*types.Named); ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
				found = true
			}
			if iface, ok := obj.Type().Underlying().(*types.Interface); ok && iface.NumMethods() == 1 && iface.Method(0).Name() == "Error" {
				found = true
			}
		}
		return !found
	})
	return found
}

// children lists a node's direct statement/expression children for the
// flag-preserving walk. ast.Inspect cannot be used directly because the
// guarded/deferred flags must flow down.
func children(n ast.Node) []ast.Node {
	var out []ast.Node
	if n == nil {
		return out
	}
	// One-level fan-out: inspect, but cut off at the first level by
	// tracking depth via the closure.
	first := true
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if first {
			first = false
			return true
		}
		out = append(out, m)
		return false
	})
	return out
}
