package optlint_test

import (
	"testing"

	"optrule/internal/analysis"
	"optrule/internal/analysis/analysistest"
	"optrule/internal/analysis/optlint"
)

func TestMapOrder(t *testing.T)    { analysistest.Run(t, optlint.MapOrder, "maporder") }
func TestNonDet(t *testing.T)      { analysistest.Run(t, optlint.NonDet, "nondet") }
func TestFloatMerge(t *testing.T)  { analysistest.Run(t, optlint.FloatMerge, "floatmerge") }
func TestByteCount(t *testing.T)   { analysistest.Run(t, optlint.ByteCount, "bytecount") }
func TestAtomicWrite(t *testing.T) { analysistest.Run(t, optlint.AtomicWrite, "atomicwrite") }
func TestCloseCheck(t *testing.T)  { analysistest.Run(t, optlint.CloseCheck, "closecheck") }

// TestSuiteSelfCheck runs the full suite over the whole module the way
// cmd/optlint does and requires zero findings: every true positive is
// fixed and every intended exception carries an //optlint:ignore
// directive. A regression here means a new invariant violation crept in.
func TestSuiteSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	pkgs, err := analysis.Load("../../..", "optrule/...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	for _, pkg := range pkgs {
		findings, err := analysis.RunAnalyzers(pkg, optlint.Suite(), true)
		if err != nil {
			t.Fatalf("%s: %v", pkg.PkgPath, err)
		}
		for _, f := range findings {
			t.Errorf("%s", f)
		}
	}
}
