package optlint

import (
	"go/ast"

	"optrule/internal/analysis"
)

// AtomicWrite flags os.Create / os.WriteFile calls whose enclosing
// function never calls os.Rename: writing a destination in place means
// a crash mid-write leaves a truncated, unreadable file where valid
// data may have been. Durable artifacts (relation files, shard
// manifests, converted outputs) must stage into a temp file in the
// destination directory and rename over the target on success, the
// pattern ConvertDisk and the shard manifest writer already follow.
// os.CreateTemp is always fine — a temp file is the staging half of
// the pattern.
var AtomicWrite = &analysis.Analyzer{
	Name: "atomicwrite",
	Doc: `flag os.Create/os.WriteFile on destinations in functions that
never os.Rename, where a crash mid-write destroys the previous valid
file instead of leaving it untouched`,
	Match: inModule,
	Run:   runAtomicWrite,
}

func runAtomicWrite(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo
	forEachFuncBody(pass, func(decl *ast.FuncDecl) {
		renames := false
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if isPkgFunc(calleeFunc(info, call), "os", "Rename") {
					renames = true
				}
			}
			return !renames
		})
		if renames {
			return
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			switch {
			case isPkgFunc(fn, "os", "Create"):
				pass.Reportf(call.Pos(),
					"os.Create writes the destination in place; stage into an os.CreateTemp file in the target directory and os.Rename it over the destination on success")
			case isPkgFunc(fn, "os", "WriteFile"):
				pass.Reportf(call.Pos(),
					"os.WriteFile writes the destination in place; write a temp file and os.Rename it over the destination on success")
			}
			return true
		})
	})
	return nil, nil
}
