// Testdata for the atomicwrite analyzer: destination writes without
// the temp+rename staging pattern.
package atomicwrite

import (
	"os"
	"path/filepath"
)

func directWriteFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want `os.WriteFile writes the destination in place`
}

func directCreate(path string) (*os.File, error) {
	return os.Create(path) // want `os.Create writes the destination in place`
}

func staged(path string, data []byte) error {
	tf, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*") // temp file: the staging half
	if err != nil {
		return err
	}
	tmp := tf.Name()
	if _, err := tf.Write(data); err != nil {
		tf.Close()
		os.Remove(tmp)
		return err
	}
	if err := tf.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

func createWithRename(path string) error {
	f, err := os.Create(path + ".partial") // the function renames: staging by hand
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(path + ".partial")
		return err
	}
	return os.Rename(path+".partial", path)
}

func waived(path string) error {
	//optlint:ignore atomicwrite demo: scratch file in a run-private temp dir, never a durable destination
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	return f.Close()
}
