// Testdata for the closecheck analyzer: ignored Close errors on write
// handles.
package closecheck

import "os"

func ignoredClose(path string, data []byte) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	f.Write(data)
	f.Close() // want `error from f.Close\(\) ignored on a write path`
}

func deferOnlyClose(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want `defer f.Close\(\) is the only Close of this write handle`
	_, err = f.WriteString("x")
	return err
}

func errorPathCleanup(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.WriteString("x"); err != nil {
		f.Close() // the write already failed: cleanup close is fine
		return err
	}
	return f.Close() // checked: delayed write errors reach the caller
}

func deferAsBackup(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // backup cleanup beside the checked Close below: fine
	if _, err := f.WriteString("x"); err != nil {
		return err
	}
	return f.Close()
}

func readHandleMayDefer(path string) ([]byte, error) {
	f, err := os.Open(path) // read handle: not tracked
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 8)
	_, err = f.Read(buf)
	return buf, err
}

func waived(path string) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	f.Write(nil)
	//optlint:ignore closecheck demo: best-effort debug dump, durability is explicitly not promised
	f.Close()
}
