// Testdata for the floatmerge analyzer: float accumulation reachable
// from parallel merge entry points.
package floatmerge

type state struct {
	counts []int
	sums   []float64
	peak   float64
}

func (s *state) merge(other *state) {
	for i := range s.counts {
		s.counts[i] += other.counts[i] // integer tallies: exact
	}
	for i := range s.sums {
		s.sums[i] += other.sums[i] // want `floating-point accumulation in merge,`
	}
	if other.peak > s.peak {
		s.peak = other.peak // extremes are order-free: fine
	}
}

func (s *state) MergeAll(others []*state) {
	for _, o := range others {
		s.addFrom(o)
	}
}

// addFrom is only reachable through MergeAll.
func (s *state) addFrom(o *state) {
	for i := range s.sums {
		s.sums[i] += o.sums[i] // want `floating-point accumulation in addFrom,`
	}
}

// scan is not reachable from any merge entry point: serial
// accumulation during a scan is the deterministic baseline itself.
func (s *state) scan(vals []float64) {
	for _, v := range vals {
		s.sums[0] += v
	}
}

func (s *state) mergeWaived(other *state) {
	for i := range s.sums {
		//optlint:ignore floatmerge demo: values are exact small integers stored in float64
		s.sums[i] += other.sums[i]
	}
}
