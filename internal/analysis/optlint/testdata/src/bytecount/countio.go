package bytecount

import (
	"io"
	"os"
)

// The designated raw-read file: reads here are exempt by name, the
// same carve-out internal/relation/countio.go gets.
func readFullHere(f *os.File, buf []byte) (int, error) {
	return io.ReadFull(f, buf)
}
