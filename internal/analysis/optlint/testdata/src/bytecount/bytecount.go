// Testdata for the bytecount analyzer: raw file reads outside the
// designated countio.go.
package bytecount

import (
	"bufio"
	"io"
	"os"
)

func rawFileReads(f *os.File, buf []byte) {
	f.Read(buf)      // want `os.File.Read bypasses the counted-read helpers`
	f.ReadAt(buf, 0) // want `os.File.ReadAt bypasses the counted-read helpers`
}

func rawBuffered(r *bufio.Reader, buf []byte) {
	io.ReadFull(r, buf) // want `io.ReadFull bypasses the counted-read helpers`
	r.Read(buf)         // want `bufio.Reader.Read bypasses the counted-read helpers`
}

func interfaceRead(r io.Reader, buf []byte) {
	r.Read(buf) // want `io reader Read bypasses the counted-read helpers`
}

type recordReader struct{}

func (*recordReader) Read() ([]string, error) { return nil, nil }

func recordRead(rd *recordReader) {
	rd.Read() // a non-file Read method (csv.Reader-style): not an I/O read
}

func waived(f *os.File, buf []byte) {
	//optlint:ignore bytecount demo: checksum verification pass, intentionally outside the cost model
	f.ReadAt(buf, 0)
}
