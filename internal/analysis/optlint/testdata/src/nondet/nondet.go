// Testdata for the nondet analyzer: ambient wall-clock and globally
// seeded randomness in kernel/merge code.
package nondet

import (
	"math/rand"
	"time"
)

func stamp() int64 {
	return time.Now().UnixNano() // want `time.Now in a kernel/merge path`
}

func elapsed(start time.Time) float64 {
	return time.Since(start).Seconds() // want `time.Since in a kernel/merge path`
}

func globalRand() int {
	return rand.Intn(10) // want `rand.Intn uses the globally seeded generator`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand.Shuffle uses the globally seeded generator`
}

func seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed)) // explicitly seeded: sanctioned
	return rng.Float64()
}

func pureDurationMath(d time.Duration) time.Duration {
	return 2 * d // no clock read
}

func waived() int64 {
	//optlint:ignore nondet demo: logged timestamp only, never feeds a rule
	return time.Now().Unix()
}
