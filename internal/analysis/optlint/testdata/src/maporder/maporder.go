// Testdata for the maporder analyzer: map ranges that leak Go's
// randomized iteration order into slices, strings, or output.
package maporder

import (
	"fmt"
	"sort"
)

func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `appending to keys while ranging over a map`
	}
	return keys
}

func appendThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // sorted below: deterministic
	}
	sort.Strings(keys)
	return keys
}

func appendThenSortSlice(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v) // sorted below via sort.Slice
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

func appendLocalOnly(m map[string]int) {
	for k := range m {
		var scratch []string
		scratch = append(scratch, k) // scratch dies inside the loop body
		_ = scratch
	}
}

func printsInsideLoop(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want `fmt.Println while ranging over a map`
	}
}

func buildsString(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want `building string s while ranging over a map`
	}
	return s
}

func sumsValues(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v // commutative: order-free
	}
	return total
}

func sliceRangeIsFine(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x) // slice order is deterministic
	}
	return out
}

func mapToMapIsFine(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v // map insert: order cannot leak
	}
	return out
}

func waived(m map[string]int) []string {
	var keys []string
	for k := range m {
		//optlint:ignore maporder demo: the caller treats this as an unordered set
		keys = append(keys, k)
	}
	return keys
}
