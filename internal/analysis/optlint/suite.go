// Package optlint is the engine's analyzer suite: six checks that
// mechanically enforce the invariants optrule's correctness arguments
// lean on — deterministic rule output, integer-exact parallel merges,
// accurate BytesRead accounting, and crash-safe writes. cmd/optlint
// runs the suite standalone or under `go vet -vettool`; the self-check
// test keeps the repo clean; intended exceptions carry
// //optlint:ignore <analyzer> <reason> directives.
package optlint

import (
	"go/ast"
	"go/types"
	"strings"

	"optrule/internal/analysis"
)

// Suite returns the full analyzer suite in reporting order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		MapOrder,
		NonDet,
		FloatMerge,
		ByteCount,
		AtomicWrite,
		CloseCheck,
	}
}

// modulePath is the import-path root the scope matchers hang off.
const modulePath = "optrule"

// inModule matches every package of this module (testdata packages,
// which go list reports under their synthetic paths, included).
func inModule(path string) bool {
	return path == modulePath || strings.HasPrefix(path, modulePath+"/")
}

// pkgMatcher builds a Match function accepting exactly the listed
// module-relative packages ("" means the root package) and their
// subpackages.
func pkgMatcher(rels ...string) func(string) bool {
	return func(path string) bool {
		for _, rel := range rels {
			full := modulePath
			if rel != "" {
				full = modulePath + "/" + rel
			}
			if path == full || strings.HasPrefix(path, full+"/") {
				return true
			}
		}
		return false
	}
}

// rootIdent peels selectors, indexes, slices, stars, parens, and calls
// off an expression and returns the base identifier: the x of
// x.f[i].g. Nil when the base is not an identifier (a literal, a call
// result, ...).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// rootObj resolves the base identifier of e to its object.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	id := rootIdent(e)
	if id == nil {
		return nil
	}
	return info.ObjectOf(id)
}

// calleeFunc resolves a call's static callee: a package function,
// a method, or nil for builtins, conversions, and dynamic calls
// through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.ObjectOf(id).(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is one of the named functions of the
// package at pkgPath (methods excluded).
func isPkgFunc(fn *types.Func, pkgPath string, names ...string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	if fn.Signature().Recv() != nil {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.ObjectOf(id).(*types.Builtin)
	return ok
}

// declaredOutside reports whether obj's declaration lies outside the
// node n (so writes to it inside n escape n).
func declaredOutside(obj types.Object, n ast.Node) bool {
	if obj == nil {
		return false
	}
	return obj.Pos() < n.Pos() || obj.Pos() >= n.End()
}

// forEachFuncBody visits every function body in the package: declared
// functions and methods. Function literals are part of their enclosing
// body and are visited with it.
func forEachFuncBody(pass *analysis.Pass, visit func(decl *ast.FuncDecl)) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				visit(fd)
			}
		}
	}
}

// isFloat reports whether t's core type is a floating-point scalar.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
