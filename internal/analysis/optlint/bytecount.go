package optlint

import (
	"go/ast"
	"go/types"
	"path/filepath"

	"optrule/internal/analysis"
)

// ByteCount flags raw file reads in internal/relation that bypass the
// counted-read helpers in countio.go feeding Stats.BytesRead. The
// cost model the planner trusts (and the paper's I/O accounting
// reproduces) is only as honest as BytesRead; a direct os.File.Read,
// ReadAt, or io.ReadFull charges nothing and silently understates
// physical I/O. All raw reads live in countio.go, which is the one
// file exempt from this check.
var ByteCount = &analysis.Analyzer{
	Name: "bytecount",
	Doc: `flag direct file reads in internal/relation that bypass the
counted-read helpers (countio.go) feeding BytesRead, silently
understating the physical I/O the cost model depends on`,
	Match: pkgMatcher("internal/relation"),
	Run:   runByteCount,
}

// countioFile is the designated home of raw reads; everything it
// exports charges BytesRead explicitly.
const countioFile = "countio.go"

func runByteCount(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		if filepath.Base(pass.Fset.Position(f.Pos()).Filename) == countioFile {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := rawRead(info, call); ok {
				pass.Reportf(call.Pos(),
					"%s bypasses the counted-read helpers in countio.go; reads that feed scans must charge BytesRead",
					name)
			}
			return true
		})
	}
	return nil, nil
}

// rawRead reports whether the call is a raw read: io.ReadFull /
// io.ReadAtLeast, or a Read/ReadAt method on an *os.File, a
// *bufio.Reader, or an io reader interface value.
func rawRead(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	if fn.Signature().Recv() == nil {
		if fn.Pkg().Path() == "io" && (fn.Name() == "ReadFull" || fn.Name() == "ReadAtLeast") {
			return "io." + fn.Name(), true
		}
		return "", false
	}
	if fn.Name() != "Read" && fn.Name() != "ReadAt" {
		return "", false
	}
	recv := fn.Signature().Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	switch t := recv.(type) {
	case *types.Named:
		obj := t.Obj()
		if obj.Pkg() == nil {
			return "", false
		}
		switch {
		case obj.Pkg().Path() == "os" && obj.Name() == "File":
			return "os.File." + fn.Name(), true
		case obj.Pkg().Path() == "bufio" && obj.Name() == "Reader":
			return "bufio.Reader." + fn.Name(), true
		}
		// Methods promoted from an embedded io interface still carry
		// the interface's package; concrete named readers elsewhere
		// (csv.Reader's record Read, ...) are not file reads.
		if obj.Pkg().Path() == "io" {
			return "io reader " + fn.Name(), true
		}
	case *types.Interface:
		if fn.Pkg().Path() == "io" {
			return "io reader " + fn.Name(), true
		}
	}
	return "", false
}
