package optlint

import (
	"go/ast"

	"optrule/internal/analysis"
)

// NonDet flags ambient nondeterminism — wall-clock reads and the
// globally seeded math/rand generator — in the kernel and merge
// packages. Anything the counting kernels or partial folds consume
// must be derived from the plan seed (plan.AttrRNG-style) or passed in
// explicitly, or reruns of the same plan produce different rules.
// Measurement code (internal/experiments, cmd/optbench) is out of
// scope: timing results is its purpose.
var NonDet = &analysis.Analyzer{
	Name: "nondet",
	Doc: `flag time.Now/time.Since and globally seeded math/rand use in
kernel and merge packages, where every input must derive from the plan
seed to keep rule output reproducible`,
	Match: pkgMatcher(
		"internal/plan",
		"internal/bucketing",
		"internal/region",
		"internal/miner",
		"internal/relation",
		"internal/hull",
	),
	Run: runNonDet,
}

// randConstructors are the math/rand functions that build explicitly
// seeded generators — the sanctioned way to get randomness here.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runNonDet(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Signature().Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if name := fn.Name(); name == "Now" || name == "Since" {
					pass.Reportf(call.Pos(),
						"time.%s in a kernel/merge path makes results depend on wall-clock state; pass times in through the plan or move timing to the measurement layer",
						name)
				}
			case "math/rand", "math/rand/v2":
				if !randConstructors[fn.Name()] {
					pass.Reportf(call.Pos(),
						"rand.%s uses the globally seeded generator; derive a *rand.Rand from the plan seed (e.g. plan.AttrRNG) so reruns are bit-identical",
						fn.Name())
				}
			}
			return true
		})
	}
	return nil, nil
}
