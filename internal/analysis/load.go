package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package loading for the standalone drivers (cmd/optlint's pattern
// mode, the self-check test, and analysistest). `go list -export`
// resolves patterns and compiles every dependency's export data into
// the build cache; the target packages themselves are then parsed from
// source and type-checked against those export files, which is the
// same import mechanism `go vet` hands a vettool through vet.cfg
// (unit.go) — no go/packages required.

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listPkg is the subset of `go list -json` output the loader reads.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	DepOnly    bool
}

// Load resolves patterns (relative to dir) with the go tool and
// returns the matched packages parsed and type-checked. Dependencies
// are imported from compiler export data, so only the matched
// packages pay for source-level analysis.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-export",
		"-json=ImportPath,Name,Dir,Export,GoFiles,CgoFiles,DepOnly",
		"-deps", "--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := map[string]string{}
	var roots []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			roots = append(roots, p)
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})
	var pkgs []*Package
	for _, root := range roots {
		if len(root.CgoFiles) > 0 {
			return nil, fmt.Errorf("analysis: %s uses cgo, which the source loader does not support", root.ImportPath)
		}
		files := make([]string, len(root.GoFiles))
		for i, gf := range root.GoFiles {
			files[i] = filepath.Join(root.Dir, gf)
		}
		pkg, err := Check(fset, root.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// exportImporter builds a types.Importer that reads gc export data
// located by lookup. Both the go-list loader and the vet.cfg driver
// funnel through it.
func exportImporter(fset *token.FileSet, lookup func(path string) (string, bool)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := lookup(path)
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// Check parses the named files and type-checks them as one package
// with full type information.
func Check(fset *token.FileSet, pkgPath string, filenames []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Instances:  map[*ast.Ident]types.Instance{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", pkgPath, err)
	}
	return &Package{PkgPath: pkgPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// SortFindings orders findings by file, line, column, analyzer.
func SortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool { return findingLess(fs[i], fs[j]) })
}

func findingLess(a, b Finding) bool {
	if a.Pos.Filename != b.Pos.Filename {
		return a.Pos.Filename < b.Pos.Filename
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	if a.Pos.Column != b.Pos.Column {
		return a.Pos.Column < b.Pos.Column
	}
	return a.Analyzer < b.Analyzer
}
