package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// The `go vet -vettool` protocol (mirroring x/tools' unitchecker,
// which cmd/go was built against):
//
//	tool -V=full     print a version/content-ID line for build caching
//	tool -flags      print the tool's flag schema as JSON
//	tool unit.cfg    analyze the single compilation unit the config
//	                 describes; diagnostics to stderr, exit 1 if any
//
// go vet writes unit.cfg per package, with compiler-produced export
// data for every import, so a unit run type-checks from export files
// exactly like the go-list loader does.

// UnitConfig is the vet.cfg JSON schema (the fields this driver
// reads; unknown fields are ignored).
type UnitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main dispatches the vettool protocol and the standalone
// pattern mode, and exits. cmd/optlint calls it.
func Main(analyzers []*Analyzer) {
	if err := Validate(analyzers); err != nil {
		fmt.Fprintln(os.Stderr, "optlint:", err)
		os.Exit(1)
	}
	args := os.Args[1:]
	switch {
	case len(args) == 1 && strings.HasPrefix(args[0], "-V"):
		printVersion()
		os.Exit(0)
	case len(args) == 1 && (args[0] == "-flags" || args[0] == "--flags"):
		// No tool flags: every analyzer always runs.
		fmt.Println("[]")
		os.Exit(0)
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		os.Exit(RunUnit(args[0], analyzers, os.Stderr))
	default:
		os.Exit(RunPatterns(args, analyzers, os.Stdout))
	}
}

// printVersion implements -V=full: cmd/go fingerprints the vettool by
// this line, expecting "<path> version devel ... buildID=<hex>", and
// re-vets packages when the tool binary's hash changes.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "optlint:", err)
		os.Exit(1)
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(os.Stderr, "optlint:", err)
		os.Exit(1)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(os.Stderr, "optlint:", err)
		os.Exit(1)
	}
	fmt.Printf("%s version devel optlint buildID=%02x\n", exe, h.Sum(nil))
}

// RunUnit analyzes one vet.cfg compilation unit, printing surviving
// findings to w. Returns the process exit code: 0 clean, 1 findings,
// 2 driver error.
func RunUnit(cfgFile string, analyzers []*Analyzer, w io.Writer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(w, "optlint:", err)
		return 2
	}
	var cfg UnitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(w, "optlint: cannot decode config %s: %v\n", cfgFile, err)
		return 2
	}
	// go vet expects the facts file to exist even though optlint's
	// analyzers are factless.
	if cfg.VetxOutput != "" {
		//optlint:ignore atomicwrite the vet driver dictates this exact build-cache path and owns its lifecycle; the file is an empty facts placeholder
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(w, "optlint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0 // dependency pass: facts only, no diagnostics wanted
	}
	fset := token.NewFileSet()
	imp := unitImporter(fset, &cfg)
	pkg, err := Check(fset, cfg.ImportPath, cfg.GoFiles, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0 // the compiler will report it better
		}
		fmt.Fprintln(w, "optlint:", err)
		return 2
	}
	findings, err := RunAnalyzers(pkg, analyzers, true)
	if err != nil {
		fmt.Fprintln(w, "optlint:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(w, f)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// unitImporter resolves imports through the unit's ImportMap (import
// path → package path) and PackageFile (package path → export data).
func unitImporter(fset *token.FileSet, cfg *UnitConfig) types.Importer {
	compiler := exportImporter(fset, func(path string) (string, bool) {
		f, ok := cfg.PackageFile[path]
		return f, ok
	})
	return importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compiler.Import(path)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// RunPatterns is the standalone mode: load the packages matching the
// patterns from the current directory, run the suite, print surviving
// findings. Exit codes as RunUnit.
func RunPatterns(patterns []string, analyzers []*Analyzer, w io.Writer) int {
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(w, "optlint:", err)
		return 2
	}
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		fmt.Fprintln(w, "optlint:", err)
		return 2
	}
	exit := 0
	for _, pkg := range pkgs {
		findings, err := RunAnalyzers(pkg, analyzers, true)
		if err != nil {
			fmt.Fprintln(w, "optlint:", err)
			return 2
		}
		for _, f := range findings {
			rel := f
			if r, err := filepath.Rel(dir, f.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
				rel.Pos.Filename = r
			}
			fmt.Fprintln(w, rel)
			exit = 1
		}
	}
	return exit
}
