// Package analysis is a small, dependency-free analogue of
// golang.org/x/tools/go/analysis: just enough driver machinery to run
// the optlint analyzer suite (internal/analysis/optlint) over
// type-checked packages, inside tests, from the standalone cmd/optlint
// binary, and under `go vet -vettool` via the unitchecker protocol
// (unit.go). The x/tools module is deliberately not vendored — the
// repo's only dependency is the standard library — so the subset of
// the API the suite needs is reimplemented here with the same shape
// and semantics.
//
// An Analyzer inspects one type-checked package at a time through a
// Pass and reports Diagnostics. Drivers are responsible for loading
// packages (load.go), applying the //optlint:ignore suppression
// directives (ignore.go), and rendering the surviving diagnostics.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one analysis: a named, documented check over a
// single type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //optlint:ignore directives. It must be a valid identifier.
	Name string

	// Doc is the analyzer's documentation: one summary line, a blank
	// line, then details.
	Doc string

	// Match, when non-nil, restricts the analyzer to packages whose
	// import path it accepts. Package-loading drivers (cmd/optlint, the
	// self-check test) consult it; the analysistest harness does not,
	// so testdata packages exercise every analyzer regardless of their
	// synthetic import paths.
	Match func(pkgPath string) bool

	// Run applies the analyzer to one package. The result value is
	// unused by the optlint drivers but kept for API parity.
	Run func(*Pass) (any, error)
}

// A Pass provides one analyzer run with a single type-checked package
// and a sink for its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. Drivers install it.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding: a position and a message. The driver
// prefixes the analyzer name when rendering.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Validate checks the suite for driver-breaking mistakes: unnamed or
// runless analyzers and duplicate names (which would make ignore
// directives ambiguous).
func Validate(analyzers []*Analyzer) error {
	seen := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		if a.Name == "" {
			return fmt.Errorf("analysis: analyzer with empty name")
		}
		if a.Run == nil {
			return fmt.Errorf("analysis: analyzer %s has no Run function", a.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("analysis: duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}

// A Finding is a driver-level diagnostic: the analyzer that produced
// it plus its resolved position, ready to render or compare.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// RunAnalyzers applies every analyzer to the package (honoring Match
// when matchPaths is true), suppresses findings covered by
// //optlint:ignore directives, and reports malformed or unused
// directives as findings of the synthetic "optlint" analyzer. The
// returned findings are ordered by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer, matchPaths bool) ([]Finding, error) {
	// The invariants govern shipped code. Tests deliberately exercise
	// failure paths — scratch files, raw reads against corrupted inputs
	// — so test files (which `go vet` folds into the unit it hands us)
	// are out of scope.
	files := pkg.Files[:0:0]
	for _, f := range pkg.Files {
		if !strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
			files = append(files, f)
		}
	}
	pkg = &Package{PkgPath: pkg.PkgPath, Fset: pkg.Fset, Files: files, Types: pkg.Types, Info: pkg.Info}
	dirs, bad := CollectIgnores(pkg.Fset, pkg.Files)
	var findings []Finding
	for _, d := range bad {
		findings = append(findings, Finding{
			Analyzer: "optlint",
			Pos:      pkg.Fset.Position(d.Pos),
			Message:  d.Message,
		})
	}
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		if matchPaths && a.Match != nil && !a.Match(pkg.PkgPath) {
			continue
		}
		ran[a.Name] = true
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			if dirs.Suppresses(name, pos) {
				return
			}
			findings = append(findings, Finding{Analyzer: name, Pos: pos, Message: d.Message})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	for _, d := range dirs.Unused(ran) {
		findings = append(findings, Finding{
			Analyzer: "optlint",
			Pos:      pkg.Fset.Position(d.Pos),
			Message:  d.Message,
		})
	}
	SortFindings(findings)
	return findings, nil
}
