// Package analysistest runs one analyzer over a testdata package and
// checks its findings against // want "regexp" comments, in the style
// of golang.org/x/tools/go/analysis/analysistest.
//
// Testdata layout: <pkgdir>/testdata/src/<name>/*.go, loaded through
// the real go-list loader, so testdata packages are type-checked
// exactly like production code (they are excluded from ./... builds
// by the go tool's testdata rule). A line expecting diagnostics
// carries a trailing comment of the form
//
//	// want "first regexp" `second regexp`
//
// with one pattern per expected finding on that line. Ignore
// directives are honored before matching, so //optlint:ignore
// behavior is testable: a suppressed line simply carries no want.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"optrule/internal/analysis"
)

// want is one expected-finding pattern.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	text string
	hit  bool
}

// Run loads testdata/src/<pkg> for each named package (relative to the
// calling test's directory) and reports every mismatch between the
// analyzer's surviving findings and the packages' want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	patterns := make([]string, len(pkgs))
	for i, p := range pkgs {
		patterns[i] = "./" + filepath.ToSlash(filepath.Join("testdata", "src", p))
	}
	loaded, err := analysis.Load(".", patterns...)
	if err != nil {
		t.Fatalf("loading %v: %v", pkgs, err)
	}
	for _, pkg := range loaded {
		findings, err := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{a}, false)
		if err != nil {
			t.Fatalf("%s: %v", pkg.PkgPath, err)
		}
		wants, werr := collectWants(pkg.Fset, pkg.Files)
		if werr != nil {
			t.Fatal(werr)
		}
		for _, f := range findings {
			if !match(wants, f) {
				t.Errorf("%s: unexpected finding: %s: %s", f.Pos, f.Analyzer, f.Message)
			}
		}
		for _, w := range wants {
			if !w.hit {
				t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.text)
			}
		}
	}
}

// match marks and reports the first unhit want on the finding's line
// whose pattern matches the finding's message.
func match(wants []*want, f analysis.Finding) bool {
	for _, w := range wants {
		if w.hit || w.file != f.Pos.Filename || w.line != f.Pos.Line {
			continue
		}
		if w.re.MatchString(f.Message) {
			w.hit = true
			return true
		}
	}
	return false
}

// collectWants parses the want comments of every file.
func collectWants(fset *token.FileSet, files []*ast.File) ([]*want, error) {
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue
				}
				rest, ok := strings.CutPrefix(strings.TrimSpace(text), "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				pats, err := splitPatterns(strings.TrimSpace(rest))
				if err != nil {
					return nil, fmt.Errorf("%s: bad want comment: %v", pos, err)
				}
				for _, p := range pats {
					re, err := regexp.Compile(p)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern %q: %v", pos, p, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, text: p})
				}
			}
		}
	}
	return wants, nil
}

// splitPatterns tokenizes a want payload: a space-separated sequence
// of double-quoted or backquoted Go string literals.
func splitPatterns(s string) ([]string, error) {
	var pats []string
	for s != "" {
		s = strings.TrimLeft(s, " \t")
		if s == "" {
			break
		}
		var lit string
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) {
				if s[end] == '\\' {
					end += 2
					continue
				}
				if s[end] == '"' {
					break
				}
				end++
			}
			if end >= len(s) {
				return nil, fmt.Errorf("unterminated %q", s)
			}
			var err error
			lit, err = strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
			s = s[end+1:]
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated %q", s)
			}
			lit = s[1 : 1+end]
			s = s[end+2:]
		default:
			return nil, fmt.Errorf("pattern must be a quoted or backquoted string, got %q", s)
		}
		pats = append(pats, lit)
	}
	if len(pats) == 0 {
		return nil, fmt.Errorf("want comment carries no patterns")
	}
	return pats, nil
}
