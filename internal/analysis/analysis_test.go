package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"optrule/internal/analysis"
)

// fake flags every occurrence of the integer literal 42, giving the
// driver tests a finding source with predictable positions and no need
// for type information.
var fake = &analysis.Analyzer{
	Name: "fake",
	Doc:  "flags the literal 42",
	Run: func(p *analysis.Pass) (any, error) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if lit, ok := n.(*ast.BasicLit); ok && lit.Value == "42" {
					p.Reportf(lit.Pos(), "the answer leaked")
				}
				return true
			})
		}
		return nil, nil
	},
}

// parse builds a synthetic package from named sources, comments intact.
func parse(t *testing.T, sources map[string]string) *analysis.Package {
	t.Helper()
	fset := token.NewFileSet()
	var files []*ast.File
	for name, src := range sources {
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	return &analysis.Package{PkgPath: "synthetic/p", Fset: fset, Files: files}
}

func run(t *testing.T, pkg *analysis.Package, analyzers []*analysis.Analyzer, matchPaths bool) []analysis.Finding {
	t.Helper()
	findings, err := analysis.RunAnalyzers(pkg, analyzers, matchPaths)
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

func TestIgnoreSuppression(t *testing.T) {
	pkg := parse(t, map[string]string{"p.go": `package p

func unwaived() int {
	return 42
}

func sameLine() int {
	return 42 //optlint:ignore fake waived by a same-line directive
}

func lineAbove() int {
	//optlint:ignore fake waived by a directive on the line above
	return 42
}

func namedInList() int {
	//optlint:ignore other,fake a directive may waive several analyzers at once
	return 42
}
`})
	findings := run(t, pkg, []*analysis.Analyzer{fake}, false)
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1 (only the unwaived site): %v", len(findings), findings)
	}
	f := findings[0]
	if f.Analyzer != "fake" || f.Pos.Line != 4 {
		t.Errorf("surviving finding is %s, want the fake finding on line 4", f)
	}
}

func TestMalformedAndUnusedDirectives(t *testing.T) {
	pkg := parse(t, map[string]string{"p.go": `package p

func malformed() int {
	//optlint:ignore fake
	return 7
}

func unused() int {
	//optlint:ignore fake nothing below trips the fake analyzer
	return 7
}

func foreignWaiver() int {
	//optlint:ignore notrun waivers for analyzers that did not run are left alone
	return 7
}
`})
	findings := run(t, pkg, []*analysis.Analyzer{fake}, false)
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2 (malformed + unused): %v", len(findings), findings)
	}
	for _, f := range findings {
		if f.Analyzer != "optlint" {
			t.Errorf("directive finding attributed to %q, want the synthetic optlint analyzer", f.Analyzer)
		}
	}
	if !strings.Contains(findings[0].Message, "malformed directive") || findings[0].Pos.Line != 4 {
		t.Errorf("first finding %s, want malformed-directive on line 4", findings[0])
	}
	if !strings.Contains(findings[1].Message, "unused directive") || findings[1].Pos.Line != 9 {
		t.Errorf("second finding %s, want unused-directive on line 9", findings[1])
	}
}

func TestTestFilesExcluded(t *testing.T) {
	pkg := parse(t, map[string]string{
		"p.go": `package p

func shipped() int { return 42 }
`,
		"p_test.go": `package p

func scratch() int { return 42 }
`,
	})
	findings := run(t, pkg, []*analysis.Analyzer{fake}, false)
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(findings), findings)
	}
	if got := findings[0].Pos.Filename; got != "p.go" {
		t.Errorf("finding in %s, want p.go only — _test.go files are out of scope", got)
	}
}

func TestMatchScoping(t *testing.T) {
	scoped := &analysis.Analyzer{
		Name:  "fake",
		Doc:   fake.Doc,
		Match: func(pkgPath string) bool { return false },
		Run:   fake.Run,
	}
	pkg := parse(t, map[string]string{"p.go": `package p

func shipped() int { return 42 }

func elsewhere() int {
	//optlint:ignore fake a waiver for a skipped analyzer must not go stale
	return 7
}
`})
	// With path matching on, the analyzer is skipped: no findings, and
	// its waiver is not reported unused.
	if findings := run(t, pkg, []*analysis.Analyzer{scoped}, true); len(findings) != 0 {
		t.Errorf("matchPaths=true: got %v, want none (analyzer scoped out)", findings)
	}
	// The test harness ignores Match so testdata packages always run.
	findings := run(t, pkg, []*analysis.Analyzer{scoped}, false)
	if len(findings) != 2 {
		t.Errorf("matchPaths=false: got %d findings, want 2 (the literal + the now-unused waiver): %v", len(findings), findings)
	}
}

func TestValidate(t *testing.T) {
	ok := []*analysis.Analyzer{fake}
	if err := analysis.Validate(ok); err != nil {
		t.Errorf("valid suite rejected: %v", err)
	}
	dup := []*analysis.Analyzer{fake, {Name: "fake", Run: fake.Run}}
	if err := analysis.Validate(dup); err == nil {
		t.Error("duplicate analyzer names accepted; ignore directives would be ambiguous")
	}
	if err := analysis.Validate([]*analysis.Analyzer{{Name: "", Run: fake.Run}}); err == nil {
		t.Error("unnamed analyzer accepted")
	}
	if err := analysis.Validate([]*analysis.Analyzer{{Name: "norun"}}); err == nil {
		t.Error("runless analyzer accepted")
	}
}
