package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Ignore directives.
//
// A finding is an intended exception when the line it lands on, or the
// line directly above it, carries
//
//	//optlint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The analyzer list names which checks are being waived; the reason is
// mandatory — a directive without one is itself a finding, so every
// suppression in the tree documents why the invariant does not apply.
// A directive that suppresses nothing is also a finding (for the
// analyzers that actually ran): stale waivers rot into holes.

const ignorePrefix = "optlint:ignore"

// ignoreDirective is one parsed //optlint:ignore comment line.
type ignoreDirective struct {
	pos       token.Pos
	file      string
	line      int
	analyzers []string
	used      bool
}

// Ignores indexes a package's ignore directives for suppression.
type Ignores struct {
	dirs []*ignoreDirective
}

// CollectIgnores scans the files' comments for ignore directives.
// Malformed directives (missing analyzer list or missing reason) are
// returned as diagnostics rather than directives: a waiver that does
// not parse must fail the build, not silently not apply.
func CollectIgnores(fset *token.FileSet, files []*ast.File) (*Ignores, []Diagnostic) {
	ig := &Ignores{}
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // block comments cannot carry directives
				}
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, ignorePrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:     c.Pos(),
						Message: fmt.Sprintf("malformed directive %q: want //%s <analyzer> <reason>", c.Text, ignorePrefix),
					})
					continue
				}
				pos := fset.Position(c.Pos())
				ig.dirs = append(ig.dirs, &ignoreDirective{
					pos:       c.Pos(),
					file:      pos.Filename,
					line:      pos.Line,
					analyzers: strings.Split(fields[0], ","),
				})
			}
		}
	}
	return ig, bad
}

// Suppresses reports whether a directive for the named analyzer covers
// a finding at pos (same line or the line directly below the
// directive), marking any covering directive as used.
func (ig *Ignores) Suppresses(analyzer string, pos token.Position) bool {
	hit := false
	for _, d := range ig.dirs {
		if d.file != pos.Filename || (d.line != pos.Line && d.line != pos.Line-1) {
			continue
		}
		for _, name := range d.analyzers {
			if name == analyzer {
				d.used = true
				hit = true
			}
		}
	}
	return hit
}

// Unused returns one diagnostic per directive that names at least one
// analyzer in ran but suppressed nothing. Directives naming only
// analyzers that did not run are left alone — a single-analyzer test
// harness must not invalidate another analyzer's waivers.
func (ig *Ignores) Unused(ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, d := range ig.dirs {
		if d.used {
			continue
		}
		relevant := false
		for _, name := range d.analyzers {
			if ran[name] {
				relevant = true
			}
		}
		if relevant {
			out = append(out, Diagnostic{
				Pos:     d.pos,
				Message: fmt.Sprintf("unused directive: no %s finding on this or the next line", strings.Join(d.analyzers, ",")),
			})
		}
	}
	return out
}
