// Package bucketing implements Section 3 of the paper: dividing the
// domain of a numeric attribute into M almost equi-depth buckets
// without sorting the database (Algorithm 3.1), the parallel counting
// variant (Algorithm 3.2), the sort-based baselines the paper compares
// against in Figure 9 (Naive Sort and Vertical Split Sort), and the
// counting pass that produces the per-bucket statistics (u_i, v_i,
// target sums) consumed by the optimized-rule algorithms of Section 4.
package bucketing

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"optrule/internal/relation"
	"optrule/internal/sampling"
	"optrule/internal/stats"
)

// Boundaries are the interior cut points p_1 <= … <= p_{M−1} of a
// bucketing: bucket 0 is (−∞, p_1], bucket i is (p_i, p_{i+1}], bucket
// M−1 is (p_{M−1}, +∞). This matches step 4 of Algorithm 3.1, which
// assigns tuple value x to the bucket with p_{i−1} < x <= p_i.
type Boundaries struct {
	cuts []float64
	// Locate acceleration: an equi-width slot table over the cut span.
	// slotBase[s] is the first cut index whose slot is >= s, so a lookup
	// narrows the binary search to the (usually empty or single-cut)
	// range of one slot. Nil when the span is degenerate or tiny; Locate
	// then falls back to the plain binary search.
	slotBase  []int32
	slotLo    float64
	slotScale float64
	// cutsPad is cuts followed by two +Inf sentinels, so LocateBatch's
	// final two-candidate refinement can load both candidate cuts
	// unconditionally (independent loads instead of a dependent chain).
	// Built with slotBase.
	cutsPad []float64
}

// locateIndexMinCuts is the cut count below which the slot table is not
// worth its footprint.
const locateIndexMinCuts = 16

// NewBoundaries wraps interior cut points. The cuts must be
// non-decreasing and NaN-free (NaN defeats any ordering, so it can
// never be a meaningful cut); M buckets need M−1 cuts.
func NewBoundaries(cuts []float64) (Boundaries, error) {
	for i, c := range cuts {
		if math.IsNaN(c) {
			return Boundaries{}, fmt.Errorf("bucketing: cut %d is NaN", i)
		}
		if i > 0 && c < cuts[i-1] {
			return Boundaries{}, fmt.Errorf("bucketing: cuts not sorted at %d: %g < %g", i, c, cuts[i-1])
		}
	}
	b := Boundaries{cuts: cuts}
	b.buildLocateIndex()
	return b, nil
}

// buildLocateIndex precomputes the slot table. Counting spends most of
// its CPU in Locate (one lookup per tuple per driver), so an O(1)
// average-case locate is what lets the scan itself dominate the
// counting pass, as the paper's out-of-core cost model assumes.
func (b *Boundaries) buildLocateIndex() {
	cuts := b.cuts
	if len(cuts) < locateIndexMinCuts {
		return
	}
	lo, hi := cuts[0], cuts[len(cuts)-1]
	span := hi - lo
	// Degenerate spans (all cuts equal, infinities) keep binary search.
	if !(span > 0) || math.IsInf(span, 0) {
		return
	}
	k := 4 * len(cuts)
	scale := float64(k) / span
	if math.IsInf(scale, 0) || scale <= 0 {
		return
	}
	b.slotLo, b.slotScale = lo, scale
	// slotOf is monotone in x, so cut slots are non-decreasing; fill
	// base[s] = first cut index whose slot is >= s.
	base := make([]int32, k+1)
	i := 0
	for s := 0; s <= k; s++ {
		for i < len(cuts) && b.slotOf(cuts[i], k) < s {
			i++
		}
		base[s] = int32(i)
	}
	b.slotBase = base
	b.cutsPad = make([]float64, len(cuts)+2)
	copy(b.cutsPad, cuts)
	b.cutsPad[len(cuts)] = math.Inf(1)
	b.cutsPad[len(cuts)+1] = math.Inf(1)
}

// slotOf maps x (with x > cuts[0]) to its slot in [0, k-1]. Monotone
// non-decreasing in x, which is what makes the narrowed search exact.
func (b *Boundaries) slotOf(x float64, k int) int {
	s := int((x - b.slotLo) * b.slotScale)
	if s < 0 {
		s = 0
	}
	if s >= k {
		s = k - 1
	}
	return s
}

// NumBuckets returns M.
func (b Boundaries) NumBuckets() int { return len(b.cuts) + 1 }

// Cuts returns the interior cut points. Callers must not modify the
// returned slice.
func (b Boundaries) Cuts() []float64 { return b.cuts }

// Locate returns the bucket index of value x: the smallest i with
// x <= cuts[i], or M−1 if x exceeds every cut, as in step 4 of
// Algorithm 3.1. With the slot table this is O(1) on average (a table
// lookup narrows the binary search to one slot's cuts); without it,
// O(log M) binary search. Both paths return identical indices.
func (b Boundaries) Locate(x float64) int {
	cuts := b.cuts
	if b.slotBase != nil {
		if x <= cuts[0] {
			return 0
		}
		last := len(cuts) - 1
		if x > cuts[last] || math.IsNaN(x) {
			// NaN compares false everywhere, which the binary search
			// resolves to len(cuts); preserve that exactly.
			return len(cuts)
		}
		k := len(b.slotBase) - 1
		s := b.slotOf(x, k)
		// Cuts below base[s] are < x; the first cut at slot >= s+1 is
		// > x, so the answer lies in [base[s], base[s+1]] (the latter
		// clamped onto the last cut, which we know satisfies x <= cut).
		lo, hi := int(b.slotBase[s]), int(b.slotBase[s+1])
		if hi > last {
			hi = last
		}
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if x <= cuts[mid] {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		return lo
	}
	lo, hi := 0, len(cuts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if x <= cuts[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// LocateBatch writes the bucket index of every value in col into out
// (which must have len(col)), with −1 for NaN values. It is the batch
// form of Locate with the slot-table lookup inlined and the table
// fields hoisted out of the loop: the fused 2-D counting scan locates
// every tuple once per attribute, and at that call rate the per-value
// method-call overhead of Locate is the dominant counting cost.
// Indices agree exactly with Locate (NaN aside, which Locate maps to
// the last bucket and callers filter first).
func (b Boundaries) LocateBatch(col []float64, out []int32) {
	out = out[:len(col)] // one bounds proof for both arrays
	base := b.slotBase
	if base == nil {
		for row, x := range col {
			if x != x { // NaN
				out[row] = -1
				continue
			}
			out[row] = int32(b.Locate(x))
		}
		return
	}
	cuts, pad := b.cuts, b.cutsPad
	slo, sscale := b.slotLo, b.slotScale
	nc := len(cuts)
	kslots := len(base) - 1
	cLast := cuts[nc-1]
	for row, x := range col {
		if x != x { // NaN
			out[row] = -1
			continue
		}
		if x > cLast {
			// Beyond the last cut (including +Inf, whose slot product
			// does not convert to a usable int): last bucket.
			out[row] = int32(nc)
			continue
		}
		// Clamping the slot index replaces Locate's low-side special
		// case with a conditional move: x <= cuts[0] (including −Inf)
		// clamps to slot 0, whose search range starts at cut 0. The
		// searched range and result are exactly Locate's.
		s := int((x - slo) * sscale)
		if s < 0 {
			s = 0
		}
		if s >= kslots {
			s = kslots - 1
		}
		lo, hi := int(base[s]), int(base[s+1])
		// Slots rarely hold more than two cuts (the table has 4 slots
		// per cut), so after the almost-never-taken narrowing loop the
		// answer is lo plus how many of the next two cuts x exceeds.
		// The sentinel padding makes both candidate loads safe and
		// INDEPENDENT, and the two compares are branch-free — the
		// data-dependent branch of the plain binary search was this
		// kernel's dominant mispredict cost.
		for hi-lo > 2 {
			mid := int(uint(lo+hi) >> 1)
			if x <= cuts[mid] {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		// x <= cuts[hi] (hi = nc−1 at most here, since x <= cLast) and
		// sentinels are +Inf, so overshoot past hi is impossible.
		d0, d1 := 0, 0
		if x > pad[lo] {
			d0 = 1
		}
		if x > pad[lo+1] {
			d1 = 1
		}
		out[row] = int32(lo + d0 + d1)
	}
}

// BucketRange returns the half-open value interval (lo, hi] covered by
// bucket i, using ±Inf for the outermost buckets.
func (b Boundaries) BucketRange(i int) (lo, hi float64) {
	m := b.NumBuckets()
	if i < 0 || i >= m {
		panic(fmt.Sprintf("bucketing: bucket %d out of [0,%d)", i, m))
	}
	lo, hi = math.Inf(-1), math.Inf(1)
	if i > 0 {
		lo = b.cuts[i-1]
	}
	if i < m-1 {
		hi = b.cuts[i]
	}
	return lo, hi
}

// FromSortedSample builds boundaries for m buckets from an
// already-sorted sample, per step 3 of Algorithm 3.1: the i-th cut is
// the ⌈i·S/m⌉-th smallest sample value.
func FromSortedSample(sorted []float64, m int) (Boundaries, error) {
	if m < 1 {
		return Boundaries{}, fmt.Errorf("bucketing: bucket count %d must be positive", m)
	}
	if len(sorted) == 0 && m > 1 {
		return Boundaries{}, fmt.Errorf("bucketing: empty sample cannot define %d buckets", m)
	}
	if m == 1 {
		return Boundaries{}, nil
	}
	return NewBoundaries(stats.EquiDepthBoundaries(sorted, m))
}

// SampledBoundaries performs steps 1–3 of Algorithm 3.1 on the numeric
// attribute at schema position attr: draw an S-sized with-replacement
// random sample (S = sampleFactor·m; the paper fixes sampleFactor=40),
// sort it, and cut at the sample quantiles.
func SampledBoundaries(rel relation.Relation, attr, m, sampleFactor int, rng *rand.Rand) (Boundaries, error) {
	if sampleFactor < 1 {
		return Boundaries{}, fmt.Errorf("bucketing: sample factor %d must be positive", sampleFactor)
	}
	if m < 1 {
		return Boundaries{}, fmt.Errorf("bucketing: bucket count %d must be positive", m)
	}
	if m == 1 {
		return Boundaries{}, nil
	}
	s := m * sampleFactor
	sample, err := sampling.ColumnWithReplacement(rel, attr, s, rng)
	if err != nil {
		return Boundaries{}, err
	}
	// Missing values (NaN) carry no order information; drop them from
	// the sample so cut points stay well defined. The counting pass
	// likewise skips NaN driver values (Counts.NaNs).
	clean := sample[:0]
	for _, x := range sample {
		if !math.IsNaN(x) {
			clean = append(clean, x)
		}
	}
	if len(clean) == 0 {
		return Boundaries{}, fmt.Errorf("bucketing: attribute %d sampled only NaN values", attr)
	}
	stats.SortFloat64s(clean)
	return FromSortedSample(clean, m)
}

// ExactBoundaries computes perfectly equi-depth boundaries by sorting a
// full copy of the column. This is the non-approximate reference that
// the Naive Sort and Vertical Split Sort baselines reduce to once the
// column is in memory.
func ExactBoundaries(column []float64, m int) (Boundaries, error) {
	sorted := stats.SortedCopy(column)
	return FromSortedSample(sorted, m)
}

// EquiWidthBoundaries cuts [lo, hi] into m equal-width buckets. The
// paper's footnote 3 argues AGAINST this scheme — on skewed data some
// equi-width bucket holds far more than 1/M of the tuples, inflating
// the approximation error — and the bucketing-scheme ablation in the
// experiments package quantifies that claim. Provided for comparison,
// not for production use.
func EquiWidthBoundaries(lo, hi float64, m int) (Boundaries, error) {
	if m < 1 {
		return Boundaries{}, fmt.Errorf("bucketing: bucket count %d must be positive", m)
	}
	if !(lo < hi) {
		return Boundaries{}, fmt.Errorf("bucketing: invalid value range [%g, %g]", lo, hi)
	}
	cuts := make([]float64, 0, m-1)
	width := (hi - lo) / float64(m)
	for i := 1; i < m; i++ {
		cuts = append(cuts, lo+width*float64(i))
	}
	return NewBoundaries(cuts)
}

// ColumnExtremes scans one numeric attribute and returns its finite
// minimum and maximum (NaNs ignored), for use with EquiWidthBoundaries.
func ColumnExtremes(rel relation.Relation, attr int) (lo, hi float64, err error) {
	lo, hi = math.Inf(1), math.Inf(-1)
	err = rel.Scan(relation.ColumnSet{Numeric: []int{attr}}, func(b *relation.Batch) error {
		for _, x := range b.Numeric[0][:b.Len] {
			if math.IsNaN(x) {
				continue
			}
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	if lo > hi {
		return 0, 0, fmt.Errorf("bucketing: attribute %d has no finite values", attr)
	}
	return lo, hi, nil
}

// DistinctValueBoundaries builds *finest* buckets (Definition 2.5): one
// bucket per distinct value of the attribute. It errors if the number
// of distinct values exceeds maxDistinct — the paper's point being that
// finest buckets are only feasible for small domains such as ages
// (Example 2.4).
func DistinctValueBoundaries(rel relation.Relation, attr, maxDistinct int) (Boundaries, error) {
	seen := make(map[float64]struct{})
	err := rel.Scan(relation.ColumnSet{Numeric: []int{attr}}, func(b *relation.Batch) error {
		for _, v := range b.Numeric[0][:b.Len] {
			if math.IsNaN(v) {
				// NaN is never equal to itself, so it can neither be a
				// distinct "value" nor a well-ordered cut point; finest
				// buckets don't apply (callers fall back to sampling,
				// exactly as the fused MultiSampledBoundaries does).
				return fmt.Errorf("bucketing: attribute %d contains NaN; use equi-depth buckets instead", attr)
			}
			if _, ok := seen[v]; !ok {
				seen[v] = struct{}{}
				if len(seen) > maxDistinct {
					return fmt.Errorf("bucketing: more than %d distinct values; use equi-depth buckets instead", maxDistinct)
				}
			}
		}
		return nil
	})
	if err != nil {
		return Boundaries{}, err
	}
	if len(seen) == 0 {
		return Boundaries{}, fmt.Errorf("bucketing: empty relation")
	}
	values := make([]float64, 0, len(seen))
	for v := range seen {
		values = append(values, v)
	}
	sort.Float64s(values)
	// Cut at every distinct value except the largest: bucket i is then
	// exactly [v_i, v_i] for observed values.
	return NewBoundaries(values[:len(values)-1])
}
