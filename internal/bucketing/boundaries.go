// Package bucketing implements Section 3 of the paper: dividing the
// domain of a numeric attribute into M almost equi-depth buckets
// without sorting the database (Algorithm 3.1), the parallel counting
// variant (Algorithm 3.2), the sort-based baselines the paper compares
// against in Figure 9 (Naive Sort and Vertical Split Sort), and the
// counting pass that produces the per-bucket statistics (u_i, v_i,
// target sums) consumed by the optimized-rule algorithms of Section 4.
package bucketing

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"optrule/internal/relation"
	"optrule/internal/sampling"
	"optrule/internal/stats"
)

// Boundaries are the interior cut points p_1 <= … <= p_{M−1} of a
// bucketing: bucket 0 is (−∞, p_1], bucket i is (p_i, p_{i+1}], bucket
// M−1 is (p_{M−1}, +∞). This matches step 4 of Algorithm 3.1, which
// assigns tuple value x to the bucket with p_{i−1} < x <= p_i.
type Boundaries struct {
	cuts []float64
}

// NewBoundaries wraps interior cut points. The cuts must be
// non-decreasing; M buckets need M−1 cuts.
func NewBoundaries(cuts []float64) (Boundaries, error) {
	for i := 1; i < len(cuts); i++ {
		if cuts[i] < cuts[i-1] {
			return Boundaries{}, fmt.Errorf("bucketing: cuts not sorted at %d: %g < %g", i, cuts[i], cuts[i-1])
		}
	}
	return Boundaries{cuts: cuts}, nil
}

// NumBuckets returns M.
func (b Boundaries) NumBuckets() int { return len(b.cuts) + 1 }

// Cuts returns the interior cut points. Callers must not modify the
// returned slice.
func (b Boundaries) Cuts() []float64 { return b.cuts }

// Locate returns the bucket index of value x: the smallest i with
// x <= cuts[i], or M−1 if x exceeds every cut. O(log M) binary search,
// as in step 4 of Algorithm 3.1.
func (b Boundaries) Locate(x float64) int {
	lo, hi := 0, len(b.cuts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if x <= b.cuts[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// BucketRange returns the half-open value interval (lo, hi] covered by
// bucket i, using ±Inf for the outermost buckets.
func (b Boundaries) BucketRange(i int) (lo, hi float64) {
	m := b.NumBuckets()
	if i < 0 || i >= m {
		panic(fmt.Sprintf("bucketing: bucket %d out of [0,%d)", i, m))
	}
	lo, hi = math.Inf(-1), math.Inf(1)
	if i > 0 {
		lo = b.cuts[i-1]
	}
	if i < m-1 {
		hi = b.cuts[i]
	}
	return lo, hi
}

// FromSortedSample builds boundaries for m buckets from an
// already-sorted sample, per step 3 of Algorithm 3.1: the i-th cut is
// the ⌈i·S/m⌉-th smallest sample value.
func FromSortedSample(sorted []float64, m int) (Boundaries, error) {
	if m < 1 {
		return Boundaries{}, fmt.Errorf("bucketing: bucket count %d must be positive", m)
	}
	if len(sorted) == 0 && m > 1 {
		return Boundaries{}, fmt.Errorf("bucketing: empty sample cannot define %d buckets", m)
	}
	if m == 1 {
		return Boundaries{}, nil
	}
	return NewBoundaries(stats.EquiDepthBoundaries(sorted, m))
}

// SampledBoundaries performs steps 1–3 of Algorithm 3.1 on the numeric
// attribute at schema position attr: draw an S-sized with-replacement
// random sample (S = sampleFactor·m; the paper fixes sampleFactor=40),
// sort it, and cut at the sample quantiles.
func SampledBoundaries(rel relation.Relation, attr, m, sampleFactor int, rng *rand.Rand) (Boundaries, error) {
	if sampleFactor < 1 {
		return Boundaries{}, fmt.Errorf("bucketing: sample factor %d must be positive", sampleFactor)
	}
	if m < 1 {
		return Boundaries{}, fmt.Errorf("bucketing: bucket count %d must be positive", m)
	}
	if m == 1 {
		return Boundaries{}, nil
	}
	s := m * sampleFactor
	sample, err := sampling.ColumnWithReplacement(rel, attr, s, rng)
	if err != nil {
		return Boundaries{}, err
	}
	// Missing values (NaN) carry no order information; drop them from
	// the sample so cut points stay well defined. The counting pass
	// likewise skips NaN driver values (Counts.NaNs).
	clean := sample[:0]
	for _, x := range sample {
		if !math.IsNaN(x) {
			clean = append(clean, x)
		}
	}
	if len(clean) == 0 {
		return Boundaries{}, fmt.Errorf("bucketing: attribute %d sampled only NaN values", attr)
	}
	sort.Float64s(clean)
	return FromSortedSample(clean, m)
}

// ExactBoundaries computes perfectly equi-depth boundaries by sorting a
// full copy of the column. This is the non-approximate reference that
// the Naive Sort and Vertical Split Sort baselines reduce to once the
// column is in memory.
func ExactBoundaries(column []float64, m int) (Boundaries, error) {
	sorted := stats.SortedCopy(column)
	return FromSortedSample(sorted, m)
}

// EquiWidthBoundaries cuts [lo, hi] into m equal-width buckets. The
// paper's footnote 3 argues AGAINST this scheme — on skewed data some
// equi-width bucket holds far more than 1/M of the tuples, inflating
// the approximation error — and the bucketing-scheme ablation in the
// experiments package quantifies that claim. Provided for comparison,
// not for production use.
func EquiWidthBoundaries(lo, hi float64, m int) (Boundaries, error) {
	if m < 1 {
		return Boundaries{}, fmt.Errorf("bucketing: bucket count %d must be positive", m)
	}
	if !(lo < hi) {
		return Boundaries{}, fmt.Errorf("bucketing: invalid value range [%g, %g]", lo, hi)
	}
	cuts := make([]float64, 0, m-1)
	width := (hi - lo) / float64(m)
	for i := 1; i < m; i++ {
		cuts = append(cuts, lo+width*float64(i))
	}
	return NewBoundaries(cuts)
}

// ColumnExtremes scans one numeric attribute and returns its finite
// minimum and maximum (NaNs ignored), for use with EquiWidthBoundaries.
func ColumnExtremes(rel relation.Relation, attr int) (lo, hi float64, err error) {
	lo, hi = math.Inf(1), math.Inf(-1)
	err = rel.Scan(relation.ColumnSet{Numeric: []int{attr}}, func(b *relation.Batch) error {
		for _, x := range b.Numeric[0][:b.Len] {
			if math.IsNaN(x) {
				continue
			}
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	if lo > hi {
		return 0, 0, fmt.Errorf("bucketing: attribute %d has no finite values", attr)
	}
	return lo, hi, nil
}

// DistinctValueBoundaries builds *finest* buckets (Definition 2.5): one
// bucket per distinct value of the attribute. It errors if the number
// of distinct values exceeds maxDistinct — the paper's point being that
// finest buckets are only feasible for small domains such as ages
// (Example 2.4).
func DistinctValueBoundaries(rel relation.Relation, attr, maxDistinct int) (Boundaries, error) {
	seen := make(map[float64]struct{})
	err := rel.Scan(relation.ColumnSet{Numeric: []int{attr}}, func(b *relation.Batch) error {
		for _, v := range b.Numeric[0][:b.Len] {
			if _, ok := seen[v]; !ok {
				seen[v] = struct{}{}
				if len(seen) > maxDistinct {
					return fmt.Errorf("bucketing: more than %d distinct values; use equi-depth buckets instead", maxDistinct)
				}
			}
		}
		return nil
	})
	if err != nil {
		return Boundaries{}, err
	}
	if len(seen) == 0 {
		return Boundaries{}, fmt.Errorf("bucketing: empty relation")
	}
	values := make([]float64, 0, len(seen))
	for v := range seen {
		values = append(values, v)
	}
	sort.Float64s(values)
	// Cut at every distinct value except the largest: bucket i is then
	// exactly [v_i, v_i] for observed values.
	return NewBoundaries(values[:len(values)-1])
}
