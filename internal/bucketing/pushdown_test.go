package bucketing

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"optrule/internal/relation"
)

// pushdownFixture writes a clustered-filter data set as a v3 file and
// mirrors it in memory: F is true only in rows [lo,hi), so every block
// group outside that band is provably filter-free and prunable.
func pushdownFixture(t *testing.T, n, gr, lo, hi int) (*relation.DiskRelation, *relation.MemoryRelation) {
	t.Helper()
	schema := relation.Schema{
		{Name: "X", Kind: relation.Numeric},
		{Name: "T", Kind: relation.Numeric},
		{Name: "F", Kind: relation.Boolean},
		{Name: "C", Kind: relation.Boolean},
	}
	path := filepath.Join(t.TempDir(), "pushdown.opr")
	dw, err := relation.NewDiskWriterV3(path, schema, gr)
	if err != nil {
		t.Fatal(err)
	}
	mem := relation.MustNewMemoryRelation(schema)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < n; i++ {
		nums := []float64{rng.NormFloat64() * 100, rng.Float64() * 10}
		bools := []bool{i >= lo && i < hi, rng.Intn(2) == 0}
		if err := dw.Append(nums, bools); err != nil {
			t.Fatal(err)
		}
		mem.MustAppend(nums, bools)
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	dr, err := relation.OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	return dr, mem
}

// TestMultiCountFilterPushdownOverV3 pins the fused counting scan's
// zone-map filter pushdown: with a clustered filter column, MultiCount
// over a v3 relation must produce Counts identical to the in-memory
// reference — Total included, i.e. skipped rows are accounted without
// being read — while reading strictly fewer physical bytes than the
// same call without a filter.
func TestMultiCountFilterPushdownOverV3(t *testing.T) {
	const n, gr = 20000, 1000
	dr, mem := pushdownFixture(t, n, gr, 4000, 8000)
	bounds, err := SampledBoundaries(mem, 0, 50, 40, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{
		Bools:         []BoolCond{{Attr: 3, Want: true}},
		Targets:       []int{1},
		Filter:        []BoolCond{{Attr: 2, Want: true}},
		TrackExtremes: true,
	}
	want, err := MultiCount(mem, []int{0}, []Boundaries{bounds}, opts)
	if err != nil {
		t.Fatal(err)
	}
	before := dr.BytesRead()
	got, err := MultiCount(dr, []int{0}, []Boundaries{bounds}, opts)
	if err != nil {
		t.Fatal(err)
	}
	filtered := dr.BytesRead() - before
	if !reflect.DeepEqual(want, got) {
		t.Errorf("pushdown changed the counts:\n  memory: %+v\n  v3:     %+v", want[0], got[0])
	}
	if got[0].Total != n {
		t.Errorf("Total = %d, want %d (skipped rows must still be accounted)", got[0].Total, n)
	}
	// The unfiltered scan reads every block; the pruned scan must skip
	// the 16 of 20 groups whose F zone map refutes the filter.
	unfiltered := opts
	unfiltered.Filter = nil
	before = dr.BytesRead()
	if _, err := MultiCount(dr, []int{0}, []Boundaries{bounds}, unfiltered); err != nil {
		t.Fatal(err)
	}
	full := dr.BytesRead() - before
	if filtered >= full {
		t.Errorf("filtered scan read %d bytes, unfiltered read %d; zone maps pruned nothing", filtered, full)
	}
}

// TestParallelMultiCountFilterPushdownOverV3 checks the segmented scan
// path: per-segment pruned scans must still account every skipped row
// in the merged totals and agree with the serial result exactly (no
// float targets, so all statistics are integers and extremes).
func TestParallelMultiCountFilterPushdownOverV3(t *testing.T) {
	const n, gr = 20000, 1000
	dr, mem := pushdownFixture(t, n, gr, 4000, 8000)
	bounds, err := SampledBoundaries(mem, 0, 50, 40, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{
		Bools:         []BoolCond{{Attr: 3, Want: true}},
		Filter:        []BoolCond{{Attr: 2, Want: true}},
		TrackExtremes: true,
	}
	want, err := MultiCount(mem, []int{0}, []Boundaries{bounds}, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParallelMultiCount(dr, []int{0}, []Boundaries{bounds}, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("parallel pushdown changed the counts:\n  serial memory: %+v\n  parallel v3:   %+v",
			want[0], got[0])
	}
	if got[0].Total != n {
		t.Errorf("Total = %d, want %d", got[0].Total, n)
	}
}
