package bucketing

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"optrule/internal/relation"
)

// TestParallelMultiCountDynamicPruned pins the work-stealing engine on
// the layout it was built for: a v3 relation clustered by the filter
// column, where roughly half the block groups are zone-refuted and
// cost ~0 — maximal chunk-cost skew. Every Counts field (populations,
// objective counts, extremes, NaNs, Total) must be bit-identical to
// the serial MultiCount for every worker count, no matter which worker
// claims which chunk. Runs under -race in CI.
func TestParallelMultiCountDynamicPruned(t *testing.T) {
	schema := relation.Schema{
		{Name: "V", Kind: relation.Numeric},
		{Name: "Member", Kind: relation.Boolean},
		{Name: "Hit", Kind: relation.Boolean},
	}
	path := filepath.Join(t.TempDir(), "steal.opr")
	dw, err := relation.NewDiskWriterV3(path, schema, 256)
	if err != nil {
		t.Fatal(err)
	}
	// Cluster by the filter column: all non-member rows land in leading
	// groups whose zone maps (true count 0) refute Member=true outright.
	if err := dw.ClusterBy(1); err != nil {
		t.Fatal(err)
	}
	n := 8000
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < n; i++ {
		v := rng.NormFloat64() * 100
		if i%251 == 0 {
			v = nan()
		}
		if err := dw.Append([]float64{v}, []bool{rng.Intn(2) == 0, rng.Intn(3) == 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	dr, err := relation.OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer dr.Close()

	bounds, err := NewBoundaries([]float64{-150, -50, 0, 50, 150})
	if err != nil {
		t.Fatal(err)
	}
	drivers := []int{0}
	opts := Options{
		Bools:         []BoolCond{{Attr: 2, Want: true}},
		Filter:        []BoolCond{{Attr: 1, Want: true}},
		TrackExtremes: true,
	}
	want, err := MultiCount(dr, drivers, []Boundaries{bounds}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if want[0].N == 0 || want[0].N == want[0].Total {
		t.Fatalf("degenerate fixture: N=%d of Total=%d", want[0].N, want[0].Total)
	}
	for _, pes := range []int{2, 4, 8} {
		got, err := ParallelMultiCount(dr, drivers, []Boundaries{bounds}, opts, pes)
		if err != nil {
			t.Fatalf("pes=%d: %v", pes, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("pes=%d: dynamic-scheduled counts differ from serial:\ngot:  %+v\nwant: %+v", pes, got[0], want[0])
		}
	}
}

// nan avoids importing math for one constant.
func nan() float64 {
	var z float64
	return z / z
}
